// Command rrrbgp is a BGP update-archive tool over the package's three
// codecs (MRT per RFC 6396, framed binary, and the Fig 3-style text dump):
//
//	rrrbgp convert -from mrt -to text < updates.mrt
//	rrrbgp merge -from text a.txt b.txt c.txt     # time-ordered merge
//	rrrbgp stats -from mrt -window 900 < updates.mrt
//	rrrbgp ribdump -from text < updates.txt > table.mrt   # TABLE_DUMP_V2
//
// stats prints per-window update counts split by RIB change kind
// (new/as-path/communities/duplicate/withdrawn), the raw material of the
// paper's §4.1 techniques.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rrr/internal/bgp"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	from := fs.String("from", "text", "input format: mrt, binary, text")
	to := fs.String("to", "text", "output format: mrt, binary, text")
	window := fs.Int64("window", 900, "stats window seconds")
	fs.Parse(os.Args[2:])

	switch cmd {
	case "convert":
		src := openSource(*from, os.Stdin)
		sink := openSink(*to, os.Stdout)
		pump(src, sink)
	case "merge":
		var sources []bgp.UpdateSource
		for _, path := range fs.Args() {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			sources = append(sources, openSource(*from, f))
		}
		if len(sources) == 0 {
			fatal(fmt.Errorf("merge needs input files"))
		}
		pump(bgp.NewMerger(sources...), openSink(*to, os.Stdout))
	case "stats":
		cmdStats(openSource(*from, os.Stdin), *window)
	case "ribdump":
		cmdRIBDump(openSource(*from, os.Stdin), os.Stdout)
	default:
		usage()
	}
}

// cmdRIBDump replays an update stream into a RIB and emits the resulting
// table as a TABLE_DUMP_V2 archive (the format collectors publish periodic
// RIB snapshots in).
func cmdRIBDump(src bgp.UpdateSource, w io.Writer) {
	rib := bgp.NewRIB()
	var last int64
	for {
		u, err := src.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		rib.Apply(u)
		if u.Time > last {
			last = u.Time
		}
	}
	if err := bgp.WriteRIBDump(w, rib, last); err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rrrbgp convert|merge|stats|ribdump [-from fmt] [-to fmt] [files]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrrbgp:", err)
	os.Exit(1)
}

type textSource struct{ r *bgp.TextReader }

func (s textSource) Read() (bgp.Update, error) { return s.r.Read() }

type binarySource struct{ r *bgp.BinaryReader }

func (s binarySource) Read() (bgp.Update, error) { return s.r.Read() }

func openSource(format string, r io.Reader) bgp.UpdateSource {
	switch format {
	case "mrt":
		return bgp.NewMRTSource(bgp.NewMRTReader(r))
	case "ribdump":
		return bgp.NewRIBDumpReader(r)
	case "binary":
		return binarySource{r: bgp.NewBinaryReader(r)}
	case "text":
		return textSource{r: bgp.NewTextReader(r)}
	}
	fatal(fmt.Errorf("unknown input format %q", format))
	return nil
}

type sink interface {
	Write(bgp.Update) error
	Flush() error
}

func openSink(format string, w io.Writer) sink {
	switch format {
	case "mrt":
		return bgp.NewMRTWriter(w)
	case "binary":
		return bgp.NewBinaryWriter(w)
	case "text":
		return bgp.NewTextWriter(w)
	}
	fatal(fmt.Errorf("unknown output format %q", format))
	return nil
}

func pump(src bgp.UpdateSource, dst sink) {
	n := 0
	for {
		u, err := src.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		if err := dst.Write(u); err != nil {
			fatal(err)
		}
		n++
	}
	if err := dst.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%d updates\n", n)
}

func cmdStats(src bgp.UpdateSource, windowSec int64) {
	rib := bgp.NewRIB()
	fmt.Printf("%-12s %-7s %-7s %-7s %-10s %-10s %-9s\n",
		"window", "total", "new", "aspath", "community", "duplicate", "withdraw")
	err := bgp.Windows(src, windowSec, func(ws int64, batch []bgp.Update) error {
		if len(batch) == 0 {
			return nil
		}
		counts := map[bgp.ChangeKind]int{}
		for _, u := range batch {
			counts[rib.Apply(u).Kind]++
		}
		fmt.Printf("%-12d %-7d %-7d %-7d %-10d %-10d %-9d\n",
			ws, len(batch),
			counts[bgp.ChangeNew], counts[bgp.ChangeASPath],
			counts[bgp.ChangeCommunities], counts[bgp.ChangeDuplicate],
			counts[bgp.ChangeWithdrawn])
		return nil
	})
	if err != nil {
		fatal(err)
	}
}
