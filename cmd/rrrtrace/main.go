// Command rrrtrace is a corpus tool for traceroute files in the package's
// NDJSON (RIPE Atlas-like) or one-line text formats:
//
//	rrrtrace parse  < traces.ndjson      # validate and print text form
//	rrrtrace convert -to json < traces.txt
//	rrrtrace diff old.ndjson new.ndjson  # AS/border-level change per pair
//	rrrtrace census < traces.ndjson      # border-IP sharing census
//
// IP-to-AS mapping for diff/census uses first-octet heuristics unless a
// prefix table is supplied with -origins (lines of "prefix asn").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/corpus"
	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	origins := fs.String("origins", "", "prefix→ASN table file (lines: 'a.b.c.d/len asn')")
	to := fs.String("to", "text", "convert target format: text or json")
	fs.Parse(os.Args[2:])

	mapper := loadMapper(*origins)
	switch cmd {
	case "parse":
		cmdParse(os.Stdin)
	case "convert":
		cmdConvert(os.Stdin, *to)
	case "diff":
		if fs.NArg() != 2 {
			usage()
		}
		cmdDiff(fs.Arg(0), fs.Arg(1), mapper)
	case "census":
		cmdCensus(os.Stdin, mapper)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rrrtrace parse|convert|diff|census [flags] [files]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrrtrace:", err)
	os.Exit(1)
}

// octetMapper maps addresses to ASes by first octet, a stand-in when no
// origins table is given.
type octetMapper struct{}

func (octetMapper) ASOf(ip uint32) (bgp.ASN, bool) {
	f := ip >> 24
	if f == 0 {
		return 0, false
	}
	return bgp.ASN(f), true
}
func (octetMapper) IXPOf(uint32) (int, bool) { return 0, false }

// tableMapper maps via a longest-prefix-match table.
type tableMapper struct {
	t trie.Trie[bgp.ASN]
}

func (m *tableMapper) ASOf(ip uint32) (bgp.ASN, bool) { return m.t.Lookup(ip) }
func (m *tableMapper) IXPOf(uint32) (int, bool)       { return 0, false }

func loadMapper(path string) traceroute.Mapper {
	if path == "" {
		return octetMapper{}
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	m := &tableMapper{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue
		}
		p, err := trie.ParsePrefix(fields[0])
		if err != nil {
			fatal(err)
		}
		asn, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			fatal(err)
		}
		m.t.Insert(p, bgp.ASN(asn))
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	return m
}

// readAll parses traceroutes from r, accepting both NDJSON and text lines.
func readAll(r io.Reader) []*traceroute.Traceroute {
	var out []*traceroute.Traceroute
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 256*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var tr *traceroute.Traceroute
		if strings.HasPrefix(line, "{") {
			t := &traceroute.Traceroute{}
			if err := t.UnmarshalJSON([]byte(line)); err != nil {
				fatal(err)
			}
			tr = t
		} else {
			t, err := traceroute.ParseText(line)
			if err != nil {
				fatal(err)
			}
			tr = t
		}
		out = append(out, tr)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	return out
}

func readFile(path string) []*traceroute.Traceroute {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	return readAll(f)
}

func cmdParse(r io.Reader) {
	for _, tr := range readAll(r) {
		fmt.Println(traceroute.FormatText(tr))
	}
}

func cmdConvert(r io.Reader, to string) {
	traces := readAll(r)
	switch to {
	case "json":
		w := traceroute.NewJSONWriter(os.Stdout)
		for _, tr := range traces {
			if err := w.Write(tr); err != nil {
				fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	case "text":
		for _, tr := range traces {
			fmt.Println(traceroute.FormatText(tr))
		}
	default:
		usage()
	}
}

func cmdDiff(oldPath, newPath string, mapper traceroute.Mapper) {
	c := corpus.New(mapper, nil)
	for _, tr := range readFile(oldPath) {
		if _, err := c.Add(tr); err != nil {
			fmt.Fprintf(os.Stderr, "skip %s: %v\n", tr.Key(), err)
		}
	}
	counts := map[bordermap.ChangeClass]int{}
	for _, tr := range readFile(newPath) {
		cls, err := c.Classify(tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skip %s: %v\n", tr.Key(), err)
			continue
		}
		counts[cls]++
		if cls != bordermap.Unchanged {
			fmt.Printf("%-13s %s\n", cls, tr.Key())
		}
	}
	fmt.Printf("unchanged=%d border-changes=%d as-changes=%d\n",
		counts[bordermap.Unchanged], counts[bordermap.BorderChange], counts[bordermap.ASChange])
}

func cmdCensus(r io.Reader, mapper traceroute.Mapper) {
	c := corpus.New(mapper, nil)
	for _, tr := range readAll(r) {
		if _, err := c.Add(tr); err != nil {
			fmt.Fprintf(os.Stderr, "skip %s: %v\n", tr.Key(), err)
		}
	}
	census := c.Census()
	type row struct {
		ip     uint32
		pairs  int
		npaths int
	}
	var rows []row
	for ip, pairs := range census.ASPairs {
		rows = append(rows, row{ip: ip, pairs: len(pairs), npaths: len(census.Paths[ip])})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].pairs != rows[j].pairs {
			return rows[i].pairs > rows[j].pairs
		}
		return rows[i].ip < rows[j].ip
	})
	fmt.Printf("%-16s %-8s %-8s\n", "border-ip", "as-pairs", "paths")
	for _, r := range rows {
		fmt.Printf("%-16s %-8d %-8d\n", trie.FormatIP(r.ip), r.pairs, r.npaths)
	}
}
