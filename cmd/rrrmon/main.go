// Command rrrmon runs the full staleness-monitoring pipeline against the
// built-in Internet simulator and streams its decisions: staleness
// prediction signals as they fire, per-window summaries, and (optionally)
// budgeted refresh rounds with calibration.
//
//	rrrmon -days 3 -budget 20 -v
//
// It demonstrates the exact integration a real deployment uses: prime the
// Monitor with a table dump, stream BGP updates and public traceroutes,
// close windows, act on signals.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"rrr/internal/bordermap"
	"rrr/internal/core"
	"rrr/internal/experiments"
)

func main() {
	days := flag.Int("days", 2, "virtual days to run")
	budget := flag.Int("budget", 20, "daily refresh budget (0 disables refreshing)")
	verbose := flag.Bool("v", false, "print every signal")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	sc := experiments.QuickScale()
	sc.Days = *days
	sc.SimCfg.Seed = *seed
	lab := experiments.NewLab(sc)
	n := lab.BuildCorpus()
	fmt.Printf("corpus: %d traceroutes; VPs: %d; topology: %d ASes, %d links\n",
		n, len(lab.Sim.VPs()), len(lab.Sim.T.ASList), len(lab.Sim.T.Links)-1)

	rng := rand.New(rand.NewSource(*seed))
	totalWindows := sc.Days * 86400 / int(sc.WindowSec)
	windowsPerDay := int(86400 / sc.WindowSec)
	daySignals := 0
	dayRefreshed, dayChanged := 0, 0

	for w := 0; w < totalWindows; w++ {
		ws := int64(w) * sc.WindowSec
		lab.Sim.Step(sc.WindowSec)
		lab.PublicRound(sc.PublicPerWindow, ws+sc.WindowSec/2)
		sigs := lab.Engine.CloseWindow(ws)
		daySignals += len(sigs)
		if *verbose {
			for _, s := range sigs {
				fmt.Printf("  w%04d %s\n", w, s)
			}
		}

		if (w+1)%windowsPerDay != 0 {
			continue
		}
		day := (w + 1) / windowsPerDay
		if *budget > 0 {
			for _, k := range lab.Engine.RefreshPlan(*budget, rng) {
				en, ok := lab.Corp.Get(k)
				if !ok {
					continue
				}
				fresh, err := lab.MeasurePair(k, en.Trace.ProbeID, ws+sc.WindowSec)
				if err != nil {
					fmt.Fprintf(os.Stderr, "refresh %s: %v\n", k, err)
					continue
				}
				cls, _ := lab.Engine.EvaluateRefresh(fresh)
				dayRefreshed++
				if cls != bordermap.Unchanged {
					dayChanged++
				}
				lab.Corp.Add(fresh.Trace)
				lab.Engine.Reregister(fresh)
			}
		}
		stale := 0
		for _, k := range lab.Corp.Keys() {
			if len(lab.Engine.Active(k)) > 0 {
				stale++
			}
		}
		prec := 0.0
		if dayRefreshed > 0 {
			prec = float64(dayChanged) / float64(dayRefreshed)
		}
		revoked, _ := lab.Engine.RevocationStats()
		fmt.Printf("day %d: %4d signals, %4d flagged pairs, refreshed %d (precision %.2f), revoked %d, pruned-communities %d\n",
			day, daySignals, stale, dayRefreshed, prec, revoked, lab.Engine.Calib.PrunedCommunityCount())
		daySignals, dayRefreshed, dayChanged = 0, 0, 0
	}

	counts := lab.Engine.SignalCounts()
	fmt.Println("\nper-technique signal totals:")
	for t := core.Technique(0); int(t) < len(counts); t++ {
		fmt.Printf("  %-22s %d\n", t, counts[t])
	}
}
