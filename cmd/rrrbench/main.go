// Command rrrbench regenerates every table and figure of the paper's
// evaluation against the built-in Internet simulator and prints them in the
// paper's layout. Use -scale quick for a fast pass or -scale paper for the
// full-size run.
//
//	rrrbench -scale quick            # all experiments, small
//	rrrbench -scale paper -only table2,fig8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rrr/internal/cluster"
	"rrr/internal/experiments"
	"rrr/internal/feedwire"
	"rrr/internal/netsim"
	"rrr/internal/obs"
	"rrr/internal/server"
)

func main() {
	scale := flag.String("scale", "quick", "experiment scale: quick or paper")
	days := flag.Int("days", 0, "override experiment duration in days")
	seed := flag.Int64("seed", 0, "override simulation seed (0 keeps the scale default)")
	only := flag.String("only", "", "comma-separated experiment list (fig1,table2,fig6,fig7,fig8,fig9,fig10,fig11,fig12,fig13,fig14,fig15,fig16,enginebench,servebench,clusterbench,feedbench,scenariobench)")
	shards := flag.String("shards", "1,2,4", "shard counts for -only enginebench (comma-separated)")
	clients := flag.Int("clients", 8, "concurrent clients for -only servebench/clusterbench")
	requests := flag.Int("requests", 2000, "total batch requests for -only servebench/clusterbench")
	batch := flag.Int("batch", 64, "keys per batch for -only servebench/clusterbench")
	clusterWorkers := flag.String("cluster-workers", "1,2,4", "worker counts for -only clusterbench (comma-separated)")
	scenarioSeed := flag.Int64("scenario-seed", 4242, "episode-schedule seed for -only scenariobench")
	metrics := flag.Bool("metrics", false, "dump the obs metrics registry (Prometheus text) after the run")
	benchout := flag.String("benchout", "", "write machine-readable bench results + registry snapshot to this JSON file")
	gomaxprocs := flag.Int("gomaxprocs", 0, "GOMAXPROCS for the run (0 keeps the runtime default: all cores)")
	flag.Parse()

	if *gomaxprocs > 0 {
		runtime.GOMAXPROCS(*gomaxprocs)
	}
	// Speedup numbers are meaningless without knowing how many cores the
	// run actually had; print it and record it in -benchout.
	fmt.Printf("GOMAXPROCS=%d (NumCPU=%d)\n", runtime.GOMAXPROCS(0), runtime.NumCPU())

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *days > 0 {
		sc.Days = *days
	}
	if *seed != 0 {
		sc.SimCfg.Seed = *seed
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	run := func(names ...string) bool {
		if len(want) == 0 {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	if run("fig1", "table2", "fig6", "fig13") {
		r := experiments.RunRetrospective(sc)
		if run("fig1") {
			printFig1(r)
		}
		if run("table2") {
			printTable2(r)
		}
		if run("fig6") {
			printFig6(r)
		}
		if run("fig13") {
			printFig13(r)
		}
	}
	if run("fig7") {
		printFig7(experiments.RunLive(sc, 60))
	}
	if run("fig8") {
		sweep := []float64{0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02}
		printFig8(experiments.RunFig8(sc, 200, sweep))
	}
	if run("fig9", "fig10") {
		d := experiments.RunDiamonds(sc)
		if run("fig9") {
			printFig9(d)
		}
		if run("fig10") {
			printFig10(d)
		}
	}
	if run("fig11") {
		printFig11(experiments.RunArchival(sc, 600))
	}
	if run("fig12") {
		printFig12(experiments.RunGeoValidation(sc))
	}
	if run("fig14", "fig15") {
		c := experiments.RunCensus(sc)
		if run("fig14") {
			printFig14(c)
		}
		if run("fig15") {
			printFig15(c)
		}
	}
	var engineResults []experiments.EngineBenchResult
	var serveResult *server.ServeBenchResult
	if len(want) != 0 && want["enginebench"] {
		var counts []int
		for _, s := range strings.Split(*shards, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad -shards entry %q\n", s)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
		engineResults = experiments.RunEngineBench(sc, counts)
		printEngineBench(engineResults)
	}
	if run("fig16") {
		printFig16(experiments.RunIPlane(sc))
	}
	if len(want) != 0 && want["servebench"] {
		r, err := server.RunServeBench(sc, *clients, *requests, *batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "servebench: %v\n", err)
			os.Exit(1)
		}
		serveResult = r
		printServeBench(r)
	}
	var clusterResult *cluster.BenchResult
	if len(want) != 0 && want["clusterbench"] {
		var counts []int
		for _, s := range strings.Split(*clusterWorkers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad -cluster-workers entry %q\n", s)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
		r, err := cluster.RunBench(sc, counts, *clients, *requests, *batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clusterbench: %v\n", err)
			os.Exit(1)
		}
		clusterResult = r
		printClusterBench(r)
	}
	var feedResult *feedwire.BenchResult
	if len(want) != 0 && want["feedbench"] {
		r, err := feedwire.RunBench(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "feedbench: %v\n", err)
			os.Exit(1)
		}
		feedResult = r
		printFeedBench(r)
	}
	var scenarioResult *experiments.ScenarioResult
	if len(want) != 0 && want["scenariobench"] {
		scenarioResult = experiments.RunScenarioAccuracy(sc, netsim.FullPack(), *scenarioSeed)
		printScenarioBench(scenarioResult, *scenarioSeed)
	}

	if *metrics {
		fmt.Println("\n=== Metrics registry ===")
		obs.Default.WritePrometheus(os.Stdout)
	}
	if *benchout != "" {
		if err := writeBenchJSON(*benchout, *scale, sc, engineResults, serveResult, clusterResult, feedResult, scenarioResult); err != nil {
			fmt.Fprintf(os.Stderr, "benchout: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *benchout)
	}
}

// benchJSON is the machine-readable record written by -benchout: the bench
// numbers plus a full registry snapshot so regressions in both throughput
// and internal counters (e.g. shard imbalance) are diffable across PRs.
type benchJSON struct {
	Scale      string `json:"scale"`
	Days       int    `json:"days"`
	Seed       int64  `json:"seed"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// GitSHA pins the record to the commit it measured (empty outside a
	// git checkout).
	GitSHA string `json:"gitSha,omitempty"`
	// Shards lists the engine shard counts swept, in run order.
	Shards []int                           `json:"shards,omitempty"`
	Engine []experiments.EngineBenchResult `json:"engine,omitempty"`
	Serve  *server.ServeBenchResult        `json:"serve,omitempty"`
	// Cluster records router-merged throughput per worker count against
	// the single-node baseline; ClusterPartitions is the hash-ring
	// partition count those topologies divided.
	Cluster           *cluster.BenchResult `json:"cluster,omitempty"`
	ClusterPartitions int                  `json:"clusterPartitions,omitempty"`
	// Feed records networked-feed ingest throughput against the
	// in-process baseline; benchgate floors Feed.WireFrac.
	Feed *feedwire.BenchResult `json:"feed,omitempty"`
	// Scenario records adversarial-pack accuracy: routing-event classifier
	// precision/recall against the pack's ground-truth labels and the
	// staleness-verdict degradation under adversarial churn; benchgate
	// floors Precision/Recall and caps Degradation.
	Scenario *experiments.ScenarioResult `json:"scenario,omitempty"`
	Metrics  map[string]float64          `json:"metrics"`
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func writeBenchJSON(path, scale string, sc experiments.Scale,
	engine []experiments.EngineBenchResult, serve *server.ServeBenchResult,
	clusterRes *cluster.BenchResult, feed *feedwire.BenchResult,
	scenario *experiments.ScenarioResult) error {
	out := benchJSON{
		Scale:      scale,
		Days:       sc.Days,
		Seed:       sc.SimCfg.Seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA:     gitSHA(),
		Engine:     engine,
		Serve:      serve,
		Cluster:    clusterRes,
		Feed:       feed,
		Scenario:   scenario,
		Metrics:    obs.Default.Snapshot(),
	}
	if clusterRes != nil {
		out.ClusterPartitions = clusterRes.Partitions
	}
	for _, r := range engine {
		out.Shards = append(out.Shards, r.Shards)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func printServeBench(r *server.ServeBenchResult) {
	fmt.Println("\n=== Serve bench: POST /v1/stale ===")
	fmt.Printf("corpus=%d pairs, %d clients x %d reqs, batch=%d, windows ingested=%d\n",
		r.CorpusSize, r.Clients, r.Requests/r.Clients, r.BatchSize, r.IngestedWindows)
	fmt.Printf("%-14s %-10s %-12s %-12s %-10s %-10s %-10s\n",
		"phase", "elapsed", "req/s", "keys/s", "p50", "p90", "p99")
	fmt.Printf("%-14s %-10s %-12.0f %-12.0f %-10s %-10s %-10s\n",
		"during-ingest", r.Elapsed.Round(time.Millisecond), r.ReqPerSec, r.KeysPerSec,
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	fmt.Printf("%-14s %-10s %-12.0f %-12.0f %-10s %-10s %-10s\n",
		"cached", r.CachedElapsed.Round(time.Millisecond), r.CachedReqPerSec, r.CachedKeysPerSec,
		r.CachedP50.Round(time.Microsecond), r.CachedP90.Round(time.Microsecond), r.CachedP99.Round(time.Microsecond))
	fmt.Printf("stale verdicts (ingest phase): %d\n", r.StaleVerdicts)
}

func printClusterBench(r *cluster.BenchResult) {
	fmt.Println("\n=== Cluster bench: router-merged POST /v1/stale vs single node ===")
	fmt.Printf("corpus=%d pairs over %d partitions, %d clients x %d reqs, batch=%d\n",
		r.CorpusSize, r.Partitions, r.Clients, r.Requests/r.Clients, r.BatchSize)
	fmt.Printf("%-12s %-10s %-12s %-12s %-10s %-10s %-10s\n",
		"topology", "elapsed", "req/s", "keys/s", "p50", "p90", "p99")
	row := func(name string, t cluster.BenchTopology) {
		fmt.Printf("%-12s %-10s %-12.0f %-12.0f %-10s %-10s %-10s\n",
			name, t.Elapsed.Round(time.Millisecond), t.ReqPerSec, t.KeysPerSec,
			t.P50.Round(time.Microsecond), t.P90.Round(time.Microsecond), t.P99.Round(time.Microsecond))
	}
	row("single", r.Single)
	for _, t := range r.Routed {
		row(fmt.Sprintf("router K=%d", t.Workers), t)
	}
	for _, t := range r.Degraded {
		// Same router topology with the last worker down: the standby
		// replicas carry its partitions, so req/s here is failover cost.
		row(fmt.Sprintf("K=%d -1w", t.Workers), t)
	}
}

func printFeedBench(r *feedwire.BenchResult) {
	fmt.Println("\n=== Feed bench: wire ingest vs in-process ===")
	fmt.Printf("records: %d updates + %d traces per run\n", r.Updates, r.Traces)
	fmt.Printf("%-12s %-12s %-14s\n", "mode", "elapsed", "records/s")
	fmt.Printf("%-12s %-12s %-14.0f\n", "in-process", r.InProcElapsed.Round(time.Microsecond), r.InProcPerSec)
	fmt.Printf("%-12s %-12s %-14.0f\n", "wire", r.WireElapsed.Round(time.Microsecond), r.WirePerSec)
	fmt.Printf("wire fraction of in-process: %.3f\n", r.WireFrac)
}

func printScenarioBench(r *experiments.ScenarioResult, seed int64) {
	fmt.Println("\n=== Scenario bench: event classifiers vs pack ground truth ===")
	fmt.Printf("corpus=%d pairs, seed=%d, truths=%d, events=%d\n",
		r.CorpusSize, seed, r.TruthCount, r.EventCount)
	fmt.Printf("%-18s %-7s %-7s %-4s %-4s %-4s %-10s %-8s\n",
		"class", "truths", "events", "TP", "FP", "FN", "precision", "recall")
	for _, cs := range r.Classes {
		fmt.Printf("%-18s %-7d %-7d %-4d %-4d %-4d %-10.3f %-8.3f\n",
			cs.Class, cs.Truths, cs.Events, cs.TP, cs.FP, cs.FN, cs.Precision, cs.Recall)
	}
	fmt.Printf("overall: precision=%.3f recall=%.3f\n", r.Precision, r.Recall)
	fmt.Printf("staleness verdict accuracy: benign=%.3f adversarial=%.3f degradation=%.3f\n",
		r.BenignStaleAcc, r.AdversarialStaleAcc, r.Degradation)
}

func printEngineBench(rs []experiments.EngineBenchResult) {
	fmt.Println("\n=== Engine bench: feed throughput by shard count ===")
	fmt.Printf("(GOMAXPROCS=%d; speedup needs that many real cores)\n", runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s %-8s %-8s %-9s %-12s %-12s %-8s\n",
		"shards", "windows", "pairs", "signals", "elapsed", "per-window", "speedup")
	for _, r := range rs {
		fmt.Printf("%-8d %-8d %-8d %-9d %-12s %-12s %-8.2f\n",
			r.Shards, r.Windows, r.Pairs, r.Signals, r.Elapsed.Round(time.Millisecond),
			r.PerWindow.Round(time.Microsecond), r.Speedup)
	}
}

func printFig1(r *experiments.RetroResult) {
	fmt.Println("\n=== Figure 1: fraction of paths changed vs initial traceroute ===")
	fmt.Printf("%-8s %-12s %-12s\n", "day", "border+AS", "AS-level")
	for i := range r.Fig1Day {
		fmt.Printf("%-8.1f %-12.3f %-12.3f\n", r.Fig1Day[i], r.Fig1Border[i], r.Fig1AS[i])
	}
}

func printTable2(r *experiments.RetroResult) {
	fmt.Println("\n=== Table 2: precision and coverage per technique (retrospective) ===")
	fmt.Printf("corpus=%d pairs, %d rounds, changes=%d (AS %d, border %d)\n",
		r.CorpusSize, r.Rounds, r.TotalChanges, r.ASChanges, r.BorderChanges)
	fmt.Printf("%-22s %8s %6s | %6s %6s | %6s %6s | %6s %6s\n",
		"Technique", "Signals", "Prec", "CovAll", "Uniq", "CovAS", "Uniq", "CovBrd", "Uniq")
	row := func(t experiments.Table2Row) {
		fmt.Printf("%-22s %8d %6.2f | %6.2f %6.2f | %6.2f %6.2f | %6.2f %6.2f\n",
			t.Technique, t.Signals, t.Precision,
			t.CovAll, t.CovAllUnique, t.CovAS, t.CovASUnique, t.CovBorder, t.CovBorderUnique)
	}
	for _, t := range r.Table2 {
		row(t)
	}
	fmt.Println(strings.Repeat("-", 92))
	row(r.BGPTotal)
	row(r.TraceTotal)
	row(r.AllTechniques)
	fmt.Printf("(All-techniques Uniq column reports coverage restricted to monitorable changes)\n")
}

func printFig6(r *experiments.RetroResult) {
	fmt.Println("\n=== Figure 6: daily precision (a) and coverage (b) ===")
	fmt.Printf("%-6s %-10s %-10s %-14s\n", "day", "precision", "coverage", "cov(monitored)")
	for i := range r.Fig6Day {
		fmt.Printf("%-6.0f %-10.2f %-10.2f %-14.2f\n",
			r.Fig6Day[i], r.Fig6Precision[i], r.Fig6Coverage[i], r.Fig6CovMonitorable[i])
	}
}

func printFig7(r *experiments.LiveResult) {
	fmt.Println("\n=== Figure 7: live evaluation (signal vs random refresh) ===")
	fmt.Printf("corpus=%d pairs\n", r.CorpusSize)
	fmt.Printf("%-6s %-12s %-12s %-14s\n", "day", "sig-prec", "rand-prec", "sig-coverage")
	for i := range r.Day {
		fmt.Printf("%-6.0f %-12.2f %-12.2f %-14.2f\n",
			r.Day[i], r.SignalPrecision[i], r.RandomPrecision[i], r.SignalCoverage[i])
	}
	fmt.Printf("totals: signal %d/%d, random %d/%d\n",
		r.SignalChanged, r.SignalRefreshes, r.RandomChanged, r.RandomRefreshes)
}

func printFig8(r *experiments.Fig8Result) {
	fmt.Println("\n=== Figure 8: changes detected vs probing budget ===")
	fmt.Printf("ground truth: %d border-level changes; optimal signals = %.2f\n",
		r.TotalChanges, r.Optimal)
	fmt.Printf("%-10s %-10s %-8s %-8s %-9s %-14s\n",
		"pps/path", "roundrobin", "sibyl", "dtrack", "signals", "dtrack+signals")
	for i := range r.PPS {
		fmt.Printf("%-10.4f %-10.2f %-8.2f %-8.2f %-9.2f %-14.2f\n",
			r.PPS[i], r.RoundRobin[i], r.Sibyl[i], r.DTrack[i], r.Signals[i], r.DTrackSignals[i])
	}
}

func printFig9(d *experiments.DiamondsResult) {
	fmt.Println("\n=== Figure 9: signals per load-balanced vs non-LB segment ===")
	fmt.Printf("segments: %d load-balanced, %d non-load-balanced\n", d.LBSegments, d.NonLBSegments)
	fmt.Printf("flagged fraction: LB %.3f vs non-LB %.3f\n", d.LBFlaggedFrac, d.NonLBFlaggedFrac)
	fmt.Printf("signal-count distribution (LB): %v\n", tailInts(d.LBSignalCounts, 10))
	fmt.Printf("signal-count distribution (non-LB): %v\n", tailInts(d.NonLBSignalCounts, 10))
}

func printFig10(d *experiments.DiamondsResult) {
	fmt.Println("\n=== Figure 10: per-segment precision, LB vs non-LB ===")
	fmt.Printf("median precision: LB %.2f vs non-LB %.2f\n", d.LBMedianPrec, d.NonLBMedianPrec)
}

func printFig11(r *experiments.ArchivalResult) {
	fmt.Println("\n=== Figure 11: archival traceroute reuse ===")
	fmt.Printf("%-6s %-8s %-8s %-10s %-8s\n", "day", "fresh", "stale", "deadprobe", "unknown")
	for i := range r.Day {
		fmt.Printf("%-6.0f %-8d %-8d %-10d %-8d\n",
			r.Day[i], r.Fresh[i], r.Stale[i], r.DeadProbe[i], r.Unknown[i])
	}
	fmt.Printf("archive=%d traceroutes; UDM satisfiable=%.1f%%, avoidable=%.1f%%\n",
		r.ArchiveSize, 100*r.UDMSatisfiableFrac, 100*r.UDMAvoidableFrac)
}

func printFig12(r *experiments.GeoValidationResult) {
	fmt.Println("\n=== Figure 12: geolocation validation vs three databases ===")
	fmt.Printf("pipeline located %d addresses (%.0f%%)\n", r.Located, 100*r.LocateRate)
	fmt.Printf("%-18s %-8s %-8s %-8s %-8s\n", "database", "overlap", "exact", "<100km", "<500km")
	for _, db := range []struct {
		Name     string
		Overlap  int
		Exact    float64
		Under100 float64
		Under500 float64
	}{r.Crowd, r.RouterDB, r.General} {
		fmt.Printf("%-18s %-8d %-8.2f %-8.2f %-8.2f\n",
			db.Name, db.Overlap, db.Exact, db.Under100, db.Under500)
	}
}

func printFig13(r *experiments.RetroResult) {
	fmt.Println("\n=== Figure 13: communities generating false positives per day ===")
	for day, n := range r.Fig13FPComms {
		fmt.Printf("day %-3d fp-communities %d\n", day, n)
	}
}

func printFig14(c *experiments.CensusResult) {
	fmt.Println("\n=== Figure 14: AS pairs per border IP ===")
	fmt.Printf("border IPs: %d; used by >10 AS pairs: %.1f%%\n",
		c.BorderIPs, 100*c.FracUsedByOver10Pairs)
	fmt.Printf("distribution (sorted tail): %v\n", tailInts(c.ASPairsPerIP, 12))
}

func printFig15(c *experiments.CensusResult) {
	fmt.Println("\n=== Figure 15: paths per border IP, changed vs unchanged ===")
	fmt.Printf("changed border IPs in >=10 paths: %.1f%%\n", 100*c.FracChangedInOver10)
	fmt.Printf("unchanged border IPs in >=10 paths: %.1f%%\n", 100*c.FracUnchangedInOver10)
}

func printFig16(r *experiments.IPlaneResult) {
	fmt.Println("\n=== Figure 16: iPlane splicing with staleness pruning ===")
	fmt.Printf("%-6s %-18s %-16s %-16s\n", "day", "invalid-unpruned", "invalid-pruned", "retained-valid")
	for i := range r.Day {
		fmt.Printf("%-6.0f %-18.2f %-16.2f %-16.2f\n",
			r.Day[i], r.InvalidUnpruned[i], r.InvalidPruned[i], r.RetainedValid[i])
	}
	fmt.Printf("predictions evaluated: %d\n", r.Predictions)
}

func tailInts(xs []int, n int) []int {
	if len(xs) <= n {
		return xs
	}
	return xs[len(xs)-n:]
}
