// Command benchgate enforces performance floors on a BENCH_*.json record
// written by rrrbench -benchout. CI runs it after every bench pass so a
// change that pessimizes the sharded engine (the failure mode this repo
// has actually shipped: sharding that lost to the serial path) fails the
// build instead of landing as a quietly-regressed artifact.
//
//	benchgate -min-speedup 1.0 BENCH_pr6.json
//
// The engine speedup gate only applies when the record was taken with
// GOMAXPROCS > 1: on a single-core runner the parallel close phase cannot
// beat serial and the honest expectation is speedup ≈ 1 from eliminated
// replication work, not scaling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchRecord struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	GitSHA     string `json:"gitSha"`
	Engine     []struct {
		Shards  int     `json:"Shards"`
		Speedup float64 `json:"Speedup"`
	} `json:"engine"`
	Serve *struct {
		ReqPerSec float64 `json:"ReqPerSec"`
	} `json:"serve"`
	ClusterPartitions int `json:"clusterPartitions"`
	Cluster           *struct {
		Partitions int `json:"Partitions"`
		Single     struct {
			ReqPerSec float64 `json:"ReqPerSec"`
		} `json:"Single"`
		Routed []struct {
			Workers   int     `json:"Workers"`
			ReqPerSec float64 `json:"ReqPerSec"`
		} `json:"Routed"`
		Degraded []struct {
			Workers   int     `json:"Workers"`
			ReqPerSec float64 `json:"ReqPerSec"`
		} `json:"Degraded"`
	} `json:"cluster"`
	Feed *struct {
		Updates      int     `json:"Updates"`
		Traces       int     `json:"Traces"`
		InProcPerSec float64 `json:"InProcPerSec"`
		WirePerSec   float64 `json:"WirePerSec"`
		WireFrac     float64 `json:"WireFrac"`
	} `json:"feed"`
	Scenario *struct {
		TruthCount  int     `json:"TruthCount"`
		EventCount  int     `json:"EventCount"`
		Precision   float64 `json:"Precision"`
		Recall      float64 `json:"Recall"`
		Degradation float64 `json:"Degradation"`
	} `json:"scenario"`
}

func main() {
	minSpeedup := flag.Float64("min-speedup", 1.0, "minimum 2-shard engine speedup (gated only when gomaxprocs > 1)")
	minReqPerSec := flag.Float64("min-reqps", 0, "minimum servebench requests/sec (0 disables)")
	minClusterFrac := flag.Float64("min-cluster-frac", 0, "minimum routed-cluster req/s as a fraction of the single-node baseline, at every worker count (0 disables)")
	minDegradedFrac := flag.Float64("min-degraded-frac", 0, "minimum degraded-cluster (one worker down, standby failover) req/s as a fraction of the single-node baseline (0 disables)")
	minFeedFrac := flag.Float64("min-feed-frac", 0, "minimum wire feed-ingest throughput as a fraction of the in-process baseline (0 disables)")
	minEventPrec := flag.Float64("min-event-precision", 0, "minimum routing-event classifier precision against scenario ground truth (0 disables)")
	minEventRec := flag.Float64("min-event-recall", 0, "minimum routing-event classifier recall against scenario ground truth (0 disables)")
	maxStaleDeg := flag.Float64("max-stale-degradation", -1, "maximum staleness-verdict accuracy lost under adversarial churn (negative disables)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-min-speedup X] [-min-reqps Y] BENCH.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", flag.Arg(0), err)
		os.Exit(2)
	}

	failed := false
	if rec.GOMAXPROCS > 1 {
		gated := false
		for _, r := range rec.Engine {
			if r.Shards != 2 {
				continue
			}
			gated = true
			if r.Speedup < *minSpeedup {
				fmt.Fprintf(os.Stderr, "benchgate: FAIL engine speedup @2 shards = %.2f < %.2f (gomaxprocs=%d, sha=%s)\n",
					r.Speedup, *minSpeedup, rec.GOMAXPROCS, rec.GitSHA)
				failed = true
			} else {
				fmt.Printf("benchgate: ok engine speedup @2 shards = %.2f (>= %.2f)\n", r.Speedup, *minSpeedup)
			}
		}
		if !gated && len(rec.Engine) > 0 {
			fmt.Println("benchgate: no 2-shard engine row; speedup gate skipped")
		}
	} else {
		fmt.Printf("benchgate: gomaxprocs=%d, engine speedup gate skipped (needs > 1 core)\n", rec.GOMAXPROCS)
	}
	if *minReqPerSec > 0 {
		if rec.Serve == nil {
			fmt.Println("benchgate: no serve record; req/s gate skipped")
		} else if rec.Serve.ReqPerSec < *minReqPerSec {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL serve %.0f req/s < %.0f\n", rec.Serve.ReqPerSec, *minReqPerSec)
			failed = true
		} else {
			fmt.Printf("benchgate: ok serve %.0f req/s (>= %.0f)\n", rec.Serve.ReqPerSec, *minReqPerSec)
		}
	}
	if *minClusterFrac > 0 {
		switch {
		case rec.Cluster == nil:
			fmt.Println("benchgate: no cluster record; cluster gate skipped")
		case rec.ClusterPartitions <= 0 || rec.Cluster.Partitions != rec.ClusterPartitions:
			// The schema carries the partition count twice (inside the
			// record and at top level for graphing); they must agree.
			fmt.Fprintf(os.Stderr, "benchgate: FAIL cluster partition count missing or inconsistent (top-level %d, record %d)\n",
				rec.ClusterPartitions, rec.Cluster.Partitions)
			failed = true
		case rec.Cluster.Single.ReqPerSec <= 0:
			fmt.Fprintln(os.Stderr, "benchgate: FAIL cluster record has no single-node baseline throughput")
			failed = true
		default:
			for _, topo := range rec.Cluster.Routed {
				frac := topo.ReqPerSec / rec.Cluster.Single.ReqPerSec
				if frac < *minClusterFrac {
					fmt.Fprintf(os.Stderr, "benchgate: FAIL router K=%d %.0f req/s = %.2fx single-node %.0f, below %.2fx (sha=%s)\n",
						topo.Workers, topo.ReqPerSec, frac, rec.Cluster.Single.ReqPerSec, *minClusterFrac, rec.GitSHA)
					failed = true
				} else {
					fmt.Printf("benchgate: ok router K=%d %.0f req/s = %.2fx single-node (>= %.2fx)\n",
						topo.Workers, topo.ReqPerSec, frac, *minClusterFrac)
				}
			}
			if len(rec.Cluster.Routed) == 0 {
				fmt.Fprintln(os.Stderr, "benchgate: FAIL cluster record has no routed topologies")
				failed = true
			}
		}
	}
	if *minDegradedFrac > 0 {
		switch {
		case rec.Cluster == nil:
			fmt.Println("benchgate: no cluster record; degraded gate skipped")
		case len(rec.Cluster.Degraded) == 0:
			// Records predating replication have no degraded rows; the gate
			// only bites once the bench measures failover.
			fmt.Println("benchgate: no degraded rows; degraded gate skipped")
		case rec.Cluster.Single.ReqPerSec <= 0:
			fmt.Fprintln(os.Stderr, "benchgate: FAIL cluster record has no single-node baseline throughput")
			failed = true
		default:
			for _, topo := range rec.Cluster.Degraded {
				frac := topo.ReqPerSec / rec.Cluster.Single.ReqPerSec
				if frac < *minDegradedFrac {
					fmt.Fprintf(os.Stderr, "benchgate: FAIL degraded K=%d (one worker down) %.0f req/s = %.2fx single-node %.0f, below %.2fx (sha=%s)\n",
						topo.Workers, topo.ReqPerSec, frac, rec.Cluster.Single.ReqPerSec, *minDegradedFrac, rec.GitSHA)
					failed = true
				} else {
					fmt.Printf("benchgate: ok degraded K=%d (one worker down) %.0f req/s = %.2fx single-node (>= %.2fx)\n",
						topo.Workers, topo.ReqPerSec, frac, *minDegradedFrac)
				}
			}
		}
	}
	if *minFeedFrac > 0 {
		switch {
		case rec.Feed == nil:
			fmt.Println("benchgate: no feed record; feed gate skipped")
		case rec.Feed.Updates+rec.Feed.Traces == 0 || rec.Feed.InProcPerSec <= 0:
			fmt.Fprintln(os.Stderr, "benchgate: FAIL feed record is empty")
			failed = true
		case rec.Feed.WireFrac < *minFeedFrac:
			fmt.Fprintf(os.Stderr, "benchgate: FAIL wire feed %.0f rec/s = %.3fx in-process %.0f, below %.3fx (sha=%s)\n",
				rec.Feed.WirePerSec, rec.Feed.WireFrac, rec.Feed.InProcPerSec, *minFeedFrac, rec.GitSHA)
			failed = true
		default:
			fmt.Printf("benchgate: ok wire feed %.0f rec/s = %.3fx in-process (>= %.3fx)\n",
				rec.Feed.WirePerSec, rec.Feed.WireFrac, *minFeedFrac)
		}
	}
	if *minEventPrec > 0 || *minEventRec > 0 || *maxStaleDeg >= 0 {
		switch {
		case rec.Scenario == nil:
			fmt.Println("benchgate: no scenario record; event-accuracy gates skipped")
		case rec.Scenario.TruthCount == 0 || rec.Scenario.EventCount == 0:
			// Precision over zero events (or recall over zero truths) is
			// vacuously perfect; an empty record must fail, not pass.
			fmt.Fprintf(os.Stderr, "benchgate: FAIL scenario record is vacuous (%d truths, %d events)\n",
				rec.Scenario.TruthCount, rec.Scenario.EventCount)
			failed = true
		default:
			if *minEventPrec > 0 {
				if rec.Scenario.Precision < *minEventPrec {
					fmt.Fprintf(os.Stderr, "benchgate: FAIL event precision %.3f < %.3f (sha=%s)\n",
						rec.Scenario.Precision, *minEventPrec, rec.GitSHA)
					failed = true
				} else {
					fmt.Printf("benchgate: ok event precision %.3f (>= %.3f)\n", rec.Scenario.Precision, *minEventPrec)
				}
			}
			if *minEventRec > 0 {
				if rec.Scenario.Recall < *minEventRec {
					fmt.Fprintf(os.Stderr, "benchgate: FAIL event recall %.3f < %.3f (sha=%s)\n",
						rec.Scenario.Recall, *minEventRec, rec.GitSHA)
					failed = true
				} else {
					fmt.Printf("benchgate: ok event recall %.3f (>= %.3f)\n", rec.Scenario.Recall, *minEventRec)
				}
			}
			if *maxStaleDeg >= 0 {
				if rec.Scenario.Degradation > *maxStaleDeg {
					fmt.Fprintf(os.Stderr, "benchgate: FAIL staleness accuracy degraded %.3f under adversarial churn, above %.3f (sha=%s)\n",
						rec.Scenario.Degradation, *maxStaleDeg, rec.GitSHA)
					failed = true
				} else {
					fmt.Printf("benchgate: ok staleness degradation %.3f under adversarial churn (<= %.3f)\n",
						rec.Scenario.Degradation, *maxStaleDeg)
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
