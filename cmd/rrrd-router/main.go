// Command rrrd-router is the stateless front end for a partitioned rrrd
// cluster: it routes staleness queries to the worker owning each key's
// hash-ring partition, splices worker verdicts into single responses,
// merges /v1/keys and /v1/stats, and multiplexes the workers' SSE signal
// streams into one totally-ordered stream. It owns no monitor state —
// restart it freely.
//
//	rrrd -addr :8081 -worker-id 0 -workers 3 &
//	rrrd -addr :8082 -worker-id 1 -workers 3 &
//	rrrd -addr :8083 -worker-id 2 -workers 3 &
//	rrrd-router -addr :8080 -workers http://localhost:8081,http://localhost:8082,http://localhost:8083
//
// Try it:
//
//	curl localhost:8080/v1/stats              # merged counters
//	curl localhost:8080/v1/cluster            # per-worker identity + health
//	curl -N localhost:8080/v1/signals         # one ordered stream
//	curl localhost:8080/readyz                # 503 until every partition is ready
//
// Degradation: each worker sub-request gets a bounded timeout and one
// retry within that same deadline. Each partition has a standby replica
// (the next distinct worker on the hash ring), so a single dead worker is
// transparently failed over — responses stay complete and byte-identical.
// Per-worker circuit breakers (-breaker-threshold consecutive failures
// open; half-open /readyz probes after -breaker-cooldown) stop the router
// from burning its deadline on a dead primary. Only when every replica of
// a partition is down do responses carry an explicit
// unavailablePartitions field rather than silent holes. The router sheds
// load beyond -max-inflight with 429 + Retry-After.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rrr/internal/cluster"
	"rrr/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		workers   = flag.String("workers", "", "comma-separated worker base URLs, ordered by worker ID")
		parts     = flag.Int("partitions", cluster.DefaultPartitions, "hash-ring partition count (must match the workers)")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-worker sub-request timeout (one retry before a partition is reported unavailable)")
		heartbeat = flag.Duration("heartbeat", 15*time.Second, "SSE keepalive interval")
		ring      = flag.Int("ring", server.DefaultRingSize, "per-SSE-subscriber frame buffer")
		maxBatch  = flag.Int("max-batch", 10000, "POST /v1/stale key limit")
		backoff   = flag.Duration("stream-backoff", 100*time.Millisecond, "initial worker-stream reconnect delay")
		brkThresh = flag.Int("breaker-threshold", cluster.DefaultBreakerThreshold, "consecutive worker failures before the circuit breaker opens")
		brkCool   = flag.Duration("breaker-cooldown", cluster.DefaultBreakerCooldown, "open-breaker wait before a half-open /readyz probe")
		inflight  = flag.Int("max-inflight", cluster.DefaultRouterMaxInFlight, "in-flight data-request bound; excess requests are shed with 429 + Retry-After")
	)
	flag.Parse()

	if err := run(*addr, *workers, *parts, *timeout, *heartbeat, *ring, *maxBatch, *backoff, *brkThresh, *brkCool, *inflight); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr, workers string, parts int, timeout, heartbeat time.Duration, ring, maxBatch int, backoff time.Duration, brkThresh int, brkCool time.Duration, inflight int) error {
	var urls []string
	for _, u := range strings.Split(workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("rrrd-router: -workers needs at least one worker URL")
	}

	rt, err := cluster.NewRouter(cluster.Options{
		Workers:          urls,
		Partitions:       parts,
		Timeout:          timeout,
		Heartbeat:        heartbeat,
		RingSize:         ring,
		MaxBatch:         maxBatch,
		StreamBackoff:    backoff,
		BreakerThreshold: brkThresh,
		BreakerCooldown:  brkCool,
		MaxInFlight:      inflight,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	for w, u := range urls {
		log.Printf("rrrd-router: worker %d at %s owns %d of %d partitions (+%d as standby, rf=%d)",
			w, u, rt.Ring().OwnedPartitions(w), rt.Ring().Partitions(),
			len(rt.Ring().StandbyPartitions(w)), rt.Ring().ReplicaFactor())
	}

	httpSrv := &http.Server{Addr: addr, Handler: rt.Handler()}
	httpDone := make(chan error, 1)
	go func() {
		log.Printf("rrrd-router: serving on %s (%d workers)", addr, len(urls))
		httpDone <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("rrrd-router: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(shutCtx)
	case err := <-httpDone:
		return err
	}
}
