// Command rrrd is the staleness query-serving daemon: it runs the full
// monitoring pipeline over live (simulated) BGP and traceroute feeds in
// the background while serving staleness queries, live signal streams, and
// refresh planning over HTTP.
//
//	rrrd -addr :8080                      # quick-scale feed, serve forever
//	rrrd -pace 100ms -v                   # real-time-ish pacing, log signals
//	rrrd -snapshot /tmp/rrr.snap          # snapshot on shutdown (and on demand)
//	rrrd -snapshot /tmp/rrr.snap -restore # restart from the snapshot
//	rrrd -debug-addr :6060                # pprof + /metrics on a side listener
//
// Try it:
//
//	curl localhost:8080/v1/stats
//	curl localhost:8080/v1/keys?stale=1
//	curl localhost:8080/v1/stale/10.3.0.1-10.9.0.9
//	curl -N localhost:8080/v1/signals        # SSE stream
//	curl -d '{"budget":20}' localhost:8080/v1/refresh/plan
//	curl localhost:8080/metrics              # Prometheus text exposition
//
// Graceful shutdown (SIGINT/SIGTERM): cancel the pipeline (which drains
// buffered observations and closes the open window), write the snapshot if
// -snapshot is set, then stop the HTTP listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rrr"
	"rrr/internal/experiments"
	"rrr/internal/obs"
	"rrr/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	scale := flag.String("scale", "quick", "feed scale: quick or paper")
	days := flag.Int("days", 0, "virtual days of feed before EOF (0 keeps the scale default)")
	seed := flag.Int64("seed", 0, "simulation seed (0 keeps the scale default)")
	shards := flag.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
	pace := flag.Duration("pace", 0, "wall-clock delay per 15-min virtual window (0 = full speed)")
	snapshot := flag.String("snapshot", "", "snapshot file path (written on shutdown and POST /v1/snapshot)")
	restore := flag.Bool("restore", false, "restore corpus and signals from -snapshot at startup")
	ring := flag.Int("ring", server.DefaultRingSize, "per-SSE-subscriber signal buffer")
	debugAddr := flag.String("debug-addr", "", "optional debug listen address serving /metrics and /debug/pprof/*")
	feedRetries := flag.Int("feed-retries", 5, "transient feed failures tolerated per window before a feed is declared dead")
	feedBackoff := flag.Duration("feed-backoff", 500*time.Millisecond, "initial retry backoff after a feed failure (doubles per attempt)")
	verbose := flag.Bool("v", false, "log every signal")
	flag.Parse()

	if err := run(*addr, *scale, *days, *seed, *shards, *pace, *snapshot, *restore, *ring, *debugAddr, *feedRetries, *feedBackoff, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr, scale string, days int, seed int64, shards int, pace time.Duration,
	snapshot string, restore bool, ring int, debugAddr string, feedRetries int, feedBackoff time.Duration, verbose bool) error {
	var sc experiments.Scale
	switch scale {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}
	if days > 0 {
		sc.Days = days
	}
	if seed != 0 {
		sc.SimCfg.Seed = seed
	}
	sc.Shards = shards

	log.Printf("rrrd: building %s-scale environment (seed %d)", scale, sc.SimCfg.Seed)
	env := experiments.NewDaemonEnv(sc, pace)

	cfg := rrr.DefaultConfig()
	cfg.WindowSec = sc.WindowSec
	cfg.Shards = shards
	mon, err := rrr.NewMonitor(rrr.Options{
		Config:     cfg,
		Mapper:     env.Mapper,
		Aliases:    env.Aliases,
		Geo:        env.Geo,
		Rel:        env.Rel,
		IXPMembers: env.IXPMembers,
	})
	if err != nil {
		return err
	}

	// Prime the RIB view before streaming (table dump first).
	for _, u := range env.Dump {
		mon.ObserveBGP(u)
	}

	if restore {
		if snapshot == "" {
			return errors.New("-restore needs -snapshot")
		}
		info, err := server.RestoreSnapshot(snapshot, mon)
		if err != nil {
			return err
		}
		log.Printf("rrrd: restored %d corpus entries, %d active signals from %s",
			info.Entries, info.Signals, snapshot)
	} else {
		tracked, skipped := 0, 0
		for _, tr := range env.Corpus {
			if err := mon.Track(tr); err != nil {
				skipped++ // AS-loop traces are discarded (Appendix A)
				continue
			}
			tracked++
		}
		log.Printf("rrrd: tracking %d corpus pairs (%d traces discarded)", tracked, skipped)
	}

	health := rrr.NewPipelineHealth()
	srv := server.New(mon, server.Config{SnapshotPath: snapshot, RingSize: ring, Health: health})

	// One writer: the pipeline goroutine. Its sink tees into the SSE hub
	// (never blocks) and, optionally, the log.
	sink := srv.Publish
	if verbose {
		sink = rrr.Tee(srv.Publish, func(s rrr.Signal) { log.Printf("signal: %s", s) })
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	pipeDone := make(chan error, 1)
	go func() {
		// Degrade gracefully: transient feed failures retry with backoff,
		// and a feed that dies anyway stops silently while the other feed
		// and the query API keep running. Per-feed health shows up in
		// /v1/stats and the retry counters in /metrics.
		pipeDone <- rrr.RunPipeline(ctx, mon, rrr.PipelineConfig{
			Updates: env.Updates,
			Traces:  env.Traces,
			Sink:    sink,
			Retry: rrr.RetryPolicy{
				MaxRetries:         feedRetries,
				Backoff:            feedBackoff,
				ContinueOnDeadFeed: true,
			},
			DedupAdjacent: true,
			Health:        health,
		})
	}()

	// Optional debug listener: pprof plus a second /metrics. Kept off the
	// main mux so profiling endpoints are never exposed on the query port.
	if debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.Handle("GET /metrics", obs.Default.Handler())
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("rrrd: debug endpoints on %s (/metrics, /debug/pprof/)", debugAddr)
			if err := http.ListenAndServe(debugAddr, dbg); err != nil {
				log.Printf("rrrd: debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	httpDone := make(chan error, 1)
	go func() {
		log.Printf("rrrd: serving on %s", addr)
		httpDone <- httpSrv.ListenAndServe()
	}()

	// Run until a signal arrives or the HTTP listener fails. A finished
	// feed (pipeDone with nil) keeps the daemon serving: consumers can
	// still query the final state.
	var pipeErr error
	pipeRunning := true
	for {
		select {
		case <-ctx.Done():
			log.Printf("rrrd: shutting down")
			if pipeRunning {
				pipeErr = <-pipeDone // pipeline drains + closes final window
				pipeRunning = false
			}
			if pipeErr != nil && !errors.Is(pipeErr, context.Canceled) {
				log.Printf("rrrd: pipeline: %v", pipeErr)
			}
			if snapshot != "" {
				info, err := server.WriteSnapshot(snapshot, mon)
				if err != nil {
					log.Printf("rrrd: snapshot: %v", err)
				} else {
					log.Printf("rrrd: snapshot: %d entries, %d signals, %d bytes -> %s",
						info.Entries, info.Signals, info.Bytes, snapshot)
				}
			}
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			return httpSrv.Shutdown(shutCtx)
		case err := <-pipeDone:
			pipeRunning = false
			pipeErr = err
			if err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("rrrd: pipeline: %v", err)
			} else {
				log.Printf("rrrd: feed exhausted after %d windows; still serving", mon.WindowsClosed())
			}
		case err := <-httpDone:
			if pipeRunning {
				stop()
				<-pipeDone
			}
			return err
		}
	}
}
