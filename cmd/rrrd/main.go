// Command rrrd is the staleness query-serving daemon: it runs the full
// monitoring pipeline over live (simulated) BGP and traceroute feeds in
// the background while serving staleness queries, live signal streams, and
// refresh planning over HTTP.
//
//	rrrd -addr :8080                      # quick-scale feed, serve forever
//	rrrd -pace 100ms -v                   # real-time-ish pacing, log signals
//	rrrd -snapshot /tmp/rrr.snap          # snapshot on shutdown (and on demand)
//	rrrd -snapshot /tmp/rrr.snap -restore # restart from the snapshot
//	rrrd -wal-dir /tmp/rrr.wal            # crash-consistent: log every record
//	rrrd -wal-dir /tmp/rrr.wal -wal-fsync record   # strictest durability
//	rrrd -debug-addr :6060                # pprof + /metrics on a side listener
//	rrrd -scenario full                   # overlay adversarial episodes on the feeds
//
// Try it:
//
//	curl localhost:8080/v1/stats
//	curl localhost:8080/v1/keys?stale=1
//	curl localhost:8080/v1/stale/10.3.0.1-10.9.0.9
//	curl -N localhost:8080/v1/signals        # SSE stream (incl. event: routing)
//	curl localhost:8080/v1/events            # classified routing events so far
//	curl -d '{"classes":["hijack-origin"]}' localhost:8080/v1/events
//	curl -d '{"budget":20}' localhost:8080/v1/refresh/plan
//	curl localhost:8080/metrics              # Prometheus text exposition
//	curl localhost:8080/readyz               # 503 until WAL recovery completes
//
// Startup with -wal-dir is serve-early: the HTTP listener comes up
// immediately (liveness green, readiness 503), the snapshot restores, the
// WAL replays every record past the snapshot's watermark through the
// recovery path, segments the snapshot covers are compacted away, and
// only then does /readyz go 200 and the pipeline resume ingesting — from
// the open window, skipping records the replay already ingested.
//
// Graceful shutdown (SIGINT/SIGTERM): cancel the pipeline (which drains
// buffered observations and closes the open window), write the snapshot if
// -snapshot is set, compact the WAL behind it, then stop the HTTP
// listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rrr"
	"rrr/internal/cluster"
	"rrr/internal/events"
	"rrr/internal/experiments"
	"rrr/internal/feedwire"
	"rrr/internal/netsim"
	"rrr/internal/obs"
	"rrr/internal/server"
	"rrr/internal/wal"
)

// The WAL must keep satisfying the pipeline's tee interface.
var _ rrr.RecordLog = (*wal.WAL)(nil)

// options collects the daemon's flag-configured knobs.
type options struct {
	addr        string
	scale       string
	days        int
	seed        int64
	shards      int
	pace        time.Duration
	snapshot    string
	restore     bool
	walDir      string
	walFsync    string
	walSegBytes int64
	ring        int
	maxInflight int
	debugAddr   string
	feedRetries int
	feedBackoff time.Duration
	verbose     bool

	// Networked feed mode: ingest from an rrrfeedd server instead of the
	// in-process simulator feeds. Reconnect/resume rides the pipeline's
	// RetryPolicy + window-aligned positional replay.
	feedAddr   string
	feedBuffer int
	feedPolicy string
	feedStall  time.Duration

	// Cluster worker mode: this daemon ingests the full feed but tracks
	// only the corpus pairs its consistent-hash slice owns. Front K such
	// workers with rrrd-router to serve the merged corpus.
	workerID   int
	workers    int
	partitions int

	// Adversarial scenario overlay on the simulated feeds: forged hijack/
	// leak/blackhole announcements and fabricated traceroute artifacts,
	// classified live on /v1/events and the SSE routing stream.
	scenario     string
	scenarioSeed int64
}

// parseScenarioPack maps the -scenario flag to a netsim pack: empty or
// "off" disables, "full" enables everything, and a comma-separated kind
// list enables exactly those injections.
func parseScenarioPack(s string) (*netsim.ScenarioPack, error) {
	switch s {
	case "", "off":
		return nil, nil
	case "full":
		p := netsim.FullPack()
		return &p, nil
	}
	var p netsim.ScenarioPack
	for _, kind := range strings.Split(s, ",") {
		switch strings.TrimSpace(kind) {
		case "hijack-origin":
			p.HijackOrigin = true
		case "hijack-moas":
			p.HijackMOAS = true
		case "hijack-subprefix":
			p.HijackSubprefix = true
		case "leaks":
			p.RouteLeaks = true
		case "blackholes":
			p.Blackholes = true
		case "artifacts":
			p.Artifacts = true
		case "diurnal":
			p.Diurnal = true
		case "anycast":
			p.Anycast = true
		default:
			return nil, fmt.Errorf("unknown -scenario kind %q", kind)
		}
	}
	return &p, nil
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "HTTP listen address")
	flag.StringVar(&o.scale, "scale", "quick", "feed scale: quick or paper")
	flag.IntVar(&o.days, "days", 0, "virtual days of feed before EOF (0 keeps the scale default)")
	flag.Int64Var(&o.seed, "seed", 0, "simulation seed (0 keeps the scale default)")
	flag.IntVar(&o.shards, "shards", 0, "engine shards (0 = GOMAXPROCS)")
	flag.DurationVar(&o.pace, "pace", 0, "wall-clock delay per 15-min virtual window (0 = full speed)")
	flag.StringVar(&o.snapshot, "snapshot", "", "snapshot file path (written on shutdown and POST /v1/snapshot)")
	flag.BoolVar(&o.restore, "restore", false, "restore corpus and signals from -snapshot at startup")
	flag.StringVar(&o.walDir, "wal-dir", "", "write-ahead log directory (empty disables the WAL)")
	flag.StringVar(&o.walFsync, "wal-fsync", "window", "WAL durability: record, window, or a sync interval like 2s")
	flag.Int64Var(&o.walSegBytes, "wal-segment-bytes", 8<<20, "WAL segment rotation size")
	flag.IntVar(&o.ring, "ring", server.DefaultRingSize, "per-SSE-subscriber signal buffer")
	flag.IntVar(&o.maxInflight, "max-inflight", server.DefaultMaxInFlight, "in-flight data-request bound; excess requests are shed with 503 + Retry-After")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "optional debug listen address serving /metrics and /debug/pprof/*")
	flag.IntVar(&o.feedRetries, "feed-retries", 5, "transient feed failures tolerated per window before a feed is declared dead")
	flag.DurationVar(&o.feedBackoff, "feed-backoff", 500*time.Millisecond, "initial retry backoff after a feed failure (doubles per attempt)")
	flag.BoolVar(&o.verbose, "v", false, "log every signal")
	flag.StringVar(&o.feedAddr, "feed-addr", "", "rrrfeedd address to ingest from over TCP (empty = in-process simulator feeds)")
	flag.IntVar(&o.feedBuffer, "feed-buffer", feedwire.DefaultBuffer, "per-stream client record buffer for -feed-addr")
	flag.StringVar(&o.feedPolicy, "feed-policy", "block", "full-buffer policy for -feed-addr: block (TCP backpressure) or disconnect (drop + reconnect)")
	flag.DurationVar(&o.feedStall, "feed-stall", 5*time.Second, "how long the disconnect policy tolerates a full buffer before dropping the connection")
	flag.IntVar(&o.workerID, "worker-id", -1, "cluster worker ID in [0, -workers); -1 runs single-node")
	flag.IntVar(&o.workers, "workers", 0, "cluster worker count (with -worker-id)")
	flag.IntVar(&o.partitions, "partitions", cluster.DefaultPartitions, "cluster hash-ring partition count (must match the router)")
	flag.StringVar(&o.scenario, "scenario", "", "adversarial scenario pack over the simulated feeds: off, full, or comma-separated kinds (hijack-origin,hijack-moas,hijack-subprefix,leaks,blackholes,artifacts,diurnal,anycast)")
	flag.Int64Var(&o.scenarioSeed, "scenario-seed", 0, "episode-schedule seed for -scenario (0 derives from the simulation seed)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(o options) error {
	var sc experiments.Scale
	switch o.scale {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", o.scale)
	}
	if o.days > 0 {
		sc.Days = o.days
	}
	if o.seed != 0 {
		sc.SimCfg.Seed = o.seed
	}
	sc.Shards = o.shards
	pack, err := parseScenarioPack(o.scenario)
	if err != nil {
		return err
	}
	if pack != nil {
		if o.feedAddr != "" {
			return errors.New("-scenario overlays the in-process simulator feeds; it cannot combine with -feed-addr (run the pack on the feed server side instead)")
		}
		sc.Scenario = pack
		sc.ScenarioSeed = o.scenarioSeed
		log.Printf("rrrd: scenario pack enabled (%s)", o.scenario)
	}

	// Worker mode: agree on the partition placement with the router (and
	// every sibling worker) purely from flags — no coordination service.
	var ring *cluster.Ring
	if o.workerID >= 0 {
		if o.workerID >= o.workers {
			return fmt.Errorf("-worker-id %d out of range for -workers %d", o.workerID, o.workers)
		}
		var err error
		ring, err = cluster.NewRing(o.workers, o.partitions)
		if err != nil {
			return err
		}
		log.Printf("rrrd: worker %d/%d owns %d of %d partitions (+%d as standby, rf=%d)",
			o.workerID, o.workers, ring.OwnedPartitions(o.workerID), ring.Partitions(),
			ring.ReplicaPartitions(o.workerID)-ring.OwnedPartitions(o.workerID), ring.ReplicaFactor())
	}

	log.Printf("rrrd: building %s-scale environment (seed %d)", o.scale, sc.SimCfg.Seed)
	env := experiments.NewDaemonEnv(sc, o.pace)

	cfg := rrr.DefaultConfig()
	cfg.WindowSec = sc.WindowSec
	cfg.Shards = o.shards
	mon, err := rrr.NewMonitor(rrr.Options{
		Config:     cfg,
		Mapper:     env.Mapper,
		Aliases:    env.Aliases,
		Geo:        env.Geo,
		Rel:        env.Rel,
		IXPMembers: env.IXPMembers,
	})
	if err != nil {
		return err
	}

	// Prime the RIB view before streaming (table dump first). Priming and
	// corpus tracking are deterministic from flags, so the WAL does not
	// log them: recovery re-primes identically and replays only feed
	// records. The event detector learns its origin/transit baselines from
	// the same dump and taps the live feed records the engine ingests;
	// WAL replay rebuilds staleness state only, not past routing events.
	det := events.NewDetector(events.Config{WindowSec: sc.WindowSec})
	for _, u := range env.Dump {
		mon.ObserveBGP(u)
		det.Prime(u)
	}

	var w *wal.WAL
	if o.walDir != "" {
		policy, interval, err := wal.ParseFsyncPolicy(o.walFsync)
		if err != nil {
			return err
		}
		w, err = wal.Open(wal.Options{
			Dir:           o.walDir,
			SegmentBytes:  o.walSegBytes,
			Fsync:         policy,
			FsyncInterval: interval,
		})
		if err != nil {
			return err
		}
		defer w.Close()
	}

	health := rrr.NewPipelineHealth()
	srvCfg := server.Config{SnapshotPath: o.snapshot, RingSize: o.ring, MaxInFlight: o.maxInflight, Health: health, Events: det}
	if w != nil {
		srvCfg.WALStatus = w.Status
	}
	if ring != nil {
		srvCfg.Worker = &server.WorkerIdentity{
			ID:         o.workerID,
			Workers:    o.workers,
			Partitions: ring.OwnedPartitions(o.workerID),
			RF:         ring.ReplicaFactor(),
		}
	}
	srv := server.New(mon, srvCfg)
	det.SetSink(srv.PublishEvent)

	// Serve early: liveness comes up before recovery so orchestrators see
	// the process alive, while /readyz answers 503 until the monitor's
	// state is complete.
	srv.SetReady(false)
	httpSrv := &http.Server{Addr: o.addr, Handler: srv.Handler()}
	httpDone := make(chan error, 1)
	go func() {
		log.Printf("rrrd: serving on %s (readiness gated on recovery)", o.addr)
		httpDone <- httpSrv.ListenAndServe()
	}()

	// Phase 1: snapshot restore sets the window clock (the WAL compaction
	// watermark); without -restore the corpus is tracked fresh.
	watermark := int64(rrr.ResumeAll)
	if o.restore {
		if o.snapshot == "" {
			return errors.New("-restore needs -snapshot")
		}
		info, err := server.RestoreSnapshot(o.snapshot, mon)
		if err != nil {
			return err
		}
		watermark = info.Watermark
		log.Printf("rrrd: restored %d corpus entries, %d active signals from %s",
			info.Entries, info.Signals, o.snapshot)
	} else {
		tracked, skipped, foreign := 0, 0, 0
		for _, tr := range env.Corpus {
			if ring != nil && !ring.IsReplica(tr.Key(), o.workerID) {
				foreign++ // another worker's slice; still observed via the shared feed
				continue
			}
			if err := mon.Track(tr); err != nil {
				skipped++ // AS-loop traces are discarded (Appendix A)
				continue
			}
			tracked++
		}
		if ring != nil {
			log.Printf("rrrd: tracking %d corpus pairs (%d traces discarded, %d owned elsewhere)", tracked, skipped, foreign)
		} else {
			log.Printf("rrrd: tracking %d corpus pairs (%d traces discarded)", tracked, skipped)
		}
	}

	// Phase 2: WAL replay rebuilds everything ingested after the
	// snapshot, emitting replayed windows' signals into the hub (fresh
	// subscribers arrive later; the hub never blocks).
	var resume *rrr.ResumeState
	if w != nil {
		rec := rrr.NewRecovery(mon, srv.Publish)
		info, err := w.Replay(func(r wal.Record) error {
			switch {
			case r.Update != nil:
				rec.ObserveUpdate(*r.Update)
			case r.Trace != nil:
				rec.ObserveTrace(r.Trace)
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("rrrd: wal recovery: %w", err)
		}
		var stats rrr.RecoveryStats
		resume, stats = rec.Finish()
		log.Printf("rrrd: wal replayed %d records from %d segments (%d updates, %d traces, %d pre-snapshot skipped, %d windows closed, truncated tail: %v)",
			info.Records, info.Segments, stats.Updates, stats.Traces, stats.Skipped, stats.Windows, info.TruncatedTail)
		if watermark != rrr.ResumeAll {
			if n, err := w.Compact(watermark); err != nil {
				log.Printf("rrrd: wal compact: %v", err)
			} else if n > 0 {
				log.Printf("rrrd: wal compacted %d segments behind snapshot watermark %d", n, watermark)
			}
		}
	}
	srv.SetReady(true)

	// One writer: the pipeline goroutine. Its sink tees into the SSE hub
	// (never blocks) and, optionally, the log.
	sink := srv.Publish
	if o.verbose {
		sink = rrr.Tee(srv.Publish, func(s rrr.Signal) { log.Printf("signal: %s", s) })
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pipeCfg := rrr.PipelineConfig{
		Sink: sink,
		Tap:  det,
		Retry: rrr.RetryPolicy{
			MaxRetries:         o.feedRetries,
			Backoff:            o.feedBackoff,
			ContinueOnDeadFeed: true,
		},
		DedupAdjacent: true,
		Health:        health,
		Resume:        resume,
		OnWindowClose: srv.PublishWindowClose,
	}
	if o.feedAddr != "" {
		// Networked feeds: every pipeline (re)open dials rrrfeedd fresh,
		// resuming window-aligned from the since the supervisor passes —
		// reconnect after a cut and resume after WAL recovery are the
		// same code path.
		policy, err := feedwire.ParsePolicy(o.feedPolicy)
		if err != nil {
			return err
		}
		conn := feedwire.NewConnector(feedwire.ConnectorConfig{
			Addr:         o.feedAddr,
			Buffer:       o.feedBuffer,
			Policy:       policy,
			StallTimeout: o.feedStall,
		})
		defer conn.Close()
		log.Printf("rrrd: ingesting over the wire from %s (buffer %d, policy %s)", o.feedAddr, o.feedBuffer, o.feedPolicy)
		pipeCfg.OpenUpdates = func(since int64) (rrr.UpdateSource, error) { return conn.OpenUpdates(since) }
		pipeCfg.OpenTraces = func(since int64) (rrr.TraceSource, error) { return conn.OpenTraces(since) }
	} else {
		// The simulated feeds regenerate deterministically from their
		// beginning; after a recovery replay the pipeline resumes at the
		// open window, so skip everything before it (the replay ingested
		// the open window's prefix, and positional replay matching skips
		// exactly that prefix as the feed re-delivers it).
		var updates rrr.UpdateSource = env.Updates
		var traces rrr.TraceSource = env.Traces
		if resume != nil && resume.WindowStart != rrr.ResumeAll {
			updates = rrr.SkipUpdatesBefore(updates, resume.WindowStart)
			traces = rrr.SkipTracesBefore(traces, resume.WindowStart)
		}
		pipeCfg.Updates = updates
		pipeCfg.Traces = traces
	}
	if w != nil {
		pipeCfg.WAL = w
	}
	pipeDone := make(chan error, 1)
	go func() {
		// Degrade gracefully: transient feed failures retry with backoff,
		// and a feed that dies anyway stops silently while the other feed
		// and the query API keep running. Per-feed health shows up in
		// /v1/stats and the retry counters in /metrics.
		pipeDone <- rrr.RunPipeline(ctx, mon, pipeCfg)
	}()

	// Optional debug listener: pprof plus a second /metrics. Kept off the
	// main mux so profiling endpoints are never exposed on the query port.
	if o.debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.Handle("GET /metrics", obs.Default.Handler())
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("rrrd: debug endpoints on %s (/metrics, /debug/pprof/)", o.debugAddr)
			if err := http.ListenAndServe(o.debugAddr, dbg); err != nil {
				log.Printf("rrrd: debug listener: %v", err)
			}
		}()
	}

	// Run until a signal arrives or the HTTP listener fails. A finished
	// feed (pipeDone with nil) keeps the daemon serving: consumers can
	// still query the final state.
	var pipeErr error
	pipeRunning := true
	for {
		select {
		case <-ctx.Done():
			log.Printf("rrrd: shutting down")
			if pipeRunning {
				pipeErr = <-pipeDone // pipeline drains + closes final window
				pipeRunning = false
			}
			if pipeErr != nil && !errors.Is(pipeErr, context.Canceled) {
				log.Printf("rrrd: pipeline: %v", pipeErr)
			}
			if o.snapshot != "" {
				info, err := server.WriteSnapshot(o.snapshot, mon)
				if err != nil {
					log.Printf("rrrd: snapshot: %v", err)
				} else {
					log.Printf("rrrd: snapshot: %d entries, %d signals, %d bytes -> %s",
						info.Entries, info.Signals, info.Bytes, o.snapshot)
					if w != nil && info.Watermark != rrr.ResumeAll {
						if n, err := w.Compact(info.Watermark); err != nil {
							log.Printf("rrrd: wal compact: %v", err)
						} else if n > 0 {
							log.Printf("rrrd: wal compacted %d segments behind shutdown snapshot", n)
						}
					}
				}
			}
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			return httpSrv.Shutdown(shutCtx)
		case err := <-pipeDone:
			pipeRunning = false
			pipeErr = err
			if err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("rrrd: pipeline: %v", err)
			} else {
				log.Printf("rrrd: feed exhausted after %d windows; still serving", mon.WindowsClosed())
			}
		case err := <-httpDone:
			if pipeRunning {
				stop()
				<-pipeDone
			}
			return err
		}
	}
}
