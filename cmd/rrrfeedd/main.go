// Command rrrfeedd is the feed server: it exposes the simulator's BGP
// update and public traceroute streams over TCP using the feed wire
// protocol (internal/feedwire), so one or more rrrd daemons can ingest
// over the network instead of in-process.
//
//	rrrfeedd -addr :9090                  # quick-scale feed, retain everything
//	rrrfeedd -pace 100ms                  # real-time-ish pacing
//	rrrfeedd -history-windows 8           # bound retained history (resume gaps
//	                                      #   past the horizon become explicit)
//
// Point a daemon at it:
//
//	rrrd -feed-addr localhost:9090
//
// The same scale + seed always generate the same feed, so a daemon
// ingesting over the wire is differentially comparable to one running the
// simulator in-process. Records are retained in memory (optionally
// bounded by -history-windows); clients resume from any retained point
// window-aligned, and slow clients exert TCP backpressure rather than
// growing server state per connection.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rrr/internal/experiments"
	"rrr/internal/feedwire"
)

func main() {
	var (
		addr           = flag.String("addr", ":9090", "TCP listen address")
		scale          = flag.String("scale", "quick", "feed scale: quick or paper")
		days           = flag.Int("days", 0, "virtual days of feed before EOF (0 keeps the scale default)")
		seed           = flag.Int64("seed", 0, "simulation seed (0 keeps the scale default)")
		pace           = flag.Duration("pace", 0, "wall-clock delay per virtual window (0 = full speed)")
		historyWindows = flag.Int("history-windows", 0, "windows of history to retain per stream (0 = everything)")
	)
	flag.Parse()

	if err := run(*addr, *scale, *days, *seed, *pace, *historyWindows); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr, scale string, days int, seed int64, pace time.Duration, historyWindows int) error {
	var sc experiments.Scale
	switch scale {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}
	if days > 0 {
		sc.Days = days
	}
	if seed != 0 {
		sc.SimCfg.Seed = seed
	}

	log.Printf("rrrfeedd: building %s-scale environment (seed %d)", scale, sc.SimCfg.Seed)
	env := experiments.NewDaemonEnv(sc, pace)

	srv, err := feedwire.NewServer(feedwire.Config{
		WindowSec:      sc.WindowSec,
		HistoryWindows: historyWindows,
	})
	if err != nil {
		return err
	}
	srv.Pump(env.Updates, env.Traces)

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("rrrfeedd: serving update+trace streams on %s (windowSec %d, history %s)",
		lis.Addr(), sc.WindowSec, historyDesc(historyWindows))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-stop
		log.Printf("rrrfeedd: shutting down")
		srv.Close()
	}()

	return srv.Serve(lis)
}

func historyDesc(w int) string {
	if w <= 0 {
		return "unbounded"
	}
	return fmt.Sprintf("%d windows", w)
}
