// Command rrrsim inspects the deterministic Internet simulator that backs
// the benchmark suite: topology summaries, per-AS detail, event traces, and
// on-demand traceroutes.
//
//	rrrsim topo -seed 3
//	rrrsim as -asn 104
//	rrrsim events -days 2
//	rrrsim trace -src AS140 -dst AS160
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"rrr/internal/bgp"
	"rrr/internal/netsim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	size := fs.String("size", "default", "topology size: default or test")
	days := fs.Int("days", 1, "days of events to sample")
	asn := fs.Int("asn", 0, "AS number for the as command")
	src := fs.String("src", "", "source AS (e.g. AS140) for trace")
	dst := fs.String("dst", "", "destination AS for trace")
	fs.Parse(os.Args[2:])

	cfg := netsim.DefaultConfig()
	if *size == "test" {
		cfg = netsim.TestConfig()
	}
	cfg.Seed = *seed
	s := netsim.New(cfg)

	switch cmd {
	case "topo":
		cmdTopo(s)
	case "as":
		cmdAS(s, bgp.ASN(*asn))
	case "events":
		cmdEvents(s, *days)
	case "trace":
		cmdTrace(s, *src, *dst)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rrrsim topo|as|events|trace [flags]")
	os.Exit(2)
}

func cmdTopo(s *netsim.Sim) {
	tiers := map[int]int{}
	for _, asn := range s.T.ASList {
		tiers[s.T.ASes[asn].Tier]++
	}
	fmt.Printf("ASes: %d (tier1 %d, tier2 %d, tier3 %d)\n",
		len(s.T.ASList), tiers[1], tiers[2], tiers[3])
	fmt.Printf("routers: %d  links: %d  IXPs: %d  cities: %d  VPs: %d\n",
		len(s.T.Routers)-1, len(s.T.Links)-1, len(s.T.IXPs)-1, len(s.T.Cities), len(s.VPs()))
	rels := map[netsim.Relationship]int{}
	multi := 0
	pairSeen := map[[2]bgp.ASN]bool{}
	for i := 1; i < len(s.T.Links); i++ {
		l := s.T.Links[i]
		rels[l.Rel]++
		pair := [2]bgp.ASN{l.AAS, l.BAS}
		if l.BAS < l.AAS {
			pair = [2]bgp.ASN{l.BAS, l.AAS}
		}
		if !pairSeen[pair] && len(s.T.LinksBetween(l.AAS, l.BAS)) >= 2 {
			multi++
		}
		pairSeen[pair] = true
	}
	fmt.Printf("links by relationship: customer %d, peer %d\n",
		rels[netsim.RelCustomer], rels[netsim.RelPeer])
	fmt.Printf("adjacencies: %d (%d with parallel links)\n", len(pairSeen), multi)
	for i := 1; i < len(s.T.IXPs); i++ {
		x := s.T.IXPs[i]
		fmt.Printf("  IXP %d: LAN %s, city %d, %d members\n",
			x.ID, x.LAN, x.City, len(x.MemberIPs))
	}
}

func cmdAS(s *netsim.Sim, asn bgp.ASN) {
	a, ok := s.T.ASes[asn]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown AS %d\n", asn)
		os.Exit(1)
	}
	fmt.Printf("%s: tier %d, block %s, %d PoPs, geo-tags=%v strips=%v\n",
		a.ASN, a.Tier, a.Block, len(a.PoPs), a.TagsGeo, a.StripsCommunities)
	for _, p := range a.Prefixes {
		fmt.Printf("  originates %s\n", p)
	}
	var nbs []bgp.ASN
	for nb := range a.Neighbors {
		nbs = append(nbs, nb)
	}
	sort.Slice(nbs, func(i, j int) bool { return nbs[i] < nbs[j] })
	for _, nb := range nbs {
		fmt.Printf("  %s: %s via %d link(s)\n", nb, a.Rel[nb], len(a.Neighbors[nb]))
	}
}

func cmdEvents(s *netsim.Sim, days int) {
	for d := 0; d < days; d++ {
		for w := 0; w < 96; w++ {
			s.Step(900)
		}
	}
	fmt.Printf("%d events over %d day(s):\n", len(s.Log), days)
	counts := map[netsim.EventKind]int{}
	for _, ev := range s.Log {
		counts[ev.Kind]++
		target := ""
		switch {
		case ev.Link != 0:
			l := s.T.Links[ev.Link]
			target = fmt.Sprintf("link %d (%s-%s)", ev.Link, l.AAS, l.BAS)
		case ev.A != 0:
			target = fmt.Sprintf("%s-%s", ev.A, ev.B)
		case ev.AS != 0:
			target = ev.AS.String()
			if ev.IXP != 0 {
				target += fmt.Sprintf(" -> IXP %d", ev.IXP)
			}
		}
		fmt.Printf("  t=%-7d %-14s %s\n", ev.Time, ev.Kind, target)
	}
	fmt.Println("totals:")
	for k, n := range counts {
		fmt.Printf("  %-14s %d\n", k, n)
	}
}

func cmdTrace(s *netsim.Sim, srcS, dstS string) {
	parseAS := func(v string) bgp.ASN {
		v = strings.TrimPrefix(v, "AS")
		n, err := strconv.Atoi(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad AS %q\n", v)
			os.Exit(1)
		}
		return bgp.ASN(n)
	}
	if srcS == "" || dstS == "" {
		stubs := s.StubASes()
		srcS, dstS = stubs[0].String(), stubs[len(stubs)-1].String()
	}
	srcAS, dstAS := parseAS(srcS), parseAS(dstS)
	srcIP := s.T.HostIP(srcAS, 1)
	dstIP := s.T.HostIP(dstAS, 1)
	tr := s.Traceroute(0, srcIP, dstIP, 0)
	fmt.Println(tr)
	fmt.Printf("control-plane AS path: %v\n", s.R.ASPath(srcAS, dstAS))
	for _, bc := range s.Borders(srcIP, dstIP) {
		fmt.Printf("border: %s -> %s via link %d (egress router %d, ingress %d)\n",
			bc.FromAS, bc.ToAS, bc.Link, bc.Egress, bc.Ingress)
	}
}
