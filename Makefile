GO ?= go
FUZZTIME ?= 10s
FUZZ_TARGETS := \
	internal/bgp:FuzzMRTReader \
	internal/bgp:FuzzBinaryReader \
	internal/bgp:FuzzTextReader \
	internal/bgp:FuzzParsePath \
	internal/bgp:FuzzParseCommunity \
	internal/wal:FuzzWALReader \
	internal/feedwire:FuzzFrameReader \
	internal/events:FuzzTruthCodec \
	internal/anomaly:FuzzZScoreDegenerate \
	internal/anomaly:FuzzBitmapDetector

.PHONY: build test vet race bench bench-json fuzz crashtest clustertest chaostest feedtest scenariotest verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector matters here: the sharded engine, Monitor, and
# Pipeline are concurrent, and the equivalence/concurrency tests only
# prove their locking under -race.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 10x ./internal/core/

# Machine-readable bench record: engine + serve + cluster throughput plus
# a full metrics-registry snapshot, diffable across PRs. BENCH_PR names
# the output (BENCH_$(BENCH_PR).json) so each PR commits its own record
# without clobbering earlier baselines; benchgate then enforces the
# sharded-engine speedup floor (skipped automatically on 1-core hosts)
# and the cluster floor: at every K the router-merged req/s must hold a
# fraction of the single-node baseline, so a change that serializes the
# fan-out fails the build instead of landing quietly. The floor is set
# for the worst case (a 1-core runner, where router, K workers, and the
# load generator all share the core); multi-core hosts clear it by a
# wide margin.
BENCH_PR ?= pr10
bench-json:
	$(GO) run ./cmd/rrrbench -only enginebench,servebench,clusterbench,feedbench,scenariobench -benchout BENCH_$(BENCH_PR).json
	$(GO) run ./cmd/benchgate -min-speedup 1.0 -min-cluster-frac 0.03 -min-degraded-frac 0.02 -min-feed-frac 0.2 \
		-min-event-precision 0.85 -min-event-recall 0.9 -max-stale-degradation 0.05 BENCH_$(BENCH_PR).json

# Short fuzz pass over every entry point that consumes untrusted bytes:
# the BGP parsers (MRT, binary, and text codecs; path and community
# parsers) and the WAL segment reader. Each pkg:Target entry gets FUZZTIME
# of coverage-guided input on top of its seed corpus. Go allows one -fuzz
# target per invocation, hence the loop.
fuzz:
	@for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; tgt=$${t##*:}; \
		echo "fuzz $$pkg $$tgt ($(FUZZTIME))"; \
		$(GO) test ./$$pkg -run '^$$' -fuzz "^$$tgt$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

# Crash-torture harness in short mode: seeded crash points across all
# three fsync policies, each proving the recovered daemon byte-identical
# to an uninterrupted run — single-node and one-worker-of-a-cluster both.
# The full sweeps run without -short.
crashtest:
	$(GO) test ./internal/wal -run 'TestCrashTorture|TestClusterCrashTorture' -short -count=1 -v

# Cluster acceptance under the race detector: the K∈{1,3} differential
# (router-merged keys/batch/stats/SSE byte-identical to one daemon), the
# router degradation paths (worker down mid-batch, wedged worker, SSE
# reconnect), and the kill-one-worker WAL recovery torture.
clustertest:
	$(GO) test -race -count=1 ./internal/cluster -run 'TestClusterDifferential|TestRouter|TestRing|TestBreaker' -v
	$(GO) test -race -count=1 ./internal/wal -run TestClusterCrashTorture -v

# Self-healing acceptance under the race detector: one cluster run absorbs
# a stream wire kill, a worker crash + restart, and an overload blast under
# continuous read load that must never fail while every partition keeps a
# live replica, then proves every surface byte-identical to a never-killed
# cluster — including after a both-replicas-down outage heals.
chaostest:
	$(GO) test -race -count=1 ./internal/cluster -run TestClusterChaos -v

# Networked-feed acceptance under the race detector: the wire
# differential (a daemon fed over TCP — including forced mid-window
# disconnects and a slow consumer tripping the drop policy — is
# byte-identical to in-process feeds) plus the frame codec's truncation
# and corruption suite.
feedtest:
	$(GO) test -race -count=1 ./internal/feedwire -run 'TestWireDifferential|TestFrameReader' -v

# Adversarial-scenario acceptance under the race detector: netsim pack
# determinism (byte-identical streams and ground-truth labels, with and
# without fault injection), the classifier edge-case tables (benign anycast
# MOAS vs hijack MOAS, self-healing leaks, blackholes), the ground-truth
# accuracy harness, and the event-surface differential (serial vs sharded
# vs 3-worker cluster byte-identical on /v1/events and SSE routing frames).
scenariotest:
	$(GO) test -race -count=1 ./internal/events -v
	$(GO) test -race -count=1 ./internal/netsim -run TestScenario -v
	$(GO) test -race -count=1 ./internal/experiments -run 'TestScenario|TestScoreEvents' -v
	$(GO) test -race -count=1 ./internal/cluster -run TestEventsDifferential -v

# Tier-1 verification plus vet and the race pass. The server tests scrape
# GET /metrics (format, layer coverage, concurrent-scrape race-cleanliness).
verify: build vet test race
