GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector matters here: the sharded engine, Monitor, and
# Pipeline are concurrent, and the equivalence/concurrency tests only
# prove their locking under -race.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 10x ./internal/core/

# Tier-1 verification plus vet and the race pass.
verify: build vet test race
