GO ?= go

.PHONY: build test vet race bench bench-json verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector matters here: the sharded engine, Monitor, and
# Pipeline are concurrent, and the equivalence/concurrency tests only
# prove their locking under -race.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 10x ./internal/core/

# Machine-readable bench record: engine + serve throughput plus a full
# metrics-registry snapshot, diffable across PRs.
bench-json:
	$(GO) run ./cmd/rrrbench -only enginebench,servebench -benchout BENCH_pr3.json

# Tier-1 verification plus vet and the race pass. The server tests scrape
# GET /metrics (format, layer coverage, concurrent-scrape race-cleanliness).
verify: build vet test race
