GO ?= go
FUZZTIME ?= 10s
FUZZ_TARGETS := FuzzMRTReader FuzzBinaryReader FuzzTextReader FuzzParsePath FuzzParseCommunity

.PHONY: build test vet race bench bench-json fuzz verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector matters here: the sharded engine, Monitor, and
# Pipeline are concurrent, and the equivalence/concurrency tests only
# prove their locking under -race.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 10x ./internal/core/

# Machine-readable bench record: engine + serve throughput plus a full
# metrics-registry snapshot, diffable across PRs.
bench-json:
	$(GO) run ./cmd/rrrbench -only enginebench,servebench -benchout BENCH_pr3.json

# Short fuzz pass over every parser entry point that consumes untrusted
# bytes (MRT, binary, and text codecs; path and community parsers). Each
# target gets FUZZTIME of coverage-guided input on top of its checked-in
# seed corpus under internal/bgp/testdata/fuzz/. Go allows one -fuzz
# target per invocation, hence the loop.
fuzz:
	@for t in $(FUZZ_TARGETS); do \
		echo "fuzz $$t ($(FUZZTIME))"; \
		$(GO) test ./internal/bgp -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

# Tier-1 verification plus vet and the race pass. The server tests scrape
# GET /metrics (format, layer coverage, concurrent-scrape race-cleanliness).
verify: build vet test race
