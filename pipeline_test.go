package rrr

import (
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
)

func TestPipelineInterleavesAndSignals(t *testing.T) {
	aliases := bordermap.OracleFunc(func(v uint32) (int, bool) { return int(v), true })
	m, err := NewMonitor(Options{Mapper: facadeMapper{}, Aliases: aliases})
	if err != nil {
		t.Fatal(err)
	}
	// Prime and track outside the pipeline (table dump + corpus).
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}

	// BGP feed: quiet keepalive announcements every window, then the
	// suffix shift at window 45.
	var updates []Update
	for w := int64(1); w < 45; w++ {
		updates = append(updates,
			announceUpd(t, w*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	}
	updates = append(updates,
		announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}))
	updates = append(updates,
		announceUpd(t, 46*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}))

	// A public traceroute feed interleaved with the updates.
	var traces []*Traceroute
	for w := int64(0); w < 46; w += 4 {
		traces = append(traces, trace(t, w*900+100, "9.0.0.1", "4.0.0.8",
			"9.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.8"))
	}

	var got []Signal
	err = Pipeline(context.Background(), m,
		bgp.NewSliceSource(updates), NewTraceSliceSource(traces),
		func(s Signal) { got = append(got, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("pipeline produced no signals")
	}
	found := false
	for _, s := range got {
		if s.Technique == TechBGPASPath && s.Key == tr.Key() {
			found = true
		}
	}
	if !found {
		t.Fatalf("no AS-path signal in %v", got)
	}
	if !m.Stale(tr.Key()) {
		t.Fatal("pair not stale after pipeline")
	}
}

func TestPipelineNilFeeds(t *testing.T) {
	m := newTestMonitor(t)
	if err := Pipeline(context.Background(), m, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineContextCancel(t *testing.T) {
	m := newTestMonitor(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	updates := []Update{announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 4})}
	err := Pipeline(ctx, m, bgp.NewSliceSource(updates), nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
}

type failingTraceSource struct{}

func (failingTraceSource) Read() (*Traceroute, error) { return nil, io.ErrUnexpectedEOF }

// blockingUpdateSource serves updates from an unbuffered channel, blocking
// between items like a live feed; reads (when non-nil) gets a token each
// time Read is entered, so tests can tell when the reader is parked.
type blockingUpdateSource struct {
	ch    chan Update
	reads chan struct{}
}

func (s *blockingUpdateSource) Read() (Update, error) {
	if s.reads != nil {
		select {
		case s.reads <- struct{}{}:
		default:
		}
	}
	u, ok := <-s.ch
	if !ok {
		return Update{}, io.EOF
	}
	return u, nil
}

type blockingTraceSource struct {
	ch chan *Traceroute
}

func (s *blockingTraceSource) Read() (*Traceroute, error) {
	t, ok := <-s.ch
	if !ok {
		return nil, io.EOF
	}
	return t, nil
}

// TestPipelineCancelWhileBlocked is the live-daemon shutdown case: both
// reader goroutines are parked inside Read (feeds with no pending data)
// when the context fires. Pipeline must still return promptly with
// context.Canceled instead of waiting for the feeds.
func TestPipelineCancelWhileBlocked(t *testing.T) {
	m := newTestMonitor(t)
	us := &blockingUpdateSource{ch: make(chan Update)}
	ts := &blockingTraceSource{ch: make(chan *Traceroute)}
	defer close(us.ch)
	defer close(ts.ch)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Pipeline(ctx, m, us, ts, nil) }()

	// Hand the pipeline one update so it is mid-stream (not at EOF), then
	// leave both feeds silent and cancel.
	us.ch <- announceUpd(t, 5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 4})
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v; want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pipeline did not honor cancellation while readers were blocked")
	}
}

// TestPipelineCancelClosesOpenWindow checks the graceful-shutdown drain:
// observations already ingested when the context fires still produce their
// signals via a final window close.
func TestPipelineCancelClosesOpenWindow(t *testing.T) {
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	m.Advance(45 * 900)

	us := &blockingUpdateSource{ch: make(chan Update), reads: make(chan struct{}, 8)}
	defer close(us.ch)
	var got []Signal
	var mu sync.Mutex
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Pipeline(ctx, m, us, nil, func(s Signal) {
			mu.Lock()
			got = append(got, s)
			mu.Unlock()
		})
	}()

	// The change lands in window 45, which stays open (no later-window item
	// arrives to close it); cancellation must close it and emit the signal.
	<-us.reads // reader is inside Read
	us.ch <- announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4})
	// The reader re-entering Read means the update was handed to the merge
	// loop's channel; give the merge a beat to observe it.
	<-us.reads
	time.Sleep(100 * time.Millisecond)
	if m.Stale(tr.Key()) {
		t.Fatal("window closed before cancellation; scenario broken")
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("cancellation dropped the open window's signals")
	}
	if !m.Stale(tr.Key()) {
		t.Fatal("pair not stale after drain")
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("empty Tee should be nil (Pipeline's discard)")
	}
	var a, b []int64
	one := Tee(func(s Signal) { a = append(a, s.WindowStart) })
	one(Signal{WindowStart: 1})
	if len(a) != 1 {
		t.Fatal("single-sink Tee did not deliver")
	}
	both := Tee(func(s Signal) { a = append(a, s.WindowStart) }, nil,
		func(s Signal) { b = append(b, s.WindowStart) })
	both(Signal{WindowStart: 2})
	both(Signal{WindowStart: 3})
	if len(a) != 3 || len(b) != 2 || a[2] != 3 || b[1] != 3 {
		t.Fatalf("fan-out = %v / %v", a, b)
	}
}

// erroringUpdateSource serves a fixed slice, then fails with err — a decode
// failure mid-feed rather than a clean EOF.
type erroringUpdateSource struct {
	updates []Update
	err     error
}

func (s *erroringUpdateSource) Read() (Update, error) {
	if len(s.updates) == 0 {
		return Update{}, s.err
	}
	u := s.updates[0]
	s.updates = s.updates[1:]
	return u, nil
}

// TestPipelineFeedErrorDrain checks that a mid-feed decode error drains the
// open window just like cancellation does: a change observed before the
// error must still surface as a signal instead of being silently discarded
// along with everything buffered since the last window boundary.
func TestPipelineFeedErrorDrain(t *testing.T) {
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	m.Advance(45 * 900)

	// The change lands in window 45; the very next Read fails, so nothing
	// in-stream ever closes that window.
	us := &erroringUpdateSource{
		updates: []Update{announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4})},
		err:     io.ErrUnexpectedEOF,
	}
	var got []Signal
	err := Pipeline(context.Background(), m, us, nil, func(s Signal) { got = append(got, s) })
	if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v; want wrapped unexpected EOF", err)
	}
	if len(got) == 0 {
		t.Fatal("feed error dropped the open window's signals")
	}
	if !m.Stale(tr.Key()) {
		t.Fatal("pair not stale after feed-error drain")
	}
}

// TestPipelineNegativeTimestampWindows pins the floor-division window
// indexing: a pre-epoch observation must land in the window containing it
// ([-900, 0)), not share truncation's window 0 with post-epoch items.
func TestPipelineNegativeTimestampWindows(t *testing.T) {
	m := newTestMonitor(t)
	updates := []Update{
		announceUpd(t, -450, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}),
		announceUpd(t, 450, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}),
	}
	if err := Pipeline(context.Background(), m, bgp.NewSliceSource(updates), nil, nil); err != nil {
		t.Fatal(err)
	}
	// t=-450 opens window -900, t=450 closes it and opens window 0, and the
	// final close finishes window 0: two windows. Truncating division would
	// fold both updates into a single window.
	if n := m.WindowsClosed(); n != 2 {
		t.Fatalf("WindowsClosed = %d; want 2", n)
	}
}

func TestPipelineFeedErrorPropagates(t *testing.T) {
	m := newTestMonitor(t)
	err := Pipeline(context.Background(), m, nil, failingTraceSource{}, nil)
	if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v; want wrapped unexpected EOF", err)
	}
}

func TestPipelineClosesFinalWindow(t *testing.T) {
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	// Warm up through Advance, then a single-update feed whose change
	// should be signaled by the *final* window close inside Pipeline.
	m.Advance(45 * 900)
	updates := []Update{
		announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}),
		announceUpd(t, 46*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}),
	}
	var got []Signal
	if err := Pipeline(context.Background(), m, bgp.NewSliceSource(updates), nil,
		func(s Signal) { got = append(got, s) }); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("final window close produced no signals")
	}
}
