package rrr

import (
	"context"
	"errors"
	"io"
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
)

func TestPipelineInterleavesAndSignals(t *testing.T) {
	aliases := bordermap.OracleFunc(func(v uint32) (int, bool) { return int(v), true })
	m, err := NewMonitor(Options{Mapper: facadeMapper{}, Aliases: aliases})
	if err != nil {
		t.Fatal(err)
	}
	// Prime and track outside the pipeline (table dump + corpus).
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}

	// BGP feed: quiet keepalive announcements every window, then the
	// suffix shift at window 45.
	var updates []Update
	for w := int64(1); w < 45; w++ {
		updates = append(updates,
			announceUpd(t, w*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	}
	updates = append(updates,
		announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}))
	updates = append(updates,
		announceUpd(t, 46*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}))

	// A public traceroute feed interleaved with the updates.
	var traces []*Traceroute
	for w := int64(0); w < 46; w += 4 {
		traces = append(traces, trace(t, w*900+100, "9.0.0.1", "4.0.0.8",
			"9.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.8"))
	}

	var got []Signal
	err = Pipeline(context.Background(), m,
		bgp.NewSliceSource(updates), NewTraceSliceSource(traces),
		func(s Signal) { got = append(got, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("pipeline produced no signals")
	}
	found := false
	for _, s := range got {
		if s.Technique == TechBGPASPath && s.Key == tr.Key() {
			found = true
		}
	}
	if !found {
		t.Fatalf("no AS-path signal in %v", got)
	}
	if !m.Stale(tr.Key()) {
		t.Fatal("pair not stale after pipeline")
	}
}

func TestPipelineNilFeeds(t *testing.T) {
	m := newTestMonitor(t)
	if err := Pipeline(context.Background(), m, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineContextCancel(t *testing.T) {
	m := newTestMonitor(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	updates := []Update{announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 4})}
	err := Pipeline(ctx, m, bgp.NewSliceSource(updates), nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
}

type failingTraceSource struct{}

func (failingTraceSource) Read() (*Traceroute, error) { return nil, io.ErrUnexpectedEOF }

func TestPipelineFeedErrorPropagates(t *testing.T) {
	m := newTestMonitor(t)
	err := Pipeline(context.Background(), m, nil, failingTraceSource{}, nil)
	if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v; want wrapped unexpected EOF", err)
	}
}

func TestPipelineClosesFinalWindow(t *testing.T) {
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	// Warm up through Advance, then a single-update feed whose change
	// should be signaled by the *final* window close inside Pipeline.
	m.Advance(45 * 900)
	updates := []Update{
		announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}),
		announceUpd(t, 46*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}),
	}
	var got []Signal
	if err := Pipeline(context.Background(), m, bgp.NewSliceSource(updates), nil,
		func(s Signal) { got = append(got, s) }); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("final window close produced no signals")
	}
}
