// Archivalreuse: decide which traceroutes in a growing archive are still
// safe to reuse (§6.2). The example accumulates an archive of public
// traceroutes from the simulator's measurement platform, tracks every one
// of them in the Monitor, and answers "measurement requests" from the
// archive when a fresh entry exists — the reuse that preserves probing
// budgets.
//
//	go run ./examples/archivalreuse -days 3
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"rrr/internal/experiments"
	"rrr/internal/traceroute"
)

func main() {
	days := flag.Int("days", 3, "virtual days")
	perDay := flag.Int("archive-per-day", 300, "archived traceroutes per day")
	flag.Parse()

	sc := experiments.QuickScale()
	sc.Days = *days
	lab := experiments.NewLab(sc)
	rng := rand.New(rand.NewSource(9))
	asns := lab.Sim.StubASes()

	type archived struct {
		key    traceroute.Key
		issued int64
	}
	var archive []archived

	totalWindows := sc.Days * 86400 / int(sc.WindowSec)
	windowsPerDay := int(86400 / sc.WindowSec)
	perWindow := *perDay / windowsPerDay
	if perWindow == 0 {
		perWindow = 1
	}

	for w := 0; w < totalWindows; w++ {
		ws := int64(w) * sc.WindowSec
		lab.Sim.Step(sc.WindowSec)
		lab.PublicRound(sc.PublicPerWindow, ws+sc.WindowSec/4)

		// Archive new public traceroutes and track them so their borders
		// are monitored.
		for i := 0; i < perWindow; i++ {
			probe := lab.Plat.Probes[rng.Intn(len(lab.Plat.Probes))]
			dst := lab.Sim.T.HostIP(asns[rng.Intn(len(asns))], 1+rng.Intn(20))
			tr := lab.Sim.Traceroute(probe.ID, probe.IP, dst, ws+sc.WindowSec/2)
			if _, tracked := lab.Corp.Get(tr.Key()); tracked {
				continue
			}
			en, err := lab.Corp.Add(tr)
			if err != nil {
				continue
			}
			lab.Engine.AddCorpusEntry(en)
			archive = append(archive, archived{key: tr.Key(), issued: tr.Time})
		}
		lab.Engine.CloseWindow(ws)

		if (w+1)%windowsPerDay != 0 {
			continue
		}
		fresh, stale, unknown := 0, 0, 0
		for _, a := range archive {
			switch {
			case len(lab.Engine.Active(a.key)) > 0:
				stale++
			case len(lab.Engine.Registrations(a.key)) == 0:
				unknown++
			default:
				fresh++
			}
		}
		fmt.Printf("day %d: archive=%4d  fresh=%4d stale=%4d unknown=%4d\n",
			(w+1)/windowsPerDay, len(archive), fresh, stale, unknown)
	}

	// Serve measurement requests from the archive: a request for (source
	// AS, destination /16) is satisfied by any fresh archived traceroute
	// matching it.
	freshIndex := make(map[[2]uint32]traceroute.Key)
	for _, a := range archive {
		if len(lab.Engine.Active(a.key)) > 0 || len(lab.Engine.Registrations(a.key)) == 0 {
			continue
		}
		srcAS, _ := lab.Sim.T.OriginAS(a.key.Src)
		freshIndex[[2]uint32{uint32(srcAS), a.key.Dst >> 16}] = a.key
	}
	served, total := 0, 1000
	for i := 0; i < total; i++ {
		probe := lab.Plat.Probes[rng.Intn(len(lab.Plat.Probes))]
		dst := lab.Sim.T.HostIP(asns[rng.Intn(len(asns))], 1)
		if _, ok := freshIndex[[2]uint32{uint32(probe.AS), dst >> 16}]; ok {
			served++
		}
	}
	fmt.Printf("\nof %d incoming measurement requests, %d (%.0f%%) answered from the archive\n",
		total, served, 100*float64(served)/float64(total))
	fmt.Println("each answered request preserves probing budget and reduces platform load")
}
