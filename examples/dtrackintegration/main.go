// Dtrackintegration: combine DTRACK-style change detection with staleness
// prediction signals (§6.1). The example builds a pseudo-ground-truth of
// path changes from the simulator, generates a signal feed with the engine,
// and emulates three trackers at the same probing budget: vanilla DTRACK,
// signals alone, and DTRACK+SIGNALS.
//
//	go run ./examples/dtrackintegration -days 3 -pps 0.0005
package main

import (
	"flag"
	"fmt"

	"rrr/internal/baselines"
	"rrr/internal/experiments"
)

func main() {
	days := flag.Int("days", 3, "virtual days")
	pps := flag.Float64("pps", 0.0005, "average probing budget (packets/sec/path)")
	flag.Parse()

	sc := experiments.QuickScale()
	sc.Days = *days
	fmt.Printf("building pseudo-ground-truth and signal feed (%d days)...\n", *days)
	r := experiments.RunFig8(sc, 150, []float64{*pps})

	fmt.Printf("\nground truth: %d border-level path changes across 150 pairs\n", r.TotalChanges)
	fmt.Printf("signal coverage bound (optimal): %.0f%%\n\n", 100*r.Optimal)
	fmt.Printf("at %.4f pps/path:\n", *pps)
	fmt.Printf("  %-16s %5.1f%% of changes detected\n", "round-robin", 100*r.RoundRobin[0])
	fmt.Printf("  %-16s %5.1f%%\n", "sibyl", 100*r.Sibyl[0])
	fmt.Printf("  %-16s %5.1f%%\n", "dtrack", 100*r.DTrack[0])
	fmt.Printf("  %-16s %5.1f%%\n", "signals", 100*r.Signals[0])
	fmt.Printf("  %-16s %5.1f%%\n", "dtrack+signals", 100*r.DTrackSignals[0])

	fmt.Println("\nhow the integration works (§6.1):")
	fmt.Println("  1. each incoming staleness prediction signal costs one detection probe")
	fmt.Println("  2. confirmed signals trigger a full remap traceroute")
	fmt.Println("  3. leftover budget runs DTRACK's own prediction-driven probing")
	_ = baselines.TraceroutePackets
}
