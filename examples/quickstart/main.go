// Quickstart: build a Monitor, prime it with a BGP table dump, track one
// corpus traceroute, stream feeds, and read staleness signals — entirely
// with hand-built data, no simulator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rrr"
	"rrr/internal/bgp"
	"rrr/internal/bordermap"
)

// mapper resolves the example's toy address plan: AS n owns n.0.0.0/8.
type mapper struct{}

func (mapper) ASOf(ip uint32) (rrr.ASN, bool) {
	if ip>>24 == 0 {
		return 0, false
	}
	return rrr.ASN(ip >> 24), true
}

func (mapper) IXPOf(uint32) (int, bool) { return 0, false }

func ip(s string) uint32 {
	v, err := rrr.ParseIP(s)
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func prefix(s string) rrr.Prefix {
	p, err := rrr.ParsePrefix(s)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func trace(when int64, src, dst string, hops ...string) *rrr.Traceroute {
	tr := &rrr.Traceroute{Src: ip(src), Dst: ip(dst), Time: when}
	for i, h := range hops {
		hop := rrr.Hop{TTL: i + 1}
		if h != "*" {
			hop.IP = ip(h)
		}
		tr.Hops = append(tr.Hops, hop)
	}
	return tr
}

func announce(when int64, vpIP string, vpAS rrr.ASN, pfx string, path ...rrr.ASN) rrr.Update {
	return rrr.Update{
		Time: when, PeerIP: ip(vpIP), PeerAS: vpAS, Type: bgp.Announce,
		Prefix: prefix(pfx), ASPath: path,
	}
}

func main() {
	// Every interface is its own router in this toy universe.
	aliases := bordermap.OracleFunc(func(v uint32) (int, bool) { return int(v), true })
	mon, err := rrr.NewMonitor(rrr.Options{Mapper: mapper{}, Aliases: aliases})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Prime the RIB: two collector vantage points with routes to the
	// destination prefix 4.0.0.0/8.
	mon.ObserveBGP(announce(0, "5.0.0.9", 5, "4.0.0.0/8", 5, 2, 3, 4))
	mon.ObserveBGP(announce(0, "6.0.0.9", 6, "4.0.0.0/8", 6, 3, 4))

	// 2. Track a corpus traceroute 1.0.0.1 → 4.0.0.9 with AS path 1 2 3 4.
	corpusTrace := trace(0, "1.0.0.1", "4.0.0.9",
		"1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.2", "4.0.0.9")
	if err := mon.Track(corpusTrace); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tracking %s with %d potential signals\n",
		corpusTrace.Key(), len(mon.Potential(corpusTrace.Key())))

	// 3. Quiet windows (the detectors need history before they may flag).
	sigs := mon.Advance(45 * 900)
	fmt.Printf("after 45 quiet windows: %d signals, stale=%v\n",
		len(sigs), mon.Stale(corpusTrace.Key()))

	// 4. A BGP vantage point's route shifts inside the overlapping suffix:
	// AS5's path to the destination changes from 5 2 3 4 to 5 2 9 4.
	mon.ObserveBGP(announce(45*900+10, "5.0.0.9", 5, "4.0.0.0/8", 5, 2, 9, 4))
	sigs = mon.Advance(46 * 900)
	for _, s := range sigs {
		fmt.Printf("signal: %s\n", s)
	}
	fmt.Printf("stale=%v — the corpus traceroute should be refreshed or distrusted\n",
		mon.Stale(corpusTrace.Key()))

	// 5. A refresh measurement confirms the change and re-registers.
	fresh := trace(46*900, "1.0.0.1", "4.0.0.9",
		"1.0.0.2", "2.0.0.1", "9.0.0.1", "4.0.0.3", "4.0.0.9")
	cls, err := mon.RecordRefresh(fresh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refresh classified as %v; stale=%v\n", cls, mon.Stale(corpusTrace.Key()))
}
