// Corpusmaintainer: keep a traceroute corpus fresh under a strict probing
// budget (the paper's headline use case, §4.3). The example runs against
// the built-in Internet simulator: it maintains a probe→anchor corpus for
// several virtual days, spending a small daily refresh budget only on pairs
// the staleness prediction signals flag, and reports how the corpus
// freshness compares to leaving it alone.
//
//	go run ./examples/corpusmaintainer -days 3 -budget 25
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"rrr/internal/bordermap"
	"rrr/internal/corpus"
	"rrr/internal/experiments"
	"rrr/internal/traceroute"
)

func main() {
	days := flag.Int("days", 3, "virtual days")
	budget := flag.Int("budget", 25, "refresh traceroutes per day")
	flag.Parse()

	sc := experiments.QuickScale()
	sc.Days = *days
	lab := experiments.NewLab(sc)
	n := lab.BuildCorpus()
	fmt.Printf("maintaining %d traceroutes with a budget of %d refreshes/day\n", n, *budget)

	// A frozen copy of the initial corpus shows what no maintenance looks
	// like.
	initial := make(map[traceroute.Key]*corpus.Entry)
	for _, k := range lab.Corp.Keys() {
		en, _ := lab.Corp.Get(k)
		initial[k] = en
	}

	rng := rand.New(rand.NewSource(7))
	totalWindows := sc.Days * 86400 / int(sc.WindowSec)
	windowsPerDay := int(86400 / sc.WindowSec)
	spent := 0

	for w := 0; w < totalWindows; w++ {
		ws := int64(w) * sc.WindowSec
		lab.Sim.Step(sc.WindowSec)
		lab.PublicRound(sc.PublicPerWindow, ws+sc.WindowSec/2)
		lab.Engine.CloseWindow(ws)

		if (w+1)%windowsPerDay != 0 {
			continue
		}
		now := ws + sc.WindowSec
		// Spend the day's budget on signal-flagged pairs (§4.3.1 planning:
		// calibrated TPR ordering with Table 1 bootstrap).
		refreshed, found := 0, 0
		for _, k := range lab.Engine.RefreshPlan(*budget, rng) {
			en, ok := lab.Corp.Get(k)
			if !ok {
				continue
			}
			fresh, err := lab.MeasurePair(k, en.Trace.ProbeID, now)
			if err != nil {
				continue
			}
			cls, _ := lab.Engine.EvaluateRefresh(fresh)
			refreshed++
			spent++
			if cls != bordermap.Unchanged {
				found++
			}
			lab.Corp.Add(fresh.Trace)
			lab.Engine.Reregister(fresh)
		}

		// Audit corpus freshness against ground truth (free in the
		// simulator; a real deployment cannot do this, which is the point
		// of the signals).
		staleMaintained, staleFrozen := 0, 0
		for _, k := range lab.Corp.Keys() {
			en, _ := lab.Corp.Get(k)
			truth, err := lab.MeasurePair(k, en.Trace.ProbeID, now)
			if err != nil {
				continue
			}
			if corpus.ClassifyEntry(en, truth) != bordermap.Unchanged {
				staleMaintained++
			}
			if corpus.ClassifyEntry(initial[k], truth) != bordermap.Unchanged {
				staleFrozen++
			}
		}
		fmt.Printf("day %d: refreshed %2d (%2d changed) | stale now: maintained=%3d frozen=%3d of %d\n",
			(w+1)/windowsPerDay, refreshed, found, staleMaintained, staleFrozen, n)
	}
	fmt.Printf("total probes spent: %d (vs %d for daily full remeasurement)\n",
		spent, n*sc.Days)
}
