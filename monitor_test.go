package rrr

import (
	"math/rand"
	"sync"
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
)

// facadeMapper: AS by first octet; 240.x is IXP 1.
type facadeMapper struct{}

func (facadeMapper) ASOf(ip uint32) (bgp.ASN, bool) {
	f := ip >> 24
	if f == 240 || f == 0 {
		return 0, false
	}
	return bgp.ASN(f), true
}

func (facadeMapper) IXPOf(ip uint32) (int, bool) {
	if ip>>24 == 240 {
		return 1, true
	}
	return 0, false
}

func ip(t *testing.T, s string) uint32 {
	t.Helper()
	v, err := ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func trace(t *testing.T, when int64, src, dst string, hops ...string) *Traceroute {
	t.Helper()
	tr := &Traceroute{Src: ip(t, src), Dst: ip(t, dst), Time: when}
	for i, h := range hops {
		hop := Hop{TTL: i + 1}
		if h != "*" {
			hop.IP = ip(t, h)
		}
		tr.Hops = append(tr.Hops, hop)
	}
	return tr
}

func newTestMonitor(t *testing.T) *Monitor {
	t.Helper()
	aliases := bordermap.OracleFunc(func(v uint32) (int, bool) { return int(v), true })
	m, err := NewMonitor(Options{Mapper: facadeMapper{}, Aliases: aliases})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func announceUpd(t *testing.T, tm int64, vpIP string, as ASN, prefix string, path []ASN) Update {
	t.Helper()
	p, err := ParsePrefix(prefix)
	if err != nil {
		t.Fatal(err)
	}
	return Update{Time: tm, PeerIP: ip(t, vpIP), PeerAS: as, Type: bgp.Announce,
		Prefix: p, ASPath: path}
}

func TestMonitorRequiresMapper(t *testing.T) {
	if _, err := NewMonitor(Options{}); err == nil {
		t.Fatal("want error without mapper")
	}
}

// TestAdvanceNegativeFirstWindow pins the floor-division first-window snap:
// a pre-epoch observation at t=-450 belongs to window [-900, 0), so
// Advance(900) must close two windows (-900 and 0). Truncating division
// would snap the first window to 0 and close only one.
func TestAdvanceNegativeFirstWindow(t *testing.T) {
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, -450, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	m.Advance(900)
	if n := m.WindowsClosed(); n != 2 {
		t.Fatalf("WindowsClosed = %d; want 2 (windows -900 and 0)", n)
	}
}

func TestMonitorEndToEnd(t *testing.T) {
	m := newTestMonitor(t)
	// Prime the RIB: two VPs with routes to 4.0.0.0/8.
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	m.ObserveBGP(announceUpd(t, 0, "6.0.0.9", 6, "4.0.0.0/8", []ASN{6, 3, 4}))

	// Track a corpus traceroute.
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.2", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	if len(m.Tracked()) != 1 {
		t.Fatal("Tracked != 1")
	}
	if len(m.Potential(tr.Key())) == 0 {
		t.Fatal("no potential signals")
	}

	// Quiet windows via Advance, then a suffix change.
	if sigs := m.Advance(45 * 900); len(sigs) != 0 {
		t.Fatalf("quiet advance produced %d signals", len(sigs))
	}
	m.ObserveBGP(announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}))
	sigs := m.Advance(46 * 900)
	if len(sigs) == 0 {
		t.Fatal("suffix change produced no signals")
	}
	if !m.Stale(tr.Key()) {
		t.Fatal("pair should be stale")
	}
	if len(m.StaleKeys()) != 1 {
		t.Fatal("StaleKeys != 1")
	}

	// Refresh planning respects budget.
	plan := m.PlanRefresh(1, rand.New(rand.NewSource(1)))
	if len(plan) != 1 || plan[0] != tr.Key() {
		t.Fatalf("plan = %v", plan)
	}

	// Record a refresh showing the change.
	fresh := trace(t, 46*900, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "9.0.0.1", "4.0.0.3", "4.0.0.9")
	cls, err := m.RecordRefresh(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if cls != ASChange {
		t.Fatalf("cls = %v; want AS change", cls)
	}
	if m.Stale(tr.Key()) {
		t.Fatal("refresh should clear staleness")
	}
	counts := m.SignalCounts()
	if counts[TechBGPASPath] == 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestMonitorUntrack(t *testing.T) {
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	m.Untrack(tr.Key())
	if len(m.Tracked()) != 0 || len(m.Potential(tr.Key())) != 0 {
		t.Fatal("untrack incomplete")
	}
}

func TestMonitorClassifyReadOnly(t *testing.T) {
	m := newTestMonitor(t)
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	same := trace(t, 900, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	cls, err := m.Classify(same)
	if err != nil || cls != Unchanged {
		t.Fatalf("classify same = %v, %v", cls, err)
	}
	diff := trace(t, 900, "1.0.0.1", "4.0.0.9", "1.0.0.2", "7.0.0.1", "3.0.0.1", "4.0.0.9")
	cls, err = m.Classify(diff)
	if err != nil || cls != ASChange {
		t.Fatalf("classify diff = %v, %v", cls, err)
	}
	// Classify must not replace the stored entry.
	en, _ := m.Entry(tr.Key())
	if en.Trace.Time != 0 {
		t.Fatal("classify replaced entry")
	}
}

func TestMonitorTrackRejectsLoops(t *testing.T) {
	m := newTestMonitor(t)
	loop := trace(t, 0, "1.0.0.1", "1.0.0.9", "1.0.0.2", "2.0.0.1", "1.0.0.3")
	if err := m.Track(loop); err == nil {
		t.Fatal("AS-loop trace accepted")
	}
}

func TestNewRIBFromUpdates(t *testing.T) {
	ups := []Update{
		announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 4}),
		announceUpd(t, 1, "6.0.0.9", 6, "4.0.0.0/8", []ASN{6, 4}),
	}
	rib := NewRIBFromUpdates(ups)
	if got := len(rib.VPs()); got != 2 {
		t.Fatalf("VPs = %d; want 2", got)
	}
}

func TestMonitorPrunedCommunities(t *testing.T) {
	m := newTestMonitor(t)
	if m.PrunedCommunities() != 0 {
		t.Fatal("fresh monitor has pruned communities")
	}
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	m.ObserveBGP(announceUpd(t, 0, "6.0.0.9", 6, "4.0.0.0/8", []ASN{6, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	m.Advance(3 * 900)
	// A community change that repeated refreshes disprove gets pruned.
	u := announceUpd(t, 3*900+5, "6.0.0.9", 6, "4.0.0.0/8", []ASN{6, 3, 4})
	u.Communities = Communities3(3, 7000)
	m.ObserveBGP(u)
	m.Advance(4 * 900)
	if !m.Stale(tr.Key()) {
		t.Fatal("community signal missing")
	}
	// Refresh shows no change: community outcome recorded as FP.
	same := trace(t, 4*900, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if _, err := m.RecordRefresh(same); err != nil {
		t.Fatal(err)
	}
	if m.PrunedCommunities() == 0 {
		t.Fatal("false-positive community not pruned (quota 1)")
	}
}

// Communities3 builds a one-element community set (test helper).
func Communities3(as ASN, v uint16) []Community {
	return []Community{MakeCommunity(as, v)}
}

func TestCloseWindowThenAdvanceNoDoubleClose(t *testing.T) {
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	m.CloseWindow(0)
	// Advance must resume at window 1, not re-close window 0; with 45
	// total windows of history the detector behaves identically to the
	// pure-Advance path.
	m.Advance(45 * 900)
	m.ObserveBGP(announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}))
	if sigs := m.Advance(46 * 900); len(sigs) == 0 {
		t.Fatal("mixed CloseWindow/Advance missed the change")
	}
}

func TestActiveSignalsAndFormatIP(t *testing.T) {
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	m.Advance(45 * 900)
	m.ObserveBGP(announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}))
	m.Advance(46 * 900)
	sigs := m.ActiveSignals(tr.Key())
	if len(sigs) == 0 {
		t.Fatal("no active signals")
	}
	if got := FormatIP(tr.Key().Src); got != "1.0.0.1" {
		t.Fatalf("FormatIP = %q", got)
	}
	// RecordRefresh on an untracked pair errors cleanly via Classify path.
	other := trace(t, 0, "8.0.0.1", "4.0.0.9", "8.0.0.2", "4.0.0.9")
	if _, err := m.RecordRefresh(other); err != nil {
		t.Fatalf("refresh of untracked pair should register it: %v", err)
	}
	if _, ok := m.Entry(other.Key()); !ok {
		t.Fatal("untracked refresh did not store entry")
	}
}

func TestRevocationStats(t *testing.T) {
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	m.Advance(45 * 900)
	m.ObserveBGP(announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}))
	m.Advance(46 * 900)
	if !m.Stale(tr.Key()) {
		t.Fatal("not stale")
	}
	// Revert and settle.
	m.ObserveBGP(announceUpd(t, 46*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	m.Advance(48 * 900)
	if m.Stale(tr.Key()) {
		t.Fatal("still stale after revert")
	}
	sigs, pairs := m.RevocationStats()
	if sigs == 0 || pairs == 0 {
		t.Fatalf("revocation stats = %d, %d; want > 0", sigs, pairs)
	}
}

// countingMapper counts ASOf calls, exposing how many times a traceroute
// was processed (border mapping resolves every hop).
type countingMapper struct {
	facadeMapper
	calls *int
}

func (m countingMapper) ASOf(ip uint32) (bgp.ASN, bool) {
	*m.calls++
	return m.facadeMapper.ASOf(ip)
}

// TestRecordRefreshSingleProcess is the regression test for RecordRefresh
// processing the traceroute twice and re-registering a different *Entry
// than the one it stored, leaving engine and corpus on different pointers.
func TestRecordRefreshSingleProcess(t *testing.T) {
	calls := 0
	aliases := bordermap.OracleFunc(func(v uint32) (int, bool) { return int(v), true })
	m, err := NewMonitor(Options{Mapper: countingMapper{calls: &calls}, Aliases: aliases})
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}

	calls = 0
	fresh := trace(t, 900, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if _, err := m.RecordRefresh(fresh); err != nil {
		t.Fatal(err)
	}
	refreshCalls := calls
	calls = 0
	if err := m.Track(trace(t, 1800, "1.0.0.1", "4.0.0.9",
		"1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")); err != nil {
		t.Fatal(err)
	}
	if refreshCalls > calls {
		t.Errorf("RecordRefresh resolved %d hops, Track only %d: trace processed more than once", refreshCalls, calls)
	}

	// Corpus and engine must share one entry, holding the fresh trace.
	fresh2 := trace(t, 2700, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if _, err := m.RecordRefresh(fresh2); err != nil {
		t.Fatal(err)
	}
	stored, ok := m.corp.Get(fresh2.Key())
	if !ok || stored.Trace != fresh2 {
		t.Fatal("corpus does not hold the fresh measurement")
	}
	reg, ok := m.engine.Entry(fresh2.Key())
	if !ok || reg != stored {
		t.Fatal("engine and corpus hold different entry pointers")
	}
}

// TestAdvanceEpochTimestamps is the regression test for Advance's first
// call iterating empty windows from time 0: with realistic epoch
// timestamps it used to close ~1.8 million windows before reaching the
// feed.
func TestAdvanceEpochTimestamps(t *testing.T) {
	const start = int64(1_600_000_000)
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, start, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	tr := trace(t, start, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	m.Advance(start + 3*900)
	if n := m.engine.WindowsClosed(); n > 4 {
		t.Fatalf("Advance from epoch closed %d windows; want the feed's ~3", n)
	}
	// And the snapped grid still detects changes.
	m.Advance(start + 45*900)
	m.ObserveBGP(announceUpd(t, start+45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}))
	if sigs := m.Advance(start + 46*900); len(sigs) == 0 {
		t.Fatal("suffix change missed on epoch-aligned grid")
	}

	// First call with no prior observations snaps to the target time.
	m2 := newTestMonitor(t)
	m2.Advance(start)
	if n := m2.engine.WindowsClosed(); n != 0 {
		t.Fatalf("empty advance closed %d windows", n)
	}
}

// TestPlanRefreshNilRNG: a nil *rand.Rand must not panic and must pick a
// fresh deterministic source per call, so concurrent handlers can share
// the endpoint without a shared-RNG race.
func TestPlanRefreshNilRNG(t *testing.T) {
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	for i := uint32(1); i <= 6; i++ {
		tr := &Traceroute{Src: 1<<24 | i, Dst: 4<<24 | 100 + i, Time: 0}
		for j, h := range []uint32{1<<24 | (i + 50), 2<<24 | 1, 3<<24 | 1, 4<<24 | 100 + i} {
			tr.Hops = append(tr.Hops, Hop{TTL: j + 1, IP: h})
		}
		if err := m.Track(tr); err != nil {
			t.Fatal(err)
		}
	}
	m.Advance(45 * 900)
	m.ObserveBGP(announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}))
	m.Advance(46 * 900)
	if len(m.StaleKeys()) == 0 {
		t.Fatal("scenario produced no stale pairs")
	}

	p1 := m.PlanRefresh(3, nil)
	if len(p1) != 3 {
		t.Fatalf("plan = %v", p1)
	}
	p2 := m.PlanRefresh(3, nil)
	if len(p1) != len(p2) {
		t.Fatalf("nil-rng plans differ in size: %v vs %v", p1, p2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("nil-rng plan not deterministic: %v vs %v", p1, p2)
		}
	}
}

// TestTrackedAndStaleKeysSorted locks in the documented deterministic
// (Src, Dst) ordering regardless of insertion order.
func TestTrackedAndStaleKeysSorted(t *testing.T) {
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	// Track in descending src order.
	for _, src := range []string{"8.0.0.1", "3.0.0.1", "1.0.0.1"} {
		tr := trace(t, 0, src, "4.0.0.9", "2.0.0.1", "3.0.0.1", "4.0.0.9")
		if err := m.Track(tr); err != nil {
			t.Fatal(err)
		}
	}
	sorted := func(keys []Key) bool {
		for i := 1; i < len(keys); i++ {
			a, b := keys[i-1], keys[i]
			if a.Src > b.Src || (a.Src == b.Src && a.Dst >= b.Dst) {
				return false
			}
		}
		return true
	}
	if keys := m.Tracked(); len(keys) != 3 || !sorted(keys) {
		t.Fatalf("Tracked not sorted: %v", keys)
	}
	m.Advance(45 * 900)
	m.ObserveBGP(announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}))
	m.Advance(46 * 900)
	if keys := m.StaleKeys(); len(keys) < 2 || !sorted(keys) {
		t.Fatalf("StaleKeys not sorted: %v", keys)
	}
}

// TestSnapshotRestore round-trips the monitor's restartable state: corpus,
// active signals, window clock, and cumulative counters.
func TestSnapshotRestore(t *testing.T) {
	m, _ := snapshotScenario(t)
	snap := m.Snapshot()
	if len(snap.Traces) != 1 || len(snap.Active) == 0 {
		t.Fatalf("snapshot = %d traces, %d signals", len(snap.Traces), len(snap.Active))
	}

	m2 := newTestMonitor(t)
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	k := snap.Traces[0].Key()
	if !m2.Stale(k) {
		t.Fatal("restored monitor lost staleness")
	}
	if got, want := m2.Tracked(), m.Tracked(); len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("Tracked = %v, want %v", got, want)
	}
	got, want := m2.SignalCounts(), m.SignalCounts()
	for tech, n := range want {
		if got[tech] != n {
			t.Fatalf("SignalCounts[%v] = %d, want %d", tech, got[tech], n)
		}
	}
	if m2.WindowsClosed() != m.WindowsClosed() {
		t.Fatalf("WindowsClosed = %d, want %d", m2.WindowsClosed(), m.WindowsClosed())
	}

	// The restored monitor keeps working: a refresh clears the staleness
	// and counters keep accumulating on top of the restored baseline.
	fresh := trace(t, 47*900, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "9.0.0.1", "4.0.0.3", "4.0.0.9")
	if cls, err := m2.RecordRefresh(fresh); err != nil || cls != ASChange {
		t.Fatalf("refresh on restored monitor = %v, %v", cls, err)
	}
	if m2.Stale(k) {
		t.Fatal("refresh did not clear restored staleness")
	}

	// Snapshots chain: a second snapshot of the restored monitor carries
	// the combined counters.
	snap2 := m2.Snapshot()
	if snap2.WindowsClosed != m2.WindowsClosed() {
		t.Fatalf("second snapshot windows = %d, want %d", snap2.WindowsClosed, m2.WindowsClosed())
	}

	// Window-size mismatch is refused.
	bad := *snap
	bad.WindowSec = snap.WindowSec + 1
	if err := newTestMonitor(t).Restore(&bad); err == nil {
		t.Fatal("WindowSec mismatch accepted")
	}
}

// snapshotScenario: one tracked pair, gone stale via an AS-path change.
func snapshotScenario(t *testing.T) (*Monitor, *Traceroute) {
	t.Helper()
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	m.Advance(45 * 900)
	m.ObserveBGP(announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 9, 4}))
	m.Advance(46 * 900)
	if !m.Stale(tr.Key()) {
		t.Fatal("scenario setup: pair not stale")
	}
	return m, tr
}

// TestMonitorConcurrentAccess drives feeds and queries from separate
// goroutines; run with -race it checks the Monitor's locking.
func TestMonitorConcurrentAccess(t *testing.T) {
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				m.Stale(tr.Key())
				m.ActiveSignals(tr.Key())
				m.SignalCounts()
				m.Tracked()
				m.StaleKeys()
				m.PrunedCommunities()
			}
		}()
	}
	// One feeder: feeds stay time-ordered.
	for w := int64(0); w < 50; w++ {
		path := []ASN{5, 2, 3, 4}
		if w%7 == 0 {
			path = []ASN{5, 2, 9, 4}
		}
		m.ObserveBGP(announceUpd(t, w*900+5, "5.0.0.9", 5, "4.0.0.0/8", path))
		m.Advance((w + 1) * 900)
	}
	close(done)
	wg.Wait()
}
