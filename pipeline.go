package rrr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"rrr/internal/bgp"
)

// errPipelineCancelled is the internal sentinel the fill helpers return
// when ctx fires while they are blocked on a feed channel; Pipeline maps
// it back to ctx.Err() after draining.
var errPipelineCancelled = errors.New("rrr: pipeline cancelled")

// UpdateSource produces BGP updates in time order (io.EOF ends the feed).
// bgp.Merger, the MRT/binary/text readers, and simulator feeds implement it.
type UpdateSource = bgp.UpdateSource

// TraceSource produces public traceroutes in time order (io.EOF ends the
// feed).
type TraceSource interface {
	Read() (*Traceroute, error)
}

// TraceSliceSource serves traceroutes from memory.
type TraceSliceSource struct {
	traces []*Traceroute
	i      int
}

// NewTraceSliceSource wraps a slice.
func NewTraceSliceSource(ts []*Traceroute) *TraceSliceSource {
	return &TraceSliceSource{traces: ts}
}

// Read implements TraceSource.
func (s *TraceSliceSource) Read() (*Traceroute, error) {
	if s.i >= len(s.traces) {
		return nil, io.EOF
	}
	t := s.traces[s.i]
	s.i++
	return t, nil
}

// Tee fans one Pipeline sink out to several consumers: each signal is
// delivered to every non-nil sink in order, on the pipeline goroutine.
// Sinks that must not stall ingestion (an SSE fan-out, a logger) should
// hand off internally; see internal/server's subscriber hub. Nil sinks are
// dropped; with none left Tee returns nil, which Pipeline treats as
// "discard".
func Tee(sinks ...func(Signal)) func(Signal) {
	live := make([]func(Signal), 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(s Signal) {
		for _, sink := range live {
			sink(s)
		}
	}
}

// pipelineChanCap bounds each feed's decode-ahead buffer, so decoding
// overlaps monitor work without letting a fast feed run away from a slow
// consumer (backpressure: a full channel blocks the reader goroutine).
const pipelineChanCap = 1024

type updateItem struct {
	u   Update
	err error
}

type traceItem struct {
	t   *Traceroute
	err error
}

// Pipeline drives a Monitor from a BGP feed and a public-traceroute feed:
// the two time-ordered streams are interleaved by timestamp, windows close
// automatically at each WindowSec boundary, and every staleness prediction
// signal is delivered to sink as it is generated. Either source may be nil.
// Pipeline returns when both feeds are exhausted (closing the final
// window), when ctx is cancelled, or on the first feed error; in every
// case the currently-open window is closed on the way out, so buffered
// observations always produce their signals.
//
// Each source is decoded on its own goroutine feeding a bounded channel,
// so MRT parsing and archive I/O overlap signal processing while
// backpressure keeps memory bounded. Items are still consumed in merged
// time order, so the Monitor sees exactly the stream a serial loop would
// produce. On early return (error or cancellation) the reader goroutines
// are told to stop; one blocked inside a source Read call exits after that
// call returns.
//
// Cancellation is honored even while both reader goroutines are blocked
// inside Read (a live feed waiting for its next item): the merge loop
// selects on ctx alongside the feed channels. On cancellation the pipeline
// additionally closes the currently-open window — delivering buffered
// observations as final signals to sink — before returning ctx.Err(), so a
// daemon's graceful shutdown (cancel → drain → final window close →
// snapshot) loses nothing that was already observed.
//
// This is the integration shape of a production deployment: collector
// dumps and traceroute archives stream in while the monitor flags stale
// corpus entries.
func Pipeline(ctx context.Context, m *Monitor, updates UpdateSource, traces TraceSource, sink func(Signal)) error {
	stop := make(chan struct{})
	defer close(stop)

	var uch chan updateItem
	if updates != nil {
		uch = make(chan updateItem, pipelineChanCap)
		go func() {
			defer close(uch)
			for {
				u, err := updates.Read()
				if err == io.EOF {
					return
				}
				select {
				case uch <- updateItem{u: u, err: err}:
				case <-stop:
					return
				}
				if err != nil {
					return
				}
			}
		}()
	}
	var tch chan traceItem
	if traces != nil {
		tch = make(chan traceItem, pipelineChanCap)
		go func() {
			defer close(tch)
			for {
				t, err := traces.Read()
				if err == io.EOF {
					return
				}
				select {
				case tch <- traceItem{t: t, err: err}:
				case <-stop:
					return
				}
				if err != nil {
					return
				}
			}
		}()
	}

	var (
		pendingU Update
		haveU    bool
		pendingT *Traceroute
		window   = m.WindowSec()
		curIdx   int64
		started  bool
	)

	emit := func(sigs []Signal) {
		if sink == nil {
			return
		}
		for _, s := range sigs {
			sink(s)
		}
	}
	closeWin := func(ws int64) {
		emit(m.CloseWindow(ws))
		metPipeWindows.Inc()
	}
	// Window indices use floor division so a pre-epoch (negative)
	// timestamp lands in the window containing it, matching
	// Monitor.Advance's first-window snap; truncating division would put
	// t=-1 and t=+1 in the same window.
	advanceTo := func(t int64) {
		idx := floorDiv(t, window)
		if !started {
			started = true
			curIdx = idx
			return
		}
		for ; curIdx < idx; curIdx++ {
			closeWin(curIdx * window)
		}
	}

	// done is nil (blocks forever) when no context is supplied.
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	// finish closes the currently-open window on the way out of a
	// cancelled or feed-error run, so already-ingested observations still
	// produce their signals (graceful-shutdown drain); the feed-error path
	// matters because a decode failure otherwise silently discards every
	// observation buffered since the last window boundary.
	finish := func(err error) error {
		if started {
			closeWin(curIdx * window)
		}
		return err
	}

	fillU := func() error {
		if uch == nil || haveU {
			return nil
		}
		var it updateItem
		var ok bool
		select {
		case it, ok = <-uch:
		default:
			// Empty buffer: the merge loop is stalling on the decoder.
			// Timing only this path keeps time.Now off the fast path.
			stall := time.Now()
			select {
			case it, ok = <-uch:
			case <-done:
				metPipeStall.Observe(time.Since(stall).Seconds())
				return errPipelineCancelled
			}
			metPipeStall.Observe(time.Since(stall).Seconds())
		}
		if !ok {
			uch = nil
			return nil
		}
		metPipeUpdateQueue.Set(int64(len(uch)))
		if it.err != nil {
			metPipeErrBGP.Inc()
			return fmt.Errorf("rrr: bgp feed: %w", it.err)
		}
		pendingU, haveU = it.u, true
		return nil
	}
	fillT := func() error {
		if tch == nil || pendingT != nil {
			return nil
		}
		var it traceItem
		var ok bool
		select {
		case it, ok = <-tch:
		default:
			stall := time.Now()
			select {
			case it, ok = <-tch:
			case <-done:
				metPipeStall.Observe(time.Since(stall).Seconds())
				return errPipelineCancelled
			}
			metPipeStall.Observe(time.Since(stall).Seconds())
		}
		if !ok {
			tch = nil
			return nil
		}
		metPipeTraceQueue.Set(int64(len(tch)))
		if it.err != nil {
			metPipeErrTrace.Inc()
			return fmt.Errorf("rrr: traceroute feed: %w", it.err)
		}
		pendingT = it.t
		return nil
	}

	for {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return finish(ctx.Err())
			default:
			}
		}
		if err := fillU(); err != nil {
			if err == errPipelineCancelled {
				return finish(ctx.Err())
			}
			return finish(err)
		}
		if err := fillT(); err != nil {
			if err == errPipelineCancelled {
				return finish(ctx.Err())
			}
			return finish(err)
		}
		switch {
		case haveU && (pendingT == nil || pendingU.Time <= pendingT.Time):
			advanceTo(pendingU.Time)
			m.ObserveBGP(pendingU)
			metPipeUpdates.Inc()
			haveU = false
		case pendingT != nil:
			advanceTo(pendingT.Time)
			m.ObservePublic(pendingT)
			metPipeTraces.Inc()
			pendingT = nil
		default:
			// Both feeds exhausted: close the final window.
			if started {
				closeWin(curIdx * window)
			}
			return nil
		}
	}
}
