package rrr

import (
	"context"
	"fmt"
	"io"

	"rrr/internal/bgp"
)

// UpdateSource produces BGP updates in time order (io.EOF ends the feed).
// bgp.Merger, the MRT/binary/text readers, and simulator feeds implement it.
type UpdateSource = bgp.UpdateSource

// TraceSource produces public traceroutes in time order (io.EOF ends the
// feed).
type TraceSource interface {
	Read() (*Traceroute, error)
}

// TraceSliceSource serves traceroutes from memory.
type TraceSliceSource struct {
	traces []*Traceroute
	i      int
}

// NewTraceSliceSource wraps a slice.
func NewTraceSliceSource(ts []*Traceroute) *TraceSliceSource {
	return &TraceSliceSource{traces: ts}
}

// Read implements TraceSource.
func (s *TraceSliceSource) Read() (*Traceroute, error) {
	if s.i >= len(s.traces) {
		return nil, io.EOF
	}
	t := s.traces[s.i]
	s.i++
	return t, nil
}

// Pipeline drives a Monitor from a BGP feed and a public-traceroute feed:
// the two time-ordered streams are interleaved by timestamp, windows close
// automatically at each WindowSec boundary, and every staleness prediction
// signal is delivered to sink as it is generated. Either source may be nil.
// Pipeline returns when both feeds are exhausted (closing the final
// window), when ctx is cancelled, or on the first feed error.
//
// This is the integration shape of a production deployment: one goroutine
// owns the Monitor while collector dumps and traceroute archives stream in.
func Pipeline(ctx context.Context, m *Monitor, updates UpdateSource, traces TraceSource, sink func(Signal)) error {
	var (
		pendingU Update
		haveU    bool
		uDone    = updates == nil
		pendingT *Traceroute
		tDone    = traces == nil
		window   = m.WindowSec()
		curIdx   int64
		started  bool
	)

	emit := func(sigs []Signal) {
		if sink == nil {
			return
		}
		for _, s := range sigs {
			sink(s)
		}
	}
	advanceTo := func(t int64) {
		idx := t / window
		if !started {
			started = true
			curIdx = idx
			return
		}
		for ; curIdx < idx; curIdx++ {
			emit(m.CloseWindow(curIdx * window))
		}
	}

	fillU := func() error {
		if uDone || haveU {
			return nil
		}
		u, err := updates.Read()
		if err == io.EOF {
			uDone = true
			return nil
		}
		if err != nil {
			return fmt.Errorf("rrr: bgp feed: %w", err)
		}
		pendingU, haveU = u, true
		return nil
	}
	fillT := func() error {
		if tDone || pendingT != nil {
			return nil
		}
		t, err := traces.Read()
		if err == io.EOF {
			tDone = true
			return nil
		}
		if err != nil {
			return fmt.Errorf("rrr: traceroute feed: %w", err)
		}
		pendingT = t
		return nil
	}

	for {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		if err := fillU(); err != nil {
			return err
		}
		if err := fillT(); err != nil {
			return err
		}
		switch {
		case haveU && (pendingT == nil || pendingU.Time <= pendingT.Time):
			advanceTo(pendingU.Time)
			m.ObserveBGP(pendingU)
			haveU = false
		case pendingT != nil:
			advanceTo(pendingT.Time)
			m.ObservePublic(pendingT)
			pendingT = nil
		default:
			// Both feeds exhausted: close the final window.
			if started {
				emit(m.CloseWindow(curIdx * window))
			}
			return nil
		}
	}
}
