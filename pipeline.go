package rrr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"rrr/internal/bgp"
	"rrr/internal/obs"
)

// errPipelineCancelled is the internal sentinel the fill helpers return
// when ctx fires while they are blocked on a feed channel; the merge loop
// maps it back to ctx.Err() after draining.
var errPipelineCancelled = errors.New("rrr: pipeline cancelled")

// UpdateSource produces BGP updates in time order (io.EOF ends the feed).
// bgp.Merger, the MRT/binary/text readers, and simulator feeds implement it.
type UpdateSource = bgp.UpdateSource

// TraceSource produces public traceroutes in time order (io.EOF ends the
// feed).
type TraceSource interface {
	Read() (*Traceroute, error)
}

// TraceSliceSource serves traceroutes from memory.
type TraceSliceSource struct {
	traces []*Traceroute
	i      int
}

// NewTraceSliceSource wraps a slice.
func NewTraceSliceSource(ts []*Traceroute) *TraceSliceSource {
	return &TraceSliceSource{traces: ts}
}

// Read implements TraceSource.
func (s *TraceSliceSource) Read() (*Traceroute, error) {
	if s.i >= len(s.traces) {
		return nil, io.EOF
	}
	t := s.traces[s.i]
	s.i++
	return t, nil
}

// Tee fans one Pipeline sink out to several consumers: each signal is
// delivered to every non-nil sink in order, on the pipeline goroutine.
// Sinks that must not stall ingestion (an SSE fan-out, a logger) should
// hand off internally; see internal/server's subscriber hub. Nil sinks are
// dropped; with none left Tee returns nil, which Pipeline treats as
// "discard".
func Tee(sinks ...func(Signal)) func(Signal) {
	live := make([]func(Signal), 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(s Signal) {
		for _, sink := range live {
			sink(s)
		}
	}
}

// pipelineChanCap bounds each feed's decode-ahead buffer, so decoding
// overlaps monitor work without letting a fast feed run away from a slow
// consumer (backpressure: a full channel blocks the reader goroutine).
const pipelineChanCap = 1024

// ResumeAll is the since value passed to an Open factory when the pipeline
// has not yet ingested anything: deliver the feed from its beginning.
const ResumeAll = math.MinInt64

// IsTransientError reports whether err is worth retrying: anything in its
// chain implementing Temporary() bool and returning true. net.Error values
// and faultfeed's injected transients both satisfy it; io.EOF and decode
// errors do not.
func IsTransientError(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

// RetryPolicy bounds how hard the pipeline fights for a failing feed.
// The zero value never retries, matching the historical Pipeline behavior
// of treating the first feed error as terminal.
type RetryPolicy struct {
	// MaxRetries is the retry budget per failure episode. Without an
	// Open factory the reader retries the same source in place; with
	// one, the supervisor reopens the feed and resumes window-aligned.
	// The budget resets after a fully absorbed recovery.
	MaxRetries int
	// Backoff is the first retry's delay, doubling per attempt up to
	// MaxBackoff (defaults 100ms and 5s when MaxRetries > 0). Context
	// cancellation always preempts a backoff sleep.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// IsTransient classifies retryable errors; nil means
	// IsTransientError. Permanent errors skip the budget entirely.
	IsTransient func(error) bool
	// ContinueOnDeadFeed keeps the run alive when a feed is declared
	// dead: the other feed continues, windows keep closing, and the
	// dead feed's error is returned (wrapped) only when the run ends.
	// This is rrrd's graceful-degradation mode.
	ContinueOnDeadFeed bool
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Backoff <= 0 {
		p.Backoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.IsTransient == nil {
		p.IsTransient = IsTransientError
	}
	return p
}

// backoffFor returns the exponential delay for the attempt-th retry
// (1-based).
func (p RetryPolicy) backoffFor(attempt int) time.Duration {
	d := p.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// PipelineConfig configures a RunPipeline run. Updates/Traces are the
// initial sources; either may be nil. OpenUpdates/OpenTraces, when set,
// let the supervisor reopen a feed after a transient failure, resuming
// from the last completed window (the argument is the open window's start
// time, or ResumeAll before the first record): the reopened feed re-covers
// the open window and the pipeline skips the records it already ingested,
// so signals are neither duplicated nor dropped. When only a factory is
// given the initial source is opened lazily with ResumeAll.
type PipelineConfig struct {
	Updates     UpdateSource
	OpenUpdates func(since int64) (UpdateSource, error)

	Traces     TraceSource
	OpenTraces func(since int64) (TraceSource, error)

	Sink func(Signal)

	Retry RetryPolicy

	// ReorderWindow, when positive, restores timestamp order for records
	// displaced by at most that many positions (a min-heap of
	// ReorderWindow+1 records per feed), absorbing bounded transport
	// reordering before the merge loop sees it.
	ReorderWindow int

	// DedupAdjacent drops a record byte-identical to its immediate
	// predecessor: transport-level at-least-once redelivery. Distinct
	// from protocol-level BGP duplicates, which arrive with their own
	// timestamps and must reach the burst detector.
	DedupAdjacent bool

	// Health, when set, receives per-feed supervisor state for the
	// serving layer; nil disables reporting.
	Health *PipelineHealth

	// WAL, when set, receives every ingested record (after replay
	// skipping, before the Monitor observes it) plus window-close
	// notifications. An append or window-sync failure is fatal to the
	// run — continuing would let the monitor advance past records the
	// log lost, breaking crash recovery's exactly-once guarantee.
	WAL RecordLog

	// Resume, when set, continues a run that a recovery replay (see
	// Recovery) reconstructed: the window clock starts at
	// Resume.WindowStart, the initial feed opens use it as their since
	// point, and Resume's open-window records seed the positional replay
	// lists so the reopened feeds' re-delivery of them is skipped.
	Resume *ResumeState

	// OnWindowClose, when set, is invoked once per closed window, after
	// the window's signals have reached Sink and the WAL has recorded the
	// close. Sinks that stream signals (the SSE hub) use it to emit
	// window markers so downstream consumers can tell "no signals yet"
	// from "window done, none emitted".
	OnWindowClose func(windowStart int64)

	// Tap, when set, observes every ingested record and window close on
	// the merge-loop goroutine, like a second WAL tee. Records are tapped
	// after the window clock has advanced (so any closes they trigger are
	// delivered first and the record is attributed to the window it
	// belongs to) and before the monitor ingests them; window closes are
	// tapped after the window's signals reach Sink and before
	// OnWindowClose, so a tap that publishes per-window output (the event
	// detector) emits it between the signals and the stream's window
	// marker.
	Tap RecordTap
}

// RecordTap observes the ingested record stream. All methods are invoked
// on the pipeline's single merge-loop goroutine, in ingestion order, so
// implementations see the exact sequence the monitor does — identical
// across the serial engine, the sharded engine, and every cluster worker.
type RecordTap interface {
	TapUpdate(bgp.Update)
	TapTrace(*Traceroute)
	TapWindowClose(windowStart int64)
}

// feedItem carries one decoded record or a terminal reader error.
type feedItem[T any] struct {
	rec T
	err error
}

// feed is the merge loop's per-feed supervisor state.
type feed[T any] struct {
	name    string
	errWrap string
	ch      chan feedItem[T]
	// open is the normalized reopen factory (nil: in-place retry only).
	open func(int64) (func() (T, error), error)

	pending T
	have    bool

	// winItems are the records ingested since the last window close, in
	// ingestion order; after a reopen the replayed stream is matched
	// against them (via replay/replayIdx) so each record is observed
	// exactly once.
	winItems  []T
	replay    []T
	replayIdx int

	reopens int
	dead    bool
	deadErr error

	timeOf func(T) int64
	equal  func(T, T) bool

	met   *feedMetrics
	queue *obs.Gauge
	errs  *obs.Counter
}

// pipeShared is the state shared between the merge loop and the reader
// goroutines.
type pipeShared struct {
	stop    chan struct{}
	done    <-chan struct{}
	retry   RetryPolicy
	reorder int
	dedup   bool
	health  *PipelineHealth
}

// sleepOrStop sleeps d unless ch fires first; it reports whether the sleep
// completed. Used for backoff in both the reader goroutines (stop) and the
// merge loop (ctx.Done()), so cancellation always wins over backoff.
func sleepOrStop(ch <-chan struct{}, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ch:
		return false
	}
}

// seqRec tags a record with its arrival sequence so the reorder buffer can
// break timestamp ties in arrival order (keeping injected adjacent
// duplicates adjacent).
type seqRec[T any] struct {
	rec T
	t   int64
	seq uint64
}

// orderedReader restores timestamp order for a stream whose records are
// displaced by at most k positions: it keeps a min-heap of k+1 records and
// always releases the earliest. Errors pass through with the heap intact,
// so an in-place retry continues where it left off; on a reopen the heap
// is discarded, which is safe because every buffered record has a
// timestamp at or after the open window's start and window-aligned replay
// re-delivers it.
type orderedReader[T any] struct {
	read   func() (T, error)
	timeOf func(T) int64
	k      int
	h      []seqRec[T]
	seq    uint64
	maxPop uint64
	popped bool
	srcEOF bool
	met    *obs.Counter
}

func newOrdered[T any](read func() (T, error), timeOf func(T) int64, k int, met *obs.Counter) *orderedReader[T] {
	return &orderedReader[T]{read: read, timeOf: timeOf, k: k, met: met}
}

func (o *orderedReader[T]) less(i, j int) bool {
	if o.h[i].t != o.h[j].t {
		return o.h[i].t < o.h[j].t
	}
	return o.h[i].seq < o.h[j].seq
}

func (o *orderedReader[T]) push(r seqRec[T]) {
	o.h = append(o.h, r)
	for i := len(o.h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !o.less(i, parent) {
			break
		}
		o.h[i], o.h[parent] = o.h[parent], o.h[i]
		i = parent
	}
}

func (o *orderedReader[T]) pop() seqRec[T] {
	top := o.h[0]
	last := len(o.h) - 1
	o.h[0] = o.h[last]
	o.h = o.h[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(o.h) && o.less(l, small) {
			small = l
		}
		if r < len(o.h) && o.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		o.h[i], o.h[small] = o.h[small], o.h[i]
		i = small
	}
	return top
}

func (o *orderedReader[T]) next() (T, error) {
	var zero T
	for !o.srcEOF && len(o.h) <= o.k {
		rec, err := o.read()
		if err == io.EOF {
			o.srcEOF = true
			break
		}
		if err != nil {
			return zero, err
		}
		o.push(seqRec[T]{rec: rec, t: o.timeOf(rec), seq: o.seq})
		o.seq++
	}
	if len(o.h) == 0 {
		return zero, io.EOF
	}
	top := o.pop()
	// A record released after one with a later arrival sequence was
	// delivered out of order by the transport.
	if o.popped && top.seq < o.maxPop {
		o.met.Inc()
	} else {
		o.maxPop = top.seq
		o.popped = true
	}
	return top.rec, nil
}

// dedupReader drops records byte-identical to their immediate predecessor
// (transport-level at-least-once redelivery). Errors pass through with the
// predecessor state intact, so an in-place retry continues where it left
// off.
func dedupReader[T any](read func() (T, error), f *feed[T]) func() (T, error) {
	var last T
	have := false
	return func() (T, error) {
		for {
			rec, err := read()
			if err != nil {
				return rec, err
			}
			if have && f.equal(rec, last) {
				f.met.dups.Inc()
				continue
			}
			last, have = rec, true
			return rec, nil
		}
	}
}

// spawnFeed starts the reader goroutine for f consuming read. The reader
// applies adjacent dedup and then reorder restoration — in that order,
// because redelivered duplicates arrive adjacent to their original in the
// raw stream, and the injector/transport displacement bound that sizes the
// reorder buffer holds on the duplicate-free stream — and, when the feed
// has no reopen factory, retries transient errors in place with backoff.
func spawnFeed[T any](rc *pipeShared, f *feed[T], read func() (T, error)) {
	ch := make(chan feedItem[T], pipelineChanCap)
	f.ch = ch
	f.met.up.Set(1)
	rc.health.setStatus(f.name, FeedRunning, nil)
	go func() {
		defer close(ch)
		if rc.dedup {
			read = dedupReader(read, f)
		}
		if rc.reorder > 0 {
			read = newOrdered(read, f.timeOf, rc.reorder, f.met.reordered).next
		}
		consec := 0
		for {
			rec, err := read()
			if err == io.EOF {
				f.met.up.Set(0)
				rc.health.setStatus(f.name, FeedEOF, nil)
				return
			}
			if err != nil {
				// In-place retry: same source, next Read. Only when the
				// merge loop cannot reopen the feed instead.
				if f.open == nil && rc.retry.IsTransient(err) && consec < rc.retry.MaxRetries {
					consec++
					f.met.retries.Inc()
					rc.health.noteRetry(f.name, err)
					if !sleepOrStop(rc.stop, rc.retry.backoffFor(consec)) {
						return
					}
					continue
				}
				select {
				case ch <- feedItem[T]{err: err}:
				case <-rc.stop:
				}
				return
			}
			if consec > 0 {
				// The in-place retry worked: the episode is over, its
				// budget refunds, and the fault counts as absorbed.
				consec = 0
				f.met.absorbed.Inc()
				rc.health.noteAbsorbed(f.name)
				rc.health.setStatus(f.name, FeedRunning, nil)
			}
			select {
			case ch <- feedItem[T]{rec: rec}:
			case <-rc.stop:
				return
			}
		}
	}()
}

// fill receives the next item for f unless one is already pending. It
// returns errPipelineCancelled when ctx fires, or the feed's raw error for
// the supervisor to classify.
func fill[T any](rc *pipeShared, f *feed[T]) error {
	if f.ch == nil || f.have {
		return nil
	}
	var it feedItem[T]
	var ok bool
	select {
	case it, ok = <-f.ch:
	default:
		// Empty buffer: the merge loop is stalling on the decoder.
		// Timing only this path keeps time.Now off the fast path.
		stall := time.Now()
		select {
		case it, ok = <-f.ch:
		case <-rc.done:
			metPipeStall.Observe(time.Since(stall).Seconds())
			return errPipelineCancelled
		}
		metPipeStall.Observe(time.Since(stall).Seconds())
	}
	if !ok {
		f.ch = nil
		return nil
	}
	f.queue.Set(int64(len(f.ch)))
	if it.err != nil {
		f.errs.Inc()
		return it.err
	}
	f.pending, f.have = it.rec, true
	return nil
}

// handleFeedErr decides a failing feed's fate: reopen window-aligned when
// a factory and budget remain, otherwise declare it dead. It reports
// whether the run continues; a false return carries the fatal error.
func handleFeedErr[T any](rc *pipeShared, f *feed[T], ferr error, resume int64) (bool, error) {
	for f.open != nil && rc.retry.IsTransient(ferr) && f.reopens < rc.retry.MaxRetries {
		f.reopens++
		f.met.retries.Inc()
		rc.health.noteRetry(f.name, ferr)
		if !sleepOrStop(rc.done, rc.retry.backoffFor(f.reopens)) {
			return false, errPipelineCancelled
		}
		read, oerr := f.open(resume)
		if oerr != nil {
			ferr = oerr
			continue
		}
		// Resume from the last completed window: the reopened stream
		// re-covers the open window, and the records already ingested
		// (winItems) are skipped as they re-arrive. The stale pending
		// record is discarded for the same reason — it will re-arrive.
		f.have = false
		if len(f.winItems) == 0 {
			f.replay = nil
			f.reopens = 0
			f.met.absorbed.Inc()
			rc.health.noteAbsorbed(f.name)
		} else {
			f.replay = append(f.replay[:0:0], f.winItems...)
			f.replayIdx = 0
		}
		spawnFeed(rc, f, read)
		rc.health.noteResume(f.name, resume)
		return true, nil
	}
	f.met.dead.Inc()
	f.met.up.Set(0)
	f.dead = true
	f.deadErr = fmt.Errorf("rrr: %s: %w", f.errWrap, ferr)
	f.ch = nil
	f.have = false
	rc.health.setStatus(f.name, FeedDead, ferr)
	if rc.retry.ContinueOnDeadFeed {
		return true, nil
	}
	return false, f.deadErr
}

// consumeReplay reports whether rec is a replayed copy of an
// already-ingested record and should be skipped. Replay matching is
// positional: the reopened stream must re-deliver the open window's
// records verbatim and in order; on the first mismatch matching stops and
// everything from there on is ingested (divergence is counted, not fatal).
func (f *feed[T]) consumeReplay(rc *pipeShared, rec T) bool {
	if f.replay == nil {
		return false
	}
	if f.equal(rec, f.replay[f.replayIdx]) {
		f.replayIdx++
		f.met.replayed.Inc()
		rc.health.noteReplayed(f.name)
		if f.replayIdx == len(f.replay) {
			f.replay = nil
			f.reopens = 0
			f.met.absorbed.Inc()
			rc.health.noteAbsorbed(f.name)
		}
		return true
	}
	f.replay = nil
	rc.health.noteDiverged(f.name)
	return false
}

func updateEqual(a, b Update) bool {
	return a.Time == b.Time && a.PeerIP == b.PeerIP && a.PeerAS == b.PeerAS &&
		a.Type == b.Type && a.Prefix == b.Prefix && a.MED == b.MED &&
		a.ASPath.Equal(b.ASPath) && a.Communities.Equal(b.Communities)
}

func traceEqual(a, b *Traceroute) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.MsmID != b.MsmID || a.ProbeID != b.ProbeID || a.Time != b.Time ||
		a.Src != b.Src || a.Dst != b.Dst || a.Reached != b.Reached ||
		len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			return false
		}
	}
	return true
}

// Pipeline drives a Monitor from a BGP feed and a public-traceroute feed
// with the historical semantics: any feed error is terminal (after
// draining the open window). It is RunPipeline with a zero RetryPolicy;
// see PipelineConfig for the self-healing knobs.
func Pipeline(ctx context.Context, m *Monitor, updates UpdateSource, traces TraceSource, sink func(Signal)) error {
	return RunPipeline(ctx, m, PipelineConfig{Updates: updates, Traces: traces, Sink: sink})
}

// RunPipeline drives a Monitor from a BGP feed and a public-traceroute
// feed: the two time-ordered streams are interleaved by timestamp, windows
// close automatically at each WindowSec boundary, and every staleness
// prediction signal is delivered to Sink as it is generated. RunPipeline
// returns when both feeds are exhausted (closing the final window), when
// ctx is cancelled, or when a feed failure is not recoverable under the
// configured RetryPolicy; in every case the currently-open window is
// closed on the way out, so buffered observations always produce their
// signals.
//
// Each source is decoded on its own goroutine feeding a bounded channel,
// so MRT parsing and archive I/O overlap signal processing while
// backpressure keeps memory bounded. Items are still consumed in merged
// time order, so the Monitor sees exactly the stream a serial loop would
// produce.
//
// Failure handling is per feed. A transient error (RetryPolicy.
// IsTransient) consumes one unit of retry budget: without an Open factory
// the reader retries the same source in place after an exponential
// backoff; with one, the supervisor reopens the feed at the open window's
// start time and skips the records it already ingested as they re-arrive,
// so recovery neither duplicates nor drops signals. Context cancellation
// preempts any backoff sleep. A feed that exhausts its budget (or fails
// permanently) is declared dead: fatal by default, or — with
// ContinueOnDeadFeed — the run degrades to the surviving feed and the
// dead feed's error is reported only at the end (and via Health/metrics
// immediately).
//
// Cancellation is honored even while both reader goroutines are blocked
// inside Read (a live feed waiting for its next item): the merge loop
// selects on ctx alongside the feed channels. On cancellation the pipeline
// additionally closes the currently-open window — delivering buffered
// observations as final signals to sink — before returning ctx.Err(), so a
// daemon's graceful shutdown (cancel → drain → final window close →
// snapshot) loses nothing that was already observed.
//
// With a RecordLog (PipelineConfig.WAL) every ingested record is teed to
// the log before the Monitor observes it, and every window close is
// reported to the log, making the run crash-recoverable: Recovery replays
// the log into a fresh Monitor and PipelineConfig.Resume continues the
// open window with the same exactly-once replay matching a mid-run feed
// reopen uses. Log failures are fatal to the run (see RecordLog).
func RunPipeline(ctx context.Context, m *Monitor, cfg PipelineConfig) error {
	rc := &pipeShared{
		stop:    make(chan struct{}),
		retry:   cfg.Retry.withDefaults(),
		reorder: cfg.ReorderWindow,
		dedup:   cfg.DedupAdjacent,
		health:  cfg.Health,
	}
	defer close(rc.stop)
	// done is nil (blocks forever) when no context is supplied.
	if ctx != nil {
		rc.done = ctx.Done()
	}

	uf := &feed[Update]{
		name: "bgp", errWrap: "bgp feed",
		timeOf: func(u Update) int64 { return u.Time },
		equal:  updateEqual,
		met:    metFeedBGP, queue: metPipeUpdateQueue, errs: metPipeErrBGP,
	}
	if cfg.OpenUpdates != nil {
		uf.open = func(since int64) (func() (Update, error), error) {
			s, err := cfg.OpenUpdates(since)
			if err != nil {
				return nil, err
			}
			return s.Read, nil
		}
	}
	tf := &feed[*Traceroute]{
		name: "traceroute", errWrap: "traceroute feed",
		timeOf: func(t *Traceroute) int64 { return t.Time },
		equal:  traceEqual,
		met:    metFeedTrace, queue: metPipeTraceQueue, errs: metPipeErrTrace,
	}
	if cfg.OpenTraces != nil {
		tf.open = func(since int64) (func() (*Traceroute, error), error) {
			s, err := cfg.OpenTraces(since)
			if err != nil {
				return nil, err
			}
			return s.Read, nil
		}
	}

	var (
		window  = m.WindowSec()
		curIdx  int64
		started bool
	)
	// A recovery resume continues the replayed run's open window: the
	// clock starts there, the initial opens ask the feeds for records
	// from that point, and the records the replay already ingested seed
	// the positional skip lists — exactly the state a mid-run reopen
	// would have left behind. (Direct Updates/Traces sources are the
	// caller's to align, e.g. with SkipUpdatesBefore.)
	startSince := int64(ResumeAll)
	if cfg.Resume != nil && cfg.Resume.WindowStart != ResumeAll {
		startSince = cfg.Resume.WindowStart
		started = true
		curIdx = floorDiv(startSince, window)
		uf.winItems = append(uf.winItems, cfg.Resume.Updates...)
		tf.winItems = append(tf.winItems, cfg.Resume.Traces...)
		if len(cfg.Resume.Updates) > 0 {
			uf.replay = append([]Update(nil), cfg.Resume.Updates...)
		}
		if len(cfg.Resume.Traces) > 0 {
			tf.replay = append([]*Traceroute(nil), cfg.Resume.Traces...)
		}
	}

	switch {
	case cfg.Updates != nil:
		spawnFeed(rc, uf, cfg.Updates.Read)
	case uf.open != nil:
		read, err := uf.open(startSince)
		if err != nil {
			if ok, ferr := handleFeedErr(rc, uf, err, startSince); !ok {
				if ferr == errPipelineCancelled && ctx != nil {
					return ctx.Err()
				}
				return ferr
			}
		} else {
			spawnFeed(rc, uf, read)
		}
	}
	switch {
	case cfg.Traces != nil:
		spawnFeed(rc, tf, cfg.Traces.Read)
	case tf.open != nil:
		read, err := tf.open(startSince)
		if err != nil {
			if ok, ferr := handleFeedErr(rc, tf, err, startSince); !ok {
				if ferr == errPipelineCancelled && ctx != nil {
					return ctx.Err()
				}
				return ferr
			}
		} else {
			spawnFeed(rc, tf, read)
		}
	}

	emit := func(sigs []Signal) {
		if cfg.Sink == nil {
			return
		}
		for _, s := range sigs {
			cfg.Sink(s)
		}
	}
	// A WindowClosed failure (an fsync that did not happen under the
	// on-window-close policy) is recorded here and surfaced at the top of
	// the merge loop: closeWin is also called from the finish drain, where
	// there is no caller left to fail.
	var walErr error
	closeWin := func(ws int64) {
		emit(m.CloseWindow(ws))
		metPipeWindows.Inc()
		if cfg.WAL != nil && walErr == nil {
			if err := cfg.WAL.WindowClosed(ws); err != nil {
				walErr = fmt.Errorf("rrr: wal window sync: %w", err)
			}
		}
		if cfg.Tap != nil {
			cfg.Tap.TapWindowClose(ws)
		}
		if cfg.OnWindowClose != nil {
			cfg.OnWindowClose(ws)
		}
	}
	// Window indices use floor division so a pre-epoch (negative)
	// timestamp lands in the window containing it, matching
	// Monitor.Advance's first-window snap; truncating division would put
	// t=-1 and t=+1 in the same window.
	advanceTo := func(t int64) {
		idx := floorDiv(t, window)
		if !started {
			started = true
			curIdx = idx
			return
		}
		if curIdx < idx {
			for ; curIdx < idx; curIdx++ {
				closeWin(curIdx * window)
			}
			// A new window opened: everything ingested before it is
			// behind a completed boundary and will never be replayed.
			uf.winItems = uf.winItems[:0]
			tf.winItems = tf.winItems[:0]
		}
	}
	// resumePoint is where a reopened feed must restart: the open
	// window's start (everything before it was delivered as final
	// signals when the window closed), or the stream's beginning before
	// any record was ingested.
	resumePoint := func() int64 {
		if !started {
			return ResumeAll
		}
		return curIdx * window
	}

	// finish closes the currently-open window on the way out of a
	// cancelled or feed-error run, so already-ingested observations still
	// produce their signals (graceful-shutdown drain); the feed-error path
	// matters because a decode failure otherwise silently discards every
	// observation buffered since the last window boundary.
	finish := func(err error) error {
		if started {
			closeWin(curIdx * window)
		}
		return err
	}

	for {
		if walErr != nil {
			return finish(walErr)
		}
		if ctx != nil {
			select {
			case <-ctx.Done():
				return finish(ctx.Err())
			default:
			}
		}
		if err := fill(rc, uf); err != nil {
			if err == errPipelineCancelled {
				return finish(ctx.Err())
			}
			ok, ferr := handleFeedErr(rc, uf, err, resumePoint())
			if !ok {
				if ferr == errPipelineCancelled {
					return finish(ctx.Err())
				}
				return finish(ferr)
			}
			continue
		}
		if err := fill(rc, tf); err != nil {
			if err == errPipelineCancelled {
				return finish(ctx.Err())
			}
			ok, ferr := handleFeedErr(rc, tf, err, resumePoint())
			if !ok {
				if ferr == errPipelineCancelled {
					return finish(ctx.Err())
				}
				return finish(ferr)
			}
			continue
		}
		switch {
		case uf.have && (!tf.have || uf.pending.Time <= tf.pending.Time):
			rec := uf.pending
			uf.have = false
			if uf.consumeReplay(rc, rec) {
				continue
			}
			// Tee to the WAL before the monitor sees the record: a failed
			// append leaves the record un-ingested, so the run dies with
			// monitor and log still agreeing.
			if cfg.WAL != nil {
				if err := cfg.WAL.AppendUpdate(rec); err != nil {
					return finish(fmt.Errorf("rrr: wal append (bgp): %w", err))
				}
			}
			advanceTo(rec.Time)
			if cfg.Tap != nil {
				cfg.Tap.TapUpdate(rec)
			}
			m.ObserveBGP(rec)
			uf.winItems = append(uf.winItems, rec)
			metPipeUpdates.Inc()
		case tf.have:
			rec := tf.pending
			tf.have = false
			if tf.consumeReplay(rc, rec) {
				continue
			}
			if cfg.WAL != nil {
				if err := cfg.WAL.AppendTrace(rec); err != nil {
					return finish(fmt.Errorf("rrr: wal append (traceroute): %w", err))
				}
			}
			advanceTo(rec.Time)
			if cfg.Tap != nil {
				cfg.Tap.TapTrace(rec)
			}
			m.ObservePublic(rec)
			tf.winItems = append(tf.winItems, rec)
			metPipeTraces.Inc()
		default:
			// Both feeds exhausted (or dead): close the final window and
			// surface any deferred dead-feed errors.
			if started {
				closeWin(curIdx * window)
			}
			return errors.Join(uf.deadErr, tf.deadErr, walErr)
		}
	}
}
