package rrr

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
)

// TestMonitorFromMRTArchives proves the full ingestion chain used against
// real data: per-collector MRT archives → MRT reader → time-ordered merge →
// Pipeline → staleness signals.
func TestMonitorFromMRTArchives(t *testing.T) {
	aliases := bordermap.OracleFunc(func(v uint32) (int, bool) { return int(v), true })
	m, err := NewMonitor(Options{Mapper: facadeMapper{}, Aliases: aliases})
	if err != nil {
		t.Fatal(err)
	}

	// Two "collectors", each with one peer, written as MRT archives.
	mkArchive := func(vpIP string, vpAS ASN, paths map[int64][]ASN) []byte {
		var buf bytes.Buffer
		w := bgp.NewMRTWriter(&buf)
		p, _ := ParsePrefix("4.0.0.0/8")
		var times []int64
		for tm := range paths {
			times = append(times, tm)
		}
		// MRT archives are time ordered.
		for i := 0; i < len(times); i++ {
			for j := i + 1; j < len(times); j++ {
				if times[j] < times[i] {
					times[i], times[j] = times[j], times[i]
				}
			}
		}
		for _, tm := range times {
			if err := w.Write(Update{
				Time: tm, PeerIP: ip(t, vpIP), PeerAS: vpAS, Type: bgp.Announce,
				Prefix: p, ASPath: paths[tm],
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Collector A's peer keeps announcing the stable route every window;
	// collector B's peer shifts its path inside the monitored suffix at
	// window 45.
	pathsA := map[int64][]ASN{}
	for w := int64(1); w <= 46; w++ {
		pathsA[w*900+3] = []ASN{6, 3, 4}
	}
	pathsB := map[int64][]ASN{}
	for w := int64(1); w < 45; w++ {
		pathsB[w*900+7] = []ASN{5, 2, 3, 4}
	}
	pathsB[45*900+7] = []ASN{5, 2, 9, 4}
	pathsB[46*900+7] = []ASN{5, 2, 9, 4}

	arcA := mkArchive("6.0.0.9", 6, pathsA)
	arcB := mkArchive("5.0.0.9", 5, pathsB)

	// Prime from the first record of each archive (table state), then
	// track the corpus pair.
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
	m.ObserveBGP(announceUpd(t, 0, "6.0.0.9", 6, "4.0.0.0/8", []ASN{6, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}

	merged := bgp.NewMerger(
		bgp.NewMRTSource(bgp.NewMRTReader(bytes.NewReader(arcA))),
		bgp.NewMRTSource(bgp.NewMRTReader(bytes.NewReader(arcB))),
	)
	var got []Signal
	if err := Pipeline(context.Background(), m, merged, nil,
		func(s Signal) { got = append(got, s) }); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range got {
		if s.Technique == TechBGPASPath && s.Key == tr.Key() {
			found = true
		}
	}
	if !found {
		t.Fatalf("MRT-fed pipeline produced no AS-path signal (got %v)", got)
	}
}

// TestPipelineShardEquivalence runs the same MRT-fed pipeline (with a
// public traceroute feed) at several shard counts and requires identical
// signal streams — the end-to-end form of the sharded-engine guarantee.
func TestPipelineShardEquivalence(t *testing.T) {
	aliases := bordermap.OracleFunc(func(v uint32) (int, bool) { return int(v), true })
	p, _ := ParsePrefix("4.0.0.0/8")

	mkArchive := func(vpIP string, vpAS ASN, paths map[int64][]ASN) []byte {
		var buf bytes.Buffer
		w := bgp.NewMRTWriter(&buf)
		var times []int64
		for tm := range paths {
			times = append(times, tm)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for _, tm := range times {
			if err := w.Write(Update{
				Time: tm, PeerIP: ip(t, vpIP), PeerAS: vpAS, Type: bgp.Announce,
				Prefix: p, ASPath: paths[tm],
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	pathsA := map[int64][]ASN{}
	for w := int64(1); w <= 50; w++ {
		pathsA[w*900+3] = []ASN{6, 3, 4}
	}
	pathsB := map[int64][]ASN{}
	for w := int64(1); w < 45; w++ {
		pathsB[w*900+7] = []ASN{5, 2, 3, 4}
	}
	for w := int64(45); w <= 50; w++ {
		pathsB[w*900+7] = []ASN{5, 2, 9, 4}
	}

	run := func(shards int) []Signal {
		t.Helper()
		m, err := NewMonitor(Options{
			Config: Config{Shards: shards},
			Mapper: facadeMapper{}, Aliases: aliases,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []ASN{5, 2, 3, 4}))
		m.ObserveBGP(announceUpd(t, 0, "6.0.0.9", 6, "4.0.0.0/8", []ASN{6, 3, 4}))
		// Several pairs so they spread across shards.
		for i := 1; i <= 6; i++ {
			tr := trace(t, 0, fmt.Sprintf("1.0.0.%d", i), fmt.Sprintf("4.0.0.%d", 100+i),
				fmt.Sprintf("1.0.0.%d", 50+i), "2.0.0.1", "3.0.0.1", "4.0.0.2", fmt.Sprintf("4.0.0.%d", 100+i))
			if err := m.Track(tr); err != nil {
				t.Fatal(err)
			}
		}
		merged := bgp.NewMerger(
			bgp.NewMRTSource(bgp.NewMRTReader(bytes.NewReader(mkArchive("6.0.0.9", 6, pathsA)))),
			bgp.NewMRTSource(bgp.NewMRTReader(bytes.NewReader(mkArchive("5.0.0.9", 5, pathsB)))),
		)
		var pubs []*Traceroute
		for w := int64(1); w <= 50; w++ {
			pubs = append(pubs, trace(t, w*900+11, "9.0.0.1", "4.0.0.8",
				"9.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.2", "4.0.0.8"))
		}
		var got []Signal
		if err := Pipeline(context.Background(), m, merged, NewTraceSliceSource(pubs),
			func(s Signal) { got = append(got, s) }); err != nil {
			t.Fatal(err)
		}
		return got
	}

	want := run(1)
	if len(want) == 0 {
		t.Fatal("pipeline produced no signals; equivalence check is vacuous")
	}
	for _, shards := range []int{2, 4} {
		if got := run(shards); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d stream diverges from serial:\n got  %v\n want %v", shards, got, want)
		}
	}
}
