package rrr

import (
	"fmt"
	"math/rand"

	"rrr/internal/bgp"
	"rrr/internal/core"
	"rrr/internal/corpus"
	"rrr/internal/traceroute"
)

// Options configures a Monitor. Mapper is required; the remaining services
// are optional and disable the techniques that need them when absent
// (border-router signals need Geo, IXP signals need Rel).
type Options struct {
	// Config tunes windows and calibration; DefaultConfig() if zero.
	Config Config
	// Mapper resolves hop addresses to origin ASes and IXP LANs
	// (longest-prefix matching over collector RIBs plus IXP prefix lists;
	// Appendix A).
	Mapper Mapper
	// Aliases resolves interface addresses to routers (MIDAR-style).
	Aliases AliasOracle
	// Geo resolves addresses to cities for §4.2.2's inter-city border
	// monitoring.
	Geo Geolocator
	// Rel answers AS relationship queries for §4.2.3's IXP inference.
	Rel RelOracle
	// IXPMembers seeds the IXP membership snapshot (PeeringDB-style),
	// keyed by the Mapper's IXP identifiers.
	IXPMembers map[int][]ASN
}

// Monitor maintains a corpus of traceroutes and flags stale entries from
// passive feeds. It is not safe for concurrent use; drive it from one
// goroutine (feeds are naturally serialized by time).
type Monitor struct {
	engine *core.Engine
	corp   *corpus.Corpus
	window int64
	cur    int64
	opened bool
}

// NewMonitor builds a Monitor.
func NewMonitor(opts Options) (*Monitor, error) {
	if opts.Mapper == nil {
		return nil, fmt.Errorf("rrr: Options.Mapper is required")
	}
	cfg := opts.Config
	if cfg.WindowSec == 0 {
		cfg = DefaultConfig()
	}
	eng := core.NewEngine(cfg, opts.Mapper, opts.Aliases, opts.Geo, opts.Rel)
	if opts.IXPMembers != nil {
		eng.SetInitialIXPMembership(opts.IXPMembers)
	}
	return &Monitor{
		engine: eng,
		corp:   corpus.New(opts.Mapper, opts.Aliases),
		window: cfg.WindowSec,
	}, nil
}

// WindowSec returns the signal-generation window duration.
func (m *Monitor) WindowSec() int64 { return m.window }

// ObserveBGP ingests one BGP update. Feed a full table dump first to prime
// the monitor's RIB view, then stream updates in time order.
func (m *Monitor) ObserveBGP(u Update) { m.engine.ObserveBGP(u) }

// ObservePublic ingests one public traceroute.
func (m *Monitor) ObservePublic(t *Traceroute) { m.engine.ObservePublicTrace(t) }

// Track adds a traceroute to the monitored corpus, replacing any previous
// entry for its (src, dst) pair. Traceroutes whose AS mapping contains a
// loop are rejected (Appendix A).
func (m *Monitor) Track(t *Traceroute) error {
	en, err := m.corp.Add(t)
	if err != nil {
		return err
	}
	if _, tracked := m.engine.Entry(en.Key); tracked {
		m.engine.Reregister(en)
	} else {
		m.engine.AddCorpusEntry(en)
	}
	return nil
}

// Untrack removes a pair from the corpus.
func (m *Monitor) Untrack(k Key) {
	m.corp.Remove(k)
	m.engine.RemovePair(k)
}

// Tracked returns the monitored pairs.
func (m *Monitor) Tracked() []Key { return m.corp.Keys() }

// Entry returns the stored corpus entry for a pair.
func (m *Monitor) Entry(k Key) (*Entry, bool) { return m.corp.Get(k) }

// CloseWindow finishes the signal-generation window beginning at ws
// (seconds), returning the window's staleness prediction signals. Call once
// per WindowSec with monotonically increasing ws, after feeding that
// window's updates and traceroutes.
func (m *Monitor) CloseWindow(ws int64) []Signal {
	m.cur, m.opened = ws+m.window, true
	return m.engine.CloseWindow(ws)
}

// Advance runs CloseWindow for every window up to (excluding) t, returning
// all signals produced. Convenient when feeds arrive in batches.
func (m *Monitor) Advance(t int64) []Signal {
	var out []Signal
	if !m.opened {
		m.cur, m.opened = 0, true
	}
	for ws := m.cur; ws+m.window <= t; ws += m.window {
		out = append(out, m.engine.CloseWindow(ws)...)
		m.cur = ws + m.window
	}
	return out
}

// Stale reports whether the pair currently has active (unrevoked)
// staleness prediction signals.
func (m *Monitor) Stale(k Key) bool { return len(m.engine.Active(k)) > 0 }

// ActiveSignals returns the pair's active signals.
func (m *Monitor) ActiveSignals(k Key) []Signal { return m.engine.Active(k) }

// StaleKeys returns all currently-flagged pairs.
func (m *Monitor) StaleKeys() []Key {
	var out []Key
	for _, k := range m.corp.Keys() {
		if m.Stale(k) {
			out = append(out, k)
		}
	}
	return out
}

// Potential returns the potential signals (monitors) covering a pair; an
// empty result means the monitor lacks visibility into that pair ("unknown"
// in §6.2's classification).
func (m *Monitor) Potential(k Key) []Registration { return m.engine.Registrations(k) }

// PlanRefresh selects up to budget flagged pairs to remeasure, using
// §4.3.1's calibrated prioritization with Table 1 bootstrap ordering.
func (m *Monitor) PlanRefresh(budget int, rng *rand.Rand) []Key {
	return m.engine.RefreshPlan(budget, rng)
}

// RecordRefresh ingests a fresh measurement of a tracked pair: it scores
// every potential signal for calibration, replaces the corpus entry, and
// re-registers monitors. It returns the change classification relative to
// the previous entry.
func (m *Monitor) RecordRefresh(t *Traceroute) (ChangeClass, error) {
	en, err := m.corp.Process(t)
	if err != nil {
		return Unchanged, err
	}
	cls, _ := m.engine.EvaluateRefresh(en)
	if _, err := m.corp.Add(t); err != nil {
		return cls, err
	}
	m.engine.Reregister(en)
	return cls, nil
}

// SignalCounts returns cumulative per-technique signal totals.
func (m *Monitor) SignalCounts() map[Technique]int { return m.engine.SignalCounts() }

// PrunedCommunities reports how many communities calibration has learned
// to ignore (Appendix B).
func (m *Monitor) PrunedCommunities() int { return m.engine.Calib.PrunedCommunityCount() }

// RevocationStats reports how many signals §4.3.2 revocation discarded
// because all monitored quantities reverted to their baselines (the
// traceroutes became fresh again without remeasurement).
func (m *Monitor) RevocationStats() (signals, pairEvents int) {
	return m.engine.RevocationStats()
}

// NewRIBFromUpdates is a convenience that builds a primed RIB-backed
// monitor feed from a table dump; exported for tooling.
func NewRIBFromUpdates(updates []Update) *bgp.RIB {
	r := bgp.NewRIB()
	for _, u := range updates {
		r.Apply(u)
	}
	return r
}

// Classify compares a fresh measurement against the stored entry without
// refreshing (read-only check).
func (m *Monitor) Classify(t *Traceroute) (ChangeClass, error) {
	return m.corp.Classify(t)
}

// Compile-time checks that facade aliases stay wired.
var _ = func() bool {
	var _ traceroute.Key = Key{}
	var _ bgp.Update = Update{}
	return true
}()
