package rrr

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"rrr/internal/bgp"
	"rrr/internal/core"
	"rrr/internal/corpus"
	"rrr/internal/traceroute"
)

// Options configures a Monitor. Mapper is required; the remaining services
// are optional and disable the techniques that need them when absent
// (border-router signals need Geo, IXP signals need Rel).
type Options struct {
	// Config tunes windows and calibration; DefaultConfig() if zero.
	// Config.Shards sets engine parallelism (0 means GOMAXPROCS, 1 runs
	// the exact serial path) and is honored even when the rest of the
	// config is zero.
	Config Config
	// Mapper resolves hop addresses to origin ASes and IXP LANs
	// (longest-prefix matching over collector RIBs plus IXP prefix lists;
	// Appendix A).
	Mapper Mapper
	// Aliases resolves interface addresses to routers (MIDAR-style).
	Aliases AliasOracle
	// Geo resolves addresses to cities for §4.2.2's inter-city border
	// monitoring.
	Geo Geolocator
	// Rel answers AS relationship queries for §4.2.3's IXP inference.
	Rel RelOracle
	// IXPMembers seeds the IXP membership snapshot (PeeringDB-style),
	// keyed by the Mapper's IXP identifiers.
	IXPMembers map[int][]ASN
}

// Monitor maintains a corpus of traceroutes and flags stale entries from
// passive feeds. It is safe for concurrent use: writes (feed ingestion,
// window closes, tracking changes) serialize behind a mutex while
// read-only queries share a read lock. The feeds themselves must still
// arrive in time order, so interleaving multiple feed-writing goroutines
// only makes sense if their items are externally time-merged (as Pipeline
// does).
type Monitor struct {
	mu       sync.RWMutex
	engine   *core.Sharded
	corp     *corpus.Corpus
	window   int64
	cur      int64
	opened   bool
	firstObs int64
	haveObs  bool

	// version counts verdict-affecting state transitions: window closes,
	// tracking changes, refreshes, and restores. Feed ingestion does NOT
	// bump it — observations only influence verdicts once a window closes
	// — so between closes every pair's verdict is immutable and callers
	// (internal/server's verdict cache) may reuse answers stamped with the
	// current version. Bumped only under the write lock; read via
	// StateVersion or the version returned by PairStates.
	version atomic.Uint64

	// Baselines carried over from a restored snapshot, so cumulative
	// counters (signal totals, closed windows, revocations, pruned
	// communities) survive process restarts.
	baseCounts   map[Technique]int
	baseWindows  int
	baseRevSigs  int
	baseRevPairs int
	basePruned   int
}

// NewMonitor builds a Monitor.
func NewMonitor(opts Options) (*Monitor, error) {
	if opts.Mapper == nil {
		return nil, fmt.Errorf("rrr: Options.Mapper is required")
	}
	cfg := opts.Config
	if cfg.WindowSec == 0 {
		shards := cfg.Shards
		cfg = DefaultConfig()
		cfg.Shards = shards
	}
	eng := core.NewSharded(cfg, opts.Mapper, opts.Aliases, opts.Geo, opts.Rel)
	if opts.IXPMembers != nil {
		eng.SetInitialIXPMembership(opts.IXPMembers)
	}
	return &Monitor{
		engine: eng,
		corp:   corpus.New(opts.Mapper, opts.Aliases),
		window: cfg.WindowSec,
	}, nil
}

// WindowSec returns the signal-generation window duration.
func (m *Monitor) WindowSec() int64 { return m.window }

// WindowClock returns the currently open window's start time and whether
// the clock is running at all (a window has been opened by CloseWindow,
// Advance, or a restored snapshot). Recovery reads it as the snapshot
// watermark: every record before openStart is already rolled up in the
// restored counters and must not be replayed.
func (m *Monitor) WindowClock() (openStart int64, opened bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.cur, m.opened
}

// noteObs tracks the earliest observation time so Advance can snap its
// first window to the start of the feed instead of iterating from 0.
func (m *Monitor) noteObs(t int64) {
	if !m.haveObs || t < m.firstObs {
		m.firstObs, m.haveObs = t, true
	}
}

// ObserveBGP ingests one BGP update. Feed a full table dump first to prime
// the monitor's RIB view, then stream updates in time order.
func (m *Monitor) ObserveBGP(u Update) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.noteObs(u.Time)
	m.engine.ObserveBGP(u)
}

// ObservePublic ingests one public traceroute.
func (m *Monitor) ObservePublic(t *Traceroute) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.noteObs(t.Time)
	m.engine.ObservePublicTrace(t)
}

// Track adds a traceroute to the monitored corpus, replacing any previous
// entry for its (src, dst) pair. Traceroutes whose AS mapping contains a
// loop are rejected (Appendix A).
func (m *Monitor) Track(t *Traceroute) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.trackLocked(t)
}

func (m *Monitor) trackLocked(t *Traceroute) error {
	en, err := m.corp.Add(t)
	if err != nil {
		return err
	}
	if _, tracked := m.engine.Entry(en.Key); tracked {
		m.engine.Reregister(en)
	} else {
		m.engine.AddCorpusEntry(en)
	}
	metMonTracked.Set(int64(m.corp.Len()))
	m.version.Add(1)
	return nil
}

// Untrack removes a pair from the corpus.
func (m *Monitor) Untrack(k Key) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.corp.Remove(k)
	m.engine.RemovePair(k)
	metMonTracked.Set(int64(m.corp.Len()))
	m.version.Add(1)
}

// Tracked returns the monitored pairs in sorted (Src, Dst) order, so API
// responses and tests are deterministic across runs.
func (m *Monitor) Tracked() []Key {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.corp.Keys()
}

// Entry returns the stored corpus entry for a pair.
func (m *Monitor) Entry(k Key) (*Entry, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.corp.Get(k)
}

// CloseWindow finishes the signal-generation window beginning at ws
// (seconds), returning the window's staleness prediction signals. Call once
// per WindowSec with monotonically increasing ws, after feeding that
// window's updates and traceroutes.
func (m *Monitor) CloseWindow(ws int64) []Signal {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cur, m.opened = ws+m.window, true
	sigs := m.engine.CloseWindow(ws)
	m.noteWindowMetrics(sigs, 1)
	m.version.Add(1)
	return sigs
}

// noteWindowMetrics records one or more window closes: per-technique
// signal counters, the windows-closed counter, and the stale-pairs gauge
// (active pairs live only on their owning shard, so the engine count is
// exact). Derived detector state (series baselines, calibration
// internals) is deliberately not exported as metrics — it rebuilds from
// feeds and would pin the exposition to engine internals.
func (m *Monitor) noteWindowMetrics(sigs []Signal, windows int) {
	if windows <= 0 {
		return
	}
	metMonWindows.Add(uint64(windows))
	recordSignalMetrics(sigs)
	metMonStale.Set(int64(m.engine.ActivePairs()))
}

// Advance runs CloseWindow for every window up to (excluding) t, returning
// all signals produced. Convenient when feeds arrive in batches. The first
// call aligns the first window to the floor of the earliest observed (or
// advanced-to) time, so realistic epoch timestamps don't iterate empty
// windows from 0.
func (m *Monitor) Advance(t int64) []Signal {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.opened {
		start := t
		if m.haveObs && m.firstObs < start {
			start = m.firstObs
		}
		// Floor division: a pre-epoch start must snap to the window
		// containing it, not the one truncation rounds toward zero.
		m.cur, m.opened = floorDiv(start, m.window)*m.window, true
	}
	var out []Signal
	windows := 0
	for ws := m.cur; ws+m.window <= t; ws += m.window {
		out = append(out, m.engine.CloseWindow(ws)...)
		m.cur = ws + m.window
		windows++
	}
	m.noteWindowMetrics(out, windows)
	if windows > 0 {
		m.version.Add(1)
	}
	return out
}

// Stale reports whether the pair currently has active (unrevoked)
// staleness prediction signals.
func (m *Monitor) Stale(k Key) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.engine.Active(k)) > 0
}

// ActiveSignals returns the pair's active signals.
func (m *Monitor) ActiveSignals(k Key) []Signal {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.engine.Active(k)
}

// StaleKeys returns all currently-flagged pairs in sorted (Src, Dst)
// order (the iteration follows the corpus's sorted key list).
func (m *Monitor) StaleKeys() []Key {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Key
	for _, k := range m.corp.Keys() {
		if len(m.engine.Active(k)) > 0 {
			out = append(out, k)
		}
	}
	return out
}

// StateVersion returns the monitor's verdict-state version. It changes
// exactly when some pair's staleness answer may have changed: on window
// closes, tracking changes, refreshes, and restores — never on raw feed
// ingestion. A caller that cached answers stamped with version v may keep
// serving them while StateVersion still returns v.
func (m *Monitor) StateVersion() uint64 { return m.version.Load() }

// PairState is one pair's verdict inputs, read consistently under a single
// lock acquisition by PairStates. Signals aliases engine-internal storage
// and is only valid while StateVersion is unchanged; copy it to retain it
// across state transitions.
type PairState struct {
	Key        Key
	Tracked    bool
	MeasuredAt int64
	// Potential counts the monitors covering the pair (§6.2's
	// known/unknown visibility split: tracked with zero potential means
	// the monitor has no vantage over the pair).
	Potential int
	Signals   []Signal
}

// PairStates reads the verdict inputs for every key under one read lock
// and returns them together with the state version they reflect. This is
// the batch query path: one lock acquisition for N keys instead of the
// three per key that Entry + Potential + ActiveSignals would cost.
func (m *Monitor) PairStates(keys []Key) ([]PairState, uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]PairState, len(keys))
	for i, k := range keys {
		out[i] = PairState{Key: k}
		en, ok := m.corp.Get(k)
		if !ok {
			continue
		}
		out[i].Tracked = true
		out[i].MeasuredAt = en.MeasuredAt
		out[i].Potential = len(m.engine.Registrations(k))
		out[i].Signals = m.engine.Active(k)
	}
	return out, m.version.Load()
}

// Potential returns the potential signals (monitors) covering a pair; an
// empty result means the monitor lacks visibility into that pair ("unknown"
// in §6.2's classification).
func (m *Monitor) Potential(k Key) []Registration {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.engine.Registrations(k)
}

// planRefreshFallbackSeed seeds the deterministic source PlanRefresh uses
// when the caller passes a nil rng.
const planRefreshFallbackSeed = 1

// PlanRefresh selects up to budget flagged pairs to remeasure, using
// §4.3.1's calibrated prioritization with Table 1 bootstrap ordering. A
// nil rng falls back to a deterministic seeded source (a fresh one per
// call, so concurrent callers never share unsynchronized rand state).
func (m *Monitor) PlanRefresh(budget int, rng *rand.Rand) []Key {
	if rng == nil {
		rng = rand.New(rand.NewSource(planRefreshFallbackSeed))
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.engine.RefreshPlan(budget, rng)
}

// PlanRefreshDetailed is PlanRefresh returning each selection with the
// attributes it was ranked by, so a cluster router can re-merge worker
// plans in global priority order. Same nil-rng fallback as PlanRefresh:
// the two are call-for-call deterministic twins.
func (m *Monitor) PlanRefreshDetailed(budget int, rng *rand.Rand) []PlanItem {
	if rng == nil {
		rng = rand.New(rand.NewSource(planRefreshFallbackSeed))
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.engine.RefreshPlanDetailed(budget, rng)
}

// RecordRefresh ingests a fresh measurement of a tracked pair: it scores
// every potential signal for calibration, replaces the corpus entry, and
// re-registers monitors. It returns the change classification relative to
// the previous entry.
func (m *Monitor) RecordRefresh(t *Traceroute) (ChangeClass, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	en, err := m.corp.Process(t)
	if err != nil {
		return Unchanged, err
	}
	cls, _ := m.engine.EvaluateRefresh(en)
	m.corp.Put(en)
	m.engine.Reregister(en)
	metMonRefreshes.Inc()
	metMonStale.Set(int64(m.engine.ActivePairs()))
	m.version.Add(1)
	return cls, nil
}

// SignalCounts returns cumulative per-technique signal totals, including
// any baseline restored from a snapshot.
func (m *Monitor) SignalCounts() map[Technique]int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.signalCountsLocked()
}

func (m *Monitor) signalCountsLocked() map[Technique]int {
	out := m.engine.SignalCounts()
	for t, n := range m.baseCounts {
		out[t] += n
	}
	return out
}

// WindowsClosed reports how many signal-generation windows the monitor has
// finished, including windows counted in a restored snapshot.
func (m *Monitor) WindowsClosed() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.baseWindows + m.engine.WindowsClosed()
}

// PrunedCommunities reports how many communities calibration has learned
// to ignore (Appendix B).
func (m *Monitor) PrunedCommunities() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.basePruned + m.engine.Calib.PrunedCommunityCount()
}

// PrunedCommunityIDs lists the pruned communities' values in ascending
// order (only communities pruned by this process — a snapshot baseline
// contributes to PrunedCommunities' count but carries no IDs). A cluster
// merge de-duplicates on these: every worker sees the full feed, so
// independent workers reach the same prune decision about the same
// community.
func (m *Monitor) PrunedCommunityIDs() []uint32 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	comms := m.engine.Calib.PrunedCommunities()
	out := make([]uint32, len(comms))
	for i, c := range comms {
		out[i] = uint32(c)
	}
	return out
}

// RevocationStats reports how many signals §4.3.2 revocation discarded
// because all monitored quantities reverted to their baselines (the
// traceroutes became fresh again without remeasurement).
func (m *Monitor) RevocationStats() (signals, pairEvents int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	signals, pairEvents = m.engine.RevocationStats()
	return m.baseRevSigs + signals, m.baseRevPairs + pairEvents
}

// NewRIBFromUpdates is a convenience that builds a primed RIB-backed
// monitor feed from a table dump; exported for tooling.
func NewRIBFromUpdates(updates []Update) *bgp.RIB {
	r := bgp.NewRIB()
	for _, u := range updates {
		r.Apply(u)
	}
	return r
}

// Classify compares a fresh measurement against the stored entry without
// refreshing (read-only check).
func (m *Monitor) Classify(t *Traceroute) (ChangeClass, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.corp.Classify(t)
}

// MonitorSnapshot captures the state a Monitor needs to resume serving
// staleness queries after a restart without replaying feed history: the
// corpus measurements, the active (unrevoked) signals, the window clock,
// and the cumulative counters. It deliberately excludes derived detector
// state (RIB view, series baselines, calibration): those rebuild from the
// live feeds, while the snapshot keeps queries answerable in the meantime.
// All fields are exported and JSON/gob-serializable; versioning of the
// on-disk envelope is the caller's concern (see internal/server).
type MonitorSnapshot struct {
	// WindowSec is the signal-generation window of the snapshotting
	// monitor; Restore refuses a snapshot taken on a different grid.
	WindowSec int64
	// Cur/Opened/FirstObs/HaveObs restore the Advance clock.
	Cur      int64
	Opened   bool
	FirstObs int64
	HaveObs  bool
	// Traces are the corpus entries' raw traceroutes in sorted key order;
	// Restore re-processes them through the monitor's own services.
	Traces []*Traceroute
	// Active are the active signals across all pairs, in sorted key order.
	Active []Signal
	// Cumulative counters (baselines included, so snapshots chain across
	// restarts).
	SignalCounts      map[Technique]int
	WindowsClosed     int
	RevokedSignals    int
	RevokedPairEvents int
	PrunedCommunities int
}

// Snapshot captures the monitor's restartable state. It takes the write
// lock (the corpus key index sorts lazily) but does not disturb feed or
// window state; it can run while a Pipeline is ingesting.
func (m *Monitor) Snapshot() *MonitorSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &MonitorSnapshot{
		WindowSec:     m.window,
		Cur:           m.cur,
		Opened:        m.opened,
		FirstObs:      m.firstObs,
		HaveObs:       m.haveObs,
		SignalCounts:  m.signalCountsLocked(),
		WindowsClosed: m.baseWindows + m.engine.WindowsClosed(),
	}
	for _, k := range m.corp.Keys() {
		en, ok := m.corp.Get(k)
		if !ok {
			continue
		}
		s.Traces = append(s.Traces, en.Trace)
		s.Active = append(s.Active, m.engine.Active(k)...)
	}
	revSigs, revPairs := m.engine.RevocationStats()
	s.RevokedSignals = m.baseRevSigs + revSigs
	s.RevokedPairEvents = m.baseRevPairs + revPairs
	s.PrunedCommunities = m.basePruned + m.engine.Calib.PrunedCommunityCount()
	return s
}

// Restore rebuilds a freshly-constructed Monitor from a snapshot: every
// corpus traceroute is re-tracked (re-registering potential signals),
// active signals are re-injected so staleness verdicts survive the
// restart, the window clock resumes, and cumulative counters continue from
// their snapshot values. The monitor must use the same services and
// WindowSec as the one that snapshotted; restore onto a monitor that has
// already tracked pairs or counted signals is not supported.
//
// Restore is all-or-nothing: every trace is validated and processed into
// a scratch entry before any of them is committed, so a snapshot with one
// bad trace (an AS-loop the snapshotting monitor's mapper did not see,
// say) leaves the monitor exactly as it was rather than half-restored.
func (m *Monitor) Restore(s *MonitorSnapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.WindowSec != m.window {
		return fmt.Errorf("rrr: snapshot window %ds does not match monitor window %ds", s.WindowSec, m.window)
	}
	entries := make([]*Entry, 0, len(s.Traces))
	for _, tr := range s.Traces {
		en, err := m.corp.Process(tr)
		if err != nil {
			return fmt.Errorf("rrr: restore %s: %w", tr.Key(), err)
		}
		entries = append(entries, en)
	}
	for _, en := range entries {
		m.corp.Put(en)
		if _, tracked := m.engine.Entry(en.Key); tracked {
			m.engine.Reregister(en)
		} else {
			m.engine.AddCorpusEntry(en)
		}
	}
	metMonTracked.Set(int64(m.corp.Len()))
	m.engine.RestoreActive(s.Active)
	m.cur, m.opened = s.Cur, s.Opened
	m.firstObs, m.haveObs = s.FirstObs, s.HaveObs
	m.baseCounts = make(map[Technique]int, len(s.SignalCounts))
	for t, n := range s.SignalCounts {
		m.baseCounts[t] = n
	}
	m.baseWindows = s.WindowsClosed
	m.baseRevSigs, m.baseRevPairs = s.RevokedSignals, s.RevokedPairEvents
	m.basePruned = s.PrunedCommunities
	m.version.Add(1)
	return nil
}

// Compile-time checks that facade aliases stay wired.
var _ = func() bool {
	var _ traceroute.Key = Key{}
	var _ bgp.Update = Update{}
	return true
}()
