module rrr

go 1.22
