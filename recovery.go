package rrr

// RecordLog receives every record the pipeline ingests, in merged
// ingestion order, before the record reaches the Monitor — plus window-
// close notifications so an on-window-close durability policy knows when
// to sync. *wal.WAL satisfies it (via the facade type aliases); a nil
// PipelineConfig.WAL disables logging. Append errors are fatal to the
// run: a monitor that advanced past records the log lost would recover
// into a different state than it served.
type RecordLog interface {
	AppendUpdate(Update) error
	AppendTrace(*Traceroute) error
	WindowClosed(ws int64) error
}

// ResumeState carries a recovery replay's outcome into RunPipeline: the
// open window's start (ResumeAll when nothing was replayed) and the open
// window's records in per-feed ingestion order. The pipeline seeds its
// positional replay matching from them, so when the reopened feeds
// re-deliver those records they are skipped instead of double-ingested —
// the same exactly-once mechanism a mid-run feed reopen uses.
type ResumeState struct {
	WindowStart int64
	Updates     []Update
	Traces      []*Traceroute
}

// RecoveryStats summarizes one recovery replay.
type RecoveryStats struct {
	// Updates/Traces were replayed into the monitor.
	Updates int
	Traces  int
	// Skipped records predated the snapshot watermark (the snapshot
	// already accounts for them).
	Skipped int
	// Windows were closed during replay; Signals were emitted by them.
	Windows int
	Signals int
}

// Recovery replays WAL records into a Monitor at startup, reproducing
// exactly what the pipeline did before the crash: records advance the
// window clock (closing windows and emitting their signals to sink) and
// are observed in log order. Records from before the monitor's restored
// window clock — covered by the snapshot that set it — are skipped, since
// re-observing them would double-count window contributions the snapshot
// already rolled up.
//
// Feed it via ObserveUpdate/ObserveTrace in log order, then call Finish
// for the ResumeState to hand RunPipeline. Recovery does not close the
// open window: the resumed pipeline continues it.
type Recovery struct {
	m      *Monitor
	sink   func(Signal)
	window int64

	watermark int64
	haveWM    bool

	curIdx  int64
	started bool

	ups   []Update
	trs   []*Traceroute
	stats RecoveryStats
}

// NewRecovery builds a replayer for m. The snapshot watermark is read
// from m's window clock, so restore the snapshot (if any) before calling
// this. sink receives replayed windows' signals (nil discards them —
// appropriate when no subscriber existed at crash time either).
func NewRecovery(m *Monitor, sink func(Signal)) *Recovery {
	r := &Recovery{m: m, sink: sink, window: m.WindowSec()}
	if start, opened := m.WindowClock(); opened {
		r.watermark, r.haveWM = start, true
		r.started, r.curIdx = true, floorDiv(start, r.window)
	}
	return r
}

// ObserveUpdate replays one logged BGP update.
func (r *Recovery) ObserveUpdate(u Update) {
	if r.skip(u.Time) {
		return
	}
	r.advanceTo(u.Time)
	r.m.ObserveBGP(u)
	r.ups = append(r.ups, u)
	r.stats.Updates++
}

// ObserveTrace replays one logged public traceroute.
func (r *Recovery) ObserveTrace(t *Traceroute) {
	if r.skip(t.Time) {
		return
	}
	r.advanceTo(t.Time)
	r.m.ObservePublic(t)
	r.trs = append(r.trs, t)
	r.stats.Traces++
}

func (r *Recovery) skip(t int64) bool {
	if r.haveWM && t < r.watermark {
		r.stats.Skipped++
		return true
	}
	return false
}

// advanceTo mirrors the pipeline's window bookkeeping: floor-divided
// indices, windows closed on boundary crossings, open-window record
// buffers cleared once a boundary completes them.
func (r *Recovery) advanceTo(t int64) {
	idx := floorDiv(t, r.window)
	if !r.started {
		r.started = true
		r.curIdx = idx
		return
	}
	if r.curIdx < idx {
		for ; r.curIdx < idx; r.curIdx++ {
			sigs := r.m.CloseWindow(r.curIdx * r.window)
			r.stats.Windows++
			r.stats.Signals += len(sigs)
			if r.sink != nil {
				for _, s := range sigs {
					r.sink(s)
				}
			}
		}
		r.ups = r.ups[:0]
		r.trs = r.trs[:0]
	}
}

// Finish returns the resume state for RunPipeline and the replay stats.
func (r *Recovery) Finish() (*ResumeState, RecoveryStats) {
	rs := &ResumeState{WindowStart: ResumeAll}
	if r.started {
		rs.WindowStart = r.curIdx * r.window
		rs.Updates = append([]Update(nil), r.ups...)
		rs.Traces = append([]*Traceroute(nil), r.trs...)
	}
	return rs, r.stats
}

// skipUpdates / skipTraces drop the leading records of a time-ordered
// source before a resume point, for sources (like the daemon's simulated
// feeds) that always regenerate from their beginning and have no
// Open(since) form.
type skipUpdates struct {
	src   UpdateSource
	since int64
	done  bool
}

// SkipUpdatesBefore returns src minus its records with Time < since.
func SkipUpdatesBefore(src UpdateSource, since int64) UpdateSource {
	return &skipUpdates{src: src, since: since}
}

func (s *skipUpdates) Read() (Update, error) {
	for {
		u, err := s.src.Read()
		if err != nil {
			return u, err
		}
		if !s.done && u.Time < s.since {
			continue
		}
		s.done = true
		return u, nil
	}
}

type skipTraces struct {
	src   TraceSource
	since int64
	done  bool
}

// SkipTracesBefore returns src minus its traceroutes with Time < since.
func SkipTracesBefore(src TraceSource, since int64) TraceSource {
	return &skipTraces{src: src, since: since}
}

func (s *skipTraces) Read() (*Traceroute, error) {
	for {
		t, err := s.src.Read()
		if err != nil {
			return t, err
		}
		if !s.done && t.Time < s.since {
			continue
		}
		s.done = true
		return t, nil
	}
}
