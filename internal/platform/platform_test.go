package platform

import (
	"testing"

	"rrr/internal/netsim"
)

func newPlat(t *testing.T) *Platform {
	t.Helper()
	s := netsim.New(netsim.TestConfig())
	cfg := DefaultConfig()
	cfg.NumProbes = 30
	cfg.NumAnchors = 10
	return New(s, cfg)
}

func TestPlacement(t *testing.T) {
	p := newPlat(t)
	if len(p.Probes) != 40 {
		t.Fatalf("placed %d probes; want 40", len(p.Probes))
	}
	if len(p.Anchors()) != 10 || len(p.RegularProbes()) != 30 {
		t.Fatalf("anchors=%d regular=%d", len(p.Anchors()), len(p.RegularProbes()))
	}
	seen := make(map[int]bool)
	ips := make(map[uint32]bool)
	for _, pr := range p.Probes {
		if seen[pr.ID] {
			t.Fatalf("duplicate probe id %d", pr.ID)
		}
		seen[pr.ID] = true
		if ips[pr.IP] {
			t.Fatalf("duplicate probe IP")
		}
		ips[pr.IP] = true
		if as, ok := p.Sim.T.OriginAS(pr.IP); !ok || as != pr.AS {
			t.Fatalf("probe IP not in its AS block")
		}
	}
}

func TestAnchoringRound(t *testing.T) {
	p := newPlat(t)
	anchors := p.Anchors()
	probes := p.RegularProbes()[:5]
	traces := p.AnchoringRound(probes, anchors, 1000)
	if len(traces) != 5*10 {
		t.Fatalf("round produced %d traces; want 50", len(traces))
	}
	for _, tr := range traces {
		if tr.MsmID != 1000 {
			t.Fatalf("msm id = %d", tr.MsmID)
		}
		if tr.Src == tr.Dst {
			t.Fatal("self trace")
		}
	}
	// Mesh excludes self-pairs.
	mesh := p.AnchoringRound(anchors, anchors, 1000)
	if len(mesh) != 10*9 {
		t.Fatalf("mesh produced %d; want 90", len(mesh))
	}
}

func TestTopologyCampaign(t *testing.T) {
	p := newPlat(t)
	dests := []uint32{
		p.Sim.T.HostIP(p.Sim.StubASes()[0], 1),
		p.Sim.T.HostIP(p.Sim.StubASes()[1], 1),
	}
	traces := p.TopologyCampaignRound(p.RegularProbes(), dests, 2, 5000)
	if len(traces) != 30*2 {
		t.Fatalf("campaign produced %d; want 60", len(traces))
	}
	for _, tr := range traces {
		if tr.MsmID != 5051 {
			t.Fatalf("msm id = %d", tr.MsmID)
		}
	}
}

func TestProbeChurn(t *testing.T) {
	s := netsim.New(netsim.TestConfig())
	cfg := DefaultConfig()
	cfg.NumProbes = 30
	cfg.NumAnchors = 5
	cfg.ProbeDeathPerDay = 2
	p := New(s, cfg)
	for d := 0; d < 5; d++ {
		p.StepDay()
	}
	dead := 0
	for _, pr := range p.Probes {
		if !pr.Active {
			dead++
			if pr.Anchor {
				t.Fatal("anchors should not die")
			}
		}
	}
	if dead != 10 {
		t.Fatalf("dead = %d; want 10", dead)
	}
	// Inactive probes issue nothing.
	traces := p.AnchoringRound(p.RegularProbes(), p.Anchors(), 1)
	for _, tr := range traces {
		pr, _ := p.ProbeByID(tr.ProbeID)
		if !pr.Active {
			t.Fatal("inactive probe measured")
		}
	}
}

func TestSplitHalves(t *testing.T) {
	p := newPlat(t)
	pub, corp := p.Split(42)
	if len(pub)+len(corp) != len(p.Probes) {
		t.Fatal("split loses probes")
	}
	if len(pub) != len(p.Probes)/2 {
		t.Fatalf("public half = %d", len(pub))
	}
	seen := make(map[int]bool)
	for _, pr := range pub {
		seen[pr.ID] = true
	}
	for _, pr := range corp {
		if seen[pr.ID] {
			t.Fatal("probe in both halves")
		}
	}
	// Deterministic.
	pub2, _ := p.Split(42)
	for i := range pub {
		if pub[i].ID != pub2[i].ID {
			t.Fatal("split not deterministic")
		}
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(10)
	if !b.Spend(0, 7) || !b.Spend(100, 3) {
		t.Fatal("within-quota spend failed")
	}
	if b.Spend(200, 1) {
		t.Fatal("over-quota spend succeeded")
	}
	if b.Remaining(200) != 0 {
		t.Fatalf("remaining = %d", b.Remaining(200))
	}
	// Next day resets.
	if !b.Spend(86400+1, 10) {
		t.Fatal("next-day spend failed")
	}
	if b.Remaining(2*86400) != 10 {
		t.Fatalf("new-day remaining = %d", b.Remaining(2*86400))
	}
}

func TestProbeByIDMissing(t *testing.T) {
	p := newPlat(t)
	if _, ok := p.ProbeByID(999999); ok {
		t.Fatal("phantom probe found")
	}
	pr, ok := p.ProbeByID(p.Probes[0].ID)
	if !ok || pr != p.Probes[0] {
		t.Fatal("ProbeByID broken")
	}
}

func TestBudgetString(t *testing.T) {
	b := NewBudget(5)
	b.Spend(86400+10, 2)
	got := b.String()
	if got != "budget{day=1 spent=2/5}" {
		t.Fatalf("String = %q", got)
	}
}

func TestMeasureProducesTrace(t *testing.T) {
	p := newPlat(t)
	probe := p.RegularProbes()[0]
	anchor := p.Anchors()[0]
	tr := p.Measure(probe, anchor.IP, 123)
	if tr.Src != probe.IP || tr.Dst != anchor.IP || tr.Time != 123 {
		t.Fatalf("trace fields: %+v", tr)
	}
	if tr.ProbeID != probe.ID {
		t.Fatal("probe id not carried")
	}
}
