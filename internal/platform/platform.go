// Package platform simulates a RIPE Atlas-like measurement platform on top
// of the netsim data plane: probes and anchors hosted in edge networks,
// periodic anchoring measurement rounds, randomized built-in campaigns like
// measurement #5051, per-user probing budgets/credits, and the
// public/corpus vantage-point split used by the paper's retrospective
// evaluation (§5.1).
package platform

import (
	"fmt"
	"math/rand"
	"sort"

	"rrr/internal/bgp"
	"rrr/internal/netsim"
	"rrr/internal/traceroute"
)

// Probe is a measurement vantage point.
type Probe struct {
	ID int
	AS bgp.ASN
	IP uint32
	// Anchor marks well-provisioned devices that are also measurement
	// targets.
	Anchor bool
	// Active probes issue measurements; probes churn over time (the
	// paper's "fresh, dead Probe" category).
	Active bool
}

// Config sizes the platform.
type Config struct {
	Seed int64
	// NumProbes and NumAnchors, placed in stub and small transit ASes.
	NumProbes  int
	NumAnchors int
	// ProbeDeathPerDay is the expected number of probes that disappear
	// per day.
	ProbeDeathPerDay float64
}

// DefaultConfig returns a platform sized for the experiment harness.
func DefaultConfig() Config {
	return Config{Seed: 2, NumProbes: 120, NumAnchors: 40, ProbeDeathPerDay: 0.5}
}

// Platform binds probes to the simulator.
type Platform struct {
	Sim     *netsim.Sim
	Probes  []*Probe
	rng     *rand.Rand
	deaths  float64
	cfgRate float64
}

// New places probes deterministically across stub ASes (several per AS when
// probes outnumber stubs).
func New(s *netsim.Sim, cfg Config) *Platform {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Platform{Sim: s, rng: rng, cfgRate: cfg.ProbeDeathPerDay}
	stubs := s.StubASes()
	if len(stubs) == 0 {
		return p
	}
	id := 1
	place := func(n int, anchor bool) {
		for i := 0; i < n; i++ {
			as := stubs[rng.Intn(len(stubs))]
			hostIdx := 100 + id // distinct host addresses per probe
			p.Probes = append(p.Probes, &Probe{
				ID: id, AS: as, IP: s.T.HostIP(as, hostIdx), Anchor: anchor, Active: true,
			})
			id++
		}
	}
	place(cfg.NumAnchors, true)
	place(cfg.NumProbes, false)
	return p
}

// Anchors returns the anchor probes.
func (p *Platform) Anchors() []*Probe {
	var out []*Probe
	for _, pr := range p.Probes {
		if pr.Anchor {
			out = append(out, pr)
		}
	}
	return out
}

// RegularProbes returns the non-anchor probes.
func (p *Platform) RegularProbes() []*Probe {
	var out []*Probe
	for _, pr := range p.Probes {
		if !pr.Anchor {
			out = append(out, pr)
		}
	}
	return out
}

// ProbeByID returns a probe.
func (p *Platform) ProbeByID(id int) (*Probe, bool) {
	for _, pr := range p.Probes {
		if pr.ID == id {
			return pr, true
		}
	}
	return nil, false
}

// Measure issues one traceroute from a probe.
func (p *Platform) Measure(probe *Probe, dst uint32, when int64) *traceroute.Traceroute {
	tr := p.Sim.Traceroute(probe.ID, probe.IP, dst, when)
	tr.MsmID = 0
	return tr
}

// AnchoringRound issues the anchoring measurements of §5.1.1: each probe in
// `sources` traceroutes every anchor in `targets`. The anchor mesh is the
// special case sources == targets.
func (p *Platform) AnchoringRound(sources, targets []*Probe, when int64) []*traceroute.Traceroute {
	var out []*traceroute.Traceroute
	for _, src := range sources {
		if !src.Active {
			continue
		}
		for _, dst := range targets {
			if src.ID == dst.ID {
				continue
			}
			tr := p.Sim.Traceroute(src.ID, src.IP, dst.IP, when)
			tr.MsmID = 1000 // anchoring measurement id space
			out = append(out, tr)
		}
	}
	return out
}

// TopologyCampaignRound mimics built-in measurement #5051: each
// participating probe measures a random sample of destination prefixes'
// .1-style addresses. Destinations rotate per round.
func (p *Platform) TopologyCampaignRound(probes []*Probe, dests []uint32, perProbe int, when int64) []*traceroute.Traceroute {
	var out []*traceroute.Traceroute
	rng := rand.New(rand.NewSource(p.rng.Int63() ^ when))
	for _, src := range probes {
		if !src.Active {
			continue
		}
		for k := 0; k < perProbe && k < len(dests); k++ {
			dst := dests[rng.Intn(len(dests))]
			tr := p.Sim.Traceroute(src.ID, src.IP, dst, when)
			tr.MsmID = 5051
			out = append(out, tr)
		}
	}
	return out
}

// StepDay ages the platform by one day: some probes die.
func (p *Platform) StepDay() {
	p.deaths += p.cfgRate
	for p.deaths >= 1 {
		p.deaths--
		alive := p.aliveNonAnchor()
		if len(alive) == 0 {
			return
		}
		alive[p.rng.Intn(len(alive))].Active = false
	}
}

func (p *Platform) aliveNonAnchor() []*Probe {
	var out []*Probe
	for _, pr := range p.Probes {
		if pr.Active && !pr.Anchor {
			out = append(out, pr)
		}
	}
	return out
}

// Split partitions probes into two equal halves P_public and P_corpus
// deterministically (§5.1.1).
func (p *Platform) Split(seed int64) (public, corpus []*Probe) {
	rng := rand.New(rand.NewSource(seed))
	shuffled := make([]*Probe, len(p.Probes))
	copy(shuffled, p.Probes)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	half := len(shuffled) / 2
	public = shuffled[:half]
	corpus = shuffled[half:]
	sort.Slice(public, func(i, j int) bool { return public[i].ID < public[j].ID })
	sort.Slice(corpus, func(i, j int) bool { return corpus[i].ID < corpus[j].ID })
	return public, corpus
}

// Budget enforces a per-day measurement quota like RIPE Atlas credits
// (10k traceroutes/day for a non-privileged user in §5.2).
type Budget struct {
	PerDay int
	day    int64
	spent  int
}

// NewBudget returns a budget of n measurements per day.
func NewBudget(n int) *Budget { return &Budget{PerDay: n} }

// Spend consumes n measurements at time `when`; it returns false when the
// day's quota is exhausted.
func (b *Budget) Spend(when int64, n int) bool {
	day := when / 86400
	if day != b.day {
		b.day, b.spent = day, 0
	}
	if b.spent+n > b.PerDay {
		return false
	}
	b.spent += n
	return true
}

// Remaining reports the measurements left today.
func (b *Budget) Remaining(when int64) int {
	day := when / 86400
	if day != b.day {
		return b.PerDay
	}
	return b.PerDay - b.spent
}

// String renders the budget state.
func (b *Budget) String() string {
	return fmt.Sprintf("budget{day=%d spent=%d/%d}", b.day, b.spent, b.PerDay)
}
