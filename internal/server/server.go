// Package server is rrr's query-serving layer: an HTTP/JSON API over a
// live Monitor, answering "is this traceroute stale?" at scale while a
// Pipeline ingests BGP and traceroute feeds in the background.
//
// Concurrency model: one writer (the pipeline goroutine feeding the
// Monitor) and many readers (HTTP handler goroutines querying it) share
// the Monitor's RWMutex; the signal stream reaches SSE subscribers through
// a Hub whose bounded per-subscriber rings guarantee slow clients drop
// data rather than block ingestion.
//
// Endpoints (all JSON):
//
//	GET  /v1/stale/{key}      staleness verdict for one pair ("1.2.3.4-5.6.7.8")
//	POST /v1/stale            batch verdicts: {"keys": ["src-dst", ...]}
//	GET  /v1/keys?stale=1     tracked (or only flagged) pairs, sorted
//	GET  /v1/stats            corpus size, window clock, signal/revocation totals
//	GET  /v1/signals          Server-Sent-Events stream of live signals
//	GET  /v1/events           routing events (hijacks, leaks, blackholes, artifacts)
//	POST /v1/events           routing events filtered by class/window range
//	POST /v1/refresh/plan     {"budget": n} -> §4.3.1 refresh plan
//	POST /v1/refresh/record   fresh measurement -> change class + recalibration
//	POST /v1/snapshot         write the restart snapshot to the configured path
//	GET  /metrics             Prometheus text exposition of the obs.Default registry
//	GET  /healthz             liveness (always 200 while the process serves)
//	GET  /readyz              readiness (503 until WAL recovery completes)
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rrr"
	"rrr/internal/events"
	"rrr/internal/obs"
	"rrr/internal/wal"
)

// Config tunes the server.
type Config struct {
	// SnapshotPath is where POST /v1/snapshot (and the daemon's shutdown
	// hook) write the restart snapshot; empty disables the endpoint.
	SnapshotPath string
	// RingSize is the per-SSE-subscriber signal buffer (0 =
	// DefaultRingSize).
	RingSize int
	// Heartbeat is the SSE keepalive interval (0 = 15s).
	Heartbeat time.Duration
	// MaxBatch caps the keys accepted by one POST /v1/stale (0 = 10000).
	MaxBatch int
	// MaxInFlight bounds concurrently-served data requests (0 =
	// DefaultMaxInFlight). Requests past the bound are shed with
	// 503 + Retry-After instead of queueing into latency collapse.
	// Health, readiness, metrics, and SSE stream endpoints are exempt.
	MaxInFlight int
	// Health, when set, surfaces the pipeline's per-feed supervisor state
	// in GET /v1/stats — a degraded daemon (one feed dead or retrying)
	// keeps serving, and operators see which feed is down without
	// scraping /metrics.
	Health *rrr.PipelineHealth
	// WALStatus, when set, surfaces the write-ahead log's state in
	// GET /v1/stats (policy, segment count, records, bytes).
	WALStatus func() wal.Status
	// Worker, when set, identifies this server as one cluster partition
	// owner in GET /v1/stats, so merged cluster stats stay debuggable
	// instead of anonymous sums. Single-node daemons leave it nil and
	// their stats are byte-identical to pre-cluster builds.
	Worker *WorkerIdentity
	// Events, when set, serves the routing-event detector's emissions on
	// GET/POST /v1/events. The detector is fed by the same pipeline that
	// feeds the Monitor (PipelineConfig.Tap) and is internally locked, so
	// handlers read it while ingestion writes.
	Events *events.Detector
}

// WorkerIdentity names one cluster worker and its share of the hash ring.
type WorkerIdentity struct {
	ID         int `json:"id"`
	Workers    int `json:"workers"`
	Partitions int `json:"partitions"`
	// RF is how many distinct workers track each of this worker's pairs
	// (2 under replicated rings, so the router divides summed per-pair
	// stats back to single-daemon counts). Zero means unreplicated and is
	// omitted, keeping pre-replication stats bytes unchanged.
	RF int `json:"rf,omitempty"`
}

// Server serves staleness queries from a Monitor.
type Server struct {
	mon *rrr.Monitor
	hub *Hub
	cfg Config
	mux *http.ServeMux
	// cache memoizes verdicts between Monitor state transitions, keyed by
	// pair and stamped with the Monitor's StateVersion; see verdictCache.
	cache *verdictCache
	// ready gates GET /readyz: the daemon starts serving (liveness) while
	// WAL recovery replays, and flips ready once the monitor's state is
	// complete. Defaults to true so servers without a recovery phase are
	// born ready.
	ready atomic.Bool
	// inflight counts data requests currently inside the handler tree;
	// Handler()'s admission wrapper sheds past cfg.MaxInFlight.
	inflight atomic.Int64
}

// New wires the handlers. The Monitor may (and in a daemon, will) be fed
// concurrently by a Pipeline; every handler uses only the Monitor's
// public, internally-locked API.
func New(mon *rrr.Monitor, cfg Config) *Server {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 15 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 10000
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	s := &Server{mon: mon, hub: NewHub(cfg.RingSize), cfg: cfg, mux: http.NewServeMux(), cache: newVerdictCache(0)}
	s.mux.HandleFunc("GET /v1/stale/{key}", s.handleStaleOne)
	s.mux.HandleFunc("POST /v1/stale", s.handleStaleBatch)
	s.mux.HandleFunc("GET /v1/keys", s.handleKeys)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/signals", s.handleSignals)
	s.mux.HandleFunc("GET /v1/events", s.handleEventsGet)
	s.mux.HandleFunc("POST /v1/events", s.handleEventsQuery)
	s.mux.HandleFunc("POST /v1/refresh/plan", s.handleRefreshPlan)
	s.mux.HandleFunc("POST /v1/refresh/record", s.handleRefreshRecord)
	s.mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	s.mux.Handle("GET /metrics", obs.Default.Handler())
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.ready.Store(true)
	return s
}

// SetReady flips the /readyz gate. The daemon clears it before WAL
// recovery (queries during replay see partial state and load balancers
// should not route to it yet) and sets it once the replayed monitor is
// current.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.ready.Load() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
}

// DefaultMaxInFlight is the Config.MaxInFlight default: generous enough
// that the differential and torture suites never shed, small enough to
// bound memory under a stampede.
const DefaultMaxInFlight = 4096

// DeadlineHeader carries the router's remaining per-request budget in
// milliseconds. The worker folds it into the request context so work for
// an already-expired router deadline is abandoned instead of computed and
// discarded.
const DeadlineHeader = "X-RRR-Deadline-Ms"

// OverloadExempt reports whether a path bypasses in-flight admission:
// probes and metrics must answer during overload (they are how operators
// and the router's circuit breakers see the overload), and SSE streams
// are long-lived by design so counting them would wedge admission.
func OverloadExempt(path string) bool {
	switch path {
	case "/healthz", "/readyz", "/metrics", "/v1/signals":
		return true
	}
	return false
}

// Handler returns the HTTP handler tree wrapped with overload admission
// and router-deadline propagation.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if OverloadExempt(r.URL.Path) {
			s.mux.ServeHTTP(w, r)
			return
		}
		if h := r.Header.Get(DeadlineHeader); h != "" {
			if ms, err := strconv.ParseInt(h, 10, 64); err == nil {
				if ms <= 0 {
					// The caller's budget is already spent; any answer
					// would be discarded.
					metShed.Inc()
					w.Header().Set("Retry-After", "1")
					writeErr(w, http.StatusServiceUnavailable, "deadline already exceeded")
					return
				}
				ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		n := s.inflight.Add(1)
		metInflight.Set(n)
		defer func() { metInflight.Set(s.inflight.Add(-1)) }()
		if n > int64(s.cfg.MaxInFlight) {
			metShed.Inc()
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Sprintf("overloaded: %d requests in flight (limit %d)", n, s.cfg.MaxInFlight))
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Publish is the Pipeline sink: it fans the signal out to SSE subscribers
// without blocking ingestion. Compose with other sinks via rrr.Tee.
func (s *Server) Publish(sig rrr.Signal) { s.hub.Publish(sig) }

// PublishWindowClose fans a window-close marker out to SSE subscribers.
// Wire it to PipelineConfig.OnWindowClose so streams carry `event: window`
// frames delimiting each engine window — the ordering barrier the cluster
// router's stream merger relies on.
func (s *Server) PublishWindowClose(ws int64) { s.hub.PublishWindow(ws) }

// Hub exposes the subscriber hub (for tests and stats).
func (s *Server) Hub() *Hub { return s.hub }

// --- key and signal JSON forms ---

// FormatKey renders a pair as "src-dst" (the API's canonical key form).
func FormatKey(k rrr.Key) string {
	return rrr.FormatIP(k.Src) + "-" + rrr.FormatIP(k.Dst)
}

// ParseKey accepts "src-dst" or the Go String() form "src->dst".
func ParseKey(s string) (rrr.Key, error) {
	sep := "-"
	if strings.Contains(s, "->") {
		sep = "->"
	}
	a, b, ok := strings.Cut(s, sep)
	if !ok {
		return rrr.Key{}, fmt.Errorf("key %q: want src-dst", s)
	}
	src, err := rrr.ParseIP(a)
	if err != nil {
		return rrr.Key{}, fmt.Errorf("key %q: %v", s, err)
	}
	dst, err := rrr.ParseIP(b)
	if err != nil {
		return rrr.Key{}, fmt.Errorf("key %q: %v", s, err)
	}
	return rrr.Key{Src: src, Dst: dst}, nil
}

// signalJSON is the wire form of a staleness prediction signal.
type signalJSON struct {
	Technique   string  `json:"technique"`
	Key         string  `json:"key"`
	MonitorID   int     `json:"monitorId"`
	WindowStart int64   `json:"windowStart"`
	Borders     []int   `json:"borders,omitempty"`
	Detail      string  `json:"detail,omitempty"`
	Score       float64 `json:"score,omitempty"`
	VPCount     int     `json:"vpCount,omitempty"`
}

func toSignalJSON(sig rrr.Signal) signalJSON {
	return signalJSON{
		Technique:   sig.Technique.String(),
		Key:         FormatKey(sig.Key),
		MonitorID:   sig.MonitorID,
		WindowStart: sig.WindowStart,
		Borders:     sig.Borders,
		Detail:      sig.Detail,
		Score:       sig.Score,
		VPCount:     sig.VPCount,
	}
}

// techniqueByName inverts Technique.String for wire-form decoding.
var techniqueByName = map[string]rrr.Technique{
	rrr.TechBGPASPath.String():     rrr.TechBGPASPath,
	rrr.TechBGPCommunity.String():  rrr.TechBGPCommunity,
	rrr.TechBGPBurst.String():      rrr.TechBGPBurst,
	rrr.TechTraceSubpath.String():  rrr.TechTraceSubpath,
	rrr.TechTraceBorder.String():   rrr.TechTraceBorder,
	rrr.TechIXPMembership.String(): rrr.TechIXPMembership,
}

// ParseSignal decodes an /v1/signals wire-form signal back into the
// engine's representation. The cluster router uses the decoded form only
// for ordering (rrr.SignalLess) and re-emits the original bytes, so the
// fields ParseSignal recovers are exactly the ones the wire form carries.
func ParseSignal(data []byte) (rrr.Signal, error) {
	var sj signalJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return rrr.Signal{}, err
	}
	k, err := ParseKey(sj.Key)
	if err != nil {
		return rrr.Signal{}, err
	}
	t, ok := techniqueByName[sj.Technique]
	if !ok {
		return rrr.Signal{}, fmt.Errorf("unknown technique %q", sj.Technique)
	}
	return rrr.Signal{
		Technique:   t,
		Key:         k,
		MonitorID:   sj.MonitorID,
		WindowStart: sj.WindowStart,
		Borders:     sj.Borders,
		Detail:      sj.Detail,
		Score:       sj.Score,
		VPCount:     sj.VPCount,
	}, nil
}

// Verdict is the staleness answer for one pair, including §6.2's
// known/unknown visibility split: a tracked pair with no potential signals
// is "unknown" — the monitor has no vantage over it, so silence is not
// evidence of freshness.
type Verdict struct {
	Key               string       `json:"key"`
	Tracked           bool         `json:"tracked"`
	Stale             bool         `json:"stale"`
	Visibility        string       `json:"visibility"` // known | unknown | untracked
	MeasuredAt        int64        `json:"measuredAt,omitempty"`
	PotentialMonitors int          `json:"potentialMonitors"`
	Signals           []signalJSON `json:"signals,omitempty"`
}

// verdictFromState renders a Monitor pair snapshot as a wire verdict. The
// signalJSON conversion copies each signal out of engine-internal storage,
// so the resulting Verdict is safe to cache across state transitions.
func verdictFromState(ps rrr.PairState) Verdict {
	v := Verdict{Key: FormatKey(ps.Key)}
	if !ps.Tracked {
		v.Visibility = "untracked"
		return v
	}
	v.Tracked = true
	v.MeasuredAt = ps.MeasuredAt
	v.PotentialMonitors = ps.Potential
	if ps.Potential == 0 {
		v.Visibility = "unknown"
	} else {
		v.Visibility = "known"
	}
	for _, sig := range ps.Signals {
		v.Signals = append(v.Signals, toSignalJSON(sig))
	}
	v.Stale = len(v.Signals) > 0
	return v
}

// renderVerdict computes and JSON-encodes the verdict for one pair
// snapshot. Rendering happens once per (pair, state version) — cache hits
// reuse the encoded bytes, so the hot read path does no reflection-driven
// marshaling at all.
func renderVerdict(ps rrr.PairState) cachedVerdict {
	v := verdictFromState(ps)
	data, err := json.Marshal(v)
	if err != nil {
		// Unreachable with finite detector scores; keep the wire JSON valid.
		data = []byte(`{"error":"verdict encoding failed"}`)
	}
	return cachedVerdict{Stale: v.Stale, JSON: data}
}

// verdicts answers a batch of keys: repeated keys are deduplicated (each
// unique key is resolved once), cached answers stamped with the current
// state version are served without locking the Monitor, and all remaining
// keys are read in one PairStates call — a single lock acquisition per
// request rather than three per key.
func (s *Server) verdicts(keys []rrr.Key) []cachedVerdict {
	ver := s.mon.StateVersion()
	out := make([]cachedVerdict, len(keys))
	// first maps each key to its first occurrence; duplicate positions are
	// back-filled from there after resolution, avoiding a per-key index
	// slice on this hot path.
	first := make(map[rrr.Key]int, len(keys))
	uniq := make([]rrr.Key, 0, len(keys))
	dups := false
	for i, k := range keys {
		if _, seen := first[k]; seen {
			dups = true
			continue
		}
		first[k] = i
		uniq = append(uniq, k)
	}
	miss := uniq[:0]
	for _, k := range uniq {
		if v, ok := s.cache.get(k, ver); ok {
			out[first[k]] = v
		} else {
			miss = append(miss, k)
		}
	}
	if len(miss) > 0 {
		states, sver := s.mon.PairStates(miss)
		for _, ps := range states {
			v := renderVerdict(ps)
			s.cache.put(ps.Key, v, sver)
			out[first[ps.Key]] = v
		}
	}
	if dups {
		for i, k := range keys {
			out[i] = out[first[k]]
		}
	}
	return out
}

// --- handlers ---

func (s *Server) handleStaleOne(w http.ResponseWriter, r *http.Request) {
	k, err := ParseKey(r.PathValue("key"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	cv := s.verdicts([]rrr.Key{k})[0]
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(cv.JSON)
	w.Write([]byte("\n"))
}

func (s *Server) handleStaleBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Keys) == 0 {
		writeErr(w, http.StatusBadRequest, "no keys")
		return
	}
	if len(req.Keys) > s.cfg.MaxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d keys exceeds batch limit %d", len(req.Keys), s.cfg.MaxBatch))
		return
	}
	keys := make([]rrr.Key, len(req.Keys))
	for i, ks := range req.Keys {
		k, err := ParseKey(ks)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		keys[i] = k
	}
	// The client (or the router, via the propagated deadline) may already
	// be gone; verdict computation for a canceled request is pure waste.
	if r.Context().Err() != nil {
		return
	}
	verdicts := s.verdicts(keys)
	if r.Context().Err() != nil {
		return
	}
	stale := 0
	size := 0
	for i := range verdicts {
		size += len(verdicts[i].JSON) + 1
		if verdicts[i].Stale {
			stale++
		}
	}
	// The verdict bodies are pre-rendered JSON; splice them directly
	// instead of round-tripping through json.Marshal, which would re-scan
	// (Compact) every byte of every cached verdict on every request.
	var buf bytes.Buffer
	buf.Grow(size + 64)
	buf.WriteString(`{"stale":`)
	buf.WriteString(strconv.Itoa(stale))
	buf.WriteString(`,"count":`)
	buf.WriteString(strconv.Itoa(len(verdicts)))
	buf.WriteString(`,"verdicts":[`)
	for i := range verdicts {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(verdicts[i].JSON)
	}
	buf.WriteString("]}\n")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	staleOnly := r.URL.Query().Get("stale") == "1"
	var keys []rrr.Key
	if staleOnly {
		keys = s.mon.StaleKeys()
	} else {
		keys = s.mon.Tracked()
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = FormatKey(k)
	}
	writeJSON(w, http.StatusOK, map[string]any{"keys": out, "count": len(out)})
}

// Stats is GET /v1/stats: deliberately free of wall-clock fields so a
// snapshot→restart→restore cycle reproduces it byte for byte.
type Stats struct {
	CorpusSize        int            `json:"corpusSize"`
	StaleKeys         int            `json:"staleKeys"`
	WindowSec         int64          `json:"windowSec"`
	WindowsClosed     int            `json:"windowsClosed"`
	Signals           map[string]int `json:"signals"`
	TotalSignals      int            `json:"totalSignals"`
	RevokedSignals    int            `json:"revokedSignals"`
	RevokedPairEvents int            `json:"revokedPairEvents"`
	PrunedCommunities int            `json:"prunedCommunities"`
	// PrunedCommunityIDs lists the pruned communities' values, present
	// only on cluster workers (Worker set): every worker ingests the full
	// feed, so the router must merge prune decisions as a set union, not
	// a sum. Single-node responses omit it, keeping their bytes stable.
	PrunedCommunityIDs []uint32 `json:"prunedCommunityIds,omitempty"`
	Subscribers        int      `json:"subscribers"`
	// Feeds is the pipeline's per-feed health (status, retries, faults
	// absorbed); absent when the server runs without an ingesting
	// pipeline.
	Feeds []rrr.FeedHealth `json:"feeds,omitempty"`
	// WAL is the write-ahead log's state; absent without -wal-dir. Its
	// fields are log-deterministic (same record sequence → same values),
	// preserving the byte-for-byte restart guarantee above.
	WAL *wal.Status `json:"wal,omitempty"`
	// Worker identifies this server's cluster partition slice; absent on
	// single-node daemons.
	Worker *WorkerIdentity `json:"worker,omitempty"`
}

func (s *Server) stats() Stats {
	st := Stats{
		CorpusSize:    len(s.mon.Tracked()),
		StaleKeys:     len(s.mon.StaleKeys()),
		WindowSec:     s.mon.WindowSec(),
		WindowsClosed: s.mon.WindowsClosed(),
		Signals:       make(map[string]int),
		Subscribers:   s.hub.Subscribers(),
	}
	for t, n := range s.mon.SignalCounts() {
		st.Signals[t.String()] = n
		st.TotalSignals += n
	}
	st.RevokedSignals, st.RevokedPairEvents = s.mon.RevocationStats()
	st.PrunedCommunities = s.mon.PrunedCommunities()
	if s.cfg.Worker != nil {
		st.PrunedCommunityIDs = s.mon.PrunedCommunityIDs()
	}
	st.Feeds = s.cfg.Health.Snapshot() // nil-safe: nil Health yields no feeds
	if s.cfg.WALStatus != nil {
		ws := s.cfg.WALStatus()
		st.WAL = &ws
	}
	st.Worker = s.cfg.Worker
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}

func (s *Server) handleSignals(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sub := s.hub.Subscribe()
	defer s.hub.Unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": rrrd signal stream\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(s.cfg.Heartbeat)
	defer heartbeat.Stop()
	var reported uint64
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub.C():
			if d := sub.Dropped(); d > reported {
				fmt.Fprintf(w, "event: dropped\ndata: {\"dropped\":%d}\n\n", d)
				reported = d
			}
			if ev.Window {
				fmt.Fprintf(w, "event: window\ndata: {\"windowStart\":%d}\n\n", ev.WindowStart)
				fl.Flush()
				continue
			}
			if ev.Routing != nil {
				data, err := json.Marshal(ToEventJSON(*ev.Routing))
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "event: routing\ndata: %s\n\n", data)
				fl.Flush()
				continue
			}
			data, err := json.Marshal(toSignalJSON(ev.Signal))
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: signal\ndata: %s\n\n", data)
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprintf(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}

func (s *Server) handleRefreshPlan(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Budget int `json:"budget"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Budget <= 0 {
		writeErr(w, http.StatusBadRequest, "budget must be positive")
		return
	}
	// nil rng: the Monitor falls back to its deterministic seeded source,
	// keeping the endpoint reproducible and race-free across handlers.
	plan := s.mon.PlanRefreshDetailed(req.Budget, nil)
	keys := make([]string, len(plan))
	entries := make([]PlanEntry, len(plan))
	for i, it := range plan {
		keys[i] = FormatKey(it.Key)
		entries[i] = toPlanEntry(it)
	}
	writeJSON(w, http.StatusOK, map[string]any{"keys": keys, "plan": entries, "planned": len(keys)})
}

// PlanEntry is one /v1/refresh/plan selection with the attributes it was
// ranked by. A cluster router re-merges workers' entries with
// PlanEntryLess to reconstruct the global priority order; a plain client
// can ignore everything but the keys list.
type PlanEntry struct {
	Key        string  `json:"key"`
	Calibrated bool    `json:"calibrated,omitempty"`
	VPTPR      float64 `json:"vpTpr,omitempty"`
	Technique  string  `json:"technique"`
	VPCount    int     `json:"vpCount,omitempty"`
	Score      float64 `json:"score,omitempty"`
	IPOverlap  int     `json:"ipOverlap,omitempty"`
	ASOverlap  int     `json:"asOverlap,omitempty"`
	SameASVP   bool    `json:"sameAsVp,omitempty"`
	SameCityVP bool    `json:"sameCityVp,omitempty"`
}

func toPlanEntry(it rrr.PlanItem) PlanEntry {
	return PlanEntry{
		Key:        FormatKey(it.Key),
		Calibrated: it.Calibrated,
		VPTPR:      it.VPTPR,
		Technique:  it.Sig.Technique.String(),
		VPCount:    it.Sig.VPCount,
		Score:      it.Sig.Score,
		IPOverlap:  it.Sig.IPOverlap,
		ASOverlap:  it.Sig.ASOverlap,
		SameASVP:   it.Sig.SameASVP,
		SameCityVP: it.Sig.SameCityVP,
	}
}

// PlanEntryLess reports whether a outranks b in the global §4.3.1
// priority order: calibrated selections first (VP summed TPR descending,
// then VP address), then Table 1's bootstrap order over the
// representative-signal attributes, with the numeric key as the final
// deterministic tiebreak. Merging per-partition plans with it reproduces
// a single daemon's order whenever the per-VP TPR sums do (always, in
// the refresh-free regime where no VP is calibrated).
func PlanEntryLess(a, b PlanEntry) bool {
	ak, aerr := ParseKey(a.Key)
	bk, berr := ParseKey(b.Key)
	if aerr != nil || berr != nil {
		return a.Key < b.Key
	}
	if a.Calibrated != b.Calibrated {
		return a.Calibrated
	}
	if a.Calibrated {
		if a.VPTPR != b.VPTPR {
			return a.VPTPR > b.VPTPR
		}
		if ak.Src != bk.Src {
			return ak.Src < bk.Src
		}
		return ak.Dst < bk.Dst
	}
	if a.IPOverlap != b.IPOverlap {
		return a.IPOverlap > b.IPOverlap
	}
	if a.ASOverlap != b.ASOverlap {
		return a.ASOverlap > b.ASOverlap
	}
	aBoth, bBoth := a.SameASVP && a.SameCityVP, b.SameASVP && b.SameCityVP
	if aBoth != bBoth {
		return aBoth
	}
	if a.SameASVP != b.SameASVP {
		return a.SameASVP
	}
	if a.SameCityVP != b.SameCityVP {
		return a.SameCityVP
	}
	at, aok := techniqueByName[a.Technique]
	bt, bok := techniqueByName[b.Technique]
	if aok && bok {
		aAS, bAS := at == rrr.TechBGPASPath, bt == rrr.TechBGPASPath
		if aAS != bAS {
			return aAS
		}
		if at.IsBGP() != bt.IsBGP() {
			if a.VPCount != b.VPCount {
				return a.VPCount > b.VPCount
			}
			return a.Score > b.Score
		}
		if at.IsBGP() {
			if a.VPCount != b.VPCount {
				return a.VPCount > b.VPCount
			}
		} else if a.Score != b.Score {
			return a.Score > b.Score
		}
	}
	if ak.Src != bk.Src {
		return ak.Src < bk.Src
	}
	return ak.Dst < bk.Dst
}

// traceJSON is the wire form of a traceroute measurement for
// POST /v1/refresh/record.
type traceJSON struct {
	MsmID   int64     `json:"msmId,omitempty"`
	ProbeID int       `json:"probeId,omitempty"`
	Time    int64     `json:"time"`
	Src     string    `json:"src"`
	Dst     string    `json:"dst"`
	Reached bool      `json:"reached,omitempty"`
	Hops    []hopJSON `json:"hops"`
}

type hopJSON struct {
	// IP is the hop address; "*" or "" marks an unresponsive hop.
	IP  string  `json:"ip"`
	RTT float64 `json:"rtt,omitempty"`
	TTL int     `json:"ttl,omitempty"`
}

func (t traceJSON) toTraceroute() (*rrr.Traceroute, error) {
	src, err := rrr.ParseIP(t.Src)
	if err != nil {
		return nil, fmt.Errorf("src: %v", err)
	}
	dst, err := rrr.ParseIP(t.Dst)
	if err != nil {
		return nil, fmt.Errorf("dst: %v", err)
	}
	tr := &rrr.Traceroute{
		MsmID: t.MsmID, ProbeID: t.ProbeID, Time: t.Time,
		Src: src, Dst: dst, Reached: t.Reached,
	}
	for i, h := range t.Hops {
		hop := rrr.Hop{RTT: h.RTT, TTL: h.TTL}
		if hop.TTL == 0 {
			hop.TTL = i + 1
		}
		if h.IP != "" && h.IP != "*" {
			ip, err := rrr.ParseIP(h.IP)
			if err != nil {
				return nil, fmt.Errorf("hop %d: %v", i, err)
			}
			hop.IP = ip
		}
		tr.Hops = append(tr.Hops, hop)
	}
	return tr, nil
}

func (s *Server) handleRefreshRecord(w http.ResponseWriter, r *http.Request) {
	var req traceJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	tr, err := req.toTraceroute()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	cls, err := s.mon.RecordRefresh(tr)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"key":         FormatKey(tr.Key()),
		"changeClass": cls.String(),
	})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SnapshotPath == "" {
		writeErr(w, http.StatusConflict, "no snapshot path configured (start with -snapshot)")
		return
	}
	n, err := WriteSnapshot(s.cfg.SnapshotPath, s.mon)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"path":    s.cfg.SnapshotPath,
		"entries": n.Entries,
		"signals": n.Signals,
		"bytes":   n.Bytes,
	})
}

// --- helpers ---

// writeJSON marshals before touching the ResponseWriter, so an encode
// failure (e.g. a non-finite float smuggled into a response struct) becomes
// a 500 with a body instead of a silently empty 200 — headers would already
// be on the wire by the time a streaming encoder notices.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data, code = []byte(`{"error":"response encoding failed"}`), http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
	w.Write([]byte("\n"))
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
