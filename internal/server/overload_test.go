package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDeadlineHeaderShed pins the deadline-propagation contract: a request
// arriving with its router-side budget already spent is shed immediately
// with 503 + Retry-After (the worker must not compute verdicts the router
// has stopped waiting for), while a live budget and exempt paths pass.
func TestDeadlineHeaderShed(t *testing.T) {
	mon, _, _ := newStaleMonitor(t)
	srv := New(mon, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path, deadlineMs string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if deadlineMs != "" {
			req.Header.Set(DeadlineHeader, deadlineMs)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		io.Copy(io.Discard, resp.Body)
		return resp
	}

	if resp := get("/v1/keys", "0"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("spent deadline = %d, want 503", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Fatal("spent-deadline 503 without Retry-After")
	}
	if resp := get("/v1/keys", "-5"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("negative deadline = %d, want 503", resp.StatusCode)
	}
	if resp := get("/v1/keys", "30000"); resp.StatusCode != http.StatusOK {
		t.Fatalf("live deadline = %d, want 200", resp.StatusCode)
	}
	if resp := get("/v1/keys", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("no deadline = %d, want 200", resp.StatusCode)
	}
	// Probe endpoints are exempt from every admission check — a spent
	// deadline must not make the worker look unhealthy.
	if resp := get("/healthz", "0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("exempt path with spent deadline = %d, want 200", resp.StatusCode)
	}
}

// TestOverloadShed drives the in-flight admission bound deterministically:
// a request wedged in the handler (its body arrives byte by byte) holds
// the single MaxInFlight slot, the next data request is shed with
// 503 + Retry-After, and once the wedge clears the serve path recovers.
func TestOverloadShed(t *testing.T) {
	mon, _, _ := newStaleMonitor(t)
	srv := New(mon, Config{MaxInFlight: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/stale", "application/json", pr)
		if err != nil {
			first <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	// The handler is inside the admission gate once the inflight gauge
	// reads 1 (/metrics is exempt, so polling it cannot consume the slot).
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), "rrr_server_inflight 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied the in-flight slot")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow request = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("overload 503 without Retry-After")
	}

	if _, err := pw.Write([]byte(`{"keys":["10.0.0.1-10.0.0.2"]}`)); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if code := <-first; code != http.StatusOK {
		t.Fatalf("wedged request finished %d, want 200", code)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery request = %d, want 200", resp.StatusCode)
	}
}
