package server

import "rrr/internal/obs"

// Serving-layer metric handles (SSE hub fan-out and snapshot I/O),
// resolved once at package init. They live in obs.Default alongside the
// pipeline/monitor/shard series and are served by GET /metrics.
var (
	metHubSubscribers = obs.Default.Gauge("rrr_hub_subscribers")
	metHubPublished   = obs.Default.Counter("rrr_hub_published_total")
	metHubDropped     = obs.Default.Counter("rrr_hub_dropped_total")

	metSnapWrites       = obs.Default.Counter("rrr_snapshot_writes_total")
	metSnapWriteErrors  = obs.Default.Counter("rrr_snapshot_write_errors_total")
	metSnapWriteSeconds = obs.Default.Histogram("rrr_snapshot_write_seconds", nil)
	metSnapBytes        = obs.Default.Gauge("rrr_snapshot_last_bytes")
	metSnapLoads        = obs.Default.Counter("rrr_snapshot_loads_total")
	metSnapLoadSeconds  = obs.Default.Histogram("rrr_snapshot_load_seconds", nil)

	metInflight = obs.Default.Gauge("rrr_server_inflight")
	metShed     = obs.Default.Counter("rrr_server_shed_total")
)

func init() {
	obs.Default.Help("rrr_hub_subscribers", "attached SSE signal-stream subscribers")
	obs.Default.Help("rrr_hub_published_total", "signals published to the SSE hub")
	obs.Default.Help("rrr_hub_dropped_total", "signals dropped by per-subscriber ring overflow")
	obs.Default.Help("rrr_snapshot_writes_total", "restart snapshots written successfully")
	obs.Default.Help("rrr_snapshot_write_errors_total", "snapshot write attempts that failed")
	obs.Default.Help("rrr_snapshot_write_seconds", "snapshot capture+encode+fsync+rename duration")
	obs.Default.Help("rrr_snapshot_last_bytes", "size of the most recently written snapshot")
	obs.Default.Help("rrr_snapshot_loads_total", "snapshots loaded from disk")
	obs.Default.Help("rrr_snapshot_load_seconds", "snapshot read+decode duration")
	obs.Default.Help("rrr_server_inflight", "data requests currently inside the handler tree")
	obs.Default.Help("rrr_server_shed_total", "requests shed by in-flight admission or spent deadlines")
}
