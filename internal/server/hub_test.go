package server

import (
	"testing"
	"time"

	"rrr"
)

func sig(w int64) rrr.Signal {
	return rrr.Signal{Technique: rrr.TechBGPASPath, WindowStart: w}
}

// TestHubSlowSubscriberDrops is the backpressure guarantee: a subscriber
// that never drains loses its oldest signals while Publish returns without
// blocking — feed ingestion must never stall on a stuck SSE client.
func TestHubSlowSubscriberDrops(t *testing.T) {
	h := NewHub(4)
	slow := h.Subscribe()

	const n = 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			h.Publish(sig(int64(i)))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}

	if d := slow.Dropped(); d < n-4-4 {
		// At most ring (4) buffered plus the bounded-retry slack can
		// survive; everything else must be counted dropped.
		t.Fatalf("Dropped() = %d; want >= %d", d, n-8)
	}
	if buffered := len(slow.ch); buffered > 4 {
		t.Fatalf("ring holds %d > cap 4", buffered)
	}
	// What survives is the newest tail, not the oldest head.
	got := <-slow.C()
	if got.Signal.WindowStart < 4 {
		t.Fatalf("survivor window %d; drop-oldest should keep the tail", got.Signal.WindowStart)
	}
}

func TestHubFanoutAndUnsubscribe(t *testing.T) {
	h := NewHub(8)
	a, b := h.Subscribe(), h.Subscribe()
	if h.Subscribers() != 2 {
		t.Fatalf("Subscribers = %d", h.Subscribers())
	}
	h.Publish(sig(1))
	for _, sub := range []*Subscriber{a, b} {
		select {
		case s := <-sub.C():
			if s.Signal.WindowStart != 1 {
				t.Fatalf("got window %d", s.Signal.WindowStart)
			}
		default:
			t.Fatal("subscriber missed fan-out")
		}
	}
	h.Unsubscribe(b)
	if h.Subscribers() != 1 {
		t.Fatalf("Subscribers after unsubscribe = %d", h.Subscribers())
	}
	h.Publish(sig(2))
	if len(b.ch) != 0 {
		t.Fatal("unsubscribed channel still receives")
	}
	select {
	case s := <-a.C():
		if s.Signal.WindowStart != 2 {
			t.Fatalf("got window %d", s.Signal.WindowStart)
		}
	default:
		t.Fatal("remaining subscriber missed publish")
	}
	// Double unsubscribe and publish-after-unsubscribe must not panic.
	h.Unsubscribe(b)
	h.Publish(sig(3))
}

// TestHubWindowMarkers checks that PublishWindow interleaves markers with
// signals in publish order on a subscriber's stream.
func TestHubWindowMarkers(t *testing.T) {
	h := NewHub(8)
	sub := h.Subscribe()
	h.Publish(sig(900))
	h.PublishWindow(900)
	h.Publish(sig(1800))

	want := []Event{
		{Signal: sig(900)},
		{WindowStart: 900, Window: true},
		{Signal: sig(1800)},
	}
	for i, w := range want {
		select {
		case ev := <-sub.C():
			if ev.Window != w.Window || ev.WindowStart != w.WindowStart ||
				ev.Signal.WindowStart != w.Signal.WindowStart {
				t.Fatalf("event %d = %+v; want %+v", i, ev, w)
			}
		default:
			t.Fatalf("event %d missing", i)
		}
	}
}
