package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"rrr"
	"rrr/internal/obs"
)

// snapshotMagic and snapshotVersion identify the on-disk snapshot
// envelope. Bump the version when MonitorSnapshot changes incompatibly;
// LoadSnapshot refuses files it does not understand rather than restoring
// garbage.
const (
	snapshotMagic   = "rrrd-snapshot"
	snapshotVersion = 1
)

// snapshotFile is the versioned on-disk envelope. JSON keeps the file
// debuggable with standard tools (jq) and diff-able across restarts; the
// corpus dominates the size and compresses well if the operator cares.
type snapshotFile struct {
	Magic   string               `json:"magic"`
	Version int                  `json:"version"`
	Monitor *rrr.MonitorSnapshot `json:"monitor"`
}

// SnapshotInfo summarizes a written snapshot.
type SnapshotInfo struct {
	Entries int
	Signals int
	Bytes   int
}

// WriteSnapshot captures the monitor's restartable state and durably,
// atomically writes it to path: create temp → write → fsync → close →
// rename → fsync parent dir. The fsync before rename matters — rename
// alone orders only metadata, so on some filesystems a crash shortly
// after could surface an empty or truncated snapshot under the final
// name. The temp file is removed on any failure instead of lingering
// next to the good snapshot.
func WriteSnapshot(path string, mon *rrr.Monitor) (SnapshotInfo, error) {
	timer := obs.NewTimer(metSnapWriteSeconds)
	snap := mon.Snapshot()
	data, err := json.Marshal(snapshotFile{
		Magic:   snapshotMagic,
		Version: snapshotVersion,
		Monitor: snap,
	})
	if err != nil {
		metSnapWriteErrors.Inc()
		return SnapshotInfo{}, fmt.Errorf("server: encode snapshot: %w", err)
	}
	if err := writeFileDurable(path, data); err != nil {
		metSnapWriteErrors.Inc()
		return SnapshotInfo{}, fmt.Errorf("server: write snapshot: %w", err)
	}
	timer.Stop()
	metSnapWrites.Inc()
	metSnapBytes.Set(int64(len(data)))
	return SnapshotInfo{Entries: len(snap.Traces), Signals: len(snap.Active), Bytes: len(data)}, nil
}

// snapRename and snapSync are the crash points of the durable-write
// sequence, indirected so tests can fail them at exactly the moment a real
// crash would (between temp write and rename, or at fsync) and prove the
// previous snapshot survives intact with no temp litter.
var (
	snapRename = os.Rename
	snapSync   = func(f *os.File) error { return f.Sync() }
)

// writeFileDurable performs the create→write→sync→close→rename dance,
// cleaning up the temp file on every failure path.
func writeFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := snapSync(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := snapRename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the rename itself. Best-effort: some platforms refuse to
	// fsync directories, and the data file is already durable.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

// LoadSnapshot reads and validates a snapshot file.
func LoadSnapshot(path string) (*rrr.MonitorSnapshot, error) {
	timer := obs.NewTimer(metSnapLoadSeconds)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: read snapshot: %w", err)
	}
	var f snapshotFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("server: decode snapshot %s: %w", path, err)
	}
	if f.Magic != snapshotMagic {
		return nil, fmt.Errorf("server: %s is not an rrrd snapshot", path)
	}
	if f.Version != snapshotVersion {
		return nil, fmt.Errorf("server: snapshot %s has version %d; this build reads %d",
			path, f.Version, snapshotVersion)
	}
	if f.Monitor == nil {
		return nil, fmt.Errorf("server: snapshot %s has no monitor state", path)
	}
	timer.Stop()
	metSnapLoads.Inc()
	return f.Monitor, nil
}

// RestoreSnapshot loads path and restores mon from it, returning the
// restored entry/signal counts.
func RestoreSnapshot(path string, mon *rrr.Monitor) (SnapshotInfo, error) {
	snap, err := LoadSnapshot(path)
	if err != nil {
		return SnapshotInfo{}, err
	}
	if err := mon.Restore(snap); err != nil {
		return SnapshotInfo{}, err
	}
	return SnapshotInfo{Entries: len(snap.Traces), Signals: len(snap.Active)}, nil
}
