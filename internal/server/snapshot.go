package server

import (
	"encoding/json"
	"fmt"
	"os"

	"rrr"
)

// snapshotMagic and snapshotVersion identify the on-disk snapshot
// envelope. Bump the version when MonitorSnapshot changes incompatibly;
// LoadSnapshot refuses files it does not understand rather than restoring
// garbage.
const (
	snapshotMagic   = "rrrd-snapshot"
	snapshotVersion = 1
)

// snapshotFile is the versioned on-disk envelope. JSON keeps the file
// debuggable with standard tools (jq) and diff-able across restarts; the
// corpus dominates the size and compresses well if the operator cares.
type snapshotFile struct {
	Magic   string               `json:"magic"`
	Version int                  `json:"version"`
	Monitor *rrr.MonitorSnapshot `json:"monitor"`
}

// SnapshotInfo summarizes a written snapshot.
type SnapshotInfo struct {
	Entries int
	Signals int
	Bytes   int
}

// WriteSnapshot captures the monitor's restartable state and atomically
// writes it to path (temp file + rename, so a crash mid-write never
// clobbers the previous good snapshot).
func WriteSnapshot(path string, mon *rrr.Monitor) (SnapshotInfo, error) {
	snap := mon.Snapshot()
	data, err := json.Marshal(snapshotFile{
		Magic:   snapshotMagic,
		Version: snapshotVersion,
		Monitor: snap,
	})
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("server: encode snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return SnapshotInfo{}, fmt.Errorf("server: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return SnapshotInfo{}, fmt.Errorf("server: write snapshot: %w", err)
	}
	return SnapshotInfo{Entries: len(snap.Traces), Signals: len(snap.Active), Bytes: len(data)}, nil
}

// LoadSnapshot reads and validates a snapshot file.
func LoadSnapshot(path string) (*rrr.MonitorSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: read snapshot: %w", err)
	}
	var f snapshotFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("server: decode snapshot %s: %w", path, err)
	}
	if f.Magic != snapshotMagic {
		return nil, fmt.Errorf("server: %s is not an rrrd snapshot", path)
	}
	if f.Version != snapshotVersion {
		return nil, fmt.Errorf("server: snapshot %s has version %d; this build reads %d",
			path, f.Version, snapshotVersion)
	}
	if f.Monitor == nil {
		return nil, fmt.Errorf("server: snapshot %s has no monitor state", path)
	}
	return f.Monitor, nil
}

// RestoreSnapshot loads path and restores mon from it, returning the
// restored entry/signal counts.
func RestoreSnapshot(path string, mon *rrr.Monitor) (SnapshotInfo, error) {
	snap, err := LoadSnapshot(path)
	if err != nil {
		return SnapshotInfo{}, err
	}
	if err := mon.Restore(snap); err != nil {
		return SnapshotInfo{}, err
	}
	return SnapshotInfo{Entries: len(snap.Traces), Signals: len(snap.Active)}, nil
}
