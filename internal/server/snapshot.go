package server

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"rrr"
	"rrr/internal/obs"
)

// snapshotMagic and snapshotVersion identify the on-disk snapshot
// envelope. Bump the version when MonitorSnapshot changes incompatibly;
// LoadSnapshot refuses files it does not understand rather than restoring
// garbage. Version 2 added the payload checksum; version-1 files (no
// checksum) still load for compatibility.
const (
	snapshotMagic   = "rrrd-snapshot"
	snapshotVersion = 2
)

// snapCRCTable is Castagnoli, matching the WAL's record checksums.
var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

// snapshotFile is the versioned on-disk envelope. JSON keeps the file
// debuggable with standard tools (jq) and diff-able across restarts; the
// corpus dominates the size and compresses well if the operator cares.
// Monitor stays a RawMessage so the checksum covers the exact payload
// bytes on both sides: what Write framed is what Load verifies, byte for
// byte, before any of it is unmarshaled.
type snapshotFile struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	// CRC32C is the Castagnoli checksum of the Monitor payload bytes
	// (version >= 2). A snapshot that decays into different-but-still-
	// valid JSON would otherwise restore garbage without a murmur.
	CRC32C  uint32          `json:"crc32c,omitempty"`
	Monitor json.RawMessage `json:"monitor"`
}

// SnapshotInfo summarizes a written or restored snapshot.
type SnapshotInfo struct {
	Entries int
	Signals int
	Bytes   int
	// Watermark is the snapshot's open-window start: every feed record
	// before it is rolled up in the snapshot, so WAL segments wholly
	// before it are compactable. rrr.ResumeAll when the snapshotting
	// monitor had not opened a window yet.
	Watermark int64
}

// snapWatermark extracts a snapshot's compaction watermark.
func snapWatermark(snap *rrr.MonitorSnapshot) int64 {
	if !snap.Opened {
		return rrr.ResumeAll
	}
	return snap.Cur
}

// WriteSnapshot captures the monitor's restartable state and durably,
// atomically writes it to path: create temp → write → fsync → close →
// rename → fsync parent dir. The fsync before rename matters — rename
// alone orders only metadata, so on some filesystems a crash shortly
// after could surface an empty or truncated snapshot under the final
// name. The temp file is removed on any failure instead of lingering
// next to the good snapshot.
func WriteSnapshot(path string, mon *rrr.Monitor) (SnapshotInfo, error) {
	// The deferred Stop records failed attempts too: an operator staring
	// at a latency histogram that silently excludes the slow failing
	// writes would chase the wrong problem.
	timer := obs.NewTimer(metSnapWriteSeconds)
	defer timer.Stop()
	snap := mon.Snapshot()
	payload, err := json.Marshal(snap)
	if err != nil {
		metSnapWriteErrors.Inc()
		return SnapshotInfo{}, fmt.Errorf("server: encode snapshot: %w", err)
	}
	data, err := json.Marshal(snapshotFile{
		Magic:   snapshotMagic,
		Version: snapshotVersion,
		CRC32C:  crc32.Checksum(payload, snapCRCTable),
		Monitor: payload,
	})
	if err != nil {
		metSnapWriteErrors.Inc()
		return SnapshotInfo{}, fmt.Errorf("server: encode snapshot envelope: %w", err)
	}
	if err := writeFileDurable(path, data); err != nil {
		metSnapWriteErrors.Inc()
		return SnapshotInfo{}, fmt.Errorf("server: write snapshot: %w", err)
	}
	metSnapWrites.Inc()
	metSnapBytes.Set(int64(len(data)))
	return SnapshotInfo{
		Entries:   len(snap.Traces),
		Signals:   len(snap.Active),
		Bytes:     len(data),
		Watermark: snapWatermark(snap),
	}, nil
}

// snapRename and snapSync are the crash points of the durable-write
// sequence, indirected so tests can fail them at exactly the moment a real
// crash would (between temp write and rename, or at fsync) and prove the
// previous snapshot survives intact with no temp litter.
var (
	snapRename = os.Rename
	snapSync   = func(f *os.File) error { return f.Sync() }
)

// writeFileDurable performs the create→write→sync→close→rename dance,
// cleaning up the temp file on every failure path.
func writeFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := snapSync(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := snapRename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the rename itself. Best-effort: some platforms refuse to
	// fsync directories, and the data file is already durable.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

// LoadSnapshot reads and validates a snapshot file. Version-2 files must
// pass the payload checksum before any of the payload is unmarshaled;
// version-1 files predate the checksum and load as before.
func LoadSnapshot(path string) (*rrr.MonitorSnapshot, error) {
	timer := obs.NewTimer(metSnapLoadSeconds)
	defer timer.Stop()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: read snapshot: %w", err)
	}
	var f snapshotFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("server: decode snapshot %s: %w", path, err)
	}
	if f.Magic != snapshotMagic {
		return nil, fmt.Errorf("server: %s is not an rrrd snapshot", path)
	}
	if f.Version < 1 || f.Version > snapshotVersion {
		return nil, fmt.Errorf("server: snapshot %s has version %d; this build reads 1..%d",
			path, f.Version, snapshotVersion)
	}
	if len(f.Monitor) == 0 {
		return nil, fmt.Errorf("server: snapshot %s has no monitor state", path)
	}
	if f.Version >= 2 {
		if got := crc32.Checksum(f.Monitor, snapCRCTable); got != f.CRC32C {
			return nil, fmt.Errorf("server: snapshot %s payload checksum mismatch (got %08x, envelope says %08x)",
				path, got, f.CRC32C)
		}
	}
	snap := new(rrr.MonitorSnapshot)
	if err := json.Unmarshal(f.Monitor, snap); err != nil {
		return nil, fmt.Errorf("server: decode snapshot %s monitor state: %w", path, err)
	}
	metSnapLoads.Inc()
	return snap, nil
}

// RestoreSnapshot loads path and restores mon from it, returning the
// restored entry/signal counts and the compaction watermark.
func RestoreSnapshot(path string, mon *rrr.Monitor) (SnapshotInfo, error) {
	snap, err := LoadSnapshot(path)
	if err != nil {
		return SnapshotInfo{}, err
	}
	if err := mon.Restore(snap); err != nil {
		return SnapshotInfo{}, err
	}
	return SnapshotInfo{
		Entries:   len(snap.Traces),
		Signals:   len(snap.Active),
		Watermark: snapWatermark(snap),
	}, nil
}
