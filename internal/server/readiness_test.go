package server

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"rrr"
	"rrr/internal/wal"
)

// TestHealthzAlwaysLive: liveness answers 200 from the moment the mux
// exists, readiness state notwithstanding — orchestrators must not restart
// a daemon that is alive but still replaying its WAL.
func TestHealthzAlwaysLive(t *testing.T) {
	srv := New(newTestMonitor(t), Config{})
	srv.SetReady(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var out map[string]string
	if code := getJSON(t, ts, "/healthz", &out); code != 200 {
		t.Fatalf("/healthz -> %d during recovery, want 200", code)
	}
}

// TestReadyzGatesOnRecovery: a fresh server is ready (no recovery to
// wait for); SetReady(false) flips /readyz to 503 with a recovering body,
// SetReady(true) restores 200.
func TestReadyzGatesOnRecovery(t *testing.T) {
	srv := New(newTestMonitor(t), Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out map[string]string
	if code := getJSON(t, ts, "/readyz", &out); code != 200 || out["status"] != "ready" {
		t.Fatalf("/readyz on a fresh server -> %d %v, want 200 ready", code, out)
	}
	srv.SetReady(false)
	if code := getJSON(t, ts, "/readyz", &out); code != 503 || out["status"] != "recovering" {
		t.Fatalf("/readyz during recovery -> %d %v, want 503 recovering", code, out)
	}
	srv.SetReady(true)
	if code := getJSON(t, ts, "/readyz", &out); code != 200 {
		t.Fatalf("/readyz after recovery -> %d, want 200", code)
	}
}

// TestStatsIncludesWALStatus: wiring a WALStatus source surfaces the log's
// shape in /v1/stats; without one the field is omitted entirely.
func TestStatsIncludesWALStatus(t *testing.T) {
	m, _, _ := newStaleMonitor(t)
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendUpdate(announceUpd(t, 900, "5.0.0.9", 5, "4.0.0.0/8", []rrr.ASN{5, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(New(m, Config{WALStatus: w.Status}).Handler())
	defer ts.Close()
	var st Stats
	if code := getJSON(t, ts, "/v1/stats", &st); code != 200 {
		t.Fatalf("/v1/stats -> %d", code)
	}
	if st.WAL == nil {
		t.Fatal("stats omit the WAL status despite a configured source")
	}
	if st.WAL.Records != 1 || st.WAL.Segments != 1 || st.WAL.FsyncPolicy != "window" {
		t.Fatalf("stats WAL = %+v, want 1 record, 1 segment, window policy", st.WAL)
	}

	tsNo := httptest.NewServer(New(newTestMonitor(t), Config{}).Handler())
	defer tsNo.Close()
	var raw map[string]json.RawMessage
	if code := getJSON(t, tsNo, "/v1/stats", &raw); code != 200 {
		t.Fatalf("/v1/stats -> %d", code)
	}
	if _, present := raw["wal"]; present {
		t.Fatal("stats include a wal field with no WAL configured")
	}
}

// TestSnapshotChecksumRejectsCorruption: a version-2 snapshot whose
// payload decayed into different-but-valid JSON (the failure mode a plain
// parse cannot see) is refused with a checksum error.
func TestSnapshotChecksumRejectsCorruption(t *testing.T) {
	m, _, _ := newStaleMonitor(t)
	path := t.TempDir() + "/snap.json"
	if _, err := WriteSnapshot(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digit inside the payload: still valid JSON, different state.
	mutated := strings.Replace(string(data), `"WindowSec":900`, `"WindowSec":901`, 1)
	if mutated == string(data) {
		t.Fatal("test corruption found nothing to mutate")
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted snapshot load err = %v, want checksum mismatch", err)
	}
}

// TestSnapshotVersion1StillLoads: pre-checksum snapshots (version 1, no
// crc32c field) written by earlier builds keep loading.
func TestSnapshotVersion1StillLoads(t *testing.T) {
	m, stale, _ := newStaleMonitor(t)
	path := t.TempDir() + "/snap.json"
	if _, err := WriteSnapshot(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the envelope as a v1 file: version 1, no checksum.
	var f snapshotFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	f.Version = 1
	f.CRC32C = 0
	v1, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newTestMonitor(t)
	info, err := RestoreSnapshot(path, m2)
	if err != nil {
		t.Fatalf("version-1 snapshot refused: %v", err)
	}
	if info.Entries != 2 {
		t.Fatalf("restored %d entries from v1 snapshot, want 2", info.Entries)
	}
	if !m2.Stale(stale.Key()) {
		t.Fatal("v1 restore lost the stale verdict")
	}
}

// TestSnapshotVersionBeyondBuildRejected: future versions fail loudly
// instead of restoring a format this build cannot verify.
func TestSnapshotVersionBeyondBuildRejected(t *testing.T) {
	m, _, _ := newStaleMonitor(t)
	path := t.TempDir() + "/snap.json"
	if _, err := WriteSnapshot(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f snapshotFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	f.Version = snapshotVersion + 1
	fut, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version load err = %v, want version error", err)
	}
}

// TestSnapshotLatencyCountsFailures: the write/load histograms must record
// failed attempts too — a latency view that silently excludes the slow
// failing path would send an operator chasing the wrong problem.
func TestSnapshotLatencyCountsFailures(t *testing.T) {
	m, _, _ := newStaleMonitor(t)
	dir := t.TempDir()

	writeBefore := metSnapWriteSeconds.Count()
	origSync := snapSync
	snapSync = func(*os.File) error { return os.ErrDeadlineExceeded }
	_, err := WriteSnapshot(dir+"/snap.json", m)
	snapSync = origSync
	if err == nil {
		t.Fatal("snapshot write with failing sync succeeded")
	}
	if d := metSnapWriteSeconds.Count() - writeBefore; d != 1 {
		t.Fatalf("write latency histogram count delta = %d for a failed write, want 1", d)
	}

	loadBefore := metSnapLoadSeconds.Count()
	if _, err := LoadSnapshot(dir + "/absent.json"); err == nil {
		t.Fatal("loading a missing snapshot succeeded")
	}
	if d := metSnapLoadSeconds.Count() - loadBefore; d != 1 {
		t.Fatalf("load latency histogram count delta = %d for a failed load, want 1", d)
	}
}
