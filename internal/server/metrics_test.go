package server

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"rrr"
)

// promSample matches one exposition sample line: name{labels} value.
var promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\+Inf|-?[0-9.eE+-]+)$`)

// scrapeFamilies GETs /metrics and returns the set of family names seen in
// sample lines (histogram _bucket/_sum/_count collapse to their base name),
// failing the test on any malformed line.
func scrapeFamilies(t *testing.T, ts *httptest.Server) map[string]bool {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed exposition line %q", line)
		}
		name := m[1]
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suf)
		}
		fams[name] = true
	}
	return fams
}

// TestMetricsEndpoint checks the daemon's scrape surface: parseable
// exposition, stable series names, and coverage of every instrumented
// layer (pipeline, monitor, sharded engine, hub, snapshot).
func TestMetricsEndpoint(t *testing.T) {
	mon, stale, _ := newStaleMonitor(t)
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "snap.json")
	srv := New(mon, Config{SnapshotPath: snapPath})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Touch the hub and snapshot paths so their counters move.
	sub := srv.Hub().Subscribe()
	srv.Publish(rrr.Signal{Key: stale.Key()})
	srv.Hub().Unsubscribe(sub)
	if code := postJSON(t, ts, "/v1/snapshot", nil, nil); code != 200 {
		t.Fatalf("POST /v1/snapshot = %d", code)
	}

	fams := scrapeFamilies(t, ts)
	want := []string{
		// pipeline layer (registered at package init even when idle)
		"rrr_pipeline_updates_total",
		"rrr_pipeline_traces_total",
		"rrr_pipeline_windows_closed_total",
		"rrr_pipeline_update_queue_depth",
		"rrr_pipeline_trace_queue_depth",
		"rrr_pipeline_merge_stall_seconds",
		"rrr_pipeline_feed_errors_total",
		// monitor layer
		"rrr_monitor_tracked_pairs",
		"rrr_monitor_stale_pairs",
		"rrr_monitor_windows_closed_total",
		"rrr_monitor_refreshes_total",
		"rrr_monitor_signals_total",
		// sharded engine
		"rrr_engine_observations_total",
		"rrr_shard_pairs",
		"rrr_shard_close_window_seconds",
		// serve-path admission control
		"rrr_server_inflight",
		"rrr_server_shed_total",
		// serving hub
		"rrr_hub_subscribers",
		"rrr_hub_published_total",
		"rrr_hub_dropped_total",
		// snapshot I/O
		"rrr_snapshot_writes_total",
		"rrr_snapshot_write_seconds",
		"rrr_snapshot_last_bytes",
	}
	for _, name := range want {
		if !fams[name] {
			t.Errorf("missing family %s", name)
		}
	}
	if len(fams) < 15 {
		t.Fatalf("only %d families exposed; want >= 15", len(fams))
	}
}

// TestMetricsScrapeUnderIngest scrapes /metrics while feeds are ingesting
// and windows are closing; run under -race this proves the registry's
// lock-free claim end to end.
func TestMetricsScrapeUnderIngest(t *testing.T) {
	mon, _, _ := newStaleMonitor(t)
	srv := New(mon, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for w := int64(47); w < 87; w++ {
			mon.ObserveBGP(announceUpd(t, w*900+5, "5.0.0.9", 5, "4.0.0.0/8", []rrr.ASN{5, 2, 9, 4}))
			mon.Advance((w + 1) * 900)
		}
	}()
	for i := 0; i < 30; i++ {
		scrapeFamilies(t, ts)
	}
	wg.Wait()
}

// TestWriteJSONEncodeFailure pins the empty-200 regression: a value
// encoding/json rejects (here a non-finite float) must produce a 500 with
// a JSON body, not a 200 with Content-Length: 0. Signals used to smuggle
// +Inf scores into verdict responses exactly this way.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, 200, map[string]float64{"score": math.Inf(1)})
	if rec.Code != 500 {
		t.Fatalf("code = %d; want 500", rec.Code)
	}
	var out map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if out["error"] == "" {
		t.Fatalf("body = %q; want an error field", rec.Body.String())
	}
}

// TestWriteSnapshotCleansTmp checks the durability satellite: a failed
// rename must not leave path+".tmp" lying next to the (absent) snapshot.
func TestWriteSnapshotCleansTmp(t *testing.T) {
	mon, _, _ := newStaleMonitor(t)
	dir := t.TempDir()
	// The destination is an existing non-empty directory, so the final
	// rename fails after the temp file was written and synced.
	path := filepath.Join(dir, "snap")
	if err := os.MkdirAll(filepath.Join(path, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(path, mon); err == nil {
		t.Fatal("WriteSnapshot onto a directory succeeded")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: stat err = %v", err)
	}
}

// TestWriteSnapshotDurableRoundTrip covers the happy path of the new
// write sequence: the file lands under its final name only, and loads back.
func TestWriteSnapshotDurableRoundTrip(t *testing.T) {
	mon, staleTr, _ := newStaleMonitor(t)
	path := filepath.Join(t.TempDir(), "snap.json")
	info, err := WriteSnapshot(path, mon)
	if err != nil {
		t.Fatal(err)
	}
	if info.Entries != 2 || info.Bytes <= 0 {
		t.Fatalf("info = %+v", info)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived success: stat err = %v", err)
	}
	snap, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Traces) != 2 {
		t.Fatalf("loaded %d traces; want 2", len(snap.Traces))
	}
	found := false
	for _, s := range snap.Active {
		if s.Key == staleTr.Key() {
			found = true
		}
	}
	if !found {
		t.Fatal("stale pair's signals missing from snapshot")
	}
}
