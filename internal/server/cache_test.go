package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"rrr"
)

// cacheDeltas samples the verdict-cache counters (which live in the global
// obs registry, hence deltas rather than absolutes) around fn.
func cacheDeltas(s *Server, fn func()) (hits, misses, invalidations uint64) {
	h0, m0, i0 := s.cache.hits.Value(), s.cache.misses.Value(), s.cache.invalidations.Value()
	fn()
	return s.cache.hits.Value() - h0, s.cache.misses.Value() - m0, s.cache.invalidations.Value() - i0
}

// TestVerdictCacheHitBetweenCloses: between Monitor state transitions a
// pair's verdict is immutable, so the second identical query must be
// served from the cache — and be byte-identical to the first answer.
func TestVerdictCacheHitBetweenCloses(t *testing.T) {
	m, stale, _ := newStaleMonitor(t)
	srv := New(m, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	path := "/v1/stale/" + FormatKey(stale.Key())

	var first, second Verdict
	_, misses, _ := cacheDeltas(srv, func() { getJSON(t, ts, path, &first) })
	if misses != 1 {
		t.Fatalf("cold query: misses = %d, want 1", misses)
	}
	hits, misses, _ := cacheDeltas(srv, func() { getJSON(t, ts, path, &second) })
	if hits != 1 || misses != 0 {
		t.Fatalf("warm query: hits = %d, misses = %d, want 1, 0", hits, misses)
	}
	if !second.Stale || len(second.Signals) != len(first.Signals) || second.Key != first.Key {
		t.Fatalf("cached verdict diverges: first %+v, second %+v", first, second)
	}
}

// TestVerdictCacheInvalidatedByWindowClose: a pair that goes stale in a
// later window must not keep serving its cached fresh verdict.
func TestVerdictCacheInvalidatedByWindowClose(t *testing.T) {
	m, _, fresh := newStaleMonitor(t)
	srv := New(m, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	path := "/v1/stale/" + FormatKey(fresh.Key())

	var v Verdict
	getJSON(t, ts, path, &v)
	if v.Stale {
		t.Fatalf("setup: fresh pair already stale: %+v", v)
	}

	// The fresh pair's route (6 7) changes its AS path; the next window
	// close emits the signal and bumps the monitor's state version.
	m.ObserveBGP(announceUpd(t, 46*900+5, "6.0.0.9", 6, "7.0.0.0/8", []rrr.ASN{6, 9, 7}))
	m.Advance(47 * 900)

	_, misses, invalidations := cacheDeltas(srv, func() { getJSON(t, ts, path, &v) })
	if !v.Stale {
		t.Fatalf("verdict still fresh after window close: %+v", v)
	}
	if misses != 1 || invalidations != 1 {
		t.Fatalf("post-close query: misses = %d, invalidations = %d, want 1, 1", misses, invalidations)
	}
}

// TestVerdictCacheInvalidatedByRefresh: recording a refresh clears the
// pair's signals; the cached stale verdict must die with them.
func TestVerdictCacheInvalidatedByRefresh(t *testing.T) {
	m, stale, _ := newStaleMonitor(t)
	srv := New(m, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	path := "/v1/stale/" + FormatKey(stale.Key())

	var v Verdict
	getJSON(t, ts, path, &v)
	if !v.Stale {
		t.Fatalf("setup: pair not stale: %+v", v)
	}

	rec := traceJSON{
		Time: 46 * 900, Src: "1.0.0.1", Dst: "4.0.0.9",
		Hops: []hopJSON{{IP: "1.0.0.2"}, {IP: "2.0.0.1"}, {IP: "9.0.0.1"}, {IP: "4.0.0.3"}, {IP: "4.0.0.9"}},
	}
	if code := postJSON(t, ts, "/v1/refresh/record", rec, nil); code != http.StatusOK {
		t.Fatalf("refresh status = %d", code)
	}
	getJSON(t, ts, path, &v)
	if v.Stale {
		t.Fatalf("cached stale verdict survived the refresh: %+v", v)
	}
}

// TestVerdictCacheInvalidatedByRestore is the dangerous case: a server
// answers "untracked" for a key, caches it, and then the monitor restores
// a snapshot in which that key is tracked and stale. The cached pre-restore
// verdict must not survive.
func TestVerdictCacheInvalidatedByRestore(t *testing.T) {
	m, stale, _ := newStaleMonitor(t)
	snap := m.Snapshot()

	m2 := newTestMonitor(t)
	srv := New(m2, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	path := "/v1/stale/" + FormatKey(stale.Key())

	var v Verdict
	getJSON(t, ts, path, &v)
	if v.Tracked || v.Stale {
		t.Fatalf("setup: empty monitor answered %+v", v)
	}
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts, path, &v)
	if !v.Tracked || !v.Stale {
		t.Fatalf("cached pre-restore verdict survived: %+v", v)
	}
}

// TestBatchDedupSingleComputation: a batch of N copies of one key resolves
// the verdict exactly once (one cache miss), and every response slot gets
// the same answer.
func TestBatchDedupSingleComputation(t *testing.T) {
	m, stale, _ := newStaleMonitor(t)
	srv := New(m, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 64
	keys := make([]string, n)
	for i := range keys {
		keys[i] = FormatKey(stale.Key())
	}
	var out struct {
		Verdicts []Verdict `json:"verdicts"`
		Stale    int       `json:"stale"`
	}
	hits, misses, _ := cacheDeltas(srv, func() {
		if code := postJSON(t, ts, "/v1/stale", map[string]any{"keys": keys}, &out); code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
	})
	if misses != 1 || hits != 0 {
		t.Fatalf("duplicate batch: misses = %d, hits = %d, want 1, 0", misses, hits)
	}
	if len(out.Verdicts) != n || out.Stale != n {
		t.Fatalf("batch = %d verdicts, %d stale, want %d, %d", len(out.Verdicts), out.Stale, n, n)
	}
	for i := range out.Verdicts {
		if !out.Verdicts[i].Stale || out.Verdicts[i].Key != keys[i] {
			t.Fatalf("verdict %d = %+v", i, out.Verdicts[i])
		}
	}

	// A second identical batch is all cache: one hit, zero misses.
	hits, misses, _ = cacheDeltas(srv, func() {
		postJSON(t, ts, "/v1/stale", map[string]any{"keys": keys}, &out)
	})
	if misses != 0 || hits != 1 {
		t.Fatalf("warm duplicate batch: misses = %d, hits = %d, want 0, 1", misses, hits)
	}
}

// TestVerdictCacheMetricFamilies: the four rrr_server_verdict_cache_*
// families appear in /metrics once the cache has been exercised.
func TestVerdictCacheMetricFamilies(t *testing.T) {
	m, stale, _ := newStaleMonitor(t)
	srv := New(m, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	getJSON(t, ts, "/v1/stale/"+FormatKey(stale.Key()), nil)
	getJSON(t, ts, "/v1/stale/"+FormatKey(stale.Key()), nil)

	fams := scrapeFamilies(t, ts)
	for _, fam := range []string{
		"rrr_server_verdict_cache_hits_total",
		"rrr_server_verdict_cache_misses_total",
		"rrr_server_verdict_cache_invalidations_total",
		"rrr_server_verdict_cache_size",
	} {
		if !fams[fam] {
			t.Errorf("missing family %s", fam)
		}
	}
}
