package server

import (
	"encoding/json"
	"sync"

	"rrr"
	"rrr/internal/obs"
)

// cachedVerdict is a fully-rendered staleness answer: the wire JSON plus
// the one field handlers still need (the batch endpoint's stale count).
// Caching rendered bytes rather than Verdict structs means a hit skips
// not just the monitor's lock but the per-request JSON encoding — on the
// batch endpoint the response body is assembled from RawMessages.
type cachedVerdict struct {
	Stale bool
	JSON  json.RawMessage
}

// defaultCacheCap bounds the verdict cache so a scan over millions of
// untracked keys cannot balloon resident memory; at the cap, new verdicts
// are served but not retained.
const defaultCacheCap = 1 << 16

// verdictCache memoizes staleness verdicts between Monitor state
// transitions. Verdicts are immutable while the Monitor's StateVersion is
// unchanged (signals only appear and disappear on window closes,
// refreshes, tracking changes, and restores — never on raw feed
// ingestion), so a verdict stamped with the current version can be served
// without touching the Monitor's lock at all. Invalidation is lazy: the
// first lookup after a version change drops the whole generation, because
// a window close or restore can change any pair's answer.
type verdictCache struct {
	mu      sync.RWMutex
	version uint64
	entries map[rrr.Key]cachedVerdict
	cap     int

	hits          *obs.Counter
	misses        *obs.Counter
	invalidations *obs.Counter
	size          *obs.Gauge
}

func newVerdictCache(capacity int) *verdictCache {
	if capacity <= 0 {
		capacity = defaultCacheCap
	}
	obs.Default.Help("rrr_server_verdict_cache_hits_total", "staleness verdicts served from the version-stamped cache without locking the monitor")
	obs.Default.Help("rrr_server_verdict_cache_misses_total", "staleness verdicts computed against the live monitor (cache empty, evicted, or invalidated)")
	obs.Default.Help("rrr_server_verdict_cache_invalidations_total", "cache generations dropped because the monitor's verdict state version changed")
	obs.Default.Help("rrr_server_verdict_cache_size", "verdicts currently retained in the cache")
	return &verdictCache{
		entries:       make(map[rrr.Key]cachedVerdict),
		cap:           capacity,
		hits:          obs.Default.Counter("rrr_server_verdict_cache_hits_total"),
		misses:        obs.Default.Counter("rrr_server_verdict_cache_misses_total"),
		invalidations: obs.Default.Counter("rrr_server_verdict_cache_invalidations_total"),
		size:          obs.Default.Gauge("rrr_server_verdict_cache_size"),
	}
}

// get returns the cached verdict for k if it was stamped with version.
// A version mismatch drops the stale generation before reporting a miss.
func (c *verdictCache) get(k rrr.Key, version uint64) (cachedVerdict, bool) {
	c.mu.RLock()
	if c.version == version {
		if v, ok := c.entries[k]; ok {
			c.mu.RUnlock()
			c.hits.Inc()
			return v, true
		}
		c.mu.RUnlock()
		c.misses.Inc()
		return cachedVerdict{}, false
	}
	c.mu.RUnlock()
	c.invalidate(version)
	c.misses.Inc()
	return cachedVerdict{}, false
}

// invalidate drops the current generation and restamps the cache.
func (c *verdictCache) invalidate(version uint64) {
	c.mu.Lock()
	if c.version != version {
		if len(c.entries) > 0 {
			c.entries = make(map[rrr.Key]cachedVerdict)
			c.invalidations.Inc()
		}
		c.version = version
	}
	c.mu.Unlock()
	c.size.Set(int64(c.len()))
}

// put retains v for k if version still matches the cache generation and
// the cache is not full. Verdicts computed against an older version are
// simply not retained — the next lookup recomputes.
func (c *verdictCache) put(k rrr.Key, v cachedVerdict, version uint64) {
	c.mu.Lock()
	if c.version == version && len(c.entries) < c.cap {
		c.entries[k] = v
	}
	n := len(c.entries)
	c.mu.Unlock()
	c.size.Set(int64(n))
}

func (c *verdictCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
