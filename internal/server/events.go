package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"rrr"
	"rrr/internal/events"
	"rrr/internal/trie"
)

// EventJSON is the wire form of a routing event on /v1/events and the SSE
// stream's `event: routing` frames. BGP classes carry prefix/as; trace
// classes carry key.
type EventJSON struct {
	Class       string  `json:"class"`
	WindowStart int64   `json:"windowStart"`
	Prefix      string  `json:"prefix,omitempty"`
	AS          uint32  `json:"as,omitempty"`
	Key         string  `json:"key,omitempty"`
	Detail      string  `json:"detail,omitempty"`
	Score       float64 `json:"score,omitempty"`
	VPCount     int     `json:"vpCount,omitempty"`
}

// ToEventJSON renders one routing event in wire form.
func ToEventJSON(ev events.Event) EventJSON {
	ej := EventJSON{
		Class:       ev.Class.String(),
		WindowStart: ev.WindowStart,
		AS:          uint32(ev.AS),
		Detail:      ev.Detail,
		Score:       ev.Score,
		VPCount:     ev.VPCount,
	}
	if ev.Prefix.Len != 0 || ev.Prefix.Addr != 0 {
		ej.Prefix = ev.Prefix.String()
	}
	if ev.Key != (rrr.Key{}) {
		ej.Key = FormatKey(ev.Key)
	}
	return ej
}

// ParseEvent decodes a wire-form routing event back into the detector's
// representation. The cluster router uses the decoded form only for
// ordering (events.EventLess) and deduplication, and re-emits the original
// bytes, mirroring ParseSignal.
func ParseEvent(data []byte) (events.Event, error) {
	var ej EventJSON
	if err := json.Unmarshal(data, &ej); err != nil {
		return events.Event{}, err
	}
	cls, err := events.ParseClass(ej.Class)
	if err != nil {
		return events.Event{}, err
	}
	ev := events.Event{
		Class:       cls,
		WindowStart: ej.WindowStart,
		AS:          rrr.ASN(ej.AS),
		Detail:      ej.Detail,
		Score:       ej.Score,
		VPCount:     ej.VPCount,
	}
	if ej.Prefix != "" {
		p, err := trie.ParsePrefix(ej.Prefix)
		if err != nil {
			return events.Event{}, fmt.Errorf("event prefix: %v", err)
		}
		ev.Prefix = p
	}
	if ej.Key != "" {
		k, err := ParseKey(ej.Key)
		if err != nil {
			return events.Event{}, fmt.Errorf("event key: %v", err)
		}
		ev.Key = k
	}
	return ev, nil
}

// EventsBody builds the /v1/events response payload; the cluster router
// reuses it so merged responses are byte-identical to a single worker's.
func EventsBody(evs []events.Event) map[string]any {
	out := make([]EventJSON, len(evs))
	for i, ev := range evs {
		out[i] = ToEventJSON(ev)
	}
	return map[string]any{"count": len(out), "events": out}
}

// PublishEvent is the event detector's sink: it fans a routing event out
// to SSE subscribers without blocking ingestion. Wire it to the detector's
// Config.OnEvent.
func (s *Server) PublishEvent(ev events.Event) { s.hub.PublishRouting(ev) }

// handleEventsGet is GET /v1/events: every routing event emitted so far,
// in window order (EventLess within a window).
func (s *Server) handleEventsGet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Events == nil {
		writeErr(w, http.StatusConflict, "event detection not enabled")
		return
	}
	writeJSON(w, http.StatusOK, EventsBody(s.cfg.Events.Events()))
}

// eventsQueryJSON is the POST /v1/events filter body.
type eventsQueryJSON struct {
	Classes    []string `json:"classes,omitempty"`
	FromWindow int64    `json:"fromWindow,omitempty"`
	ToWindow   int64    `json:"toWindow,omitempty"`
}

// handleEventsQuery is POST /v1/events: the GET stream narrowed by class
// set and window range.
func (s *Server) handleEventsQuery(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Events == nil {
		writeErr(w, http.StatusConflict, "event detection not enabled")
		return
	}
	var req eventsQueryJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	f := events.Filter{FromWindow: req.FromWindow, ToWindow: req.ToWindow}
	for _, name := range req.Classes {
		cls, err := events.ParseClass(name)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		f.Classes = append(f.Classes, cls)
	}
	writeJSON(w, http.StatusOK, EventsBody(s.cfg.Events.Filtered(f)))
}
