package server

import (
	"sync"
	"sync/atomic"

	"rrr"
	"rrr/internal/events"
)

// DefaultRingSize is the per-subscriber signal buffer used when Config
// leaves RingSize zero.
const DefaultRingSize = 256

// Hub fans the pipeline's signal stream out to SSE subscribers. Publish
// never blocks: each subscriber owns a bounded ring (a buffered channel
// with drop-oldest overflow), so a slow or stalled client loses its oldest
// queued signals — counted, and reported on its stream — while feed
// ingestion proceeds at full speed. This is the one-writer/many-readers
// boundary of the serving layer: the pipeline goroutine publishes, each
// subscriber drains on its own HTTP handler goroutine.
type Hub struct {
	mu   sync.Mutex
	subs map[*Subscriber]struct{}
	ring int
}

// NewHub builds a hub with the given per-subscriber ring capacity (<= 0
// uses DefaultRingSize).
func NewHub(ring int) *Hub {
	if ring <= 0 {
		ring = DefaultRingSize
	}
	return &Hub{subs: make(map[*Subscriber]struct{}), ring: ring}
}

// Event is one item on a subscriber's stream: a pipeline signal, a
// routing event from the event detector (Routing set), or a window-close
// marker (Window true) delimiting the engine's emission windows. Markers
// let downstream mergers — the cluster router — establish a barrier: once
// every worker has reported window W closed, every signal and routing
// event of W is in hand and the merged stream can be flushed in total
// order (routing events are published between a window's signals and its
// marker).
type Event struct {
	Signal      rrr.Signal
	Routing     *events.Event
	WindowStart int64
	Window      bool
}

// Subscriber is one attached event consumer.
type Subscriber struct {
	ch      chan Event
	dropped atomic.Uint64
}

// C is the subscriber's event channel; drain it promptly or lose the
// oldest buffered events.
func (s *Subscriber) C() <-chan Event { return s.ch }

// Dropped reports how many signals overflow has discarded so far.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// offer enqueues without ever blocking the publisher: on a full ring it
// evicts the oldest buffered event and retries. The retry count is
// bounded; under pathological contention the new event itself is counted
// dropped instead of spinning.
func (s *Subscriber) offer(ev Event) {
	for i := 0; i < 4; i++ {
		select {
		case s.ch <- ev:
			return
		default:
		}
		select {
		case <-s.ch:
			s.dropped.Add(1)
			metHubDropped.Inc()
		default:
		}
	}
	s.dropped.Add(1)
	metHubDropped.Inc()
}

// Subscribe attaches a new subscriber.
func (h *Hub) Subscribe() *Subscriber {
	sub := &Subscriber{ch: make(chan Event, h.ring)}
	h.mu.Lock()
	h.subs[sub] = struct{}{}
	metHubSubscribers.Set(int64(len(h.subs)))
	h.mu.Unlock()
	return sub
}

// Unsubscribe detaches a subscriber; its channel is left open (the hub
// simply stops publishing to it), so a racing Publish never sends on a
// closed channel.
func (h *Hub) Unsubscribe(sub *Subscriber) {
	h.mu.Lock()
	delete(h.subs, sub)
	metHubSubscribers.Set(int64(len(h.subs)))
	h.mu.Unlock()
}

// Subscribers reports the number of attached consumers.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Publish delivers a signal to every subscriber without blocking. Safe for
// use as a Pipeline sink.
func (h *Hub) Publish(sig rrr.Signal) {
	h.publish(Event{Signal: sig})
}

// PublishRouting delivers a routing event to every subscriber. The event
// detector emits at window close, after the window's signals and before
// the pipeline's OnWindowClose marker, so per-stream ordering is
// signals → routing events → window marker.
func (h *Hub) PublishRouting(ev events.Event) {
	h.publish(Event{Routing: &ev, WindowStart: ev.WindowStart})
}

// PublishWindow delivers a window-close marker to every subscriber. The
// pipeline calls it after all of a window's signals have been published,
// so on any single subscriber's stream the marker strictly follows the
// window's signals (drop-oldest overflow can discard either — dropped
// counts surface the gap).
func (h *Hub) PublishWindow(ws int64) {
	h.publish(Event{WindowStart: ws, Window: true})
}

func (h *Hub) publish(ev Event) {
	metHubPublished.Inc()
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		sub.offer(ev)
	}
}
