package server

import (
	"sync"
	"sync/atomic"

	"rrr"
)

// DefaultRingSize is the per-subscriber signal buffer used when Config
// leaves RingSize zero.
const DefaultRingSize = 256

// Hub fans the pipeline's signal stream out to SSE subscribers. Publish
// never blocks: each subscriber owns a bounded ring (a buffered channel
// with drop-oldest overflow), so a slow or stalled client loses its oldest
// queued signals — counted, and reported on its stream — while feed
// ingestion proceeds at full speed. This is the one-writer/many-readers
// boundary of the serving layer: the pipeline goroutine publishes, each
// subscriber drains on its own HTTP handler goroutine.
type Hub struct {
	mu   sync.Mutex
	subs map[*Subscriber]struct{}
	ring int
}

// NewHub builds a hub with the given per-subscriber ring capacity (<= 0
// uses DefaultRingSize).
func NewHub(ring int) *Hub {
	if ring <= 0 {
		ring = DefaultRingSize
	}
	return &Hub{subs: make(map[*Subscriber]struct{}), ring: ring}
}

// Subscriber is one attached signal consumer.
type Subscriber struct {
	ch      chan rrr.Signal
	dropped atomic.Uint64
}

// C is the subscriber's signal channel; drain it promptly or lose the
// oldest buffered signals.
func (s *Subscriber) C() <-chan rrr.Signal { return s.ch }

// Dropped reports how many signals overflow has discarded so far.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// offer enqueues without ever blocking the publisher: on a full ring it
// evicts the oldest buffered signal and retries. The retry count is
// bounded; under pathological contention the new signal itself is counted
// dropped instead of spinning.
func (s *Subscriber) offer(sig rrr.Signal) {
	for i := 0; i < 4; i++ {
		select {
		case s.ch <- sig:
			return
		default:
		}
		select {
		case <-s.ch:
			s.dropped.Add(1)
			metHubDropped.Inc()
		default:
		}
	}
	s.dropped.Add(1)
	metHubDropped.Inc()
}

// Subscribe attaches a new subscriber.
func (h *Hub) Subscribe() *Subscriber {
	sub := &Subscriber{ch: make(chan rrr.Signal, h.ring)}
	h.mu.Lock()
	h.subs[sub] = struct{}{}
	metHubSubscribers.Set(int64(len(h.subs)))
	h.mu.Unlock()
	return sub
}

// Unsubscribe detaches a subscriber; its channel is left open (the hub
// simply stops publishing to it), so a racing Publish never sends on a
// closed channel.
func (h *Hub) Unsubscribe(sub *Subscriber) {
	h.mu.Lock()
	delete(h.subs, sub)
	metHubSubscribers.Set(int64(len(h.subs)))
	h.mu.Unlock()
}

// Subscribers reports the number of attached consumers.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Publish delivers a signal to every subscriber without blocking. Safe for
// use as a Pipeline sink.
func (h *Hub) Publish(sig rrr.Signal) {
	metHubPublished.Inc()
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		sub.offer(sig)
	}
}
