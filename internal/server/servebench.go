package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"rrr"
	"rrr/internal/experiments"
)

// ServeBenchResult reports batch-staleness-endpoint throughput measured
// while a Pipeline concurrently ingests the simulated feed — the daemon's
// real operating point, not an idle-monitor microbenchmark.
type ServeBenchResult struct {
	CorpusSize int
	Clients    int
	Requests   int
	BatchSize  int
	Elapsed    time.Duration
	ReqPerSec  float64
	KeysPerSec float64
	P50        time.Duration
	P90        time.Duration
	P99        time.Duration
	// StaleVerdicts counts stale=true answers across all requests
	// (sanity: the pipeline is generating signals while we query).
	StaleVerdicts int
	// IngestedWindows is how many signal windows closed during the load
	// run.
	IngestedWindows int

	// Cached* report a second, identical load run issued after ingestion
	// has finished. With no window closes or refreshes in flight the
	// monitor's state version never changes, so after the first touch per
	// key every answer is served from the verdict cache without locking
	// the monitor — this phase measures the cached read path, while the
	// fields above measure contention with a live feed.
	CachedElapsed    time.Duration
	CachedReqPerSec  float64
	CachedKeysPerSec float64
	CachedP50        time.Duration
	CachedP90        time.Duration
	CachedP99        time.Duration
}

// RunServeBench starts an in-process daemon (Monitor + Pipeline over a
// DaemonEnv at the given scale) and load-tests POST /v1/stale with
// `clients` concurrent clients issuing `requests` total batches of
// `batchSize` random corpus keys.
func RunServeBench(sc experiments.Scale, clients, requests, batchSize int) (*ServeBenchResult, error) {
	env := experiments.NewDaemonEnv(sc, 0)
	cfg := rrr.DefaultConfig()
	cfg.WindowSec = sc.WindowSec
	cfg.Shards = sc.Shards
	mon, err := rrr.NewMonitor(rrr.Options{
		Config:     cfg,
		Mapper:     env.Mapper,
		Aliases:    env.Aliases,
		Geo:        env.Geo,
		Rel:        env.Rel,
		IXPMembers: env.IXPMembers,
	})
	if err != nil {
		return nil, err
	}
	for _, u := range env.Dump {
		mon.ObserveBGP(u)
	}
	for _, tr := range env.Corpus {
		// AS-loop traces are rejected by design; skip them like the lab
		// does.
		_ = mon.Track(tr)
	}
	keys := mon.Tracked()
	if len(keys) == 0 {
		return nil, fmt.Errorf("server: servebench corpus is empty")
	}

	srv := New(mon, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	pipeDone := make(chan error, 1)
	go func() {
		pipeDone <- rrr.Pipeline(ctx, mon, env.Updates, env.Traces, srv.Publish)
	}()

	windowsBefore := mon.WindowsClosed()
	perClient := requests / clients
	if perClient == 0 {
		perClient = 1
	}
	total := perClient * clients

	// Phase 1: query while the pipeline ingests (the daemon's real
	// operating point — write-lock contention and cache invalidation on
	// every window close).
	lat, stale, elapsed, err := RunStaleLoad(ts, keys, clients, perClient, batchSize)
	cancel()
	<-pipeDone
	if err != nil {
		return nil, err
	}

	res := &ServeBenchResult{
		CorpusSize:      len(keys),
		Clients:         clients,
		Requests:        total,
		BatchSize:       batchSize,
		Elapsed:         elapsed,
		StaleVerdicts:   stale,
		IngestedWindows: mon.WindowsClosed() - windowsBefore,
	}
	res.P50, res.P90, res.P99 = Percentiles(lat)
	if elapsed > 0 {
		res.ReqPerSec = float64(total) / elapsed.Seconds()
		res.KeysPerSec = res.ReqPerSec * float64(batchSize)
	}

	// Phase 2: identical load against the now-quiet monitor — the cached
	// read path.
	lat, _, elapsed, err = RunStaleLoad(ts, keys, clients, perClient, batchSize)
	if err != nil {
		return nil, err
	}
	res.CachedElapsed = elapsed
	res.CachedP50, res.CachedP90, res.CachedP99 = Percentiles(lat)
	if elapsed > 0 {
		res.CachedReqPerSec = float64(total) / elapsed.Seconds()
		res.CachedKeysPerSec = res.CachedReqPerSec * float64(batchSize)
	}
	return res, nil
}

// RunStaleLoad fires `clients` goroutines each issuing `perClient` batch
// requests of `batchSize` random corpus keys against ts's POST /v1/stale,
// returning the merged sorted latencies, total stale verdicts, and
// wall-clock elapsed. Exported so the cluster bench can drive the same
// load against a router front end and compare like with like.
func RunStaleLoad(ts *httptest.Server, keys []rrr.Key, clients, perClient, batchSize int) ([]time.Duration, int, time.Duration, error) {
	type clientStats struct {
		lat   []time.Duration
		stale int
		err   error
	}
	stats := make([]clientStats, clients)

	// Render every request body before starting the clock: the bench
	// shares one core with the server under test, so client-side JSON
	// marshaling inside the timed window would be billed to the server.
	bodies := make([][][]byte, clients)
	for c := 0; c < clients; c++ {
		rng := rand.New(rand.NewSource(int64(c) + 1))
		bodies[c] = make([][]byte, perClient)
		for i := 0; i < perClient; i++ {
			batch := make([]string, batchSize)
			for j := range batch {
				batch[j] = FormatKey(keys[rng.Intn(len(keys))])
			}
			bodies[c][i], _ = json.Marshal(map[string]any{"keys": batch})
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			httpc := ts.Client()
			st := &stats[c]
			st.lat = make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				body := bodies[c][i]
				t0 := time.Now()
				resp, err := httpc.Post(ts.URL+"/v1/stale", "application/json", bytes.NewReader(body))
				if err != nil {
					// Keep-alive race: the server may close an idle
					// connection just as we reuse it, and the transport
					// does not retry non-idempotent requests. This POST is
					// read-only, so one retry on a fresh connection is safe.
					resp, err = httpc.Post(ts.URL+"/v1/stale", "application/json", bytes.NewReader(body))
				}
				if err != nil {
					st.err = fmt.Errorf("post: %w", err)
					return
				}
				// The batch response leads with {"stale":N,...} so the
				// client can read the count from a fixed prefix and drain
				// the verdict bodies without JSON-scanning them — on a
				// single core the client's decoder would otherwise compete
				// with the server under test for the same CPU.
				n, err2 := parseStalePrefix(resp.Body)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					st.err = fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				if err2 != nil {
					st.err = fmt.Errorf("parse response: %w", err2)
					return
				}
				st.lat = append(st.lat, time.Since(t0))
				st.stale += n
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lat []time.Duration
	stale := 0
	for i := range stats {
		if stats[i].err != nil {
			return nil, 0, 0, fmt.Errorf("server: servebench client %d: %w", i, stats[i].err)
		}
		lat = append(lat, stats[i].lat...)
		stale += stats[i].stale
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat, stale, elapsed, nil
}

// parseStalePrefix reads just enough of a batch-staleness response to
// extract the leading {"stale":N field.
func parseStalePrefix(body io.Reader) (int, error) {
	var head [32]byte
	n, err := io.ReadAtLeast(body, head[:], len(`{"stale":0`))
	if err != nil {
		return 0, err
	}
	const prefix = `{"stale":`
	if !bytes.HasPrefix(head[:n], []byte(prefix)) {
		return 0, fmt.Errorf("unexpected response prefix %q", head[:n])
	}
	v := 0
	seen := false
	for _, c := range head[len(prefix):n] {
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + int(c-'0')
		seen = true
	}
	if !seen {
		return 0, fmt.Errorf("no stale count in prefix %q", head[:n])
	}
	return v, nil
}

// Percentiles reads p50/p90/p99 off a latency slice sorted ascending.
func Percentiles(lat []time.Duration) (p50, p90, p99 time.Duration) {
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		return lat[int(p*float64(len(lat)-1))]
	}
	return pct(0.50), pct(0.90), pct(0.99)
}
