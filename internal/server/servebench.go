package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"rrr"
	"rrr/internal/experiments"
)

// ServeBenchResult reports batch-staleness-endpoint throughput measured
// while a Pipeline concurrently ingests the simulated feed — the daemon's
// real operating point, not an idle-monitor microbenchmark.
type ServeBenchResult struct {
	CorpusSize int
	Clients    int
	Requests   int
	BatchSize  int
	Elapsed    time.Duration
	ReqPerSec  float64
	KeysPerSec float64
	P50        time.Duration
	P90        time.Duration
	P99        time.Duration
	// StaleVerdicts counts stale=true answers across all requests
	// (sanity: the pipeline is generating signals while we query).
	StaleVerdicts int
	// IngestedWindows is how many signal windows closed during the load
	// run.
	IngestedWindows int
}

// RunServeBench starts an in-process daemon (Monitor + Pipeline over a
// DaemonEnv at the given scale) and load-tests POST /v1/stale with
// `clients` concurrent clients issuing `requests` total batches of
// `batchSize` random corpus keys.
func RunServeBench(sc experiments.Scale, clients, requests, batchSize int) (*ServeBenchResult, error) {
	env := experiments.NewDaemonEnv(sc, 0)
	cfg := rrr.DefaultConfig()
	cfg.WindowSec = sc.WindowSec
	cfg.Shards = sc.Shards
	mon, err := rrr.NewMonitor(rrr.Options{
		Config:     cfg,
		Mapper:     env.Mapper,
		Aliases:    env.Aliases,
		Geo:        env.Geo,
		Rel:        env.Rel,
		IXPMembers: env.IXPMembers,
	})
	if err != nil {
		return nil, err
	}
	for _, u := range env.Dump {
		mon.ObserveBGP(u)
	}
	for _, tr := range env.Corpus {
		// AS-loop traces are rejected by design; skip them like the lab
		// does.
		_ = mon.Track(tr)
	}
	keys := mon.Tracked()
	if len(keys) == 0 {
		return nil, fmt.Errorf("server: servebench corpus is empty")
	}

	srv := New(mon, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	pipeDone := make(chan error, 1)
	go func() {
		pipeDone <- rrr.Pipeline(ctx, mon, env.Updates, env.Traces, srv.Publish)
	}()

	windowsBefore := mon.WindowsClosed()
	perClient := requests / clients
	if perClient == 0 {
		perClient = 1
	}
	total := perClient * clients

	type clientStats struct {
		lat   []time.Duration
		stale int
		err   error
	}
	stats := make([]clientStats, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			httpc := ts.Client()
			st := &stats[c]
			st.lat = make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				batch := make([]string, batchSize)
				for j := range batch {
					batch[j] = FormatKey(keys[rng.Intn(len(keys))])
				}
				body, _ := json.Marshal(map[string]any{"keys": batch})
				t0 := time.Now()
				resp, err := httpc.Post(ts.URL+"/v1/stale", "application/json", bytes.NewReader(body))
				if err != nil {
					// Keep-alive race: the server may close an idle
					// connection just as we reuse it, and the transport
					// does not retry non-idempotent requests. This POST is
					// read-only, so one retry on a fresh connection is safe.
					resp, err = httpc.Post(ts.URL+"/v1/stale", "application/json", bytes.NewReader(body))
				}
				if err != nil {
					st.err = fmt.Errorf("post: %w", err)
					return
				}
				var out struct {
					Stale int `json:"stale"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				// Drain the trailing newline so the connection returns to
				// the keep-alive pool instead of being torn down.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil {
					st.err = fmt.Errorf("decode (status %d): %w", resp.StatusCode, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					st.err = fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				st.lat = append(st.lat, time.Since(t0))
				st.stale += out.Stale
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	cancel()
	<-pipeDone

	res := &ServeBenchResult{
		CorpusSize:      len(keys),
		Clients:         clients,
		Requests:        total,
		BatchSize:       batchSize,
		Elapsed:         elapsed,
		IngestedWindows: mon.WindowsClosed() - windowsBefore,
	}
	var lat []time.Duration
	for i := range stats {
		if stats[i].err != nil {
			return nil, fmt.Errorf("server: servebench client %d: %w", i, stats[i].err)
		}
		lat = append(lat, stats[i].lat...)
		res.StaleVerdicts += stats[i].stale
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	res.P50, res.P90, res.P99 = pct(0.50), pct(0.90), pct(0.99)
	if elapsed > 0 {
		res.ReqPerSec = float64(total) / elapsed.Seconds()
		res.KeysPerSec = res.ReqPerSec * float64(batchSize)
	}
	return res, nil
}
