package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"rrr"
	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/experiments"
)

// testMapper: AS by first octet; 240.x is IXP 1 (mirrors the facade tests).
type testMapper struct{}

func (testMapper) ASOf(ip uint32) (bgp.ASN, bool) {
	f := ip >> 24
	if f == 240 || f == 0 {
		return 0, false
	}
	return bgp.ASN(f), true
}

func (testMapper) IXPOf(ip uint32) (int, bool) {
	if ip>>24 == 240 {
		return 1, true
	}
	return 0, false
}

func ip(t *testing.T, s string) uint32 {
	t.Helper()
	v, err := rrr.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func trace(t *testing.T, when int64, src, dst string, hops ...string) *rrr.Traceroute {
	t.Helper()
	tr := &rrr.Traceroute{Src: ip(t, src), Dst: ip(t, dst), Time: when}
	for i, h := range hops {
		hop := rrr.Hop{TTL: i + 1}
		if h != "*" {
			hop.IP = ip(t, h)
		}
		tr.Hops = append(tr.Hops, hop)
	}
	return tr
}

func announceUpd(t *testing.T, tm int64, vpIP string, as rrr.ASN, prefix string, path []rrr.ASN) rrr.Update {
	t.Helper()
	p, err := rrr.ParsePrefix(prefix)
	if err != nil {
		t.Fatal(err)
	}
	return rrr.Update{Time: tm, PeerIP: ip(t, vpIP), PeerAS: as, Type: bgp.Announce,
		Prefix: p, ASPath: path}
}

func newTestMonitor(t *testing.T) *rrr.Monitor {
	t.Helper()
	aliases := bordermap.OracleFunc(func(v uint32) (int, bool) { return int(v), true })
	m, err := rrr.NewMonitor(rrr.Options{Mapper: testMapper{}, Aliases: aliases})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newStaleMonitor builds a monitor with one tracked pair that has gone
// stale (the canonical AS-path-change scenario) and one fresh pair.
func newStaleMonitor(t *testing.T) (*rrr.Monitor, *rrr.Traceroute, *rrr.Traceroute) {
	t.Helper()
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []rrr.ASN{5, 2, 3, 4}))
	m.ObserveBGP(announceUpd(t, 0, "6.0.0.9", 6, "7.0.0.0/8", []rrr.ASN{6, 7}))
	stale := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(stale); err != nil {
		t.Fatal(err)
	}
	fresh := trace(t, 0, "8.0.0.1", "7.0.0.9", "8.0.0.2", "6.0.0.1", "7.0.0.9")
	if err := m.Track(fresh); err != nil {
		t.Fatal(err)
	}
	m.Advance(45 * 900)
	m.ObserveBGP(announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []rrr.ASN{5, 2, 9, 4}))
	m.Advance(46 * 900)
	if !m.Stale(stale.Key()) {
		t.Fatal("scenario setup: pair not stale")
	}
	return m, stale, fresh
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestKeyRoundTrip(t *testing.T) {
	k := rrr.Key{Src: ip(t, "1.2.3.4"), Dst: ip(t, "5.6.7.8")}
	s := FormatKey(k)
	if s != "1.2.3.4-5.6.7.8" {
		t.Fatalf("FormatKey = %q", s)
	}
	for _, in := range []string{s, "1.2.3.4->5.6.7.8"} {
		got, err := ParseKey(in)
		if err != nil || got != k {
			t.Fatalf("ParseKey(%q) = %v, %v", in, got, err)
		}
	}
	for _, bad := range []string{"", "1.2.3.4", "1.2.3.4-bogus", "x-5.6.7.8"} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted", bad)
		}
	}
}

func TestStaleOneEndpoint(t *testing.T) {
	m, stale, fresh := newStaleMonitor(t)
	ts := httptest.NewServer(New(m, Config{}).Handler())
	defer ts.Close()

	var v Verdict
	if code := getJSON(t, ts, "/v1/stale/"+FormatKey(stale.Key()), &v); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !v.Tracked || !v.Stale || v.Visibility != "known" || len(v.Signals) == 0 {
		t.Fatalf("stale verdict = %+v", v)
	}
	if v.PotentialMonitors == 0 {
		t.Fatal("stale pair reports no potential monitors")
	}

	if code := getJSON(t, ts, "/v1/stale/"+FormatKey(fresh.Key()), &v); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !v.Tracked || v.Stale {
		t.Fatalf("fresh verdict = %+v", v)
	}

	// Untracked pair: verdict still answers, flagged untracked.
	if code := getJSON(t, ts, "/v1/stale/99.0.0.1-98.0.0.1", &v); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if v.Tracked || v.Stale || v.Visibility != "untracked" {
		t.Fatalf("untracked verdict = %+v", v)
	}

	// Malformed key.
	if code := getJSON(t, ts, "/v1/stale/not-a-key", nil); code != http.StatusBadRequest {
		t.Fatalf("bad key status = %d", code)
	}
}

func TestStaleBatchEndpoint(t *testing.T) {
	m, stale, fresh := newStaleMonitor(t)
	ts := httptest.NewServer(New(m, Config{MaxBatch: 3}).Handler())
	defer ts.Close()

	var out struct {
		Verdicts []Verdict `json:"verdicts"`
		Stale    int       `json:"stale"`
	}
	req := map[string]any{"keys": []string{FormatKey(stale.Key()), FormatKey(fresh.Key())}}
	if code := postJSON(t, ts, "/v1/stale", req, &out); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(out.Verdicts) != 2 || out.Stale != 1 {
		t.Fatalf("batch = %+v", out)
	}
	if !out.Verdicts[0].Stale || out.Verdicts[1].Stale {
		t.Fatalf("verdict order/content wrong: %+v", out.Verdicts)
	}

	// Error paths: empty, malformed key, over batch limit, bad body.
	if code := postJSON(t, ts, "/v1/stale", map[string]any{"keys": []string{}}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d", code)
	}
	if code := postJSON(t, ts, "/v1/stale", map[string]any{"keys": []string{"junk"}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad key status = %d", code)
	}
	big := map[string]any{"keys": []string{"1.0.0.1-2.0.0.1", "1.0.0.1-2.0.0.2", "1.0.0.1-2.0.0.3", "1.0.0.1-2.0.0.4"}}
	if code := postJSON(t, ts, "/v1/stale", big, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status = %d", code)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/stale", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated body status = %d", resp.StatusCode)
	}
}

func TestKeysEndpoint(t *testing.T) {
	m, stale, _ := newStaleMonitor(t)
	ts := httptest.NewServer(New(m, Config{}).Handler())
	defer ts.Close()

	var out struct {
		Keys  []string `json:"keys"`
		Count int      `json:"count"`
	}
	getJSON(t, ts, "/v1/keys", &out)
	if out.Count != 2 || len(out.Keys) != 2 {
		t.Fatalf("keys = %+v", out)
	}
	if !sort.StringsAreSorted(out.Keys) {
		// Key order is (Src, Dst) numeric, which for these fixtures is
		// also lexicographic; the real guarantee is determinism.
		t.Fatalf("keys not sorted: %v", out.Keys)
	}
	getJSON(t, ts, "/v1/keys?stale=1", &out)
	if out.Count != 1 || out.Keys[0] != FormatKey(stale.Key()) {
		t.Fatalf("stale keys = %+v", out)
	}
}

func TestStatsEndpoint(t *testing.T) {
	m, _, _ := newStaleMonitor(t)
	ts := httptest.NewServer(New(m, Config{}).Handler())
	defer ts.Close()

	var st Stats
	if code := getJSON(t, ts, "/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if st.CorpusSize != 2 || st.StaleKeys != 1 || st.WindowSec != m.WindowSec() {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalSignals == 0 || st.Signals[rrr.TechBGPASPath.String()] == 0 {
		t.Fatalf("stats missing signals: %+v", st)
	}
	if st.WindowsClosed != m.WindowsClosed() {
		t.Fatalf("windowsClosed = %d, want %d", st.WindowsClosed, m.WindowsClosed())
	}
	if st.Feeds != nil {
		t.Fatalf("stats without Health should omit feeds, got %+v", st.Feeds)
	}
}

// TestStatsFeedHealth: a server wired with the pipeline's health registry
// reports per-feed supervisor state under /v1/stats, so an operator can see
// a degraded or finished feed from the query API alone.
func TestStatsFeedHealth(t *testing.T) {
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []rrr.ASN{5, 2, 3, 4}))
	if err := m.Track(trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")); err != nil {
		t.Fatal(err)
	}

	health := rrr.NewPipelineHealth()
	err := rrr.RunPipeline(context.Background(), m, rrr.PipelineConfig{
		Updates: bgp.NewSliceSource([]rrr.Update{
			announceUpd(t, 900+5, "5.0.0.9", 5, "4.0.0.0/8", []rrr.ASN{5, 2, 3, 4}),
		}),
		Traces: rrr.NewTraceSliceSource([]*rrr.Traceroute{
			trace(t, 900+10, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9"),
		}),
		Sink:   func(rrr.Signal) {},
		Health: health,
	})
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(New(m, Config{Health: health}).Handler())
	defer ts.Close()
	var st Stats
	if code := getJSON(t, ts, "/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(st.Feeds) != 2 {
		t.Fatalf("feeds = %+v, want bgp and traceroute entries", st.Feeds)
	}
	for _, f := range st.Feeds {
		if f.Status != rrr.FeedEOF {
			t.Fatalf("feed %s status = %q, want %q after a clean run", f.Feed, f.Status, rrr.FeedEOF)
		}
		if f.Retries != 0 || f.LastError != "" {
			t.Fatalf("feed %s reports faults after a clean run: %+v", f.Feed, f)
		}
	}
}

func TestRefreshEndpoints(t *testing.T) {
	m, stale, _ := newStaleMonitor(t)
	ts := httptest.NewServer(New(m, Config{}).Handler())
	defer ts.Close()

	var plan struct {
		Keys    []string `json:"keys"`
		Planned int      `json:"planned"`
	}
	if code := postJSON(t, ts, "/v1/refresh/plan", map[string]int{"budget": 1}, &plan); code != http.StatusOK {
		t.Fatalf("plan status = %d", code)
	}
	if plan.Planned != 1 || plan.Keys[0] != FormatKey(stale.Key()) {
		t.Fatalf("plan = %+v", plan)
	}
	if code := postJSON(t, ts, "/v1/refresh/plan", map[string]int{"budget": 0}, nil); code != http.StatusBadRequest {
		t.Fatalf("zero budget status = %d", code)
	}

	// Record a refresh that confirms the change.
	rec := traceJSON{
		Time: 46 * 900, Src: "1.0.0.1", Dst: "4.0.0.9",
		Hops: []hopJSON{{IP: "1.0.0.2"}, {IP: "2.0.0.1"}, {IP: "9.0.0.1"}, {IP: "4.0.0.3"}, {IP: "4.0.0.9"}},
	}
	var got struct {
		Key         string `json:"key"`
		ChangeClass string `json:"changeClass"`
	}
	if code := postJSON(t, ts, "/v1/refresh/record", rec, &got); code != http.StatusOK {
		t.Fatalf("record status = %d", code)
	}
	if got.ChangeClass != rrr.ASChange.String() {
		t.Fatalf("changeClass = %q", got.ChangeClass)
	}
	if m.Stale(stale.Key()) {
		t.Fatal("refresh did not clear staleness")
	}

	// Error paths: bad hop IP and an AS-loop measurement (rejected by the
	// monitor, not the decoder).
	bad := rec
	bad.Hops = []hopJSON{{IP: "nope"}}
	if code := postJSON(t, ts, "/v1/refresh/record", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("bad hop status = %d", code)
	}
	loop := traceJSON{
		Time: 47 * 900, Src: "1.0.0.1", Dst: "1.0.0.9",
		Hops: []hopJSON{{IP: "1.0.0.2"}, {IP: "2.0.0.1"}, {IP: "1.0.0.3"}},
	}
	if code := postJSON(t, ts, "/v1/refresh/record", loop, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("loop trace status = %d", code)
	}
}

func TestSnapshotEndpointAndRestore(t *testing.T) {
	m, _, _ := newStaleMonitor(t)

	// Without a configured path the endpoint refuses.
	noPath := httptest.NewServer(New(m, Config{}).Handler())
	if code := postJSON(t, noPath, "/v1/snapshot", struct{}{}, nil); code != http.StatusConflict {
		t.Fatalf("no-path snapshot status = %d", code)
	}
	noPath.Close()

	path := t.TempDir() + "/rrr.snap"
	ts := httptest.NewServer(New(m, Config{SnapshotPath: path}).Handler())
	defer ts.Close()
	var sn struct {
		Entries int `json:"entries"`
		Signals int `json:"signals"`
		Bytes   int `json:"bytes"`
	}
	if code := postJSON(t, ts, "/v1/snapshot", struct{}{}, &sn); code != http.StatusOK {
		t.Fatalf("snapshot status = %d", code)
	}
	if sn.Entries != 2 || sn.Signals == 0 || sn.Bytes == 0 {
		t.Fatalf("snapshot info = %+v", sn)
	}

	// Restore into a fresh monitor: /v1/stats must be byte-identical.
	m2 := newTestMonitor(t)
	if _, err := RestoreSnapshot(path, m2); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(New(m2, Config{}).Handler())
	defer ts2.Close()
	read := func(s *httptest.Server) string {
		resp, err := s.Client().Get(s.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	before, after := read(ts), read(ts2)
	if before != after {
		t.Fatalf("stats diverge after restore:\n before: %s\n after:  %s", before, after)
	}

	// Corrupt / wrong-version snapshots are refused.
	bad := t.TempDir() + "/bad.snap"
	if err := os.WriteFile(bad, []byte(`{"magic":"other","version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(bad); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if err := os.WriteFile(bad, []byte(`{"magic":"rrrd-snapshot","version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(bad); err == nil {
		t.Fatal("wrong version accepted")
	}
}

// TestServeDuringIngestion is the daemon's core promise: staleness queries
// answer correctly and race-free while a Pipeline concurrently feeds the
// same Monitor. Run with -race.
func TestServeDuringIngestion(t *testing.T) {
	m := newTestMonitor(t)
	m.ObserveBGP(announceUpd(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []rrr.ASN{5, 2, 3, 4}))
	tr := trace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	if err := m.Track(tr); err != nil {
		t.Fatal(err)
	}

	// Feed: quiet keepalives then the suffix change at window 45.
	var updates []rrr.Update
	for w := int64(1); w < 45; w++ {
		updates = append(updates,
			announceUpd(t, w*900+5, "5.0.0.9", 5, "4.0.0.0/8", []rrr.ASN{5, 2, 3, 4}))
	}
	updates = append(updates,
		announceUpd(t, 45*900+5, "5.0.0.9", 5, "4.0.0.0/8", []rrr.ASN{5, 2, 9, 4}),
		announceUpd(t, 46*900+5, "5.0.0.9", 5, "4.0.0.0/8", []rrr.ASN{5, 2, 9, 4}))
	var traces []*rrr.Traceroute
	for w := int64(0); w < 46; w += 4 {
		traces = append(traces, trace(t, w*900+100, "9.0.0.1", "4.0.0.8",
			"9.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.8"))
	}

	srv := New(m, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pipeDone := make(chan error, 1)
	go func() {
		pipeDone <- rrr.Pipeline(context.Background(), m,
			bgp.NewSliceSource(updates), rrr.NewTraceSliceSource(traces), srv.Publish)
	}()

	// Hammer the read endpoints from several clients until the feed ends.
	// (No t.Fatal in these goroutines; failures surface as t.Error.)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	key := FormatKey(tr.Key())
	get := func(path string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := `{"keys":["` + key + `"]}`
			for {
				select {
				case <-stop:
					return
				default:
				}
				get("/v1/stale/" + key)
				get("/v1/stats")
				get("/v1/keys?stale=1")
				resp, err := ts.Client().Post(ts.URL+"/v1/stale", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	if err := <-pipeDone; err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	var v Verdict
	getJSON(t, ts, "/v1/stale/"+key, &v)
	if !v.Stale {
		t.Fatal("pair not stale after concurrent ingestion")
	}
}

// TestSSESignals streams /v1/signals while signals are published and checks
// the events arrive in SSE framing.
func TestSSESignals(t *testing.T) {
	m, stale, _ := newStaleMonitor(t)
	srv := New(m, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/signals", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Publish once the subscriber is attached (Subscribe happens before the
	// handler writes headers, so the response being available implies the
	// subscriber map will fill momentarily).
	go func() {
		for srv.Hub().Subscribers() == 0 {
			time.Sleep(time.Millisecond)
		}
		srv.Publish(rrr.Signal{Technique: rrr.TechBGPASPath, Key: stale.Key(), WindowStart: 46 * 900})
	}()

	sc := bufio.NewScanner(resp.Body)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if event != "signal" {
		t.Fatalf("event = %q (scan err %v)", event, sc.Err())
	}
	var sig signalJSON
	if err := json.Unmarshal([]byte(data), &sig); err != nil {
		t.Fatalf("data %q: %v", data, err)
	}
	if sig.Key != FormatKey(stale.Key()) || sig.Technique != rrr.TechBGPASPath.String() {
		t.Fatalf("signal = %+v", sig)
	}
}

func TestServeBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("servebench smoke is slow")
	}
	// A tiny run proves the harness wiring end to end: requests flow while
	// the pipeline ingests, percentiles fill, shutdown doesn't deadlock.
	sc := experiments.QuickScale()
	sc.Days = 1
	res, err := RunServeBench(sc, 2, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 8 || res.BatchSize != 4 || res.CorpusSize == 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.P50 <= 0 || res.ReqPerSec <= 0 {
		t.Fatalf("latency stats empty: %+v", res)
	}
}
