package server

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// snapDirEntries returns the file names in dir, for asserting that failed
// snapshot attempts never leave temp litter next to the good snapshot.
func snapDirEntries(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestSnapshotCrashBetweenWriteAndRename simulates a crash at the rename
// step: the temp file is fully written and synced but never becomes the
// snapshot. The previous snapshot must still restore, and the failed
// attempt must not leave a .tmp file behind.
func TestSnapshotCrashBetweenWriteAndRename(t *testing.T) {
	m, stalePair, _ := newStaleMonitor(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "rrr.snap")

	// Generation 1: a good snapshot.
	if _, err := WriteSnapshot(path, m); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// The monitor moves on (more windows close), then the next snapshot
	// attempt dies at the rename boundary.
	m.Advance(50 * 900)
	crash := errors.New("simulated crash at rename")
	snapRename = func(oldpath, newpath string) (err error) { return crash }
	defer func() { snapRename = os.Rename }()
	if _, err := WriteSnapshot(path, m); !errors.Is(err, crash) {
		t.Fatalf("WriteSnapshot err = %v, want the injected rename failure", err)
	}

	// The good snapshot is untouched and there is no temp litter.
	afterBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(afterBytes, goodBytes) {
		t.Fatal("failed snapshot attempt modified the previous snapshot")
	}
	if names := snapDirEntries(t, dir); !reflect.DeepEqual(names, []string{"rrr.snap"}) {
		t.Fatalf("directory after failed snapshot = %v, want only rrr.snap", names)
	}

	// Restore from the surviving generation-1 snapshot succeeds and the
	// stale verdict it captured is intact.
	m2 := newTestMonitor(t)
	if _, err := RestoreSnapshot(path, m2); err != nil {
		t.Fatalf("restore from previous snapshot failed: %v", err)
	}
	if !m2.Stale(stalePair.Key()) {
		t.Fatal("restored monitor lost the stale verdict")
	}
}

// TestSnapshotCrashAtSync simulates a crash (or disk failure) at the fsync
// of the temp file — before the data is durable, so nothing may replace
// the previous snapshot and the half-written temp must be cleaned up.
func TestSnapshotCrashAtSync(t *testing.T) {
	m, _, _ := newStaleMonitor(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "rrr.snap")
	if _, err := WriteSnapshot(path, m); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	crash := errors.New("simulated crash at fsync")
	snapSync = func(*os.File) error { return crash }
	defer func() { snapSync = func(f *os.File) error { return f.Sync() } }()
	if _, err := WriteSnapshot(path, m); !errors.Is(err, crash) {
		t.Fatalf("WriteSnapshot err = %v, want the injected sync failure", err)
	}
	afterBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(afterBytes, goodBytes) {
		t.Fatal("failed snapshot attempt modified the previous snapshot")
	}
	if names := snapDirEntries(t, dir); !reflect.DeepEqual(names, []string{"rrr.snap"}) {
		t.Fatalf("directory after failed snapshot = %v, want only rrr.snap", names)
	}
}

// TestSnapshotOverwritesLeftoverTemp: a temp file left by a hard crash
// (power loss between write and cleanup) must not break the next snapshot
// — it is overwritten and the write completes normally.
func TestSnapshotOverwritesLeftoverTemp(t *testing.T) {
	m, stalePair, _ := newStaleMonitor(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "rrr.snap")
	if err := os.WriteFile(path+".tmp", []byte("half-written garbage from a previous crash"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(path, m); err != nil {
		t.Fatal(err)
	}
	if names := snapDirEntries(t, dir); !reflect.DeepEqual(names, []string{"rrr.snap"}) {
		t.Fatalf("directory after snapshot over leftover temp = %v, want only rrr.snap", names)
	}
	m2 := newTestMonitor(t)
	if _, err := RestoreSnapshot(path, m2); err != nil {
		t.Fatal(err)
	}
	if !m2.Stale(stalePair.Key()) {
		t.Fatal("restored monitor lost the stale verdict")
	}
}
