package bgp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"rrr/internal/trie"
)

// TABLE_DUMP_V2 (RFC 6396 §4.3) support: the format RouteViews and RIPE RIS
// use for periodic full-table RIB dumps, which the paper's pipeline loads to
// initialize per-VP table views before streaming updates (§4.1.1). A dump
// is a PEER_INDEX_TABLE record followed by one RIB_IPV4_UNICAST record per
// prefix, each holding one entry per peer with that route.

const (
	mrtTypeTableDumpV2 = 13

	tdv2PeerIndexTable = 1
	tdv2RIBIPv4Unicast = 2
)

// RIBDumpWriter produces a TABLE_DUMP_V2 archive from per-peer routes.
type RIBDumpWriter struct {
	w       *bufio.Writer
	peers   []VPKey
	peerIdx map[VPKey]uint16
	wroteIx bool
	seq     uint32
	// DumpTime stamps every record.
	DumpTime int64
}

// NewRIBDumpWriter prepares a writer for the given peer set (the peer index
// table is emitted before the first RIB record).
func NewRIBDumpWriter(w io.Writer, peers []VPKey) *RIBDumpWriter {
	idx := make(map[VPKey]uint16, len(peers))
	for i, p := range peers {
		idx[p] = uint16(i)
	}
	return &RIBDumpWriter{w: bufio.NewWriter(w), peers: peers, peerIdx: idx}
}

func (dw *RIBDumpWriter) record(subtype uint16, body []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(dw.DumpTime))
	binary.BigEndian.PutUint16(hdr[4:6], mrtTypeTableDumpV2)
	binary.BigEndian.PutUint16(hdr[6:8], subtype)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	if _, err := dw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := dw.w.Write(body)
	return err
}

func (dw *RIBDumpWriter) writeIndex() error {
	body := make([]byte, 0, 8+len(dw.peers)*11)
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], 0xc0a80001) // collector BGP ID
	body = append(body, tmp[:]...)
	body = append(body, 0, 0) // view name length 0
	var cnt [2]byte
	binary.BigEndian.PutUint16(cnt[:], uint16(len(dw.peers)))
	body = append(body, cnt[:]...)
	for _, p := range dw.peers {
		// Peer type: bit0=0 (IPv4 address), bit1=1 (4-byte AS).
		body = append(body, 0x02)
		binary.BigEndian.PutUint32(tmp[:], p.PeerIP) // BGP ID = peer IP
		body = append(body, tmp[:]...)
		binary.BigEndian.PutUint32(tmp[:], p.PeerIP)
		body = append(body, tmp[:]...)
		binary.BigEndian.PutUint32(tmp[:], uint32(p.PeerAS))
		body = append(body, tmp[:]...)
	}
	dw.wroteIx = true
	return dw.record(tdv2PeerIndexTable, body)
}

// RIBEntry is one peer's route to the record's prefix.
type RIBEntry struct {
	Peer        VPKey
	Originated  int64
	ASPath      Path
	Communities Communities
	MED         uint32
}

// WritePrefix emits one RIB_IPV4_UNICAST record with the given entries.
func (dw *RIBDumpWriter) WritePrefix(p trie.Prefix, entries []RIBEntry) error {
	if !dw.wroteIx {
		if err := dw.writeIndex(); err != nil {
			return err
		}
	}
	body := make([]byte, 0, 64)
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], dw.seq)
	dw.seq++
	body = append(body, tmp[:]...)
	body = append(body, encodeNLRI(p)...)
	var cnt [2]byte
	binary.BigEndian.PutUint16(cnt[:], uint16(len(entries)))
	body = append(body, cnt[:]...)
	for _, e := range entries {
		idx, ok := dw.peerIdx[e.Peer]
		if !ok {
			return fmt.Errorf("bgp: RIB entry for unknown peer %s", e.Peer)
		}
		var i2 [2]byte
		binary.BigEndian.PutUint16(i2[:], idx)
		body = append(body, i2[:]...)
		binary.BigEndian.PutUint32(tmp[:], uint32(e.Originated))
		body = append(body, tmp[:]...)
		attrs, err := encodeRIBAttrs(e)
		if err != nil {
			return err
		}
		binary.BigEndian.PutUint16(i2[:], uint16(len(attrs)))
		body = append(body, i2[:]...)
		body = append(body, attrs...)
	}
	return dw.record(tdv2RIBIPv4Unicast, body)
}

func encodeRIBAttrs(e RIBEntry) ([]byte, error) {
	var attrs []byte
	var err error
	if attrs, err = appendAttr(attrs, attrOrigin, []byte{0}); err != nil {
		return nil, err
	}
	// AS_SEQUENCE segments of at most 255 hops each (single-byte count),
	// matching encodeBGPUpdate.
	seg := make([]byte, 0, 2+4*len(e.ASPath)+2*(len(e.ASPath)/255))
	for rest := e.ASPath; len(rest) > 0; {
		n := len(rest)
		if n > 255 {
			n = 255
		}
		seg = append(seg, asPathSequenceSegment, byte(n))
		for _, as := range rest[:n] {
			var tmp [4]byte
			binary.BigEndian.PutUint32(tmp[:], uint32(as))
			seg = append(seg, tmp[:]...)
		}
		rest = rest[n:]
	}
	if attrs, err = appendAttr(attrs, attrASPath, seg); err != nil {
		return nil, err
	}
	nh := make([]byte, 4)
	binary.BigEndian.PutUint32(nh, e.Peer.PeerIP)
	if attrs, err = appendAttr(attrs, attrNextHop, nh); err != nil {
		return nil, err
	}
	if e.MED != 0 {
		med := make([]byte, 4)
		binary.BigEndian.PutUint32(med, e.MED)
		if attrs, err = appendAttr(attrs, attrMED, med); err != nil {
			return nil, err
		}
	}
	if len(e.Communities) > 0 {
		cv := make([]byte, 4*len(e.Communities))
		for i, c := range e.Communities {
			binary.BigEndian.PutUint32(cv[4*i:], uint32(c))
		}
		if attrs, err = appendAttr(attrs, attrCommunities, cv); err != nil {
			return nil, err
		}
	}
	return attrs, nil
}

// Flush flushes the underlying buffer.
func (dw *RIBDumpWriter) Flush() error { return dw.w.Flush() }

// WriteRIBDump serializes an entire RIB as a TABLE_DUMP_V2 archive.
func WriteRIBDump(w io.Writer, rib *RIB, dumpTime int64) error {
	peers := rib.VPs()
	dw := NewRIBDumpWriter(w, peers)
	dw.DumpTime = dumpTime
	// Gather prefixes across peers.
	byPrefix := make(map[trie.Prefix][]RIBEntry)
	var order []trie.Prefix
	for _, vp := range peers {
		for _, p := range rib.Prefixes(vp) {
			rt, _ := rib.Route(vp, p)
			if rt == nil {
				continue
			}
			if _, seen := byPrefix[p]; !seen {
				order = append(order, p)
			}
			byPrefix[p] = append(byPrefix[p], RIBEntry{
				Peer: vp, Originated: rt.Updated,
				ASPath: rt.ASPath, Communities: rt.Communities, MED: rt.MED,
			})
		}
	}
	for _, p := range order {
		if err := dw.WritePrefix(p, byPrefix[p]); err != nil {
			return err
		}
	}
	return dw.Flush()
}

// RIBDumpReader parses TABLE_DUMP_V2 archives into announce Updates (one
// per peer per prefix), the form the engine's priming path consumes.
type RIBDumpReader struct {
	r     *bufio.Reader
	peers []VPKey
	buf   []Update
}

// NewRIBDumpReader wraps r.
func NewRIBDumpReader(r io.Reader) *RIBDumpReader {
	return &RIBDumpReader{r: bufio.NewReaderSize(r, 64*1024)}
}

// Read returns the next update synthesized from the dump, io.EOF at end.
func (dr *RIBDumpReader) Read() (Update, error) {
	for len(dr.buf) == 0 {
		if err := dr.readRecord(); err != nil {
			return Update{}, err
		}
	}
	u := dr.buf[0]
	dr.buf = dr.buf[1:]
	return u, nil
}

func (dr *RIBDumpReader) readRecord() error {
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(dr.r, hdr[:1]); err != nil {
		return err // io.EOF at clean end
	}
	if _, err := io.ReadFull(dr.r, hdr[1:]); err != nil {
		return ErrMRTTruncated
	}
	ts := int64(binary.BigEndian.Uint32(hdr[0:4]))
	typ := binary.BigEndian.Uint16(hdr[4:6])
	sub := binary.BigEndian.Uint16(hdr[6:8])
	length := binary.BigEndian.Uint32(hdr[8:12])
	if length > 1<<24 {
		return fmt.Errorf("bgp: implausible TABLE_DUMP_V2 record length %d", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(dr.r, body); err != nil {
		return ErrMRTTruncated
	}
	if typ != mrtTypeTableDumpV2 {
		return nil // other record kinds are not RIB data; skip
	}
	switch sub {
	case tdv2PeerIndexTable:
		return dr.parsePeerIndex(body)
	case tdv2RIBIPv4Unicast:
		return dr.parseRIBRecord(body, ts)
	default:
		return nil // AFI/SAFI we do not model
	}
}

func (dr *RIBDumpReader) parsePeerIndex(b []byte) error {
	if len(b) < 8 {
		return ErrMRTTruncated
	}
	nameLen := int(binary.BigEndian.Uint16(b[4:6]))
	off := 6 + nameLen
	if off+2 > len(b) {
		return ErrMRTTruncated
	}
	count := int(binary.BigEndian.Uint16(b[off : off+2]))
	off += 2
	dr.peers = dr.peers[:0]
	for i := 0; i < count; i++ {
		if off+1 > len(b) {
			return ErrMRTTruncated
		}
		ptype := b[off]
		off++
		off += 4 // BGP ID
		var ip uint32
		if ptype&0x01 != 0 { // IPv6 peer address
			if off+16 > len(b) {
				return ErrMRTTruncated
			}
			off += 16
		} else {
			if off+4 > len(b) {
				return ErrMRTTruncated
			}
			ip = binary.BigEndian.Uint32(b[off : off+4])
			off += 4
		}
		var as ASN
		if ptype&0x02 != 0 { // 4-byte AS
			if off+4 > len(b) {
				return ErrMRTTruncated
			}
			as = ASN(binary.BigEndian.Uint32(b[off : off+4]))
			off += 4
		} else {
			if off+2 > len(b) {
				return ErrMRTTruncated
			}
			as = ASN(binary.BigEndian.Uint16(b[off : off+2]))
			off += 2
		}
		dr.peers = append(dr.peers, VPKey{PeerIP: ip, PeerAS: as})
	}
	return nil
}

func (dr *RIBDumpReader) parseRIBRecord(b []byte, ts int64) error {
	if dr.peers == nil {
		return fmt.Errorf("bgp: RIB record before PEER_INDEX_TABLE")
	}
	if len(b) < 5 {
		return ErrMRTTruncated
	}
	// sequence(4) then NLRI-encoded prefix.
	plen := int(b[4])
	if plen > 32 {
		return fmt.Errorf("bgp: bad RIB prefix length %d", plen)
	}
	nbytes := (plen + 7) / 8
	if 5+nbytes+2 > len(b) {
		return ErrMRTTruncated
	}
	var addr uint32
	for i := 0; i < nbytes; i++ {
		addr |= uint32(b[5+i]) << (24 - 8*i)
	}
	prefix := trie.MakePrefix(addr, uint8(plen))
	off := 5 + nbytes
	count := int(binary.BigEndian.Uint16(b[off : off+2]))
	off += 2
	for i := 0; i < count; i++ {
		if off+8 > len(b) {
			return ErrMRTTruncated
		}
		peerIdx := int(binary.BigEndian.Uint16(b[off : off+2]))
		orig := int64(binary.BigEndian.Uint32(b[off+2 : off+6]))
		alen := int(binary.BigEndian.Uint16(b[off+6 : off+8]))
		off += 8
		if off+alen > len(b) {
			return ErrMRTTruncated
		}
		attrs := b[off : off+alen]
		off += alen
		if peerIdx >= len(dr.peers) {
			return fmt.Errorf("bgp: RIB entry references peer %d of %d", peerIdx, len(dr.peers))
		}
		peer := dr.peers[peerIdx]
		if orig == 0 {
			orig = ts
		}
		// Reuse the UPDATE attribute parser by synthesizing an update body
		// with no withdrawals and this prefix as NLRI.
		synth := make([]byte, 0, 4+len(attrs)+1+nbytes)
		synth = append(synth, 0, 0) // withdrawn length
		var a2 [2]byte
		binary.BigEndian.PutUint16(a2[:], uint16(len(attrs)))
		synth = append(synth, a2[:]...)
		synth = append(synth, attrs...)
		synth = append(synth, encodeNLRI(prefix)...)
		ups, err := parseBGPUpdate(synth, true, orig, peer.PeerIP, peer.PeerAS)
		if err != nil {
			return err
		}
		dr.buf = append(dr.buf, ups...)
	}
	return nil
}
