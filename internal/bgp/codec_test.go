package bgp

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"rrr/internal/trie"
)

func randomUpdate(rng *rand.Rand) Update {
	u := Update{
		Time:   rng.Int63n(1 << 40),
		PeerIP: rng.Uint32(),
		PeerAS: ASN(rng.Uint32()),
		Prefix: trie.MakePrefix(rng.Uint32(), uint8(rng.Intn(25))),
		MED:    rng.Uint32(),
	}
	if rng.Intn(10) == 0 {
		u.Type = Withdraw
		return u
	}
	n := 1 + rng.Intn(6)
	u.ASPath = make(Path, n)
	for i := range u.ASPath {
		u.ASPath[i] = ASN(rng.Intn(65000) + 1)
	}
	m := rng.Intn(5)
	for i := 0; i < m; i++ {
		u.Communities = append(u.Communities,
			MakeCommunity(ASN(rng.Intn(65000)+1), uint16(rng.Intn(65536))))
	}
	return u
}

// canonical removes fields a codec legitimately does not carry for a given
// update type so round-trip comparison is well defined.
func canonical(u Update) Update {
	if u.Type == Withdraw {
		u.ASPath, u.Communities, u.MED = nil, nil, 0
	}
	if len(u.ASPath) == 0 {
		u.ASPath = nil
	}
	if len(u.Communities) == 0 {
		u.Communities = nil
	}
	return u
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var in []Update
	for i := 0; i < 200; i++ {
		in = append(in, randomUpdate(rng))
	}
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, u := range in {
		if err := w.Write(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewBinaryReader(&buf)
	for i, want := range in {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(canonical(got), canonical(want)) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBinaryTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	u := Update{Time: 1, PeerIP: 2, PeerAS: 3, Type: Announce,
		Prefix: trie.MakePrefix(0x0a000000, 8), ASPath: Path{3, 4}}
	if err := w.Write(u); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		r := NewBinaryReader(bytes.NewReader(full[:cut]))
		if _, err := r.Read(); err == nil {
			t.Fatalf("truncated at %d bytes: want error", cut)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	r := NewBinaryReader(bytes.NewReader([]byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0}))
	if _, err := r.Read(); err != ErrBadMagic {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var in []Update
	for i := 0; i < 100; i++ {
		u := randomUpdate(rng)
		// The text format prints peer AS and communities in 16-bit AS
		// space; clamp for round-trip fidelity.
		u.PeerAS = ASN(uint32(u.PeerAS) % 65000)
		in = append(in, u)
	}
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	for _, u := range in {
		if err := w.Write(u); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r := NewTextReader(&buf)
	for i, want := range in {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(canonical(got), canonical(want)) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestTextParsePaperExample(t *testing.T) {
	// The record from the paper's Fig 3, adapted to our TIME field.
	const rec = `TIME: 1600855212
TYPE: ANNOUNCE
FROM: 195.66.224.175 AS13030
ASPATH: 13030 1299 2914 18747
COMMUNITY: 13030:2 13030:1299 13030:7214 13030:51701
MED: 0
ANNOUNCE: 200.61.128.0/19

`
	r := NewTextReader(strings.NewReader(rec))
	u, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if u.PeerAS != 13030 || trie.FormatIP(u.PeerIP) != "195.66.224.175" {
		t.Errorf("peer = %s", VPKey{u.PeerIP, u.PeerAS})
	}
	if !u.ASPath.Equal(Path{13030, 1299, 2914, 18747}) {
		t.Errorf("path = %v", u.ASPath)
	}
	if len(u.Communities) != 4 || u.Communities[3] != MakeCommunity(13030, 51701) {
		t.Errorf("communities = %v", u.Communities)
	}
	if u.Prefix.String() != "200.61.128.0/19" {
		t.Errorf("prefix = %v", u.Prefix)
	}
}

func TestTextErrors(t *testing.T) {
	cases := []string{
		"TIME: x\nTYPE: ANNOUNCE\nFROM: 1.2.3.4 AS5\nANNOUNCE: 10.0.0.0/8\n\n",
		"TIME: 1\nTYPE: BOGUS\nFROM: 1.2.3.4 AS5\nANNOUNCE: 10.0.0.0/8\n\n",
		"TIME: 1\nTYPE: ANNOUNCE\nFROM: 1.2.3.4\nANNOUNCE: 10.0.0.0/8\n\n",
		"TIME: 1\nTYPE: ANNOUNCE\nFROM: 1.2.3.4 AS5\nANNOUNCE: 10.0.0.0/99\n\n",
		"TIME: 1\nTYPE: ANNOUNCE\nFROM: 1.2.3.4 AS5\nBOGUSKEY: 1\n\n",
		"noline\n\n",
		"TIME: 1\n\n", // incomplete record
	}
	for i, c := range cases {
		r := NewTextReader(strings.NewReader(c))
		if _, err := r.Read(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestTextWithdraw(t *testing.T) {
	u := Update{Time: 5, PeerIP: 0x01010101, PeerAS: 42, Type: Withdraw,
		Prefix: trie.MakePrefix(0x0a000000, 8)}
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	if err := w.Write(u); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if !strings.Contains(buf.String(), "WITHDRAW: 10.0.0.0/8") {
		t.Fatalf("output = %q", buf.String())
	}
	r := NewTextReader(&buf)
	got, err := r.Read()
	if err != nil || got.Type != Withdraw || got.Prefix != u.Prefix {
		t.Fatalf("got %+v, %v", got, err)
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	us := make([]Update, 256)
	for i := range us {
		us[i] = randomUpdate(rng)
	}
	w := NewBinaryWriter(io.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Write(us[i&255])
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for i := 0; i < 4096; i++ {
		w.Write(randomUpdate(rng))
	}
	w.Flush()
	data := buf.Bytes()
	b.ResetTimer()
	var r *BinaryReader
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			r = NewBinaryReader(bytes.NewReader(data))
		}
		if _, err := r.Read(); err != nil {
			b.Fatal(err)
		}
	}
}
