package bgp

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// The archive readers face untrusted bytes; they must fail with errors,
// never panic or spin, on arbitrary input.

func feedGarbage(t *testing.T, name string, read func([]byte) error, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(512)
		buf := make([]byte, n)
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s panicked on garbage (trial %d): %v", name, trial, r)
				}
			}()
			_ = read(buf)
		}()
	}
}

func drainAll(read func() (Update, error)) error {
	for i := 0; i < 10000; i++ {
		if _, err := read(); err != nil {
			return err
		}
	}
	return nil
}

func TestMRTReaderGarbage(t *testing.T) {
	feedGarbage(t, "MRTReader", func(b []byte) error {
		r := NewMRTReader(bytes.NewReader(b))
		for i := 0; i < 1000; i++ {
			if _, err := r.Read(); err != nil {
				return err
			}
		}
		return nil
	}, 1)
}

func TestRIBDumpReaderGarbage(t *testing.T) {
	feedGarbage(t, "RIBDumpReader", func(b []byte) error {
		return drainAll(NewRIBDumpReader(bytes.NewReader(b)).Read)
	}, 2)
}

func TestBinaryReaderGarbage(t *testing.T) {
	feedGarbage(t, "BinaryReader", func(b []byte) error {
		return drainAll(NewBinaryReader(bytes.NewReader(b)).Read)
	}, 3)
}

func TestTextReaderGarbage(t *testing.T) {
	feedGarbage(t, "TextReader", func(b []byte) error {
		return drainAll(NewTextReader(bytes.NewReader(b)).Read)
	}, 4)
}

// Valid records with corrupted tails: the reader recovers records up to the
// corruption and then errors cleanly.
func TestMRTReaderCorruptTail(t *testing.T) {
	var buf bytes.Buffer
	w := NewMRTWriter(&buf)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5; i++ {
		u := randomUpdate(rng)
		if u.Type == Withdraw {
			u.Type = Announce
			u.ASPath = Path{1}
		}
		if err := w.Write(u); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	data := buf.Bytes()
	garbage := make([]byte, 64)
	rng.Read(garbage)
	data = append(data, garbage...)

	r := NewMRTReader(bytes.NewReader(data))
	got := 0
	var err error
	for {
		var batch []Update
		batch, err = r.Read()
		if err != nil {
			break
		}
		got += len(batch)
	}
	if got < 5 {
		t.Fatalf("recovered only %d records before corruption", got)
	}
	if err == io.EOF {
		// Acceptable: the garbage happened to be skippable as a record of
		// another type; either EOF or a parse error is fine, a panic is not.
		return
	}
}
