package bgp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"rrr/internal/trie"
)

// The binary codec is an MRT-inspired framed record format for update
// streams. Each record is:
//
//	magic   uint16  = 0xB64D
//	version uint8   = 1
//	type    uint8   (0 announce, 1 withdraw)
//	time    int64   (big endian)
//	peerIP  uint32
//	peerAS  uint32
//	prefix  uint32 + uint8 (addr, len)
//	med     uint32
//	npath   uint16, then npath × uint32 ASNs
//	ncomm   uint16, then ncomm × uint32 communities
//
// All integers are big endian, matching MRT/BGP wire conventions.

const (
	binaryMagic   = 0xB64D
	binaryVersion = 1
)

// ErrBadMagic indicates a corrupt or misaligned binary stream.
var ErrBadMagic = errors.New("bgp: bad magic in binary stream")

// BinaryWriter serializes updates in the framed binary format.
type BinaryWriter struct {
	w *bufio.Writer
}

// NewBinaryWriter wraps w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriter(w)}
}

// Write emits one record.
func (bw *BinaryWriter) Write(u Update) error {
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], binaryMagic)
	hdr[2] = binaryVersion
	hdr[3] = byte(u.Type)
	if _, err := bw.w.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(u.Time))
	bw.w.Write(buf[:])
	binary.BigEndian.PutUint32(buf[:4], u.PeerIP)
	bw.w.Write(buf[:4])
	binary.BigEndian.PutUint32(buf[:4], uint32(u.PeerAS))
	bw.w.Write(buf[:4])
	binary.BigEndian.PutUint32(buf[:4], u.Prefix.Addr)
	bw.w.Write(buf[:4])
	bw.w.WriteByte(u.Prefix.Len)
	binary.BigEndian.PutUint32(buf[:4], u.MED)
	bw.w.Write(buf[:4])

	if len(u.ASPath) > 0xffff || len(u.Communities) > 0xffff {
		return fmt.Errorf("bgp: attribute list too long (%d path, %d comm)",
			len(u.ASPath), len(u.Communities))
	}
	binary.BigEndian.PutUint16(buf[:2], uint16(len(u.ASPath)))
	bw.w.Write(buf[:2])
	for _, a := range u.ASPath {
		binary.BigEndian.PutUint32(buf[:4], uint32(a))
		bw.w.Write(buf[:4])
	}
	binary.BigEndian.PutUint16(buf[:2], uint16(len(u.Communities)))
	bw.w.Write(buf[:2])
	for _, c := range u.Communities {
		binary.BigEndian.PutUint32(buf[:4], uint32(c))
		if _, err := bw.w.Write(buf[:4]); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes the underlying buffer.
func (bw *BinaryWriter) Flush() error { return bw.w.Flush() }

// BinaryReader parses updates from the framed binary format.
type BinaryReader struct {
	r *bufio.Reader
	// scratch holds the variable-length portion of the record being
	// decoded (AS path and community words), reused across Read calls so
	// the steady-state read path performs three io.ReadFull calls and
	// allocates only the Path/Communities slices that escape to the
	// caller.
	scratch []byte
}

// NewBinaryReader wraps r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReader(r)}
}

// Read parses the next record. It returns io.EOF at a clean end of stream
// and io.ErrUnexpectedEOF on truncation.
func (br *BinaryReader) Read() (Update, error) {
	var u Update
	var hdr [4]byte
	if _, err := io.ReadFull(br.r, hdr[:1]); err != nil {
		if err == io.EOF {
			return u, io.EOF
		}
		return u, err
	}
	if _, err := io.ReadFull(br.r, hdr[1:]); err != nil {
		return u, unexpectedEOF(err)
	}
	if binary.BigEndian.Uint16(hdr[0:2]) != binaryMagic {
		return u, ErrBadMagic
	}
	if hdr[2] != binaryVersion {
		return u, fmt.Errorf("bgp: unsupported binary version %d", hdr[2])
	}
	if hdr[3] > 1 {
		return u, fmt.Errorf("bgp: bad update type %d", hdr[3])
	}
	u.Type = UpdateType(hdr[3])

	// Fixed-size body: time(8) peerIP(4) peerAS(4) prefix(4+1) med(4)
	// npath(2), read in one call.
	var fixed [27]byte
	if _, err := io.ReadFull(br.r, fixed[:]); err != nil {
		return u, unexpectedEOF(err)
	}
	u.Time = int64(binary.BigEndian.Uint64(fixed[0:8]))
	u.PeerIP = binary.BigEndian.Uint32(fixed[8:12])
	u.PeerAS = ASN(binary.BigEndian.Uint32(fixed[12:16]))
	u.Prefix = trie.MakePrefix(binary.BigEndian.Uint32(fixed[16:20]), fixed[20])
	if u.Prefix.Len > 32 {
		return u, fmt.Errorf("bgp: bad prefix length %d", fixed[20])
	}
	u.MED = binary.BigEndian.Uint32(fixed[21:25])
	npath := binary.BigEndian.Uint16(fixed[25:27])

	// Variable tail: npath ASN words plus the community count, then the
	// community words — two more reads through a reusable scratch buffer.
	n := int(npath)*4 + 2
	if cap(br.scratch) < n {
		br.scratch = make([]byte, n)
	}
	b := br.scratch[:n]
	if _, err := io.ReadFull(br.r, b); err != nil {
		return u, unexpectedEOF(err)
	}
	if npath > 0 {
		u.ASPath = make(Path, npath)
		for i := range u.ASPath {
			u.ASPath[i] = ASN(binary.BigEndian.Uint32(b[i*4:]))
		}
	}
	ncomm := binary.BigEndian.Uint16(b[n-2:])
	if ncomm > 0 {
		n = int(ncomm) * 4
		if cap(br.scratch) < n {
			br.scratch = make([]byte, n)
		}
		b = br.scratch[:n]
		if _, err := io.ReadFull(br.r, b); err != nil {
			return u, unexpectedEOF(err)
		}
		u.Communities = make(Communities, ncomm)
		for i := range u.Communities {
			u.Communities[i] = Community(binary.BigEndian.Uint32(b[i*4:]))
		}
	}
	return u, nil
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
