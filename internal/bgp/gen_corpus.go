//go:build ignore

// Generates minimized seed-corpus entries under internal/bgp/testdata/fuzz
// for the edge cases the fuzz targets' invariants guard: multi-segment AS
// paths longer than 255 hops (the writer's old single-byte segment-count
// overflow), mid-record truncation, and the string parsers' numeric
// overflow boundaries. Run from internal/bgp with: go run gen_corpus.go
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

func writeSeed(dir, name string, lines ...string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	content := "go test fuzz v1\n"
	for _, l := range lines {
		content += l + "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		panic(err)
	}
}

func bytesLine(b []byte) string { return "[]byte(" + strconv.Quote(string(b)) + ")" }
func stringLine(s string) string { return "string(" + strconv.Quote(s) + ")" }

// mrtRecord frames one BGP4MP_MESSAGE_AS4 record around a raw BGP message.
func mrtRecord(ts uint32, msg []byte) []byte {
	body := make([]byte, 0, 20+len(msg))
	var t4 [4]byte
	binary.BigEndian.PutUint32(t4[:], 65000) // peer AS
	body = append(body, t4[:]...)
	body = append(body, 0, 0, 0, 0) // local AS
	body = append(body, 0, 0)      // ifindex
	body = append(body, 0, 1)      // AFI IPv4
	body = append(body, 1, 2, 3, 4) // peer IP
	body = append(body, 0, 0, 0, 0) // local IP
	body = append(body, msg...)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], ts)
	binary.BigEndian.PutUint16(hdr[4:6], 16) // BGP4MP
	binary.BigEndian.PutUint16(hdr[6:8], 4)  // MESSAGE_AS4
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	return append(hdr[:], body...)
}

// bgpUpdateMsg builds a raw BGP UPDATE with the given attrs and one /8 NLRI.
func bgpUpdateMsg(attrs []byte) []byte {
	body := []byte{0, 0} // no withdrawn
	var a2 [2]byte
	binary.BigEndian.PutUint16(a2[:], uint16(len(attrs)))
	body = append(body, a2[:]...)
	body = append(body, attrs...)
	body = append(body, 8, 10) // NLRI 10.0.0.0/8
	msg := make([]byte, 19, 19+len(body))
	for i := 0; i < 16; i++ {
		msg[i] = 0xff
	}
	msg[18] = 2 // UPDATE
	msg = append(msg, body...)
	binary.BigEndian.PutUint16(msg[16:18], uint16(len(msg)))
	return msg
}

func main() {
	root := "testdata/fuzz"

	// FuzzMRTReader: AS_PATH of 300 hops split over two AS_SEQUENCE
	// segments. Parses into one 300-hop Path; re-encoding used to wrap
	// the single-byte segment count (300 & 0xff = 44) and corrupt the
	// stream. The round-trip invariant in FuzzMRTReader regresses it.
	const hops = 300
	seg := []byte{}
	seg = append(seg, 2, 255) // AS_SEQUENCE, 255 hops
	for i := 0; i < 255; i++ {
		var a [4]byte
		binary.BigEndian.PutUint32(a[:], uint32(100+i))
		seg = append(seg, a[:]...)
	}
	seg = append(seg, 2, hops-255)
	for i := 255; i < hops; i++ {
		var a [4]byte
		binary.BigEndian.PutUint32(a[:], uint32(100+i))
		seg = append(seg, a[:]...)
	}
	var attrs []byte
	attrs = append(attrs, 0x40, 1, 1, 0) // ORIGIN IGP
	attrs = append(attrs, 0x50, 2)       // AS_PATH, extended length
	var l2 [2]byte
	binary.BigEndian.PutUint16(l2[:], uint16(len(seg)))
	attrs = append(attrs, l2[:]...)
	attrs = append(attrs, seg...)
	attrs = append(attrs, 0x40, 3, 4, 1, 2, 3, 4) // NEXT_HOP
	longPath := mrtRecord(100, bgpUpdateMsg(attrs))
	writeSeed(filepath.Join(root, "FuzzMRTReader"), "aspath-multiseg-300", bytesLine(longPath))
	writeSeed(filepath.Join(root, "FuzzMRTReader"), "midrecord-cut", bytesLine(longPath[:15]))

	// FuzzBinaryReader: a valid record cut mid-body, and a record whose
	// npath field promises more ASNs than the stream holds.
	var rec bytes.Buffer
	rec.Write([]byte{0xb6, 0x4d, 1, 0})                                  // magic, v1, announce
	rec.Write([]byte{0, 0, 0, 0, 0, 0, 0, 100})                          // time
	rec.Write([]byte{1, 2, 3, 4})                                        // peerIP
	rec.Write([]byte{0, 0, 0xfd, 0xe8})                                  // peerAS
	rec.Write([]byte{10, 0, 0, 0, 8})                                    // prefix 10.0.0.0/8
	rec.Write([]byte{0, 0, 0, 0})                                        // MED
	rec.Write([]byte{0xff, 0xff})                                        // npath = 65535, then nothing
	writeSeed(filepath.Join(root, "FuzzBinaryReader"), "npath-overpromise", bytesLine(rec.Bytes()))
	writeSeed(filepath.Join(root, "FuzzBinaryReader"), "midrecord-cut", bytesLine(rec.Bytes()[:9]))

	// FuzzTextReader: a withdraw that carries announce-only keys — the
	// non-canonical input whose first re-encoding must be a fixed point.
	writeSeed(filepath.Join(root, "FuzzTextReader"), "withdraw-with-aspath",
		stringLine("TIME: 7\nFROM: 1.2.3.4 AS65000\nASPATH: 65000 3356\nCOMMUNITY: 3356:100\nMED: 9\nWITHDRAW: 10.0.0.0/8\n"))

	// FuzzParsePath: 32-bit boundary and just past it, plus an empty path
	// (Origin/Compact/HasLoop must tolerate zero hops).
	writeSeed(filepath.Join(root, "FuzzParsePath"), "uint32-max", stringLine("4294967295"))
	writeSeed(filepath.Join(root, "FuzzParsePath"), "uint32-overflow", stringLine("4294967296"))
	writeSeed(filepath.Join(root, "FuzzParsePath"), "empty", stringLine("   "))

	// FuzzParseCommunity: 16-bit boundaries, empty halves, double colon.
	writeSeed(filepath.Join(root, "FuzzParseCommunity"), "uint16-max", stringLine("65535:65535"))
	writeSeed(filepath.Join(root, "FuzzParseCommunity"), "uint16-overflow", stringLine("65536:0"))
	writeSeed(filepath.Join(root, "FuzzParseCommunity"), "empty-halves", stringLine(":"))
	writeSeed(filepath.Join(root, "FuzzParseCommunity"), "double-colon", stringLine("1:2:3"))

	fmt.Println("seed corpora written under", root)
}
