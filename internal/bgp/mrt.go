package bgp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"rrr/internal/trie"
)

// MRT (RFC 6396) support: the subset needed to consume RouteViews/RIS
// update archives — BGP4MP / BGP4MP_ET records carrying BGP UPDATE messages
// with IPv4 NLRI — plus a writer so archives can be regenerated for tests
// and tooling. Each MRT record is:
//
//	timestamp   uint32
//	type        uint16
//	subtype     uint16
//	length      uint32
//	message     [length]byte
//
// BGP4MP_MESSAGE_AS4 wraps a raw BGP message (RFC 4271) with 4-byte peer
// ASes; the BGP UPDATE body carries withdrawn routes, path attributes
// (ORIGIN, AS_PATH, NEXT_HOP, MED, COMMUNITIES, ...), and NLRI.

// MRT record types and subtypes we understand.
const (
	mrtTypeBGP4MP   = 16
	mrtTypeBGP4MPET = 17

	mrtSubtypeMessage    = 1 // 2-byte peer ASes
	mrtSubtypeMessageAS4 = 4 // 4-byte peer ASes
)

// BGP message types.
const (
	bgpMsgUpdate = 2
)

// BGP path attribute type codes.
const (
	attrOrigin      = 1
	attrASPath      = 2
	attrNextHop     = 3
	attrMED         = 4
	attrCommunities = 8
)

// AS_PATH segment types.
const (
	asPathSetSegment      = 1
	asPathSequenceSegment = 2
)

// ErrMRTTruncated indicates a cut-off MRT stream.
var ErrMRTTruncated = errors.New("bgp: truncated MRT record")

// errMRTCut classifies a stream cut mid-record: it matches both
// ErrMRTTruncated (this codec's taxonomy) and io.ErrUnexpectedEOF (the
// standard "stream ended inside a frame" signal), while a cut exactly at
// a record boundary stays a clean io.EOF. Consumers retrying a resumable
// feed key off the io.ErrUnexpectedEOF distinction.
func errMRTCut() error {
	return fmt.Errorf("%w: %w", ErrMRTTruncated, io.ErrUnexpectedEOF)
}

// MRTReader parses BGP updates out of an MRT archive. Records of types
// other than BGP4MP(_ET) update messages are skipped silently, as are BGP
// OPEN/KEEPALIVE/NOTIFICATION messages, matching how update archives are
// consumed in practice.
type MRTReader struct {
	r *bufio.Reader
	// SkipIPv6 controls whether IPv6 BGP4MP records are dropped (the
	// paper's pipeline is IPv4-only); default true.
	SkipIPv6 bool
}

// NewMRTReader wraps r.
func NewMRTReader(r io.Reader) *MRTReader {
	return &MRTReader{r: bufio.NewReaderSize(r, 64*1024), SkipIPv6: true}
}

// Read returns the next batch of updates parsed from one MRT record. A
// single BGP UPDATE can carry several prefixes and withdrawals, each of
// which becomes one Update. Read skips non-update records and returns
// io.EOF at a clean end of stream.
func (mr *MRTReader) Read() ([]Update, error) {
	for {
		hdr := make([]byte, 12)
		if _, err := io.ReadFull(mr.r, hdr[:1]); err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, err
		}
		if _, err := io.ReadFull(mr.r, hdr[1:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, errMRTCut()
			}
			return nil, err
		}
		ts := binary.BigEndian.Uint32(hdr[0:4])
		typ := binary.BigEndian.Uint16(hdr[4:6])
		sub := binary.BigEndian.Uint16(hdr[6:8])
		length := binary.BigEndian.Uint32(hdr[8:12])
		if length > 1<<24 {
			return nil, fmt.Errorf("bgp: implausible MRT record length %d", length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(mr.r, body); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, errMRTCut()
			}
			return nil, err
		}
		tsec := int64(ts)
		if typ == mrtTypeBGP4MPET {
			// Extended timestamp: 4 extra microsecond bytes precede the
			// message.
			if len(body) < 4 {
				return nil, ErrMRTTruncated
			}
			body = body[4:]
		}
		if typ != mrtTypeBGP4MP && typ != mrtTypeBGP4MPET {
			continue
		}
		if sub != mrtSubtypeMessage && sub != mrtSubtypeMessageAS4 {
			continue
		}
		ups, err := mr.parseBGP4MP(body, sub == mrtSubtypeMessageAS4, tsec)
		if err != nil {
			return nil, err
		}
		if ups == nil {
			continue // IPv6 or non-update message
		}
		return ups, nil
	}
}

// parseBGP4MP decodes a BGP4MP_MESSAGE(_AS4) body.
func (mr *MRTReader) parseBGP4MP(b []byte, as4 bool, ts int64) ([]Update, error) {
	asLen := 2
	if as4 {
		asLen = 4
	}
	// peer AS, local AS, ifindex, AFI
	need := 2*asLen + 2 + 2
	if len(b) < need {
		return nil, ErrMRTTruncated
	}
	var peerAS ASN
	if as4 {
		peerAS = ASN(binary.BigEndian.Uint32(b[0:4]))
	} else {
		peerAS = ASN(binary.BigEndian.Uint16(b[0:2]))
	}
	afi := binary.BigEndian.Uint16(b[need-2 : need])
	b = b[need:]
	var peerIP uint32
	switch afi {
	case 1: // IPv4: peer IP + local IP, 4 bytes each
		if len(b) < 8 {
			return nil, ErrMRTTruncated
		}
		peerIP = binary.BigEndian.Uint32(b[0:4])
		b = b[8:]
	case 2: // IPv6: 16 bytes each
		if mr.SkipIPv6 {
			return nil, nil
		}
		if len(b) < 32 {
			return nil, ErrMRTTruncated
		}
		b = b[32:]
	default:
		return nil, fmt.Errorf("bgp: unknown BGP4MP AFI %d", afi)
	}

	// Raw BGP message: 16-byte marker, 2-byte length, 1-byte type.
	if len(b) < 19 {
		return nil, ErrMRTTruncated
	}
	msgLen := int(binary.BigEndian.Uint16(b[16:18]))
	msgType := b[18]
	if msgLen < 19 || msgLen > len(b) {
		return nil, ErrMRTTruncated
	}
	if msgType != bgpMsgUpdate {
		return nil, nil
	}
	return parseBGPUpdate(b[19:msgLen], as4, ts, peerIP, peerAS)
}

// parseBGPUpdate decodes the body of a BGP UPDATE message (after the
// 19-byte header) into Updates.
func parseBGPUpdate(b []byte, as4 bool, ts int64, peerIP uint32, peerAS ASN) ([]Update, error) {
	if len(b) < 4 {
		return nil, ErrMRTTruncated
	}
	wlen := int(binary.BigEndian.Uint16(b[0:2]))
	if 2+wlen+2 > len(b) {
		return nil, ErrMRTTruncated
	}
	withdrawn, err := parseNLRI(b[2 : 2+wlen])
	if err != nil {
		return nil, err
	}
	alen := int(binary.BigEndian.Uint16(b[2+wlen : 4+wlen]))
	if 4+wlen+alen > len(b) {
		return nil, ErrMRTTruncated
	}
	attrs := b[4+wlen : 4+wlen+alen]
	nlri, err := parseNLRI(b[4+wlen+alen:])
	if err != nil {
		return nil, err
	}

	var (
		path  Path
		comms Communities
		med   uint32
	)
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return nil, ErrMRTTruncated
		}
		flags := attrs[0]
		code := attrs[1]
		var alen int
		var hdr int
		if flags&0x10 != 0 { // extended length
			if len(attrs) < 4 {
				return nil, ErrMRTTruncated
			}
			alen = int(binary.BigEndian.Uint16(attrs[2:4]))
			hdr = 4
		} else {
			alen = int(attrs[2])
			hdr = 3
		}
		if hdr+alen > len(attrs) {
			return nil, ErrMRTTruncated
		}
		val := attrs[hdr : hdr+alen]
		switch code {
		case attrASPath:
			p, err := parseASPath(val, as4)
			if err != nil {
				return nil, err
			}
			path = p
		case attrMED:
			if len(val) == 4 {
				med = binary.BigEndian.Uint32(val)
			}
		case attrCommunities:
			if len(val)%4 != 0 {
				return nil, fmt.Errorf("bgp: bad COMMUNITIES length %d", len(val))
			}
			for i := 0; i+4 <= len(val); i += 4 {
				comms = append(comms, Community(binary.BigEndian.Uint32(val[i:i+4])))
			}
		}
		attrs = attrs[hdr+alen:]
	}

	var out []Update
	for _, p := range withdrawn {
		out = append(out, Update{
			Time: ts, PeerIP: peerIP, PeerAS: peerAS, Type: Withdraw, Prefix: p,
		})
	}
	for _, p := range nlri {
		out = append(out, Update{
			Time: ts, PeerIP: peerIP, PeerAS: peerAS, Type: Announce,
			Prefix: p, ASPath: path.Clone(), Communities: comms.Clone(), MED: med,
		})
	}
	return out, nil
}

// parseNLRI decodes the packed (length, prefix-bytes) NLRI encoding.
func parseNLRI(b []byte) ([]trie.Prefix, error) {
	var out []trie.Prefix
	for len(b) > 0 {
		plen := int(b[0])
		if plen > 32 {
			return nil, fmt.Errorf("bgp: bad NLRI prefix length %d", plen)
		}
		nbytes := (plen + 7) / 8
		if 1+nbytes > len(b) {
			return nil, ErrMRTTruncated
		}
		var addr uint32
		for i := 0; i < nbytes; i++ {
			addr |= uint32(b[1+i]) << (24 - 8*i)
		}
		out = append(out, trie.MakePrefix(addr, uint8(plen)))
		b = b[1+nbytes:]
	}
	return out, nil
}

// parseASPath flattens AS_SEQUENCE segments; AS_SET members are appended in
// order (the paper's pipeline treats sets as opaque path members).
func parseASPath(b []byte, as4 bool) (Path, error) {
	width := 2
	if as4 {
		width = 4
	}
	var out Path
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, ErrMRTTruncated
		}
		segType := b[0]
		n := int(b[1])
		if segType != asPathSetSegment && segType != asPathSequenceSegment {
			return nil, fmt.Errorf("bgp: unknown AS_PATH segment type %d", segType)
		}
		if 2+n*width > len(b) {
			return nil, ErrMRTTruncated
		}
		for i := 0; i < n; i++ {
			off := 2 + i*width
			if as4 {
				out = append(out, ASN(binary.BigEndian.Uint32(b[off:off+4])))
			} else {
				out = append(out, ASN(binary.BigEndian.Uint16(b[off:off+2])))
			}
		}
		b = b[2+n*width:]
	}
	return out, nil
}

// MRTWriter produces BGP4MP_MESSAGE_AS4 MRT records, one BGP UPDATE per
// Update (withdrawals and announcements are not batched).
type MRTWriter struct {
	w *bufio.Writer
}

// NewMRTWriter wraps w.
func NewMRTWriter(w io.Writer) *MRTWriter {
	return &MRTWriter{w: bufio.NewWriter(w)}
}

// Write emits one update as an MRT record.
func (mw *MRTWriter) Write(u Update) error {
	msg, err := encodeBGPUpdate(u)
	if err != nil {
		return err
	}
	// BGP4MP_MESSAGE_AS4 body: peerAS(4) localAS(4) ifindex(2) afi(2)
	// peerIP(4) localIP(4) + message.
	body := make([]byte, 0, 20+len(msg))
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(u.PeerAS))
	body = append(body, tmp[:]...)
	binary.BigEndian.PutUint32(tmp[:], 0) // local AS
	body = append(body, tmp[:]...)
	body = append(body, 0, 0) // ifindex
	body = append(body, 0, 1) // AFI IPv4
	binary.BigEndian.PutUint32(tmp[:], u.PeerIP)
	body = append(body, tmp[:]...)
	binary.BigEndian.PutUint32(tmp[:], 0) // local IP
	body = append(body, tmp[:]...)
	body = append(body, msg...)

	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(u.Time))
	binary.BigEndian.PutUint16(hdr[4:6], mrtTypeBGP4MP)
	binary.BigEndian.PutUint16(hdr[6:8], mrtSubtypeMessageAS4)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	if _, err := mw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = mw.w.Write(body)
	return err
}

// Flush flushes the underlying buffer.
func (mw *MRTWriter) Flush() error { return mw.w.Flush() }

// encodeBGPUpdate builds a raw BGP UPDATE message for one Update. It
// errors instead of silently wrapping a length field: a segment count is
// one byte, an attribute length at most two, and the message length two —
// an AS path or community set too large for those would round-trip as a
// different (corrupt) update.
func encodeBGPUpdate(u Update) ([]byte, error) {
	var withdrawn, attrs, nlri []byte
	var err error
	if u.Type == Withdraw {
		withdrawn = encodeNLRI(u.Prefix)
	} else {
		nlri = encodeNLRI(u.Prefix)
		if attrs, err = appendAttr(attrs, attrOrigin, []byte{0}); err != nil { // IGP
			return nil, err
		}
		// AS_PATH: AS_SEQUENCE segments of at most 255 hops each (the
		// segment count is a single byte), 4-byte ASes.
		seg := make([]byte, 0, 2+4*len(u.ASPath)+2*(len(u.ASPath)/255))
		for rest := u.ASPath; len(rest) > 0; {
			n := len(rest)
			if n > 255 {
				n = 255
			}
			seg = append(seg, asPathSequenceSegment, byte(n))
			for _, as := range rest[:n] {
				var tmp [4]byte
				binary.BigEndian.PutUint32(tmp[:], uint32(as))
				seg = append(seg, tmp[:]...)
			}
			rest = rest[n:]
		}
		if attrs, err = appendAttr(attrs, attrASPath, seg); err != nil {
			return nil, err
		}
		nh := make([]byte, 4)
		binary.BigEndian.PutUint32(nh, u.PeerIP)
		if attrs, err = appendAttr(attrs, attrNextHop, nh); err != nil {
			return nil, err
		}
		if u.MED != 0 {
			med := make([]byte, 4)
			binary.BigEndian.PutUint32(med, u.MED)
			if attrs, err = appendAttr(attrs, attrMED, med); err != nil {
				return nil, err
			}
		}
		if len(u.Communities) > 0 {
			cv := make([]byte, 4*len(u.Communities))
			for i, c := range u.Communities {
				binary.BigEndian.PutUint32(cv[4*i:], uint32(c))
			}
			if attrs, err = appendAttr(attrs, attrCommunities, cv); err != nil {
				return nil, err
			}
		}
	}

	bodyLen := 2 + len(withdrawn) + 2 + len(attrs) + len(nlri)
	if 19+bodyLen > 0xffff {
		return nil, fmt.Errorf("bgp: update encodes to %d bytes, exceeding the 65535-byte BGP message limit", 19+bodyLen)
	}
	msg := make([]byte, 19, 19+bodyLen)
	for i := 0; i < 16; i++ {
		msg[i] = 0xff // marker
	}
	binary.BigEndian.PutUint16(msg[16:18], uint16(19+bodyLen))
	msg[18] = bgpMsgUpdate
	var tmp [2]byte
	binary.BigEndian.PutUint16(tmp[:], uint16(len(withdrawn)))
	msg = append(msg, tmp[:]...)
	msg = append(msg, withdrawn...)
	binary.BigEndian.PutUint16(tmp[:], uint16(len(attrs)))
	msg = append(msg, tmp[:]...)
	msg = append(msg, attrs...)
	msg = append(msg, nlri...)
	return msg, nil
}

func appendAttr(dst []byte, code byte, val []byte) ([]byte, error) {
	if len(val) > 0xffff {
		return nil, fmt.Errorf("bgp: attribute %d encodes to %d bytes, exceeding the 2-byte length field", code, len(val))
	}
	flags := byte(0x40) // transitive
	if len(val) > 255 {
		flags |= 0x10 // extended length
		dst = append(dst, flags, code, byte(len(val)>>8), byte(len(val)))
	} else {
		dst = append(dst, flags, code, byte(len(val)))
	}
	return append(dst, val...), nil
}

func encodeNLRI(p trie.Prefix) []byte {
	nbytes := (int(p.Len) + 7) / 8
	out := make([]byte, 1+nbytes)
	out[0] = p.Len
	for i := 0; i < nbytes; i++ {
		out[1+i] = byte(p.Addr >> (24 - 8*i))
	}
	return out
}
