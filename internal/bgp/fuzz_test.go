package bgp

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"rrr/internal/trie"
)

// Native fuzz targets for every decoder that consumes third-party bytes:
// the MRT and framed-binary codecs, the text codec, and the string parsers
// ParsePath/ParseCommunity. Beyond "no panic", each target checks the
// codec's contract: truncation classifies as io.ErrUnexpectedEOF (or this
// codec's structural error), never a silent success, and anything that
// parses must survive a write→re-read round trip unchanged — the
// differential check that caught the writer's length-field overflows.

// fuzzSeedUpdates is a small set of representative updates used to build
// byte-level seed corpora for the codec targets.
func fuzzSeedUpdates() []Update {
	return []Update{
		{Time: 100, PeerIP: 0x01020304, PeerAS: 65000, Type: Announce,
			Prefix: trie.MakePrefix(0x0a000000, 8), ASPath: Path{65000, 3356, 15169},
			Communities: Communities{MakeCommunity(3356, 100)}, MED: 7},
		{Time: 101, PeerIP: 0x01020304, PeerAS: 65000, Type: Withdraw,
			Prefix: trie.MakePrefix(0xc0a80000, 16)},
		{Time: -5, PeerIP: 0xffffffff, PeerAS: 4200000000, Type: Announce,
			Prefix: trie.MakePrefix(0, 0), ASPath: Path{}, MED: 0},
	}
}

func FuzzMRTReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewMRTWriter(&buf)
	for _, u := range fuzzSeedUpdates() {
		if err := w.Write(u); err != nil {
			f.Fatal(err)
		}
	}
	w.Flush()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:13]) // mid-record cut
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewMRTReader(bytes.NewReader(data))
		var got []Update
		for {
			ups, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				// Any mid-stream cut must be distinguishable from a
				// clean end; structural garbage gets its own errors.
				return
			}
			got = append(got, ups...)
			if len(got) > 1<<16 {
				t.Fatalf("runaway decode: %d updates from %d bytes", len(got), len(data))
			}
		}
		// Round trip: everything that parsed must re-encode and re-parse
		// identically (writer refuses what it cannot represent).
		var rt bytes.Buffer
		w := NewMRTWriter(&rt)
		for _, u := range got {
			if err := w.Write(u); err != nil {
				return
			}
		}
		w.Flush()
		r2 := NewMRTReader(bytes.NewReader(rt.Bytes()))
		var again []Update
		for {
			ups, err := r2.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("re-parse of re-encoded stream failed: %v", err)
			}
			again = append(again, ups...)
		}
		if len(got) != len(again) {
			t.Fatalf("round trip changed update count: %d -> %d", len(got), len(again))
		}
		for i := range got {
			if got[i].Time != again[i].Time || got[i].Type != again[i].Type ||
				got[i].Prefix != again[i].Prefix || !got[i].ASPath.Equal(again[i].ASPath) {
				t.Fatalf("round trip changed update %d:\n got %+v\nwant %+v", i, again[i], got[i])
			}
		}
	})
}

func FuzzBinaryReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, u := range fuzzSeedUpdates() {
		if err := w.Write(u); err != nil {
			f.Fatal(err)
		}
	}
	w.Flush()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:7]) // mid-record cut
	f.Add([]byte{0xb6, 0x4d})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBinaryReader(bytes.NewReader(data))
		var got []Update
		for {
			u, err := r.Read()
			if err != nil {
				if err == io.EOF {
					break
				}
				if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrBadMagic) {
					return
				}
				return // structural error: fine, as long as it didn't panic
			}
			if u.Prefix.Len > 32 {
				t.Fatalf("parsed impossible prefix length %d", u.Prefix.Len)
			}
			got = append(got, u)
		}
		var rt bytes.Buffer
		w := NewBinaryWriter(&rt)
		for _, u := range got {
			if err := w.Write(u); err != nil {
				t.Fatalf("re-encode of parsed update failed: %v", err)
			}
		}
		w.Flush()
		r2 := NewBinaryReader(bytes.NewReader(rt.Bytes()))
		for i := range got {
			u, err := r2.Read()
			if err != nil {
				t.Fatalf("re-parse %d failed: %v", i, err)
			}
			if !reflect.DeepEqual(u, got[i]) {
				t.Fatalf("round trip changed update %d:\n got %+v\nwant %+v", i, u, got[i])
			}
		}
	})
}

func FuzzTextReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	for _, u := range fuzzSeedUpdates() {
		if err := w.Write(u); err != nil {
			f.Fatal(err)
		}
	}
	w.Flush()
	f.Add(buf.String())
	f.Add("TIME: 5\nTYPE: ANNOUNCE\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		parse := func(s string) ([]Update, error) {
			r := NewTextReader(bytes.NewReader([]byte(s)))
			var out []Update
			for {
				u, err := r.Read()
				if err == io.EOF {
					return out, nil
				}
				if err != nil {
					return out, err
				}
				out = append(out, u)
			}
		}
		write := func(us []Update) string {
			var b bytes.Buffer
			w := NewTextWriter(&b)
			for _, u := range us {
				if err := w.Write(u); err != nil {
					t.Fatalf("re-encode failed: %v", err)
				}
			}
			w.Flush()
			return b.String()
		}
		got, err := parse(data)
		if err != nil {
			return
		}
		// The text form is not canonical (a withdraw may carry an ASPATH
		// line the writer drops), so compare the first re-encoding with
		// the second: one write→parse cycle must be a fixed point.
		gen1 := write(got)
		got2, err := parse(gen1)
		if err != nil {
			t.Fatalf("re-parse of re-encoded stream failed: %v\nstream:\n%s", err, gen1)
		}
		if gen2 := write(got2); gen1 != gen2 {
			t.Fatalf("write/parse not a fixed point:\ngen1:\n%s\ngen2:\n%s", gen1, gen2)
		}
	})
}

func FuzzParsePath(f *testing.F) {
	f.Add("65000 3356 15169")
	f.Add("")
	f.Add(" 1  2 ")
	f.Add("4294967295")
	f.Add("4294967296") // overflows uint32: must error, not wrap
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePath(s)
		if err != nil {
			return
		}
		// Round trip through the canonical rendering.
		q, err := ParsePath(p.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", p.String(), err)
		}
		if !p.Equal(q) {
			t.Fatalf("round trip changed path: %v -> %v", p, q)
		}
		// Derived operations must tolerate whatever parsed, including
		// empty paths.
		_ = p.Origin()
		_ = p.Compact()
		_ = p.HasLoop()
		_ = p.Suffix(3356)
	})
}

func FuzzParseCommunity(f *testing.F) {
	f.Add("3356:100")
	f.Add("0:0")
	f.Add("65535:65535")
	f.Add("65536:1") // overflows uint16: must error, not wrap
	f.Add(":")
	f.Add("no-colon")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCommunity(s)
		if err != nil {
			return
		}
		q, err := ParseCommunity(c.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", c.String(), err)
		}
		if c != q {
			t.Fatalf("round trip changed community: %v -> %v", c, q)
		}
	})
}
