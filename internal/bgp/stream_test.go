package bgp

import (
	"bytes"
	"io"
	"math/rand"
	"sort"
	"testing"

	"rrr/internal/trie"
)

func mkUpdates(n int, seed int64, peer uint32) []Update {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Update, n)
	t := int64(0)
	for i := range out {
		t += int64(rng.Intn(500))
		out[i] = Update{
			Time: t, PeerIP: peer, PeerAS: ASN(peer), Type: Announce,
			Prefix: trie.MakePrefix(rng.Uint32(), 16),
			ASPath: Path{ASN(peer), ASN(rng.Intn(100) + 1)},
		}
	}
	return out
}

func drain(t *testing.T, src UpdateSource) []Update {
	t.Helper()
	var out []Update
	for {
		u, err := src.Read()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, u)
	}
}

func TestMergerTimeOrder(t *testing.T) {
	a := mkUpdates(100, 1, 0x0a)
	b := mkUpdates(80, 2, 0x0b)
	c := mkUpdates(60, 3, 0x0c)
	m := NewMerger(NewSliceSource(a), NewSliceSource(b), NewSliceSource(c))
	got := drain(t, m)
	if len(got) != 240 {
		t.Fatalf("merged %d; want 240", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Time < got[j].Time }) {
		t.Fatal("merged stream not time ordered")
	}
	// Per-source order preserved.
	var fromA []Update
	for _, u := range got {
		if u.PeerIP == 0x0a {
			fromA = append(fromA, u)
		}
	}
	if len(fromA) != len(a) {
		t.Fatalf("lost updates from source a: %d", len(fromA))
	}
	for i := range a {
		if fromA[i].Prefix != a[i].Prefix {
			t.Fatal("source order not preserved")
		}
	}
}

func TestMergerEmptySources(t *testing.T) {
	m := NewMerger(NewSliceSource(nil), NewSliceSource(nil))
	if got := drain(t, m); len(got) != 0 {
		t.Fatalf("empty merge produced %d", len(got))
	}
	m2 := NewMerger()
	if _, err := m2.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestMRTSourceAdapts(t *testing.T) {
	var buf bytes.Buffer
	w := NewMRTWriter(&buf)
	ups := mkUpdates(20, 4, 0x0d)
	for _, u := range ups {
		if err := w.Write(u); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	src := NewMRTSource(NewMRTReader(&buf))
	got := drain(t, src)
	if len(got) != 20 {
		t.Fatalf("MRT source yielded %d; want 20", len(got))
	}
}

func TestWindowsIteration(t *testing.T) {
	ups := []Update{
		{Time: 100}, {Time: 850},
		{Time: 950},
		// window 2 (1800..2699) empty
		{Time: 2700},
	}
	var starts []int64
	var counts []int
	err := Windows(NewSliceSource(ups), 900, func(ws int64, batch []Update) error {
		starts = append(starts, ws)
		counts = append(counts, len(batch))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantStarts := []int64{0, 900, 1800, 2700}
	wantCounts := []int{2, 1, 0, 1}
	if len(starts) != len(wantStarts) {
		t.Fatalf("windows = %v", starts)
	}
	for i := range wantStarts {
		if starts[i] != wantStarts[i] || counts[i] != wantCounts[i] {
			t.Fatalf("window %d: start=%d count=%d; want %d,%d",
				i, starts[i], counts[i], wantStarts[i], wantCounts[i])
		}
	}
}

func TestWindowsEmptyStream(t *testing.T) {
	called := false
	err := Windows(NewSliceSource(nil), 900, func(int64, []Update) error {
		called = true
		return nil
	})
	if err != nil || called {
		t.Fatalf("empty stream: err=%v called=%v", err, called)
	}
}

func TestWindowsPropagatesError(t *testing.T) {
	ups := mkUpdates(10, 5, 1)
	wantErr := io.ErrClosedPipe
	err := Windows(NewSliceSource(ups), 100, func(int64, []Update) error {
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("err = %v; want %v", err, wantErr)
	}
}

func BenchmarkMergerRead(b *testing.B) {
	sources := make([]UpdateSource, 8)
	for i := range sources {
		sources[i] = NewSliceSource(mkUpdates(100000, int64(i), uint32(i)))
	}
	m := NewMerger(sources...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Read(); err == io.EOF {
			b.StopTimer()
			sources2 := make([]UpdateSource, 8)
			for j := range sources2 {
				sources2[j] = NewSliceSource(mkUpdates(100000, int64(j), uint32(j)))
			}
			m = NewMerger(sources2...)
			b.StartTimer()
		}
	}
}
