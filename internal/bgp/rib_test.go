package bgp

import (
	"testing"

	"rrr/internal/trie"
)

func pfx(t *testing.T, s string) trie.Prefix {
	t.Helper()
	p, err := trie.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func ann(t *testing.T, tm int64, peer uint32, as ASN, prefix string, path Path, comms Communities, med uint32) Update {
	t.Helper()
	return Update{
		Time: tm, PeerIP: peer, PeerAS: as, Type: Announce,
		Prefix: pfx(t, prefix), ASPath: path, Communities: comms, MED: med,
	}
}

func TestRIBChangeClassification(t *testing.T) {
	r := NewRIB()
	base := ann(t, 10, 0x01020304, 13030, "200.61.128.0/19",
		Path{13030, 1299, 2914, 18747},
		Communities{MakeCommunity(13030, 2), MakeCommunity(13030, 51701)}, 0)

	if c := r.Apply(base); c.Kind != ChangeNew {
		t.Fatalf("first announce = %v; want new", c.Kind)
	}

	dup := base
	dup.Time = 20
	if c := r.Apply(dup); c.Kind != ChangeDuplicate {
		t.Fatalf("identical announce = %v; want duplicate", c.Kind)
	}

	medChange := base
	medChange.Time = 30
	medChange.MED = 77
	if c := r.Apply(medChange); c.Kind != ChangeDuplicate {
		t.Fatalf("MED-only change = %v; want duplicate (non-transitive)", c.Kind)
	}

	commChange := base
	commChange.Time = 40
	commChange.Communities = Communities{MakeCommunity(13030, 2), MakeCommunity(13030, 51203)}
	if c := r.Apply(commChange); c.Kind != ChangeCommunities {
		t.Fatalf("community change = %v; want communities", c.Kind)
	}

	pathChange := base
	pathChange.Time = 50
	pathChange.ASPath = Path{13030, 3356, 2914, 18747}
	c := r.Apply(pathChange)
	if c.Kind != ChangeASPath {
		t.Fatalf("path change = %v; want aspath", c.Kind)
	}
	if c.Prev == nil || c.Cur == nil {
		t.Fatal("path change should carry prev and cur routes")
	}
	if !c.Prev.ASPath.Equal(base.ASPath) {
		t.Errorf("prev path = %v", c.Prev.ASPath)
	}

	wd := Update{Time: 60, PeerIP: base.PeerIP, PeerAS: base.PeerAS, Type: Withdraw, Prefix: base.Prefix}
	if c := r.Apply(wd); c.Kind != ChangeWithdrawn || c.Prev == nil {
		t.Fatalf("withdraw = %v prev=%v", c.Kind, c.Prev)
	}
	if _, ok := r.Route(VPKey{base.PeerIP, base.PeerAS}, base.Prefix); ok {
		t.Fatal("route should be gone after withdraw")
	}
	// Withdrawing an unknown route is not an error.
	if c := r.Apply(wd); c.Kind != ChangeWithdrawn || c.Prev != nil {
		t.Fatalf("withdraw unknown = %v prev=%v", c.Kind, c.Prev)
	}
}

func TestRIBCommunityOrderInsensitive(t *testing.T) {
	r := NewRIB()
	a := ann(t, 1, 1, 100, "10.0.0.0/16", Path{100, 200},
		Communities{MakeCommunity(100, 1), MakeCommunity(100, 2)}, 0)
	r.Apply(a)
	b := a
	b.Time = 2
	b.Communities = Communities{MakeCommunity(100, 2), MakeCommunity(100, 1)}
	if c := r.Apply(b); c.Kind != ChangeDuplicate {
		t.Fatalf("reordered communities = %v; want duplicate", c.Kind)
	}
}

func TestRIBLookupMostSpecific(t *testing.T) {
	r := NewRIB()
	vp := VPKey{PeerIP: 1, PeerAS: 100}
	r.Apply(ann(t, 1, 1, 100, "10.0.0.0/8", Path{100, 1}, nil, 0))
	r.Apply(ann(t, 2, 1, 100, "10.1.0.0/16", Path{100, 2}, nil, 0))
	ip, _ := trie.ParseIP("10.1.2.3")
	rt, ok := r.Lookup(vp, ip)
	if !ok || rt.ASPath.Origin() != 2 {
		t.Fatalf("Lookup = %+v, %v; want /16 route", rt, ok)
	}
	ip2, _ := trie.ParseIP("10.2.2.3")
	rt, ok = r.Lookup(vp, ip2)
	if !ok || rt.ASPath.Origin() != 1 {
		t.Fatalf("Lookup = %+v, %v; want /8 route", rt, ok)
	}
}

func TestRIBVPsSortedAndFiltered(t *testing.T) {
	r := NewRIB()
	r.Apply(ann(t, 1, 5, 500, "10.0.0.0/8", Path{500, 1}, nil, 0))
	r.Apply(ann(t, 1, 3, 300, "10.0.0.0/8", Path{300, 1}, nil, 0))
	r.Apply(ann(t, 1, 4, 400, "20.0.0.0/8", Path{400, 2}, nil, 0))
	vps := r.VPs()
	if len(vps) != 3 || vps[0].PeerIP != 3 || vps[2].PeerIP != 5 {
		t.Fatalf("VPs = %v", vps)
	}
	ip, _ := trie.ParseIP("10.9.9.9")
	with := r.VPsWithRouteTo(ip)
	if len(with) != 2 || with[0].PeerIP != 3 || with[1].PeerIP != 5 {
		t.Fatalf("VPsWithRouteTo = %v", with)
	}
}

func TestFilterTooSpecific(t *testing.T) {
	if FilterTooSpecific(pfx(t, "10.0.0.0/24")) {
		t.Error("/24 should pass")
	}
	if !FilterTooSpecific(pfx(t, "10.0.0.0/25")) {
		t.Error("/25 should be filtered")
	}
}
