package bgp_test

// Regression tests for truncation classification (external test package so
// the codecs can be driven through faultfeed's byte-level fault injector
// without an import cycle): a stream cut exactly at a record boundary is a
// clean io.EOF, a cut anywhere inside a record is io.ErrUnexpectedEOF, and
// torn (short) reads never corrupt a parse.

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/faultfeed"
	"rrr/internal/trie"
)

func truncSeedUpdates() []bgp.Update {
	return []bgp.Update{
		{Time: 100, PeerIP: 0x01020304, PeerAS: 65000, Type: bgp.Announce,
			Prefix: trie.MakePrefix(0x0a000000, 8), ASPath: bgp.Path{65000, 3356, 15169},
			Communities: bgp.Communities{bgp.MakeCommunity(3356, 100)}, MED: 7},
		{Time: 101, PeerIP: 0x01020304, PeerAS: 65000, Type: bgp.Withdraw,
			Prefix: trie.MakePrefix(0xc0a80000, 16)},
		{Time: 102, PeerIP: 0x05060708, PeerAS: 3356, Type: bgp.Announce,
			Prefix: trie.MakePrefix(0x0b000000, 12), ASPath: bgp.Path{3356, 1299}},
	}
}

// encodePerRecord returns the full stream plus each record's end offset.
func encodePerRecord(t *testing.T, write func(*bytes.Buffer, bgp.Update)) ([]byte, map[int]bool) {
	t.Helper()
	var buf bytes.Buffer
	boundaries := map[int]bool{0: true}
	for _, u := range truncSeedUpdates() {
		write(&buf, u)
		boundaries[buf.Len()] = true
	}
	return buf.Bytes(), boundaries
}

func drainMRT(r *bgp.MRTReader) error {
	for {
		if _, err := r.Read(); err != nil {
			return err
		}
	}
}

func drainBinary(r *bgp.BinaryReader) error {
	for {
		if _, err := r.Read(); err != nil {
			return err
		}
	}
}

func TestMRTReaderTruncationEveryOffset(t *testing.T) {
	stream, boundaries := encodePerRecord(t, func(b *bytes.Buffer, u bgp.Update) {
		w := bgp.NewMRTWriter(b)
		if err := w.Write(u); err != nil {
			t.Fatal(err)
		}
		w.Flush()
	})
	for cut := 0; cut <= len(stream); cut++ {
		err := drainMRT(bgp.NewMRTReader(faultfeed.NewReader(bytes.NewReader(stream), 1, int64(cut))))
		if boundaries[cut] {
			if err != io.EOF {
				t.Fatalf("cut at record boundary %d: got %v, want clean io.EOF", cut, err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut mid-record at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
		if !errors.Is(err, bgp.ErrMRTTruncated) {
			t.Fatalf("cut mid-record at %d: %v should also classify as ErrMRTTruncated", cut, err)
		}
	}
}

func TestBinaryReaderTruncationEveryOffset(t *testing.T) {
	stream, boundaries := encodePerRecord(t, func(b *bytes.Buffer, u bgp.Update) {
		w := bgp.NewBinaryWriter(b)
		if err := w.Write(u); err != nil {
			t.Fatal(err)
		}
		w.Flush()
	})
	for cut := 0; cut <= len(stream); cut++ {
		err := drainBinary(bgp.NewBinaryReader(faultfeed.NewReader(bytes.NewReader(stream), 1, int64(cut))))
		if boundaries[cut] {
			if err != io.EOF {
				t.Fatalf("cut at record boundary %d: got %v, want clean io.EOF", cut, err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut mid-record at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestCodecsSurviveTornReads(t *testing.T) {
	mrtStream, _ := encodePerRecord(t, func(b *bytes.Buffer, u bgp.Update) {
		w := bgp.NewMRTWriter(b)
		if err := w.Write(u); err != nil {
			t.Fatal(err)
		}
		w.Flush()
	})
	fr := faultfeed.NewReader(bytes.NewReader(mrtStream), 99, -1)
	fr.TearProb = 0.8
	fr.MaxTear = 2
	r := bgp.NewMRTReader(fr)
	n := 0
	for {
		ups, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("torn reads broke MRT parse: %v", err)
		}
		n += len(ups)
	}
	if n != len(truncSeedUpdates()) {
		t.Fatalf("parsed %d updates under torn reads, want %d", n, len(truncSeedUpdates()))
	}

	binStream, _ := encodePerRecord(t, func(b *bytes.Buffer, u bgp.Update) {
		w := bgp.NewBinaryWriter(b)
		if err := w.Write(u); err != nil {
			t.Fatal(err)
		}
		w.Flush()
	})
	fr = faultfeed.NewReader(bytes.NewReader(binStream), 99, -1)
	fr.TearProb = 0.8
	fr.MaxTear = 2
	br := bgp.NewBinaryReader(fr)
	n = 0
	for {
		_, err := br.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("torn reads broke binary parse: %v", err)
		}
		n++
	}
	if n != len(truncSeedUpdates()) {
		t.Fatalf("parsed %d updates under torn reads, want %d", n, len(truncSeedUpdates()))
	}
}
