package bgp

import (
	"sort"

	"rrr/internal/trie"
)

// ChangeKind classifies what an update changed relative to the VP's previous
// route for the prefix. The staleness techniques key off this classification:
// AS-path changes feed §4.1.2, community changes feed §4.1.3, and duplicates
// feed §4.1.4.
type ChangeKind uint8

// Change kinds, ordered by decreasing severity.
const (
	// ChangeNew is the first announcement for (vp, prefix).
	ChangeNew ChangeKind = iota
	// ChangeWithdrawn removes the route.
	ChangeWithdrawn
	// ChangeASPath means the AS path differs from the previous route.
	ChangeASPath
	// ChangeCommunities means the AS path is identical but the community
	// set differs.
	ChangeCommunities
	// ChangeDuplicate means all transitive attributes (AS path,
	// communities) are identical to the previous route; only non-transitive
	// attributes such as MED may have changed. Routers emit these when they
	// change routes at a granularity invisible to BGP (paper §4.1.4).
	ChangeDuplicate
)

// String names the change kind.
func (k ChangeKind) String() string {
	switch k {
	case ChangeNew:
		return "new"
	case ChangeWithdrawn:
		return "withdrawn"
	case ChangeASPath:
		return "aspath"
	case ChangeCommunities:
		return "communities"
	case ChangeDuplicate:
		return "duplicate"
	}
	return "unknown"
}

// Change describes the effect of applying one update to a RIB.
type Change struct {
	Kind ChangeKind
	VP   VPKey
	// Prev is the route before the update (nil for ChangeNew).
	Prev *Route
	// Cur is the route after the update (nil for ChangeWithdrawn).
	Cur *Route
	// Update is the update that caused the change.
	Update Update
}

// RIB maintains per-VP routing tables: for every vantage point, the current
// route to every prefix it has announced. It mirrors what BGPStream table
// views provide (paper §4.1.1).
type RIB struct {
	tables map[VPKey]*vpTable
	// commScratch is reused across Apply calls to normalize the incoming
	// community set without cloning it first. The dominant update class in
	// steady state is duplicates (paper §4.1.4), where the normalized set
	// matches the previous route and no allocation is needed at all.
	commScratch Communities
}

type vpTable struct {
	trie trie.Trie[*Route]
}

// NewRIB returns an empty RIB.
func NewRIB() *RIB {
	return &RIB{tables: make(map[VPKey]*vpTable)}
}

// Apply ingests one update and returns the classified change. Withdrawals
// for unknown routes return a Change with Kind ChangeWithdrawn and nil Prev.
func (r *RIB) Apply(u Update) Change {
	vp := VPKey{PeerIP: u.PeerIP, PeerAS: u.PeerAS}
	tbl := r.tables[vp]
	if tbl == nil {
		tbl = &vpTable{}
		r.tables[vp] = tbl
	}
	prev, _ := tbl.trie.Get(u.Prefix)

	if u.Type == Withdraw {
		if prev != nil {
			tbl.trie.Delete(u.Prefix)
		}
		return Change{Kind: ChangeWithdrawn, VP: vp, Prev: prev, Update: u}
	}

	cur := &Route{
		Prefix:  u.Prefix,
		MED:     u.MED,
		Updated: u.Time,
	}
	// Routes are immutable once inserted, so an unchanged attribute can
	// alias the previous route's slice instead of cloning the update's.
	samePath := prev != nil && prev.ASPath.Equal(u.ASPath)
	if samePath {
		cur.ASPath = prev.ASPath
	} else {
		cur.ASPath = u.ASPath.Clone()
	}
	r.commScratch = NormalizeCommunities(append(r.commScratch[:0], u.Communities...))
	sameComms := prev != nil && prev.Communities.Equal(r.commScratch)
	if sameComms {
		cur.Communities = prev.Communities
	} else {
		cur.Communities = NormalizeCommunities(u.Communities.Clone())
	}
	tbl.trie.Insert(u.Prefix, cur)

	switch {
	case prev == nil:
		return Change{Kind: ChangeNew, VP: vp, Cur: cur, Update: u}
	case !samePath:
		return Change{Kind: ChangeASPath, VP: vp, Prev: prev, Cur: cur, Update: u}
	case !sameComms:
		return Change{Kind: ChangeCommunities, VP: vp, Prev: prev, Cur: cur, Update: u}
	default:
		return Change{Kind: ChangeDuplicate, VP: vp, Prev: prev, Cur: cur, Update: u}
	}
}

// Route returns vp's current route for the exact prefix.
func (r *RIB) Route(vp VPKey, p trie.Prefix) (*Route, bool) {
	tbl := r.tables[vp]
	if tbl == nil {
		return nil, false
	}
	return tbl.trie.Get(p)
}

// Lookup returns vp's most specific route covering ip, mirroring the
// "find the most specific prefix advertised by each BGP vantage point"
// step of §4.1.1.
func (r *RIB) Lookup(vp VPKey, ip uint32) (*Route, bool) {
	tbl := r.tables[vp]
	if tbl == nil {
		return nil, false
	}
	rt, ok := tbl.trie.Lookup(ip)
	if !ok || rt == nil {
		return nil, false
	}
	return rt, true
}

// VPs returns all vantage points present in the RIB, sorted for determinism.
func (r *RIB) VPs() []VPKey {
	out := make([]VPKey, 0, len(r.tables))
	for vp := range r.tables {
		out = append(out, vp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PeerIP != out[j].PeerIP {
			return out[i].PeerIP < out[j].PeerIP
		}
		return out[i].PeerAS < out[j].PeerAS
	})
	return out
}

// VPsWithRouteTo returns the VPs whose current route covers ip, sorted.
func (r *RIB) VPsWithRouteTo(ip uint32) []VPKey {
	var out []VPKey
	for vp, tbl := range r.tables {
		if _, ok := tbl.trie.Lookup(ip); ok {
			out = append(out, vp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PeerIP != out[j].PeerIP {
			return out[i].PeerIP < out[j].PeerIP
		}
		return out[i].PeerAS < out[j].PeerAS
	})
	return out
}

// FilterTooSpecific reports whether an update should be excluded because its
// prefix is more specific than /24; such prefixes generally do not propagate
// far and may indicate misconfiguration or blackholing (paper §4.1.1).
func FilterTooSpecific(p trie.Prefix) bool { return p.Len > 24 }

// Prefixes returns all prefixes vp currently holds routes for, sorted.
func (r *RIB) Prefixes(vp VPKey) []trie.Prefix {
	tbl := r.tables[vp]
	if tbl == nil {
		return nil
	}
	return tbl.trie.Prefixes()
}
