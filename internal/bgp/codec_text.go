package bgp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rrr/internal/trie"
)

// The text codec mirrors the human-readable dump format shown in the paper's
// Fig 3:
//
//	TIME: 1234567
//	TYPE: ANNOUNCE
//	FROM: 195.66.224.175 AS13030
//	ASPATH: 13030 1299 2914 18747
//	COMMUNITY: 13030:2 13030:1299 13030:51701
//	MED: 0
//	ANNOUNCE: 200.61.128.0/19
//
// Records are separated by blank lines. Withdrawals use "WITHDRAW:" in place
// of "ANNOUNCE:" and omit ASPATH/COMMUNITY/MED.

// TextWriter serializes updates in the text dump format.
type TextWriter struct {
	w *bufio.Writer
}

// NewTextWriter wraps w.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: bufio.NewWriter(w)}
}

// Write emits one update record.
func (tw *TextWriter) Write(u Update) error {
	fmt.Fprintf(tw.w, "TIME: %d\n", u.Time)
	fmt.Fprintf(tw.w, "TYPE: %s\n", u.Type)
	fmt.Fprintf(tw.w, "FROM: %s AS%d\n", trie.FormatIP(u.PeerIP), uint32(u.PeerAS))
	if u.Type == Announce {
		fmt.Fprintf(tw.w, "ASPATH: %s\n", u.ASPath)
		if len(u.Communities) > 0 {
			fmt.Fprintf(tw.w, "COMMUNITY: %s\n", u.Communities)
		}
		fmt.Fprintf(tw.w, "MED: %d\n", u.MED)
		fmt.Fprintf(tw.w, "ANNOUNCE: %s\n", u.Prefix)
	} else {
		fmt.Fprintf(tw.w, "WITHDRAW: %s\n", u.Prefix)
	}
	_, err := tw.w.WriteString("\n")
	return err
}

// Flush flushes the underlying buffer.
func (tw *TextWriter) Flush() error { return tw.w.Flush() }

// TextReader parses updates from the text dump format.
type TextReader struct {
	s    *bufio.Scanner
	line int
}

// NewTextReader wraps r.
func NewTextReader(r io.Reader) *TextReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), 1024*1024)
	return &TextReader{s: s}
}

// Read parses the next record. It returns io.EOF when the stream ends.
func (tr *TextReader) Read() (Update, error) {
	var (
		u       Update
		sawTime bool
		sawFrom bool
		sawPfx  bool
	)
	for tr.s.Scan() {
		tr.line++
		line := strings.TrimSpace(tr.s.Text())
		if line == "" {
			if sawTime || sawFrom || sawPfx {
				break
			}
			continue // leading blank lines
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return u, fmt.Errorf("bgp: text line %d: no key", tr.line)
		}
		key := line[:colon]
		val := strings.TrimSpace(line[colon+1:])
		switch key {
		case "TIME":
			t, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return u, fmt.Errorf("bgp: text line %d: bad TIME %q", tr.line, val)
			}
			u.Time = t
			sawTime = true
		case "TYPE":
			switch val {
			case "ANNOUNCE":
				u.Type = Announce
			case "WITHDRAW":
				u.Type = Withdraw
			default:
				return u, fmt.Errorf("bgp: text line %d: bad TYPE %q", tr.line, val)
			}
		case "FROM":
			fields := strings.Fields(val)
			if len(fields) != 2 || !strings.HasPrefix(fields[1], "AS") {
				return u, fmt.Errorf("bgp: text line %d: bad FROM %q", tr.line, val)
			}
			ip, err := trie.ParseIP(fields[0])
			if err != nil {
				return u, fmt.Errorf("bgp: text line %d: %v", tr.line, err)
			}
			as, err := strconv.ParseUint(fields[1][2:], 10, 32)
			if err != nil {
				return u, fmt.Errorf("bgp: text line %d: bad peer AS %q", tr.line, fields[1])
			}
			u.PeerIP, u.PeerAS = ip, ASN(as)
			sawFrom = true
		case "ASPATH":
			p, err := ParsePath(val)
			if err != nil {
				return u, fmt.Errorf("bgp: text line %d: %v", tr.line, err)
			}
			u.ASPath = p
		case "COMMUNITY":
			for _, tok := range strings.Fields(val) {
				c, err := ParseCommunity(tok)
				if err != nil {
					return u, fmt.Errorf("bgp: text line %d: %v", tr.line, err)
				}
				u.Communities = append(u.Communities, c)
			}
		case "MED":
			m, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return u, fmt.Errorf("bgp: text line %d: bad MED %q", tr.line, val)
			}
			u.MED = uint32(m)
		case "ANNOUNCE", "WITHDRAW":
			p, err := trie.ParsePrefix(val)
			if err != nil {
				return u, fmt.Errorf("bgp: text line %d: %v", tr.line, err)
			}
			u.Prefix = p
			if key == "WITHDRAW" {
				u.Type = Withdraw
			}
			sawPfx = true
		default:
			return u, fmt.Errorf("bgp: text line %d: unknown key %q", tr.line, key)
		}
	}
	if err := tr.s.Err(); err != nil {
		return u, err
	}
	if !sawTime && !sawFrom && !sawPfx {
		return u, io.EOF
	}
	if !sawTime || !sawFrom || !sawPfx {
		return u, fmt.Errorf("bgp: text record before line %d incomplete", tr.line)
	}
	return u, nil
}
