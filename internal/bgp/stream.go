package bgp

import (
	"container/heap"
	"io"
)

// UpdateSource is any incremental producer of BGP updates: the binary/text
// codec readers, the MRT reader (via MRTSource), or a simulator feed.
// Read returns io.EOF at end of stream.
type UpdateSource interface {
	Read() (Update, error)
}

// MRTSource adapts an MRTReader (which yields batches) to UpdateSource.
type MRTSource struct {
	r   *MRTReader
	buf []Update
}

// NewMRTSource wraps an MRTReader.
func NewMRTSource(r *MRTReader) *MRTSource { return &MRTSource{r: r} }

// Read implements UpdateSource.
func (s *MRTSource) Read() (Update, error) {
	for len(s.buf) == 0 {
		batch, err := s.r.Read()
		if err != nil {
			return Update{}, err
		}
		s.buf = batch
	}
	u := s.buf[0]
	s.buf = s.buf[1:]
	return u, nil
}

// SliceSource serves updates from memory.
type SliceSource struct {
	updates []Update
	i       int
}

// NewSliceSource wraps a slice.
func NewSliceSource(us []Update) *SliceSource { return &SliceSource{updates: us} }

// Read implements UpdateSource.
func (s *SliceSource) Read() (Update, error) {
	if s.i >= len(s.updates) {
		return Update{}, io.EOF
	}
	u := s.updates[s.i]
	s.i++
	return u, nil
}

// Merger interleaves several per-collector update streams into one
// time-ordered stream, the way BGPStream combines RouteViews and RIS
// archives (paper §4.1.1: a 15-minute window combines both projects'
// dumps). Each source must itself be time-ordered.
type Merger struct {
	h      mergeHeap
	inited bool
	err    error
}

type mergeItem struct {
	u   Update
	src UpdateSource
	idx int // source index, stabilizes ordering for equal timestamps
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].u.Time != h[j].u.Time {
		return h[i].u.Time < h[j].u.Time
	}
	return h[i].idx < h[j].idx
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewMerger builds a merger over the sources.
func NewMerger(sources ...UpdateSource) *Merger {
	m := &Merger{}
	for i, s := range sources {
		u, err := s.Read()
		if err == io.EOF {
			continue
		}
		if err != nil {
			m.err = err
			continue
		}
		m.h = append(m.h, mergeItem{u: u, src: s, idx: i})
	}
	heap.Init(&m.h)
	m.inited = true
	return m
}

// Read implements UpdateSource: it returns the globally next update by
// timestamp.
func (m *Merger) Read() (Update, error) {
	if m.err != nil {
		return Update{}, m.err
	}
	if m.h.Len() == 0 {
		return Update{}, io.EOF
	}
	top := m.h[0]
	next, err := top.src.Read()
	switch {
	case err == io.EOF:
		heap.Pop(&m.h)
	case err != nil:
		m.err = err
		heap.Pop(&m.h)
	default:
		m.h[0] = mergeItem{u: next, src: top.src, idx: top.idx}
		heap.Fix(&m.h, 0)
	}
	return top.u, nil
}

// Windows iterates a time-ordered update stream in fixed windows: fn is
// called once per window with its updates (empty windows between updates
// are invoked with nil so window-driven consumers advance uniformly, per
// the engine's CloseWindow contract).
func Windows(src UpdateSource, windowSec int64, fn func(windowStart int64, updates []Update) error) error {
	var (
		cur     []Update
		curIdx  int64
		started bool
	)
	flushTo := func(idx int64) error {
		for ; curIdx < idx; curIdx++ {
			if err := fn(curIdx*windowSec, cur); err != nil {
				return err
			}
			cur = nil
		}
		return nil
	}
	for {
		u, err := src.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		idx := u.Time / windowSec
		if !started {
			started = true
			curIdx = idx
		}
		if idx > curIdx {
			if err := flushTo(idx); err != nil {
				return err
			}
		}
		cur = append(cur, u)
	}
	if started {
		return flushTo(curIdx + 1)
	}
	return nil
}
