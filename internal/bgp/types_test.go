package bgp

import (
	"testing"
	"testing/quick"
)

func TestCommunityParts(t *testing.T) {
	c := MakeCommunity(13030, 51701)
	if c.AS() != 13030 || c.Value() != 51701 {
		t.Errorf("got AS=%d value=%d", c.AS(), c.Value())
	}
	if c.String() != "13030:51701" {
		t.Errorf("String = %q", c.String())
	}
}

func TestParseCommunity(t *testing.T) {
	c, err := ParseCommunity("13030:2")
	if err != nil || c != MakeCommunity(13030, 2) {
		t.Errorf("ParseCommunity = %v, %v", c, err)
	}
	for _, bad := range []string{"", "13030", "x:2", "13030:y", "70000:1", "1:70000"} {
		if _, err := ParseCommunity(bad); err == nil {
			t.Errorf("ParseCommunity(%q): want error", bad)
		}
	}
}

func TestQuickCommunityRoundTrip(t *testing.T) {
	f := func(as uint16, v uint16) bool {
		c := MakeCommunity(ASN(as), v)
		q, err := ParseCommunity(c.String())
		return err == nil && q == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathEqualCloneContains(t *testing.T) {
	p := Path{1, 2, 3}
	q := p.Clone()
	if !p.Equal(q) {
		t.Error("clone should equal original")
	}
	q[0] = 9
	if p.Equal(q) {
		t.Error("mutated clone should differ")
	}
	if !p.Contains(2) || p.Contains(4) {
		t.Error("Contains wrong")
	}
	if p.Index(3) != 2 || p.Index(7) != -1 {
		t.Error("Index wrong")
	}
	if p.Origin() != 3 || (Path{}).Origin() != 0 {
		t.Error("Origin wrong")
	}
}

func TestPathCompact(t *testing.T) {
	p := Path{1, 1, 1, 2, 3, 3}
	got := p.Compact()
	if !got.Equal(Path{1, 2, 3}) {
		t.Errorf("Compact = %v", got)
	}
	if (Path{}).Compact() != nil {
		t.Error("Compact of empty path should be nil")
	}
}

func TestPathHasLoop(t *testing.T) {
	if (Path{1, 2, 3, 2}).HasLoop() != true {
		t.Error("loop not detected")
	}
	if (Path{1, 1, 2, 3}).HasLoop() {
		t.Error("prepending is not a loop")
	}
	if (Path{1, 2, 3}).HasLoop() {
		t.Error("clean path flagged as loop")
	}
}

func TestPathStrip(t *testing.T) {
	p := Path{1, 99, 2}
	got := p.Strip(map[ASN]bool{99: true})
	if !got.Equal(Path{1, 2}) {
		t.Errorf("Strip = %v", got)
	}
	got = p.Strip(nil)
	if !got.Equal(p) {
		t.Errorf("Strip(nil) = %v", got)
	}
}

func TestPathSuffix(t *testing.T) {
	p := Path{1, 2, 3, 4}
	if !p.Suffix(3).Equal(Path{3, 4}) {
		t.Errorf("Suffix(3) = %v", p.Suffix(3))
	}
	if p.Suffix(9) != nil {
		t.Error("Suffix of absent AS should be nil")
	}
}

func TestPathStringParseRoundTrip(t *testing.T) {
	p := Path{13030, 1299, 2914, 18747}
	got, err := ParsePath(p.String())
	if err != nil || !got.Equal(p) {
		t.Errorf("round trip = %v, %v", got, err)
	}
	if _, err := ParsePath("1 x 3"); err == nil {
		t.Error("want error for bad path")
	}
	empty, err := ParsePath("")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty path parse = %v, %v", empty, err)
	}
}

func TestNormalizeCommunities(t *testing.T) {
	cs := Communities{3, 1, 2, 1}
	got := NormalizeCommunities(cs)
	if !got.Equal(Communities{1, 2, 3}) {
		t.Errorf("Normalize = %v", got)
	}
}

func TestCommunitiesByAS(t *testing.T) {
	cs := Communities{MakeCommunity(10, 1), MakeCommunity(20, 2), MakeCommunity(10, 3)}
	got := cs.ByAS(10)
	if len(got) != 2 {
		t.Errorf("ByAS = %v", got)
	}
}

func TestCommunitiesDiff(t *testing.T) {
	a := NormalizeCommunities(Communities{1, 2, 3, 5})
	b := NormalizeCommunities(Communities{2, 3, 4})
	got := a.Diff(b)
	if !got.Equal(Communities{1, 5}) {
		t.Errorf("Diff = %v", got)
	}
	if d := (Communities{}).Diff(b); len(d) != 0 {
		t.Errorf("empty Diff = %v", d)
	}
}

// Property: Diff(a,b) ∪ (a ∩ b) == a for normalized sets.
func TestQuickCommunitiesDiffPartition(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		var a, b Communities
		for _, x := range xs {
			a = append(a, Community(x%50))
		}
		for _, y := range ys {
			b = append(b, Community(y%50))
		}
		a = NormalizeCommunities(a)
		b = NormalizeCommunities(b)
		onlyA := a.Diff(b)
		// every element of onlyA is in a and not in b
		inB := make(map[Community]bool)
		for _, c := range b {
			inB[c] = true
		}
		for _, c := range onlyA {
			if inB[c] {
				return false
			}
		}
		// every element of a is either in onlyA or in b
		inOnlyA := make(map[Community]bool)
		for _, c := range onlyA {
			inOnlyA[c] = true
		}
		for _, c := range a {
			if !inOnlyA[c] && !inB[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
