// Package bgp models BGP routes, updates, communities, collector peers, and
// per-peer RIB views, plus binary (MRT-like) and text codecs for update
// streams. It is the feed substrate for the BGP-based staleness prediction
// techniques (paper §4.1): the point is not to build an AS-level topology but
// to expose update *dynamics* — AS-path changes, community changes, and
// duplicate updates — per vantage point.
package bgp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rrr/internal/trie"
)

// ASN is an autonomous system number.
type ASN uint32

// String renders the ASN in the conventional "ASxxx" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Community is a standard 32-bit BGP community. By convention the top 16
// bits identify the AS that defines the community and the bottom 16 bits
// carry the AS-specific value (paper §4.1.3, Fig 3).
type Community uint32

// MakeCommunity builds a community from the defining AS and value.
func MakeCommunity(as ASN, value uint16) Community {
	return Community(uint32(as)<<16 | uint32(value))
}

// AS returns the AS that defines the community (top 16 bits).
func (c Community) AS() ASN { return ASN(uint32(c) >> 16) }

// Value returns the AS-specific value (bottom 16 bits).
func (c Community) Value() uint16 { return uint16(c) }

// String renders the community in "AS:value" notation, e.g. "13030:51701".
func (c Community) String() string {
	return fmt.Sprintf("%d:%d", uint32(c)>>16, uint16(c))
}

// ParseCommunity parses "AS:value" notation.
func ParseCommunity(s string) (Community, error) {
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return 0, fmt.Errorf("bgp: bad community %q: missing colon", s)
	}
	as, err1 := strconv.ParseUint(s[:colon], 10, 16)
	val, err2 := strconv.ParseUint(s[colon+1:], 10, 16)
	if err1 != nil || err2 != nil {
		return 0, fmt.Errorf("bgp: bad community %q", s)
	}
	return MakeCommunity(ASN(as), uint16(val)), nil
}

// Path is an AS path: the sequence of ASNs from the vantage point (first
// element) to the origin AS (last element).
type Path []ASN

// Equal reports whether two paths have identical hops.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the path.
func (p Path) Clone() Path {
	if p == nil {
		return nil
	}
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// Contains reports whether the path traverses as.
func (p Path) Contains(as ASN) bool {
	for _, a := range p {
		if a == as {
			return true
		}
	}
	return false
}

// Index returns the position of the first occurrence of as, or -1.
func (p Path) Index(as ASN) int {
	for i, a := range p {
		if a == as {
			return i
		}
	}
	return -1
}

// Origin returns the origin AS (last hop) or 0 for an empty path.
func (p Path) Origin() ASN {
	if len(p) == 0 {
		return 0
	}
	return p[len(p)-1]
}

// Compact collapses consecutive duplicate ASNs (prepending) into one hop.
func (p Path) Compact() Path {
	if len(p) == 0 {
		return nil
	}
	out := make(Path, 0, len(p))
	for _, a := range p {
		if len(out) == 0 || out[len(out)-1] != a {
			out = append(out, a)
		}
	}
	return out
}

// HasLoop reports whether any AS appears in two non-adjacent positions of
// the compacted path.
func (p Path) HasLoop() bool {
	c := p.Compact()
	seen := make(map[ASN]bool, len(c))
	for _, a := range c {
		if seen[a] {
			return true
		}
		seen[a] = true
	}
	return false
}

// Strip returns the path with every AS in remove deleted. It is used to
// strip IXP route-server ASNs so that AS links span IXP members rather than
// the IXP itself (paper §4.1.1).
func (p Path) Strip(remove map[ASN]bool) Path {
	if len(remove) == 0 {
		return p.Clone()
	}
	out := make(Path, 0, len(p))
	for _, a := range p {
		if !remove[a] {
			out = append(out, a)
		}
	}
	return out
}

// Suffix returns the subpath from the first occurrence of as to the origin,
// or nil if as is not on the path.
func (p Path) Suffix(as ASN) Path {
	i := p.Index(as)
	if i < 0 {
		return nil
	}
	return p[i:]
}

// String renders the path as space-separated ASNs, matching the ASPATH line
// of the text codec.
func (p Path) String() string {
	parts := make([]string, len(p))
	for i, a := range p {
		parts[i] = strconv.FormatUint(uint64(a), 10)
	}
	return strings.Join(parts, " ")
}

// ParsePath parses a space-separated list of ASNs.
func ParsePath(s string) (Path, error) {
	fields := strings.Fields(s)
	out := make(Path, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bgp: bad AS path element %q", f)
		}
		out = append(out, ASN(v))
	}
	return out, nil
}

// Communities is a community set. It is kept sorted for fast comparison.
type Communities []Community

// NormalizeCommunities sorts and deduplicates a community set in place and
// returns it.
func NormalizeCommunities(cs Communities) Communities {
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	out := cs[:0]
	for i, c := range cs {
		if i == 0 || c != cs[i-1] {
			out = append(out, c)
		}
	}
	return out
}

// Equal reports whether two normalized community sets are identical.
func (cs Communities) Equal(other Communities) bool {
	if len(cs) != len(other) {
		return false
	}
	for i := range cs {
		if cs[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (cs Communities) Clone() Communities {
	if cs == nil {
		return nil
	}
	out := make(Communities, len(cs))
	copy(out, cs)
	return out
}

// ByAS returns the subset of communities defined by as.
func (cs Communities) ByAS(as ASN) Communities {
	var out Communities
	for _, c := range cs {
		if c.AS() == as {
			out = append(out, c)
		}
	}
	return out
}

// Diff returns the communities present in cs but not in other. Both sets
// must be normalized.
func (cs Communities) Diff(other Communities) Communities {
	var out Communities
	i, j := 0, 0
	for i < len(cs) {
		switch {
		case j >= len(other) || cs[i] < other[j]:
			out = append(out, cs[i])
			i++
		case cs[i] == other[j]:
			i++
			j++
		default:
			j++
		}
	}
	return out
}

// String renders the set as space-separated "AS:value" tokens.
func (cs Communities) String() string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ")
}

// UpdateType distinguishes announcements from withdrawals.
type UpdateType uint8

// Update types.
const (
	Announce UpdateType = iota
	Withdraw
)

// String names the update type.
func (t UpdateType) String() string {
	if t == Withdraw {
		return "WITHDRAW"
	}
	return "ANNOUNCE"
}

// Update is one BGP update observed at a route collector from a peer
// (vantage point). Time is seconds since the simulation epoch (or Unix
// seconds for real feeds). MED is a non-transitive attribute: a change in
// MED alone produces a "duplicate" update downstream (paper §4.1.4).
type Update struct {
	Time        int64
	PeerIP      uint32
	PeerAS      ASN
	Type        UpdateType
	Prefix      trie.Prefix
	ASPath      Path
	Communities Communities
	MED         uint32
}

// Route is the state a VP holds for a prefix: the attributes from the most
// recent announcement.
type Route struct {
	Prefix      trie.Prefix
	ASPath      Path
	Communities Communities
	MED         uint32
	Updated     int64
}

// VPKey identifies a vantage point: a router peering with a collector.
type VPKey struct {
	PeerIP uint32
	PeerAS ASN
}

// String renders the VP as "ip (ASx)".
func (k VPKey) String() string {
	return fmt.Sprintf("%s (%s)", trie.FormatIP(k.PeerIP), k.PeerAS)
}
