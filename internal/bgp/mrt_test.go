package bgp

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"rrr/internal/trie"
)

func TestMRTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var in []Update
	for i := 0; i < 150; i++ {
		u := randomUpdate(rng)
		u.Time = int64(uint32(u.Time)) // MRT timestamps are 32-bit
		if u.Type == Announce && len(u.ASPath) == 0 {
			u.ASPath = Path{1}
		}
		in = append(in, u)
	}
	var buf bytes.Buffer
	w := NewMRTWriter(&buf)
	for _, u := range in {
		if err := w.Write(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewMRTReader(&buf)
	var got []Update
	for {
		batch, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, batch...)
	}
	if len(got) != len(in) {
		t.Fatalf("got %d updates; want %d", len(got), len(in))
	}
	for i := range in {
		want := canonical(in[i])
		have := canonical(got[i])
		// The writer does not preserve normalized community order; the
		// reader yields them as written. Compare normalized.
		want.Communities = NormalizeCommunities(want.Communities)
		have.Communities = NormalizeCommunities(have.Communities)
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("update %d:\n got %+v\nwant %+v", i, have, want)
		}
	}
}

func TestMRTMultiPrefixUpdate(t *testing.T) {
	// Hand-build a BGP UPDATE with two NLRI prefixes and one withdrawal,
	// then verify it expands to three Updates.
	u1 := Update{Time: 100, PeerIP: 0x01020304, PeerAS: 65000, Type: Announce,
		Prefix: trie.MakePrefix(0x0a000000, 8), ASPath: Path{65000, 1}, MED: 5}
	msg, err := encodeBGPUpdate(u1)
	if err != nil {
		t.Fatal(err)
	}
	// Append a second NLRI prefix 11.0.0.0/8 to the message.
	msg = append(msg, encodeNLRI(trie.MakePrefix(0x0b000000, 8))...)
	// Fix the total message length.
	msg[16] = byte(len(msg) >> 8)
	msg[17] = byte(len(msg))

	ups, err := parseBGPUpdate(msg[19:], true, 100, u1.PeerIP, u1.PeerAS)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2 {
		t.Fatalf("got %d updates; want 2", len(ups))
	}
	if ups[0].Prefix.String() != "10.0.0.0/8" || ups[1].Prefix.String() != "11.0.0.0/8" {
		t.Fatalf("prefixes = %v, %v", ups[0].Prefix, ups[1].Prefix)
	}
	if !ups[1].ASPath.Equal(Path{65000, 1}) || ups[1].MED != 5 {
		t.Fatalf("attributes not shared across NLRI: %+v", ups[1])
	}
}

func TestMRTTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewMRTWriter(&buf)
	u := Update{Time: 1, PeerIP: 2, PeerAS: 3, Type: Announce,
		Prefix: trie.MakePrefix(0x0a000000, 8), ASPath: Path{3, 4}}
	if err := w.Write(u); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 3 {
		r := NewMRTReader(bytes.NewReader(full[:cut]))
		if _, err := r.Read(); err == nil {
			t.Fatalf("truncated at %d: want error", cut)
		}
	}
}

func TestMRTSkipsUnknownRecords(t *testing.T) {
	var buf bytes.Buffer
	// An OSPF (type 11) record, then a real update.
	hdr := make([]byte, 12)
	hdr[5] = 11
	hdr[11] = 4
	buf.Write(hdr)
	buf.Write([]byte{1, 2, 3, 4})
	w := NewMRTWriter(&buf)
	u := Update{Time: 9, PeerIP: 7, PeerAS: 8, Type: Announce,
		Prefix: trie.MakePrefix(0x0a000000, 8), ASPath: Path{8}}
	w.Write(u)
	w.Flush()
	r := NewMRTReader(&buf)
	got, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].PeerAS != 8 {
		t.Fatalf("got %+v", got)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestParseASPathSegments(t *testing.T) {
	// AS_SET{10,20} followed by AS_SEQUENCE{30}.
	b := []byte{
		asPathSetSegment, 2, 0, 0, 0, 10, 0, 0, 0, 20,
		asPathSequenceSegment, 1, 0, 0, 0, 30,
	}
	p, err := parseASPath(b, true)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Path{10, 20, 30}) {
		t.Fatalf("path = %v", p)
	}
	if _, err := parseASPath([]byte{9, 1, 0, 0}, true); err == nil {
		t.Fatal("unknown segment type accepted")
	}
}

func TestParseNLRIBoundaries(t *testing.T) {
	// /0, /8, /17, /32 in one blob.
	blob := append([]byte{0}, encodeNLRI(trie.MakePrefix(0x0a000000, 8))...)
	blob = append(blob, encodeNLRI(trie.MakePrefix(0x0a808000, 17))...)
	blob = append(blob, encodeNLRI(trie.MakePrefix(0x0a0a0a0a, 32))...)
	ps, err := parseNLRI(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0.0.0.0/0", "10.0.0.0/8", "10.128.128.0/17", "10.10.10.10/32"}
	if len(ps) != len(want) {
		t.Fatalf("got %d prefixes", len(ps))
	}
	for i := range want {
		if ps[i].String() != want[i] {
			t.Errorf("prefix %d = %s; want %s", i, ps[i], want[i])
		}
	}
	if _, err := parseNLRI([]byte{33}); err == nil {
		t.Fatal("prefix length 33 accepted")
	}
	if _, err := parseNLRI([]byte{24, 1}); err == nil {
		t.Fatal("short prefix bytes accepted")
	}
}

func TestRIBDumpRoundTrip(t *testing.T) {
	// Build a RIB from random announcements, dump it, read it back, and
	// verify the reconstructed RIB matches route for route.
	rng := rand.New(rand.NewSource(21))
	src := NewRIB()
	for i := 0; i < 120; i++ {
		u := randomUpdate(rng)
		if u.Type == Withdraw {
			continue
		}
		u.Time = int64(uint32(u.Time))
		if len(u.ASPath) == 0 {
			u.ASPath = Path{1}
		}
		src.Apply(u)
	}
	var buf bytes.Buffer
	if err := WriteRIBDump(&buf, src, 777); err != nil {
		t.Fatal(err)
	}
	dr := NewRIBDumpReader(&buf)
	rebuilt := NewRIB()
	n := 0
	for {
		u, err := dr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rebuilt.Apply(u)
		n++
	}
	if n == 0 {
		t.Fatal("dump produced no updates")
	}
	for _, vp := range src.VPs() {
		for _, p := range src.Prefixes(vp) {
			want, _ := src.Route(vp, p)
			got, ok := rebuilt.Route(vp, p)
			if !ok {
				t.Fatalf("route %s %s missing after round trip", vp, p)
			}
			if !want.ASPath.Equal(got.ASPath) {
				t.Fatalf("path mismatch for %s %s: %v vs %v", vp, p, want.ASPath, got.ASPath)
			}
			if !want.Communities.Equal(got.Communities) {
				t.Fatalf("communities mismatch for %s %s", vp, p)
			}
			if want.MED != got.MED {
				t.Fatalf("MED mismatch for %s %s", vp, p)
			}
		}
	}
}

func TestRIBDumpUnknownPeerRejected(t *testing.T) {
	var buf bytes.Buffer
	dw := NewRIBDumpWriter(&buf, []VPKey{{PeerIP: 1, PeerAS: 2}})
	err := dw.WritePrefix(trie.MakePrefix(0x0a000000, 8), []RIBEntry{
		{Peer: VPKey{PeerIP: 9, PeerAS: 9}, ASPath: Path{9}},
	})
	if err == nil {
		t.Fatal("unknown peer accepted")
	}
}

func TestRIBDumpReaderRejectsOrphanRecord(t *testing.T) {
	// A RIB record with no preceding peer index table is an error.
	var buf bytes.Buffer
	dw := NewRIBDumpWriter(&buf, []VPKey{{PeerIP: 1, PeerAS: 2}})
	dw.DumpTime = 5
	if err := dw.WritePrefix(trie.MakePrefix(0x0a000000, 8), []RIBEntry{
		{Peer: VPKey{PeerIP: 1, PeerAS: 2}, ASPath: Path{2}},
	}); err != nil {
		t.Fatal(err)
	}
	dw.Flush()
	full := buf.Bytes()
	// Strip the index record: first record length is at bytes 8..12.
	ixLen := 12 + int(uint32(full[8])<<24|uint32(full[9])<<16|uint32(full[10])<<8|uint32(full[11]))
	dr := NewRIBDumpReader(bytes.NewReader(full[ixLen:]))
	if _, err := dr.Read(); err == nil {
		t.Fatal("orphan RIB record accepted")
	}
}
