package cluster

import (
	"strconv"
	"sync"
	"time"

	"rrr/internal/obs"
)

// Breaker states, exported via the rrr_router_breaker_state gauge.
const (
	breakerClosed   = 0
	breakerOpen     = 1
	breakerHalfOpen = 2
)

// Breaker tuning defaults; overridable via Options / rrrd-router flags.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 500 * time.Millisecond
)

// breaker is a per-worker circuit breaker. Closed passes traffic through;
// `threshold` consecutive sub-request failures open it, after which the
// router stops routing to the worker (partitions fail over to their
// standby). Once `cooldown` has elapsed, the first allow() call moves the
// breaker to half-open and wins the exclusive right to launch a single
// /readyz probe; concurrent requests keep failing over until the probe
// reports back. A successful probe (or any successful sub-request, e.g.
// from the router's own /readyz fanout) closes the breaker again.
type breaker struct {
	worker    int
	threshold int
	cooldown  time.Duration
	gauge     *obs.Gauge

	mu     sync.Mutex
	state  int
	fails  int
	opened time.Time
}

func newBreaker(worker, threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	b := &breaker{
		worker:    worker,
		threshold: threshold,
		cooldown:  cooldown,
		gauge:     obs.Default.Gauge("rrr_router_breaker_state", "worker", strconv.Itoa(worker)),
	}
	b.gauge.Set(breakerClosed)
	return b
}

// allow reports whether regular traffic may be routed to the worker. When
// an open breaker's cooldown has elapsed, exactly one caller additionally
// receives probe=true and must launch the half-open /readyz probe.
func (b *breaker) allow(now time.Time) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.opened) >= b.cooldown {
			b.state = breakerHalfOpen
			b.gauge.Set(breakerHalfOpen)
			return false, true
		}
		return false, false
	default: // half-open: a probe is in flight, keep traffic on the standby
		return false, false
	}
}

// onSuccess records a successful sub-request: any success closes the
// breaker and clears the failure streak.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		b.state = breakerClosed
		b.gauge.Set(breakerClosed)
	}
	b.fails = 0
}

// onFailure records a failed or timed-out sub-request. It reports whether
// this failure opened a previously-closed breaker.
func (b *breaker) onFailure(now time.Time) (openedNow bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	switch b.state {
	case breakerClosed:
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.opened = now
			b.gauge.Set(breakerOpen)
			return true
		}
	case breakerHalfOpen:
		// A failure while half-open (the probe itself, or a stray
		// in-flight request) re-opens and restarts the cooldown.
		b.state = breakerOpen
		b.opened = now
		b.gauge.Set(breakerOpen)
	}
	return false
}

// onProbe records the half-open probe's outcome.
func (b *breaker) onProbe(ok bool, now time.Time) {
	if ok {
		b.onSuccess()
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerOpen
	b.opened = now
	b.gauge.Set(breakerOpen)
}

// snapshot returns the state for /v1/cluster reporting.
func (b *breaker) snapshot() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
