package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rrr"
	"rrr/internal/events"
	"rrr/internal/obs"
	"rrr/internal/server"
)

// Options tunes a Router.
type Options struct {
	// Workers are the worker base URLs, indexed by worker ID; their order
	// must match the -worker-id each daemon was started with.
	Workers []string
	// Partitions is the ring's partition count (0 = DefaultPartitions).
	// Must equal the workers' -partitions.
	Partitions int
	// Timeout bounds each worker sub-request (0 = 2s). A worker that
	// exceeds it is retried once, then reported unavailable.
	Timeout time.Duration
	// RingSize is the per-SSE-subscriber frame buffer (0 = 256).
	RingSize int
	// Heartbeat is the merged stream's keepalive interval (0 = 15s).
	Heartbeat time.Duration
	// MaxBatch caps POST /v1/stale keys (0 = 10000), mirroring the
	// worker-side default so the router rejects before fanning out.
	MaxBatch int
	// StreamBackoff is the initial worker-stream reconnect delay
	// (0 = 100ms; doubles to a 2s cap).
	StreamBackoff time.Duration
	// MaxInFlight bounds concurrently-served router requests (0 = 1024).
	// Requests past the bound are shed with 429 + Retry-After. Probe,
	// metrics, and SSE stream endpoints are exempt (server.OverloadExempt).
	MaxInFlight int
	// BreakerThreshold is the consecutive sub-request failures that open a
	// worker's circuit breaker (0 = DefaultBreakerThreshold).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects traffic before a
	// half-open /readyz probe (0 = DefaultBreakerCooldown).
	BreakerCooldown time.Duration
}

// DefaultRouterMaxInFlight is the Options.MaxInFlight default.
const DefaultRouterMaxInFlight = 1024

// Router is the cluster's stateless front end: it owns no monitor state,
// only the ring (to route), an HTTP client (to fan out), and the stream
// merger (to order). Restarting a router loses nothing but SSE
// subscriptions.
type Router struct {
	ring     *Ring
	opts     Options
	mux      *http.ServeMux
	hub      *frameHub
	merger   *merger
	breakers []*breaker
	inflight atomic.Int64
	cancel   context.CancelFunc
	done     sync.WaitGroup
}

// NewRouter builds the router and starts its worker stream subscriptions;
// Close releases them.
func NewRouter(opts Options) (*Router, error) {
	ring, err := NewRing(len(opts.Workers), opts.Partitions)
	if err != nil {
		return nil, err
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 15 * time.Second
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 10000
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = DefaultRouterMaxInFlight
	}
	for i, u := range opts.Workers {
		opts.Workers[i] = strings.TrimRight(u, "/")
	}
	rt := &Router{ring: ring, opts: opts, mux: http.NewServeMux(), hub: newFrameHub(opts.RingSize)}
	rt.merger = newMerger(len(opts.Workers), rt.hub, ring)
	rt.breakers = make([]*breaker, len(opts.Workers))
	for i := range rt.breakers {
		rt.breakers[i] = newBreaker(i, opts.BreakerThreshold, opts.BreakerCooldown)
	}

	rt.mux.HandleFunc("GET /v1/stale/{key}", rt.handleStaleOne)
	rt.mux.HandleFunc("POST /v1/stale", rt.handleStaleBatch)
	rt.mux.HandleFunc("GET /v1/keys", rt.handleKeys)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("GET /v1/cluster", rt.handleCluster)
	rt.mux.HandleFunc("GET /v1/signals", rt.handleSignals)
	rt.mux.HandleFunc("GET /v1/events", rt.handleEventsGet)
	rt.mux.HandleFunc("POST /v1/events", rt.handleEventsQuery)
	rt.mux.HandleFunc("POST /v1/refresh/plan", rt.handleRefreshPlan)
	rt.mux.HandleFunc("POST /v1/refresh/record", rt.handleRefreshRecord)
	rt.mux.HandleFunc("POST /v1/snapshot", rt.handleSnapshot)
	rt.mux.Handle("GET /metrics", obs.Default.Handler())
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)

	ctx, cancel := context.WithCancel(context.Background())
	rt.cancel = cancel
	for i := range opts.Workers {
		c := newSSEClient(i, opts.Workers[i], rt.merger, opts.StreamBackoff)
		rt.done.Add(1)
		go func() {
			defer rt.done.Done()
			c.run(ctx)
		}()
	}
	return rt, nil
}

// Handler returns the router's HTTP handler tree, wrapped with bounded
// in-flight admission: past opts.MaxInFlight the router sheds with
// 429 + Retry-After instead of stacking goroutines into latency collapse.
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		metRouterRequests.Inc()
		if server.OverloadExempt(r.URL.Path) {
			rt.mux.ServeHTTP(w, r)
			return
		}
		n := rt.inflight.Add(1)
		metRouterInflight.Set(n)
		defer func() { metRouterInflight.Set(rt.inflight.Add(-1)) }()
		if n > int64(rt.opts.MaxInFlight) {
			metRouterShed.Inc()
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests,
				fmt.Sprintf("overloaded: %d requests in flight (limit %d)", n, rt.opts.MaxInFlight))
			return
		}
		rt.mux.ServeHTTP(w, r)
	})
}

// Ring exposes the placement (for worker-mode corpus filtering and tests).
func (rt *Router) Ring() *Ring { return rt.ring }

// StreamConnected reports whether every worker signal stream is attached;
// differential harnesses wait for it before releasing feeds.
func (rt *Router) StreamConnected() bool { return rt.merger.allConnected() }

// Subscribers reports attached merged-stream clients.
func (rt *Router) Subscribers() int { return rt.hub.subscribers() }

// Close stops the worker stream subscriptions.
func (rt *Router) Close() {
	rt.cancel()
	rt.done.Wait()
}

// --- worker fan-out ---

type workerResp struct {
	status int
	body   []byte
}

// describeAttempt renders one attempt's outcome for partial-failure bodies.
func describeAttempt(wr *workerResp, err error) string {
	if err != nil {
		return err.Error()
	}
	return fmt.Sprintf("status %d", wr.status)
}

// do issues one worker sub-request, retrying once on transport failure or
// 5xx. Both attempts share a single deadline budget (opts.Timeout measured
// from the first attempt's start) so a retry cannot double the effective
// timeout, and the remaining budget is propagated to the worker via
// server.DeadlineHeader so it abandons work the router will discard. Every
// outcome feeds the worker's circuit breaker; the final error carries the
// first attempt's status context so partial-failure bodies say what
// actually happened, not just that the retry failed.
func (rt *Router) do(ctx context.Context, method string, worker int, path string, body []byte) (*workerResp, error) {
	dctx, cancel := context.WithTimeout(ctx, rt.opts.Timeout)
	defer cancel()
	deadline, _ := dctx.Deadline()
	attempt := func() (*workerResp, error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(dctx, method, rt.opts.Workers[worker]+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if ms := time.Until(deadline).Milliseconds(); ms > 0 {
			req.Header.Set(server.DeadlineHeader, strconv.FormatInt(ms, 10))
		}
		metRouterFanout.Inc()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		return &workerResp{status: resp.StatusCode, body: data}, nil
	}
	wr, err := attempt()
	if err == nil && wr.status < 500 {
		rt.breakers[worker].onSuccess()
		return wr, nil
	}
	first := describeAttempt(wr, err)
	retried := false
	if dctx.Err() == nil {
		metRouterRetries.Inc()
		retried = true
		wr, err = attempt()
		if err == nil && wr.status < 500 {
			rt.breakers[worker].onSuccess()
			return wr, nil
		}
	}
	rt.workerFailed(worker)
	metRouterWorkerErrs.Inc()
	last := describeAttempt(wr, err)
	if retried && last != first {
		return nil, fmt.Errorf("cluster: worker %d %s %s: %s (first attempt: %s)", worker, method, path, last, first)
	}
	return nil, fmt.Errorf("cluster: worker %d %s %s: %s", worker, method, path, last)
}

// workerFailed feeds a sub-request failure to the worker's breaker.
func (rt *Router) workerFailed(worker int) {
	if rt.breakers[worker].onFailure(time.Now()) {
		metRouterBreakerOpens.Inc()
	}
}

// workerUp reports whether the worker's breaker admits regular traffic,
// launching the exclusive half-open /readyz probe when the cooldown of an
// open breaker has elapsed.
func (rt *Router) workerUp(worker int) bool {
	ok, probe := rt.breakers[worker].allow(time.Now())
	if probe {
		go rt.probe(worker)
	}
	return ok
}

// probe is the half-open recovery check: one GET /readyz, bypassing do()
// so a failed probe doesn't double-count through the breaker.
func (rt *Router) probe(worker int) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opts.Timeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.opts.Workers[worker]+"/readyz", nil)
	if err == nil {
		if resp, derr := http.DefaultClient.Do(req); derr == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	rt.breakers[worker].onProbe(ok, time.Now())
}

// replicaOrder lists the workers to try for a key's partition: primary
// first, demoted behind the standby while its breaker is open.
func (rt *Router) replicaOrder(p int) []int {
	reps := rt.ring.Replicas(p)
	if len(reps) == 2 && !rt.workerUp(reps[0]) && rt.workerUp(reps[1]) {
		reps[0], reps[1] = reps[1], reps[0]
	}
	return reps
}

// unavailablePartitions lists, ascending, every partition with no live
// replica among the given down workers — under RF=2 a single down worker
// blacks out nothing, because every partition it owns has a standby.
func (rt *Router) unavailablePartitions(down []int) []int {
	isDown := make(map[int]bool, len(down))
	for _, w := range down {
		isDown[w] = true
	}
	var parts []int
	for p := 0; p < rt.ring.Partitions(); p++ {
		alive := false
		for _, w := range rt.ring.Replicas(p) {
			if !isDown[w] {
				alive = true
				break
			}
		}
		if !alive {
			parts = append(parts, p)
		}
	}
	sort.Ints(parts)
	return parts
}

// --- verdict routing ---

func (rt *Router) handleStaleOne(w http.ResponseWriter, r *http.Request) {
	k, err := server.ParseKey(r.PathValue("key"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	p := rt.ring.PartitionOf(k)
	order := rt.replicaOrder(p)
	var errs []string
	for i, worker := range order {
		wr, err := rt.do(r.Context(), http.MethodGet, worker, "/v1/stale/"+r.PathValue("key"), nil)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		if worker != rt.ring.OwnerOfPartition(p) || i > 0 {
			metRouterFailovers.Inc()
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(wr.status)
		w.Write(wr.body)
		return
	}
	metRouterPartial.Inc()
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":                 fmt.Sprintf("all replicas of partition %d unavailable", p),
		"workerErrors":          errs,
		"unavailablePartitions": rt.unavailablePartitions(order),
	})
}

// subBatchResp is the worker's batch-staleness shape with verdict bodies
// kept raw for splicing.
type subBatchResp struct {
	Stale    int               `json:"stale"`
	Count    int               `json:"count"`
	Verdicts []json.RawMessage `json:"verdicts"`
}

func (rt *Router) handleStaleBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Keys) == 0 {
		writeErr(w, http.StatusBadRequest, "no keys")
		return
	}
	if len(req.Keys) > rt.opts.MaxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d keys exceeds batch limit %d", len(req.Keys), rt.opts.MaxBatch))
		return
	}
	// Each key routes to its partition's designated replica: the primary,
	// unless the primary's breaker is open and the standby's isn't. Keys
	// whose round-one worker fails are regrouped onto their alternate
	// replica for a second round; a standby's verdicts are byte-identical
	// to the primary's (same full feed, same tracked slice), so a failover
	// is invisible in the response.
	parts := make([]int, len(req.Keys))
	for i, ks := range req.Keys {
		k, err := server.ParseKey(ks)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		parts[i] = rt.ring.PartitionOf(k)
	}
	verdicts := make([]json.RawMessage, len(req.Keys))
	stale := 0
	workerErrs := map[int]string{}
	var mu sync.Mutex // guards stale + workerErrs across a round's goroutines

	// runRound fans per-worker sub-batches out concurrently; group maps a
	// worker to the request indices it should answer. Failed workers keep
	// their indices unfilled and are reported back.
	runRound := func(group map[int][]int) map[int]bool {
		failed := map[int]bool{}
		var wg sync.WaitGroup
		for worker, idxs := range group {
			wg.Add(1)
			go func(worker int, idxs []int) {
				defer wg.Done()
				ks := make([]string, len(idxs))
				for j, i := range idxs {
					ks[j] = req.Keys[i]
				}
				body, _ := json.Marshal(map[string]any{"keys": ks})
				wr, err := rt.do(r.Context(), http.MethodPost, worker, "/v1/stale", body)
				if err == nil && wr.status != http.StatusOK {
					err = fmt.Errorf("worker %d: status %d", worker, wr.status)
				}
				var sub subBatchResp
				if err == nil {
					if uerr := json.Unmarshal(wr.body, &sub); uerr != nil {
						err = fmt.Errorf("worker %d: %v", worker, uerr)
					} else if len(sub.Verdicts) != len(idxs) {
						err = fmt.Errorf("worker %d: %d verdicts for %d keys", worker, len(sub.Verdicts), len(idxs))
					}
				}
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					failed[worker] = true
					workerErrs[worker] = err.Error()
					return
				}
				for j, i := range idxs {
					verdicts[i] = sub.Verdicts[j]
				}
				stale += sub.Stale
			}(worker, idxs)
		}
		wg.Wait()
		return failed
	}

	group1 := map[int][]int{}
	for i := range req.Keys {
		designated := rt.replicaOrder(parts[i])[0]
		group1[designated] = append(group1[designated], i)
	}
	failed1 := runRound(group1)

	var lost []int // request indices with no live replica left to try
	if len(failed1) > 0 {
		group2 := map[int][]int{}
		for worker := range failed1 {
			for _, i := range group1[worker] {
				alt := -1
				for _, cand := range rt.ring.Replicas(parts[i]) {
					if cand == worker || failed1[cand] || !rt.workerUp(cand) {
						continue
					}
					alt = cand
					break
				}
				if alt < 0 {
					lost = append(lost, i)
					continue
				}
				group2[alt] = append(group2[alt], i)
			}
		}
		if len(group2) > 0 {
			for _, idxs := range group2 {
				metRouterFailovers.Add(uint64(len(idxs)))
			}
			failed2 := runRound(group2)
			for worker := range failed2 {
				lost = append(lost, group2[worker]...)
			}
		}
	}

	// Positional placeholders keep count == len(keys) and the response
	// order aligned with the request; visibility "unavailable" is the
	// partition-down analogue of "untracked". With replication it takes
	// every replica of a partition failing to get here.
	unavailSet := map[int]bool{}
	for _, i := range lost {
		unavailSet[parts[i]] = true
		verdicts[i] = json.RawMessage(fmt.Sprintf(
			`{"key":%q,"tracked":false,"stale":false,"visibility":"unavailable","potentialMonitors":0}`,
			req.Keys[i]))
	}
	unavailParts := make([]int, 0, len(unavailSet))
	for p := range unavailSet {
		unavailParts = append(unavailParts, p)
	}
	sort.Ints(unavailParts)

	size := 0
	for i := range verdicts {
		size += len(verdicts[i]) + 1
	}
	var buf bytes.Buffer
	buf.Grow(size + 96)
	buf.WriteString(`{"stale":`)
	buf.WriteString(strconv.Itoa(stale))
	buf.WriteString(`,"count":`)
	buf.WriteString(strconv.Itoa(len(verdicts)))
	if len(unavailParts) > 0 {
		metRouterPartial.Inc()
		enc, _ := json.Marshal(unavailParts)
		buf.WriteString(`,"unavailablePartitions":`)
		buf.Write(enc)
	}
	if len(workerErrs) > 0 && len(lost) > 0 {
		workers := make([]int, 0, len(workerErrs))
		for worker := range workerErrs {
			workers = append(workers, worker)
		}
		sort.Ints(workers)
		buf.WriteString(`,"workerErrors":{`)
		for j, worker := range workers {
			if j > 0 {
				buf.WriteByte(',')
			}
			enc, _ := json.Marshal(workerErrs[worker])
			fmt.Fprintf(&buf, `"%d":%s`, worker, enc)
		}
		buf.WriteByte('}')
	}
	buf.WriteString(`,"verdicts":[`)
	for i := range verdicts {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(verdicts[i])
	}
	buf.WriteString("]}\n")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// --- merged reads ---

// fanoutAll issues the same GET to every worker concurrently, returning
// per-worker bodies and the list of workers that are down — either their
// breaker is open (no request is sent) or the request failed after retry.
// Because every partition has a replica on two workers, a down worker
// does not by itself make any data unavailable; callers decide with
// unavailablePartitions(down).
func (rt *Router) fanoutAll(ctx context.Context, path string) ([][]byte, []int) {
	return rt.fanoutAllBody(ctx, http.MethodGet, path, nil)
}

// fanoutAllBody is fanoutAll for requests with an optional body.
func (rt *Router) fanoutAllBody(ctx context.Context, method, path string, body []byte) ([][]byte, []int) {
	K := rt.ring.Workers()
	bodies := make([][]byte, K)
	failed := make([]bool, K)
	var wg sync.WaitGroup
	for worker := 0; worker < K; worker++ {
		if !rt.workerUp(worker) {
			failed[worker] = true
			continue
		}
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wr, err := rt.do(ctx, method, worker, path, body)
			if err != nil || wr.status != http.StatusOK {
				failed[worker] = true
				return
			}
			bodies[worker] = wr.body
		}(worker)
	}
	wg.Wait()
	var down []int
	for worker, f := range failed {
		if f {
			down = append(down, worker)
		}
	}
	return bodies, down
}

// fanoutProbe issues a GET to every worker regardless of breaker state —
// the router's own /readyz doubles as the cluster's recovery sweep, since
// every success feeds the worker's breaker through do().
func (rt *Router) fanoutProbe(ctx context.Context, path string) ([][]byte, []int) {
	K := rt.ring.Workers()
	bodies := make([][]byte, K)
	failed := make([]bool, K)
	var wg sync.WaitGroup
	for worker := 0; worker < K; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wr, err := rt.do(ctx, http.MethodGet, worker, path, nil)
			if err != nil || wr.status != http.StatusOK {
				failed[worker] = true
				return
			}
			bodies[worker] = wr.body
		}(worker)
	}
	wg.Wait()
	var down []int
	for worker, f := range failed {
		if f {
			down = append(down, worker)
		}
	}
	return bodies, down
}

// parsedEvent pairs one worker routing event's ordering form with its wire
// bytes, for union-dedup merging.
type parsedEvent struct {
	ev  events.Event
	raw json.RawMessage
}

// mergeEventBodies union-dedups the workers' /v1/events responses: every
// worker ingests the full feed and runs an identical detector, so merged
// output is a single worker's list — verified byte for byte by keying the
// dedup on the raw wire form and re-emitting those exact bytes.
func mergeEventBodies(bodies [][]byte) ([]json.RawMessage, error) {
	seen := make(map[string]bool)
	var merged []parsedEvent
	for i, body := range bodies {
		if body == nil {
			continue
		}
		var sub struct {
			Events []json.RawMessage `json:"events"`
		}
		if err := json.Unmarshal(body, &sub); err != nil {
			return nil, fmt.Errorf("worker %d events: %v", i, err)
		}
		for _, raw := range sub.Events {
			if seen[string(raw)] {
				continue
			}
			seen[string(raw)] = true
			ev, err := server.ParseEvent(raw)
			if err != nil {
				return nil, fmt.Errorf("worker %d events: %v", i, err)
			}
			merged = append(merged, parsedEvent{ev: ev, raw: raw})
		}
	}
	sort.SliceStable(merged, func(i, j int) bool { return events.EventLess(merged[i].ev, merged[j].ev) })
	out := make([]json.RawMessage, len(merged))
	for i, pe := range merged {
		out[i] = pe.raw
	}
	return out, nil
}

// writeEventsMerged splices pre-rendered worker event bodies into the
// exact response shape a single worker serves ({"count":N,"events":[...]}).
func writeEventsMerged(w http.ResponseWriter, merged []json.RawMessage) {
	size := 0
	for _, raw := range merged {
		size += len(raw) + 1
	}
	var buf bytes.Buffer
	buf.Grow(size + 48)
	buf.WriteString(`{"count":`)
	buf.WriteString(strconv.Itoa(len(merged)))
	buf.WriteString(`,"events":[`)
	for i, raw := range merged {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(raw)
	}
	buf.WriteString("]}\n")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

func (rt *Router) handleEventsGet(w http.ResponseWriter, r *http.Request) {
	bodies, down := rt.fanoutAll(r.Context(), "/v1/events")
	// Routing events are detected identically by every full-feed worker,
	// so any single responder carries the complete list.
	if len(down) == rt.ring.Workers() {
		metRouterPartial.Inc()
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":                 "no workers reachable",
			"unavailablePartitions": rt.unavailablePartitions(down),
		})
		return
	}
	merged, err := mergeEventBodies(bodies)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err.Error())
		return
	}
	writeEventsMerged(w, merged)
}

func (rt *Router) handleEventsQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	bodies, down := rt.fanoutAllBody(r.Context(), http.MethodPost, "/v1/events", body)
	if len(down) == rt.ring.Workers() {
		metRouterPartial.Inc()
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":                 "no workers reachable",
			"unavailablePartitions": rt.unavailablePartitions(down),
		})
		return
	}
	merged, err := mergeEventBodies(bodies)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err.Error())
		return
	}
	writeEventsMerged(w, merged)
}

func (rt *Router) handleKeys(w http.ResponseWriter, r *http.Request) {
	path := "/v1/keys"
	if r.URL.Query().Get("stale") == "1" {
		path += "?stale=1"
	}
	bodies, down := rt.fanoutAll(r.Context(), path)
	// Replication makes a single down worker invisible here: every
	// partition it owns is also tracked by its standby, whose key list
	// fills the hole, and mergeKeys drops the replica duplicates. Only a
	// partition with no live replica makes the merged list incomplete.
	if uncovered := rt.unavailablePartitions(down); len(uncovered) > 0 {
		metRouterPartial.Inc()
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":                 fmt.Sprintf("%d of %d workers unavailable", len(down), rt.ring.Workers()),
			"unavailablePartitions": uncovered,
		})
		return
	}
	parts := make([][]string, 0, len(bodies))
	for i, body := range bodies {
		if body == nil {
			continue
		}
		var resp struct {
			Keys []string `json:"keys"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			writeErr(w, http.StatusBadGateway, fmt.Sprintf("worker %d keys: %v", i, err))
			return
		}
		parts = append(parts, resp.Keys)
	}
	merged, err := mergeKeys(parts)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"keys": merged, "count": len(merged)})
}

// clusterStats is the merged /v1/stats wire form: the single-daemon shape
// plus, only when degraded, the down workers and (if any partition has no
// live replica at all) the unavailable-partition list. A healthy cluster's
// bytes carry neither field.
type clusterStats struct {
	server.Stats
	DegradedWorkers       []int `json:"degradedWorkers,omitempty"`
	UnavailablePartitions []int `json:"unavailablePartitions,omitempty"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	bodies, down := rt.fanoutAll(r.Context(), "/v1/stats")
	var parts []server.Stats
	for i, body := range bodies {
		if body == nil {
			continue
		}
		var st server.Stats
		if err := json.Unmarshal(body, &st); err != nil {
			writeErr(w, http.StatusBadGateway, fmt.Sprintf("worker %d stats: %v", i, err))
			return
		}
		parts = append(parts, st)
	}
	if len(parts) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":                 "no workers reachable",
			"unavailablePartitions": rt.unavailablePartitions(down),
		})
		return
	}
	merged, err := mergeStats(parts, rt.hub.subscribers())
	if err != nil {
		writeErr(w, http.StatusBadGateway, err.Error())
		return
	}
	out := clusterStats{Stats: merged}
	if len(down) > 0 {
		// With responders missing, the replica-sum division in mergeStats
		// is approximate (a down worker's partitions are counted once, the
		// rest twice); flag the degradation rather than hide it.
		metRouterPartial.Inc()
		out.DegradedWorkers = down
		out.UnavailablePartitions = rt.unavailablePartitions(down)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCluster is the router's own topology endpoint: per-worker
// identity, readiness, and unmerged stats — the debuggable counterpart of
// the anonymous sums /v1/stats serves.
func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	type workerInfo struct {
		ID                int             `json:"id"`
		URL               string          `json:"url"`
		Partitions        int             `json:"partitions"`
		StandbyPartitions int             `json:"standbyPartitions"`
		Breaker           string          `json:"breaker"`
		Ready             bool            `json:"ready"`
		Stats             json.RawMessage `json:"stats,omitempty"`
	}
	K := rt.ring.Workers()
	infos := make([]workerInfo, K)
	var wg sync.WaitGroup
	for worker := 0; worker < K; worker++ {
		infos[worker] = workerInfo{
			ID:                worker,
			URL:               rt.opts.Workers[worker],
			Partitions:        rt.ring.OwnedPartitions(worker),
			StandbyPartitions: rt.ring.ReplicaPartitions(worker) - rt.ring.OwnedPartitions(worker),
			Breaker:           rt.breakers[worker].snapshot(),
		}
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			if wr, err := rt.do(r.Context(), http.MethodGet, worker, "/readyz", nil); err == nil && wr.status == http.StatusOK {
				infos[worker].Ready = true
			}
			if wr, err := rt.do(r.Context(), http.MethodGet, worker, "/v1/stats", nil); err == nil && wr.status == http.StatusOK {
				infos[worker].Stats = json.RawMessage(bytes.TrimRight(wr.body, "\n"))
			}
		}(worker)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]any{
		"workers":       infos,
		"partitions":    rt.ring.Partitions(),
		"replicaFactor": rt.ring.ReplicaFactor(),
		"streams":       rt.merger.allConnected(),
	})
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	// Probe every worker, open breakers included: a recovered worker's
	// first successful /readyz here closes its breaker, so readiness
	// polling doubles as the cluster's recovery sweep.
	_, down := rt.fanoutProbe(r.Context(), "/readyz")
	if uncovered := rt.unavailablePartitions(down); len(uncovered) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":                "unavailable",
			"downWorkers":           down,
			"unavailablePartitions": uncovered,
		})
		return
	}
	if !rt.merger.covered() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "streams connecting"})
		return
	}
	if len(down) > 0 || !rt.merger.allConnected() {
		// Every partition still has a live replica and a connected stream,
		// so reads keep succeeding — but redundancy is gone.
		writeJSON(w, http.StatusOK, map[string]any{
			"status":      "degraded",
			"downWorkers": down,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// --- merged SSE stream ---

func (rt *Router) handleSignals(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sub := rt.hub.subscribe()
	defer rt.hub.unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// Same preamble as a worker: clients see one daemon, not a proxy.
	fmt.Fprintf(w, ": rrrd signal stream\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(rt.opts.Heartbeat)
	defer heartbeat.Stop()
	var reported uint64
	for {
		select {
		case <-r.Context().Done():
			return
		case frame := <-sub.ch:
			if d := sub.dropped.Load(); d > reported {
				fmt.Fprintf(w, "event: dropped\ndata: {\"dropped\":%d}\n\n", d)
				reported = d
			}
			w.Write(frame)
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprintf(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}

// --- refresh + snapshot fan-out ---

func (rt *Router) handleRefreshPlan(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Budget int `json:"budget"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Budget <= 0 {
		writeErr(w, http.StatusBadRequest, "budget must be positive")
		return
	}
	body, _ := json.Marshal(map[string]int{"budget": req.Budget})
	K := rt.ring.Workers()
	parts := make([][]server.PlanEntry, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for worker := 0; worker < K; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wr, err := rt.do(r.Context(), http.MethodPost, worker, "/v1/refresh/plan", body)
			if err != nil {
				errs[worker] = err
				return
			}
			var resp struct {
				Plan []server.PlanEntry `json:"plan"`
			}
			if err := json.Unmarshal(wr.body, &resp); err != nil {
				errs[worker] = err
				return
			}
			parts[worker] = resp.Plan
		}(worker)
	}
	wg.Wait()
	var down []int
	cur := make([]int, K) // per-worker merge cursor
	for worker := 0; worker < K; worker++ {
		if errs[worker] != nil {
			down = append(down, worker)
			parts[worker] = nil
		}
	}
	// Each worker plans within its own slice with the full budget and
	// returns entries in global priority order (server.PlanEntryLess), so
	// the item at global rank r sits at rank <= r within its worker:
	// a k-way merge of the per-worker lists, truncated at the budget,
	// reconstructs the single-daemon priority order — no worker's
	// below-cut entry can outrank an accepted one. Replication makes a
	// pair's entry appear in both its replicas' lists; the merge keeps the
	// first and skips later duplicates by key.
	merged := make([]server.PlanEntry, 0, req.Budget)
	keys := make([]string, 0, req.Budget)
	seen := make(map[string]bool, req.Budget)
	for len(merged) < req.Budget {
		best := -1
		for c := 0; c < K; c++ {
			if cur[c] >= len(parts[c]) {
				continue
			}
			if best < 0 || server.PlanEntryLess(parts[c][cur[c]], parts[best][cur[best]]) {
				best = c
			}
		}
		if best < 0 {
			break
		}
		e := parts[best][cur[best]]
		cur[best]++
		if seen[e.Key] {
			continue
		}
		seen[e.Key] = true
		merged = append(merged, e)
		keys = append(keys, e.Key)
	}
	resp := map[string]any{"keys": keys, "plan": merged, "planned": len(keys)}
	if uncovered := rt.unavailablePartitions(down); len(uncovered) > 0 {
		metRouterPartial.Inc()
		resp["unavailablePartitions"] = uncovered
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleRefreshRecord(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	var probe struct {
		Src string `json:"src"`
		Dst string `json:"dst"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	src, err := rrr.ParseIP(probe.Src)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "src: "+err.Error())
		return
	}
	dst, err := rrr.ParseIP(probe.Dst)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "dst: "+err.Error())
		return
	}
	// A recorded refresh mutates tracked-pair state, so it must reach every
	// replica or the standby's verdicts drift from the primary's. Both are
	// written concurrently; the primary's body is preferred for the
	// response (they are byte-identical when both succeed). A refresh that
	// lands on only one replica leaves the other stale until it re-feeds —
	// the documented write-path caveat of replication without a log.
	p := rt.ring.PartitionOf(rrr.Key{Src: src, Dst: dst})
	reps := rt.ring.Replicas(p)
	resps := make([]*workerResp, len(reps))
	errs := make([]error, len(reps))
	var wg sync.WaitGroup
	for i, worker := range reps {
		wg.Add(1)
		go func(i, worker int) {
			defer wg.Done()
			resps[i], errs[i] = rt.do(r.Context(), http.MethodPost, worker, "/v1/refresh/record", body)
		}(i, worker)
	}
	wg.Wait()
	for i := range reps {
		if errs[i] != nil {
			continue
		}
		if i > 0 {
			metRouterFailovers.Inc()
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resps[i].status)
		w.Write(resps[i].body)
		return
	}
	metRouterPartial.Inc()
	errStrs := make([]string, 0, len(errs))
	for _, err := range errs {
		if err != nil {
			errStrs = append(errStrs, err.Error())
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":                 fmt.Sprintf("all replicas of partition %d unavailable", p),
		"workerErrors":          errStrs,
		"unavailablePartitions": rt.unavailablePartitions(reps),
	})
}

func (rt *Router) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	K := rt.ring.Workers()
	results := make([]json.RawMessage, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for worker := 0; worker < K; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wr, err := rt.do(r.Context(), http.MethodPost, worker, "/v1/snapshot", nil)
			if err != nil {
				errs[worker] = err
				return
			}
			if wr.status != http.StatusOK {
				errs[worker] = fmt.Errorf("status %d: %s", wr.status, bytes.TrimSpace(wr.body))
				return
			}
			results[worker] = json.RawMessage(bytes.TrimRight(wr.body, "\n"))
		}(worker)
	}
	wg.Wait()
	for worker, err := range errs {
		if err != nil {
			writeErr(w, http.StatusInternalServerError, fmt.Sprintf("worker %d snapshot: %v", worker, err))
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"workers": results})
}

// --- helpers (mirrors server's writeJSON so merged bytes match) ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data, code = []byte(`{"error":"response encoding failed"}`), http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
	w.Write([]byte("\n"))
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
