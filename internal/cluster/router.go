package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rrr"
	"rrr/internal/events"
	"rrr/internal/obs"
	"rrr/internal/server"
)

// Options tunes a Router.
type Options struct {
	// Workers are the worker base URLs, indexed by worker ID; their order
	// must match the -worker-id each daemon was started with.
	Workers []string
	// Partitions is the ring's partition count (0 = DefaultPartitions).
	// Must equal the workers' -partitions.
	Partitions int
	// Timeout bounds each worker sub-request (0 = 2s). A worker that
	// exceeds it is retried once, then reported unavailable.
	Timeout time.Duration
	// RingSize is the per-SSE-subscriber frame buffer (0 = 256).
	RingSize int
	// Heartbeat is the merged stream's keepalive interval (0 = 15s).
	Heartbeat time.Duration
	// MaxBatch caps POST /v1/stale keys (0 = 10000), mirroring the
	// worker-side default so the router rejects before fanning out.
	MaxBatch int
	// StreamBackoff is the initial worker-stream reconnect delay
	// (0 = 100ms; doubles to a 2s cap).
	StreamBackoff time.Duration
}

// Router is the cluster's stateless front end: it owns no monitor state,
// only the ring (to route), an HTTP client (to fan out), and the stream
// merger (to order). Restarting a router loses nothing but SSE
// subscriptions.
type Router struct {
	ring   *Ring
	opts   Options
	mux    *http.ServeMux
	hub    *frameHub
	merger *merger
	cancel context.CancelFunc
	done   sync.WaitGroup
}

// NewRouter builds the router and starts its worker stream subscriptions;
// Close releases them.
func NewRouter(opts Options) (*Router, error) {
	ring, err := NewRing(len(opts.Workers), opts.Partitions)
	if err != nil {
		return nil, err
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 15 * time.Second
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 10000
	}
	for i, u := range opts.Workers {
		opts.Workers[i] = strings.TrimRight(u, "/")
	}
	rt := &Router{ring: ring, opts: opts, mux: http.NewServeMux(), hub: newFrameHub(opts.RingSize)}
	rt.merger = newMerger(len(opts.Workers), rt.hub)

	rt.mux.HandleFunc("GET /v1/stale/{key}", rt.handleStaleOne)
	rt.mux.HandleFunc("POST /v1/stale", rt.handleStaleBatch)
	rt.mux.HandleFunc("GET /v1/keys", rt.handleKeys)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("GET /v1/cluster", rt.handleCluster)
	rt.mux.HandleFunc("GET /v1/signals", rt.handleSignals)
	rt.mux.HandleFunc("GET /v1/events", rt.handleEventsGet)
	rt.mux.HandleFunc("POST /v1/events", rt.handleEventsQuery)
	rt.mux.HandleFunc("POST /v1/refresh/plan", rt.handleRefreshPlan)
	rt.mux.HandleFunc("POST /v1/refresh/record", rt.handleRefreshRecord)
	rt.mux.HandleFunc("POST /v1/snapshot", rt.handleSnapshot)
	rt.mux.Handle("GET /metrics", obs.Default.Handler())
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)

	ctx, cancel := context.WithCancel(context.Background())
	rt.cancel = cancel
	for i := range opts.Workers {
		c := newSSEClient(i, opts.Workers[i], rt.merger, opts.StreamBackoff)
		rt.done.Add(1)
		go func() {
			defer rt.done.Done()
			c.run(ctx)
		}()
	}
	return rt, nil
}

// Handler returns the router's HTTP handler tree.
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		metRouterRequests.Inc()
		rt.mux.ServeHTTP(w, r)
	})
}

// Ring exposes the placement (for worker-mode corpus filtering and tests).
func (rt *Router) Ring() *Ring { return rt.ring }

// StreamConnected reports whether every worker signal stream is attached;
// differential harnesses wait for it before releasing feeds.
func (rt *Router) StreamConnected() bool { return rt.merger.allConnected() }

// Subscribers reports attached merged-stream clients.
func (rt *Router) Subscribers() int { return rt.hub.subscribers() }

// Close stops the worker stream subscriptions.
func (rt *Router) Close() {
	rt.cancel()
	rt.done.Wait()
}

// --- worker fan-out ---

type workerResp struct {
	status int
	body   []byte
}

// do issues one worker sub-request with the per-worker timeout, retrying
// once on transport failure or 5xx before giving up.
func (rt *Router) do(ctx context.Context, method string, worker int, path string, body []byte) (*workerResp, error) {
	attempt := func() (*workerResp, error) {
		rctx, cancel := context.WithTimeout(ctx, rt.opts.Timeout)
		defer cancel()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(rctx, method, rt.opts.Workers[worker]+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		metRouterFanout.Inc()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		return &workerResp{status: resp.StatusCode, body: data}, nil
	}
	wr, err := attempt()
	if err == nil && wr.status < 500 {
		return wr, nil
	}
	metRouterRetries.Inc()
	wr, err = attempt()
	if err == nil && wr.status < 500 {
		return wr, nil
	}
	metRouterWorkerErrs.Inc()
	if err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("cluster: worker %d %s %s: status %d", worker, method, path, wr.status)
}

// unavailablePartitions lists, ascending, every partition owned by the
// given down workers.
func (rt *Router) unavailablePartitions(down []int) []int {
	var parts []int
	for _, w := range down {
		parts = append(parts, rt.ring.WorkerPartitions(w)...)
	}
	sort.Ints(parts)
	return parts
}

// --- verdict routing ---

func (rt *Router) handleStaleOne(w http.ResponseWriter, r *http.Request) {
	k, err := server.ParseKey(r.PathValue("key"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	owner := rt.ring.Owner(k)
	wr, err := rt.do(r.Context(), http.MethodGet, owner, "/v1/stale/"+r.PathValue("key"), nil)
	if err != nil {
		metRouterPartial.Inc()
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":                 fmt.Sprintf("partition owner worker %d unavailable", owner),
			"unavailablePartitions": rt.unavailablePartitions([]int{owner}),
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(wr.status)
	w.Write(wr.body)
}

// subBatchResp is the worker's batch-staleness shape with verdict bodies
// kept raw for splicing.
type subBatchResp struct {
	Stale    int               `json:"stale"`
	Count    int               `json:"count"`
	Verdicts []json.RawMessage `json:"verdicts"`
}

func (rt *Router) handleStaleBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Keys) == 0 {
		writeErr(w, http.StatusBadRequest, "no keys")
		return
	}
	if len(req.Keys) > rt.opts.MaxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d keys exceeds batch limit %d", len(req.Keys), rt.opts.MaxBatch))
		return
	}
	// Group keys by partition owner, remembering each key's position so
	// worker verdicts splice back in request order.
	K := rt.ring.Workers()
	subKeys := make([][]string, K)
	subPos := make([][]int, K)
	for i, ks := range req.Keys {
		k, err := server.ParseKey(ks)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		owner := rt.ring.Owner(k)
		subKeys[owner] = append(subKeys[owner], ks)
		subPos[owner] = append(subPos[owner], i)
	}

	verdicts := make([]json.RawMessage, len(req.Keys))
	staleTotals := make([]int, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for worker := 0; worker < K; worker++ {
		if len(subKeys[worker]) == 0 {
			continue
		}
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"keys": subKeys[worker]})
			wr, err := rt.do(r.Context(), http.MethodPost, worker, "/v1/stale", body)
			if err != nil {
				errs[worker] = err
				return
			}
			if wr.status != http.StatusOK {
				errs[worker] = fmt.Errorf("worker %d: status %d", worker, wr.status)
				return
			}
			var sub subBatchResp
			if err := json.Unmarshal(wr.body, &sub); err != nil {
				errs[worker] = fmt.Errorf("worker %d: %v", worker, err)
				return
			}
			if len(sub.Verdicts) != len(subKeys[worker]) {
				errs[worker] = fmt.Errorf("worker %d: %d verdicts for %d keys", worker, len(sub.Verdicts), len(subKeys[worker]))
				return
			}
			for i, v := range sub.Verdicts {
				verdicts[subPos[worker][i]] = v
			}
			staleTotals[worker] = sub.Stale
		}(worker)
	}
	wg.Wait()

	var down []int
	stale := 0
	for worker := 0; worker < K; worker++ {
		if errs[worker] != nil {
			down = append(down, worker)
			// Positional placeholders keep count == len(keys) and the
			// response order aligned with the request; visibility
			// "unavailable" is the partition-down analogue of
			// "untracked".
			for _, pos := range subPos[worker] {
				verdicts[pos] = json.RawMessage(fmt.Sprintf(
					`{"key":%q,"tracked":false,"stale":false,"visibility":"unavailable","potentialMonitors":0}`,
					req.Keys[pos]))
			}
			continue
		}
		stale += staleTotals[worker]
	}

	size := 0
	for i := range verdicts {
		size += len(verdicts[i]) + 1
	}
	var buf bytes.Buffer
	buf.Grow(size + 96)
	buf.WriteString(`{"stale":`)
	buf.WriteString(strconv.Itoa(stale))
	buf.WriteString(`,"count":`)
	buf.WriteString(strconv.Itoa(len(verdicts)))
	if len(down) > 0 {
		metRouterPartial.Inc()
		parts, _ := json.Marshal(rt.unavailablePartitions(down))
		buf.WriteString(`,"unavailablePartitions":`)
		buf.Write(parts)
	}
	buf.WriteString(`,"verdicts":[`)
	for i := range verdicts {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(verdicts[i])
	}
	buf.WriteString("]}\n")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// --- merged reads ---

// fanoutAll issues the same GET to every worker concurrently, returning
// per-worker bodies and the list of workers that failed after retry.
func (rt *Router) fanoutAll(ctx context.Context, path string) ([][]byte, []int) {
	K := rt.ring.Workers()
	bodies := make([][]byte, K)
	failed := make([]bool, K)
	var wg sync.WaitGroup
	for worker := 0; worker < K; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wr, err := rt.do(ctx, http.MethodGet, worker, path, nil)
			if err != nil || wr.status != http.StatusOK {
				failed[worker] = true
				return
			}
			bodies[worker] = wr.body
		}(worker)
	}
	wg.Wait()
	var down []int
	for worker, f := range failed {
		if f {
			down = append(down, worker)
		}
	}
	return bodies, down
}

// fanoutAllBody issues the same request (with an optional body) to every
// worker concurrently, like fanoutAll but for POSTs.
func (rt *Router) fanoutAllBody(ctx context.Context, method, path string, body []byte) ([][]byte, []int) {
	K := rt.ring.Workers()
	bodies := make([][]byte, K)
	failed := make([]bool, K)
	var wg sync.WaitGroup
	for worker := 0; worker < K; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wr, err := rt.do(ctx, method, worker, path, body)
			if err != nil || wr.status != http.StatusOK {
				failed[worker] = true
				return
			}
			bodies[worker] = wr.body
		}(worker)
	}
	wg.Wait()
	var down []int
	for worker, f := range failed {
		if f {
			down = append(down, worker)
		}
	}
	return bodies, down
}

// parsedEvent pairs one worker routing event's ordering form with its wire
// bytes, for union-dedup merging.
type parsedEvent struct {
	ev  events.Event
	raw json.RawMessage
}

// mergeEventBodies union-dedups the workers' /v1/events responses: every
// worker ingests the full feed and runs an identical detector, so merged
// output is a single worker's list — verified byte for byte by keying the
// dedup on the raw wire form and re-emitting those exact bytes.
func mergeEventBodies(bodies [][]byte) ([]json.RawMessage, error) {
	seen := make(map[string]bool)
	var merged []parsedEvent
	for i, body := range bodies {
		if body == nil {
			continue
		}
		var sub struct {
			Events []json.RawMessage `json:"events"`
		}
		if err := json.Unmarshal(body, &sub); err != nil {
			return nil, fmt.Errorf("worker %d events: %v", i, err)
		}
		for _, raw := range sub.Events {
			if seen[string(raw)] {
				continue
			}
			seen[string(raw)] = true
			ev, err := server.ParseEvent(raw)
			if err != nil {
				return nil, fmt.Errorf("worker %d events: %v", i, err)
			}
			merged = append(merged, parsedEvent{ev: ev, raw: raw})
		}
	}
	sort.SliceStable(merged, func(i, j int) bool { return events.EventLess(merged[i].ev, merged[j].ev) })
	out := make([]json.RawMessage, len(merged))
	for i, pe := range merged {
		out[i] = pe.raw
	}
	return out, nil
}

// writeEventsMerged splices pre-rendered worker event bodies into the
// exact response shape a single worker serves ({"count":N,"events":[...]}).
func writeEventsMerged(w http.ResponseWriter, merged []json.RawMessage) {
	size := 0
	for _, raw := range merged {
		size += len(raw) + 1
	}
	var buf bytes.Buffer
	buf.Grow(size + 48)
	buf.WriteString(`{"count":`)
	buf.WriteString(strconv.Itoa(len(merged)))
	buf.WriteString(`,"events":[`)
	for i, raw := range merged {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(raw)
	}
	buf.WriteString("]}\n")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

func (rt *Router) handleEventsGet(w http.ResponseWriter, r *http.Request) {
	bodies, down := rt.fanoutAll(r.Context(), "/v1/events")
	if len(down) > 0 {
		metRouterPartial.Inc()
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":                 fmt.Sprintf("%d of %d workers unavailable", len(down), rt.ring.Workers()),
			"unavailablePartitions": rt.unavailablePartitions(down),
		})
		return
	}
	merged, err := mergeEventBodies(bodies)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err.Error())
		return
	}
	writeEventsMerged(w, merged)
}

func (rt *Router) handleEventsQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	bodies, down := rt.fanoutAllBody(r.Context(), http.MethodPost, "/v1/events", body)
	if len(down) > 0 {
		metRouterPartial.Inc()
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":                 fmt.Sprintf("%d of %d workers unavailable", len(down), rt.ring.Workers()),
			"unavailablePartitions": rt.unavailablePartitions(down),
		})
		return
	}
	merged, err := mergeEventBodies(bodies)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err.Error())
		return
	}
	writeEventsMerged(w, merged)
}

func (rt *Router) handleKeys(w http.ResponseWriter, r *http.Request) {
	path := "/v1/keys"
	if r.URL.Query().Get("stale") == "1" {
		path += "?stale=1"
	}
	bodies, down := rt.fanoutAll(r.Context(), path)
	if len(down) > 0 {
		metRouterPartial.Inc()
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":                 fmt.Sprintf("%d of %d workers unavailable", len(down), rt.ring.Workers()),
			"unavailablePartitions": rt.unavailablePartitions(down),
		})
		return
	}
	parts := make([][]string, len(bodies))
	for i, body := range bodies {
		var resp struct {
			Keys []string `json:"keys"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			writeErr(w, http.StatusBadGateway, fmt.Sprintf("worker %d keys: %v", i, err))
			return
		}
		parts[i] = resp.Keys
	}
	merged, err := mergeKeys(parts)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"keys": merged, "count": len(merged)})
}

// clusterStats is the merged /v1/stats wire form: the single-daemon shape
// plus, only when degraded, the explicit unavailable-partition list.
type clusterStats struct {
	server.Stats
	UnavailablePartitions []int `json:"unavailablePartitions,omitempty"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	bodies, down := rt.fanoutAll(r.Context(), "/v1/stats")
	var parts []server.Stats
	for i, body := range bodies {
		if body == nil {
			continue
		}
		var st server.Stats
		if err := json.Unmarshal(body, &st); err != nil {
			writeErr(w, http.StatusBadGateway, fmt.Sprintf("worker %d stats: %v", i, err))
			return
		}
		parts = append(parts, st)
	}
	if len(parts) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":                 "no workers reachable",
			"unavailablePartitions": rt.unavailablePartitions(down),
		})
		return
	}
	merged, err := mergeStats(parts, rt.hub.subscribers())
	if err != nil {
		writeErr(w, http.StatusBadGateway, err.Error())
		return
	}
	out := clusterStats{Stats: merged}
	if len(down) > 0 {
		metRouterPartial.Inc()
		out.UnavailablePartitions = rt.unavailablePartitions(down)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCluster is the router's own topology endpoint: per-worker
// identity, readiness, and unmerged stats — the debuggable counterpart of
// the anonymous sums /v1/stats serves.
func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	type workerInfo struct {
		ID         int             `json:"id"`
		URL        string          `json:"url"`
		Partitions int             `json:"partitions"`
		Ready      bool            `json:"ready"`
		Stats      json.RawMessage `json:"stats,omitempty"`
	}
	K := rt.ring.Workers()
	infos := make([]workerInfo, K)
	var wg sync.WaitGroup
	for worker := 0; worker < K; worker++ {
		infos[worker] = workerInfo{
			ID:         worker,
			URL:        rt.opts.Workers[worker],
			Partitions: rt.ring.OwnedPartitions(worker),
		}
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			if wr, err := rt.do(r.Context(), http.MethodGet, worker, "/readyz", nil); err == nil && wr.status == http.StatusOK {
				infos[worker].Ready = true
			}
			if wr, err := rt.do(r.Context(), http.MethodGet, worker, "/v1/stats", nil); err == nil && wr.status == http.StatusOK {
				infos[worker].Stats = json.RawMessage(bytes.TrimRight(wr.body, "\n"))
			}
		}(worker)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]any{
		"workers":    infos,
		"partitions": rt.ring.Partitions(),
		"streams":    rt.merger.allConnected(),
	})
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	_, down := rt.fanoutAll(r.Context(), "/readyz")
	if len(down) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":                "degraded",
			"unavailablePartitions": rt.unavailablePartitions(down),
		})
		return
	}
	if !rt.merger.allConnected() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "streams connecting"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// --- merged SSE stream ---

func (rt *Router) handleSignals(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sub := rt.hub.subscribe()
	defer rt.hub.unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// Same preamble as a worker: clients see one daemon, not a proxy.
	fmt.Fprintf(w, ": rrrd signal stream\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(rt.opts.Heartbeat)
	defer heartbeat.Stop()
	var reported uint64
	for {
		select {
		case <-r.Context().Done():
			return
		case frame := <-sub.ch:
			if d := sub.dropped.Load(); d > reported {
				fmt.Fprintf(w, "event: dropped\ndata: {\"dropped\":%d}\n\n", d)
				reported = d
			}
			w.Write(frame)
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprintf(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}

// --- refresh + snapshot fan-out ---

func (rt *Router) handleRefreshPlan(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Budget int `json:"budget"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Budget <= 0 {
		writeErr(w, http.StatusBadRequest, "budget must be positive")
		return
	}
	body, _ := json.Marshal(map[string]int{"budget": req.Budget})
	K := rt.ring.Workers()
	parts := make([][]server.PlanEntry, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for worker := 0; worker < K; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wr, err := rt.do(r.Context(), http.MethodPost, worker, "/v1/refresh/plan", body)
			if err != nil {
				errs[worker] = err
				return
			}
			var resp struct {
				Plan []server.PlanEntry `json:"plan"`
			}
			if err := json.Unmarshal(wr.body, &resp); err != nil {
				errs[worker] = err
				return
			}
			parts[worker] = resp.Plan
		}(worker)
	}
	wg.Wait()
	var down []int
	cur := make([]int, K) // per-worker merge cursor
	for worker := 0; worker < K; worker++ {
		if errs[worker] != nil {
			down = append(down, worker)
			parts[worker] = nil
		}
	}
	// Each worker plans within its own slice with the full budget and
	// returns entries in global priority order (server.PlanEntryLess), so
	// the item at global rank r sits at rank <= r within its worker:
	// a k-way merge of the per-worker lists, truncated at the budget,
	// reconstructs the single-daemon priority order — no worker's
	// below-cut entry can outrank an accepted one. (Ring ownership keeps
	// the lists key-disjoint, so no dedup pass is needed.)
	merged := make([]server.PlanEntry, 0, req.Budget)
	keys := make([]string, 0, req.Budget)
	for len(merged) < req.Budget {
		best := -1
		for c := 0; c < K; c++ {
			if cur[c] >= len(parts[c]) {
				continue
			}
			if best < 0 || server.PlanEntryLess(parts[c][cur[c]], parts[best][cur[best]]) {
				best = c
			}
		}
		if best < 0 {
			break
		}
		e := parts[best][cur[best]]
		cur[best]++
		merged = append(merged, e)
		keys = append(keys, e.Key)
	}
	resp := map[string]any{"keys": keys, "plan": merged, "planned": len(keys)}
	if len(down) > 0 {
		metRouterPartial.Inc()
		resp["unavailablePartitions"] = rt.unavailablePartitions(down)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleRefreshRecord(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	var probe struct {
		Src string `json:"src"`
		Dst string `json:"dst"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	src, err := rrr.ParseIP(probe.Src)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "src: "+err.Error())
		return
	}
	dst, err := rrr.ParseIP(probe.Dst)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "dst: "+err.Error())
		return
	}
	owner := rt.ring.Owner(rrr.Key{Src: src, Dst: dst})
	wr, err := rt.do(r.Context(), http.MethodPost, owner, "/v1/refresh/record", body)
	if err != nil {
		metRouterPartial.Inc()
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":                 fmt.Sprintf("partition owner worker %d unavailable", owner),
			"unavailablePartitions": rt.unavailablePartitions([]int{owner}),
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(wr.status)
	w.Write(wr.body)
}

func (rt *Router) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	K := rt.ring.Workers()
	results := make([]json.RawMessage, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for worker := 0; worker < K; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wr, err := rt.do(r.Context(), http.MethodPost, worker, "/v1/snapshot", nil)
			if err != nil {
				errs[worker] = err
				return
			}
			if wr.status != http.StatusOK {
				errs[worker] = fmt.Errorf("status %d: %s", wr.status, bytes.TrimSpace(wr.body))
				return
			}
			results[worker] = json.RawMessage(bytes.TrimRight(wr.body, "\n"))
		}(worker)
	}
	wg.Wait()
	for worker, err := range errs {
		if err != nil {
			writeErr(w, http.StatusInternalServerError, fmt.Sprintf("worker %d snapshot: %v", worker, err))
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"workers": results})
}

// --- helpers (mirrors server's writeJSON so merged bytes match) ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data, code = []byte(`{"error":"response encoding failed"}`), http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
	w.Write([]byte("\n"))
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
