package cluster

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"rrr"
	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/server"
)

// octetMapper maps AS by first octet (the facade tests' convention).
type octetMapper struct{}

func (octetMapper) ASOf(ip uint32) (bgp.ASN, bool) {
	f := ip >> 24
	if f == 240 || f == 0 {
		return 0, false
	}
	return bgp.ASN(f), true
}

func (octetMapper) IXPOf(ip uint32) (int, bool) { return 0, false }

func prunedIP(t *testing.T, s string) uint32 {
	t.Helper()
	v, err := rrr.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func prunedTrace(t *testing.T, when int64, src, dst string, hops ...string) *rrr.Traceroute {
	t.Helper()
	tr := &rrr.Traceroute{Src: prunedIP(t, src), Dst: prunedIP(t, dst), Time: when}
	for i, h := range hops {
		tr.Hops = append(tr.Hops, rrr.Hop{TTL: i + 1, IP: prunedIP(t, h)})
	}
	return tr
}

func prunedAnnounce(t *testing.T, tm int64, vpIP string, as bgp.ASN, prefix string, path []bgp.ASN) rrr.Update {
	t.Helper()
	p, err := rrr.ParsePrefix(prefix)
	if err != nil {
		t.Fatal(err)
	}
	return rrr.Update{Time: tm, PeerIP: prunedIP(t, vpIP), PeerAS: as, Type: bgp.Announce,
		Prefix: p, ASPath: path}
}

func newPrunedMonitor(t *testing.T) *rrr.Monitor {
	t.Helper()
	aliases := bordermap.OracleFunc(func(v uint32) (int, bool) { return int(v), true })
	m, err := rrr.NewMonitor(rrr.Options{Mapper: octetMapper{}, Aliases: aliases})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// driveCommunityFP replays the same globally-observed BGP feed into a
// monitor that tracks only `track`, then disproves the community signal
// on each tracked pair with an unchanged refresh — the Appendix-B
// false-positive path that prunes the community. Every monitor sees the
// identical feed; only the tracked slice differs, exactly the cluster's
// full-feed/partitioned-corpus split.
func driveCommunityFP(t *testing.T, m *rrr.Monitor, track ...*rrr.Traceroute) {
	t.Helper()
	const w = 900
	m.ObserveBGP(prunedAnnounce(t, 0, "5.0.0.9", 5, "4.0.0.0/8", []bgp.ASN{5, 2, 3, 4}))
	m.ObserveBGP(prunedAnnounce(t, 0, "6.0.0.9", 6, "4.0.0.0/8", []bgp.ASN{6, 3, 4}))
	for _, tr := range track {
		if err := m.Track(tr); err != nil {
			t.Fatal(err)
		}
	}
	m.Advance(3 * w)
	// Same path, new community: a pure community-change signal.
	u := prunedAnnounce(t, 3*w+5, "6.0.0.9", 6, "4.0.0.0/8", []bgp.ASN{6, 3, 4})
	u.Communities = bgp.Communities{bgp.MakeCommunity(3, 7000)}
	m.ObserveBGP(u)
	m.Advance(4 * w)
	for _, tr := range track {
		if !m.Stale(tr.Key()) {
			t.Fatalf("pair %v not community-signaled; pruning scenario is vacuous", tr.Key())
		}
		same := *tr
		same.Time = 4 * w
		if _, err := m.RecordRefresh(&same); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterPrunedCommunitiesMerge is the regression test for the K×
// inflation of prunedCommunities in clustered /v1/stats: every worker
// ingests the full BGP feed, so independent workers prune the *same*
// community via refreshes of their own pairs, and the router's old
// sum-of-counters reported each shared prune decision K times. The merge
// must union the workers' pruned-community ID sets instead.
func TestClusterPrunedCommunitiesMerge(t *testing.T) {
	// Two pairs crossing the same monitored prefix, owned by different
	// workers; both get the same community signal from the shared feed.
	p1 := prunedTrace(t, 0, "1.0.0.1", "4.0.0.9", "1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")
	p2 := prunedTrace(t, 0, "7.0.0.1", "4.0.0.9", "7.0.0.2", "2.0.0.5", "3.0.0.5", "4.0.0.9")

	// Single-daemon baseline: one monitor tracking both pairs.
	single := newPrunedMonitor(t)
	driveCommunityFP(t, single, p1, p2)
	if got := single.PrunedCommunities(); got != 1 {
		t.Fatalf("baseline pruned %d communities; want exactly 1", got)
	}
	singleTS := httptest.NewServer(server.New(single, server.Config{}).Handler())
	defer singleTS.Close()

	// K=3 workers: p1 on worker 0, p2 on worker 1, worker 2 idle — all
	// three observing the full feed.
	tracked := [][]*rrr.Traceroute{{p1}, {p2}, nil}
	urls := make([]string, 3)
	for w := 0; w < 3; w++ {
		m := newPrunedMonitor(t)
		driveCommunityFP(t, m, tracked[w]...)
		srv := server.New(m, server.Config{
			Worker: &server.WorkerIdentity{ID: w, Workers: 3, Partitions: 1},
		})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		urls[w] = ts.URL
	}
	rt, err := NewRouter(Options{Workers: urls, Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rtTS := httptest.NewServer(rt.Handler())
	defer rtTS.Close()

	// Vacuity guard: at least two workers must have pruned the same
	// community, or a naive sum would coincidentally equal the union and
	// the test would prove nothing.
	naiveSum := 0
	ids := make(map[uint32]int)
	for _, u := range urls {
		var st server.Stats
		if err := json.Unmarshal([]byte(httpGet(t, u+"/v1/stats")), &st); err != nil {
			t.Fatal(err)
		}
		naiveSum += st.PrunedCommunities
		for _, id := range st.PrunedCommunityIDs {
			ids[id]++
		}
	}
	if len(ids) != 1 {
		t.Fatalf("workers pruned %d distinct communities; want exactly 1 shared", len(ids))
	}
	for id, n := range ids {
		if n < 2 {
			t.Fatalf("community %d pruned by %d workers; want >= 2 (overlap is the bug trigger)", id, n)
		}
	}
	if naiveSum < 2 {
		t.Fatalf("naive sum %d would not have inflated; scenario is vacuous", naiveSum)
	}

	singleStats := httpGet(t, singleTS.URL+"/v1/stats")
	routerStats := httpGet(t, rtTS.URL+"/v1/stats")
	if singleStats != routerStats {
		t.Fatalf("clustered stats diverge from single daemon:\nsingle: %s\nrouter: %s", singleStats, routerStats)
	}
	var merged server.Stats
	if err := json.Unmarshal([]byte(routerStats), &merged); err != nil {
		t.Fatal(err)
	}
	if merged.PrunedCommunities != 1 {
		t.Fatalf("merged prunedCommunities = %d; want 1 (naive sum was %d)", merged.PrunedCommunities, naiveSum)
	}
}
