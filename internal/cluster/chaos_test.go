package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rrr/internal/faultfeed"
)

// TestClusterChaos is the self-healing acceptance test: one cluster run
// absorbs a worker-stream wire kill, a worker HTTP crash and restart, and
// a concurrent overload blast — under continuous read load that must
// never see a failed response while every partition keeps a live replica
// — and must end with every API surface byte-identical to a never-killed
// cluster's. A second phase then takes both replicas of some partitions
// down and checks unavailability is reported exactly there, and that full
// recovery follows.
func TestClusterChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run drives full feeds several times; run without -short")
	}
	// The reference: a healthy cluster over the same feeds, never killed.
	want := clusterOutputs(t, 3)

	// Chaos cluster: worker 2's HTTP traffic — the router's SSE stream
	// subscription included — runs through a flaky proxy that resets the
	// first accepted connection (the stream) after 16 KiB.
	proxy := &faultfeed.Proxy{KillAfterBytes: []int64{16 << 10}}
	t.Cleanup(func() { proxy.Close() })
	// streamSubs counts worker 2's /v1/signals subscriptions on the worker
	// side: reaching 2 proves the proxied stream was cut and the router
	// re-subscribed (data requests share the proxy, so its connection count
	// can't tell streams apart).
	var streamSubs atomic.Int64
	lc, err := StartLocal(LocalOptions{
		Workers:         3,
		Scale:           diffScale(),
		RouterTimeout:   2 * time.Second,
		StreamBackoff:   20 * time.Millisecond,
		BreakerCooldown: 100 * time.Millisecond,
		Middleware: func(workerID int, h http.Handler) http.Handler {
			if workerID != 2 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/signals" {
					streamSubs.Add(1)
				}
				h.ServeHTTP(w, r)
			})
		},
		WorkerURL: func(workerID int, url string) string {
			if workerID != 2 {
				return url
			}
			proxy.Upstream = strings.TrimPrefix(url, "http://")
			if err := proxy.Start(); err != nil {
				t.Fatalf("proxy: %v", err)
			}
			return "http://" + proxy.Addr()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	if err := lc.WaitStreams(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	cap := captureStream(t, lc.URL())
	all, _ := clusterKeys(t, lc)

	// Continuous read load: single-key verdicts and small batches, every
	// response must be 200 while at least one replica per partition lives.
	var (
		stopReaders = make(chan struct{})
		readerWG    sync.WaitGroup
		reads       atomic.Int64
		failures    atomic.Int64
		firstFail   atomic.Value
	)
	smallBatch, _ := json.Marshal(map[string]any{"keys": all[:min(16, len(all))]})
	for g := 0; g < 6; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stopReaders:
					return
				default:
				}
				var resp *http.Response
				var err error
				if i%2 == 0 {
					resp, err = http.Get(lc.URL() + "/v1/stale/" + all[(g*31+i)%len(all)])
				} else {
					resp, err = http.Post(lc.URL()+"/v1/stale", "application/json", strings.NewReader(string(smallBatch)))
				}
				if err != nil {
					failures.Add(1)
					firstFail.CompareAndSwap(nil, err.Error())
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					firstFail.CompareAndSwap(nil, fmt.Sprintf("status %d: %.200s", resp.StatusCode, body))
				}
				reads.Add(1)
			}
		}(g)
	}

	lc.StartFeeds()

	// Phase 1 — wire kill: wait for the proxy to cut worker 2's stream and
	// for the router to have reconnected through it (second accepted
	// connection) with every stream attached again.
	deadline := time.Now().Add(30 * time.Second)
	for streamSubs.Load() < 2 || !lc.Router.StreamConnected() {
		if time.Now().After(deadline) {
			t.Fatalf("stream never killed+reconnected: %d subscriptions, connected=%v",
				streamSubs.Load(), lc.Router.StreamConnected())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2 — worker crash: kill worker 1's HTTP (stream included) under
	// load, let failover carry reads, then restart it.
	lc.Workers[1].StopHTTP()
	time.Sleep(300 * time.Millisecond)
	if err := lc.Workers[1].StartHTTP(); err != nil {
		t.Fatal(err)
	}
	pollReady(t, lc.URL(), 15*time.Second)

	// Phase 3 — overload: a second router with a tiny admission bound in
	// front of the same workers sheds the blast's overflow with 429 and
	// never anything worse; the main router's readers stay untouched.
	blastRouter, err := NewRouter(Options{
		Workers: []string{lc.Workers[0].URL(), lc.Workers[1].URL(), lc.Workers[2].URL()},
		Timeout: 5 * time.Second, StreamBackoff: 20 * time.Millisecond,
		MaxInFlight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	blastTS := httptest.NewServer(blastRouter.Handler())
	fullBatch, _ := json.Marshal(map[string]any{"keys": all})
	var shed, ok2xx, worse atomic.Int64
	for round := 0; round < 3 && shed.Load() == 0; round++ {
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < 32; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				resp, err := http.Post(blastTS.URL+"/v1/stale", "application/json", strings.NewReader(string(fullBatch)))
				if err != nil {
					worse.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					ok2xx.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						worse.Add(1)
						return
					}
					shed.Add(1)
				default:
					worse.Add(1)
				}
			}()
		}
		close(start)
		wg.Wait()
	}
	blastTS.Close()
	blastRouter.Close()
	if shed.Load() == 0 {
		t.Fatalf("no request shed across 3 blast rounds (%d ok)", ok2xx.Load())
	}
	if worse.Load() > 0 {
		t.Fatalf("%d blast requests failed with something other than 200 or 429+Retry-After", worse.Load())
	}
	if ok2xx.Load() == 0 {
		t.Fatal("overload blast starved every request; admission must shed excess, not everything")
	}

	// Drain the feeds and stop the load; not a single read may have failed.
	if err := lc.WaitFeeds(); err != nil {
		t.Fatal(err)
	}
	close(stopReaders)
	readerWG.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d reads failed during single-replica outages; first: %v", n, reads.Load(), firstFail.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("readers issued no requests; the chaos phases went unobserved")
	}

	// The merged stream must be byte-identical to the never-killed run —
	// coverage never broke, so failover left no mark and no gap frame.
	stream := normalizeStream(cap.stable(t, 300*time.Millisecond, 30*time.Second))
	if strings.Contains(stream, "event: gap") {
		t.Fatal("gap frame on a stream that never lost partition coverage")
	}
	diffStrings(t, "chaos stream", want.stream, stream)
	gotKeys := httpGet(t, lc.URL()+"/v1/keys")
	diffStrings(t, "chaos keys", want.keys, gotKeys)
	diffStrings(t, "chaos batch", want.batch, httpPost(t, lc.URL()+"/v1/stale", batchBody(t, gotKeys)))
	diffStrings(t, "chaos stats", want.stats, httpGet(t, lc.URL()+"/v1/stats"))

	// Phase 4 — both replicas down: partitions replicated only on workers
	// {1, 2} go dark; exactly those are reported unavailable, everything
	// else keeps serving from worker 0.
	lc.Workers[1].StopHTTP()
	lc.Workers[2].StopHTTP()
	dark := darkPartitions(lc, 1, 2)
	if len(dark) == 0 {
		t.Fatal("no partition has both replicas on workers 1 and 2; ring geometry changed, rewrite the test")
	}
	var resp batchResp
	if err := json.Unmarshal([]byte(httpPost(t, lc.URL()+"/v1/stale", string(fullBatch))), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != len(all) {
		t.Fatalf("count = %d, want %d", resp.Count, len(all))
	}
	for i, v := range resp.Verdicts {
		p := lc.Ring.PartitionOf(mustKey(t, v.Key))
		if dark[p] && v.Visibility != "unavailable" {
			t.Fatalf("verdict %d (dark partition %d): visibility %q, want unavailable", i, p, v.Visibility)
		}
		if !dark[p] && v.Visibility == "unavailable" {
			t.Fatalf("verdict %d (partition %d has a live replica) marked unavailable", i, p)
		}
	}
	for _, p := range resp.UnavailablePartitions {
		if !dark[p] {
			t.Fatalf("unavailablePartitions lists %d, which has a live replica", p)
		}
	}
	keysResp, err := http.Get(lc.URL() + "/v1/keys")
	if err != nil {
		t.Fatal(err)
	}
	keysBody, _ := io.ReadAll(keysResp.Body)
	keysResp.Body.Close()
	if keysResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /v1/keys with dark partitions = %d, want 503", keysResp.StatusCode)
	}
	if !strings.Contains(string(keysBody), "unavailablePartitions") {
		t.Fatalf("dark-partition 503 without unavailablePartitions: %s", keysBody)
	}

	// Phase 5 — recovery: restart both workers; the router's readiness
	// sweep closes their breakers and the surfaces return byte-identical.
	if err := lc.Workers[1].StartHTTP(); err != nil {
		t.Fatal(err)
	}
	if err := lc.Workers[2].StartHTTP(); err != nil {
		t.Fatal(err)
	}
	pollReady(t, lc.URL(), 15*time.Second)
	gotKeys = httpGet(t, lc.URL()+"/v1/keys")
	diffStrings(t, "post-recovery keys", want.keys, gotKeys)
	diffStrings(t, "post-recovery batch", want.batch, httpPost(t, lc.URL()+"/v1/stale", batchBody(t, gotKeys)))
	diffStrings(t, "post-recovery stats", want.stats, httpGet(t, lc.URL()+"/v1/stats"))
}

// pollReady polls the router's /readyz until it reports "ready" — the
// probe sweep is also what closes recovered workers' breakers.
func pollReady(t *testing.T, url string, max time.Duration) {
	t.Helper()
	deadline := time.Now().Add(max)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && strings.Contains(string(body), `"ready"`) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("router not ready after %v: status %d %s", max, resp.StatusCode, body)
			}
		} else if time.Now().After(deadline) {
			t.Fatalf("router not ready after %v: %v", max, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
