// Package cluster partitions a traceroute corpus across rrrd workers and
// merges their responses back into one coherent API.
//
// Topology: the key space is first folded onto a fixed set of partitions
// (hash(key) mod P), and partitions are placed on workers with a
// consistent-hash ring of virtual nodes. Queries route by key hash; a
// stateless router (see Router) fans batches out to partition owners,
// splices their pre-rendered verdict JSON into one response, merges
// /v1/keys and /v1/stats, and multiplexes the workers' SSE signal streams
// into one totally-ordered stream.
//
// Workers ingest the full BGP and traceroute feeds but Track only the
// corpus pairs their ring slice owns: shared series (subpath registrations,
// border series) are established at Track time, so per-pair signals come
// out identical to a single daemon tracking everything — the property the
// differential tests pin down.
package cluster

import (
	"fmt"
	"sort"

	"rrr"
)

// Defaults for ring geometry. Partition count bounds rebalance granularity
// (a worker joining or leaving moves whole partitions); vnode count
// smooths the per-worker partition spread.
const (
	DefaultPartitions = 64
	vnodesPerWorker   = 64
)

// fnv64 is FNV-1a, the same family the engine uses for content-derived
// monitor IDs, finished with a murmur3-style avalanche: raw FNV of short
// sequential names ("worker-0/vnode-1", "worker-0/vnode-2", ...) differs
// mostly in low bits, which clusters the circle badly enough that a
// 3-worker ring can leave a worker with zero partitions.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

type vnode struct {
	hash   uint64
	worker int
}

// Ring is an immutable placement of P partitions onto K workers. Both the
// router and every worker build the same Ring from (workers, partitions),
// so ownership is agreed upon without coordination.
//
// Replication: with K >= 2 every partition is placed on two distinct
// workers — the primary (the partition point's successor vnode) and a
// standby (the next distinct worker clockwise on the vnode circle). Every
// worker ingests the full feed, so a standby's monitor is a deterministic
// replica of the primary's over the shared slice and its verdicts are
// byte-identical by construction; the router fails partitions over to the
// standby when the primary's circuit breaker opens. A single-worker ring
// has no distinct standby (RF collapses to 1).
type Ring struct {
	workers    int
	partitions int
	owner      []int // partition -> primary worker
	standby    []int // partition -> standby worker (== owner when K == 1)
	owned      []int // worker -> primary partition count
	replicas   []int // worker -> primary+standby partition count
}

// NewRing places `partitions` partitions onto `workers` workers
// (partitions <= 0 selects DefaultPartitions).
func NewRing(workers, partitions int) (*Ring, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("cluster: ring needs at least 1 worker, got %d", workers)
	}
	if partitions <= 0 {
		partitions = DefaultPartitions
	}
	vnodes := make([]vnode, 0, workers*vnodesPerWorker)
	for w := 0; w < workers; w++ {
		for v := 0; v < vnodesPerWorker; v++ {
			vnodes = append(vnodes, vnode{
				hash:   fnv64(fmt.Sprintf("worker-%d/vnode-%d", w, v)),
				worker: w,
			})
		}
	}
	sort.Slice(vnodes, func(i, j int) bool {
		if vnodes[i].hash != vnodes[j].hash {
			return vnodes[i].hash < vnodes[j].hash
		}
		// Hash ties (vanishingly rare) break by worker index so every
		// builder of the same ring agrees.
		return vnodes[i].worker < vnodes[j].worker
	})
	r := &Ring{
		workers:    workers,
		partitions: partitions,
		owner:      make([]int, partitions),
		standby:    make([]int, partitions),
		owned:      make([]int, workers),
		replicas:   make([]int, workers),
	}
	for p := 0; p < partitions; p++ {
		h := fnv64(fmt.Sprintf("partition-%d", p))
		// Successor vnode clockwise from the partition's point.
		i := sort.Search(len(vnodes), func(i int) bool { return vnodes[i].hash >= h })
		if i == len(vnodes) {
			i = 0
		}
		w := vnodes[i].worker
		r.owner[p] = w
		r.owned[w]++
		r.replicas[w]++
		// Standby: keep walking clockwise to the first vnode held by a
		// different worker. With one worker there is none; the standby
		// degenerates to the primary and RF to 1.
		s := w
		for j := 1; j < len(vnodes); j++ {
			cand := vnodes[(i+j)%len(vnodes)].worker
			if cand != w {
				s = cand
				break
			}
		}
		r.standby[p] = s
		if s != w {
			r.replicas[s]++
		}
	}
	return r, nil
}

// Workers reports K.
func (r *Ring) Workers() int { return r.workers }

// Partitions reports P.
func (r *Ring) Partitions() int { return r.partitions }

// PartitionOf folds a pair onto its partition. The fold ignores ring
// geometry, so a key's partition survives worker joins and leaves.
func (r *Ring) PartitionOf(k rrr.Key) int {
	var b [8]byte
	b[0] = byte(k.Src >> 24)
	b[1] = byte(k.Src >> 16)
	b[2] = byte(k.Src >> 8)
	b[3] = byte(k.Src)
	b[4] = byte(k.Dst >> 24)
	b[5] = byte(k.Dst >> 16)
	b[6] = byte(k.Dst >> 8)
	b[7] = byte(k.Dst)
	return int(fnv64(string(b[:])) % uint64(r.partitions))
}

// Owner maps a pair to its primary worker.
func (r *Ring) Owner(k rrr.Key) int { return r.owner[r.PartitionOf(k)] }

// OwnerOfPartition maps a partition to its primary worker.
func (r *Ring) OwnerOfPartition(p int) int { return r.owner[p] }

// Standby maps a pair to its standby worker (== Owner when K == 1).
func (r *Ring) Standby(k rrr.Key) int { return r.standby[r.PartitionOf(k)] }

// StandbyOfPartition maps a partition to its standby worker.
func (r *Ring) StandbyOfPartition(p int) int { return r.standby[p] }

// Replicas lists the distinct workers tracking partition p, primary first.
func (r *Ring) Replicas(p int) []int {
	if r.standby[p] == r.owner[p] {
		return []int{r.owner[p]}
	}
	return []int{r.owner[p], r.standby[p]}
}

// IsReplica reports whether worker w tracks pair k (as primary or standby).
func (r *Ring) IsReplica(k rrr.Key, w int) bool {
	p := r.PartitionOf(k)
	return r.owner[p] == w || r.standby[p] == w
}

// ReplicaFactor reports how many distinct workers track each partition:
// 2 for any multi-worker ring, 1 for a single worker.
func (r *Ring) ReplicaFactor() int {
	if r.workers >= 2 {
		return 2
	}
	return 1
}

// OwnedPartitions reports how many partitions worker w owns as primary.
func (r *Ring) OwnedPartitions(w int) int { return r.owned[w] }

// ReplicaPartitions reports how many partitions worker w tracks in total
// (primary plus standby).
func (r *Ring) ReplicaPartitions(w int) int { return r.replicas[w] }

// WorkerPartitions lists the partitions worker w owns as primary, ascending.
func (r *Ring) WorkerPartitions(w int) []int {
	out := make([]int, 0, r.owned[w])
	for p, o := range r.owner {
		if o == w {
			out = append(out, p)
		}
	}
	return out
}

// StandbyPartitions lists the partitions worker w covers as standby,
// ascending. Empty on a single-worker ring.
func (r *Ring) StandbyPartitions(w int) []int {
	var out []int
	for p, s := range r.standby {
		if s == w && r.owner[p] != w {
			out = append(out, p)
		}
	}
	return out
}
