package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"rrr"
	"rrr/internal/experiments"
	"rrr/internal/server"
)

// BenchTopology is one measured serving topology: Workers == 0 is the
// direct single-node baseline (no router hop), Workers == K is a router
// fronting K partitioned workers.
type BenchTopology struct {
	Workers       int
	Elapsed       time.Duration
	ReqPerSec     float64
	KeysPerSec    float64
	P50           time.Duration
	P90           time.Duration
	P99           time.Duration
	StaleVerdicts int
}

// BenchResult reports router-merged batch-verdict throughput against the
// single-node baseline over an identical corpus, feed, and request mix.
// Degraded repeats the routed load for each K >= 2 with the last worker's
// HTTP down, so the record captures what failover onto standby replicas
// costs: every request still succeeds (RF=2 keeps each partition covered),
// but the surviving workers absorb the dead worker's partitions.
type BenchResult struct {
	Partitions int
	CorpusSize int
	Clients    int
	Requests   int
	BatchSize  int
	Single     BenchTopology
	Routed     []BenchTopology
	Degraded   []BenchTopology
}

// RunBench feeds a simulated day into (a) one daemon tracking the whole
// corpus and (b) a router over K ring-sliced workers for each K in
// workerCounts, then fires the same pre-rendered batch load at each and
// measures merged req/s and latency percentiles. Load runs after feed EOF
// on both sides, so the comparison isolates the router's fan-out, splice,
// and merge overhead rather than ingest contention (servebench covers
// that for the single node).
func RunBench(sc experiments.Scale, workerCounts []int, clients, requests, batchSize int) (*BenchResult, error) {
	perClient := requests / clients
	if perClient == 0 {
		perClient = 1
	}
	total := perClient * clients

	// Single-node baseline: full corpus, feed to EOF, direct load.
	mon, _, env, err := newWorkerMonitor(sc, nil, 0, nil)
	if err != nil {
		return nil, err
	}
	srv := server.New(mon, server.Config{})
	if err := rrr.RunPipeline(context.Background(), mon, rrr.PipelineConfig{
		Updates: env.Updates,
		Traces:  env.Traces,
		Sink:    func(rrr.Signal) {},
	}); err != nil {
		return nil, fmt.Errorf("cluster: bench baseline feed: %w", err)
	}
	keys := mon.Tracked()
	if len(keys) == 0 {
		return nil, fmt.Errorf("cluster: bench corpus is empty")
	}
	ts := httptest.NewServer(srv.Handler())
	single, err := benchLoad(ts, 0, keys, clients, perClient, batchSize)
	ts.Close()
	if err != nil {
		return nil, err
	}

	res := &BenchResult{
		CorpusSize: len(keys),
		Clients:    clients,
		Requests:   total,
		BatchSize:  batchSize,
		Single:     single,
	}
	for _, k := range workerCounts {
		lc, err := StartLocal(LocalOptions{
			Workers:       k,
			Scale:         sc,
			RouterTimeout: 30 * time.Second,
			StreamBackoff: 20 * time.Millisecond,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: bench K=%d: %w", k, err)
		}
		if res.Partitions == 0 {
			res.Partitions = lc.Ring.Partitions()
		}
		if err := lc.WaitStreams(30 * time.Second); err != nil {
			lc.Close()
			return nil, fmt.Errorf("cluster: bench K=%d: %w", k, err)
		}
		lc.StartFeeds()
		if err := lc.WaitFeeds(); err != nil {
			lc.Close()
			return nil, fmt.Errorf("cluster: bench K=%d feeds: %w", k, err)
		}
		topo, err := benchLoad(lc.RouterTS, k, keys, clients, perClient, batchSize)
		if err != nil {
			lc.Close()
			return nil, fmt.Errorf("cluster: bench K=%d: %w", k, err)
		}
		res.Routed = append(res.Routed, topo)
		// Degraded phase: kill the last worker's HTTP and re-fire the same
		// load. With RF=2 the standby replicas keep every partition covered,
		// so the run measures failover overhead, not partial answers. A
		// single worker has no standby to fail over to; skip it.
		if k >= 2 {
			lc.Workers[k-1].StopHTTP()
			deg, err := benchLoad(lc.RouterTS, k, keys, clients, perClient, batchSize)
			if err != nil {
				lc.Close()
				return nil, fmt.Errorf("cluster: bench K=%d degraded: %w", k, err)
			}
			res.Degraded = append(res.Degraded, deg)
		}
		lc.Close()
	}
	return res, nil
}

func benchLoad(ts *httptest.Server, workers int, keys []rrr.Key, clients, perClient, batchSize int) (BenchTopology, error) {
	lat, stale, elapsed, err := server.RunStaleLoad(ts, keys, clients, perClient, batchSize)
	if err != nil {
		return BenchTopology{}, err
	}
	t := BenchTopology{
		Workers:       workers,
		Elapsed:       elapsed,
		StaleVerdicts: stale,
	}
	t.P50, t.P90, t.P99 = server.Percentiles(lat)
	if elapsed > 0 {
		t.ReqPerSec = float64(clients*perClient) / elapsed.Seconds()
		t.KeysPerSec = t.ReqPerSec * float64(batchSize)
	}
	return t, nil
}
