package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"rrr"
	"rrr/internal/events"
	"rrr/internal/experiments"
	"rrr/internal/server"
)

// localRingSize is the SSE ring used by in-process workers and routers.
// Local feeds run at full simulation speed (no wall-clock pacing), so the
// production default ring would shed frames under burst and break the
// byte-identity the differential tests assert; a deep ring keeps local
// streams lossless without touching production defaults.
const localRingSize = 1 << 14

// LocalOptions configures an in-process cluster over simulated feeds.
type LocalOptions struct {
	Workers    int
	Partitions int
	Scale      experiments.Scale
	// RouterTimeout is the router's per-worker sub-request timeout.
	RouterTimeout time.Duration
	// StreamBackoff is the router's worker-stream reconnect delay.
	StreamBackoff time.Duration
	// Middleware, when set, wraps each worker's handler (by worker ID) —
	// failure tests inject latency or errors here.
	Middleware func(workerID int, h http.Handler) http.Handler
	// Tune, when set, adjusts every worker's engine config after the
	// scale defaults are applied — regression tests pin thresholds (a
	// community FP quota, say) identically across workers and baseline.
	Tune func(cfg *rrr.Config)
	// WorkerURL, when set, rewrites each worker's base URL before the
	// router sees it — chaos tests interpose a fault-injecting proxy here.
	WorkerURL func(workerID int, url string) string
	// RouterMaxInFlight bounds the router's concurrently-served requests
	// (0 = DefaultRouterMaxInFlight).
	RouterMaxInFlight int
	// BreakerThreshold / BreakerCooldown tune the router's per-worker
	// circuit breakers (0 = package defaults).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// LocalWorker is one in-process rrrd worker: a Monitor tracking its ring
// slice, a serving layer, and an HTTP listener whose address survives
// StopHTTP/StartHTTP cycles so the router (and its SSE reconnect path)
// can find a "restarted" worker at the same URL.
type LocalWorker struct {
	ID  int
	Mon *rrr.Monitor
	Det *events.Detector
	Srv *server.Server
	Env *experiments.DaemonEnv

	addr    string
	handler http.Handler
	mu      sync.Mutex
	httpSrv *http.Server
}

// URL is the worker's base URL.
func (lw *LocalWorker) URL() string { return "http://" + lw.addr }

// StartHTTP (re)binds the worker's fixed address and serves until
// StopHTTP.
func (lw *LocalWorker) StartHTTP() error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.httpSrv != nil {
		return nil
	}
	lis, err := net.Listen("tcp", lw.addr)
	if err != nil {
		return fmt.Errorf("cluster: worker %d relisten %s: %w", lw.ID, lw.addr, err)
	}
	lw.httpSrv = &http.Server{Handler: lw.handler}
	go lw.httpSrv.Serve(lis)
	return nil
}

// StopHTTP closes the worker's listener and in-flight connections,
// simulating a crash from the router's point of view.
func (lw *LocalWorker) StopHTTP() {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.httpSrv == nil {
		return
	}
	lw.httpSrv.Close()
	lw.httpSrv = nil
}

// LocalCluster is K in-process workers behind an in-process router, each
// worker ingesting the full simulated feed while tracking only its ring
// slice. Feeds start explicitly (StartFeeds) so tests can attach stream
// subscribers first.
type LocalCluster struct {
	Ring     *Ring
	Workers  []*LocalWorker
	Router   *Router
	RouterTS *httptest.Server

	cancel   context.CancelFunc
	feedErrs chan error
	started  bool
}

// newWorkerMonitor builds a Monitor over a fresh deterministic DaemonEnv,
// priming the RIB from the dump and tracking only the pairs `ring` assigns
// to worker `id` (a nil ring tracks everything — the single-daemon
// baseline). The returned event detector is primed from the same dump;
// since every worker ingests the full feed, detectors are identical
// across workers regardless of ring slice.
func newWorkerMonitor(sc experiments.Scale, ring *Ring, id int, tune func(cfg *rrr.Config)) (*rrr.Monitor, *events.Detector, *experiments.DaemonEnv, error) {
	env := experiments.NewDaemonEnv(sc, 0)
	cfg := rrr.DefaultConfig()
	cfg.WindowSec = sc.WindowSec
	cfg.Shards = sc.Shards
	if tune != nil {
		tune(&cfg)
	}
	mon, err := rrr.NewMonitor(rrr.Options{
		Config:     cfg,
		Mapper:     env.Mapper,
		Aliases:    env.Aliases,
		Geo:        env.Geo,
		Rel:        env.Rel,
		IXPMembers: env.IXPMembers,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	det := events.NewDetector(events.Config{WindowSec: sc.WindowSec})
	for _, u := range env.Dump {
		mon.ObserveBGP(u)
		det.Prime(u)
	}
	for _, tr := range env.Corpus {
		// Replicated tracking: a worker tracks every pair its partitions
		// replicate, as primary or standby — the standby's monitor sees the
		// same full feed, so its verdicts are the primary's, byte for byte.
		if ring != nil && !ring.IsReplica(tr.Key(), id) {
			continue
		}
		// AS-loop traces are rejected by design; skip them like the lab.
		_ = mon.Track(tr)
	}
	return mon, det, env, nil
}

// StartLocalDaemon builds the single-node baseline the differential tests
// compare the cluster against: same scale, same feeds, full corpus, no
// worker identity.
func StartLocalDaemon(sc experiments.Scale, tune ...func(cfg *rrr.Config)) (*LocalWorker, error) {
	var tn func(cfg *rrr.Config)
	if len(tune) > 0 {
		tn = tune[0]
	}
	mon, det, env, err := newWorkerMonitor(sc, nil, 0, tn)
	if err != nil {
		return nil, err
	}
	srv := server.New(mon, server.Config{Events: det, RingSize: localRingSize})
	det.SetSink(srv.PublishEvent)
	lw := &LocalWorker{ID: 0, Mon: mon, Det: det, Srv: srv, Env: env, handler: srv.Handler()}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	lw.addr = lis.Addr().String()
	lw.httpSrv = &http.Server{Handler: lw.handler}
	go lw.httpSrv.Serve(lis)
	return lw, nil
}

// RunFeed drives the worker's pipeline to feed EOF, publishing signals and
// window markers to its SSE hub.
func (lw *LocalWorker) RunFeed(ctx context.Context) error {
	return rrr.RunPipeline(ctx, lw.Mon, rrr.PipelineConfig{
		Updates:       lw.Env.Updates,
		Traces:        lw.Env.Traces,
		Sink:          lw.Srv.Publish,
		Tap:           lw.Det,
		OnWindowClose: lw.Srv.PublishWindowClose,
	})
}

// StartLocal brings up the cluster: workers listening, router subscribed
// to their streams, feeds not yet flowing.
func StartLocal(opts LocalOptions) (*LocalCluster, error) {
	ring, err := NewRing(opts.Workers, opts.Partitions)
	if err != nil {
		return nil, err
	}
	lc := &LocalCluster{Ring: ring, feedErrs: make(chan error, opts.Workers)}
	urls := make([]string, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		mon, det, env, err := newWorkerMonitor(opts.Scale, ring, w, opts.Tune)
		if err != nil {
			lc.Close()
			return nil, err
		}
		srv := server.New(mon, server.Config{
			Worker: &server.WorkerIdentity{
				ID:         w,
				Workers:    opts.Workers,
				Partitions: ring.OwnedPartitions(w),
				RF:         ring.ReplicaFactor(),
			},
			Events:   det,
			RingSize: localRingSize,
		})
		det.SetSink(srv.PublishEvent)
		handler := http.Handler(srv.Handler())
		if opts.Middleware != nil {
			handler = opts.Middleware(w, handler)
		}
		lw := &LocalWorker{ID: w, Mon: mon, Det: det, Srv: srv, Env: env, handler: handler}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			lc.Close()
			return nil, err
		}
		lw.addr = lis.Addr().String()
		lw.httpSrv = &http.Server{Handler: handler}
		go lw.httpSrv.Serve(lis)
		lc.Workers = append(lc.Workers, lw)
		urls[w] = lw.URL()
		if opts.WorkerURL != nil {
			urls[w] = opts.WorkerURL(w, urls[w])
		}
	}
	rt, err := NewRouter(Options{
		Workers:          urls,
		Partitions:       opts.Partitions,
		Timeout:          opts.RouterTimeout,
		StreamBackoff:    opts.StreamBackoff,
		RingSize:         localRingSize,
		MaxInFlight:      opts.RouterMaxInFlight,
		BreakerThreshold: opts.BreakerThreshold,
		BreakerCooldown:  opts.BreakerCooldown,
	})
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.Router = rt
	lc.RouterTS = httptest.NewServer(rt.Handler())
	return lc, nil
}

// URL is the router's base URL.
func (lc *LocalCluster) URL() string { return lc.RouterTS.URL }

// WaitStreams blocks until the router has every worker stream attached
// (start feeds only after, or early signals are never seen by the
// merger).
func (lc *LocalCluster) WaitStreams(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for !lc.Router.StreamConnected() {
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: worker streams not connected after %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// StartFeeds launches every worker's pipeline.
func (lc *LocalCluster) StartFeeds() {
	if lc.started {
		return
	}
	lc.started = true
	ctx, cancel := context.WithCancel(context.Background())
	lc.cancel = cancel
	for _, lw := range lc.Workers {
		go func(lw *LocalWorker) {
			lc.feedErrs <- lw.RunFeed(ctx)
		}(lw)
	}
}

// WaitFeeds blocks until every worker's feed reaches EOF, returning the
// first pipeline error.
func (lc *LocalCluster) WaitFeeds() error {
	var first error
	for range lc.Workers {
		if err := <-lc.feedErrs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close tears the cluster down.
func (lc *LocalCluster) Close() {
	if lc.cancel != nil {
		lc.cancel()
	}
	if lc.RouterTS != nil {
		lc.RouterTS.Close()
	}
	if lc.Router != nil {
		lc.Router.Close()
	}
	for _, lw := range lc.Workers {
		lw.StopHTTP()
	}
}
