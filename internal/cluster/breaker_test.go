package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBreakerTransitions walks the full state machine with a pinned clock:
// closed survives threshold-1 failures, opens on the threshold-th, rejects
// during cooldown, grants exactly the probe right after it, re-opens on a
// failed probe, and closes on a successful one.
func TestBreakerTransitions(t *testing.T) {
	const cooldown = 50 * time.Millisecond
	b := newBreaker(0, 3, cooldown)
	now := time.Now()

	if ok, _ := b.allow(now); !ok {
		t.Fatal("fresh breaker rejects traffic")
	}
	// A success resets the failure streak: 2+success+2 never reaches 3.
	b.onFailure(now)
	b.onFailure(now)
	b.onSuccess()
	b.onFailure(now)
	if opened := b.onFailure(now); opened {
		t.Fatal("opened after 2 post-success failures; success did not clear the streak")
	}
	if ok, _ := b.allow(now); !ok {
		t.Fatal("breaker opened below threshold")
	}
	if opened := b.onFailure(now); !opened {
		t.Fatal("threshold-th consecutive failure did not report opening")
	}
	if got := b.snapshot(); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	if ok, probe := b.allow(now.Add(cooldown / 2)); ok || probe {
		t.Fatalf("mid-cooldown allow = (%v, %v), want rejection without probe", ok, probe)
	}

	// Cooldown elapsed: the first allow wins the probe right, the next
	// keeps failing over.
	if ok, probe := b.allow(now.Add(cooldown)); ok || !probe {
		t.Fatalf("post-cooldown allow = (%v, %v), want probe grant", ok, probe)
	}
	if got := b.snapshot(); got != "half-open" {
		t.Fatalf("state = %q, want half-open", got)
	}
	if ok, probe := b.allow(now.Add(cooldown)); ok || probe {
		t.Fatalf("second post-cooldown allow = (%v, %v), want rejection without probe", ok, probe)
	}

	// Failed probe: back to open, cooldown restarts from the probe.
	probeTime := now.Add(cooldown)
	b.onProbe(false, probeTime)
	if got := b.snapshot(); got != "open" {
		t.Fatalf("state after failed probe = %q, want open", got)
	}
	if ok, probe := b.allow(probeTime.Add(cooldown / 2)); ok || probe {
		t.Fatal("failed probe did not restart the cooldown")
	}
	if _, probe := b.allow(probeTime.Add(cooldown)); !probe {
		t.Fatal("no second probe after the restarted cooldown")
	}

	// Successful probe closes and traffic flows again.
	b.onProbe(true, probeTime.Add(cooldown))
	if got := b.snapshot(); got != "closed" {
		t.Fatalf("state after successful probe = %q, want closed", got)
	}
	if ok, _ := b.allow(probeTime.Add(cooldown)); !ok {
		t.Fatal("closed breaker rejects traffic")
	}
}

// TestBreakerHalfOpenSingleProbe races many allow() calls at an open
// breaker whose cooldown has elapsed: exactly one caller may win the probe
// right, or concurrent requests would stampede a barely-recovering worker.
// Meaningful under -race.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	past := time.Now().Add(-time.Hour)
	b := newBreaker(1, 1, 50*time.Millisecond)
	b.onFailure(past) // opens immediately, cooldown long elapsed

	const callers = 100
	var wg sync.WaitGroup
	probes := make(chan bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, probe := b.allow(time.Now())
			if ok {
				t.Error("half-open breaker admitted regular traffic")
			}
			probes <- probe
		}()
	}
	wg.Wait()
	close(probes)
	won := 0
	for p := range probes {
		if p {
			won++
		}
	}
	if won != 1 {
		t.Fatalf("%d callers won the probe right, want exactly 1", won)
	}
}

// TestRouterShedRecover wedges a worker under a MaxInFlight=1 router and
// checks the serve path sheds the overflow request with 429 + Retry-After
// instead of queueing, then serves normally once the wedge clears.
// Meaningful under -race: admission bookkeeping races with the shed path.
func TestRouterShedRecover(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	mw := func(id int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/stale" {
				select {
				case entered <- struct{}{}:
				default:
				}
				select {
				case <-release:
				case <-r.Context().Done():
					return
				}
			}
			h.ServeHTTP(w, r)
		})
	}
	lc, err := StartLocal(LocalOptions{
		Workers:           3,
		Scale:             diffScale(),
		RouterTimeout:     2 * time.Second,
		StreamBackoff:     20 * time.Millisecond,
		Middleware:        mw,
		RouterMaxInFlight: 1,
		// Breakers stay out of this test's way: the wedge would otherwise
		// open one and turn the recovery check into a failover check.
		BreakerThreshold: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	if err := lc.WaitStreams(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	all, _ := clusterKeys(t, lc)
	body, _ := json.Marshal(map[string]any{"keys": all[:1]})

	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(lc.URL()+"/v1/stale", "application/json", strings.NewReader(string(body)))
		if err != nil {
			first <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-entered // the batch is wedged inside a worker, holding the router's only slot

	resp, err := http.Post(lc.URL()+"/v1/stale", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	shedBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request = %d (%s), want 429", resp.StatusCode, shedBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After; clients can't back off politely")
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("wedged request finished %d, want 200 after release", code)
	}
	if got := httpPost(t, lc.URL()+"/v1/stale", string(body)); !strings.Contains(got, `"count":1`) {
		t.Fatalf("post-recovery batch = %s", got)
	}
}

// TestRouterMetricsExposition pins the router's scrape surface: the
// self-healing metric families from this layer are present with HELP
// text, so dashboards can alert on breaker flips and shed storms.
func TestRouterMetricsExposition(t *testing.T) {
	lc := startSmallCluster(t, nil)
	resp, err := http.Get(lc.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	for _, fam := range []string{
		"rrr_router_breaker_state",
		"rrr_router_breaker_opens_total",
		"rrr_router_failovers_total",
		"rrr_router_shed_total",
		"rrr_router_inflight",
		"rrr_server_shed_total",
		"rrr_server_inflight",
	} {
		if !strings.Contains(body, "\n"+fam) && !strings.HasPrefix(body, fam) {
			t.Errorf("missing family %s", fam)
		}
		if !strings.Contains(body, "# HELP "+fam+" ") {
			t.Errorf("family %s has no HELP text", fam)
		}
	}
	// The per-worker breaker gauge carries a worker label per breaker.
	if !strings.Contains(body, `rrr_router_breaker_state{worker="0"}`) {
		t.Error("breaker state gauge is not labelled by worker")
	}
}
