package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"rrr/internal/server"
)

// sseClient maintains one worker's /v1/signals subscription: it parses
// the worker's event stream, feeds the merger, and reconnects with
// bounded backoff when the worker restarts. Signal payload bytes are
// passed through untouched; parsing recovers only the ordering fields.
type sseClient struct {
	worker  int
	url     string
	m       *merger
	backoff time.Duration
	// lastDropped is the worker stream's cumulative drop counter as of
	// the last `dropped` frame; the merger is fed deltas. Reset per
	// connection (a fresh subscription starts a fresh counter).
	lastDropped uint64
}

func newSSEClient(worker int, baseURL string, m *merger, backoff time.Duration) *sseClient {
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	return &sseClient{
		worker:  worker,
		url:     strings.TrimRight(baseURL, "/") + "/v1/signals",
		m:       m,
		backoff: backoff,
	}
}

// run blocks until ctx is done, reconnecting after every stream failure.
func (c *sseClient) run(ctx context.Context) {
	wait := c.backoff
	for {
		if ctx.Err() != nil {
			return
		}
		err := c.consume(ctx)
		c.m.setConnected(c.worker, false)
		if ctx.Err() != nil {
			return
		}
		_ = err // connection failures are expected during worker restarts
		metClusterStreamReconnects.Inc()
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
		if wait < 2*time.Second {
			wait *= 2
		}
	}
}

// consume runs one connection: it marks the worker connected after the
// stream opens and dispatches events until the stream breaks.
func (c *sseClient) consume(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url, nil)
	if err != nil {
		return err
	}
	// A streaming client must not carry a response deadline; liveness
	// comes from the worker's keepalive comments and ctx cancellation.
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &httpStatusError{status: resp.StatusCode}
	}
	c.lastDropped = 0
	c.m.setConnected(c.worker, true)

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data != "" {
				c.dispatch(event, data)
			}
			event, data = "", ""
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		}
	}
	return sc.Err()
}

func (c *sseClient) dispatch(event, data string) {
	switch event {
	case "signal":
		raw := []byte(data)
		sig, err := server.ParseSignal(raw)
		if err != nil {
			return // malformed frame; ordering fields unrecoverable
		}
		c.m.signal(c.worker, sig, raw)
	case "routing":
		raw := []byte(data)
		ev, err := server.ParseEvent(raw)
		if err != nil {
			return // malformed frame; ordering fields unrecoverable
		}
		c.m.routing(c.worker, ev, raw)
	case "window":
		var mk struct {
			WindowStart int64 `json:"windowStart"`
		}
		if err := json.Unmarshal([]byte(data), &mk); err != nil {
			return
		}
		c.m.marker(c.worker, mk.WindowStart)
	case "dropped":
		var d struct {
			Dropped uint64 `json:"dropped"`
		}
		if err := json.Unmarshal([]byte(data), &d); err != nil {
			return
		}
		if d.Dropped > c.lastDropped {
			c.m.workerDropped(c.worker, d.Dropped-c.lastDropped)
			c.lastDropped = d.Dropped
		}
	}
}

type httpStatusError struct{ status int }

func (e *httpStatusError) Error() string {
	return "unexpected stream status " + http.StatusText(e.status)
}
