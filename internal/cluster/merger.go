package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"rrr"
	"rrr/internal/events"
)

// --- frame hub: fan merged SSE frames out to router subscribers ---

// frameHub mirrors the worker-side server.Hub, but carries pre-rendered
// SSE frames: the merger orders once and every subscriber receives
// identical bytes. Drop-oldest semantics protect the merge loop from slow
// clients exactly as the worker hub protects ingestion.
type frameHub struct {
	mu   sync.Mutex
	subs map[*frameSub]struct{}
	ring int
}

type frameSub struct {
	ch      chan []byte
	dropped atomic.Uint64
}

func newFrameHub(ring int) *frameHub {
	if ring <= 0 {
		ring = 256
	}
	return &frameHub{subs: make(map[*frameSub]struct{}), ring: ring}
}

func (h *frameHub) subscribe() *frameSub {
	sub := &frameSub{ch: make(chan []byte, h.ring)}
	h.mu.Lock()
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	return sub
}

func (h *frameHub) unsubscribe(sub *frameSub) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
}

func (h *frameHub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

func (h *frameHub) publish(frame []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		sub.offer(frame)
	}
}

func (s *frameSub) offer(frame []byte) {
	for i := 0; i < 4; i++ {
		select {
		case s.ch <- frame:
			return
		default:
		}
		select {
		case <-s.ch:
			s.dropped.Add(1)
		default:
		}
	}
	s.dropped.Add(1)
}

// --- window-barrier merger ---

// sigEvent pairs a worker signal's parsed form (for ordering) with the
// exact bytes the worker put on the wire (for re-emission): the merged
// stream never re-marshals, so it cannot drift from worker output.
type sigEvent struct {
	sig rrr.Signal
	raw []byte
}

// routingEvent pairs a worker routing event's parsed form (for ordering
// and dedup) with its wire bytes, like sigEvent. Every worker ingests the
// full feed and runs an identical detector, so the merged stream is the
// per-window union-dedup of identical emissions.
type routingEvent struct {
	ev  events.Event
	raw []byte
}

// merger multiplexes K workers' SSE streams into one totally-ordered
// stream. Workers delimit engine windows with `event: window` markers
// (every worker ingests the full feed, so all close the same windows);
// the merger buffers each worker's signals and flushes window W — all
// buffered signals of W sorted by rrr.SignalLess, then W's marker — once
// every connected worker has reported W closed. Because a single engine
// also emits each window signalLess-sorted and marker-terminated, the
// merged stream is byte-identical to a single daemon's.
//
// Replication: each partition's signals arrive from every connected
// replica, so the flush dedups identical signal bytes down to their
// per-worker multiplicity (a lone daemon can legitimately emit the same
// bytes twice in a window; two replicas each reporting it once must not).
// That same redundancy is what makes failover invisible: while at least
// one replica of every partition stays connected, a window's merged
// signal set is complete and byte-identical to a single daemon's, so a
// worker disconnecting and reconnecting leaves no mark on the stream.
//
// Degradation: a disconnected worker is excluded from the barrier so the
// survivors' stream keeps flowing. Only when some partition has no
// connected replica at all do flushed windows actually lose signals; the
// merger counts those lossy windows and surfaces an `event: gap` frame —
// with the count and window range, so consumers can size a catch-up
// fetch — once coverage is restored.
type merger struct {
	mu        sync.Mutex
	workers   int
	started   bool // all workers connected at least once; no flush before
	connected []bool
	everConn  []bool
	buf       [][]sigEvent
	rbuf      [][]routingEvent
	markQ     [][]int64
	// partReps maps each partition to its replica workers, for coverage.
	partReps [][]int
	// Windows flushed while some partition had no connected replica: the
	// gap surfaced once coverage returns.
	lossyCount int
	lossyFirst int64
	lossyLast  int64
	flushed    int64
	hasFlushed bool
	hub        *frameHub
}

func newMerger(workers int, hub *frameHub, ring *Ring) *merger {
	partReps := make([][]int, ring.Partitions())
	for p := range partReps {
		partReps[p] = ring.Replicas(p)
	}
	return &merger{
		workers:   workers,
		connected: make([]bool, workers),
		everConn:  make([]bool, workers),
		buf:       make([][]sigEvent, workers),
		rbuf:      make([][]routingEvent, workers),
		markQ:     make([][]int64, workers),
		partReps:  partReps,
		hub:       hub,
	}
}

func (m *merger) setConnected(w int, up bool) {
	m.mu.Lock()
	wasUp := m.connected[w]
	m.connected[w] = up
	if up {
		m.everConn[w] = true
		if !m.started {
			all := true
			for _, ever := range m.everConn {
				all = all && ever
			}
			m.started = all
		}
		if m.lossyCount > 0 && m.coveredLocked() {
			// Coverage is back, but the windows flushed while some
			// partition had no connected replica are missing signals the
			// merged stream will never re-send; say so — with the count
			// and range, so consumers can size their catch-up fetch —
			// rather than splicing silently.
			frame := fmt.Sprintf(
				"event: gap\ndata: {\"missedWindows\":%d,\"firstMissedWindow\":%d,\"lastMissedWindow\":%d}\n\n",
				m.lossyCount, m.lossyFirst, m.lossyLast)
			m.lossyCount = 0
			metClusterStreamGaps.Inc()
			m.hub.publish([]byte(frame))
		}
	} else if wasUp {
		// The stream died mid-window: whatever it buffered was never
		// confirmed by a marker and will not be re-sent on reconnect.
		metClusterStreamLate.Add(uint64(len(m.buf[w]) + len(m.rbuf[w])))
		m.buf[w] = nil
		m.rbuf[w] = nil
		m.markQ[w] = nil
	}
	n := int64(0)
	for _, c := range m.connected {
		if c {
			n++
		}
	}
	metClusterWorkerConnected.Set(n)
	m.tryFlushLocked()
	m.mu.Unlock()
}

// coveredLocked reports whether every partition has at least one replica
// whose stream is attached — the condition under which flushed windows
// carry their complete signal set. Callers hold m.mu.
func (m *merger) coveredLocked() bool {
	for _, reps := range m.partReps {
		live := false
		for _, w := range reps {
			if m.connected[w] {
				live = true
				break
			}
		}
		if !live {
			return false
		}
	}
	return true
}

// covered is coveredLocked for external callers (router readiness).
func (m *merger) covered() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.coveredLocked()
}

// allConnected reports whether every worker stream is currently attached.
func (m *merger) allConnected() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.connected {
		if !c {
			return false
		}
	}
	return true
}

func (m *merger) signal(w int, sig rrr.Signal, raw []byte) {
	m.mu.Lock()
	if m.hasFlushed && sig.WindowStart <= m.flushed {
		// Late arrival for a window the barrier already emitted; keeping
		// it would reorder the client stream.
		metClusterStreamLate.Inc()
		m.mu.Unlock()
		return
	}
	m.buf[w] = append(m.buf[w], sigEvent{sig: sig, raw: raw})
	m.mu.Unlock()
}

func (m *merger) routing(w int, ev events.Event, raw []byte) {
	m.mu.Lock()
	if m.hasFlushed && ev.WindowStart <= m.flushed {
		metClusterStreamLate.Inc()
		m.mu.Unlock()
		return
	}
	m.rbuf[w] = append(m.rbuf[w], routingEvent{ev: ev, raw: raw})
	m.mu.Unlock()
}

func (m *merger) marker(w int, ws int64) {
	m.mu.Lock()
	if m.hasFlushed && ws <= m.flushed {
		// Re-announced window (worker recovered and replayed); its
		// signals were either flushed already or are unrecoverable.
		m.mu.Unlock()
		return
	}
	m.markQ[w] = append(m.markQ[w], ws)
	m.tryFlushLocked()
	m.mu.Unlock()
}

// workerDropped propagates a worker-side ring overflow: the worker's own
// hub discarded n events before we read them, so the merged stream has an
// unquantifiable hole. Surface it like a reconnect gap.
func (m *merger) workerDropped(w int, n uint64) {
	metClusterStreamLate.Add(n)
	frame := fmt.Sprintf("event: gap\ndata: {\"worker\":%d,\"droppedUpstream\":%d}\n\n", w, n)
	metClusterStreamGaps.Inc()
	m.hub.publish([]byte(frame))
}

// tryFlushLocked advances the barrier. The candidate is the smallest head
// marker among connected workers; it flushes once every partition that
// has a connected replica at all has one that confirmed the candidate
// (head marker equal to it — a later head means the replica's signals for
// this window were lost to a disconnect, an empty queue that it hasn't
// closed the window yet). Replicas deliver identical bytes, so flushing
// on the first confirming replica emits the same window a full barrier
// would; the laggard's duplicates are dropped as late arrivals. Waiting
// for every connected worker instead would wedge the stream on a replica
// that reconnected after its feed ended and will never mark again.
// Partitions with no connected replica cannot be saved by waiting; they
// flush lossy and are accounted by the gap frame. Callers hold m.mu.
func (m *merger) tryFlushLocked() {
	if !m.started {
		return
	}
	for {
		ws := int64(0)
		have := false
		for w := 0; w < m.workers; w++ {
			if !m.connected[w] || len(m.markQ[w]) == 0 {
				continue
			}
			if !have || m.markQ[w][0] < ws {
				ws = m.markQ[w][0]
				have = true
			}
		}
		if !have {
			return
		}
		for _, reps := range m.partReps {
			anyConnected := false
			confirmed := false
			for _, w := range reps {
				if !m.connected[w] {
					continue
				}
				anyConnected = true
				if len(m.markQ[w]) > 0 && m.markQ[w][0] == ws {
					confirmed = true
					break
				}
			}
			if anyConnected && !confirmed {
				return // a live replica of this partition hasn't closed ws yet
			}
		}
		m.flushWindowLocked(ws)
	}
}

func (m *merger) flushWindowLocked(ws int64) {
	// Signals: replicas deliver identical bytes for the same signal, so
	// the window keeps each distinct byte string at its maximum per-worker
	// multiplicity — one replica's full view, never the replica-count
	// multiple, and a reconnect's partial buffer never shadows its
	// partner's complete one.
	type sigAgg struct {
		ev    sigEvent
		count int
	}
	aggs := make(map[string]*sigAgg)
	var routs []routingEvent
	seenRout := make(map[string]bool)
	for w := 0; w < m.workers; w++ {
		if len(m.markQ[w]) > 0 && m.markQ[w][0] == ws {
			m.markQ[w] = m.markQ[w][1:]
		}
		perWorker := make(map[string]int)
		keep := m.buf[w][:0]
		for _, ev := range m.buf[w] {
			if ev.sig.WindowStart <= ws {
				raw := string(ev.raw)
				perWorker[raw]++
				if a := aggs[raw]; a == nil {
					aggs[raw] = &sigAgg{ev: ev, count: perWorker[raw]}
				} else if perWorker[raw] > a.count {
					a.count = perWorker[raw]
				}
			} else {
				keep = append(keep, ev)
			}
		}
		m.buf[w] = keep
		// Routing events: every worker emits the identical stream (full
		// feed, identical detector), so the window's merged set is the
		// byte-level union-dedup of worker emissions.
		rkeep := m.rbuf[w][:0]
		for _, rev := range m.rbuf[w] {
			if rev.ev.WindowStart <= ws {
				if !seenRout[string(rev.raw)] {
					seenRout[string(rev.raw)] = true
					routs = append(routs, rev)
				}
			} else {
				rkeep = append(rkeep, rev)
			}
		}
		m.rbuf[w] = rkeep
	}
	if !m.coveredLocked() {
		// Some partition had no connected replica while this window
		// closed: its signals are simply absent. Record the loss for the
		// gap frame emitted when coverage returns.
		if m.lossyCount == 0 {
			m.lossyFirst = ws
		}
		m.lossyCount++
		m.lossyLast = ws
	}
	sigs := make([]sigEvent, 0, len(aggs))
	for _, a := range aggs {
		for i := 0; i < a.count; i++ {
			sigs = append(sigs, a.ev)
		}
	}
	sort.Slice(sigs, func(i, j int) bool {
		if rrr.SignalLess(sigs[i].sig, sigs[j].sig) {
			return true
		}
		if rrr.SignalLess(sigs[j].sig, sigs[i].sig) {
			return false
		}
		// SignalLess ties with distinct bytes (only formatting could
		// differ) break on the wire form so the map's iteration order
		// can't leak into the stream.
		return string(sigs[i].raw) < string(sigs[j].raw)
	})
	for _, ev := range sigs {
		frame := make([]byte, 0, len(ev.raw)+24)
		frame = append(frame, "event: signal\ndata: "...)
		frame = append(frame, ev.raw...)
		frame = append(frame, "\n\n"...)
		m.hub.publish(frame)
		metClusterStreamSignals.Inc()
	}
	sort.SliceStable(routs, func(i, j int) bool { return events.EventLess(routs[i].ev, routs[j].ev) })
	for _, rev := range routs {
		frame := make([]byte, 0, len(rev.raw)+25)
		frame = append(frame, "event: routing\ndata: "...)
		frame = append(frame, rev.raw...)
		frame = append(frame, "\n\n"...)
		m.hub.publish(frame)
		metClusterStreamRouting.Inc()
	}
	m.hub.publish([]byte(fmt.Sprintf("event: window\ndata: {\"windowStart\":%d}\n\n", ws)))
	metClusterStreamWindows.Inc()
	m.flushed = ws
	m.hasFlushed = true
}
