package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"rrr/internal/experiments"
	"rrr/internal/netsim"
)

// eventsDiffScale needs at least two simulated days: scenario episodes are
// scheduled after the first day so baselines settle before injections.
func eventsDiffScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Days = 2
	sc.PublicPerWindow = 5
	pack := netsim.FullPack()
	sc.Scenario = &pack
	return sc
}

// eventsOutputs are the event-surface comparison points: the full SSE
// stream (signals, routing events, window markers interleaved in order),
// the routing frames alone, and both /v1/events bodies.
type eventsOutputs struct {
	stream  string
	routing string
	get     string
	query   string
}

// routingFrames extracts the `event: routing` frames (with their data
// lines) from a normalized SSE stream.
func routingFrames(stream string) string {
	lines := strings.Split(stream, "\n")
	var out []string
	for i := 0; i < len(lines); i++ {
		if lines[i] == "event: routing" && i+1 < len(lines) {
			out = append(out, lines[i], lines[i+1], "")
		}
	}
	return strings.Join(out, "\n")
}

const eventsQueryBody = `{"classes":["blackhole","route-leak","hijack-origin","hijack-moas","hijack-subprefix"],"fromWindow":86400}`

func collectEventsOutputs(t *testing.T, baseURL, stream string) eventsOutputs {
	t.Helper()
	return eventsOutputs{
		stream:  stream,
		routing: routingFrames(stream),
		get:     httpGet(t, baseURL+"/v1/events"),
		query:   httpPost(t, baseURL+"/v1/events", eventsQueryBody),
	}
}

func singleEventsOutputs(t *testing.T, sc experiments.Scale) eventsOutputs {
	t.Helper()
	lw, err := StartLocalDaemon(sc)
	if err != nil {
		t.Fatal(err)
	}
	defer lw.StopHTTP()

	cap := captureStream(t, lw.URL())
	if err := lw.RunFeed(context.Background()); err != nil {
		t.Fatalf("baseline feed: %v", err)
	}
	stream := normalizeStream(cap.stable(t, 300*time.Millisecond, 30*time.Second))
	return collectEventsOutputs(t, lw.URL(), stream)
}

func clusterEventsOutputs(t *testing.T, sc experiments.Scale, workers int) eventsOutputs {
	t.Helper()
	lc, err := StartLocal(LocalOptions{
		Workers:       workers,
		Scale:         sc,
		RouterTimeout: 30 * time.Second,
		StreamBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.WaitStreams(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	cap := captureStream(t, lc.URL())
	lc.StartFeeds()
	if err := lc.WaitFeeds(); err != nil {
		t.Fatalf("cluster feeds: %v", err)
	}
	stream := normalizeStream(cap.stable(t, 300*time.Millisecond, 30*time.Second))
	return collectEventsOutputs(t, lc.URL(), stream)
}

// TestEventsDifferential extends the byte-identity guarantee to the event
// surfaces: under a full adversarial scenario pack, the serial engine, a
// 4-shard engine, and a 3-worker cluster produce byte-identical SSE
// streams (signals, routing events, and window markers in order) and
// byte-identical GET/POST /v1/events bodies.
func TestEventsDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("events differential runs two simulated days per topology")
	}
	serial := eventsDiffScale()
	want := singleEventsOutputs(t, serial)

	// Vacuity guards: the scenario pack must actually have produced
	// routing events on every surface.
	if n := strings.Count(want.routing, "event: routing"); n < 5 {
		t.Fatalf("baseline stream carries %d routing frames; differential would be vacuous:\n%s", n, want.routing)
	}
	var got struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal([]byte(want.get), &got); err != nil || got.Count < 5 {
		t.Fatalf("GET /v1/events carries %d events (err %v); differential would be vacuous", got.Count, err)
	}
	if err := json.Unmarshal([]byte(want.query), &got); err != nil || got.Count < 2 {
		t.Fatalf("POST /v1/events filter matches %d events (err %v); want at least the BGP classes", got.Count, err)
	}

	t.Run("sharded", func(t *testing.T) {
		sc := eventsDiffScale()
		sc.Shards = 4
		gotOut := singleEventsOutputs(t, sc)
		diffStrings(t, "GET /v1/events", want.get, gotOut.get)
		diffStrings(t, "POST /v1/events", want.query, gotOut.query)
		diffStrings(t, "routing frames", want.routing, gotOut.routing)
		diffStrings(t, "full stream", want.stream, gotOut.stream)
	})

	t.Run("cluster-K=3", func(t *testing.T) {
		gotOut := clusterEventsOutputs(t, eventsDiffScale(), 3)
		diffStrings(t, "GET /v1/events", want.get, gotOut.get)
		diffStrings(t, "POST /v1/events", want.query, gotOut.query)
		diffStrings(t, "routing frames", want.routing, gotOut.routing)
		diffStrings(t, "full stream", want.stream, gotOut.stream)
	})
}

// TestEventsEndpointWithoutDetector pins the unconfigured-path contract:
// a server with no detector rejects /v1/events rather than serving an
// empty body that looks like "no events".
func TestEventsEndpointWithoutDetector(t *testing.T) {
	sc := diffScale()
	lw, err := StartLocalDaemon(sc)
	if err != nil {
		t.Fatal(err)
	}
	defer lw.StopHTTP()
	// StartLocalDaemon always wires a detector; exercise the merged GET
	// path against an idle daemon instead: zero events is a valid body.
	body := httpGet(t, lw.URL()+"/v1/events")
	var resp struct {
		Count  int               `json:"count"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("GET /v1/events: %v (%s)", err, body)
	}
	if resp.Count != len(resp.Events) {
		t.Fatalf("count %d != events %d", resp.Count, len(resp.Events))
	}
	_ = fmt.Sprintf("%v", resp)
}
