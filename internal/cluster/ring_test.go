package cluster

import (
	"testing"

	"rrr"
)

func TestRingDeterministicAndComplete(t *testing.T) {
	a, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRing(3, 0)
	if a.Partitions() != DefaultPartitions {
		t.Fatalf("partitions = %d, want default %d", a.Partitions(), DefaultPartitions)
	}
	total := 0
	for w := 0; w < 3; w++ {
		if a.OwnedPartitions(w) == 0 {
			t.Fatalf("worker %d owns no partitions; vnode spread failed", w)
		}
		if got := len(a.WorkerPartitions(w)); got != a.OwnedPartitions(w) {
			t.Fatalf("WorkerPartitions(%d) lists %d, OwnedPartitions says %d", w, got, a.OwnedPartitions(w))
		}
		total += a.OwnedPartitions(w)
	}
	if total != a.Partitions() {
		t.Fatalf("owned partitions sum to %d, want %d", total, a.Partitions())
	}
	for p := 0; p < a.Partitions(); p++ {
		if a.OwnerOfPartition(p) != b.OwnerOfPartition(p) {
			t.Fatalf("partition %d placement differs between identical rings", p)
		}
	}
	for i := 0; i < 1000; i++ {
		k := rrr.Key{Src: uint32(i * 2654435761), Dst: uint32(i*40503 + 7)}
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %v routed differently by identical rings", k)
		}
		if a.Owner(k) != a.OwnerOfPartition(a.PartitionOf(k)) {
			t.Fatal("Owner disagrees with PartitionOf composition")
		}
	}
}

// TestRingPartitionStability pins the rebalance property consistent
// hashing buys: adding a worker moves only partitions the new worker
// takes over — no partition shuffles between surviving workers.
func TestRingPartitionStability(t *testing.T) {
	small, _ := NewRing(3, 128)
	big, _ := NewRing(4, 128)
	moved := 0
	for p := 0; p < 128; p++ {
		was, now := small.OwnerOfPartition(p), big.OwnerOfPartition(p)
		if was == now {
			continue
		}
		if now != 3 {
			t.Fatalf("partition %d moved from worker %d to surviving worker %d; only the new worker may gain", p, was, now)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("new worker took nothing; ring is not spreading")
	}
}

func TestRingSingleWorkerOwnsAll(t *testing.T) {
	r, _ := NewRing(1, 0)
	for i := 0; i < 100; i++ {
		if w := r.Owner(rrr.Key{Src: uint32(i), Dst: uint32(i + 1)}); w != 0 {
			t.Fatalf("single-worker ring routed to %d", w)
		}
	}
	if _, err := NewRing(0, 0); err == nil {
		t.Fatal("zero workers must be rejected")
	}
}
