package cluster

import (
	"testing"

	"rrr"
)

func TestRingDeterministicAndComplete(t *testing.T) {
	a, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRing(3, 0)
	if a.Partitions() != DefaultPartitions {
		t.Fatalf("partitions = %d, want default %d", a.Partitions(), DefaultPartitions)
	}
	total := 0
	for w := 0; w < 3; w++ {
		if a.OwnedPartitions(w) == 0 {
			t.Fatalf("worker %d owns no partitions; vnode spread failed", w)
		}
		if got := len(a.WorkerPartitions(w)); got != a.OwnedPartitions(w) {
			t.Fatalf("WorkerPartitions(%d) lists %d, OwnedPartitions says %d", w, got, a.OwnedPartitions(w))
		}
		total += a.OwnedPartitions(w)
	}
	if total != a.Partitions() {
		t.Fatalf("owned partitions sum to %d, want %d", total, a.Partitions())
	}
	for p := 0; p < a.Partitions(); p++ {
		if a.OwnerOfPartition(p) != b.OwnerOfPartition(p) {
			t.Fatalf("partition %d placement differs between identical rings", p)
		}
	}
	for i := 0; i < 1000; i++ {
		k := rrr.Key{Src: uint32(i * 2654435761), Dst: uint32(i*40503 + 7)}
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %v routed differently by identical rings", k)
		}
		if a.Owner(k) != a.OwnerOfPartition(a.PartitionOf(k)) {
			t.Fatal("Owner disagrees with PartitionOf composition")
		}
	}
}

// TestRingPartitionStability pins the rebalance property consistent
// hashing buys: adding a worker moves only partitions the new worker
// takes over — no partition shuffles between surviving workers.
func TestRingPartitionStability(t *testing.T) {
	small, _ := NewRing(3, 128)
	big, _ := NewRing(4, 128)
	moved := 0
	for p := 0; p < 128; p++ {
		was, now := small.OwnerOfPartition(p), big.OwnerOfPartition(p)
		if was == now {
			continue
		}
		if now != 3 {
			t.Fatalf("partition %d moved from worker %d to surviving worker %d; only the new worker may gain", p, was, now)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("new worker took nothing; ring is not spreading")
	}
}

func TestRingSingleWorkerOwnsAll(t *testing.T) {
	r, _ := NewRing(1, 0)
	for i := 0; i < 100; i++ {
		if w := r.Owner(rrr.Key{Src: uint32(i), Dst: uint32(i + 1)}); w != 0 {
			t.Fatalf("single-worker ring routed to %d", w)
		}
	}
	if _, err := NewRing(0, 0); err == nil {
		t.Fatal("zero workers must be rejected")
	}
}

// TestRingStandbyPlacement pins the replication geometry: every partition
// has a standby distinct from its primary (K >= 2), placement is
// deterministic, and Replicas/IsReplica agree with the primary+standby
// pair.
func TestRingStandbyPlacement(t *testing.T) {
	a, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRing(3, 0)
	if rf := a.ReplicaFactor(); rf != 2 {
		t.Fatalf("ReplicaFactor() = %d, want 2 for 3 workers", rf)
	}
	for p := 0; p < a.Partitions(); p++ {
		pri, sb := a.OwnerOfPartition(p), a.StandbyOfPartition(p)
		if sb == pri {
			t.Fatalf("partition %d standby == primary %d; replication buys nothing", p, pri)
		}
		if sb < 0 || sb >= 3 {
			t.Fatalf("partition %d standby %d out of range", p, sb)
		}
		if b.StandbyOfPartition(p) != sb {
			t.Fatalf("partition %d standby differs between identical rings", p)
		}
		reps := a.Replicas(p)
		if len(reps) != 2 || reps[0] != pri || reps[1] != sb {
			t.Fatalf("Replicas(%d) = %v, want [%d %d]", p, reps, pri, sb)
		}
	}
	for i := 0; i < 1000; i++ {
		k := rrr.Key{Src: uint32(i * 2654435761), Dst: uint32(i*40503 + 7)}
		p := a.PartitionOf(k)
		if a.Standby(k) != a.StandbyOfPartition(p) {
			t.Fatal("Standby disagrees with StandbyOfPartition composition")
		}
		for w := 0; w < 3; w++ {
			want := w == a.OwnerOfPartition(p) || w == a.StandbyOfPartition(p)
			if got := a.IsReplica(k, w); got != want {
				t.Fatalf("IsReplica(%v, %d) = %v, want %v", k, w, got, want)
			}
		}
	}
}

// TestRingStandbyCoverage checks the bookkeeping views: StandbyPartitions
// lists exactly the partitions a worker backs up, every partition appears
// in exactly one worker's standby list, and ReplicaPartitions is the union
// of owned and standby slices.
func TestRingStandbyCoverage(t *testing.T) {
	r, _ := NewRing(4, 128)
	seen := make(map[int]int)
	for w := 0; w < 4; w++ {
		for _, p := range r.StandbyPartitions(w) {
			if r.StandbyOfPartition(p) != w {
				t.Fatalf("worker %d lists partition %d but its standby is %d", w, p, r.StandbyOfPartition(p))
			}
			seen[p]++
		}
		owned := len(r.WorkerPartitions(w))
		standby := len(r.StandbyPartitions(w))
		if got := r.ReplicaPartitions(w); got != owned+standby {
			t.Fatalf("worker %d ReplicaPartitions = %d, want owned %d + standby %d", w, got, owned, standby)
		}
	}
	if len(seen) != 128 {
		t.Fatalf("standby lists cover %d of 128 partitions", len(seen))
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("partition %d appears in %d standby lists", p, n)
		}
	}
}

// TestRingSingleWorkerNoReplication: with one worker there is nowhere to
// replicate — standby collapses to the primary and RF stays 1, so the
// single-node path is untouched by replication.
func TestRingSingleWorkerNoReplication(t *testing.T) {
	r, _ := NewRing(1, 0)
	if rf := r.ReplicaFactor(); rf != 1 {
		t.Fatalf("ReplicaFactor() = %d, want 1 for a single worker", rf)
	}
	for p := 0; p < r.Partitions(); p++ {
		if sb := r.StandbyOfPartition(p); sb != 0 {
			t.Fatalf("partition %d standby %d, want 0", p, sb)
		}
		if reps := r.Replicas(p); len(reps) != 1 || reps[0] != 0 {
			t.Fatalf("Replicas(%d) = %v, want [0]", p, reps)
		}
	}
	if n := len(r.StandbyPartitions(0)); n != 0 {
		t.Fatalf("single worker lists %d standby partitions, want 0", n)
	}
}
