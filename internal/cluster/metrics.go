package cluster

import "rrr/internal/obs"

// Router/cluster metric handles, resolved once at package init and served
// by the router's GET /metrics alongside the engine families.
var (
	metRouterRequests   = obs.Default.Counter("rrr_router_requests_total")
	metRouterFanout     = obs.Default.Counter("rrr_router_fanout_total")
	metRouterRetries    = obs.Default.Counter("rrr_router_retries_total")
	metRouterWorkerErrs = obs.Default.Counter("rrr_router_worker_errors_total")
	metRouterPartial    = obs.Default.Counter("rrr_router_partial_responses_total")

	metRouterFailovers    = obs.Default.Counter("rrr_router_failovers_total")
	metRouterBreakerOpens = obs.Default.Counter("rrr_router_breaker_opens_total")
	metRouterShed         = obs.Default.Counter("rrr_router_shed_total")
	metRouterInflight     = obs.Default.Gauge("rrr_router_inflight")

	metClusterStreamSignals    = obs.Default.Counter("rrr_cluster_stream_signals_total")
	metClusterStreamRouting    = obs.Default.Counter("rrr_cluster_stream_routing_total")
	metClusterStreamWindows    = obs.Default.Counter("rrr_cluster_stream_windows_total")
	metClusterStreamGaps       = obs.Default.Counter("rrr_cluster_stream_gaps_total")
	metClusterStreamLate       = obs.Default.Counter("rrr_cluster_stream_late_dropped_total")
	metClusterWorkerConnected  = obs.Default.Gauge("rrr_cluster_workers_connected")
	metClusterStreamReconnects = obs.Default.Counter("rrr_cluster_stream_reconnects_total")
)

func init() {
	obs.Default.Help("rrr_router_requests_total", "client requests handled by the cluster router")
	obs.Default.Help("rrr_router_fanout_total", "worker sub-requests issued by the router")
	obs.Default.Help("rrr_router_retries_total", "worker sub-requests retried after a first failure")
	obs.Default.Help("rrr_router_worker_errors_total", "worker sub-requests that failed after retry")
	obs.Default.Help("rrr_router_partial_responses_total", "responses served with unavailablePartitions set")
	obs.Default.Help("rrr_router_failovers_total", "key-routed sub-requests served by a standby replica")
	obs.Default.Help("rrr_router_breaker_opens_total", "circuit breakers opened by consecutive worker failures")
	obs.Default.Help("rrr_router_breaker_state", "per-worker breaker state (0=closed 1=open 2=half-open)")
	obs.Default.Help("rrr_router_shed_total", "router requests shed by in-flight admission")
	obs.Default.Help("rrr_router_inflight", "router requests currently in flight")
	obs.Default.Help("rrr_cluster_stream_signals_total", "signals merged into the router's SSE stream")
	obs.Default.Help("rrr_cluster_stream_routing_total", "routing events merged into the router's SSE stream")
	obs.Default.Help("rrr_cluster_stream_windows_total", "window barriers flushed by the stream merger")
	obs.Default.Help("rrr_cluster_stream_gaps_total", "stream discontinuities surfaced after worker reconnects")
	obs.Default.Help("rrr_cluster_stream_late_dropped_total", "late signals for already-flushed windows, dropped")
	obs.Default.Help("rrr_cluster_workers_connected", "worker SSE streams currently connected")
	obs.Default.Help("rrr_cluster_stream_reconnects_total", "worker SSE stream reconnect attempts")
}
