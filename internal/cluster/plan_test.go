package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

type planResp struct {
	Keys    []string        `json:"keys"`
	Planned int             `json:"planned"`
	Plan    json.RawMessage `json:"plan"`
}

func parsePlan(t *testing.T, body string) planResp {
	t.Helper()
	var p planResp
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("plan response: %v", err)
	}
	return p
}

func planBody(budget int) string {
	return fmt.Sprintf(`{"budget":%d}`, budget)
}

// TestClusterRefreshPlanDifferential is the regression test for the
// router's old concatenate-then-truncate plan merge, which kept worker
// 0's whole plan and starved later workers regardless of signal
// priority. A budget-constrained plan from the router must be
// byte-identical to the single daemon's over the same feeds: the global
// top-budget selection in §4.3.1 priority order, interleaved across
// workers.
func TestClusterRefreshPlanDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential runs a full simulated day per topology")
	}

	// Single-daemon baseline, fed to EOF. No refresh measurements are
	// recorded, so calibration stays uninitialized and planning is the
	// deterministic Table-1 bootstrap — exact equality is well-defined.
	lw, err := StartLocalDaemon(diffScale())
	if err != nil {
		t.Fatal(err)
	}
	defer lw.StopHTTP()
	if err := lw.RunFeed(context.Background()); err != nil {
		t.Fatalf("baseline feed: %v", err)
	}
	full := parsePlan(t, httpPost(t, lw.URL()+"/v1/refresh/plan", planBody(1<<20)))
	if full.Planned < 6 {
		t.Fatalf("only %d plannable pairs; differential would be vacuous", full.Planned)
	}
	// A budget below the candidate count forces the truncation the old
	// merge got wrong.
	budget := full.Planned * 2 / 3
	want := httpPost(t, lw.URL()+"/v1/refresh/plan", planBody(budget))
	if got := parsePlan(t, want).Planned; got != budget {
		t.Fatalf("baseline planned %d of budget %d", got, budget)
	}

	// K=3 cluster over the same feeds.
	lc, err := StartLocal(LocalOptions{
		Workers:       3,
		Scale:         diffScale(),
		RouterTimeout: 30 * time.Second,
		StreamBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.WaitStreams(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	lc.StartFeeds()
	if err := lc.WaitFeeds(); err != nil {
		t.Fatalf("cluster feeds: %v", err)
	}

	// Vacuity guards: the merge only matters if several workers hold
	// plannable pairs, and the priority interleave only matters if the
	// naive "worker 0 first" truncation would have picked a different
	// set or order.
	var workerKeys [][]string
	contributing := 0
	for _, w := range lc.Workers {
		p := parsePlan(t, httpPost(t, w.URL()+"/v1/refresh/plan", planBody(budget)))
		if p.Planned > 0 {
			contributing++
		}
		workerKeys = append(workerKeys, p.Keys)
	}
	if contributing < 2 {
		t.Fatalf("%d workers hold plannable pairs; merge would be vacuous", contributing)
	}
	var naive []string
	for _, keys := range workerKeys {
		naive = append(naive, keys...)
	}
	if len(naive) > budget {
		naive = naive[:budget]
	}

	got := httpPost(t, lc.URL()+"/v1/refresh/plan", planBody(budget))
	diffStrings(t, "refresh plan", want, got)

	merged := parsePlan(t, got)
	naiveMatches := len(naive) == len(merged.Keys)
	if naiveMatches {
		for i := range naive {
			if naive[i] != merged.Keys[i] {
				naiveMatches = false
				break
			}
		}
	}
	if naiveMatches {
		t.Fatal("naive concatenation equals the priority merge; test does not exercise the interleave")
	}
}
