package cluster

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"rrr/internal/server"
)

// startSmallCluster brings up a K=3 cluster with a fast per-worker
// timeout, feeds idle (the tracked corpus alone answers verdicts).
func startSmallCluster(t *testing.T, mw func(int, http.Handler) http.Handler) *LocalCluster {
	t.Helper()
	lc, err := StartLocal(LocalOptions{
		Workers:       3,
		Scale:         diffScale(),
		RouterTimeout: 500 * time.Millisecond,
		StreamBackoff: 20 * time.Millisecond,
		Middleware:    mw,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	if err := lc.WaitStreams(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return lc
}

// clusterKeys fetches the merged key list and splits it by owner.
func clusterKeys(t *testing.T, lc *LocalCluster) (all []string, byWorker [][]string) {
	t.Helper()
	var resp struct {
		Keys []string `json:"keys"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, lc.URL()+"/v1/keys")), &resp); err != nil {
		t.Fatal(err)
	}
	byWorker = make([][]string, lc.Ring.Workers())
	for _, ks := range resp.Keys {
		k, err := server.ParseKey(ks)
		if err != nil {
			t.Fatal(err)
		}
		w := lc.Ring.Owner(k)
		byWorker[w] = append(byWorker[w], ks)
	}
	return resp.Keys, byWorker
}

type batchResp struct {
	Stale                 int   `json:"stale"`
	Count                 int   `json:"count"`
	UnavailablePartitions []int `json:"unavailablePartitions"`
	Verdicts              []struct {
		Key        string `json:"key"`
		Tracked    bool   `json:"tracked"`
		Visibility string `json:"visibility"`
	} `json:"verdicts"`
}

// TestRouterWorkerDownMidBatch kills one worker and checks the batch
// endpoint degrades to an explicit partial response: placeholder verdicts
// for the dead worker's keys, live verdicts for the rest, and the downed
// partitions listed.
func TestRouterWorkerDownMidBatch(t *testing.T) {
	lc := startSmallCluster(t, nil)
	all, byWorker := clusterKeys(t, lc)
	const down = 1
	if len(byWorker[down]) == 0 {
		t.Fatalf("worker %d owns no keys; pick another corpus seed", down)
	}
	lc.Workers[down].StopHTTP()

	body, _ := json.Marshal(map[string]any{"keys": all})
	var resp batchResp
	if err := json.Unmarshal([]byte(httpPost(t, lc.URL()+"/v1/stale", string(body))), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != len(all) {
		t.Fatalf("count = %d, want %d (positional alignment must survive a down worker)", resp.Count, len(all))
	}
	wantParts := lc.Ring.WorkerPartitions(down)
	if len(resp.UnavailablePartitions) != len(wantParts) {
		t.Fatalf("unavailablePartitions = %v, want worker %d's %v", resp.UnavailablePartitions, down, wantParts)
	}
	for i, v := range resp.Verdicts {
		if v.Key != all[i] {
			t.Fatalf("verdict %d is for %q, want %q", i, v.Key, all[i])
		}
		owner := ownerOf(t, lc, v.Key)
		if owner == down {
			if v.Visibility != "unavailable" || v.Tracked {
				t.Fatalf("verdict for %q (down worker): visibility %q tracked %v", v.Key, v.Visibility, v.Tracked)
			}
		} else if v.Visibility == "unavailable" {
			t.Fatalf("verdict for %q marked unavailable but worker %d is up", v.Key, owner)
		}
	}
}

func ownerOf(t *testing.T, lc *LocalCluster, ks string) int {
	t.Helper()
	k, err := server.ParseKey(ks)
	if err != nil {
		t.Fatal(err)
	}
	return lc.Ring.Owner(k)
}

// TestRouterSlowWorkerTimeout wedges one worker's batch endpoint past the
// per-worker timeout and checks the router returns a partial response
// instead of hanging the whole batch.
func TestRouterSlowWorkerTimeout(t *testing.T) {
	const slow = 2
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	mw := func(id int, h http.Handler) http.Handler {
		if id != slow {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/stale" {
				select {
				case <-block: // wedged until test teardown
				case <-r.Context().Done():
				}
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	lc := startSmallCluster(t, mw)
	all, byWorker := clusterKeys(t, lc)
	if len(byWorker[slow]) == 0 {
		t.Fatalf("worker %d owns no keys", slow)
	}

	body, _ := json.Marshal(map[string]any{"keys": all})
	start := time.Now()
	var resp batchResp
	if err := json.Unmarshal([]byte(httpPost(t, lc.URL()+"/v1/stale", string(body))), &resp); err != nil {
		t.Fatal(err)
	}
	// Timeout + one retry, plus slack: the batch must not wait on the
	// wedged worker indefinitely.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("batch took %v against a wedged worker", elapsed)
	}
	if resp.Count != len(all) {
		t.Fatalf("count = %d, want %d", resp.Count, len(all))
	}
	if len(resp.UnavailablePartitions) != lc.Ring.OwnedPartitions(slow) {
		t.Fatalf("unavailablePartitions = %v, want worker %d's %d partitions",
			resp.UnavailablePartitions, slow, lc.Ring.OwnedPartitions(slow))
	}
	for i, v := range resp.Verdicts {
		if ownerOf(t, lc, v.Key) == slow && v.Visibility != "unavailable" {
			t.Fatalf("verdict %d for %q: visibility %q, want unavailable", i, v.Key, v.Visibility)
		}
	}
}

// TestRouterSSEReconnect restarts a worker under the router and checks the
// merged stream recovers: the router reattaches to the restarted worker
// and a full feed run still delivers an ordered stream.
func TestRouterSSEReconnect(t *testing.T) {
	lc := startSmallCluster(t, nil)

	cap := captureStream(t, lc.URL())
	lc.Workers[0].StopHTTP()
	deadline := time.Now().Add(5 * time.Second)
	for lc.Router.StreamConnected() {
		if time.Now().After(deadline) {
			t.Fatal("router never noticed the dead worker stream")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := lc.Workers[0].StartHTTP(); err != nil {
		t.Fatal(err)
	}
	if err := lc.WaitStreams(10 * time.Second); err != nil {
		t.Fatalf("router did not reattach to the restarted worker: %v", err)
	}

	// The reconnected stream must still merge a full feed run.
	lc.StartFeeds()
	if err := lc.WaitFeeds(); err != nil {
		t.Fatal(err)
	}
	stream := normalizeStream(cap.stable(t, 300*time.Millisecond, 30*time.Second))
	if n := strings.Count(stream, "event: signal"); n == 0 {
		t.Fatal("no signals after worker restart")
	}
	if n := strings.Count(stream, "event: window"); n < 10 {
		t.Fatalf("only %d window barriers after worker restart", n)
	}
	// Window markers must stay strictly increasing — reconnect must not
	// reorder the barrier.
	var last int64 = -1
	for _, line := range strings.Split(stream, "\n") {
		if !strings.HasPrefix(line, "data: {\"windowStart\":") {
			continue
		}
		var mk struct {
			WindowStart int64 `json:"windowStart"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &mk); err != nil {
			continue
		}
		if mk.WindowStart <= last {
			t.Fatalf("window barrier went backwards: %d after %d", mk.WindowStart, last)
		}
		last = mk.WindowStart
	}
}
