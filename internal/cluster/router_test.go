package cluster

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"rrr"
	"rrr/internal/server"
)

// startSmallCluster brings up a K=3 cluster with a fast per-worker
// timeout, feeds idle (the tracked corpus alone answers verdicts).
func startSmallCluster(t *testing.T, mw func(int, http.Handler) http.Handler) *LocalCluster {
	t.Helper()
	lc, err := StartLocal(LocalOptions{
		Workers:       3,
		Scale:         diffScale(),
		RouterTimeout: 500 * time.Millisecond,
		StreamBackoff: 20 * time.Millisecond,
		Middleware:    mw,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	if err := lc.WaitStreams(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return lc
}

// clusterKeys fetches the merged key list and splits it by owner.
func clusterKeys(t *testing.T, lc *LocalCluster) (all []string, byWorker [][]string) {
	t.Helper()
	var resp struct {
		Keys []string `json:"keys"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, lc.URL()+"/v1/keys")), &resp); err != nil {
		t.Fatal(err)
	}
	byWorker = make([][]string, lc.Ring.Workers())
	for _, ks := range resp.Keys {
		k, err := server.ParseKey(ks)
		if err != nil {
			t.Fatal(err)
		}
		w := lc.Ring.Owner(k)
		byWorker[w] = append(byWorker[w], ks)
	}
	return resp.Keys, byWorker
}

type batchResp struct {
	Stale                 int            `json:"stale"`
	Count                 int            `json:"count"`
	UnavailablePartitions []int          `json:"unavailablePartitions"`
	WorkerErrors          map[int]string `json:"workerErrors"`
	Verdicts              []struct {
		Key        string `json:"key"`
		Tracked    bool   `json:"tracked"`
		Visibility string `json:"visibility"`
	} `json:"verdicts"`
}

// darkPartitions lists partitions whose every replica is in the downed set
// — the only partitions replication cannot save.
func darkPartitions(lc *LocalCluster, downed ...int) map[int]bool {
	isDown := map[int]bool{}
	for _, w := range downed {
		isDown[w] = true
	}
	dark := map[int]bool{}
	for p := 0; p < lc.Ring.Partitions(); p++ {
		alive := false
		for _, w := range lc.Ring.Replicas(p) {
			if !isDown[w] {
				alive = true
			}
		}
		if !alive {
			dark[p] = true
		}
	}
	return dark
}

// TestRouterWorkerDownMidBatch kills one worker and checks the batch
// endpoint fails over to the standby replicas byte-identically; a second
// kill then blacks out exactly the partitions whose both replicas are
// down, with placeholder verdicts and an explicit unavailablePartitions
// list for those keys only.
func TestRouterWorkerDownMidBatch(t *testing.T) {
	lc := startSmallCluster(t, nil)
	all, byWorker := clusterKeys(t, lc)
	const down = 1
	if len(byWorker[down]) == 0 {
		t.Fatalf("worker %d owns no keys; pick another corpus seed", down)
	}
	body, _ := json.Marshal(map[string]any{"keys": all})
	before := httpPost(t, lc.URL()+"/v1/stale", string(body))

	// One worker down: every one of its partitions has a live standby, so
	// the failover must be invisible — same bytes, no degradation fields.
	lc.Workers[down].StopHTTP()
	after := httpPost(t, lc.URL()+"/v1/stale", string(body))
	diffStrings(t, "batch across single-worker failover", before, after)

	// Second worker down: partitions replicated only on {1, 2} go dark.
	lc.Workers[2].StopHTTP()
	dark := darkPartitions(lc, down, 2)
	if len(dark) == 0 {
		t.Fatal("no partition has both replicas on workers 1 and 2; ring geometry changed, rewrite the test")
	}
	var resp batchResp
	if err := json.Unmarshal([]byte(httpPost(t, lc.URL()+"/v1/stale", string(body))), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != len(all) {
		t.Fatalf("count = %d, want %d (positional alignment must survive down workers)", resp.Count, len(all))
	}
	if len(resp.WorkerErrors) == 0 {
		t.Fatal("lost keys must carry the worker errors that caused them")
	}
	lostParts := map[int]bool{}
	for i, v := range resp.Verdicts {
		if v.Key != all[i] {
			t.Fatalf("verdict %d is for %q, want %q", i, v.Key, all[i])
		}
		p := lc.Ring.PartitionOf(mustKey(t, v.Key))
		if dark[p] {
			if v.Visibility != "unavailable" || v.Tracked {
				t.Fatalf("verdict for %q (dark partition %d): visibility %q tracked %v", v.Key, p, v.Visibility, v.Tracked)
			}
			lostParts[p] = true
		} else if v.Visibility == "unavailable" {
			t.Fatalf("verdict for %q marked unavailable but partition %d has a live replica", v.Key, p)
		}
	}
	if len(resp.UnavailablePartitions) != len(lostParts) {
		t.Fatalf("unavailablePartitions = %v, want the %d dark partitions holding keys", resp.UnavailablePartitions, len(lostParts))
	}
	for _, p := range resp.UnavailablePartitions {
		if !lostParts[p] {
			t.Fatalf("unavailablePartitions lists %d, which lost no keys", p)
		}
	}
}

func mustKey(t *testing.T, ks string) rrr.Key {
	t.Helper()
	k, err := server.ParseKey(ks)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestRouterSlowWorkerTimeout wedges one worker's batch endpoint past the
// per-worker timeout and checks the router neither hangs the whole batch
// nor degrades it: the wedged worker's keys fail over to their standbys
// and the response comes back complete.
func TestRouterSlowWorkerTimeout(t *testing.T) {
	const slow = 2
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	mw := func(id int, h http.Handler) http.Handler {
		if id != slow {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/stale" {
				select {
				case <-block: // wedged until test teardown
				case <-r.Context().Done():
				}
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	lc := startSmallCluster(t, mw)
	all, byWorker := clusterKeys(t, lc)
	if len(byWorker[slow]) == 0 {
		t.Fatalf("worker %d owns no keys", slow)
	}

	body, _ := json.Marshal(map[string]any{"keys": all})
	start := time.Now()
	var resp batchResp
	if err := json.Unmarshal([]byte(httpPost(t, lc.URL()+"/v1/stale", string(body))), &resp); err != nil {
		t.Fatal(err)
	}
	// One per-worker timeout (the retry shares its deadline) plus the
	// failover round, plus slack: the batch must not wait on the wedged
	// worker indefinitely.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("batch took %v against a wedged worker", elapsed)
	}
	if resp.Count != len(all) {
		t.Fatalf("count = %d, want %d", resp.Count, len(all))
	}
	if len(resp.UnavailablePartitions) != 0 {
		t.Fatalf("unavailablePartitions = %v; every wedged partition has a live standby", resp.UnavailablePartitions)
	}
	for i, v := range resp.Verdicts {
		if v.Visibility == "unavailable" {
			t.Fatalf("verdict %d for %q marked unavailable; its standby should have answered", i, v.Key)
		}
	}
}

// TestRouterSSEReconnect restarts a worker under the router and checks the
// merged stream recovers: the router reattaches to the restarted worker
// and a full feed run still delivers an ordered stream.
func TestRouterSSEReconnect(t *testing.T) {
	lc := startSmallCluster(t, nil)

	cap := captureStream(t, lc.URL())
	lc.Workers[0].StopHTTP()
	deadline := time.Now().Add(5 * time.Second)
	for lc.Router.StreamConnected() {
		if time.Now().After(deadline) {
			t.Fatal("router never noticed the dead worker stream")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := lc.Workers[0].StartHTTP(); err != nil {
		t.Fatal(err)
	}
	if err := lc.WaitStreams(10 * time.Second); err != nil {
		t.Fatalf("router did not reattach to the restarted worker: %v", err)
	}

	// The reconnected stream must still merge a full feed run.
	lc.StartFeeds()
	if err := lc.WaitFeeds(); err != nil {
		t.Fatal(err)
	}
	stream := normalizeStream(cap.stable(t, 300*time.Millisecond, 30*time.Second))
	if n := strings.Count(stream, "event: signal"); n == 0 {
		t.Fatal("no signals after worker restart")
	}
	if n := strings.Count(stream, "event: window"); n < 10 {
		t.Fatalf("only %d window barriers after worker restart", n)
	}
	// Window markers must stay strictly increasing — reconnect must not
	// reorder the barrier.
	var last int64 = -1
	for _, line := range strings.Split(stream, "\n") {
		if !strings.HasPrefix(line, "data: {\"windowStart\":") {
			continue
		}
		var mk struct {
			WindowStart int64 `json:"windowStart"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &mk); err != nil {
			continue
		}
		if mk.WindowStart <= last {
			t.Fatalf("window barrier went backwards: %d after %d", mk.WindowStart, last)
		}
		last = mk.WindowStart
	}
}
