package cluster

import (
	"fmt"

	"rrr"
	"rrr/internal/server"
)

// mergeStats folds K workers' /v1/stats into the single-daemon shape.
// Counter semantics:
//
//   - corpusSize, staleKeys, signals{}, totalSignals, revokedSignals,
//     revokedPairEvents: sums, divided by the reported replication factor.
//     Partitions are disjoint, but under RF=2 every pair is tracked by two
//     workers whose per-pair tallies are byte-identical by construction,
//     so the sum counts each pair exactly RF times when all workers
//     respond. Workers report their RF in stats (WorkerIdentity.RF);
//     unreplicated workers omit it and divide by 1, keeping pre-replication
//     merges byte-identical. With a responder missing, the division is
//     approximate (its partitions were counted once, not RF times) — the
//     router flags that with degradedWorkers.
//   - prunedCommunities: NOT a sum. Every worker ingests the full feed,
//     so independent workers reach the same prune decision about the
//     same community; summing counted each decision K times. The merge
//     unions the workers' pruned-community ID sets (each worker exposes
//     them in its stats) and adds the largest snapshot-restored baseline
//     (restored counts carry no IDs, and every worker restores from its
//     own snapshot of the same globally-observed feed).
//   - windowSec: must agree across workers (same feed clock) — a
//     mismatch is a deployment error, reported as such.
//   - windowsClosed: min — the conservative barrier; a lagging worker's
//     unclosed window is not yet part of any merged answer.
//   - subscribers: the router's own stream subscriber count; worker
//     counts only reflect the router's internal taps.
//   - feeds: concatenated with a "w<id>/" feed-name prefix so operators
//     can tell whose feed is degraded.
//   - wal, worker: omitted — per-worker durability state is exposed
//     unmerged on /v1/cluster instead.
func mergeStats(parts []server.Stats, subscribers int) (server.Stats, error) {
	if len(parts) == 0 {
		return server.Stats{}, fmt.Errorf("cluster: no worker stats to merge")
	}
	out := server.Stats{
		WindowSec:     parts[0].WindowSec,
		WindowsClosed: parts[0].WindowsClosed,
		Signals:       map[string]int{},
		Subscribers:   subscribers,
	}
	prunedIDs := make(map[uint32]bool)
	prunedBase := 0
	rf := 1
	for _, p := range parts {
		if p.Worker != nil && p.Worker.RF > rf {
			rf = p.Worker.RF
		}
	}
	for i, p := range parts {
		if p.WindowSec != out.WindowSec {
			return server.Stats{}, fmt.Errorf("cluster: worker %d windowSec %d != worker 0 windowSec %d",
				i, p.WindowSec, out.WindowSec)
		}
		if p.WindowsClosed < out.WindowsClosed {
			out.WindowsClosed = p.WindowsClosed
		}
		out.CorpusSize += p.CorpusSize
		out.StaleKeys += p.StaleKeys
		for tech, n := range p.Signals {
			out.Signals[tech] += n
		}
		out.TotalSignals += p.TotalSignals
		out.RevokedSignals += p.RevokedSignals
		out.RevokedPairEvents += p.RevokedPairEvents
		for _, id := range p.PrunedCommunityIDs {
			prunedIDs[id] = true
		}
		if base := p.PrunedCommunities - len(p.PrunedCommunityIDs); base > prunedBase {
			prunedBase = base
		}
		workerID := i
		if p.Worker != nil {
			workerID = p.Worker.ID
		}
		for _, f := range p.Feeds {
			f.Feed = fmt.Sprintf("w%d/%s", workerID, f.Feed)
			out.Feeds = append(out.Feeds, f)
		}
	}
	if rf > 1 {
		out.CorpusSize /= rf
		out.StaleKeys /= rf
		for tech := range out.Signals {
			out.Signals[tech] /= rf
		}
		out.TotalSignals /= rf
		out.RevokedSignals /= rf
		out.RevokedPairEvents /= rf
	}
	// De-duplicated prune count; the merged response keeps the
	// single-daemon shape (no ID list — that field is a worker detail).
	out.PrunedCommunities = prunedBase + len(prunedIDs)
	return out, nil
}

func keyLess(a, b rrr.Key) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Dst < b.Dst
}

// mergeKeys k-way-merges workers' numerically sorted key lists into one
// numerically sorted list. Replication puts each pair in up to RF workers'
// lists, so equal heads are emitted once and every cursor holding the
// duplicate advances; unreplicated (disjoint) lists pass through
// unchanged. The merge compares parsed (src, dst) pairs: the API's
// dotted-quad string order differs from numeric order, and workers sort
// numerically.
func mergeKeys(parts [][]string) ([]string, error) {
	type cursor struct {
		keys []string
		num  []rrr.Key
		i    int
	}
	cur := make([]cursor, 0, len(parts))
	total := 0
	for _, keys := range parts {
		num := make([]rrr.Key, len(keys))
		for i, ks := range keys {
			k, err := server.ParseKey(ks)
			if err != nil {
				return nil, fmt.Errorf("cluster: worker key %q: %v", ks, err)
			}
			num[i] = k
		}
		total += len(keys)
		cur = append(cur, cursor{keys: keys, num: num})
	}
	out := make([]string, 0, total)
	for {
		best := -1
		for c := range cur {
			if cur[c].i >= len(cur[c].keys) {
				continue
			}
			if best < 0 || keyLess(cur[c].num[cur[c].i], cur[best].num[cur[best].i]) {
				best = c
			}
		}
		if best < 0 {
			break
		}
		bk := cur[best].num[cur[best].i]
		out = append(out, cur[best].keys[cur[best].i])
		// Advance every cursor whose head is this key — replicas of the
		// emitted pair, dropped rather than re-emitted.
		for c := range cur {
			for cur[c].i < len(cur[c].keys) && cur[c].num[cur[c].i] == bk {
				cur[c].i++
			}
		}
	}
	return out, nil
}
