package cluster

import (
	"fmt"

	"rrr"
	"rrr/internal/server"
)

// mergeStats folds K workers' /v1/stats into the single-daemon shape.
// Counter semantics:
//
//   - corpusSize, staleKeys, signals{}, totalSignals, revokedSignals,
//     revokedPairEvents: sums — partitions are disjoint, so worker
//     tallies add.
//   - prunedCommunities: NOT a sum. Every worker ingests the full feed,
//     so independent workers reach the same prune decision about the
//     same community; summing counted each decision K times. The merge
//     unions the workers' pruned-community ID sets (each worker exposes
//     them in its stats) and adds the largest snapshot-restored baseline
//     (restored counts carry no IDs, and every worker restores from its
//     own snapshot of the same globally-observed feed).
//   - windowSec: must agree across workers (same feed clock) — a
//     mismatch is a deployment error, reported as such.
//   - windowsClosed: min — the conservative barrier; a lagging worker's
//     unclosed window is not yet part of any merged answer.
//   - subscribers: the router's own stream subscriber count; worker
//     counts only reflect the router's internal taps.
//   - feeds: concatenated with a "w<id>/" feed-name prefix so operators
//     can tell whose feed is degraded.
//   - wal, worker: omitted — per-worker durability state is exposed
//     unmerged on /v1/cluster instead.
func mergeStats(parts []server.Stats, subscribers int) (server.Stats, error) {
	if len(parts) == 0 {
		return server.Stats{}, fmt.Errorf("cluster: no worker stats to merge")
	}
	out := server.Stats{
		WindowSec:     parts[0].WindowSec,
		WindowsClosed: parts[0].WindowsClosed,
		Signals:       map[string]int{},
		Subscribers:   subscribers,
	}
	prunedIDs := make(map[uint32]bool)
	prunedBase := 0
	for i, p := range parts {
		if p.WindowSec != out.WindowSec {
			return server.Stats{}, fmt.Errorf("cluster: worker %d windowSec %d != worker 0 windowSec %d",
				i, p.WindowSec, out.WindowSec)
		}
		if p.WindowsClosed < out.WindowsClosed {
			out.WindowsClosed = p.WindowsClosed
		}
		out.CorpusSize += p.CorpusSize
		out.StaleKeys += p.StaleKeys
		for tech, n := range p.Signals {
			out.Signals[tech] += n
		}
		out.TotalSignals += p.TotalSignals
		out.RevokedSignals += p.RevokedSignals
		out.RevokedPairEvents += p.RevokedPairEvents
		for _, id := range p.PrunedCommunityIDs {
			prunedIDs[id] = true
		}
		if base := p.PrunedCommunities - len(p.PrunedCommunityIDs); base > prunedBase {
			prunedBase = base
		}
		workerID := i
		if p.Worker != nil {
			workerID = p.Worker.ID
		}
		for _, f := range p.Feeds {
			f.Feed = fmt.Sprintf("w%d/%s", workerID, f.Feed)
			out.Feeds = append(out.Feeds, f)
		}
	}
	// De-duplicated prune count; the merged response keeps the
	// single-daemon shape (no ID list — that field is a worker detail).
	out.PrunedCommunities = prunedBase + len(prunedIDs)
	return out, nil
}

func keyLess(a, b rrr.Key) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Dst < b.Dst
}

// mergeKeys k-way-merges workers' numerically sorted key lists into one
// numerically sorted list. Ring ownership makes the lists disjoint, so no
// dedup pass is needed. The merge compares parsed (src, dst) pairs: the
// API's dotted-quad string order differs from numeric order, and workers
// sort numerically.
func mergeKeys(parts [][]string) ([]string, error) {
	type cursor struct {
		keys []string
		num  []rrr.Key
		i    int
	}
	cur := make([]cursor, 0, len(parts))
	total := 0
	for _, keys := range parts {
		num := make([]rrr.Key, len(keys))
		for i, ks := range keys {
			k, err := server.ParseKey(ks)
			if err != nil {
				return nil, fmt.Errorf("cluster: worker key %q: %v", ks, err)
			}
			num[i] = k
		}
		total += len(keys)
		cur = append(cur, cursor{keys: keys, num: num})
	}
	out := make([]string, 0, total)
	for len(out) < total {
		best := -1
		for c := range cur {
			if cur[c].i >= len(cur[c].keys) {
				continue
			}
			if best < 0 || keyLess(cur[c].num[cur[c].i], cur[best].num[cur[best].i]) {
				best = c
			}
		}
		out = append(out, cur[best].keys[cur[best].i])
		cur[best].i++
	}
	return out, nil
}
