package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rrr/internal/experiments"
)

// diffScale keeps the simulated feed small enough for CI while still
// closing dozens of windows and emitting signals across techniques.
func diffScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Days = 1
	sc.PublicPerWindow = 5
	return sc
}

// streamCapture tails an SSE endpoint into a buffer.
type streamCapture struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	resp *http.Response
	done chan struct{}
}

func captureStream(t *testing.T, url string) *streamCapture {
	t.Helper()
	resp, err := http.Get(url + "/v1/signals")
	if err != nil {
		t.Fatalf("subscribe %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe %s: status %d", url, resp.StatusCode)
	}
	c := &streamCapture{resp: resp, done: make(chan struct{})}
	go func() {
		defer close(c.done)
		chunk := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(chunk)
			if n > 0 {
				c.mu.Lock()
				c.buf.Write(chunk[:n])
				c.mu.Unlock()
			}
			if err != nil {
				return
			}
		}
	}()
	return c
}

func (c *streamCapture) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Len()
}

// stable waits until the stream has been idle for `idle`, then closes the
// subscription and returns everything captured.
func (c *streamCapture) stable(t *testing.T, idle, max time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(max)
	last, lastChange := c.size(), time.Now()
	for {
		time.Sleep(20 * time.Millisecond)
		if n := c.size(); n != last {
			last, lastChange = n, time.Now()
		} else if time.Since(lastChange) >= idle {
			break
		}
		if time.Now().After(deadline) {
			break
		}
	}
	c.resp.Body.Close()
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.String()
}

// normalizeStream strips SSE comments (the preamble and keepalives, whose
// timing is wall-clock) leaving only event frames.
func normalizeStream(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, ":") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

func httpPost(t *testing.T, url, body string) string {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	return string(data)
}

// singleOutputs runs the single-node baseline to feed EOF and captures
// the three comparison surfaces: the signal stream, the key list, the
// full-corpus batch verdicts, and /v1/stats.
type outputs struct {
	stream string
	keys   string
	batch  string
	stats  string
}

func batchBody(t *testing.T, keysJSON string) string {
	t.Helper()
	var resp struct {
		Keys []string `json:"keys"`
	}
	if err := json.Unmarshal([]byte(keysJSON), &resp); err != nil {
		t.Fatalf("keys response: %v", err)
	}
	if len(resp.Keys) == 0 {
		t.Fatal("empty key list; differential would be vacuous")
	}
	body, _ := json.Marshal(map[string]any{"keys": resp.Keys})
	return string(body)
}

func singleOutputs(t *testing.T) outputs {
	t.Helper()
	lw, err := StartLocalDaemon(diffScale())
	if err != nil {
		t.Fatal(err)
	}
	defer lw.StopHTTP()

	cap := captureStream(t, lw.URL())
	if err := lw.RunFeed(context.Background()); err != nil {
		t.Fatalf("baseline feed: %v", err)
	}
	var o outputs
	o.stream = normalizeStream(cap.stable(t, 300*time.Millisecond, 30*time.Second))
	o.keys = httpGet(t, lw.URL()+"/v1/keys")
	o.batch = httpPost(t, lw.URL()+"/v1/stale", batchBody(t, o.keys))
	o.stats = httpGet(t, lw.URL()+"/v1/stats")
	return o
}

func clusterOutputs(t *testing.T, workers int) outputs {
	t.Helper()
	lc, err := StartLocal(LocalOptions{
		Workers:       workers,
		Scale:         diffScale(),
		RouterTimeout: 30 * time.Second,
		StreamBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.WaitStreams(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	cap := captureStream(t, lc.URL())
	lc.StartFeeds()
	if err := lc.WaitFeeds(); err != nil {
		t.Fatalf("cluster feeds: %v", err)
	}
	var o outputs
	o.stream = normalizeStream(cap.stable(t, 300*time.Millisecond, 30*time.Second))
	o.keys = httpGet(t, lc.URL()+"/v1/keys")
	o.batch = httpPost(t, lc.URL()+"/v1/stale", batchBody(t, o.keys))
	o.stats = httpGet(t, lc.URL()+"/v1/stats")
	return o
}

// diffStrings fails with a focused diff rather than dumping two full
// multi-kilobyte bodies.
func diffStrings(t *testing.T, what, want, got string) {
	t.Helper()
	if want == got {
		return
	}
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		wl, gl := "", ""
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			t.Fatalf("%s diverges at line %d:\n single: %q\ncluster: %q\n(single %d lines, cluster %d lines)",
				what, i+1, wl, gl, len(w), len(g))
		}
	}
	t.Fatalf("%s differs only in trailing newlines (single %d lines, cluster %d)", what, len(w), len(g))
}

// TestClusterDifferential is the tentpole guarantee: a K-worker cluster's
// merged /v1/stale, /v1/stats, /v1/keys, and SSE signal stream are
// byte-identical to a single daemon over the same simulated feeds, for
// K ∈ {1, 3}.
func TestClusterDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential runs a full simulated day per topology")
	}
	want := singleOutputs(t)
	if n := strings.Count(want.stream, "event: signal"); n < 10 {
		t.Fatalf("baseline stream carries %d signals; differential would be vacuous", n)
	}
	if n := strings.Count(want.stream, "event: window"); n < 10 {
		t.Fatalf("baseline stream carries %d window markers; want a full day's worth", n)
	}
	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("K=%d", workers), func(t *testing.T) {
			got := clusterOutputs(t, workers)
			diffStrings(t, "keys", want.keys, got.keys)
			diffStrings(t, "batch verdicts", want.batch, got.batch)
			diffStrings(t, "stats", want.stats, got.stats)
			diffStrings(t, "signal stream", want.stream, got.stream)
		})
	}
}
