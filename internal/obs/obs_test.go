package obs

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Same name + labels returns the same series.
	if r.Counter("x_total") != c {
		t.Fatal("counter handle not shared")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("s_total", "b", "2", "a", "1")
	b := r.Counter("s_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed series identity")
	}
	snap := r.Snapshot()
	if _, ok := snap[`s_total{a="1",b="2"}`]; !ok {
		t.Fatalf("canonical name missing: %v", snap)
	}
	// Escaping.
	r.Counter("esc_total", "k", "a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", buf.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("dual")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Fatalf("sum = %v", got)
	}
	snap := r.Snapshot()
	want := map[string]float64{
		`lat_seconds_bucket{le="0.1"}`:  1,
		`lat_seconds_bucket{le="1"}`:    3,
		`lat_seconds_bucket{le="10"}`:   4,
		`lat_seconds_bucket{le="+Inf"}`: 5,
		`lat_seconds_count`:             5,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Fatalf("%s = %v, want %v (snap %v)", k, snap[k], v, snap)
		}
	}
}

// promLine matches the two shapes a non-comment exposition line can take.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (\+Inf|-?[0-9.e+-]+)$`)

func checkExposition(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "k", "v").Add(3)
	r.Help("a_total", "a help string")
	r.Gauge("b").Set(-2)
	r.Histogram("c_seconds", nil).Observe(0.2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checkExposition(t, out)
	for _, want := range []string{
		"# HELP a_total a help string",
		"# TYPE a_total counter",
		`a_total{k="v"} 3`,
		"# TYPE b gauge",
		"b -2",
		"# TYPE c_seconds histogram",
		`c_seconds_bucket{le="+Inf"} 1`,
		"c_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if out != buf2.String() {
		t.Fatal("exposition not deterministic")
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", nil)
	tm := NewTimer(h)
	time.Sleep(time.Millisecond)
	if d := tm.Stop(); d <= 0 {
		t.Fatalf("elapsed = %v", d)
	}
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("histogram not fed: count=%d sum=%v", h.Count(), h.Sum())
	}
	// nil-histogram timer just measures.
	if d := NewTimer(nil).Stop(); d < 0 {
		t.Fatalf("nil timer elapsed = %v", d)
	}
}

// TestConcurrentScrape proves the registry is race-clean: writers on
// every series kind while scrapers render and snapshot. Run with -race.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("w_total")
	g := r.Gauge("w_depth")
	h := r.Histogram("w_seconds", nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 2000; n++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(0.01)
				// Creating series concurrently must also be safe.
				r.Counter("w_dyn_total", "i", string(rune('a'+i))).Inc()
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Error(err)
		}
		checkExposition(t, buf.String())
		_ = r.Snapshot()
	}
	wg.Wait()
	if c.Value() == 0 {
		t.Fatal("no writes observed")
	}
	// Bucket cumulation must be consistent once writers stop.
	snap := r.Snapshot()
	if snap[`w_seconds_bucket{le="+Inf"}`] != snap["w_seconds_count"] {
		t.Fatalf("+Inf bucket %v != count %v",
			snap[`w_seconds_bucket{le="+Inf"}`], snap["w_seconds_count"])
	}
}
