// Package obs is rrr's observability substrate: a small, dependency-free
// metrics registry (atomic counters, gauges, and fixed-bucket histograms)
// with Prometheus text-format exposition and a Snapshot for embedding
// metric values in bench reports.
//
// Design constraints, in order:
//
//  1. Hot-path cost. Metric handles are resolved once (package init or
//     construction time); after that an increment is a single atomic op
//     and a histogram observation is a short bounds scan plus three
//     atomics. No locks, maps, or allocation on the ingestion path.
//  2. Race-cleanliness. Every series is safe for concurrent use, and the
//     registry may be scraped while every layer is writing to it.
//  3. No dependencies. The daemon stays a pure-stdlib binary; the text
//     format below is the subset of the Prometheus exposition format that
//     every scraper understands.
//
// The package-level Default registry is what the instrumented layers
// (Pipeline, Monitor, the sharded engine, the serving hub, snapshots)
// write to and what rrrd's GET /metrics serves. Independent registries
// can be created for tests.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets is the default histogram bucket layout for latencies in
// seconds: 100µs to 10s, roughly logarithmic. Window closes, snapshot
// writes, and merge-loop stalls all land comfortably inside it.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically-increasing series.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current total.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a series that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat accumulates float64 sums with CAS on the bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bounds are upper bucket
// edges in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	count  atomic.Uint64
	sum    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Timer measures one duration into a histogram (in seconds).
type Timer struct {
	start time.Time
	h     *Histogram
}

// NewTimer starts timing; Stop records into h (nil h just measures).
func NewTimer(h *Histogram) Timer { return Timer{start: time.Now(), h: h} }

// Stop records the elapsed time and returns it.
func (t Timer) Stop() time.Duration {
	d := time.Since(t.start)
	if t.h != nil {
		t.h.Observe(d.Seconds())
	}
	return d
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	// kindUnset marks a family created by Help before any series exists;
	// the first Counter/Gauge/Histogram call claims the kind.
	kindUnset
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family groups the series sharing one metric name (differing only in
// labels), which is what the exposition format's TYPE/HELP header spans.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64
	series  map[string]any // rendered label string -> *Counter | *Gauge | *Histogram
}

// Registry holds metric families. Get-or-create calls take a short lock;
// the returned handles are lock-free.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// Default is the process-wide registry the instrumented layers write to
// and GET /metrics serves.
var Default = NewRegistry()

func (r *Registry) getOrCreate(name string, kind metricKind, buckets []float64, labels []string) any {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, kind: kind, buckets: buckets, series: make(map[string]any)}
		r.fams[name] = f
	} else if f.kind == kindUnset {
		f.kind, f.buckets = kind, buckets
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	if m, ok := f.series[ls]; ok {
		return m
	}
	var m any
	switch kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		h := &Histogram{bounds: buckets}
		h.counts = make([]atomic.Uint64, len(buckets)+1)
		m = h
	}
	f.series[ls] = m
	return m
}

// Counter returns (creating if needed) the counter series with the given
// name and label key/value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.getOrCreate(name, kindCounter, nil, labels).(*Counter)
}

// Gauge returns the gauge series with the given name and labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.getOrCreate(name, kindGauge, nil, labels).(*Gauge)
}

// Histogram returns the histogram series with the given name, bucket
// bounds (nil means DefBuckets; the family's first registration wins),
// and labels.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.getOrCreate(name, kindHistogram, buckets, labels).(*Histogram)
}

// Help sets the family's HELP text (shown in the exposition). Creating
// the family first is not required but typical.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.fams[name]; f != nil {
		f.help = help
	} else {
		r.fams[name] = &family{name: name, kind: kindUnset, help: help, series: make(map[string]any)}
	}
}

// renderLabels produces the canonical `{k="v",...}` form, keys sorted so
// the same label set always names the same series.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// withLabel merges one more label (used for histogram `le`) into an
// already-rendered label string.
func withLabel(ls, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if ls == "" {
		return "{" + pair + "}"
	}
	return ls[:len(ls)-1] + "," + pair + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedFamilies returns family pointers in name order (exposition and
// snapshots are deterministic; series names are stable across runs).
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func sortedSeries(f *family) []string {
	keys := make([]string, 0, len(f.series))
	for ls := range f.series {
		keys = append(keys, ls)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4 subset: HELP/TYPE headers, counter/gauge/histogram
// samples). Values read while writers run are individually atomic;
// histogram bucket/count/sum triples are not snapshotted together, which
// scrapers tolerate by design.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if len(f.series) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, ls := range sortedSeries(f) {
			m := f.series[ls]
			var err error
			switch v := m.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, ls, v.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, ls, v.Value())
			case *Histogram:
				var cum uint64
				for i, b := range v.bounds {
					cum += v.counts[i].Load()
					if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.name, withLabel(ls, "le", formatFloat(b)), cum); err != nil {
						return err
					}
				}
				cum += v.counts[len(v.bounds)].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, withLabel(ls, "le", "+Inf"), cum); err != nil {
					return err
				}
				if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, formatFloat(v.Sum())); err != nil {
					return err
				}
				_, err = fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, v.Count())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot returns every series value keyed by its rendered name
// (histograms expand into _bucket/_sum/_count samples), for embedding in
// bench reports and test assertions.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.sortedFamilies() {
		for _, ls := range sortedSeries(f) {
			switch v := f.series[ls].(type) {
			case *Counter:
				out[f.name+ls] = float64(v.Value())
			case *Gauge:
				out[f.name+ls] = float64(v.Value())
			case *Histogram:
				var cum uint64
				for i, b := range v.bounds {
					cum += v.counts[i].Load()
					out[f.name+"_bucket"+withLabel(ls, "le", formatFloat(b))] = float64(cum)
				}
				cum += v.counts[len(v.bounds)].Load()
				out[f.name+"_bucket"+withLabel(ls, "le", "+Inf")] = float64(cum)
				out[f.name+"_sum"+ls] = v.Sum()
				out[f.name+"_count"+ls] = float64(v.Count())
			}
		}
	}
	return out
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
