// Package corpus maintains the monitored set of traceroutes: for every
// (source, destination) pair, the most recent measurement with its AS-level
// and border-router-level representations, plus change classification
// between measurements at the granularities of §3.
package corpus

import (
	"sort"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/traceroute"
)

// Entry is one corpus traceroute with processed representations.
type Entry struct {
	Key        traceroute.Key
	Trace      *traceroute.Traceroute
	ASPath     bgp.Path
	ASHops     []traceroute.ASHop
	Borders    []bordermap.BorderHop
	MeasuredAt int64
}

// Corpus is the monitored traceroute set.
type Corpus struct {
	mapper  traceroute.Mapper
	aliases bordermap.AliasOracle
	entries map[traceroute.Key]*Entry
	keys    []traceroute.Key
	sorted  bool
}

// New returns an empty corpus using the given processing services.
func New(m traceroute.Mapper, aliases bordermap.AliasOracle) *Corpus {
	return &Corpus{
		mapper:  m,
		aliases: aliases,
		entries: make(map[traceroute.Key]*Entry),
	}
}

// Process converts a raw traceroute into an Entry; traceroutes with AS
// loops are rejected (Appendix A).
func (c *Corpus) Process(t *traceroute.Traceroute) (*Entry, error) {
	hops, err := traceroute.ASPath(t, c.mapper)
	if err != nil {
		return nil, err
	}
	return &Entry{
		Key:        t.Key(),
		Trace:      t,
		ASPath:     traceroute.ASNs(hops),
		ASHops:     hops,
		Borders:    bordermap.BorderPath(t, c.mapper, c.aliases),
		MeasuredAt: t.Time,
	}, nil
}

// Add processes and stores a traceroute, replacing any previous entry for
// its (src, dst) pair. It returns the stored entry.
func (c *Corpus) Add(t *traceroute.Traceroute) (*Entry, error) {
	e, err := c.Process(t)
	if err != nil {
		return nil, err
	}
	c.Put(e)
	return e, nil
}

// Put stores an already-processed entry, replacing any previous entry for
// its pair. Use it when the same *Entry must also be registered elsewhere
// (e.g. with the signal engine), so both sides share one pointer.
func (c *Corpus) Put(e *Entry) {
	if _, existed := c.entries[e.Key]; !existed {
		c.keys = append(c.keys, e.Key)
		c.sorted = false
	}
	c.entries[e.Key] = e
}

// Get returns the entry for a pair.
func (c *Corpus) Get(k traceroute.Key) (*Entry, bool) {
	e, ok := c.entries[k]
	return e, ok
}

// Remove deletes a pair from the corpus.
func (c *Corpus) Remove(k traceroute.Key) {
	if _, ok := c.entries[k]; ok {
		delete(c.entries, k)
		c.sorted = false
		for i, key := range c.keys {
			if key == k {
				c.keys = append(c.keys[:i], c.keys[i+1:]...)
				break
			}
		}
	}
}

// Len returns the number of monitored pairs.
func (c *Corpus) Len() int { return len(c.entries) }

// Keys returns the monitored pairs, sorted for deterministic iteration.
func (c *Corpus) Keys() []traceroute.Key {
	if !c.sorted {
		sort.Slice(c.keys, func(i, j int) bool {
			if c.keys[i].Src != c.keys[j].Src {
				return c.keys[i].Src < c.keys[j].Src
			}
			return c.keys[i].Dst < c.keys[j].Dst
		})
		c.sorted = true
	}
	out := make([]traceroute.Key, len(c.keys))
	copy(out, c.keys)
	return out
}

// Classify compares a new measurement of a monitored pair against the
// stored entry without replacing it.
func (c *Corpus) Classify(t *traceroute.Traceroute) (bordermap.ChangeClass, error) {
	old, ok := c.entries[t.Key()]
	if !ok {
		return bordermap.Unchanged, nil
	}
	fresh, err := c.Process(t)
	if err != nil {
		return bordermap.Unchanged, err
	}
	return bordermap.Classify(old.ASPath, fresh.ASPath, old.Borders, fresh.Borders), nil
}

// ClassifyEntry compares two processed entries.
func ClassifyEntry(old, new *Entry) bordermap.ChangeClass {
	return bordermap.Classify(old.ASPath, new.ASPath, old.Borders, new.Borders)
}

// Refresh replaces the stored entry with a new measurement, returning the
// change class relative to the previous entry.
func (c *Corpus) Refresh(t *traceroute.Traceroute) (bordermap.ChangeClass, error) {
	cls, err := c.Classify(t)
	if err != nil {
		return cls, err
	}
	if _, err := c.Add(t); err != nil {
		return cls, err
	}
	return cls, nil
}

// BorderIPCensus counts, per border interface address, the adjacent AS
// pairs using it (Appendix C, Fig 14) and the number of distinct (src,dst)
// paths crossing it (Fig 15).
type BorderIPCensus struct {
	ASPairs map[uint32]map[[2]bgp.ASN]bool
	Paths   map[uint32]map[traceroute.Key]bool
}

// Census walks the corpus and tallies border-IP sharing.
func (c *Corpus) Census() *BorderIPCensus {
	out := &BorderIPCensus{
		ASPairs: make(map[uint32]map[[2]bgp.ASN]bool),
		Paths:   make(map[uint32]map[traceroute.Key]bool),
	}
	for _, e := range c.entries {
		for _, b := range e.Borders {
			pair := [2]bgp.ASN{b.FromAS, b.ToAS}
			if out.ASPairs[b.FarIP] == nil {
				out.ASPairs[b.FarIP] = make(map[[2]bgp.ASN]bool)
				out.Paths[b.FarIP] = make(map[traceroute.Key]bool)
			}
			out.ASPairs[b.FarIP][pair] = true
			out.Paths[b.FarIP][e.Key] = true
		}
	}
	return out
}
