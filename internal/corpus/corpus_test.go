package corpus

import (
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/netsim"
	"rrr/internal/platform"
	"rrr/internal/traceroute"
)

func setup(t *testing.T) (*netsim.Sim, *platform.Platform, *Corpus) {
	t.Helper()
	s := netsim.New(netsim.TestConfig())
	cfg := platform.DefaultConfig()
	cfg.NumProbes = 20
	cfg.NumAnchors = 8
	p := platform.New(s, cfg)
	oracle := bordermap.OracleFunc(func(ip uint32) (int, bool) {
		r, ok := s.T.RouterForIP(ip)
		return int(r), ok
	})
	return s, p, New(s.Mapper(), oracle)
}

func TestAddGetRemove(t *testing.T) {
	_, p, c := setup(t)
	traces := p.AnchoringRound(p.RegularProbes()[:4], p.Anchors()[:4], 0)
	added := 0
	for _, tr := range traces {
		if _, err := c.Add(tr); err == nil {
			added++
		}
	}
	if added == 0 || c.Len() != added {
		t.Fatalf("added=%d len=%d", added, c.Len())
	}
	k := c.Keys()[0]
	e, ok := c.Get(k)
	if !ok || e.Key != k {
		t.Fatal("Get failed")
	}
	if len(e.ASPath) < 2 {
		t.Fatalf("AS path too short: %v", e.ASPath)
	}
	c.Remove(k)
	if _, ok := c.Get(k); ok {
		t.Fatal("Remove failed")
	}
	if len(c.Keys()) != added-1 {
		t.Fatal("Keys not updated after Remove")
	}
}

func TestKeysSortedDeterministic(t *testing.T) {
	_, p, c := setup(t)
	for _, tr := range p.AnchoringRound(p.RegularProbes()[:5], p.Anchors()[:5], 0) {
		c.Add(tr)
	}
	k1 := c.Keys()
	k2 := c.Keys()
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("Keys not stable")
		}
		if i > 0 && (k1[i-1].Src > k1[i].Src ||
			(k1[i-1].Src == k1[i].Src && k1[i-1].Dst >= k1[i].Dst)) {
			t.Fatal("Keys not sorted")
		}
	}
}

func TestClassifyUnchangedAndRefresh(t *testing.T) {
	s, p, c := setup(t)
	probe := p.RegularProbes()[0]
	anchor := p.Anchors()[0]
	tr := p.Measure(probe, anchor.IP, 0)
	if _, err := c.Add(tr); err != nil {
		t.Fatal(err)
	}
	// Same routing state, later measurement: unchanged at border level
	// (responsiveness noise may hide hops but borders compare via keys).
	tr2 := p.Measure(probe, anchor.IP, 900)
	cls, err := c.Classify(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if cls == bordermap.ASChange {
		t.Fatalf("no event but AS change detected")
	}
	// Refresh replaces the stored entry.
	cls2, err := c.Refresh(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if cls2 != cls {
		t.Fatalf("Refresh class %v != Classify class %v", cls2, cls)
	}
	e, _ := c.Get(tr.Key())
	if e.MeasuredAt != 900 {
		t.Fatal("Refresh did not replace entry")
	}
	_ = s
}

func TestClassifyDetectsEventChange(t *testing.T) {
	s, p, c := setup(t)
	// Build corpus across all probe/anchor pairs, then fail links until
	// some pair changes.
	pairs := p.AnchoringRound(p.RegularProbes(), p.Anchors(), 0)
	for _, tr := range pairs {
		c.Add(tr)
	}
	// Fail a batch of links to force changes.
	changedAS, changedBorder := 0, 0
	for lid := 1; lid < len(s.T.Links) && changedAS == 0; lid += 7 {
		s.Inject(netsim.Event{Kind: netsim.EvLinkDown, Time: 100, Link: netsim.LinkID(lid)})
		for _, tr := range pairs {
			now := p.Sim.Traceroute(tr.ProbeID, tr.Src, tr.Dst, 900)
			cls, err := c.Classify(now)
			if err != nil {
				continue
			}
			switch cls {
			case bordermap.ASChange:
				changedAS++
			case bordermap.BorderChange:
				changedBorder++
			}
		}
	}
	if changedAS == 0 {
		t.Fatal("link failures never produced an AS-level change")
	}
}

func TestCensus(t *testing.T) {
	_, p, c := setup(t)
	for _, tr := range p.AnchoringRound(p.RegularProbes(), p.Anchors(), 0) {
		c.Add(tr)
	}
	census := c.Census()
	if len(census.ASPairs) == 0 {
		t.Fatal("census found no border IPs")
	}
	multiPath := 0
	for ip, paths := range census.Paths {
		if len(paths) > 1 {
			multiPath++
		}
		if len(census.ASPairs[ip]) == 0 {
			t.Fatal("border IP with no AS pairs")
		}
	}
	if multiPath == 0 {
		t.Fatal("no border IP shared across paths; sharing is the premise of Fig 14/15")
	}
}

// octMapper maps first octet to AS for hand-built census checks.
type octMapper struct{}

func (octMapper) ASOf(ip uint32) (bgp.ASN, bool) {
	if ip>>24 == 0 {
		return 0, false
	}
	return bgp.ASN(ip >> 24), true
}
func (octMapper) IXPOf(uint32) (int, bool) { return 0, false }

func TestCensusHandCheck(t *testing.T) {
	c := New(octMapper{}, nil)
	mk := func(src uint32, hops ...uint32) *traceroute.Traceroute {
		tr := &traceroute.Traceroute{Src: src, Dst: hops[len(hops)-1]}
		for i, h := range hops {
			tr.Hops = append(tr.Hops, traceroute.Hop{TTL: i + 1, IP: h})
		}
		return tr
	}
	sharedBorder := uint32(3<<24 | 1) // AS3 ingress used by both pairs
	// Pair 1: AS1 -> AS3 via shared border.
	if _, err := c.Add(mk(1<<24|1, 1<<24|2, sharedBorder, 3<<24|9)); err != nil {
		t.Fatal(err)
	}
	// Pair 2: AS2 -> AS3 via the same border interface (different AS pair).
	if _, err := c.Add(mk(2<<24|1, 2<<24|2, sharedBorder, 3<<24|8)); err != nil {
		t.Fatal(err)
	}
	// Pair 3: AS1 -> AS4, unrelated border.
	if _, err := c.Add(mk(1<<24|5, 1<<24|6, 4<<24|1, 4<<24|9)); err != nil {
		t.Fatal(err)
	}
	census := c.Census()
	if got := len(census.ASPairs[sharedBorder]); got != 2 {
		t.Fatalf("shared border AS pairs = %d; want 2", got)
	}
	if got := len(census.Paths[sharedBorder]); got != 2 {
		t.Fatalf("shared border paths = %d; want 2", got)
	}
	if got := len(census.ASPairs[4<<24|1]); got != 1 {
		t.Fatalf("unshared border AS pairs = %d; want 1", got)
	}
}
