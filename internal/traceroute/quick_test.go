package traceroute

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// arbitraryTrace builds a structurally valid traceroute from fuzz inputs.
func arbitraryTrace(src, dst uint32, hopSeed []byte) *Traceroute {
	if src == 0 {
		src = 1
	}
	if dst == 0 {
		dst = 2
	}
	tr := &Traceroute{Src: src, Dst: dst, Time: 42, ProbeID: 7}
	for i, b := range hopSeed {
		if i >= 24 {
			break
		}
		h := Hop{TTL: i + 1}
		if b != 0 { // 0 byte → unresponsive hop
			h.IP = uint32(b) << 16
			h.RTT = float64(b) / 7
		}
		tr.Hops = append(tr.Hops, h)
	}
	if n := len(tr.Hops); n > 0 && tr.Hops[n-1].IP == dst {
		tr.Reached = true
	}
	return tr
}

// Property: JSON round trip preserves every field for arbitrary traces.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(src, dst uint32, hopSeed []byte) bool {
		in := arbitraryTrace(src, dst, hopSeed)
		data, err := json.Marshal(in)
		if err != nil {
			return false
		}
		out := &Traceroute{}
		if err := json.Unmarshal(data, out); err != nil {
			return false
		}
		// Reached is recomputed on decode; align before comparing, and
		// normalize nil vs empty hop slices (Clone always allocates).
		in2 := in.Clone()
		in2.Reached = out.Reached
		if len(in2.Hops) == 0 {
			in2.Hops = nil
		}
		if len(out.Hops) == 0 {
			out.Hops = nil
		}
		return reflect.DeepEqual(in2, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: text round trip preserves the hop IP sequence.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(src, dst uint32, hopSeed []byte) bool {
		in := arbitraryTrace(src, dst, hopSeed)
		out, err := ParseText(FormatText(in))
		if err != nil {
			return false
		}
		a, b := in.IPPath(), out.IPPath()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return out.Src == in.Src && out.Dst == in.Dst && out.Time == in.Time
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: EqualIPPaths is reflexive, symmetric, and hole-insensitive.
func TestQuickEqualIPPathsLaws(t *testing.T) {
	gen := func(rng *rand.Rand) []uint32 {
		n := rng.Intn(12)
		out := make([]uint32, n)
		for i := range out {
			if rng.Intn(4) != 0 {
				out[i] = uint32(rng.Intn(5) + 1)
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a, b := gen(rng), gen(rng)
		if !EqualIPPaths(a, a) {
			t.Fatalf("not reflexive: %v", a)
		}
		if EqualIPPaths(a, b) != EqualIPPaths(b, a) {
			t.Fatalf("not symmetric: %v %v", a, b)
		}
		// Punching a hole into a path never creates a difference.
		if len(a) > 0 && EqualIPPaths(a, a) {
			c := append([]uint32(nil), a...)
			c[rng.Intn(len(c))] = 0
			if !EqualIPPaths(a, c) {
				t.Fatalf("hole created difference: %v %v", a, c)
			}
		}
	}
}

// Property: SubpathIndex result really matches at the returned position.
func TestQuickSubpathIndexSound(t *testing.T) {
	f := func(pathSeed, subSeed []byte) bool {
		path := make([]uint32, len(pathSeed))
		for i, b := range pathSeed {
			path[i] = uint32(b % 8)
		}
		sub := make([]uint32, 0, len(subSeed))
		for _, b := range subSeed {
			if len(sub) >= 4 {
				break
			}
			sub = append(sub, uint32(b%8))
		}
		i := SubpathIndex(path, sub)
		if i < 0 {
			return true
		}
		for k, s := range sub {
			if path[i+k] != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: patching only fills holes and never alters responsive hops.
func TestQuickPatcherOnlyFillsHoles(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewPatcher()
	mk := func() *Traceroute {
		tr := &Traceroute{Src: 1, Dst: 99}
		for i := 0; i < 8; i++ {
			h := Hop{TTL: i + 1}
			if rng.Intn(5) != 0 {
				h.IP = uint32(rng.Intn(6) + 1)
			}
			tr.Hops = append(tr.Hops, h)
		}
		return tr
	}
	for i := 0; i < 200; i++ {
		p.Observe(mk())
	}
	for i := 0; i < 200; i++ {
		tr := mk()
		before := tr.IPPath()
		p.Patch(tr)
		after := tr.IPPath()
		for k := range before {
			if before[k] != 0 && after[k] != before[k] {
				t.Fatalf("patch altered responsive hop %d: %v -> %v", k, before, after)
			}
		}
	}
}
