package traceroute

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rrr/internal/trie"
)

// The JSON codec follows the RIPE Atlas result schema closely enough that
// tooling written for Atlas dumps maps onto it directly:
//
//	{"msm_id":5051,"prb_id":1,"timestamp":100,"src_addr":"10.0.0.1",
//	 "dst_addr":"20.0.0.1","result":[
//	   {"hop":1,"result":[{"from":"10.0.0.254","rtt":0.51}]},
//	   {"hop":2,"result":[{"x":"*"}]}]}
//
// One JSON object per line (NDJSON), as Atlas daily dumps are distributed.

type jsonTrace struct {
	MsmID     int64     `json:"msm_id"`
	PrbID     int       `json:"prb_id"`
	Timestamp int64     `json:"timestamp"`
	SrcAddr   string    `json:"src_addr"`
	DstAddr   string    `json:"dst_addr"`
	Result    []jsonHop `json:"result"`
}

type jsonHop struct {
	Hop    int          `json:"hop"`
	Result []jsonHopTry `json:"result"`
}

type jsonHopTry struct {
	From string  `json:"from,omitempty"`
	RTT  float64 `json:"rtt,omitempty"`
	X    string  `json:"x,omitempty"`
}

// MarshalJSON renders the traceroute in the Atlas-like schema.
func (t *Traceroute) MarshalJSON() ([]byte, error) {
	jt := jsonTrace{
		MsmID:     t.MsmID,
		PrbID:     t.ProbeID,
		Timestamp: t.Time,
		SrcAddr:   trie.FormatIP(t.Src),
		DstAddr:   trie.FormatIP(t.Dst),
	}
	for i, h := range t.Hops {
		jh := jsonHop{Hop: i + 1}
		if h.Responsive() {
			jh.Result = []jsonHopTry{{From: trie.FormatIP(h.IP), RTT: h.RTT}}
		} else {
			jh.Result = []jsonHopTry{{X: "*"}}
		}
		jt.Result = append(jt.Result, jh)
	}
	return json.Marshal(jt)
}

// UnmarshalJSON parses the Atlas-like schema. The destination counts as
// reached when the last hop's address equals dst_addr.
func (t *Traceroute) UnmarshalJSON(data []byte) error {
	var jt jsonTrace
	if err := json.Unmarshal(data, &jt); err != nil {
		return err
	}
	src, err := trie.ParseIP(jt.SrcAddr)
	if err != nil {
		return fmt.Errorf("traceroute: bad src_addr: %w", err)
	}
	dst, err := trie.ParseIP(jt.DstAddr)
	if err != nil {
		return fmt.Errorf("traceroute: bad dst_addr: %w", err)
	}
	*t = Traceroute{MsmID: jt.MsmID, ProbeID: jt.PrbID, Time: jt.Timestamp, Src: src, Dst: dst}
	for _, jh := range jt.Result {
		h := Hop{TTL: jh.Hop}
		if len(jh.Result) > 0 && jh.Result[0].X == "" && jh.Result[0].From != "" {
			ip, err := trie.ParseIP(jh.Result[0].From)
			if err != nil {
				return fmt.Errorf("traceroute: hop %d: %w", jh.Hop, err)
			}
			h.IP, h.RTT = ip, jh.Result[0].RTT
		}
		t.Hops = append(t.Hops, h)
	}
	if n := len(t.Hops); n > 0 && t.Hops[n-1].IP == dst {
		t.Reached = true
	}
	return nil
}

// JSONReader reads newline-delimited JSON traceroutes.
type JSONReader struct {
	s *bufio.Scanner
}

// NewJSONReader wraps r.
func NewJSONReader(r io.Reader) *JSONReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 256*1024), 16*1024*1024)
	return &JSONReader{s: s}
}

// Read parses the next traceroute, returning io.EOF at end of stream.
func (jr *JSONReader) Read() (*Traceroute, error) {
	for jr.s.Scan() {
		line := strings.TrimSpace(jr.s.Text())
		if line == "" {
			continue
		}
		var t Traceroute
		if err := json.Unmarshal([]byte(line), &t); err != nil {
			return nil, err
		}
		return &t, nil
	}
	if err := jr.s.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// JSONWriter writes newline-delimited JSON traceroutes.
type JSONWriter struct {
	w *bufio.Writer
}

// NewJSONWriter wraps w.
func NewJSONWriter(w io.Writer) *JSONWriter {
	return &JSONWriter{w: bufio.NewWriter(w)}
}

// Write emits one traceroute as a JSON line.
func (jw *JSONWriter) Write(t *Traceroute) error {
	data, err := json.Marshal(t)
	if err != nil {
		return err
	}
	if _, err := jw.w.Write(data); err != nil {
		return err
	}
	return jw.w.WriteByte('\n')
}

// Flush flushes the underlying buffer.
func (jw *JSONWriter) Flush() error { return jw.w.Flush() }

// FormatText renders the compact one-line text form:
//
//	<time> <probe> <src> <dst>: hop hop * hop
func FormatText(t *Traceroute) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %d %s %s:", t.Time, t.ProbeID, trie.FormatIP(t.Src), trie.FormatIP(t.Dst))
	for _, h := range t.Hops {
		b.WriteByte(' ')
		b.WriteString(h.String())
	}
	return b.String()
}

// ParseText parses the compact one-line text form produced by FormatText.
func ParseText(line string) (*Traceroute, error) {
	colon := strings.IndexByte(line, ':')
	if colon < 0 {
		return nil, fmt.Errorf("traceroute: text %q: missing colon", line)
	}
	head := strings.Fields(line[:colon])
	if len(head) != 4 {
		return nil, fmt.Errorf("traceroute: text %q: want 'time probe src dst'", line)
	}
	tm, err := strconv.ParseInt(head[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("traceroute: text %q: bad time", line)
	}
	prb, err := strconv.Atoi(head[1])
	if err != nil {
		return nil, fmt.Errorf("traceroute: text %q: bad probe id", line)
	}
	src, err := trie.ParseIP(head[2])
	if err != nil {
		return nil, err
	}
	dst, err := trie.ParseIP(head[3])
	if err != nil {
		return nil, err
	}
	t := &Traceroute{Time: tm, ProbeID: prb, Src: src, Dst: dst}
	for i, tok := range strings.Fields(line[colon+1:]) {
		h := Hop{TTL: i + 1}
		if tok != "*" {
			ip, err := trie.ParseIP(tok)
			if err != nil {
				return nil, err
			}
			h.IP = ip
		}
		t.Hops = append(t.Hops, h)
	}
	if n := len(t.Hops); n > 0 && t.Hops[n-1].IP == dst {
		t.Reached = true
	}
	return t, nil
}
