package traceroute

// Patcher implements Appendix A's unresponsive-hop patching: for each
// unresponsive hop with responsive hops on both sides, if across the corpus
// only a single responsive IP has ever been observed between that pair of
// neighbors, patch the hole with it. Remaining holes stay as wildcards.
type Patcher struct {
	// between maps (prev, next) neighbor pairs to the single responsive IP
	// observed between them, or to 0 once conflicting IPs are seen.
	between map[[2]uint32]uint32
}

// NewPatcher returns an empty Patcher.
func NewPatcher() *Patcher {
	return &Patcher{between: make(map[[2]uint32]uint32)}
}

// Observe records evidence from one traceroute: every responsive hop that
// sits directly between two responsive neighbors.
func (p *Patcher) Observe(t *Traceroute) {
	for i := 1; i+1 < len(t.Hops); i++ {
		prev, mid, next := t.Hops[i-1], t.Hops[i], t.Hops[i+1]
		if !prev.Responsive() || !mid.Responsive() || !next.Responsive() {
			continue
		}
		key := [2]uint32{prev.IP, next.IP}
		if cur, ok := p.between[key]; !ok {
			p.between[key] = mid.IP
		} else if cur != mid.IP {
			p.between[key] = 0 // conflicting evidence: never patch
		}
	}
}

// Patch fills single-hop holes in t in place when the corpus evidence is
// unambiguous. It returns the number of hops patched.
func (p *Patcher) Patch(t *Traceroute) int {
	patched := 0
	for i := 1; i+1 < len(t.Hops); i++ {
		if t.Hops[i].Responsive() {
			continue
		}
		prev, next := t.Hops[i-1], t.Hops[i+1]
		if !prev.Responsive() || !next.Responsive() {
			continue
		}
		if ip, ok := p.between[[2]uint32{prev.IP, next.IP}]; ok && ip != 0 {
			t.Hops[i].IP = ip
			patched++
		}
	}
	return patched
}

// SubpathIndex locates the first occurrence of the responsive IP sequence
// sub within path (which may contain 0 wildcards that match nothing) and
// returns its start index, or -1. sub must be non-empty and hole-free.
func SubpathIndex(path []uint32, sub []uint32) int {
	if len(sub) == 0 || len(sub) > len(path) {
		return -1
	}
outer:
	for i := 0; i+len(sub) <= len(path); i++ {
		for j, s := range sub {
			if path[i+j] != s {
				continue outer
			}
		}
		return i
	}
	return -1
}

// TraversesVia reports whether path visits from and later to (not
// necessarily adjacent), returning the two indices. Used by §4.2.1's
// T^intersect set: traceroutes that go through ι_m on the way to ι_n.
func TraversesVia(path []uint32, from, to uint32) (int, int, bool) {
	fi := -1
	for i, ip := range path {
		if ip == from {
			fi = i
			break
		}
	}
	if fi < 0 {
		return -1, -1, false
	}
	for j := fi + 1; j < len(path); j++ {
		if path[j] == to {
			return fi, j, true
		}
	}
	return -1, -1, false
}
