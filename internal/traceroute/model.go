// Package traceroute models traceroute measurements and implements the
// standard processing steps from the paper's Appendix A: IP-to-AS mapping
// with merging of consecutive identical AS hops, AS-loop filtering,
// unresponsive-hop patching, and conversion of IP-level paths to AS-level
// and border-router-level granularities (§3).
package traceroute

import (
	"fmt"
	"strings"

	"rrr/internal/bgp"
	"rrr/internal/trie"
)

// Hop is one traceroute hop. IP == 0 means the hop did not respond ("*").
type Hop struct {
	IP  uint32
	RTT float64 // round-trip time in milliseconds; 0 if unresponsive
	TTL int
}

// Responsive reports whether the hop replied.
func (h Hop) Responsive() bool { return h.IP != 0 }

// String renders the hop IP or "*".
func (h Hop) String() string {
	if !h.Responsive() {
		return "*"
	}
	return trie.FormatIP(h.IP)
}

// Traceroute is one measured path from Src toward Dst.
type Traceroute struct {
	// MsmID identifies the measurement campaign (RIPE Atlas msm_id).
	MsmID int64
	// ProbeID identifies the vantage point that issued the traceroute.
	ProbeID int
	// Time is the measurement timestamp in seconds since the epoch.
	Time int64
	// Src and Dst are the source and destination addresses.
	Src, Dst uint32
	// Hops is the hop sequence in TTL order.
	Hops []Hop
	// Reached reports whether the destination replied.
	Reached bool
}

// Key identifies the (source, destination) pair a traceroute measures.
type Key struct {
	Src uint32
	Dst uint32
}

// Key returns the traceroute's (src, dst) pair.
func (t *Traceroute) Key() Key { return Key{Src: t.Src, Dst: t.Dst} }

// String renders the key as "src->dst".
func (k Key) String() string {
	return trie.FormatIP(k.Src) + "->" + trie.FormatIP(k.Dst)
}

// IPPath returns the hop IPs (0 for unresponsive hops).
func (t *Traceroute) IPPath() []uint32 {
	out := make([]uint32, len(t.Hops))
	for i, h := range t.Hops {
		out[i] = h.IP
	}
	return out
}

// ResponsiveIPs returns the responsive hop IPs in order.
func (t *Traceroute) ResponsiveIPs() []uint32 {
	out := make([]uint32, 0, len(t.Hops))
	for _, h := range t.Hops {
		if h.Responsive() {
			out = append(out, h.IP)
		}
	}
	return out
}

// Clone deep-copies the traceroute.
func (t *Traceroute) Clone() *Traceroute {
	out := *t
	out.Hops = make([]Hop, len(t.Hops))
	copy(out.Hops, t.Hops)
	return &out
}

// String renders "src -> dst: hop hop * hop".
func (t *Traceroute) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s -> %s:", trie.FormatIP(t.Src), trie.FormatIP(t.Dst))
	for _, h := range t.Hops {
		b.WriteByte(' ')
		b.WriteString(h.String())
	}
	return b.String()
}

// Mapper resolves hop IPs to origin ASes and identifies IXP interfaces.
// Implementations combine longest-prefix matching over BGP-advertised
// prefixes, RIR delegations, and IXP prefix lists (Appendix A).
type Mapper interface {
	// ASOf maps ip to the AS that originates its covering prefix.
	ASOf(ip uint32) (bgp.ASN, bool)
	// IXPOf reports whether ip belongs to an IXP peering LAN, and if so
	// which exchange (an opaque nonzero identifier). IXP interfaces are
	// assigned to the member AS they belong to by traIXroute-style
	// resolution, which the caller does separately.
	IXPOf(ip uint32) (int, bool)
}

// ASHop is one AS-granularity hop of a traceroute, with the hop-index range
// of the underlying IP hops.
type ASHop struct {
	AS bgp.ASN
	// First and Last are inclusive indices into Traceroute.Hops.
	First, Last int
}

// ErrASLoop is returned when a traceroute's AS mapping contains a loop and
// must be discarded (Appendix A).
var ErrASLoop = fmt.Errorf("traceroute: AS-level loop")

// ASPath maps the traceroute to AS granularity per Appendix A: consecutive
// identical AS hops merge into one; two hops mapping to the same AS
// separated by unmapped hops also merge; IXP interfaces are transparent
// (attributed to neither side). Traceroutes whose mapping contains an AS
// loop return ErrASLoop.
func ASPath(t *Traceroute, m Mapper) ([]ASHop, error) {
	var out []ASHop
	for i, h := range t.Hops {
		if !h.Responsive() {
			continue
		}
		if _, isIXP := m.IXPOf(h.IP); isIXP {
			continue
		}
		as, ok := m.ASOf(h.IP)
		if !ok {
			continue
		}
		if n := len(out); n > 0 && out[n-1].AS == as {
			out[n-1].Last = i
			continue
		}
		out = append(out, ASHop{AS: as, First: i, Last: i})
	}
	// Merge hops that map to the same AS across a *different* mapped AS is
	// a loop; across unmapped hops they were already merged above.
	seen := make(map[bgp.ASN]bool, len(out))
	for _, h := range out {
		if seen[h.AS] {
			return nil, ErrASLoop
		}
		seen[h.AS] = true
	}
	return out, nil
}

// ASNs extracts the plain AS path from an ASHop sequence.
func ASNs(hops []ASHop) bgp.Path {
	out := make(bgp.Path, len(hops))
	for i, h := range hops {
		out[i] = h.AS
	}
	return out
}

// EqualIPPaths reports whether two IP-level paths are identical, treating
// unresponsive hops (0) as wildcards that match anything, per Appendix A
// ("we treat any remaining unresponsive hops as wildcards that cannot
// indicate a change").
func EqualIPPaths(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] == 0 || b[i] == 0 {
			continue
		}
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
