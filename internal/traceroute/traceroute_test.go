package traceroute

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/trie"
)

func ip(t *testing.T, s string) uint32 {
	t.Helper()
	v, err := trie.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func mkTrace(t *testing.T, src, dst string, hops ...string) *Traceroute {
	t.Helper()
	tr := &Traceroute{Src: ip(t, src), Dst: ip(t, dst), Time: 100, ProbeID: 7, MsmID: 5051}
	for i, h := range hops {
		hop := Hop{TTL: i + 1}
		if h != "*" {
			hop.IP = ip(t, h)
			hop.RTT = float64(i) + 0.5
		}
		tr.Hops = append(tr.Hops, hop)
	}
	if n := len(tr.Hops); n > 0 && tr.Hops[n-1].IP == tr.Dst {
		tr.Reached = true
	}
	return tr
}

// testMapper maps IPs to ASes by their first octet and marks 240.x as IXP.
type testMapper struct{}

func (testMapper) ASOf(ipv uint32) (bgp.ASN, bool) {
	first := ipv >> 24
	if first == 240 || first == 0 || first == 99 {
		return 0, false // IXP / unmapped ranges
	}
	return bgp.ASN(first), true
}

func (testMapper) IXPOf(ipv uint32) (int, bool) {
	if ipv>>24 == 240 {
		return 1, true
	}
	return 0, false
}

func TestASPathMergesConsecutive(t *testing.T) {
	tr := mkTrace(t, "1.0.0.1", "3.0.0.1",
		"1.0.0.2", "1.0.0.3", "2.0.0.1", "2.0.0.2", "3.0.0.1")
	hops, err := ASPath(tr, testMapper{})
	if err != nil {
		t.Fatal(err)
	}
	if !ASNs(hops).Equal(bgp.Path{1, 2, 3}) {
		t.Fatalf("AS path = %v", ASNs(hops))
	}
	if hops[0].First != 0 || hops[0].Last != 1 || hops[2].First != 4 {
		t.Errorf("hop ranges = %+v", hops)
	}
}

func TestASPathMergesAcrossUnmapped(t *testing.T) {
	// 99.x is unmapped: two AS1 hops separated by an unmapped hop merge.
	tr := mkTrace(t, "1.0.0.1", "2.0.0.1",
		"1.0.0.2", "99.0.0.1", "1.0.0.3", "2.0.0.1")
	hops, err := ASPath(tr, testMapper{})
	if err != nil {
		t.Fatal(err)
	}
	if !ASNs(hops).Equal(bgp.Path{1, 2}) {
		t.Fatalf("AS path = %v", ASNs(hops))
	}
}

func TestASPathSkipsIXPAndUnresponsive(t *testing.T) {
	tr := mkTrace(t, "1.0.0.1", "2.0.0.1",
		"1.0.0.2", "*", "240.0.0.9", "2.0.0.1")
	hops, err := ASPath(tr, testMapper{})
	if err != nil {
		t.Fatal(err)
	}
	if !ASNs(hops).Equal(bgp.Path{1, 2}) {
		t.Fatalf("AS path = %v", ASNs(hops))
	}
}

func TestASPathLoopRejected(t *testing.T) {
	tr := mkTrace(t, "1.0.0.1", "1.0.0.9",
		"1.0.0.2", "2.0.0.1", "1.0.0.3")
	if _, err := ASPath(tr, testMapper{}); err != ErrASLoop {
		t.Fatalf("want ErrASLoop, got %v", err)
	}
}

func TestEqualIPPathsWildcards(t *testing.T) {
	a := []uint32{1, 0, 3}
	b := []uint32{1, 2, 3}
	if !EqualIPPaths(a, b) {
		t.Error("wildcard should match")
	}
	if EqualIPPaths([]uint32{1, 2}, []uint32{1, 2, 3}) {
		t.Error("length mismatch should differ")
	}
	if EqualIPPaths([]uint32{1, 2, 4}, b) {
		t.Error("mismatched hop should differ")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := mkTrace(t, "10.0.0.1", "20.0.0.1", "10.0.0.254", "*", "20.0.0.1")
	var buf bytes.Buffer
	w := NewJSONWriter(&buf)
	if err := w.Write(tr); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r := NewJSONReader(&buf)
	got, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("\n got %+v\nwant %+v", got, tr)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if !got.Reached {
		t.Error("reached should be inferred from last hop == dst")
	}
}

func TestJSONReaderSkipsBlankAndErrors(t *testing.T) {
	r := NewJSONReader(strings.NewReader("\n\n{bogus}\n"))
	if _, err := r.Read(); err == nil {
		t.Error("want parse error")
	}
	r = NewJSONReader(strings.NewReader(`{"src_addr":"x","dst_addr":"1.2.3.4"}` + "\n"))
	if _, err := r.Read(); err == nil {
		t.Error("want bad src error")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := mkTrace(t, "10.0.0.1", "20.0.0.1", "10.0.0.254", "*", "20.0.0.1")
	line := FormatText(tr)
	got, err := ParseText(line)
	if err != nil {
		t.Fatal(err)
	}
	// Text format does not carry MsmID or RTTs.
	want := tr.Clone()
	want.MsmID = 0
	for i := range want.Hops {
		want.Hops[i].RTT = 0
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("\n got %+v\nwant %+v", got, want)
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []string{
		"",
		"1 2 3.3.3.3 4.4.4.4 extra: 1.1.1.1",
		"x 2 3.3.3.3 4.4.4.4: 1.1.1.1",
		"1 x 3.3.3.3 4.4.4.4: 1.1.1.1",
		"1 2 badip 4.4.4.4: 1.1.1.1",
		"1 2 3.3.3.3 badip: 1.1.1.1",
		"1 2 3.3.3.3 4.4.4.4: badhop",
	}
	for i, c := range cases {
		if _, err := ParseText(c); err == nil {
			t.Errorf("case %d (%q): want error", i, c)
		}
	}
}

func TestPatcher(t *testing.T) {
	p := NewPatcher()
	// Evidence: 1.0.0.1 -> 5.5.5.5 -> 2.0.0.1 seen responsive.
	p.Observe(mkTrace(t, "9.0.0.1", "2.0.0.9", "1.0.0.1", "5.5.5.5", "2.0.0.1"))
	// Hole between the same neighbors gets patched.
	tr := mkTrace(t, "9.0.0.2", "2.0.0.9", "1.0.0.1", "*", "2.0.0.1")
	if n := p.Patch(tr); n != 1 {
		t.Fatalf("patched %d; want 1", n)
	}
	if tr.Hops[1].IP != ip(t, "5.5.5.5") {
		t.Fatalf("patched to %s", tr.Hops[1])
	}
	// Conflicting evidence disables patching for that triple.
	p.Observe(mkTrace(t, "9.0.0.1", "2.0.0.9", "1.0.0.1", "6.6.6.6", "2.0.0.1"))
	tr2 := mkTrace(t, "9.0.0.2", "2.0.0.9", "1.0.0.1", "*", "2.0.0.1")
	if n := p.Patch(tr2); n != 0 {
		t.Fatalf("patched %d after conflict; want 0", n)
	}
	// Holes at the edge or adjacent to other holes stay.
	tr3 := mkTrace(t, "9.0.0.2", "2.0.0.9", "*", "1.0.0.1", "*", "*", "2.0.0.1")
	if n := p.Patch(tr3); n != 0 {
		t.Fatalf("patched %d; want 0", n)
	}
}

func TestSubpathIndex(t *testing.T) {
	path := []uint32{1, 2, 3, 4, 5}
	if i := SubpathIndex(path, []uint32{2, 3}); i != 1 {
		t.Errorf("SubpathIndex = %d; want 1", i)
	}
	if i := SubpathIndex(path, []uint32{3, 2}); i != -1 {
		t.Errorf("SubpathIndex = %d; want -1", i)
	}
	if i := SubpathIndex(path, nil); i != -1 {
		t.Errorf("SubpathIndex(nil) = %d; want -1", i)
	}
	if i := SubpathIndex([]uint32{1}, []uint32{1, 2}); i != -1 {
		t.Errorf("SubpathIndex longer-than-path = %d; want -1", i)
	}
}

func TestTraversesVia(t *testing.T) {
	path := []uint32{1, 2, 3, 4}
	if i, j, ok := TraversesVia(path, 2, 4); !ok || i != 1 || j != 3 {
		t.Errorf("TraversesVia = %d,%d,%v", i, j, ok)
	}
	if _, _, ok := TraversesVia(path, 4, 2); ok {
		t.Error("reversed order should not match")
	}
	if _, _, ok := TraversesVia(path, 9, 4); ok {
		t.Error("absent from should not match")
	}
}

func TestKeyAndStrings(t *testing.T) {
	tr := mkTrace(t, "1.0.0.1", "2.0.0.1", "1.0.0.2", "*", "2.0.0.1")
	if tr.Key().String() != "1.0.0.1->2.0.0.1" {
		t.Errorf("key = %s", tr.Key())
	}
	if want := "1.0.0.1 -> 2.0.0.1: 1.0.0.2 * 2.0.0.1"; tr.String() != want {
		t.Errorf("String = %q", tr.String())
	}
	ips := tr.ResponsiveIPs()
	if len(ips) != 2 {
		t.Errorf("ResponsiveIPs = %v", ips)
	}
	full := tr.IPPath()
	if len(full) != 3 || full[1] != 0 {
		t.Errorf("IPPath = %v", full)
	}
}

func BenchmarkJSONRoundTrip(b *testing.B) {
	tr := &Traceroute{Src: 0x0a000001, Dst: 0x14000001, Time: 1, ProbeID: 1}
	for i := 0; i < 16; i++ {
		tr.Hops = append(tr.Hops, Hop{IP: uint32(0x0a000100 + i), TTL: i + 1, RTT: 1.5})
	}
	var buf bytes.Buffer
	w := NewJSONWriter(&buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := w.Write(tr); err != nil {
			b.Fatal(err)
		}
		w.Flush()
	}
}

func TestParsersNeverPanicOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(256)
		buf := make([]byte, n)
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on garbage (trial %d): %v", trial, r)
				}
			}()
			_, _ = ParseText(string(buf))
			tr := &Traceroute{}
			_ = tr.UnmarshalJSON(buf)
		}()
	}
}
