package baselines

import (
	"testing"

	"rrr/internal/traceroute"
)

// synthOracle builds `n` pairs observed every 900 s for `days`. Pair i
// changes paths at the times listed in changes[i] (aligned to 900 s).
func synthOracle(n int, days int, changes map[int][]int64) *Oracle {
	end := int64(days) * 86400
	var tls []*Timeline
	for i := 0; i < n; i++ {
		key := traceroute.Key{Src: uint32(i + 1), Dst: 0xffff}
		tl := &Timeline{Key: key}
		pathID := 0
		ci := 0
		cs := changes[i]
		for t := int64(0); t < end; t += 900 {
			for ci < len(cs) && cs[ci] <= t {
				pathID++
				ci++
			}
			tl.Obs = append(tl.Obs, PathObservation{
				Time:    t,
				PathID:  pathID,
				Borders: []string{borderName(i, pathID)},
			})
		}
		tls = append(tls, tl)
	}
	return NewOracle(tls)
}

func borderName(pair, pathID int) string {
	// Pairs 0 and 1 share border identities so Sibyl patching can link
	// their changes.
	if pair <= 1 {
		return "shared-" + string(rune('a'+pathID))
	}
	return "b" + string(rune('0'+pair)) + "-" + string(rune('a'+pathID))
}

func key(i int) traceroute.Key { return traceroute.Key{Src: uint32(i + 1), Dst: 0xffff} }

func TestTimelineAtAndChanges(t *testing.T) {
	o := synthOracle(1, 2, map[int][]int64{0: {3600, 7200}})
	tl := o.Timelines[key(0)]
	if tl.At(0).PathID != 0 {
		t.Error("initial path id")
	}
	if tl.At(3600).PathID != 1 {
		t.Errorf("At(3600) = %d; want 1", tl.At(3600).PathID)
	}
	if tl.At(1e9).PathID != 2 {
		t.Error("late At should be final path")
	}
	if tl.At(-5).PathID != 0 {
		t.Error("pre-start At should be first obs")
	}
	chs := tl.Changes()
	if len(chs) != 2 || chs[0].Time != 3600 || chs[1].Time != 7200 {
		t.Fatalf("changes = %+v", chs)
	}
	if o.TotalChanges(0, 2*86400) != 2 {
		t.Errorf("TotalChanges = %d", o.TotalChanges(0, 2*86400))
	}
	if o.TotalChanges(4000, 2*86400) != 1 {
		t.Errorf("bounded TotalChanges = %d", o.TotalChanges(4000, 2*86400))
	}
}

func TestRoundRobinBudget(t *testing.T) {
	o := synthOracle(10, 1, nil)
	v := NewView(o, 0, 1)
	rr := &RoundRobin{}
	// Budget for exactly 3 traceroutes per step.
	got := rr.Step(900, 3*TraceroutePackets, v)
	if len(got) != 3 {
		t.Fatalf("step measured %d; want 3", len(got))
	}
	got2 := rr.Step(1800, 3*TraceroutePackets, v)
	if got2[0] == got[0] {
		t.Fatal("round robin should advance the cursor")
	}
	// Fractional budget accumulates.
	rrf := &RoundRobin{}
	n := 0
	for i := 0; i < 4; i++ {
		n += len(rrf.Step(int64(i)*900, TraceroutePackets/2, v))
	}
	if n != 2 {
		t.Fatalf("fractional carry produced %d measurements; want 2", n)
	}
}

func TestEvaluateRoundRobinDetectsWithBudget(t *testing.T) {
	changes := map[int][]int64{}
	for i := 0; i < 10; i++ {
		changes[i] = []int64{86400 + int64(i)*7200}
	}
	o := synthOracle(10, 5, changes)
	// Generous budget: every pair measured every step.
	res := Evaluate(o, &RoundRobin{}, 0, 5*86400, 3600, 1.0)
	if res.Total != 10 {
		t.Fatalf("total = %d", res.Total)
	}
	if res.Detected != 10 {
		t.Fatalf("high-budget round robin detected %d/10", res.Detected)
	}
	// Tiny budget: detection drops.
	res2 := Evaluate(o, &RoundRobin{}, 0, 5*86400, 3600, 0.00001)
	if res2.Detected >= res.Detected {
		t.Fatalf("tiny budget detected %d; want fewer than %d", res2.Detected, res.Detected)
	}
}

func TestRevertedChangeMissedByPeriodic(t *testing.T) {
	// Path changes and reverts between two measurements: a periodic
	// strategy that misses the interval sees nothing.
	o := synthOracle(1, 2, map[int][]int64{0: {10 * 900, 11 * 900}})
	tl := o.Timelines[key(0)]
	// PathID goes 0 → 1 → 2, so reverts are actually distinct IDs here;
	// craft a true revert manually.
	for i := range tl.Obs {
		if tl.Obs[i].PathID == 2 {
			tl.Obs[i].PathID = 0
			tl.Obs[i].Borders = []string{borderName(0, 0)}
		}
	}
	// One measurement per day: both changes inside one gap.
	res := Evaluate(o, &RoundRobin{}, 0, 2*86400, 86400, 16.0/86400.0)
	if res.Detected != 0 {
		t.Fatalf("reverted change detected %d; want 0 (both changes hidden)", res.Detected)
	}
}

func TestSibylPatchesSharedBorderChanges(t *testing.T) {
	// Pairs 0 and 1 share border identities and change simultaneously;
	// pair 2's change is unrelated.
	changes := map[int][]int64{
		0: {2 * 86400},
		1: {2 * 86400},
		2: {2 * 86400},
	}
	o := synthOracle(3, 5, changes)
	// Budget: one traceroute per step → round robin alone would take 3
	// steps to see everything; Sibyl patches pair 1 when measuring pair 0.
	sib := &Sibyl{}
	res := Evaluate(o, sib, 0, 5*86400, 3600, float64(TraceroutePackets)/3.0/3600.0)
	rr := Evaluate(o, &RoundRobin{}, 0, 5*86400, 3600, float64(TraceroutePackets)/3.0/3600.0)
	if res.Detected < rr.Detected {
		t.Fatalf("sibyl %d < round robin %d", res.Detected, rr.Detected)
	}
	if res.Detected != 3 {
		t.Fatalf("sibyl detected %d/3", res.Detected)
	}
}

func TestDTrackFocusesProbes(t *testing.T) {
	// One volatile pair among many stable ones.
	changes := map[int][]int64{0: {86400, 2 * 86400, 3 * 86400, 4 * 86400}}
	o := synthOracle(20, 5, changes)
	dt := NewDTrack()
	res := Evaluate(o, dt, 0, 5*86400, 3600, 0.001)
	if res.Total != 4 {
		t.Fatalf("total = %d", res.Total)
	}
	if res.Detected == 0 {
		t.Fatal("dtrack detected nothing")
	}
	if dt.rates[key(0)] == 0 {
		t.Fatal("dtrack did not learn the volatile pair's rate")
	}
}

func TestSignalsStrategyAndOptimal(t *testing.T) {
	changes := map[int][]int64{
		0: {2 * 86400},
		1: {3 * 86400},
	}
	o := synthOracle(5, 5, changes)
	feed := SignalFeed{
		key(0): {2*86400 + 600}, // matched signal
		key(3): {4 * 86400},     // false positive
	}
	s := &Signals{Feed: feed}
	res := Evaluate(o, s, 0, 5*86400, 3600, 1)
	if res.Detected != 1 {
		t.Fatalf("signals detected %d; want 1 (pair 1 unsignaled)", res.Detected)
	}
	// The false positive cost a measurement.
	if res.Measurements < 2 {
		t.Fatalf("measurements = %d; want >= 2 (one TP, one FP)", res.Measurements)
	}
	opt := MatchOptimal(o, feed, 1800, 0, 5*86400)
	if opt.Detected != 1 || opt.Total != 2 {
		t.Fatalf("optimal = %d/%d", opt.Detected, opt.Total)
	}
}

func TestDTrackSignalsOutperformsBoth(t *testing.T) {
	changes := map[int][]int64{}
	for i := 0; i < 10; i++ {
		changes[i] = []int64{int64(i+1) * 86400 / 2}
	}
	o := synthOracle(10, 6, changes)
	feed := SignalFeed{}
	// Signals cover the first 5 pairs only.
	for i := 0; i < 5; i++ {
		feed[key(i)] = []int64{changes[i][0] + 300}
	}
	pps := 0.002
	ds := NewDTrackSignals(feed)
	resDS := Evaluate(o, ds, 0, 6*86400, 3600, pps)
	resSig := Evaluate(o, &Signals{Feed: feed}, 0, 6*86400, 3600, pps)
	if resDS.Detected < resSig.Detected {
		t.Fatalf("dtrack+signals %d < signals %d", resDS.Detected, resSig.Detected)
	}
	if resDS.Detected <= 0 {
		t.Fatal("dtrack+signals detected nothing")
	}
}

func TestApproxExp(t *testing.T) {
	cases := []struct{ x, want, tol float64 }{
		{0, 1, 1e-9},
		{-0.5, 0.6065, 0.01},
		{-1, 0.3679, 0.01},
		{-10, 0, 0.001},
	}
	for _, c := range cases {
		if got := approxExp(c.x); got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("approxExp(%f) = %f; want %f±%f", c.x, got, c.want, c.tol)
		}
	}
}

func TestViewMeasureUpdatesState(t *testing.T) {
	o := synthOracle(2, 2, map[int][]int64{0: {3600}})
	v := NewView(o, 0, 1)
	prev, cur := v.Measure(key(0), 7200)
	if prev.PathID != 0 || cur.PathID != 1 {
		t.Fatalf("measure = %d -> %d", prev.PathID, cur.PathID)
	}
	if v.LastSeen(key(0)).PathID != 1 || v.LastMeasured(key(0)) != 7200 {
		t.Fatal("view state not updated")
	}
	if v.PacketsSpent != TraceroutePackets {
		t.Fatalf("packets = %f", v.PacketsSpent)
	}
}

func TestProbeChangedOnlyWhenChanged(t *testing.T) {
	o := synthOracle(1, 2, map[int][]int64{0: {3600}})
	v := NewView(o, 0, 1)
	if v.ProbeChanged(key(0), 1800) {
		t.Fatal("probe detected change before it happened")
	}
	// After the change, repeated probes eventually detect (p=1/2 each).
	hit := false
	for i := int64(0); i < 20; i++ {
		if v.ProbeChanged(key(0), 7200+i) {
			hit = true
			break
		}
	}
	if !hit {
		t.Fatal("probe never detected a real change")
	}
}

func TestEvaluateSignalsMatched(t *testing.T) {
	changes := map[int][]int64{
		0: {2 * 86400},
		1: {3 * 86400},
	}
	o := synthOracle(4, 5, changes)
	feed := SignalFeed{
		key(0): {2*86400 + 600},    // true positive near the change
		key(2): {86400, 4 * 86400}, // false positives
	}
	// Generous budget: both signal batches measurable.
	r := EvaluateSignalsMatched(o, feed, 1800, 0, 5*86400, 3600, 1)
	if r.Total != 2 {
		t.Fatalf("total = %d", r.Total)
	}
	if r.Detected != 1 {
		t.Fatalf("detected = %d; want 1", r.Detected)
	}
	if r.Measurements < 3 {
		t.Fatalf("measurements = %d; want >= 3 (1 TP + 2 FP)", r.Measurements)
	}
	// Zero budget detects nothing.
	r0 := EvaluateSignalsMatched(o, feed, 1800, 0, 5*86400, 3600, 0)
	if r0.Detected != 0 || r0.Measurements != 0 {
		t.Fatalf("zero budget: %+v", r0)
	}
}
