// Package baselines implements the comparison approaches of §5.3 and the
// trace-driven emulation used to produce Fig 8: round-robin remeasurement,
// Sibyl's corpus patching, DTRACK's prediction-driven probing, staleness
// signals, the optimal-signal bound, and the DTRACK+SIGNALS integration of
// §6.1. All approaches are emulated against a pseudo-ground-truth oracle of
// densely measured path timelines, deciding what to measure under a packet
// budget.
package baselines

import (
	"hash/fnv"
	"sort"

	"rrr/internal/traceroute"
)

// PathObservation is one densely-sampled ground-truth state of a path.
type PathObservation struct {
	Time int64
	// PathID identifies the border-level path; equal IDs mean unchanged.
	PathID int
	// Borders are the border-crossing keys of the path, for Sibyl's
	// subpath patching.
	Borders []string
}

// Timeline is a pair's pseudo-ground-truth history, observations in
// ascending time order.
type Timeline struct {
	Key traceroute.Key
	Obs []PathObservation
}

// At returns the latest observation at or before t (the first observation
// for earlier times).
func (tl *Timeline) At(t int64) PathObservation {
	idx := sort.Search(len(tl.Obs), func(i int) bool { return tl.Obs[i].Time > t })
	if idx == 0 {
		return tl.Obs[0]
	}
	return tl.Obs[idx-1]
}

// Change is one ground-truth path change.
type Change struct {
	Key  traceroute.Key
	Time int64
	From PathObservation
	To   PathObservation
}

// Changes lists the timeline's transitions.
func (tl *Timeline) Changes() []Change {
	var out []Change
	for i := 1; i < len(tl.Obs); i++ {
		if tl.Obs[i].PathID != tl.Obs[i-1].PathID {
			out = append(out, Change{
				Key: tl.Key, Time: tl.Obs[i].Time,
				From: tl.Obs[i-1], To: tl.Obs[i],
			})
		}
	}
	return out
}

// Oracle is the pseudo-ground-truth corpus (§5.3's high-rate DTRACK
// dataset).
type Oracle struct {
	Timelines map[traceroute.Key]*Timeline
	keys      []traceroute.Key
}

// NewOracle indexes the timelines.
func NewOracle(tls []*Timeline) *Oracle {
	o := &Oracle{Timelines: make(map[traceroute.Key]*Timeline, len(tls))}
	for _, tl := range tls {
		o.Timelines[tl.Key] = tl
		o.keys = append(o.keys, tl.Key)
	}
	sort.Slice(o.keys, func(i, j int) bool {
		if o.keys[i].Src != o.keys[j].Src {
			return o.keys[i].Src < o.keys[j].Src
		}
		return o.keys[i].Dst < o.keys[j].Dst
	})
	return o
}

// Keys returns the monitored pairs in deterministic order.
func (o *Oracle) Keys() []traceroute.Key { return o.keys }

// TotalChanges counts all ground-truth changes in [start, end).
func (o *Oracle) TotalChanges(start, end int64) int {
	n := 0
	for _, tl := range o.Timelines {
		for _, c := range tl.Changes() {
			if c.Time >= start && c.Time < end {
				n++
			}
		}
	}
	return n
}

// TraceroutePackets is the emulated packet cost of one full traceroute
// (roughly one probe per hop).
const TraceroutePackets = 16

// View is the per-strategy mutable emulation state the harness maintains:
// the last path each strategy has seen per pair, plus cheap detection-probe
// access for DTRACK.
type View struct {
	oracle   *Oracle
	lastSeen map[traceroute.Key]PathObservation
	lastTime map[traceroute.Key]int64
	seed     int64
	// PacketsSpent tallies emulated probe packets.
	PacketsSpent float64
}

// NewView initializes strategy state at the emulation start: every pair's
// initial measurement is known (the corpus exists at t0).
func NewView(o *Oracle, start int64, seed int64) *View {
	v := &View{
		oracle:   o,
		lastSeen: make(map[traceroute.Key]PathObservation, len(o.keys)),
		lastTime: make(map[traceroute.Key]int64, len(o.keys)),
		seed:     seed,
	}
	for _, k := range o.keys {
		v.lastSeen[k] = o.Timelines[k].At(start)
		v.lastTime[k] = start
	}
	return v
}

// LastSeen returns the strategy's current belief for the pair.
func (v *View) LastSeen(k traceroute.Key) PathObservation { return v.lastSeen[k] }

// LastMeasured returns when the strategy last measured the pair.
func (v *View) LastMeasured(k traceroute.Key) int64 { return v.lastTime[k] }

// ProbeChanged emulates one DTRACK detection probe (one packet): it probes
// a single varying hop and notices a change only if that hop differs. A
// border-level change touches a small share of a path's hops, so a single
// probe detects it with probability ~0.3; deterministic per (pair, time).
func (v *View) ProbeChanged(k traceroute.Key, now int64) bool {
	return v.probeChangedSalted(k, now, 0)
}

func (v *View) probeChangedSalted(k traceroute.Key, now, salt int64) bool {
	v.PacketsSpent++
	cur := v.oracle.Timelines[k].At(now)
	if cur.PathID == v.lastSeen[k].PathID {
		return false
	}
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(now+int64(k.Src)*3+int64(k.Dst)*7+v.seed+salt*131) >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()%10 < 3
}

// Measure emulates a full traceroute at time now, updating the view and
// returning the previous and current observations.
func (v *View) Measure(k traceroute.Key, now int64) (prev, cur PathObservation) {
	v.PacketsSpent += TraceroutePackets
	prev = v.lastSeen[k]
	cur = v.oracle.Timelines[k].At(now)
	v.lastSeen[k] = cur
	v.lastTime[k] = now
	return prev, cur
}

// Strategy decides what to measure each emulation step.
type Strategy interface {
	Name() string
	// Step runs one emulation step ending at `now` with `packets` of probe
	// budget, returning the pairs it chose to traceroute. The harness
	// performs the measurements.
	Step(now int64, packets float64, v *View) []traceroute.Key
}

// Result summarizes one emulated run.
type Result struct {
	Strategy string
	// Detected is the number of ground-truth changes credited.
	Detected int
	// Total is the number of ground-truth changes in the run.
	Total int
	// Measurements is the number of full traceroutes issued.
	Measurements int
}

// Fraction is Detected/Total.
func (r Result) Fraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Total)
}

// Evaluate runs a strategy from start to end with the given step duration
// and an average per-path probing rate in packets per second (Fig 8's
// x-axis).
func Evaluate(o *Oracle, s Strategy, start, end, step int64, ppsPerPath float64) Result {
	v := NewView(o, start, 1)
	res := Result{Strategy: s.Name(), Total: o.TotalChanges(start, end)}
	detected := make(map[traceroute.Key]map[int64]bool)
	credit := func(k traceroute.Key, t int64) {
		if detected[k] == nil {
			detected[k] = make(map[int64]bool)
		}
		if !detected[k][t] {
			detected[k][t] = true
			res.Detected++
		}
	}
	for now := start + step; now <= end; now += step {
		packets := ppsPerPath * float64(len(o.Keys())) * float64(step)
		keys := s.Step(now, packets, v)
		for _, k := range keys {
			lastT := v.lastTime[k]
			prev, cur := v.Measure(k, now)
			res.Measurements++
			if prev.PathID == cur.PathID {
				continue
			}
			// Credit the latest change in (lastT, now]; earlier overwritten
			// changes are missed, as in the paper's emulation.
			tl := o.Timelines[k]
			chs := tl.Changes()
			for i := len(chs) - 1; i >= 0; i-- {
				if chs[i].Time > lastT && chs[i].Time <= now {
					credit(k, chs[i].Time)
					break
				}
			}
			if p, ok := s.(patcher); ok {
				for _, pk := range p.Patch(k, prev, cur, now, v) {
					credit(pk.key, pk.changeTime)
				}
			}
		}
	}
	return res
}

// patcher is implemented by Sibyl to propagate detected changes.
type patcher interface {
	Patch(k traceroute.Key, prev, cur PathObservation, now int64, v *View) []patchCredit
}

type patchCredit struct {
	key        traceroute.Key
	changeTime int64
}

// --- Round-robin (Ark/Atlas style) ---

// RoundRobin cycles through all pairs at whatever rate the budget allows.
type RoundRobin struct {
	cursor int
	carry  float64
}

// Name implements Strategy.
func (r *RoundRobin) Name() string { return "round-robin" }

// Step implements Strategy.
func (r *RoundRobin) Step(now int64, packets float64, v *View) []traceroute.Key {
	keys := v.oracle.Keys()
	r.carry += packets
	n := int(r.carry / TraceroutePackets)
	if n > len(keys) {
		n = len(keys)
	}
	r.carry -= float64(n) * TraceroutePackets
	out := make([]traceroute.Key, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, keys[r.cursor%len(keys)])
		r.cursor++
	}
	return out
}

// --- Sibyl (round-robin + optimistic patching) ---

// Sibyl runs periodic traceroutes and patches other corpus traceroutes
// whose paths share the changed subpath (§5.3's optimistic emulation: a
// patch is applied only when correct and never penalized).
type Sibyl struct {
	rr RoundRobin
}

// Name implements Strategy.
func (s *Sibyl) Name() string { return "sibyl" }

// Step implements Strategy.
func (s *Sibyl) Step(now int64, packets float64, v *View) []traceroute.Key {
	return s.rr.Step(now, packets, v)
}

// Patch implements the patcher hook: pairs whose latest undetected change
// removed or added one of the same borders are patched (and credited).
func (s *Sibyl) Patch(k traceroute.Key, prev, cur PathObservation, now int64, v *View) []patchCredit {
	diff := borderDiff(prev.Borders, cur.Borders)
	if len(diff) == 0 {
		return nil
	}
	var out []patchCredit
	for _, ok := range v.oracle.Keys() {
		if ok == k {
			continue
		}
		seen := v.lastSeen[ok]
		truth := v.oracle.Timelines[ok].At(now)
		if truth.PathID == seen.PathID {
			continue
		}
		// The other pair changed; does its change involve the same
		// borders?
		odiff := borderDiff(seen.Borders, truth.Borders)
		if !intersects(diff, odiff) {
			continue
		}
		// Optimistic patch: adopt the truth without a measurement.
		lastT := v.lastTime[ok]
		v.lastSeen[ok] = truth
		v.lastTime[ok] = now
		chs := v.oracle.Timelines[ok].Changes()
		for i := len(chs) - 1; i >= 0; i-- {
			if chs[i].Time > lastT && chs[i].Time <= now {
				out = append(out, patchCredit{key: ok, changeTime: chs[i].Time})
				break
			}
		}
	}
	return out
}

func borderDiff(a, b []string) map[string]bool {
	am := make(map[string]bool, len(a))
	for _, x := range a {
		am[x] = true
	}
	bm := make(map[string]bool, len(b))
	for _, x := range b {
		bm[x] = true
	}
	out := make(map[string]bool)
	for x := range am {
		if !bm[x] {
			out[x] = true
		}
	}
	for x := range bm {
		if !am[x] {
			out[x] = true
		}
	}
	return out
}

func intersects(a, b map[string]bool) bool {
	for x := range a {
		if b[x] {
			return true
		}
	}
	return false
}

// --- DTRACK ---

// DTrack allocates single-packet detection probes to paths proportionally
// to their estimated probability of having changed, remapping with a full
// traceroute when a probe detects a change (Cunha et al., and §5.3).
type DTrack struct {
	// rate estimates per pair: changes per second, exponentially smoothed.
	rates   map[traceroute.Key]float64
	changes map[traceroute.Key]int
	started int64
	init    bool
}

// NewDTrack returns an empty DTRACK emulator.
func NewDTrack() *DTrack {
	return &DTrack{rates: make(map[traceroute.Key]float64), changes: make(map[traceroute.Key]int)}
}

// Name implements Strategy.
func (d *DTrack) Name() string { return "dtrack" }

// Step implements Strategy: spend the budget on detection probes over the
// pairs most likely to have changed; full traceroutes only on detection.
func (d *DTrack) Step(now int64, packets float64, v *View) []traceroute.Key {
	keys := v.oracle.Keys()
	if !d.init {
		d.init = true
		d.started = now
	}
	type cand struct {
		k traceroute.Key
		p float64
	}
	cands := make([]cand, 0, len(keys))
	for _, k := range keys {
		elapsed := float64(now - v.lastTime[k])
		rate := d.rates[k]
		if rate == 0 {
			rate = 1.0 / (30 * 86400) // prior: one change a month
		}
		p := 1 - approxExp(-rate*elapsed)
		cands = append(cands, cand{k: k, p: p})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].p != cands[j].p {
			return cands[i].p > cands[j].p
		}
		if cands[i].k.Src != cands[j].k.Src {
			return cands[i].k.Src < cands[j].k.Src
		}
		return cands[i].k.Dst < cands[j].k.Dst
	})
	var remaps []traceroute.Key
	remapped := make(map[traceroute.Key]bool)
	budget := packets
	// DTRACK allocates its probing *rate* per path: with spare budget it
	// probes a path several times per interval, so each round below
	// revisits the candidates (each probe detects a live change with
	// probability ~0.3, independently).
	for round := 0; budget >= 1 && round < 8; round++ {
		progressed := false
		for ri, c := range cands {
			if budget < 1 {
				break
			}
			if remapped[c.k] {
				continue
			}
			budget--
			progressed = true
			if v.probeChangedSalted(c.k, now, int64(round*31+ri)) {
				if budget >= TraceroutePackets {
					budget -= TraceroutePackets
					remaps = append(remaps, c.k)
					remapped[c.k] = true
					d.noteChange(c.k, now)
				}
			}
		}
		if !progressed {
			break
		}
	}
	return remaps
}

func (d *DTrack) noteChange(k traceroute.Key, now int64) {
	d.changes[k]++
	obs := float64(now-d.started) + 86400
	d.rates[k] = float64(d.changes[k]) / obs
}

// approxExp is a cheap exp for small negative arguments.
func approxExp(x float64) float64 {
	// 4th-order Taylor is fine for x in [-5, 0]; clamp below.
	if x < -5 {
		return 0
	}
	sum, term := 1.0, 1.0
	for i := 1; i <= 6; i++ {
		term *= x / float64(i)
		sum += term
	}
	if sum < 0 {
		return 0
	}
	return sum
}

// --- Signals ---

// SignalFeed provides externally-computed staleness prediction signals per
// pair (from the core engine), as times when signals fired.
type SignalFeed map[traceroute.Key][]int64

// Signals remeasures pairs flagged since the previous step, in flag order,
// under the budget (§5.3's "signals" line).
type Signals struct {
	Feed SignalFeed
	last int64
	// MatchWindow is the ±window for matching a signal to a change; 30
	// minutes in the paper.
	MatchWindow int64
}

// Name implements Strategy.
func (s *Signals) Name() string { return "signals" }

// Step implements Strategy: remeasure pairs with a signal newer than their
// last measurement, so a persistent signal does not drain the budget on a
// pair that was already refreshed.
func (s *Signals) Step(now int64, packets float64, v *View) []traceroute.Key {
	if s.MatchWindow == 0 {
		s.MatchWindow = 1800
	}
	budget := packets
	var out []traceroute.Key
	for _, k := range v.oracle.Keys() {
		if budget < TraceroutePackets {
			break
		}
		lastM := v.LastMeasured(k)
		for _, t := range s.Feed[k] {
			if t > lastM && t <= now {
				out = append(out, k)
				budget -= TraceroutePackets
				break
			}
		}
	}
	s.last = now
	return out
}

// EvaluateSignalsMatched implements §5.3's signal emulation directly: each
// (pair, window) signal triggers one remap traceroute when budget allows;
// a signal matched to a ground-truth change within MatchWindow detects it,
// an unmatched signal is a false positive that wastes the traceroute.
func EvaluateSignalsMatched(o *Oracle, feed SignalFeed, matchWindow, start, end, step int64, ppsPerPath float64) Result {
	res := Result{Strategy: "signals", Total: o.TotalChanges(start, end)}
	// Per-pair signal cursor and change list.
	changes := make(map[traceroute.Key][]Change)
	for k, tl := range o.Timelines {
		changes[k] = tl.Changes()
	}
	credited := make(map[traceroute.Key]map[int64]bool)
	cursor := make(map[traceroute.Key]int)
	var carry float64
	for now := start + step; now <= end; now += step {
		carry += ppsPerPath * float64(len(o.Keys())) * float64(step)
		for _, k := range o.Keys() {
			times := feed[k]
			i := cursor[k]
			fired := false
			for i < len(times) && times[i] <= now {
				if times[i] > now-step {
					fired = true
				}
				i++
			}
			cursor[k] = i
			if !fired || carry < TraceroutePackets {
				continue
			}
			carry -= TraceroutePackets
			res.Measurements++
			// Match the signal to a change within the tolerance window.
			sigT := now - step/2
			for _, c := range changes[k] {
				if c.Time >= sigT-matchWindow-step && c.Time <= sigT+matchWindow+step {
					if credited[k] == nil {
						credited[k] = make(map[int64]bool)
					}
					if !credited[k][c.Time] {
						credited[k][c.Time] = true
						res.Detected++
					}
					break
				}
			}
		}
	}
	return res
}

// MatchOptimal computes the optimal-signals bound: every change within
// MatchWindow of some signal counts as detected, ignoring false positives
// and budget (Fig 8's "optimal" line saturates at signal coverage).
func MatchOptimal(o *Oracle, feed SignalFeed, window int64, start, end int64) Result {
	res := Result{Strategy: "optimal-signals", Total: o.TotalChanges(start, end)}
	for k, tl := range o.Timelines {
		sigTimes := feed[k]
		for _, c := range tl.Changes() {
			if c.Time < start || c.Time >= end {
				continue
			}
			for _, t := range sigTimes {
				if t >= c.Time-window && t <= c.Time+window {
					res.Detected++
					break
				}
			}
		}
	}
	return res
}

// --- DTRACK+SIGNALS (§6.1) ---

// DTrackSignals verifies each incoming signal with one detection probe and
// remaps on confirmation; leftover budget runs vanilla DTRACK detection.
type DTrackSignals struct {
	DT   *DTrack
	Sigs *Signals
}

// NewDTrackSignals combines the two.
func NewDTrackSignals(feed SignalFeed) *DTrackSignals {
	return &DTrackSignals{DT: NewDTrack(), Sigs: &Signals{Feed: feed}}
}

// Name implements Strategy.
func (ds *DTrackSignals) Name() string { return "dtrack+signals" }

// Step implements Strategy.
func (ds *DTrackSignals) Step(now int64, packets float64, v *View) []traceroute.Key {
	// Signal-flagged pairs get a one-packet verification probe first.
	flagged := ds.Sigs.Step(now, packets, v) // budget bounded inside
	var remaps []traceroute.Key
	budget := packets
	for _, k := range flagged {
		if budget < 1 {
			break
		}
		budget--
		if v.ProbeChanged(k, now) || v.ProbeChanged(k, now+1) {
			if budget >= TraceroutePackets {
				budget -= TraceroutePackets
				remaps = append(remaps, k)
				ds.DT.noteChange(k, now)
			}
		}
	}
	// Remaining budget: vanilla DTRACK.
	if budget > 0 {
		remaps = append(remaps, ds.DT.Step(now, budget, v)...)
	}
	return remaps
}
