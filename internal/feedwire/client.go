package feedwire

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
	"rrr/internal/wal"
)

// Policy selects what a stream does when the pipeline consumes slower
// than the wire delivers and the client buffer fills.
type Policy int

const (
	// PolicyBlock (the default) stops reading the socket: backpressure
	// propagates over TCP to the server, whose history keeps absorbing
	// the feed. Client memory stays bounded at Buffer records; nothing is
	// ever dropped.
	PolicyBlock Policy = iota

	// PolicyDisconnect drops the connection after the buffer has been
	// full for StallTimeout: buffered records still drain to the
	// pipeline, then Read reports a transient error so RetryPolicy
	// reopens the stream window-aligned — recovery is exactly-once via
	// positional replay, trading a reconnect for never parking a stalled
	// socket on the server.
	PolicyDisconnect
)

// ParsePolicy maps a flag string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "block":
		return PolicyBlock, nil
	case "disconnect":
		return PolicyDisconnect, nil
	default:
		return 0, fmt.Errorf("feedwire: unknown buffer policy %q (want block or disconnect)", s)
	}
}

// DefaultBuffer is the per-stream client record buffer when
// ConnectorConfig.Buffer is zero.
const DefaultBuffer = 256

// ConnectorConfig tunes the client side of the feed wire.
type ConnectorConfig struct {
	// Addr is the rrrfeedd host:port.
	Addr string
	// Buffer bounds records parked between the socket reader and the
	// pipeline, per stream (DefaultBuffer when 0).
	Buffer int
	// Policy picks the full-buffer behavior; see Policy.
	Policy Policy
	// StallTimeout is how long PolicyDisconnect tolerates a full buffer
	// before dropping the connection (default 5s).
	StallTimeout time.Duration
	// DialTimeout bounds each dial (default 5s).
	DialTimeout time.Duration
}

func (c ConnectorConfig) withDefaults() ConnectorConfig {
	if c.Buffer <= 0 {
		c.Buffer = DefaultBuffer
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 5 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	return c
}

// Connector opens wire-fed pipeline sources against one feed server. Its
// OpenUpdates/OpenTraces methods have exactly the shape of rrr's
// PipelineConfig.OpenUpdates/OpenTraces factories: every call dials a
// fresh connection resuming from since, so the pipeline's reopen path is
// the reconnect path. Close drops any streams the pipeline abandoned.
type Connector struct {
	cfg ConnectorConfig

	mu      sync.Mutex
	opened  map[byte]int // per-stream open count, for the reconnect metric
	streams map[*stream]struct{}
	closed  bool
}

// NewConnector builds a connector for the server at cfg.Addr.
func NewConnector(cfg ConnectorConfig) *Connector {
	return &Connector{
		cfg:     cfg.withDefaults(),
		opened:  make(map[byte]int),
		streams: make(map[*stream]struct{}),
	}
}

// OpenUpdates dials a fresh update stream resuming from since
// (rrr.ResumeAll for the beginning).
func (c *Connector) OpenUpdates(since int64) (UpdateSource, error) {
	st, err := c.open(StreamUpdates, since)
	if err != nil {
		return nil, err
	}
	return updateStream{st}, nil
}

// OpenTraces dials a fresh traceroute stream resuming from since.
func (c *Connector) OpenTraces(since int64) (TraceSource, error) {
	st, err := c.open(StreamTraces, since)
	if err != nil {
		return nil, err
	}
	return traceStream{st}, nil
}

// Close drops every stream this connector opened; subsequent opens fail.
// The pipeline never closes its sources, so the daemon defers this to
// reap connections the pipeline abandoned at shutdown.
func (c *Connector) Close() error {
	c.mu.Lock()
	c.closed = true
	sts := make([]*stream, 0, len(c.streams))
	for st := range c.streams {
		sts = append(sts, st)
	}
	c.streams = make(map[*stream]struct{})
	c.mu.Unlock()
	for _, st := range sts {
		st.shutdown()
	}
	return nil
}

func streamName(stream byte) string {
	if stream == StreamUpdates {
		return "updates"
	}
	return "traces"
}

// connErr marks wire failures the pipeline should retry: dials refused,
// connections cut mid-frame, checksum mismatches, stall-policy drops. It
// satisfies rrr.IsTransientError via Temporary.
type connErr struct{ err error }

func (e *connErr) Error() string   { return "feedwire: " + e.err.Error() }
func (e *connErr) Unwrap() error   { return e.err }
func (e *connErr) Temporary() bool { return true }

func transient(err error) error { return &connErr{err: err} }

// item is one buffered delivery: a record, or the stream's terminal
// error (io.EOF for a clean end).
type item struct {
	rec wal.Record
	err error
}

// stream is one live connection's client half: a socket-reader goroutine
// filling a bounded channel the pipeline drains via Read.
type stream struct {
	c    *Connector
	kind byte
	met  streamMetrics
	conn net.Conn
	buf  chan item
	done chan struct{} // closed by shutdown; releases a blocked reader

	closeOnce sync.Once
	final     error // sticky terminal error once buf drains
}

func (c *Connector) open(kind byte, since int64) (*stream, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("feedwire: connector closed")
	}
	nth := c.opened[kind]
	c.mu.Unlock()

	met := newStreamMetrics(streamName(kind))
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, transient(err)
	}
	fw := NewFrameWriter(conn)
	if _, err := io.WriteString(conn, Magic); err != nil {
		conn.Close()
		return nil, transient(err)
	}
	if err := fw.WriteHello(kind, since); err != nil {
		conn.Close()
		return nil, transient(err)
	}
	fr := NewFrameReader(conn)
	ack, err := fr.Read()
	if err != nil {
		conn.Close()
		return nil, transient(err)
	}
	if ack.Kind == kindError {
		conn.Close()
		return nil, fmt.Errorf("feedwire: server rejected stream: %s", ack.Msg)
	}
	if ack.Kind != kindHelloAck {
		conn.Close()
		return nil, transient(fmt.Errorf("expected hello-ack, got frame kind %d", ack.Kind))
	}
	if ack.Start != since {
		// The server can no longer serve our resume point: records in
		// [since, ack.Start) were trimmed. Count the gap and carry on
		// from what remains — the alternative is never catching up.
		met.resumeGaps.Inc()
	}

	met.connects.Inc()
	if nth > 0 {
		met.reconnects.Inc()
	}

	st := &stream{
		c:    c,
		kind: kind,
		met:  met,
		conn: conn,
		buf:  make(chan item, c.cfg.Buffer),
		done: make(chan struct{}),
	}
	c.mu.Lock()
	c.opened[kind] = nth + 1
	c.streams[st] = struct{}{}
	c.mu.Unlock()

	go st.pump(fr)
	return st, nil
}

// shutdown force-closes the stream: the socket reader unblocks and exits,
// and a pipeline goroutine blocked in Read gets a terminal error.
func (st *stream) shutdown() {
	st.closeOnce.Do(func() {
		close(st.done)
		st.conn.Close()
	})
}

func (st *stream) unregister() {
	st.c.mu.Lock()
	delete(st.c.streams, st)
	st.c.mu.Unlock()
}

// Terminal delivery failures distinguished by deliver.
var (
	errStreamClosed = fmt.Errorf("stream closed")
	errStalled      = fmt.Errorf("stalled consumer")
)

// deliver parks it in the buffer, honoring the slow-consumer policy. A
// non-nil return means the stream must stop reading the socket; the
// caller turns it into the single terminal enqueueErr.
func (st *stream) deliver(it item) error {
	select {
	case st.buf <- it:
		st.met.bufferDepth.Set(int64(len(st.buf)))
		return nil
	case <-st.done:
		return errStreamClosed
	default:
	}
	if st.c.cfg.Policy == PolicyBlock {
		// Stop consuming the socket until the pipeline catches up; the
		// server blocks in conn.Write — classic TCP backpressure.
		select {
		case st.buf <- it:
			st.met.bufferDepth.Set(int64(len(st.buf)))
			return nil
		case <-st.done:
			return errStreamClosed
		}
	}
	// PolicyDisconnect: tolerate the stall briefly, then cut the
	// connection. Buffered records still drain; the terminal transient
	// error makes the pipeline reopen window-aligned, so nothing the
	// engine sees is lost or doubled.
	t := time.NewTimer(st.c.cfg.StallTimeout)
	defer t.Stop()
	select {
	case st.buf <- it:
		st.met.bufferDepth.Set(int64(len(st.buf)))
		return nil
	case <-st.done:
		return errStreamClosed
	case <-t.C:
		st.met.dropped.Inc()
		st.conn.Close()
		return errStalled
	}
}

// enqueueErr appends the stream's terminal error after any buffered
// records, without blocking forever if the buffer is full (the error then
// rides st.final, checked once the buffer drains).
func (st *stream) enqueueErr(err error) {
	st.final = err
	select {
	case st.buf <- item{err: err}:
	default:
	}
	close(st.buf)
}

// pump reads frames off the socket into the buffer until the stream ends
// one way or another.
func (st *stream) pump(fr *FrameReader) {
	for {
		f, err := fr.Read()
		if err != nil {
			select {
			case <-st.done:
				st.enqueueErr(transient(fmt.Errorf("stream closed")))
			default:
				st.enqueueErr(transient(err))
			}
			return
		}
		switch f.Kind {
		case kindEOF:
			st.enqueueErr(io.EOF)
			return
		case kindError:
			st.enqueueErr(transient(fmt.Errorf("server error: %s", f.Msg)))
			return
		case kindWatermark:
			st.met.watermarks.Inc()
		case kindHelloAck:
			// Duplicate ack mid-stream: protocol violation.
			st.enqueueErr(transient(fmt.Errorf("unexpected hello-ack mid-stream")))
			return
		default:
			st.met.frames.Inc()
			if err := st.deliver(item{rec: wal.Record{Update: f.Update, Trace: f.Trace}}); err != nil {
				if err == errStalled {
					err = fmt.Errorf("dropped stalled connection (buffer full for %s)", st.c.cfg.StallTimeout)
				}
				st.enqueueErr(transient(err))
				return
			}
		}
	}
}

// read pops the next record, blocking on the wire as needed. Terminal
// errors are sticky.
func (st *stream) read() (wal.Record, error) {
	it, ok := <-st.buf
	if !ok {
		err := st.final
		if err == nil {
			err = io.EOF
		}
		return wal.Record{}, err
	}
	st.met.bufferDepth.Set(int64(len(st.buf)))
	if it.err != nil {
		st.unregister()
		return wal.Record{}, it.err
	}
	return it.rec, nil
}

// updateStream adapts a stream to bgp.UpdateSource.
type updateStream struct{ st *stream }

func (s updateStream) Read() (bgp.Update, error) {
	rec, err := s.st.read()
	if err != nil {
		return bgp.Update{}, err
	}
	if rec.Update == nil {
		s.st.shutdown()
		return bgp.Update{}, transient(fmt.Errorf("trace record on update stream"))
	}
	return *rec.Update, nil
}

// traceStream adapts a stream to the pipeline's TraceSource.
type traceStream struct{ st *stream }

func (s traceStream) Read() (*traceroute.Traceroute, error) {
	rec, err := s.st.read()
	if err != nil {
		return nil, err
	}
	if rec.Trace == nil {
		s.st.shutdown()
		return nil, transient(fmt.Errorf("update record on trace stream"))
	}
	return rec.Trace, nil
}
