package feedwire

import "rrr/internal/obs"

// streamMetrics groups the per-stream connector instrumentation; one set
// per stream label ("updates" / "traces").
type streamMetrics struct {
	connects    *obs.Counter // successful dials+handshakes
	reconnects  *obs.Counter // connects after the first (retry-driven reopens)
	frames      *obs.Counter // record frames decoded off the wire
	watermarks  *obs.Counter // watermark frames decoded
	resumeGaps  *obs.Counter // hello-acks admitting trimmed (lost) history
	dropped     *obs.Counter // connections dropped by the slow-consumer policy
	bufferDepth *obs.Gauge   // records currently parked in the client buffer
}

func newStreamMetrics(stream string) streamMetrics {
	return streamMetrics{
		connects:    obs.Default.Counter("rrr_feedwire_connects_total", "stream", stream),
		reconnects:  obs.Default.Counter("rrr_feedwire_reconnects_total", "stream", stream),
		frames:      obs.Default.Counter("rrr_feedwire_frames_total", "stream", stream),
		watermarks:  obs.Default.Counter("rrr_feedwire_watermarks_total", "stream", stream),
		resumeGaps:  obs.Default.Counter("rrr_feedwire_resume_gaps_total", "stream", stream),
		dropped:     obs.Default.Counter("rrr_feedwire_dropped_conns_total", "stream", stream),
		bufferDepth: obs.Default.Gauge("rrr_feedwire_buffer_depth", "stream", stream),
	}
}

func init() {
	obs.Default.Help("rrr_feedwire_connects_total", "Feed connections established (dial + handshake) per stream.")
	obs.Default.Help("rrr_feedwire_reconnects_total", "Feed connections re-established after the first, i.e. recoveries.")
	obs.Default.Help("rrr_feedwire_frames_total", "Record frames received over the feed wire per stream.")
	obs.Default.Help("rrr_feedwire_watermarks_total", "Watermark frames received over the feed wire per stream.")
	obs.Default.Help("rrr_feedwire_resume_gaps_total", "Reconnects whose resume point was past server retention (records lost).")
	obs.Default.Help("rrr_feedwire_dropped_conns_total", "Connections dropped by the slow-consumer disconnect policy.")
	obs.Default.Help("rrr_feedwire_buffer_depth", "Records buffered client-side awaiting the pipeline per stream.")
}
