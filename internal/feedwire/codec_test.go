package feedwire

// Regression tests for the wire framing's failure surface, mirroring the
// BGP codecs' truncation suite: a stream cut exactly at a frame boundary
// is a clean io.EOF, a cut anywhere inside a frame is io.ErrUnexpectedEOF,
// torn (short) reads never corrupt a parse, and any flipped byte is
// detected (checksum or framing) rather than silently decoded.

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/faultfeed"
	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

// seedStream renders one of every frame kind, returning the stream, the
// frame end offsets, and the decoded frames a clean parse must produce.
func seedStream(t *testing.T) ([]byte, map[int]bool, []Frame) {
	t.Helper()
	u := bgp.Update{Time: 100, PeerIP: 0x01020304, PeerAS: 65000, Type: bgp.Announce,
		Prefix: trie.MakePrefix(0x0a000000, 8), ASPath: bgp.Path{65000, 3356, 15169},
		Communities: bgp.Communities{bgp.MakeCommunity(3356, 100)}, MED: 7}
	tr := &traceroute.Traceroute{Time: 101, Src: 0x01000001, Dst: 0x04000009,
		Hops: []traceroute.Hop{{IP: 0x02000001, TTL: 1, RTT: 1.2}, {TTL: 2}, {IP: 0x04000009, TTL: 3}}}

	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	boundaries := map[int]bool{0: true}
	mark := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		boundaries[buf.Len()] = true
	}
	mark(fw.WriteHello(StreamUpdates, ResumeAll))
	mark(fw.WriteHelloAck(100))
	mark(fw.WriteUpdate(u))
	mark(fw.WriteTrace(tr))
	mark(fw.WriteWatermark(900))
	mark(fw.WriteError("feed detached"))
	mark(fw.WriteEOF())

	want := []Frame{
		{Kind: kindHello, Stream: StreamUpdates, Since: ResumeAll},
		{Kind: kindHelloAck, Start: 100},
		{Kind: 1, Update: &u},
		{Kind: 2, Trace: tr},
		{Kind: kindWatermark, Watermark: 900},
		{Kind: kindError, Msg: "feed detached"},
		{Kind: kindEOF},
	}
	return buf.Bytes(), boundaries, want
}

func drainFrames(r io.Reader) ([]Frame, error) {
	fr := NewFrameReader(r)
	var out []Frame
	for {
		f, err := fr.Read()
		if err != nil {
			return out, err
		}
		// The reader reuses its payload buffer; deep-copy the record
		// pointers' content is unnecessary (DecodeRecordPayload allocates)
		// but Msg strings are already copies.
		out = append(out, f)
	}
}

func TestFrameReaderTruncationEveryOffset(t *testing.T) {
	stream, boundaries, _ := seedStream(t)
	for cut := 0; cut <= len(stream); cut++ {
		_, err := drainFrames(faultfeed.NewReader(bytes.NewReader(stream), 1, int64(cut)))
		if boundaries[cut] {
			if err != io.EOF {
				t.Fatalf("cut at frame boundary %d: got %v, want clean io.EOF", cut, err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut mid-frame at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestFrameReaderSurvivesTornReads(t *testing.T) {
	stream, _, want := seedStream(t)
	fr := faultfeed.NewReader(bytes.NewReader(stream), 99, -1)
	fr.TearProb = 0.8
	fr.MaxTear = 2
	got, err := drainFrames(fr)
	if err != io.EOF {
		t.Fatalf("torn reads broke the frame parse: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d frames under torn reads, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("frame %d decoded as %+v under torn reads, want %+v", i, got[i], want[i])
		}
	}
}

// TestFrameReaderDetectsEveryByteFlip flips each byte of the stream in
// turn and requires the parse to fail: the CRC covers payload damage, and
// length-field damage either trips the plausibility bound or desyncs into
// a checksum/framing error. None of the 256-way single-byte corruptions
// may decode cleanly to EOF.
func TestFrameReaderDetectsEveryByteFlip(t *testing.T) {
	stream, _, _ := seedStream(t)
	for i := range stream {
		mut := bytes.Clone(stream)
		mut[i] ^= 0xFF
		_, err := drainFrames(bytes.NewReader(mut))
		if err == nil || err == io.EOF {
			t.Fatalf("flipped byte %d went undetected (err=%v)", i, err)
		}
	}
}

func TestFrameReaderRejectsImpossibleLength(t *testing.T) {
	// Length field of 0 and of >maxFrameBytes must fail before
	// allocating, as corrupt frames.
	for _, plen := range []uint32{0, maxFrameBytes + 1, 0xFFFFFFFF} {
		hdr := make([]byte, frameHeaderLen)
		hdr[0] = byte(plen >> 24)
		hdr[1] = byte(plen >> 16)
		hdr[2] = byte(plen >> 8)
		hdr[3] = byte(plen)
		_, err := NewFrameReader(bytes.NewReader(hdr)).Read()
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("length %d: got %v, want ErrCorruptFrame", plen, err)
		}
	}
}

// FuzzFrameReader drives the frame decoder with arbitrary bytes: it must
// never panic, never allocate past the frame bound, and always terminate.
func FuzzFrameReader(f *testing.F) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	fw.WriteHello(StreamTraces, 42)
	fw.WriteWatermark(900)
	fw.WriteEOF()
	whole := buf.Bytes()
	f.Add(whole)
	f.Add(whole[:len(whole)-3])
	mut := bytes.Clone(whole)
	mut[9] ^= 0x40
	f.Add(mut)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for {
			_, err := fr.Read()
			if err != nil {
				break
			}
		}
	})
}
