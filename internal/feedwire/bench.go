package feedwire

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rrr/internal/experiments"
)

// BenchResult compares feed-ingest throughput over the wire against the
// same feeds consumed in-process: the cost of framing, TCP, and the
// client's buffered hand-off. WireFrac is the wire rate as a fraction of
// the in-process rate — the quantity benchgate floors so a connector
// change that serializes the hot path fails the build.
type BenchResult struct {
	Updates int // records per run, identical across modes by construction
	Traces  int

	InProcElapsed time.Duration
	InProcPerSec  float64
	WireElapsed   time.Duration
	WirePerSec    float64
	WireFrac      float64
}

// drainPair reads both simulator feeds to EOF concurrently — the
// pipeline's consumption shape — and returns the per-stream record
// counts.
func drainPair(u UpdateSource, tr TraceSource) (nu, nt int, err error) {
	var wg sync.WaitGroup
	var uerr, terr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			if _, e := u.Read(); e != nil {
				if e != io.EOF {
					uerr = e
				}
				return
			}
			nu++
		}
	}()
	go func() {
		defer wg.Done()
		for {
			if _, e := tr.Read(); e != nil {
				if e != io.EOF {
					terr = e
				}
				return
			}
			nt++
		}
	}()
	wg.Wait()
	if uerr != nil {
		return nu, nt, fmt.Errorf("feedwire bench: update stream: %w", uerr)
	}
	if terr != nil {
		return nu, nt, fmt.Errorf("feedwire bench: trace stream: %w", terr)
	}
	return nu, nt, nil
}

// RunBench measures one full simulated feed drained in-process, then the
// identical feed drained through a loopback feedwire server and client
// connector.
func RunBench(sc experiments.Scale) (*BenchResult, error) {
	// In-process baseline: direct function calls into the simulator.
	env := experiments.NewDaemonEnv(sc, 0)
	start := time.Now()
	nu, nt, err := drainPair(env.Updates, env.Traces)
	if err != nil {
		return nil, err
	}
	inproc := time.Since(start)
	if nu+nt == 0 {
		return nil, fmt.Errorf("feedwire bench: simulator produced no records")
	}

	// Wire run: same deterministic feed served over loopback TCP.
	wenv := experiments.NewDaemonEnv(sc, 0)
	srv, err := NewServer(Config{WindowSec: sc.WindowSec})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	srv.Pump(wenv.Updates, wenv.Traces)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(lis)
	conn := NewConnector(ConnectorConfig{Addr: lis.Addr().String()})
	defer conn.Close()

	start = time.Now()
	us, err := conn.OpenUpdates(ResumeAll)
	if err != nil {
		return nil, err
	}
	ts, err := conn.OpenTraces(ResumeAll)
	if err != nil {
		return nil, err
	}
	wu, wt, err := drainPair(us, ts)
	if err != nil {
		return nil, err
	}
	wire := time.Since(start)
	if wu != nu || wt != nt {
		return nil, fmt.Errorf("feedwire bench: wire delivered %d+%d records, in-process %d+%d",
			wu, wt, nu, nt)
	}

	total := float64(nu + nt)
	r := &BenchResult{
		Updates:       nu,
		Traces:        nt,
		InProcElapsed: inproc,
		InProcPerSec:  total / inproc.Seconds(),
		WireElapsed:   wire,
		WirePerSec:    total / wire.Seconds(),
	}
	if r.InProcPerSec > 0 {
		r.WireFrac = r.WirePerSec / r.InProcPerSec
	}
	return r, nil
}
