package feedwire

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
	"rrr/internal/wal"
)

// UpdateSource is the update feed the server drains (= bgp.UpdateSource);
// the client connector's opened streams satisfy it too.
type UpdateSource interface {
	Read() (bgp.Update, error)
}

// TraceSource is the traceroute feed shape shared with rrr.Pipeline.
type TraceSource interface {
	Read() (*traceroute.Traceroute, error)
}

// ResumeAll mirrors rrr.ResumeAll: a hello since value requesting the feed
// from its beginning. (Redeclared to keep feedwire import-free of the root
// package; the values are both math.MinInt64 and wire-compatible.)
const ResumeAll = math.MinInt64

// Config tunes a feed server.
type Config struct {
	// WindowSec is the analysis window length; the server frames a
	// watermark whenever the record stream crosses a window boundary.
	// Required (> 0).
	WindowSec int64

	// HistoryWindows bounds retained history per stream to roughly this
	// many windows behind the newest record; 0 retains everything (the
	// mode that guarantees lossless window-aligned resume). A reconnect
	// asking for trimmed history is answered with a hello-ack start past
	// its request — an explicit resume gap, never silent loss.
	HistoryWindows int
}

// Server retains each stream's records in an in-memory history and serves
// any number of connections from it, each at its own cursor. Slow
// consumers exert natural TCP backpressure: a serving goroutine blocks in
// conn.Write while the history (bounded by HistoryWindows) keeps
// absorbing the feed.
type Server struct {
	cfg     Config
	updates *history
	traces  *history

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a feed server; call AppendUpdate/AppendTrace (or Pump)
// to feed it and Serve to accept connections.
func NewServer(cfg Config) (*Server, error) {
	if cfg.WindowSec <= 0 {
		return nil, errors.New("feedwire: Config.WindowSec must be positive")
	}
	return &Server{
		cfg:     cfg,
		updates: newHistory(),
		traces:  newHistory(),
		conns:   make(map[net.Conn]struct{}),
	}, nil
}

func (s *Server) historyFor(stream byte) *history {
	switch stream {
	case StreamUpdates:
		return s.updates
	case StreamTraces:
		return s.traces
	default:
		return nil
	}
}

func (s *Server) horizon() int64 {
	if s.cfg.HistoryWindows <= 0 {
		return math.MinInt64
	}
	return int64(s.cfg.HistoryWindows) * s.cfg.WindowSec
}

// AppendUpdate adds one BGP update to the update stream's history.
func (s *Server) AppendUpdate(u bgp.Update) {
	uc := u
	s.updates.append(wal.Record{Update: &uc}, s.horizon())
}

// AppendTrace adds one traceroute to the trace stream's history.
func (s *Server) AppendTrace(t *traceroute.Traceroute) {
	s.traces.append(wal.Record{Trace: t}, s.horizon())
}

// CloseStream marks a stream exhausted; err, when non-nil, is surfaced to
// clients as an error frame instead of a clean EOF.
func (s *Server) CloseStream(stream byte, err error) {
	h := s.historyFor(stream)
	if h == nil {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	h.closeFeed(msg)
}

// Pump drains both feeds into the server's histories on background
// goroutines, closing each stream when its source reports io.EOF (or
// surfacing any other error to clients). It returns immediately.
func (s *Server) Pump(us UpdateSource, ts TraceSource) {
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		for {
			u, err := us.Read()
			if err != nil {
				if err != io.EOF {
					s.CloseStream(StreamUpdates, err)
				} else {
					s.CloseStream(StreamUpdates, nil)
				}
				return
			}
			s.AppendUpdate(u)
		}
	}()
	go func() {
		defer s.wg.Done()
		for {
			t, err := ts.Read()
			if err != nil {
				if err != io.EOF {
					s.CloseStream(StreamTraces, err)
				} else {
					s.CloseStream(StreamTraces, nil)
				}
				return
			}
			s.AppendTrace(t)
		}
	}()
}

// Serve accepts connections on lis until Close. Each connection is served
// on its own goroutine; Serve itself blocks.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("feedwire: server closed")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, drops every live connection, and releases any
// serving goroutine still blocked on history growth.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.updates.closeFeed("server shutting down")
	s.traces.closeFeed("server shutting down")
	s.wg.Wait()
	return nil
}

// serveConn runs one connection: handshake, then stream records from the
// requested resume point with watermarks at window boundaries.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	fw := NewFrameWriter(conn)

	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(conn, magic); err != nil {
		return
	}
	if string(magic) != Magic {
		fw.WriteError(fmt.Sprintf("bad protocol magic %q", magic))
		return
	}
	f, err := NewFrameReader(conn).Read()
	if err != nil || f.Kind != kindHello {
		fw.WriteError("expected hello frame")
		return
	}
	h := s.historyFor(f.Stream)
	if h == nil {
		fw.WriteError(fmt.Sprintf("unknown stream %d", f.Stream))
		return
	}

	cursor, start := h.startAt(f.Since)
	if fw.WriteHelloAck(start) != nil {
		return
	}

	lastWin := int64(math.MinInt64)
	for {
		rec, next, st, msg := h.next(cursor)
		switch st {
		case histRecord:
			// Watermark every completed window the stream has moved past.
			if w := floorDiv(rec.Time(), s.cfg.WindowSec); w > lastWin {
				if lastWin != math.MinInt64 {
					if fw.WriteWatermark((w-1)*s.cfg.WindowSec) != nil {
						return
					}
				}
				lastWin = w
			}
			var werr error
			if rec.Update != nil {
				werr = fw.WriteUpdate(*rec.Update)
			} else {
				werr = fw.WriteTrace(rec.Trace)
			}
			if werr != nil {
				return
			}
			cursor = next
		case histBehind:
			// The cursor fell behind retention mid-stream: records are
			// gone, so exactly-once delivery on this connection is dead.
			// Fail loudly and let the client reconnect (its hello-ack
			// will then carry the explicit resume gap).
			fw.WriteError("consumer fell behind feed retention")
			return
		case histEOF:
			if lastWin != math.MinInt64 {
				if fw.WriteWatermark(lastWin*s.cfg.WindowSec) != nil {
					return
				}
			}
			fw.WriteEOF()
			return
		case histError:
			fw.WriteError(msg)
			return
		}
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// history status codes returned by next.
const (
	histRecord = iota
	histBehind
	histEOF
	histError
)

// history is one stream's retained record sequence: an append-only window
// over a global index space (base = global index of recs[0]), with
// blocking cursor reads and optional horizon-based trimming.
type history struct {
	mu   sync.Mutex
	cond *sync.Cond

	base    int64
	recs    []wal.Record
	times   []int64
	maxTime int64
	eof     bool
	errMsg  string
}

func newHistory() *history {
	h := &history{maxTime: math.MinInt64}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *history) append(rec wal.Record, horizon int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.eof {
		return
	}
	t := rec.Time()
	h.recs = append(h.recs, rec)
	h.times = append(h.times, t)
	if t > h.maxTime {
		h.maxTime = t
	}
	if horizon != math.MinInt64 {
		cut := h.maxTime - horizon
		n := sort.Search(len(h.times), func(i int) bool { return h.times[i] >= cut })
		if n > 0 {
			h.recs = append(h.recs[:0:0], h.recs[n:]...)
			h.times = append(h.times[:0:0], h.times[n:]...)
			h.base += int64(n)
		}
	}
	h.cond.Broadcast()
}

func (h *history) closeFeed(errMsg string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.eof {
		return
	}
	h.eof = true
	h.errMsg = errMsg
	h.cond.Broadcast()
}

// startAt maps a hello's since to (cursor, effective start). The start
// echoes since unless trimmed history makes records in [since, first
// retained) unrecoverable, in which case it reports the first retained
// record's timestamp — the client's resume-gap signal.
func (h *history) startAt(since int64) (cursor, start int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.Search(len(h.times), func(i int) bool { return h.times[i] >= since })
	start = since
	if h.base > 0 && (len(h.times) == 0 || since < h.times[0]) {
		// History before times[0] was trimmed; anything the client asked
		// for below that point may be gone.
		if i < len(h.times) {
			start = h.times[i]
		} else {
			start = h.maxTime
		}
	}
	return h.base + int64(i), start
}

// next blocks until the record at cursor exists (histRecord, returning
// the following cursor), the stream ends (histEOF/histError), or the
// cursor has been trimmed away (histBehind).
func (h *history) next(cursor int64) (rec wal.Record, next int64, status int, errMsg string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if cursor < h.base {
			return wal.Record{}, 0, histBehind, ""
		}
		if i := cursor - h.base; i < int64(len(h.recs)) {
			return h.recs[i], cursor + 1, histRecord, ""
		}
		if h.eof {
			if h.errMsg != "" {
				return wal.Record{}, 0, histError, h.errMsg
			}
			return wal.Record{}, 0, histEOF, ""
		}
		h.cond.Wait()
	}
}
