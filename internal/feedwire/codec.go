// Package feedwire is the project's network feed boundary: it serves the
// simulator's BGP-update and traceroute streams over TCP (cmd/rrrfeedd)
// and connects a daemon's ingestion pipeline to such a server (the
// client connector cmd/rrrd mounts as a reopenable pipeline source).
//
// Wire protocol. A connection carries exactly one stream (updates or
// traces). After the 8-byte protocol magic (client→server), the client
// sends a hello frame naming the stream and its resume point; the server
// answers with a hello-ack carrying the timestamp it will actually start
// from, then streams record frames interleaved with watermark frames at
// every window boundary, ending with an EOF frame when the feed is
// exhausted. Every frame reuses the WAL's on-disk framing — length
// uint32 + CRC32C uint32 + payload — and record payloads reuse the WAL's
// record codec verbatim (kind 1 = one bgp binary-codec update, kind 2 =
// traceroute body), so the network and the log speak one format. Control
// payloads use kinds from 0x10 up, outside the WAL's record-kind space.
//
// Failure surface. A connection cut mid-frame decodes as
// io.ErrUnexpectedEOF and a checksum mismatch as ErrCorruptFrame; the
// client connector wraps both as transient errors so the pipeline's
// RetryPolicy reconnects and resumes window-aligned (positional replay
// makes the recovery exactly-once). Torn (short) reads are absorbed by
// io.ReadFull and never corrupt a parse.
package feedwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
	"rrr/internal/wal"
)

// Magic opens every feedwire connection (client→server), versioned
// separately from the frame payloads so an incompatible framing change
// fails the handshake instead of desyncing mid-stream.
const Magic = "RRRFEED1"

// Stream identifiers carried in hello frames.
const (
	// StreamUpdates selects the BGP update feed.
	StreamUpdates byte = 1
	// StreamTraces selects the public traceroute feed.
	StreamTraces byte = 2
)

// Control payload kinds. Record kinds 1 and 2 belong to the WAL codec;
// control frames start at 0x10 so the two spaces can never collide.
const (
	kindHello     byte = 0x10
	kindHelloAck  byte = 0x11
	kindWatermark byte = 0x12
	kindEOF       byte = 0x13
	kindError     byte = 0x14
)

const (
	frameHeaderLen = 8

	// maxFrameBytes rejects impossible frame lengths before allocating,
	// mirroring the WAL's bound: record payloads are tens to hundreds of
	// bytes, so anything past 16 MiB is a corrupt length field.
	maxFrameBytes = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptFrame reports a frame whose checksum did not match or whose
// payload failed to decode: the stream position can no longer be trusted
// and the connection must be re-established.
var ErrCorruptFrame = errors.New("feedwire: corrupt frame")

// Frame is one decoded wire frame; exactly one of the kind-specific
// groups is meaningful.
type Frame struct {
	Kind byte

	// Update/Trace carry a record frame's payload (Kind 1 or 2).
	Update *bgp.Update
	Trace  *traceroute.Traceroute

	// Stream and Since carry a hello frame's stream selector and resume
	// point (ResumeAll for "from the beginning").
	Stream byte
	Since  int64

	// Start is a hello-ack's actual serving start: the timestamp of the
	// first record the server will deliver, or Since echoed when the
	// requested resume point is still retained.
	Start int64

	// Watermark is a watermark frame's completed window start.
	Watermark int64

	// Msg is an error frame's human-readable cause.
	Msg string
}

// FrameWriter frames payloads onto one connection. Not safe for
// concurrent use; each serving goroutine owns its writer.
type FrameWriter struct {
	w   io.Writer
	buf []byte
}

// NewFrameWriter wraps w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w}
}

func (fw *FrameWriter) writePayload(payload []byte) error {
	fw.buf = wal.AppendRecordFrame(fw.buf[:0], payload)
	_, err := fw.w.Write(fw.buf)
	return err
}

// WriteUpdate frames one BGP update record.
func (fw *FrameWriter) WriteUpdate(u bgp.Update) error {
	p, err := wal.EncodeUpdatePayload(u)
	if err != nil {
		return err
	}
	return fw.writePayload(p)
}

// WriteTrace frames one traceroute record.
func (fw *FrameWriter) WriteTrace(t *traceroute.Traceroute) error {
	p, err := wal.EncodeTracePayload(t)
	if err != nil {
		return err
	}
	return fw.writePayload(p)
}

// WriteHello frames the client handshake: stream selector + resume point.
func (fw *FrameWriter) WriteHello(stream byte, since int64) error {
	p := make([]byte, 0, 10)
	p = append(p, kindHello, stream)
	p = binary.BigEndian.AppendUint64(p, uint64(since))
	return fw.writePayload(p)
}

// WriteHelloAck frames the server's handshake answer: the timestamp it
// will actually serve from.
func (fw *FrameWriter) WriteHelloAck(start int64) error {
	p := make([]byte, 0, 9)
	p = append(p, kindHelloAck)
	p = binary.BigEndian.AppendUint64(p, uint64(start))
	return fw.writePayload(p)
}

// WriteWatermark frames a completed window boundary.
func (fw *FrameWriter) WriteWatermark(windowStart int64) error {
	p := make([]byte, 0, 9)
	p = append(p, kindWatermark)
	p = binary.BigEndian.AppendUint64(p, uint64(windowStart))
	return fw.writePayload(p)
}

// WriteEOF frames the end of the feed (the stream is exhausted, not
// broken).
func (fw *FrameWriter) WriteEOF() error {
	return fw.writePayload([]byte{kindEOF})
}

// WriteError frames a terminal server-side error.
func (fw *FrameWriter) WriteError(msg string) error {
	p := make([]byte, 0, 1+len(msg))
	p = append(p, kindError)
	p = append(p, msg...)
	return fw.writePayload(p)
}

// FrameReader decodes frames off one connection. Not safe for concurrent
// use.
type FrameReader struct {
	r       io.Reader
	hdr     [frameHeaderLen]byte
	payload []byte
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Read decodes the next frame. A clean cut at a frame boundary returns
// io.EOF; a cut inside a frame returns io.ErrUnexpectedEOF; a checksum
// or payload-decode failure returns an error wrapping ErrCorruptFrame.
func (fr *FrameReader) Read() (Frame, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		// A partial header is a mid-frame cut; io.ReadFull already maps
		// it to io.ErrUnexpectedEOF and a clean boundary to io.EOF.
		return Frame{}, err
	}
	plen := binary.BigEndian.Uint32(fr.hdr[0:4])
	want := binary.BigEndian.Uint32(fr.hdr[4:8])
	if plen == 0 || plen > maxFrameBytes {
		return Frame{}, fmt.Errorf("%w: impossible frame length %d", ErrCorruptFrame, plen)
	}
	if cap(fr.payload) < int(plen) {
		fr.payload = make([]byte, plen)
	}
	p := fr.payload[:plen]
	if _, err := io.ReadFull(fr.r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if crc32.Checksum(p, castagnoli) != want {
		return Frame{}, fmt.Errorf("%w: checksum mismatch", ErrCorruptFrame)
	}
	return decodeFrame(p)
}

func decodeFrame(p []byte) (Frame, error) {
	if wal.IsRecordKind(p[0]) {
		rec, err := wal.DecodeRecordPayload(p)
		if err != nil {
			return Frame{}, fmt.Errorf("%w: %v", ErrCorruptFrame, err)
		}
		return Frame{Kind: p[0], Update: rec.Update, Trace: rec.Trace}, nil
	}
	switch p[0] {
	case kindHello:
		if len(p) != 10 {
			return Frame{}, fmt.Errorf("%w: hello frame length %d", ErrCorruptFrame, len(p))
		}
		return Frame{Kind: kindHello, Stream: p[1], Since: int64(binary.BigEndian.Uint64(p[2:10]))}, nil
	case kindHelloAck:
		if len(p) != 9 {
			return Frame{}, fmt.Errorf("%w: hello-ack frame length %d", ErrCorruptFrame, len(p))
		}
		return Frame{Kind: kindHelloAck, Start: int64(binary.BigEndian.Uint64(p[1:9]))}, nil
	case kindWatermark:
		if len(p) != 9 {
			return Frame{}, fmt.Errorf("%w: watermark frame length %d", ErrCorruptFrame, len(p))
		}
		return Frame{Kind: kindWatermark, Watermark: int64(binary.BigEndian.Uint64(p[1:9]))}, nil
	case kindEOF:
		if len(p) != 1 {
			return Frame{}, fmt.Errorf("%w: eof frame length %d", ErrCorruptFrame, len(p))
		}
		return Frame{Kind: kindEOF}, nil
	case kindError:
		return Frame{Kind: kindError, Msg: string(p[1:])}, nil
	default:
		return Frame{}, fmt.Errorf("%w: unknown frame kind %d", ErrCorruptFrame, p[0])
	}
}
