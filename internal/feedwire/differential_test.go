package feedwire_test

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rrr"
	"rrr/internal/experiments"
	"rrr/internal/faultfeed"
	"rrr/internal/feedwire"
	"rrr/internal/obs"
	"rrr/internal/server"
)

// diffScale keeps the simulated feed small enough for CI while still
// closing a full day of windows and emitting signals across techniques —
// the same scale the cluster differential uses.
func diffScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Days = 1
	sc.PublicPerWindow = 5
	return sc
}

// newMonitor builds a monitor over a fresh deterministic environment,
// primed and tracking the full corpus — the same construction for the
// in-process baseline and every wire-fed run, so any output difference is
// the transport's fault.
func newMonitor(t *testing.T, sc experiments.Scale) (*rrr.Monitor, *experiments.DaemonEnv) {
	t.Helper()
	env := experiments.NewDaemonEnv(sc, 0)
	cfg := rrr.DefaultConfig()
	cfg.WindowSec = sc.WindowSec
	cfg.Shards = sc.Shards
	mon, err := rrr.NewMonitor(rrr.Options{
		Config:     cfg,
		Mapper:     env.Mapper,
		Aliases:    env.Aliases,
		Geo:        env.Geo,
		Rel:        env.Rel,
		IXPMembers: env.IXPMembers,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range env.Dump {
		mon.ObserveBGP(u)
	}
	for _, tr := range env.Corpus {
		_ = mon.Track(tr) // AS-loop traces are rejected by design
	}
	return mon, env
}

// outputs are the comparison surfaces: every emitted signal in order,
// then the served key list, full-corpus batch verdicts, and stats.
type outputs struct {
	signals string
	keys    string
	batch   string
	stats   string
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

func httpPost(t *testing.T, url, body string) string {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	return string(data)
}

// collect reads the monitor's serving surfaces after the feed finished.
func collect(t *testing.T, mon *rrr.Monitor, signals []string) outputs {
	t.Helper()
	ts := httptest.NewServer(server.New(mon, server.Config{}).Handler())
	defer ts.Close()
	var o outputs
	o.signals = strings.Join(signals, "\n")
	o.keys = httpGet(t, ts.URL+"/v1/keys")
	var kr struct {
		Keys []string `json:"keys"`
	}
	if err := json.Unmarshal([]byte(o.keys), &kr); err != nil {
		t.Fatalf("keys response: %v", err)
	}
	if len(kr.Keys) == 0 {
		t.Fatal("empty key list; differential would be vacuous")
	}
	body, _ := json.Marshal(map[string]any{"keys": kr.Keys})
	o.batch = httpPost(t, ts.URL+"/v1/stale", string(body))
	o.stats = httpGet(t, ts.URL+"/v1/stats")
	return o
}

// inprocOutputs is the baseline: the monitor ingests the simulator feeds
// directly, no network anywhere.
func inprocOutputs(t *testing.T) outputs {
	t.Helper()
	sc := diffScale()
	mon, env := newMonitor(t, sc)
	var sigs []string
	err := rrr.RunPipeline(context.Background(), mon, rrr.PipelineConfig{
		Updates: env.Updates,
		Traces:  env.Traces,
		Sink:    func(s rrr.Signal) { sigs = append(sigs, s.String()) },
	})
	if err != nil {
		t.Fatalf("baseline pipeline: %v", err)
	}
	return collect(t, mon, sigs)
}

// stallPoints makes an update-source wrapper that injects one long pause
// when the cumulative record count crosses each threshold — once
// globally, across reconnect-reopened sources, so every pause stalls the
// consumer exactly once and the run always progresses.
type stallPoints struct {
	total      atomic.Int64
	thresholds []int64
	fired      []atomic.Bool
	dur        time.Duration
}

func (sp *stallPoints) wrap(src rrr.UpdateSource) rrr.UpdateSource {
	return stalledUpdates{sp: sp, src: src}
}

type stalledUpdates struct {
	sp  *stallPoints
	src rrr.UpdateSource
}

func (s stalledUpdates) Read() (rrr.Update, error) {
	n := s.sp.total.Add(1)
	for i, th := range s.sp.thresholds {
		if n >= th && s.sp.fired[i].CompareAndSwap(false, true) {
			time.Sleep(s.sp.dur)
		}
	}
	return s.src.Read()
}

// wireOpts configures one wire-fed run.
type wireOpts struct {
	// killAfterBytes, when set, routes the connection through a flaky
	// proxy that resets the i-th accepted connection after that many
	// upstream bytes.
	killAfterBytes []int64
	// stalls, when set, makes the pipeline's update consumer pause at
	// the given cumulative record counts — the slow-consumer scenario.
	stalls    []int64
	stallDur  time.Duration
	connector feedwire.ConnectorConfig

	// minConnections asserts the run actually exercised reconnects.
	minConnections int
	// wantDrops asserts the disconnect policy actually fired.
	wantDrops bool
}

// wireOutputs runs the monitor against a feedwire server over real TCP
// and returns the same surfaces as the in-process baseline.
func wireOutputs(t *testing.T, opts wireOpts) outputs {
	t.Helper()
	sc := diffScale()

	// Feed server over its own identical environment.
	fenv := experiments.NewDaemonEnv(sc, 0)
	fsrv, err := feedwire.NewServer(feedwire.Config{WindowSec: sc.WindowSec})
	if err != nil {
		t.Fatal(err)
	}
	fsrv.Pump(fenv.Updates, fenv.Traces)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fsrv.Serve(lis)
	defer fsrv.Close()

	dialAddr := lis.Addr().String()
	var proxy *faultfeed.Proxy
	if len(opts.killAfterBytes) > 0 {
		proxy = &faultfeed.Proxy{Upstream: dialAddr, KillAfterBytes: opts.killAfterBytes}
		if err := proxy.Start(); err != nil {
			t.Fatal(err)
		}
		defer proxy.Close()
		dialAddr = proxy.Addr()
	}

	cc := opts.connector
	cc.Addr = dialAddr
	conn := feedwire.NewConnector(cc)
	defer conn.Close()

	var sp *stallPoints
	if len(opts.stalls) > 0 {
		sp = &stallPoints{thresholds: opts.stalls, fired: make([]atomic.Bool, len(opts.stalls)), dur: opts.stallDur}
	}
	var openedU atomic.Int64
	openUpdates := func(since int64) (rrr.UpdateSource, error) {
		openedU.Add(1)
		src, err := conn.OpenUpdates(since)
		if err != nil {
			return nil, err
		}
		if sp != nil {
			return sp.wrap(src), nil
		}
		return src, nil
	}
	openTraces := func(since int64) (rrr.TraceSource, error) { return conn.OpenTraces(since) }

	droppedBefore := obs.Default.Counter("rrr_feedwire_dropped_conns_total", "stream", "updates").Value()

	mon, _ := newMonitor(t, sc)
	var sigs []string
	err = rrr.RunPipeline(context.Background(), mon, rrr.PipelineConfig{
		OpenUpdates: openUpdates,
		OpenTraces:  openTraces,
		Sink:        func(s rrr.Signal) { sigs = append(sigs, s.String()) },
		Retry: rrr.RetryPolicy{
			MaxRetries: 10,
			Backoff:    5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("wire pipeline: %v", err)
	}

	if proxy != nil && proxy.Accepted() < opts.minConnections {
		t.Fatalf("proxy accepted %d connections, want >= %d (forced disconnects did not happen)",
			proxy.Accepted(), opts.minConnections)
	}
	if opts.minConnections > 0 && proxy == nil && int(openedU.Load()) < opts.minConnections/2 {
		t.Fatalf("update stream opened %d times, want reconnects", openedU.Load())
	}
	if opts.wantDrops {
		dropped := obs.Default.Counter("rrr_feedwire_dropped_conns_total", "stream", "updates").Value() - droppedBefore
		if dropped == 0 {
			t.Fatal("disconnect policy never fired; slow-consumer scenario was vacuous")
		}
	}
	// The client parks at most Buffer records per stream by construction;
	// the gauge exposes the live depth, which can never exceed that.
	if depth := obs.Default.Gauge("rrr_feedwire_buffer_depth", "stream", "updates").Value(); cc.Buffer > 0 && depth > int64(cc.Buffer) {
		t.Fatalf("buffer depth %d exceeds configured bound %d", depth, cc.Buffer)
	}
	return collect(t, mon, sigs)
}

// diffStrings fails with a focused diff rather than dumping two full
// multi-kilobyte bodies.
func diffStrings(t *testing.T, what, want, got string) {
	t.Helper()
	if want == got {
		return
	}
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		wl, gl := "", ""
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			t.Fatalf("%s diverges at line %d:\ninproc: %q\n  wire: %q\n(inproc %d lines, wire %d lines)",
				what, i+1, wl, gl, len(w), len(g))
		}
	}
	t.Fatalf("%s differs only in trailing newlines (inproc %d lines, wire %d)", what, len(w), len(g))
}

func compareOutputs(t *testing.T, want, got outputs) {
	t.Helper()
	diffStrings(t, "signals", want.signals, got.signals)
	diffStrings(t, "keys", want.keys, got.keys)
	diffStrings(t, "batch verdicts", want.batch, got.batch)
	diffStrings(t, "stats", want.stats, got.stats)
}

// TestWireDifferential is the tentpole guarantee for the feed wire: a
// daemon ingesting over TCP — including across forced mid-window
// disconnects with reconnect+resume, and under a slow consumer that
// trips the disconnect policy — produces byte-identical signals, stale
// sets, and /v1/stats to one ingesting the same feeds in-process, with
// client memory bounded by the configured buffer throughout.
func TestWireDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential runs a full simulated day per scenario")
	}
	want := inprocOutputs(t)
	if n := strings.Count(want.signals, "\n") + 1; n < 10 {
		t.Fatalf("baseline emitted %d signals; differential would be vacuous", n)
	}

	t.Run("clean", func(t *testing.T) {
		got := wireOutputs(t, wireOpts{})
		compareOutputs(t, want, got)
	})

	t.Run("mid-window disconnect", func(t *testing.T) {
		// Cut the first two accepted connections (one per stream,
		// whichever order they dial in) mid-frame after ~4 KiB — deep
		// inside the feed, far from any window boundary. The connector
		// surfaces a torn frame as a transient error; the pipeline
		// reopens window-aligned and positional replay makes the
		// recovery exactly-once.
		got := wireOutputs(t, wireOpts{
			killAfterBytes: []int64{4<<10 + 7, 4<<10 + 13},
			minConnections: 4, // 2 initial + 2 reconnects
		})
		compareOutputs(t, want, got)
	})

	t.Run("slow consumer", func(t *testing.T) {
		// A tiny buffer plus a consumer that goes to sleep mid-stream:
		// the buffer fills, the disconnect policy drops the connection,
		// buffered records drain, and the reconnect resumes losslessly.
		got := wireOutputs(t, wireOpts{
			stalls:   []int64{50, 120},
			stallDur: 400 * time.Millisecond,
			connector: feedwire.ConnectorConfig{
				Buffer:       4,
				Policy:       feedwire.PolicyDisconnect,
				StallTimeout: 40 * time.Millisecond,
			},
			wantDrops: true,
		})
		compareOutputs(t, want, got)
	})
}
