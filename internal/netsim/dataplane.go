package netsim

import (
	"hash/fnv"
	"math"
	"sort"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
)

// flowHash provides stable per-flow choices (ECMP-style) so a given
// (src, dst) pair sees consistent load-balancer branches while different
// flows may diverge, matching Augustin et al.'s per-flow balancing.
func flowHash(src, dst uint32) uint64 {
	h := fnv.New64a()
	var b [8]byte
	b[0], b[1], b[2], b[3] = byte(src>>24), byte(src>>16), byte(src>>8), byte(src)
	b[4], b[5], b[6], b[7] = byte(dst>>24), byte(dst>>16), byte(dst>>8), byte(dst)
	h.Write(b[:])
	return h.Sum64()
}

// probeHash drives per-measurement randomness (responsiveness, jitter)
// deterministically from the simulation seed and measurement identity.
func probeHash(seed int64, src, dst uint32, when int64, salt uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (56 - 8*i))
		}
		h.Write(b[:])
	}
	put64(uint64(seed))
	put64(uint64(src)<<32 | uint64(dst))
	put64(uint64(when))
	put64(salt)
	return h.Sum64()
}

func hashFloat(h uint64) float64 {
	return float64(h%1000003) / 1000003.0
}

// intraWeight returns the IGP weight of an intra-AS PoP adjacency,
// including any event-applied perturbation.
func (s *Sim) intraWeight(a *AS, key [2]int) float64 {
	base := s.T.latency(
		s.T.PoPs[a.PoPs[key[0]]].City,
		s.T.PoPs[a.PoPs[key[1]]].City) + 0.5
	if m, ok := s.intraMul[a.ASN][key]; ok {
		return base * m
	}
	return base
}

// popPath returns the PoP-index sequence of the IGP shortest path between
// two PoP indexes of an AS (inclusive of both endpoints).
func (s *Sim) popPath(a *AS, from, to int) []int {
	if from == to {
		return []int{from}
	}
	n := len(a.PoPs)
	dist := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[from] = 0
	for {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u == -1 || u == to {
			break
		}
		done[u] = true
		for key := range a.intra {
			var v int
			switch {
			case key[0] == u:
				v = key[1]
			case key[1] == u:
				v = key[0]
			default:
				continue
			}
			if w := dist[u] + s.intraWeight(a, key); w < dist[v] {
				dist[v], prev[v] = w, u
			}
		}
	}
	if math.IsInf(dist[to], 1) {
		return []int{from, to} // disconnected intra graph: pretend direct
	}
	var rev []int
	for cur := to; cur != -1; cur = prev[cur] {
		rev = append(rev, cur)
	}
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// popIndex returns the index of pop within the AS's PoP list.
func popIndex(a *AS, pop PoPID) int {
	for i, p := range a.PoPs {
		if p == pop {
			return i
		}
	}
	return 0
}

// hostPoPIdx places a host address at one of its AS's PoPs.
func hostPoPIdx(a *AS, ip uint32) int {
	if len(a.PoPs) == 0 {
		return 0
	}
	return int(flowHash(ip, 0x68757374) % uint64(len(a.PoPs)))
}

// primaryRouter returns the first router of a PoP.
func (t *Topology) primaryRouter(pop PoPID) RouterID {
	return t.PoPs[pop].Routers[0]
}

// Traceroute simulates a traceroute from a source host address toward dstIP
// at virtual time `when`, honoring current routing, active links, diamonds,
// and per-router responsiveness. probeID is recorded in the result.
func (s *Sim) Traceroute(probeID int, srcIP, dstIP uint32, when int64) *traceroute.Traceroute {
	tr := &traceroute.Traceroute{ProbeID: probeID, Time: when, Src: srcIP, Dst: dstIP}
	srcAS, ok := s.T.OriginAS(srcIP)
	if !ok {
		return tr
	}
	dstAS, ok := s.T.OriginAS(dstIP)
	if !ok {
		return tr
	}
	flow := flowHash(srcIP, dstIP)
	rtt := 0.5

	emit := func(ipAddr uint32, router RouterID) {
		respProb := 1.0
		if router != 0 {
			// Three probes per hop, as real traceroute implementations
			// send: the hop answers if any attempt does.
			p := s.T.Routers[router].ResponseProb
			respProb = 1 - (1-p)*(1-p)*(1-p)
		}
		hopIdx := len(tr.Hops)
		h := traceroute.Hop{TTL: hopIdx + 1}
		if hashFloat(probeHash(s.Cfg.Seed, srcIP, dstIP, when, uint64(hopIdx)<<32|uint64(router))) < respProb {
			h.IP = ipAddr
			h.RTT = rtt + 0.2*hashFloat(probeHash(s.Cfg.Seed, srcIP, dstIP, when, 0xa11c^uint64(hopIdx)))
		}
		tr.Hops = append(tr.Hops, h)
	}

	cur := srcAS
	a := s.T.ASes[cur]
	ingressIdx := hostPoPIdx(a, srcIP)
	// Gateway hop in the source AS.
	gw := s.T.primaryRouter(a.PoPs[ingressIdx])
	emit(s.T.Routers[gw].Loopback, gw)
	lastRouter := gw

	for steps := 0; steps < 64; steps++ {
		if cur == dstAS {
			// Intra segment to the destination host's PoP, then the host.
			dstIdx := hostPoPIdx(a, dstIP)
			s.emitIntra(tr, a, ingressIdx, dstIdx, flow, &rtt, emit, &lastRouter)
			rtt += 0.3
			tr.Hops = append(tr.Hops, traceroute.Hop{
				TTL: len(tr.Hops) + 1, IP: dstIP, RTT: rtt,
			})
			tr.Reached = true
			return tr
		}
		next, ok := s.R.NextHop(cur, dstAS)
		if !ok {
			// No route: the trace dies with unresponsive hops.
			for k := 0; k < 3; k++ {
				tr.Hops = append(tr.Hops, traceroute.Hop{TTL: len(tr.Hops) + 1})
			}
			return tr
		}
		lid, ok := s.R.ActiveLink(cur, next, flow)
		if !ok {
			for k := 0; k < 3; k++ {
				tr.Hops = append(tr.Hops, traceroute.Hop{TTL: len(tr.Hops) + 1})
			}
			return tr
		}
		l := s.T.Links[lid]
		var egress RouterID
		var nextRouter RouterID
		var nextIP uint32
		if l.AAS == cur {
			egress, nextRouter, nextIP = l.ARouter, l.BRouter, l.BIP
		} else {
			egress, nextRouter, nextIP = l.BRouter, l.ARouter, l.AIP
		}
		egressIdx := popIndex(a, s.T.Routers[egress].PoP)
		s.emitIntra(tr, a, ingressIdx, egressIdx, flow, &rtt, emit, &lastRouter)
		// Egress border router (unless it is the router we already sit on).
		if egress != lastRouter {
			rtt += 0.2
			emit(s.T.Routers[egress].Loopback, egress)
			lastRouter = egress
		}
		// Cross the border: the far router replies with its ingress
		// interface (the link address; an IXP LAN address for IXP links).
		rtt += s.T.latency(s.T.CityOfRouter(egress), s.T.CityOfRouter(nextRouter)) + 0.2
		emit(nextIP, nextRouter)
		lastRouter = nextRouter

		cur = next
		a = s.T.ASes[cur]
		ingressIdx = popIndex(a, s.T.Routers[nextRouter].PoP)
	}
	return tr
}

// emitIntra walks the IGP path between two PoP indexes of an AS, emitting
// intermediate PoP routers and any load-balanced diamond middle hops.
func (s *Sim) emitIntra(tr *traceroute.Traceroute, a *AS, from, to int, flow uint64,
	rtt *float64, emit func(uint32, RouterID), lastRouter *RouterID) {
	if from == to {
		return
	}
	pops := s.popPath(a, from, to)
	for i := 1; i < len(pops); i++ {
		key := [2]int{pops[i-1], pops[i]}
		if key[0] > key[1] {
			key = [2]int{key[1], key[0]}
		}
		// Diamond branch selection per flow.
		if paths := a.intra[key]; len(paths) > 1 {
			branch := paths[flow%uint64(len(paths))]
			for _, mid := range branch.routers {
				*rtt += 0.3
				emit(s.T.Routers[mid].Loopback, mid)
				*lastRouter = mid
			}
		}
		r := s.T.primaryRouter(a.PoPs[pops[i]])
		if r == *lastRouter {
			continue
		}
		*rtt += s.T.latency(s.T.PoPs[a.PoPs[pops[i-1]]].City, s.T.PoPs[a.PoPs[pops[i]]].City) * 0.1
		emit(s.T.Routers[r].Loopback, r)
		*lastRouter = r
	}
}

// Ping returns a simulated round-trip time in milliseconds from a vantage
// city to a target interface, or false if the target does not respond.
// Used by the shortest-ping geolocation technique (Appendix A).
func (s *Sim) Ping(fromCity CityID, targetIP uint32, when int64) (float64, bool) {
	r, ok := s.T.RouterForIP(targetIP)
	if !ok {
		return 0, false
	}
	if hashFloat(probeHash(s.Cfg.Seed, uint32(fromCity), targetIP, when, 0x1c4)) >= s.T.Routers[r].ResponseProb {
		return 0, false
	}
	d := s.T.latency(fromCity, s.T.CityOfRouter(r))
	return 0.2 + d*0.4, true
}

// BorderCrossings lists, in order, the (egress router, ingress router, link)
// triples a flow crosses from src to dst under current routing. This is the
// simulator's ground truth for border-level paths.
type BorderCrossing struct {
	Link    LinkID
	FromAS  bgp.ASN
	ToAS    bgp.ASN
	Egress  RouterID
	Ingress RouterID
}

// Borders returns the ground-truth border crossings for a flow.
func (s *Sim) Borders(srcIP, dstIP uint32) []BorderCrossing {
	srcAS, ok := s.T.OriginAS(srcIP)
	if !ok {
		return nil
	}
	dstAS, ok := s.T.OriginAS(dstIP)
	if !ok {
		return nil
	}
	flow := flowHash(srcIP, dstIP)
	var out []BorderCrossing
	cur := srcAS
	for steps := 0; steps < 64 && cur != dstAS; steps++ {
		next, ok := s.R.NextHop(cur, dstAS)
		if !ok {
			return out
		}
		lid, ok := s.R.ActiveLink(cur, next, flow)
		if !ok {
			return out
		}
		l := s.T.Links[lid]
		bc := BorderCrossing{Link: lid, FromAS: cur, ToAS: next}
		if l.AAS == cur {
			bc.Egress, bc.Ingress = l.ARouter, l.BRouter
		} else {
			bc.Egress, bc.Ingress = l.BRouter, l.ARouter
		}
		out = append(out, bc)
		cur = next
	}
	return out
}

// SortedASNs returns the topology's ASNs (already sorted); convenience for
// deterministic iteration by callers.
func (t *Topology) SortedASNs() []bgp.ASN {
	out := make([]bgp.ASN, len(t.ASList))
	copy(out, t.ASList)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
