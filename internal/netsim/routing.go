package netsim

import (
	"sort"

	"rrr/internal/bgp"
)

// routeClass orders route preference per Gao–Rexford local preference:
// routes learned from customers beat peer routes beat provider routes.
type routeClass int8

const (
	classSelf routeClass = iota
	classCustomer
	classPeer
	classProvider
	classNone
)

// chosen is AS x's best route toward a destination AS.
type chosen struct {
	class routeClass
	next  bgp.ASN // next-hop AS; 0 for self
	plen  int     // AS-path length in hops (0 for self)
}

// pairKey is an unordered AS pair.
type pairKey struct{ lo, hi bgp.ASN }

func mkPair(a, b bgp.ASN) pairKey {
	if a < b {
		return pairKey{a, b}
	}
	return pairKey{b, a}
}

// Routing holds control-plane state: per-destination best routes for every
// AS, the active border link per neighbor pair (hot-potato egress
// selection), and interdomain load-balanced pairs.
type Routing struct {
	topo *Topology

	// best[d][x] is x's best route toward destination AS d.
	best map[bgp.ASN]map[bgp.ASN]chosen

	// prefOverride[x] prefers the given neighbor at tiebreak when it is
	// among equal candidates (routing policy shifts, flipped by events).
	prefOverride map[bgp.ASN]bgp.ASN

	// activeLink[(x,y)] is the border link currently carrying traffic
	// between x and y; egress-shift events and link failures rotate it.
	activeLink map[pairKey]LinkID

	// lbPairs marks AS pairs that balance flows across parallel border
	// links (interdomain diamonds, §5.4).
	lbPairs map[pairKey]bool

	// upCount caches the number of operational links per pair so the
	// route computation's adjacency checks are O(1).
	upCount map[pairKey]int
}

func newRouting(t *Topology) *Routing {
	rt := &Routing{
		topo:         t,
		best:         make(map[bgp.ASN]map[bgp.ASN]chosen),
		prefOverride: make(map[bgp.ASN]bgp.ASN),
		activeLink:   make(map[pairKey]LinkID),
		lbPairs:      make(map[pairKey]bool),
		upCount:      make(map[pairKey]int),
	}
	for i := 1; i < len(t.Links); i++ {
		if t.Links[i].Up {
			rt.upCount[mkPair(t.Links[i].AAS, t.Links[i].BAS)]++
		}
	}
	for pk := range rt.allPairs() {
		rt.selectActiveLink(pk)
	}
	rt.RecomputeAll()
	return rt
}

// SetLinkUp changes a link's operational state, keeping the adjacency cache
// and active-link selection consistent. It reports whether the state
// actually changed.
func (rt *Routing) SetLinkUp(lid LinkID, up bool) bool {
	l := &rt.topo.Links[lid]
	if l.Up == up {
		return false
	}
	l.Up = up
	pk := mkPair(l.AAS, l.BAS)
	if up {
		rt.upCount[pk]++
	} else {
		rt.upCount[pk]--
	}
	rt.selectActiveLink(pk)
	return true
}

// NoteLinkAdded registers a newly created link (IXP joins add links after
// initialization).
func (rt *Routing) NoteLinkAdded(lid LinkID) {
	l := rt.topo.Links[lid]
	if l.Up {
		rt.upCount[mkPair(l.AAS, l.BAS)]++
	}
}

// allPairs enumerates neighbor AS pairs.
func (rt *Routing) allPairs() map[pairKey]bool {
	out := make(map[pairKey]bool)
	for _, asn := range rt.topo.ASList {
		for nb := range rt.topo.ASes[asn].Neighbors {
			out[mkPair(asn, nb)] = true
		}
	}
	return out
}

// upLinks returns the operational links between a pair, sorted by ID.
func (rt *Routing) upLinks(pk pairKey) []LinkID {
	var out []LinkID
	for _, lid := range rt.topo.ASes[pk.lo].Neighbors[pk.hi] {
		if rt.topo.Links[lid].Up {
			out = append(out, lid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// selectActiveLink (re)picks the active link for a pair, keeping the current
// choice when it is still up. It reports whether the active link changed.
func (rt *Routing) selectActiveLink(pk pairKey) bool {
	cur := rt.activeLink[pk]
	if cur != 0 && rt.topo.Links[cur].Up {
		return false
	}
	ups := rt.upLinks(pk)
	if len(ups) == 0 {
		if cur != 0 {
			delete(rt.activeLink, pk)
			return true
		}
		return false
	}
	rt.activeLink[pk] = ups[0]
	return cur != ups[0]
}

// RotateActiveLink shifts the pair's active link to the next operational
// parallel link (hot-potato/egress engineering change). It reports whether
// anything changed.
func (rt *Routing) RotateActiveLink(a, b bgp.ASN) bool {
	pk := mkPair(a, b)
	ups := rt.upLinks(pk)
	if len(ups) < 2 {
		return false
	}
	cur := rt.activeLink[pk]
	for i, lid := range ups {
		if lid == cur {
			rt.activeLink[pk] = ups[(i+1)%len(ups)]
			return true
		}
	}
	rt.activeLink[pk] = ups[0]
	return true
}

// ActiveLink returns the link carrying traffic between a and b for the given
// flow hash (load-balanced pairs pick per flow).
func (rt *Routing) ActiveLink(a, b bgp.ASN, flow uint64) (LinkID, bool) {
	pk := mkPair(a, b)
	if rt.lbPairs[pk] {
		ups := rt.upLinks(pk)
		if len(ups) == 0 {
			return 0, false
		}
		return ups[flow%uint64(len(ups))], true
	}
	lid, ok := rt.activeLink[pk]
	return lid, ok
}

// ControlLink returns the link whose attributes (ingress PoP, communities)
// the control plane advertises for the pair: the active link, ignoring
// per-flow balancing.
func (rt *Routing) ControlLink(a, b bgp.ASN) (LinkID, bool) {
	lid, ok := rt.activeLink[mkPair(a, b)]
	return lid, ok
}

// hasUpNeighbor reports whether a and b share at least one up link.
func (rt *Routing) hasUpNeighbor(a, b bgp.ASN) bool {
	return rt.upCount[mkPair(a, b)] > 0
}

// RecomputeAll recomputes best routes for every destination AS.
func (rt *Routing) RecomputeAll() {
	for _, d := range rt.topo.ASList {
		rt.best[d] = rt.computeDest(d)
	}
}

// computeDest runs the three-stage Gao–Rexford computation toward d.
func (rt *Routing) computeDest(d bgp.ASN) map[bgp.ASN]chosen {
	t := rt.topo
	res := make(map[bgp.ASN]chosen, len(t.ASList))
	res[d] = chosen{class: classSelf}

	// Stage 1: customer routes. BFS from d upward along provider edges:
	// x's provider y learns a customer route through x.
	custDist := map[bgp.ASN]int{d: 0}
	frontier := []bgp.ASN{d}
	for level := 1; len(frontier) > 0; level++ {
		// Collect candidate next hops per provider at this level.
		cands := make(map[bgp.ASN][]bgp.ASN)
		for _, x := range frontier {
			for nb, rel := range t.ASes[x].Rel {
				if rel != RelCustomer { // x is nb's customer: nb provides x
					continue
				}
				if !rt.hasUpNeighbor(x, nb) {
					continue
				}
				if _, seen := custDist[nb]; seen {
					continue
				}
				cands[nb] = append(cands[nb], x)
			}
		}
		frontier = frontier[:0]
		for y, xs := range cands {
			custDist[y] = level
			res[y] = chosen{class: classCustomer, next: rt.pick(y, xs), plen: level}
			frontier = append(frontier, y)
		}
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	}

	// Stage 2: peer routes, one peer hop on top of a customer route (or d
	// itself). Only ASes without a customer route use them.
	peerLen := make(map[bgp.ASN]int)
	for _, x := range t.ASList {
		if _, hasCust := custDist[x]; hasCust || x == d {
			continue
		}
		var cands []bgp.ASN
		bestLen := int(^uint(0) >> 1)
		for nb, rel := range t.ASes[x].Rel {
			if rel != RelPeer || !rt.hasUpNeighbor(x, nb) {
				continue
			}
			cd, ok := custDist[nb]
			if !ok {
				continue
			}
			l := cd + 1
			if l < bestLen {
				bestLen, cands = l, []bgp.ASN{nb}
			} else if l == bestLen {
				cands = append(cands, nb)
			}
		}
		if len(cands) > 0 {
			peerLen[x] = bestLen
			res[x] = chosen{class: classPeer, next: rt.pick(x, cands), plen: bestLen}
		}
	}

	// Stage 3: provider routes, propagating downward from any AS with a
	// route. Dijkstra over provider→customer edges with varying source
	// costs; bucketed by path length.
	const maxLen = 64
	buckets := make([][]bgp.ASN, maxLen)
	provLen := make(map[bgp.ASN]int)
	seedLen := func(x bgp.ASN) (int, bool) {
		if x == d {
			return 0, true
		}
		if l, ok := custDist[x]; ok {
			return l, true
		}
		if l, ok := peerLen[x]; ok {
			return l, true
		}
		return 0, false
	}
	for _, x := range t.ASList {
		if l, ok := seedLen(x); ok && l+1 < maxLen {
			buckets[l] = append(buckets[l], x)
		}
	}
	// candsAt[y] collects equal-length provider candidates before y is
	// finalized.
	type provCand struct {
		len   int
		cands []bgp.ASN
	}
	pending := make(map[bgp.ASN]*provCand)
	for l := 0; l < maxLen; l++ {
		sort.Slice(buckets[l], func(i, j int) bool { return buckets[l][i] < buckets[l][j] })
		for _, y := range buckets[l] {
			// Finalize y if it is a pending provider-route node.
			if pc, ok := pending[y]; ok && pc.len == l {
				if _, done := provLen[y]; !done {
					if _, hasBetter := seedLen(y); !hasBetter {
						provLen[y] = l
						res[y] = chosen{class: classProvider, next: rt.pick(y, pc.cands), plen: l}
					}
				}
			}
			// y's effective length for propagation to its customers.
			el, seeded := seedLen(y)
			if !seeded {
				var ok bool
				el, ok = provLen[y]
				if !ok {
					continue
				}
			}
			if el != l {
				continue // stale bucket entry
			}
			for nb, rel := range t.ASes[y].Rel {
				if rel != RelProvider || !rt.hasUpNeighbor(y, nb) {
					continue
				}
				// y is nb's provider: nb learns a provider route via y.
				if _, ok := seedLen(nb); ok {
					continue // has a better class already
				}
				if _, ok := provLen[nb]; ok {
					continue
				}
				nl := l + 1
				if nl >= maxLen {
					continue
				}
				pc := pending[nb]
				if pc == nil || nl < pc.len {
					pending[nb] = &provCand{len: nl, cands: []bgp.ASN{y}}
					buckets[nl] = append(buckets[nl], nb)
				} else if nl == pc.len {
					pc.cands = append(pc.cands, y)
				}
			}
		}
	}
	return res
}

// pick applies tiebreak among equal candidates: a configured preference
// override wins, then the lowest ASN.
func (rt *Routing) pick(x bgp.ASN, cands []bgp.ASN) bgp.ASN {
	if len(cands) == 1 {
		return cands[0]
	}
	if pref, ok := rt.prefOverride[x]; ok {
		for _, c := range cands {
			if c == pref {
				return c
			}
		}
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c < best {
			best = c
		}
	}
	return best
}

// ASPath returns the AS-level path from x to destination AS d, inclusive,
// or nil if x has no route.
func (rt *Routing) ASPath(x, d bgp.ASN) bgp.Path {
	routes := rt.best[d]
	if routes == nil {
		return nil
	}
	var out bgp.Path
	cur := x
	for steps := 0; steps < 64; steps++ {
		c, ok := routes[cur]
		if !ok {
			return nil
		}
		out = append(out, cur)
		if c.class == classSelf {
			return out
		}
		cur = c.next
	}
	return nil // malformed (should not happen)
}

// RouteAttrs computes the BGP attributes a vantage point in AS v would hold
// for destination AS d: the AS path and the community set accumulated along
// it (geo tags at each ingress PoP, policy communities, stripping).
func (rt *Routing) RouteAttrs(v, d bgp.ASN) (bgp.Path, bgp.Communities, uint32, bool) {
	path := rt.ASPath(v, d)
	if path == nil {
		return nil, nil, 0, false
	}
	t := rt.topo
	var comms bgp.Communities
	// Origin may tag its policy community.
	if pc := t.ASes[d].PolicyCommunity; pc != 0 {
		comms = append(comms, bgp.MakeCommunity(d, pc))
	}
	// Walk from origin toward v: path[i] receives the route from path[i+1].
	for i := len(path) - 2; i >= 0; i-- {
		recv := t.ASes[path[i]]
		if recv.StripsCommunities {
			comms = nil
		}
		if recv.TagsGeo {
			if lid, ok := rt.ControlLink(path[i], path[i+1]); ok {
				pop := rt.sidePoP(lid, path[i])
				comms = append(comms, bgp.MakeCommunity(path[i], geoCommunityValue(pop)))
			}
		}
		if recv.PolicyCommunity != 0 {
			comms = append(comms, bgp.MakeCommunity(path[i], recv.PolicyCommunity))
		}
	}
	comms = bgp.NormalizeCommunities(comms)
	// MED proxies the IGP cost of the first-hop egress; it changes with
	// egress shifts but is non-transitive.
	var med uint32
	if len(path) > 1 {
		if lid, ok := rt.ControlLink(path[0], path[1]); ok {
			med = uint32(lid)
		}
	}
	return path, comms, med, true
}

// sidePoP returns the PoP of the given AS's side of a link.
func (rt *Routing) sidePoP(lid LinkID, as bgp.ASN) PoPID {
	l := rt.topo.Links[lid]
	if l.AAS == as {
		return rt.topo.Routers[l.ARouter].PoP
	}
	return rt.topo.Routers[l.BRouter].PoP
}

// geoCommunityValue encodes a PoP location as a community value, mirroring
// conventions like Init7's 5xxxx location communities (paper Fig 3).
func geoCommunityValue(pop PoPID) uint16 {
	return uint16(50000 + int(pop)%15000)
}

// GeoCommunityPoP decodes a geo community value back to the PoP, for tests.
func GeoCommunityPoP(v uint16) (PoPID, bool) {
	if v < 50000 {
		return 0, false
	}
	return PoPID(v - 50000), true
}

// NextHop returns x's next-hop AS toward d.
func (rt *Routing) NextHop(x, d bgp.ASN) (bgp.ASN, bool) {
	c, ok := rt.best[d][x]
	if !ok || c.class == classSelf {
		return 0, false
	}
	return c.next, true
}

// HasRoute reports whether x has any route toward d.
func (rt *Routing) HasRoute(x, d bgp.ASN) bool {
	_, ok := rt.best[d][x]
	return ok
}
