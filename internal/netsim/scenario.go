package netsim

import (
	"math/rand"
	"sort"

	"rrr/internal/bgp"
	"rrr/internal/events"
	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

// ScenarioPack selects which adversarial episode kinds a Scenario injects
// on top of the simulator's benign dynamics. Every kind is deterministic
// under the scenario seed and leaves the benign stream untouched: episodes
// only publish extra updates (and fabricate traces), never mutate routing
// or consume the simulator's RNG, so a run with a pack enabled carries the
// exact benign substream of the same run without it.
type ScenarioPack struct {
	HijackOrigin    bool // full origin replacement across all VPs
	HijackMOAS      bool // partial-visibility foreign origin
	HijackSubprefix bool // foreign more-specific under a victim block
	RouteLeaks      bool // provider→stub→provider leaks (incl. a self-healing one)
	Blackholes      bool // RFC7999 65535:666 announcements
	Artifacts       bool // traceroute loops, cycles, diamonds
	Diurnal         bool // same-slot daily churn recurrence
	Anycast         bool // benign stable-MOAS look-alike baseline

	// Episodes per enabled BGP kind (2 if zero).
	Episodes int
}

// FullPack enables every scenario kind.
func FullPack() ScenarioPack {
	return ScenarioPack{
		HijackOrigin: true, HijackMOAS: true, HijackSubprefix: true,
		RouteLeaks: true, Blackholes: true, Artifacts: true,
		Diurnal: true, Anycast: true,
	}
}

// Enabled reports whether the pack injects anything at all.
func (p ScenarioPack) Enabled() bool {
	return p.HijackOrigin || p.HijackMOAS || p.HijackSubprefix ||
		p.RouteLeaks || p.Blackholes || p.Artifacts || p.Diurnal || p.Anycast
}

// action is one scheduled control-plane emission.
type action struct {
	at  int64
	seq int // construction order, ties broken deterministically
	run func(at int64)
}

// artifactSpec is one fabricated-traceroute injection scheduled for a
// window. truthIdx links back to its ground-truth label so an injection
// the data plane refuses (destination unreachable, trace too short to
// carry the artifact) retracts its label instead of scoring a phantom
// false negative.
type artifactSpec struct {
	class    events.Class
	src, dst uint32
	truthIdx int
}

// Scenario drives a pack against a Sim: it owns the episode schedule, the
// ground-truth labels, and the forged emissions. Construction is the only
// phase that draws on the scenario RNG, so emission stays deterministic
// regardless of how callers interleave Advance with Sim.Step.
type Scenario struct {
	sim       *Sim
	pack      ScenarioPack
	windowSec int64
	duration  int64

	actions   []action
	artifacts map[int64][]artifactSpec
	truths    []events.Truth
	// retracted marks truth indices whose injection never materialized
	// (set during WindowTraces); Truths skips them.
	retracted map[int]bool

	// anycast secondary-origin routes injected into the priming dump.
	anycast []anycastSpec

	cursor int // stub-AS allocation cursor
}

type anycastSpec struct {
	prefix trie.Prefix
	origin bgp.ASN // secondary (anycast) origin
	vps    []VP    // subset announcing the secondary route
}

// NewScenario builds the episode schedule for a run of durationSec seconds
// with the given emission window. The scenario seed is independent of the
// simulator seed: two scenarios over the same sim with different seeds
// pick different victims but identical benign dynamics.
func NewScenario(s *Sim, pack ScenarioPack, seed, durationSec, windowSec int64) *Scenario {
	if pack.Episodes <= 0 {
		pack.Episodes = 2
	}
	if windowSec <= 0 {
		windowSec = 900
	}
	sc := &Scenario{
		sim:       s,
		pack:      pack,
		windowSec: windowSec,
		duration:  durationSec,
		artifacts: make(map[int64][]artifactSpec),
		retracted: make(map[int]bool),
	}
	rng := rand.New(rand.NewSource(seed))
	stubs := s.StubASes()
	if len(stubs) == 0 {
		return sc
	}
	// Shuffle the stub pool once so seed changes move every victim choice,
	// then hand out stubs via the cursor so kinds never collide.
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	sc.buildAnycast(stubs)
	sc.buildHijacks(stubs)
	sc.buildLeaks(stubs)
	sc.buildBlackholes(stubs)
	sc.buildArtifacts(stubs)
	sc.buildDiurnal(stubs)
	sort.SliceStable(sc.actions, func(i, j int) bool {
		if sc.actions[i].at != sc.actions[j].at {
			return sc.actions[i].at < sc.actions[j].at
		}
		return sc.actions[i].seq < sc.actions[j].seq
	})
	return sc
}

// alignWindow floors t to its window start.
func (sc *Scenario) alignWindow(t int64) int64 { return t - t%sc.windowSec }

// slotAt spreads episode emissions across the run: kind k, episode e lands
// mid-window, after the first day so baselines and calibration settle.
func (sc *Scenario) slotAt(k, e int) int64 {
	spacing := 4 * sc.windowSec
	if spacing < 3600 {
		spacing = 3600
	}
	const kinds = 8
	t := 86400 + int64(e*kinds+k)*spacing + sc.windowSec/3
	if t >= sc.duration {
		return -1
	}
	return t
}

// nextStub hands out the next victim/attacker AS from the shuffled pool.
func (sc *Scenario) nextStub(stubs []bgp.ASN) bgp.ASN {
	as := stubs[sc.cursor%len(stubs)]
	sc.cursor++
	return as
}

// nextStubWhere scans the pool for a stub satisfying ok, falling back to
// plain allocation so construction never stalls.
func (sc *Scenario) nextStubWhere(stubs []bgp.ASN, ok func(bgp.ASN) bool) bgp.ASN {
	for range stubs {
		as := sc.nextStub(stubs)
		if ok(as) {
			return as
		}
	}
	return sc.nextStub(stubs)
}

// reachableFromAllVPs reports whether every vantage point currently routes
// to the AS — required for a full origin hijack to displace the baseline
// everywhere.
func (sc *Scenario) reachableFromAllVPs(as bgp.ASN) bool {
	for _, vp := range sc.sim.vps {
		if sc.sim.R.ASPath(vp.AS, as) == nil {
			return false
		}
	}
	return true
}

func (sc *Scenario) addAction(at int64, run func(int64)) {
	if at < 0 || at >= sc.duration {
		return
	}
	sc.actions = append(sc.actions, action{at: at, seq: len(sc.actions), run: run})
}

// vpSubset deterministically samples every stride-th vantage point, at
// most limit of them.
func (sc *Scenario) vpSubset(stride, phase, limit int) []VP {
	var out []VP
	for i := phase; i < len(sc.sim.vps); i += stride {
		out = append(out, sc.sim.vps[i])
		if len(out) >= limit {
			break
		}
	}
	return out
}

// forgeOrigin publishes prefix from each VP with the VP's real path to the
// attacker as the forged route (the classic origin-hijack propagation
// shape), returning how many VPs accepted it.
func (sc *Scenario) forgeOrigin(vps []VP, prefix trie.Prefix, attacker bgp.ASN, t int64) int {
	n := 0
	for _, vp := range vps {
		path := sc.sim.R.ASPath(vp.AS, attacker)
		if path == nil {
			continue
		}
		sc.sim.publish(bgp.Update{
			Time: t, PeerIP: vp.IP, PeerAS: vp.AS, Type: bgp.Announce,
			Prefix: prefix, ASPath: path.Clone(),
		})
		n++
	}
	return n
}

// healPrefix republishes each VP's current legitimate route for one prefix
// of the victim AS.
func (sc *Scenario) healPrefix(vps []VP, prefix trie.Prefix, victim bgp.ASN, t int64) {
	for _, vp := range vps {
		path, comms, med, ok := sc.sim.R.RouteAttrs(vp.AS, victim)
		if !ok {
			continue
		}
		sc.sim.publish(bgp.Update{
			Time: t, PeerIP: vp.IP, PeerAS: vp.AS, Type: bgp.Announce,
			Prefix: prefix, ASPath: path.Clone(), Communities: comms.Clone(), MED: med,
		})
	}
}

func (sc *Scenario) buildAnycast(stubs []bgp.ASN) {
	if !sc.pack.Anycast {
		return
	}
	for i := 0; i < 2; i++ {
		victim := sc.nextStub(stubs)
		second := sc.nextStubWhere(stubs, func(as bgp.ASN) bool { return as != victim })
		prefix := sc.sim.T.ASes[victim].Prefixes[0]
		spec := anycastSpec{prefix: prefix, origin: second, vps: sc.vpSubset(3, i, 8)}
		sc.anycast = append(sc.anycast, spec)
		// Stable anycast is baseline state, benign for the whole run; a
		// classifier flagging it as MOAS scores a false positive.
		sc.truths = append(sc.truths, events.Truth{
			Class: events.HijackMOAS, Start: 0, End: sc.duration,
			Prefix: prefix, AS: second, Benign: true,
			Detail: "stable anycast baseline",
		})
		// Mid-run the anycast routes refresh (periodic re-announcement);
		// still benign.
		sc.addAction(sc.slotAt(7, i), func(at int64) {
			for _, vp := range spec.vps {
				path := sc.sim.R.ASPath(vp.AS, spec.origin)
				if path == nil {
					continue
				}
				sc.sim.publish(bgp.Update{
					Time: at, PeerIP: vp.IP, PeerAS: vp.AS, Type: bgp.Announce,
					Prefix: spec.prefix, ASPath: path.Clone(),
				})
			}
		})
	}
}

// AugmentDump appends the anycast secondary-origin routes to a priming
// table dump, teaching both the staleness monitor and the event detector
// the legitimate multi-origin baseline.
func (sc *Scenario) AugmentDump(dump []bgp.Update) []bgp.Update {
	if len(sc.anycast) == 0 {
		return dump
	}
	var t int64
	if len(dump) > 0 {
		t = dump[0].Time
	}
	out := dump
	for _, spec := range sc.anycast {
		for _, vp := range spec.vps {
			path := sc.sim.R.ASPath(vp.AS, spec.origin)
			if path == nil {
				continue
			}
			out = append(out, bgp.Update{
				Time: t, PeerIP: vp.IP, PeerAS: vp.AS, Type: bgp.Announce,
				Prefix: spec.prefix, ASPath: path.Clone(),
			})
		}
	}
	return out
}

func (sc *Scenario) buildHijacks(stubs []bgp.ASN) {
	for e := 0; e < sc.pack.Episodes; e++ {
		if sc.pack.HijackOrigin {
			victim := sc.nextStubWhere(stubs, sc.reachableFromAllVPs)
			attacker := sc.nextStubWhere(stubs, func(as bgp.ASN) bool {
				return as != victim && sc.reachableFromAllVPs(as)
			})
			prefix := sc.sim.T.ASes[victim].Prefixes[0]
			t := sc.slotAt(0, e)
			hold := 2 * sc.windowSec
			if t >= 0 {
				sc.truths = append(sc.truths, events.Truth{
					Class: events.HijackOrigin, Start: t, End: t + hold,
					Prefix: prefix, AS: attacker,
				})
				all := sc.sim.VPs()
				sc.addAction(t, func(at int64) { sc.forgeOrigin(all, prefix, attacker, at) })
				sc.addAction(t+hold, func(at int64) { sc.healPrefix(all, prefix, victim, at) })
			}
		}
		if sc.pack.HijackMOAS {
			victim := sc.nextStub(stubs)
			attacker := sc.nextStubWhere(stubs, func(as bgp.ASN) bool { return as != victim })
			prefix := sc.sim.T.ASes[victim].Prefixes[0]
			t := sc.slotAt(1, e)
			hold := 2 * sc.windowSec
			if t >= 0 {
				sc.truths = append(sc.truths, events.Truth{
					Class: events.HijackMOAS, Start: t, End: t + hold,
					Prefix: prefix, AS: attacker,
				})
				part := sc.vpSubset(3, e%3, 1+len(sc.sim.vps)/3)
				sc.addAction(t, func(at int64) { sc.forgeOrigin(part, prefix, attacker, at) })
				sc.addAction(t+hold, func(at int64) { sc.healPrefix(part, prefix, victim, at) })
			}
		}
		if sc.pack.HijackSubprefix {
			victim := sc.nextStub(stubs)
			attacker := sc.nextStubWhere(stubs, func(as bgp.ASN) bool { return as != victim })
			// A /18 at the victim block base: strictly more specific than
			// the /16 baseline and disjoint from the optional upper-half
			// /17, so it is never a baseline prefix itself.
			sub := trie.MakePrefix(sc.sim.T.ASes[victim].Block.Addr, 18)
			t := sc.slotAt(2, e)
			hold := 2 * sc.windowSec
			if t >= 0 {
				sc.truths = append(sc.truths, events.Truth{
					Class: events.HijackSubprefix, Start: t, End: t + hold,
					Prefix: sub, AS: attacker,
				})
				part := sc.vpSubset(2, e%2, 1+len(sc.sim.vps)/2)
				sc.addAction(t, func(at int64) { sc.forgeOrigin(part, sub, attacker, at) })
				sc.addAction(t+hold, func(at int64) {
					for _, vp := range part {
						sc.sim.publish(bgp.Update{
							Time: at, PeerIP: vp.IP, PeerAS: vp.AS,
							Type: bgp.Withdraw, Prefix: sub,
						})
					}
				})
			}
		}
	}
}

// leakPath composes the forged leak route: the VP's real path to the first
// provider, the leaking stub, then the second provider's real path onward
// to the destination. Compositions that revisit an AS are discarded.
func (sc *Scenario) leakPath(vpAS, prov1, leaker, prov2, dest bgp.ASN) bgp.Path {
	head := sc.sim.R.ASPath(vpAS, prov1)
	tail := sc.sim.R.ASPath(prov2, dest)
	if head == nil || tail == nil {
		return nil
	}
	p := head.Clone()
	p = append(p, leaker)
	p = append(p, tail...)
	if p.HasLoop() {
		return nil
	}
	return p
}

func (sc *Scenario) buildLeaks(stubs []bgp.ASN) {
	if !sc.pack.RouteLeaks {
		return
	}
	providersOf := func(as bgp.ASN) []bgp.ASN {
		a := sc.sim.T.ASes[as]
		var out []bgp.ASN
		for nb, rel := range a.Rel {
			if rel == RelCustomer { // as is nb's customer
				out = append(out, nb)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	// One extra episode: the last one self-heals inside its window and is
	// labeled benign — the classifier must stay silent on it.
	for e := 0; e <= sc.pack.Episodes; e++ {
		selfHeal := e == sc.pack.Episodes
		leaker := sc.nextStubWhere(stubs, func(as bgp.ASN) bool {
			return len(providersOf(as)) >= 2
		})
		provs := providersOf(leaker)
		if len(provs) < 2 {
			continue
		}
		prov1, prov2 := provs[0], provs[1]
		dest := sc.nextStubWhere(stubs, func(as bgp.ASN) bool {
			return as != leaker && sc.sim.R.ASPath(prov2, as) != nil
		})
		prefix := sc.sim.T.ASes[dest].Prefixes[0]
		t := sc.slotAt(3, e)
		if t < 0 {
			continue
		}
		var hold int64
		if selfHeal {
			// Announce just past a window boundary, retract well before the
			// close: the leak is never the current route at any close.
			t = sc.alignWindow(t) + sc.windowSec/4
			hold = sc.windowSec / 4
		} else {
			hold = sc.windowSec + sc.windowSec/2
		}
		vps := sc.vpSubset(2, e%2, 1+len(sc.sim.vps)/2)
		sc.truths = append(sc.truths, events.Truth{
			Class: events.RouteLeak, Start: t, End: t + hold,
			Prefix: prefix, AS: leaker, Benign: selfHeal,
			Detail: "provider-stub-provider leak",
		})
		sc.addAction(t, func(at int64) {
			for _, vp := range vps {
				p := sc.leakPath(vp.AS, prov1, leaker, prov2, dest)
				if p == nil {
					continue
				}
				sc.sim.publish(bgp.Update{
					Time: at, PeerIP: vp.IP, PeerAS: vp.AS, Type: bgp.Announce,
					Prefix: prefix, ASPath: p,
				})
			}
		})
		sc.addAction(t+hold, func(at int64) { sc.healPrefix(vps, prefix, dest, at) })
	}
}

func (sc *Scenario) buildBlackholes(stubs []bgp.ASN) {
	if !sc.pack.Blackholes {
		return
	}
	for e := 0; e < sc.pack.Episodes; e++ {
		victim := sc.nextStub(stubs)
		prefix := sc.sim.T.ASes[victim].Prefixes[0]
		t := sc.slotAt(4, e)
		if t < 0 {
			continue
		}
		hold := sc.windowSec
		vps := sc.vpSubset(2, e%2, 6)
		sc.truths = append(sc.truths, events.Truth{
			Class: events.Blackhole, Start: t, End: t + hold,
			Prefix: prefix, AS: victim,
			Detail: "RFC7999 blackhole",
		})
		sc.addAction(t, func(at int64) {
			for _, vp := range vps {
				path, comms, med, ok := sc.sim.R.RouteAttrs(vp.AS, victim)
				if !ok {
					continue
				}
				cs := comms.Clone()
				cs = append(cs, events.BlackholeCommunity)
				sc.sim.publish(bgp.Update{
					Time: at, PeerIP: vp.IP, PeerAS: vp.AS, Type: bgp.Announce,
					Prefix: prefix, ASPath: path.Clone(), Communities: cs, MED: med,
				})
			}
		})
		sc.addAction(t+hold, func(at int64) { sc.healPrefix(vps, prefix, victim, at) })
	}
}

func (sc *Scenario) buildArtifacts(stubs []bgp.ASN) {
	if !sc.pack.Artifacts {
		return
	}
	classes := []events.Class{events.TraceLoop, events.TraceCycle, events.TraceDiamond}
	for e := 0; e < sc.pack.Episodes; e++ {
		for ci, cls := range classes {
			srcAS := sc.nextStub(stubs)
			dstAS := sc.nextStubWhere(stubs, func(as bgp.ASN) bool { return as != srcAS })
			src := sc.sim.T.HostIP(srcAS, 40+e*len(classes)+ci)
			dst := sc.sim.T.HostIP(dstAS, 80+e*len(classes)+ci)
			t := sc.slotAt(5, e*len(classes)+ci)
			if t < 0 {
				continue
			}
			ws := sc.alignWindow(t)
			sc.artifacts[ws] = append(sc.artifacts[ws], artifactSpec{class: cls, src: src, dst: dst, truthIdx: len(sc.truths)})
			sc.truths = append(sc.truths, events.Truth{
				Class: cls, Start: ws, End: ws + sc.windowSec,
				Key:    traceroute.Key{Src: src, Dst: dst},
				Detail: "fabricated per-flow artifact",
			})
		}
	}
}

func (sc *Scenario) buildDiurnal(stubs []bgp.ASN) {
	if !sc.pack.Diurnal {
		return
	}
	victim := sc.nextStub(stubs)
	prefix := sc.sim.T.ASes[victim].Prefixes[0]
	offset := int64(43200) + sc.windowSec/3 // midday, mid-window
	vps := sc.vpSubset(4, 0, 4)
	days := 0
	for day := int64(0); day*86400+offset < sc.duration; day++ {
		sc.addAction(day*86400+offset, func(at int64) {
			sc.healPrefix(vps, prefix, victim, at)
		})
		days++
	}
	if days >= 3 {
		// Detectable from the third consecutive day's slot onward.
		sc.truths = append(sc.truths, events.Truth{
			Class: events.Diurnal, Start: 2*86400 + offset, End: sc.duration,
			Prefix: prefix,
			Detail: "daily re-announcement flap",
		})
	}
}

// Advance publishes every scheduled emission with from <= t < to through
// the simulator's subscriber hook. Callers interleave it with Sim.Step and
// merge the captured updates in time order (scenario emissions carry exact
// timestamps but are published grouped, after the step's benign updates).
func (sc *Scenario) Advance(from, to int64) {
	for _, a := range sc.actions {
		if a.at >= from && a.at < to {
			a.run(a.at)
		}
	}
}

// WindowTraces fabricates the artifact traceroutes scheduled for the
// window starting at ws: a forwarding loop (adjacent repeat), a routing
// cycle (non-adjacent repeat), or a per-flow diamond (two divergent
// same-pair traces). Returned traces are derived from the simulator's real
// data plane at mid-window and are deterministic.
func (sc *Scenario) WindowTraces(probeBase int, ws int64) []*traceroute.Traceroute {
	specs := sc.artifacts[ws]
	if len(specs) == 0 {
		return nil
	}
	var out []*traceroute.Traceroute
	for i, spec := range specs {
		when := ws + sc.windowSec/2 + int64(i)
		base := sc.sim.Traceroute(probeBase+i, spec.src, spec.dst, when)
		n := len(out)
		switch spec.class {
		case events.TraceLoop:
			if tr := insertRepeat(base, 1); tr != nil {
				out = append(out, tr)
			}
		case events.TraceCycle:
			if tr := insertRepeat(base, 2); tr != nil {
				out = append(out, tr)
			}
		case events.TraceDiamond:
			a, b := diamondPair(base)
			if a != nil && b != nil {
				out = append(out, a, b)
			}
		}
		if len(out) == n {
			// The data plane at `when` could not carry this artifact (the
			// destination went unreachable, say): nothing was injected, so
			// the label must not demand a detection.
			sc.retracted[spec.truthIdx] = true
		}
	}
	return out
}

// insertRepeat clones tr with a copy of a responsive mid hop reinserted
// gap hops later: gap 1 yields an adjacent repeat (loop), gap 2 a
// non-adjacent one (cycle). Returns nil when the trace is too short.
func insertRepeat(tr *traceroute.Traceroute, gap int) *traceroute.Traceroute {
	if tr == nil {
		return nil
	}
	idx := -1
	for i := 1; i+gap < len(tr.Hops); i++ {
		if tr.Hops[i].Responsive() {
			ok := true
			for j := i + 1; j <= i+gap && ok; j++ {
				if tr.Hops[j].IP == tr.Hops[i].IP {
					ok = false
				}
			}
			if ok {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		return nil
	}
	cl := tr.Clone()
	at := idx + gap
	dup := cl.Hops[idx]
	dup.TTL = cl.Hops[at-1].TTL + 1
	cl.Hops = append(cl.Hops[:at], append([]traceroute.Hop{dup}, cl.Hops[at:]...)...)
	for i := at + 1; i < len(cl.Hops); i++ {
		cl.Hops[i].TTL++
	}
	return cl
}

// diamondPair clones tr twice with two adjacent responsive mid hops
// swapped in the second copy, producing divergent same-pair hop sequences
// with no repeated addresses.
func diamondPair(tr *traceroute.Traceroute) (*traceroute.Traceroute, *traceroute.Traceroute) {
	if tr == nil {
		return nil, nil
	}
	for i := 1; i+2 < len(tr.Hops); i++ {
		a, b := tr.Hops[i], tr.Hops[i+1]
		if a.Responsive() && b.Responsive() && a.IP != b.IP {
			first := tr.Clone()
			second := tr.Clone()
			second.Hops[i], second.Hops[i+1] = second.Hops[i+1], second.Hops[i]
			second.Hops[i].TTL, second.Hops[i+1].TTL = first.Hops[i].TTL, first.Hops[i+1].TTL
			second.Time++
			return first, second
		}
	}
	return nil, nil
}

// Truths returns the ground-truth labels for every scheduled episode,
// including benign look-alikes, in construction order. Artifact labels
// whose injection was retracted at emission time (WindowTraces found the
// data plane unable to carry them) are omitted, so call Truths after the
// run for exact labels; before the run it returns the full schedule.
func (sc *Scenario) Truths() []events.Truth {
	out := make([]events.Truth, 0, len(sc.truths))
	for i, t := range sc.truths {
		if sc.retracted[i] {
			continue
		}
		out = append(out, t)
	}
	return out
}
