package netsim_test

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/events"
	"rrr/internal/experiments"
	"rrr/internal/faultfeed"
	"rrr/internal/netsim"
	"rrr/internal/traceroute"
)

func scenarioScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Days = 2
	sc.PublicPerWindow = 10
	pack := netsim.FullPack()
	sc.Scenario = &pack
	return sc
}

// drainEnv consumes a daemon environment's feeds to EOF, rendering every
// update and trace to a canonical text form, and returns the rendered
// streams plus the encoded ground-truth labels. Sources may be wrapped
// (faultfeed) before draining.
func drainEnv(t *testing.T, env *experiments.DaemonEnv, ff *faultfeed.Config) (string, string, []byte) {
	t.Helper()
	var usrc interface {
		Read() (bgp.Update, error)
	} = env.Updates
	var tsrc interface {
		Read() (*traceroute.Traceroute, error)
	} = env.Traces
	if ff != nil {
		usrc = faultfeed.Updates(usrc, *ff)
		tsrc = faultfeed.Traces(tsrc, *ff)
	}

	var ub strings.Builder
	nu := 0
	for {
		u, err := usrc.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("update read: %v", err)
		}
		fmt.Fprintf(&ub, "%d %d %d %v %s %v %v %d\n",
			u.Time, u.PeerIP, u.PeerAS, u.Type, u.Prefix, u.ASPath, u.Communities, u.MED)
		nu++
	}
	var tb strings.Builder
	nt := 0
	for {
		tr, err := tsrc.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("trace read: %v", err)
		}
		fmt.Fprintf(&tb, "%d %d %v", tr.Time, tr.ProbeID, tr.Key())
		for _, h := range tr.Hops {
			fmt.Fprintf(&tb, " %d/%d/%.3f", h.TTL, h.IP, h.RTT)
		}
		tb.WriteByte('\n')
		nt++
	}
	if nu < 300 {
		t.Fatalf("vacuous run: only %d updates", nu)
	}
	if nt < 50 {
		t.Fatalf("vacuous run: only %d traces", nt)
	}
	var truths []byte
	if env.Scen != nil {
		labels := env.Scen.Truths()
		if len(labels) < 8 {
			t.Fatalf("vacuous run: only %d ground-truth labels", len(labels))
		}
		truths = events.EncodeTruths(labels)
	}
	return ub.String(), tb.String(), truths
}

// TestScenarioDeterminism pins the scenario contract: the same scale, sim
// seed, and pack produce byte-identical update streams, trace streams, and
// encoded ground-truth labels across independent runs.
func TestScenarioDeterminism(t *testing.T) {
	sc := scenarioScale()
	u1, t1, g1 := drainEnv(t, experiments.NewDaemonEnv(sc, 0), nil)
	u2, t2, g2 := drainEnv(t, experiments.NewDaemonEnv(sc, 0), nil)
	if u1 != u2 {
		t.Fatal("update streams differ across identical runs")
	}
	if t1 != t2 {
		t.Fatal("trace streams differ across identical runs")
	}
	if !bytes.Equal(g1, g2) {
		t.Fatal("encoded ground-truth labels differ across identical runs")
	}
}

// TestScenarioDeterminismUnderFaultfeed repeats the regression with the
// feeds wrapped in a duplicating, reordering fault injector: the injected
// schedule is itself seeded, so two identically-configured faulty runs
// must still match byte for byte.
func TestScenarioDeterminismUnderFaultfeed(t *testing.T) {
	sc := scenarioScale()
	ff := &faultfeed.Config{Seed: 99, DupProb: 0.05, ReorderProb: 0.05, ReorderDepth: 4}
	u1, t1, g1 := drainEnv(t, experiments.NewDaemonEnv(sc, 0), ff)
	u2, t2, g2 := drainEnv(t, experiments.NewDaemonEnv(sc, 0), ff)
	if u1 != u2 {
		t.Fatal("faulty update streams differ across identical runs")
	}
	if t1 != t2 {
		t.Fatal("faulty trace streams differ across identical runs")
	}
	if !bytes.Equal(g1, g2) {
		t.Fatal("ground-truth labels differ across identical faulty runs")
	}
}

// TestScenarioPackLeavesBenignStreamIntact verifies the overlay property
// the accuracy harness relies on: enabling a pack adds forged emissions
// but never perturbs the benign substream (scenarios have their own RNG
// and never consume the simulator's).
func TestScenarioPackLeavesBenignStreamIntact(t *testing.T) {
	off := scenarioScale()
	off.Scenario = nil
	on := scenarioScale()

	uOff, _, _ := drainEnv(t, experiments.NewDaemonEnv(off, 0), nil)
	uOn, _, _ := drainEnv(t, experiments.NewDaemonEnv(on, 0), nil)

	benign := strings.Split(strings.TrimSuffix(uOff, "\n"), "\n")
	withPack := strings.Split(strings.TrimSuffix(uOn, "\n"), "\n")
	if len(withPack) <= len(benign) {
		t.Fatalf("pack added no updates: %d vs %d", len(withPack), len(benign))
	}
	set := make(map[string]int, len(withPack))
	for _, line := range withPack {
		set[line]++
	}
	for i, line := range benign {
		if set[line] == 0 {
			t.Fatalf("benign update %d missing from pack-enabled stream: %s", i, line)
		}
		set[line]--
	}
}
