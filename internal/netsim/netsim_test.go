package netsim

import (
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
)

func newTestSim(t *testing.T) *Sim {
	t.Helper()
	return New(TestConfig())
}

func TestTopologyGeneration(t *testing.T) {
	s := newTestSim(t)
	cfg := TestConfig()
	want := cfg.NumTier1 + cfg.NumTier2 + cfg.NumTier3
	if len(s.T.ASList) != want {
		t.Fatalf("generated %d ASes; want %d", len(s.T.ASList), want)
	}
	for _, asn := range s.T.ASList {
		a := s.T.ASes[asn]
		if len(a.PoPs) == 0 {
			t.Fatalf("%s has no PoPs", asn)
		}
		if len(a.Prefixes) == 0 {
			t.Fatalf("%s originates no prefixes", asn)
		}
		if a.Tier != 1 && len(a.Neighbors) == 0 {
			t.Fatalf("%s (tier %d) has no neighbors", asn, a.Tier)
		}
	}
	if len(s.T.IXPs) != cfg.NumIXPs+1 {
		t.Fatalf("got %d IXPs; want %d", len(s.T.IXPs)-1, cfg.NumIXPs)
	}
}

func TestDeterminism(t *testing.T) {
	s1 := New(TestConfig())
	s2 := New(TestConfig())
	if len(s1.T.Links) != len(s2.T.Links) || len(s1.T.Routers) != len(s2.T.Routers) {
		t.Fatal("same seed should generate identical topology sizes")
	}
	src := s1.T.HostIP(s1.StubASes()[0], 1)
	dst := s1.T.HostIP(s1.StubASes()[5], 1)
	tr1 := s1.Traceroute(1, src, dst, 1000)
	tr2 := s2.Traceroute(1, src, dst, 1000)
	if tr1.String() != tr2.String() {
		t.Fatalf("same seed should give identical traceroutes:\n%s\n%s", tr1, tr2)
	}
}

func TestFullReachability(t *testing.T) {
	s := newTestSim(t)
	missing := 0
	for _, a := range s.T.ASList {
		for _, b := range s.T.ASList {
			if a == b {
				continue
			}
			if s.R.ASPath(a, b) == nil {
				missing++
			}
		}
	}
	if missing != 0 {
		t.Fatalf("%d AS pairs unreachable in pristine topology", missing)
	}
}

// Valley-free: after traversing a peer or provider→customer edge, the path
// must only descend through customer edges.
func TestValleyFreeRouting(t *testing.T) {
	s := newTestSim(t)
	for _, a := range s.T.ASList[:20] {
		for _, b := range s.T.ASList[len(s.T.ASList)-20:] {
			if a == b {
				continue
			}
			path := s.R.ASPath(a, b)
			if path == nil {
				continue
			}
			descending := false
			for i := 1; i < len(path); i++ {
				rel, ok := s.T.RelBetween(path[i-1], path[i])
				if !ok {
					t.Fatalf("path %v uses non-adjacent hop %s-%s", path, path[i-1], path[i])
				}
				switch rel {
				case RelCustomer: // going up to a provider
					if descending {
						t.Fatalf("valley in path %v at hop %d", path, i)
					}
				case RelPeer, RelProvider:
					if descending && rel == RelPeer {
						t.Fatalf("peer edge after descent in path %v at hop %d", path, i)
					}
					descending = true
				}
			}
		}
	}
}

func TestTracerouteMatchesControlPlane(t *testing.T) {
	s := newTestSim(t)
	stubs := s.StubASes()
	m := s.Mapper()
	checked := 0
	for i := 0; i < 10; i++ {
		srcAS, dstAS := stubs[i], stubs[len(stubs)-1-i]
		if srcAS == dstAS {
			continue
		}
		src := s.T.HostIP(srcAS, 1)
		dst := s.T.HostIP(dstAS, 1)
		tr := s.Traceroute(1, src, dst, 1000)
		if !tr.Reached {
			t.Fatalf("traceroute %s did not reach", tr.Key())
		}
		want := s.R.ASPath(srcAS, dstAS)
		// Make all hops responsive for exact comparison: patch using the
		// ground-truth mapper is unnecessary; instead compare the AS
		// sequence of responsive hops, which must be a subsequence of the
		// control-plane path with no extra ASes.
		hops, err := traceroute.ASPath(tr, m)
		if err != nil {
			t.Fatalf("ASPath: %v", err)
		}
		got := traceroute.ASNs(hops)
		gi := 0
		for _, as := range got {
			for gi < len(want) && want[gi] != as {
				gi++
			}
			if gi == len(want) {
				t.Fatalf("traceroute AS %s not in control path %v (got %v)", as, want, got)
			}
		}
		if got[len(got)-1] != dstAS {
			t.Fatalf("traceroute should end in dst AS: %v", got)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no pairs checked")
	}
}

func TestTracerouteBordersGroundTruth(t *testing.T) {
	s := newTestSim(t)
	stubs := s.StubASes()
	src := s.T.HostIP(stubs[0], 7)
	dst := s.T.HostIP(stubs[len(stubs)-1], 7)
	bcs := s.Borders(src, dst)
	if len(bcs) == 0 {
		t.Fatal("no border crossings for inter-AS flow")
	}
	for _, bc := range bcs {
		if s.T.Routers[bc.Egress].AS != bc.FromAS {
			t.Errorf("egress router AS mismatch: %+v", bc)
		}
		if s.T.Routers[bc.Ingress].AS != bc.ToAS {
			t.Errorf("ingress router AS mismatch: %+v", bc)
		}
	}
}

func TestEgressShiftChangesBorderNotASPath(t *testing.T) {
	s := newTestSim(t)
	pairs := s.multiLinkPairs()
	if len(pairs) == 0 {
		t.Skip("no multi-link pairs in test topology")
	}
	// Find a flow crossing a multi-link pair.
	stubs := s.StubASes()
	var src, dst uint32
	var pk pairKey
	found := false
	for _, p := range pairs {
		if s.R.lbPairs[p] {
			continue
		}
		for i := 0; i < len(stubs) && !found; i++ {
			for j := 0; j < len(stubs) && !found; j++ {
				if i == j {
					continue
				}
				path := s.R.ASPath(stubs[i], stubs[j])
				if pathCrossesPair(path, p) {
					src = s.T.HostIP(stubs[i], 1)
					dst = s.T.HostIP(stubs[j], 1)
					pk = p
					found = true
				}
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no stub flow crosses a multi-link pair")
	}
	pathBefore := s.R.ASPath(mustOrigin(t, s, src), mustOrigin(t, s, dst))
	bordersBefore := s.Borders(src, dst)

	var updates []bgp.Update
	s.OnUpdate(func(u bgp.Update) { updates = append(updates, u) })
	s.Inject(Event{Kind: EvEgressShift, Time: 100, A: pk.lo, B: pk.hi})

	pathAfter := s.R.ASPath(mustOrigin(t, s, src), mustOrigin(t, s, dst))
	if !pathBefore.Equal(pathAfter) {
		t.Fatal("egress shift must not change the AS path")
	}
	bordersAfter := s.Borders(src, dst)
	changed := false
	for i := range bordersBefore {
		if i < len(bordersAfter) && bordersBefore[i].Link != bordersAfter[i].Link {
			changed = true
		}
	}
	if !changed {
		t.Fatal("egress shift should change a border link on the crossing flow")
	}
	if len(updates) == 0 {
		t.Fatal("egress shift should emit BGP updates from crossing VPs")
	}
	// All updates keep their AS path; RIB classifies them as duplicates or
	// community changes, never AS-path changes.
	rib := bgp.NewRIB()
	// Prime RIB with pre-event state: replay initial announcements.
	// (Simpler: apply the updates and check none are path changes versus
	// a fresh RIB primed by the first of each.)
	kinds := make(map[bgp.ChangeKind]int)
	for _, u := range updates {
		c := rib.Apply(u)
		kinds[c.Kind]++
	}
	if kinds[bgp.ChangeASPath] != 0 {
		t.Errorf("egress shift produced AS-path changes: %v", kinds)
	}
}

func mustOrigin(t *testing.T, s *Sim, ip uint32) bgp.ASN {
	t.Helper()
	as, ok := s.T.OriginAS(ip)
	if !ok {
		t.Fatalf("no origin for %d", ip)
	}
	return as
}

func TestLinkDownOnlyLinkChangesASPaths(t *testing.T) {
	s := newTestSim(t)
	// Find a single-link pair on some stub-to-stub path.
	stubs := s.StubASes()
	var lid LinkID
	var src, dst uint32
	found := false
	for i := 1; i < len(s.T.Links) && !found; i++ {
		l := s.T.Links[i]
		if len(s.R.upLinks(mkPair(l.AAS, l.BAS))) != 1 {
			continue
		}
		for a := 0; a < 10 && !found; a++ {
			for b := len(stubs) - 10; b < len(stubs) && !found; b++ {
				if stubs[a] == stubs[b] {
					continue
				}
				path := s.R.ASPath(stubs[a], stubs[b])
				if pathCrossesPair(path, mkPair(l.AAS, l.BAS)) {
					lid = l.ID
					src, dst = s.T.HostIP(stubs[a], 1), s.T.HostIP(stubs[b], 1)
					found = true
				}
			}
		}
	}
	if !found {
		t.Skip("no single-link pair on a stub path")
	}
	srcAS, dstAS := mustOrigin(t, s, src), mustOrigin(t, s, dst)
	before := s.R.ASPath(srcAS, dstAS)

	var updates []bgp.Update
	s.OnUpdate(func(u bgp.Update) { updates = append(updates, u) })
	s.Inject(Event{Kind: EvLinkDown, Time: 100, Link: lid})

	after := s.R.ASPath(srcAS, dstAS)
	if before.Equal(after) {
		t.Fatal("failing the only link on the path should change the AS path")
	}
	if len(updates) == 0 {
		t.Fatal("link failure should emit updates")
	}
	// Repair restores connectivity.
	s.Inject(Event{Kind: EvLinkUp, Time: 200, Link: lid})
	restored := s.R.ASPath(srcAS, dstAS)
	if restored == nil {
		t.Fatal("path should exist after repair")
	}
}

func TestIntraRerouteKeepsBorders(t *testing.T) {
	s := newTestSim(t)
	// Pick a tier-1 AS (multi-PoP) on many paths.
	asn := s.T.ASList[0]
	stubs := s.StubASes()
	src := s.T.HostIP(stubs[0], 3)
	dst := s.T.HostIP(stubs[len(stubs)-1], 3)
	before := s.Borders(src, dst)
	var updates []bgp.Update
	s.OnUpdate(func(u bgp.Update) { updates = append(updates, u) })
	for i := 0; i < 5; i++ {
		s.Inject(Event{Kind: EvIntraReroute, Time: int64(100 + i), AS: asn})
	}
	after := s.Borders(src, dst)
	if len(before) != len(after) {
		t.Fatalf("intra reroute changed border count: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i].Link != after[i].Link {
			t.Fatalf("intra reroute changed border link %d", i)
		}
	}
	// Updates (if the AS is on VP paths) must all be duplicates.
	rib := bgp.NewRIB()
	seen := make(map[string]bool)
	for _, u := range updates {
		c := rib.Apply(u)
		key := u.Prefix.String() + bgp.VPKey{PeerIP: u.PeerIP, PeerAS: u.PeerAS}.String()
		if seen[key] && c.Kind != bgp.ChangeDuplicate {
			t.Fatalf("intra reroute produced %v update", c.Kind)
		}
		seen[key] = true
	}
}

func TestPolicyNoiseOnlyChangesCommunities(t *testing.T) {
	s := newTestSim(t)
	asn := s.T.ASList[0] // tier-1: on many VP paths
	var updates []bgp.Update
	s.OnUpdate(func(u bgp.Update) { updates = append(updates, u) })
	s.Inject(Event{Kind: EvPolicyNoise, Time: 100, AS: asn})
	if len(updates) == 0 {
		t.Fatal("policy noise on a tier-1 should emit updates")
	}
	// At least one VP must see the new policy community; VPs behind
	// community-stripping ASes legitimately see it removed.
	carried := 0
	for _, u := range updates {
		for _, c := range u.Communities {
			if c.AS() == asn && c.Value() >= 7000 && c.Value() < 7100 {
				carried++
				break
			}
		}
	}
	if carried == 0 {
		t.Fatalf("no update carries the policy community of %s", asn)
	}
}

func TestIXPJoinAddsMemberAndLinks(t *testing.T) {
	s := newTestSim(t)
	ixp := IXPID(1)
	memBefore := len(s.T.IXPs[ixp].MemberIPs)
	// Find a non-member tier-2/3 AS.
	var joiner bgp.ASN
	for _, asn := range s.T.ASList {
		if s.T.ASes[asn].Tier == 1 {
			continue
		}
		if _, ok := s.T.IXPs[ixp].MemberIPs[asn]; !ok {
			joiner = asn
			break
		}
	}
	if joiner == 0 {
		t.Skip("everyone is already a member")
	}
	linksBefore := len(s.T.Links)
	s.Inject(Event{Kind: EvIXPJoin, Time: 100, AS: joiner, IXP: ixp})
	if len(s.T.IXPs[ixp].MemberIPs) <= memBefore {
		t.Fatal("membership did not grow")
	}
	if _, ok := s.T.IXPs[ixp].MemberIPs[joiner]; !ok {
		t.Fatal("joiner not a member")
	}
	if len(s.T.Links) == linksBefore {
		t.Log("join added LAN presence without sessions (allowed)")
	}
}

func TestMembershipSnapshotOmission(t *testing.T) {
	s := newTestSim(t)
	full := s.MembershipSnapshot(0)
	partial := s.MembershipSnapshot(0.5)
	fullN, partN := 0, 0
	for id := range full {
		fullN += len(full[id])
		partN += len(partial[id])
	}
	if fullN == 0 {
		t.Skip("no IXP members generated")
	}
	if partN >= fullN {
		t.Fatalf("omission did not reduce membership: %d >= %d", partN, fullN)
	}
}

func TestMapperResolvesInfrastructure(t *testing.T) {
	s := newTestSim(t)
	m := s.Mapper()
	for _, r := range s.T.Routers[1:10] {
		as, ok := m.ASOf(r.Loopback)
		if !ok || as != r.AS {
			t.Fatalf("loopback %s maps to %v,%v; want %s", trieFormat(r.Loopback), as, ok, r.AS)
		}
	}
	// IXP LAN addresses are flagged as IXP, not mapped to an AS.
	for i := 1; i < len(s.T.IXPs); i++ {
		for _, ip := range s.T.IXPs[i].MemberIPs {
			if _, ok := m.ASOf(ip); ok {
				t.Fatal("IXP LAN address should not map to an AS")
			}
			if id, ok := m.IXPOf(ip); !ok || id != int(s.T.IXPs[i].ID) {
				t.Fatalf("IXP LAN address IXPOf = %d,%v", id, ok)
			}
			break
		}
	}
}

func trieFormat(ip uint32) string {
	return bgp.VPKey{PeerIP: ip}.String()
}

func TestPing(t *testing.T) {
	s := newTestSim(t)
	r := s.T.Routers[1]
	city := s.T.CityOfRouter(r.ID)
	rtt, ok := s.Ping(city, r.Loopback, 100)
	if r.ResponseProb >= 1 && !ok {
		t.Fatal("fully responsive router should answer ping")
	}
	if ok && rtt <= 0 {
		t.Fatalf("rtt = %f", rtt)
	}
	farCity := CityID((int(city) + 5) % len(s.T.Cities))
	rtt2, ok2 := s.Ping(farCity, r.Loopback, 100)
	if ok && ok2 && rtt2 < rtt {
		t.Fatalf("farther city should not have smaller RTT: %f < %f", rtt2, rtt)
	}
	if _, ok := s.Ping(city, 0xdeadbeef, 100); ok {
		t.Fatal("unknown IP should not respond")
	}
}

func TestStepAppliesEventsDeterministically(t *testing.T) {
	run := func() []Event {
		s := New(TestConfig())
		for i := 0; i < 10; i++ {
			s.Step(900)
		}
		return s.Log
	}
	l1, l2 := run(), run()
	if len(l1) != len(l2) {
		t.Fatalf("event logs differ in length: %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, l1[i], l2[i])
		}
	}
	if int64(0) != 0 { // silence unused imports safeguard
		t.Fatal("unreachable")
	}
}

func TestInitialUpdatesPopulateRIB(t *testing.T) {
	s := newTestSim(t)
	rib := bgp.NewRIB()
	ups := s.InitialUpdates(0)
	if len(ups) == 0 {
		t.Fatal("no initial updates")
	}
	for _, u := range ups {
		if c := rib.Apply(u); c.Kind != bgp.ChangeNew {
			t.Fatalf("initial dump should be all-new, got %v", c.Kind)
		}
	}
	if got := len(rib.VPs()); got != len(s.vps) {
		t.Fatalf("RIB has %d VPs; want %d", got, len(s.vps))
	}
}

func TestInterdomainLBFlowDependence(t *testing.T) {
	s := newTestSim(t)
	lb := s.InterdomainLBPairs()
	if len(lb) == 0 {
		t.Skip("no interdomain LB pairs drawn")
	}
	// Two different sources crossing the pair may use different links.
	pk := mkPair(lb[0][0], lb[0][1])
	l1, _ := s.R.ActiveLink(pk.lo, pk.hi, 0)
	l2, _ := s.R.ActiveLink(pk.lo, pk.hi, 1)
	ups := s.R.upLinks(pk)
	if len(ups) >= 2 && l1 == l2 {
		t.Fatal("flow hashes 0 and 1 should select different parallel links")
	}
}

func BenchmarkRecomputeAll(b *testing.B) {
	s := New(TestConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.R.RecomputeAll()
	}
}

func BenchmarkTraceroute(b *testing.B) {
	s := New(TestConfig())
	stubs := s.StubASes()
	src := s.T.HostIP(stubs[0], 1)
	dst := s.T.HostIP(stubs[len(stubs)-1], 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Traceroute(1, src, dst, int64(i))
	}
}

// Incremental updates applied to a RIB must converge to the same table a
// fresh full dump would produce, across arbitrary event sequences. This is
// the consistency contract the engine's RIB view depends on.
func TestRIBReplayMatchesFreshDump(t *testing.T) {
	s := newTestSim(t)
	rib := bgp.NewRIB()
	for _, u := range s.InitialUpdates(0) {
		rib.Apply(u)
	}
	s.OnUpdate(func(u bgp.Update) { rib.Apply(u) })
	for i := 0; i < 30; i++ {
		s.Step(900)
	}
	fresh := bgp.NewRIB()
	for _, u := range s.InitialUpdates(s.Now()) {
		fresh.Apply(u)
	}
	// Every route in the fresh dump must match the replayed table.
	mismatch := 0
	for _, vp := range s.VPs() {
		for _, d := range s.T.ASList {
			for _, p := range s.T.ASes[d].Prefixes {
				want, wok := fresh.Route(vp.Key(), p)
				got, gok := rib.Route(vp.Key(), p)
				if wok != gok {
					mismatch++
					continue
				}
				if !wok {
					continue
				}
				if !want.ASPath.Equal(got.ASPath) || !want.Communities.Equal(got.Communities) {
					mismatch++
				}
			}
		}
	}
	if mismatch != 0 {
		t.Fatalf("%d (vp, prefix) routes diverge between replay and fresh dump", mismatch)
	}
}

// Repairing every failed link and reverting overrides must restore full
// reachability (no permanent damage from event sequences).
func TestReachabilityRestoredAfterRepairs(t *testing.T) {
	s := newTestSim(t)
	for i := 0; i < 40; i++ {
		s.Step(900)
	}
	// Force-repair everything and clear overrides.
	for lid := 1; lid < len(s.T.Links); lid++ {
		if !s.T.Links[lid].Up {
			s.Inject(Event{Kind: EvLinkUp, Time: s.Now(), Link: LinkID(lid)})
		}
	}
	missing := 0
	for _, a := range s.T.ASList {
		for _, b := range s.T.ASList {
			if a != b && s.R.ASPath(a, b) == nil {
				missing++
			}
		}
	}
	if missing != 0 {
		t.Fatalf("%d pairs unreachable after repairing all links", missing)
	}
}

func TestHostIPWithinOriginatedPrefix(t *testing.T) {
	s := newTestSim(t)
	for _, asn := range s.T.ASList {
		for i := 0; i < 5; i++ {
			ip := s.T.HostIP(asn, i)
			got, ok := s.T.OriginAS(ip)
			if !ok || got != asn {
				t.Fatalf("HostIP(%s,%d)=%s maps to %v,%v", asn, i, trieFormat(ip), got, ok)
			}
		}
	}
	// Host addresses never collide with infrastructure addresses.
	for i := 1; i < len(s.T.Routers); i++ {
		r := s.T.Routers[i]
		if r.Loopback&0xC000 == 0xC000 && r.Loopback&0xFFFF0000 != 0 {
			if _, isHostRange := s.T.OriginAS(r.Loopback); isHostRange &&
				r.Loopback&0x0000C000 == 0x0000C000 {
				t.Fatalf("router loopback %s inside host range", trieFormat(r.Loopback))
			}
		}
	}
}

func TestGeoCommunityRoundTrip(t *testing.T) {
	for _, pop := range []PoPID{0, 7, 1499} {
		v := geoCommunityValue(pop)
		got, ok := GeoCommunityPoP(v)
		if !ok || got != pop {
			t.Fatalf("geo community round trip %d -> %d,%v", pop, got, ok)
		}
	}
	if _, ok := GeoCommunityPoP(100); ok {
		t.Fatal("non-geo value decoded")
	}
}

func TestIXPMemberForIP(t *testing.T) {
	s := newTestSim(t)
	found := false
	for i := 1; i < len(s.T.IXPs); i++ {
		for member, ip := range s.T.IXPs[i].MemberIPs {
			got, ok := s.T.IXPMemberForIP(ip)
			if !ok || got != member {
				t.Fatalf("member lookup %s -> %v,%v", member, got, ok)
			}
			found = true
		}
	}
	if !found {
		t.Skip("no IXP members generated")
	}
	if _, ok := s.T.IXPMemberForIP(12345); ok {
		t.Fatal("bogus IP resolved to member")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvLinkDown, EvLinkUp, EvEgressShift, EvTiebreakFlip,
		EvIntraReroute, EvPolicyNoise, EvIXPJoin}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Fatalf("bad or duplicate kind string %q", s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "unknown" {
		t.Fatal("unknown kind string")
	}
}

func TestRelationshipInvertInvolution(t *testing.T) {
	for _, r := range []Relationship{RelCustomer, RelProvider, RelPeer} {
		if r.Invert().Invert() != r {
			t.Fatalf("Invert not an involution for %v", r)
		}
	}
	if RelCustomer.Invert() != RelProvider {
		t.Fatal("customer inverse")
	}
	if RelPeer.Invert() != RelPeer {
		t.Fatal("peer inverse")
	}
}

func TestPopPathEndpoints(t *testing.T) {
	s := newTestSim(t)
	// Pick a multi-PoP AS and verify popPath endpoints and connectivity.
	for _, asn := range s.T.ASList {
		a := s.T.ASes[asn]
		if len(a.PoPs) < 3 {
			continue
		}
		for i := 0; i < len(a.PoPs); i++ {
			for j := 0; j < len(a.PoPs); j++ {
				p := s.popPath(a, i, j)
				if p[0] != i || p[len(p)-1] != j {
					t.Fatalf("popPath(%d,%d) endpoints = %v", i, j, p)
				}
				if i == j && len(p) != 1 {
					t.Fatalf("self path = %v", p)
				}
			}
		}
		break
	}
}

func TestIntraReroutePerturbationToggles(t *testing.T) {
	s := newTestSim(t)
	var asn bgp.ASN
	for _, a := range s.T.ASList {
		if len(s.T.ASes[a].intra) > 0 {
			asn = a
			break
		}
	}
	if asn == 0 {
		t.Skip("no multi-PoP AS")
	}
	s.Inject(Event{Kind: EvIntraReroute, Time: 1, AS: asn})
	if len(s.intraMul[asn]) != 1 {
		t.Fatalf("perturbations = %d; want 1", len(s.intraMul[asn]))
	}
	// The sampler is deterministic per sim RNG: injecting repeatedly
	// eventually toggles the same edge off.
	toggledOff := false
	for i := 0; i < 50; i++ {
		before := len(s.intraMul[asn])
		s.Inject(Event{Kind: EvIntraReroute, Time: int64(2 + i), AS: asn})
		if len(s.intraMul[asn]) < before {
			toggledOff = true
			break
		}
	}
	if !toggledOff {
		t.Fatal("perturbation never toggled off")
	}
}
