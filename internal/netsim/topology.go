// Package netsim is a deterministic Internet simulator: it generates an
// AS-level topology with PoPs, border routers, interface IPs, and IXPs;
// computes policy (Gao–Rexford) routing with hot-potato egress selection;
// synthesizes BGP update streams for collector vantage points (including
// community changes and duplicate updates, paper §4.1); and answers
// data-plane traceroute queries (paper §4.2). It substitutes for the
// RouteViews/RIS feeds and the RIPE Atlas data plane that the paper consumes,
// reproducing the same root causes of path change: link failures, routing
// policy shifts, hot-potato egress changes, intra-domain reroutes, IXP
// membership changes, and load-balancing diamonds.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"rrr/internal/bgp"
	"rrr/internal/trie"
)

// CityID identifies a city.
type CityID int

// PoPID identifies a point of presence (an AS's presence in a city).
type PoPID int

// RouterID identifies a router. Router 0 is invalid.
type RouterID int

// LinkID identifies an inter-AS link. Link 0 is invalid.
type LinkID int

// IXPID identifies an Internet exchange point. IXP 0 is invalid.
type IXPID int

// Relationship classifies inter-AS business relationships (CAIDA-style).
type Relationship int8

// Relationship values are expressed from the A side of a link.
const (
	// RelCustomer: A is a customer of B (B provides transit to A).
	RelCustomer Relationship = iota
	// RelProvider: A is a provider of B.
	RelProvider
	// RelPeer: settlement-free peering (private or at an IXP).
	RelPeer
)

// String names the relationship.
func (r Relationship) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelProvider:
		return "provider"
	default:
		return "peer"
	}
}

// Invert returns the relationship seen from the other side.
func (r Relationship) Invert() Relationship {
	switch r {
	case RelCustomer:
		return RelProvider
	case RelProvider:
		return RelCustomer
	default:
		return RelPeer
	}
}

// City is a geographic location.
type City struct {
	ID   CityID
	Name string
	// X, Y are abstract plane coordinates used for distance/latency.
	X, Y float64
}

// PoP is one AS's presence in a city, containing one or more routers.
type PoP struct {
	ID      PoPID
	AS      bgp.ASN
	City    CityID
	Routers []RouterID
}

// Router is a layer-3 device owned by one AS at one PoP. An alias set.
type Router struct {
	ID  RouterID
	AS  bgp.ASN
	PoP PoPID
	// Loopback is the router's stable identifier address.
	Loopback uint32
	// Interfaces are additional addresses (one per attached adjacency).
	Interfaces []uint32
	// ResponseProb is the probability the router answers a traceroute
	// probe; drawn at generation time, fixed thereafter.
	ResponseProb float64
}

// Link is an inter-AS adjacency between border routers ARouter (in AAS) and
// BRouter (in BAS). For IXP links the B-side interface sits on the IXP
// peering LAN.
type Link struct {
	ID      LinkID
	AAS     bgp.ASN
	BAS     bgp.ASN
	ARouter RouterID
	BRouter RouterID
	// AIP and BIP are the interface addresses on each side. For IXP links
	// both interfaces are on the IXP LAN.
	AIP uint32
	BIP uint32
	// Rel is the relationship from A's perspective.
	Rel Relationship
	// IXP is nonzero for public peering over an exchange.
	IXP IXPID
	// Up reports whether the link is operational.
	Up bool
}

// IXP is an exchange point with a peering LAN at one city.
type IXP struct {
	ID   IXPID
	City CityID
	// LAN is the peering LAN prefix.
	LAN trie.Prefix
	// MemberIPs maps member ASes to their LAN addresses.
	MemberIPs map[bgp.ASN]uint32
}

// AS is an autonomous system.
type AS struct {
	ASN  bgp.ASN
	Tier int
	// PoPs lists the AS's points of presence.
	PoPs []PoPID
	// Prefixes the AS originates.
	Prefixes []trie.Prefix
	// Block is the AS's address block from which router interfaces and
	// host addresses are assigned.
	Block trie.Prefix
	// Neighbors maps neighbor ASN to the links shared with it.
	Neighbors map[bgp.ASN][]LinkID
	// Rel maps neighbor ASN to the relationship from this AS's view.
	Rel map[bgp.ASN]Relationship
	// TagsGeo reports whether border routers add location communities to
	// routes received from external peers (like AS13030 in the paper's
	// Fig 3).
	TagsGeo bool
	// StripsCommunities reports whether the AS removes communities before
	// propagating routes (paper §4.1.3's first caveat).
	StripsCommunities bool
	// PolicyCommunity is a current AS-specific policy community value
	// unrelated to the traversed hops (prepending control etc.); rotated
	// by noise events so calibration must learn to ignore it. Zero means
	// the AS does not tag one.
	PolicyCommunity uint16
	// intra is the intra-AS adjacency between PoP indices (indexes into
	// PoPs), with parallel entries for load-balanced pairs.
	intra map[[2]int][]intraPath
}

// intraPath is one concrete router path between two PoPs of an AS.
type intraPath struct {
	routers []RouterID // intermediate routers, possibly empty
}

// Topology is the generated Internet.
type Topology struct {
	Cities  []City
	ASes    map[bgp.ASN]*AS
	ASList  []bgp.ASN // sorted
	PoPs    []PoP     // indexed by PoPID
	Routers []Router  // indexed by RouterID (entry 0 unused)
	Links   []Link    // indexed by LinkID (entry 0 unused)
	IXPs    []IXP     // indexed by IXPID (entry 0 unused)

	// ipToRouter maps allocated interface addresses to routers.
	ipToRouter map[uint32]RouterID
	// ixpIPMember maps IXP LAN addresses to the member AS assigned to them.
	ixpIPMember map[uint32]bgp.ASN
	nextIP      map[bgp.ASN]uint32
	originTrie  trie.Trie[bgp.ASN]
	ixpTrie     trie.Trie[IXPID]
}

// HostIP returns the i-th end-host address of an AS (destinations and probe
// sources), allocated from the upper half of the AS block.
func (t *Topology) HostIP(as bgp.ASN, i int) uint32 {
	a := t.ASes[as]
	return a.Block.Addr + uint32(1)<<15 | uint32(1)<<14 | uint32(i&0x3fff)
}

// Config controls topology generation and event rates.
type Config struct {
	Seed int64

	// NumTier1, NumTier2, NumTier3 size the hierarchy.
	NumTier1 int
	NumTier2 int
	NumTier3 int
	// NumCities is the number of distinct cities.
	NumCities int
	// NumIXPs is the number of exchanges.
	NumIXPs int

	// VPFraction is the fraction of ASes hosting a BGP collector peer.
	VPFraction float64

	// Event rates are expected events per day across the whole topology.
	LinkFailuresPerDay  float64
	EgressShiftsPerDay  float64
	TiebreakFlipsPerDay float64
	IntraReroutesPerDay float64
	PolicyNoisePerDay   float64
	IXPJoinsPerDay      float64
	// LinkRepairDelaySec is how long a failed link stays down.
	LinkRepairDelaySec int64

	// LoadBalancedFraction is the fraction of multi-PoP ASes with
	// intra-domain diamonds; InterdomainLBFraction the fraction of
	// multi-link AS pairs balancing across border links (§5.4).
	LoadBalancedFraction  float64
	InterdomainLBFraction float64
}

// DefaultConfig returns a mid-size deterministic topology adequate for the
// paper's experiment shapes while keeping test runtimes modest.
func DefaultConfig() Config {
	return Config{
		Seed:                  1,
		NumTier1:              6,
		NumTier2:              60,
		NumTier3:              180,
		NumCities:             30,
		NumIXPs:               8,
		VPFraction:            0.15,
		LinkFailuresPerDay:    5,
		EgressShiftsPerDay:    10,
		TiebreakFlipsPerDay:   3,
		IntraReroutesPerDay:   5,
		PolicyNoisePerDay:     0.75,
		IXPJoinsPerDay:        1.5,
		LinkRepairDelaySec:    6 * 3600,
		LoadBalancedFraction:  0.3,
		InterdomainLBFraction: 0.12,
	}
}

// TestConfig returns a small topology for unit tests.
func TestConfig() Config {
	c := DefaultConfig()
	c.NumTier1 = 3
	c.NumTier2 = 12
	c.NumTier3 = 30
	c.NumCities = 10
	c.NumIXPs = 3
	// Event rates scale with topology size: the test topology is ~5x
	// smaller than the default.
	c.LinkFailuresPerDay = 1.5
	c.EgressShiftsPerDay = 4
	c.TiebreakFlipsPerDay = 1
	c.IntraReroutesPerDay = 1.5
	c.PolicyNoisePerDay = 0.5
	c.IXPJoinsPerDay = 0.8
	return c
}

const (
	asBlockBase = uint32(16) << 24  // AS i block = 16.0.0.0 + i<<16 (/16)
	ixpLANBase  = uint32(185) << 24 // IXP j LAN = 185.0.j.0/24
	firstASN    = 100
)

func (t *Topology) blockFor(idx int) trie.Prefix {
	return trie.MakePrefix(asBlockBase+uint32(idx)<<16, 16)
}

// asByIdx returns the ASN for the idx-th generated AS.
func asByIdx(idx int) bgp.ASN { return bgp.ASN(firstASN + idx) }

// generate builds the topology deterministically from cfg.
func generate(cfg Config, rng *rand.Rand) *Topology {
	t := &Topology{
		ASes:        make(map[bgp.ASN]*AS),
		ipToRouter:  make(map[uint32]RouterID),
		ixpIPMember: make(map[uint32]bgp.ASN),
	}
	t.Routers = append(t.Routers, Router{}) // reserve ID 0
	t.Links = append(t.Links, Link{})       // reserve ID 0
	t.IXPs = append(t.IXPs, IXP{})          // reserve ID 0

	// Cities on a jittered grid.
	for i := 0; i < cfg.NumCities; i++ {
		t.Cities = append(t.Cities, City{
			ID:   CityID(i),
			Name: fmt.Sprintf("city%02d", i),
			X:    float64(i%6)*10 + rng.Float64()*4,
			Y:    float64(i/6)*10 + rng.Float64()*4,
		})
	}

	total := cfg.NumTier1 + cfg.NumTier2 + cfg.NumTier3
	for i := 0; i < total; i++ {
		tier := 3
		if i < cfg.NumTier1 {
			tier = 1
		} else if i < cfg.NumTier1+cfg.NumTier2 {
			tier = 2
		}
		a := &AS{
			ASN:       asByIdx(i),
			Tier:      tier,
			Block:     t.blockFor(i),
			Neighbors: make(map[bgp.ASN][]LinkID),
			Rel:       make(map[bgp.ASN]Relationship),
			intra:     make(map[[2]int][]intraPath),
		}
		// Community behavior: transit networks tend to run geo
		// communities; a minority strips them.
		switch tier {
		case 1:
			a.TagsGeo = rng.Float64() < 0.8
		case 2:
			a.TagsGeo = rng.Float64() < 0.6
			a.StripsCommunities = rng.Float64() < 0.12
		default:
			a.TagsGeo = rng.Float64() < 0.15
			a.StripsCommunities = rng.Float64() < 0.2
		}
		if rng.Float64() < 0.2 {
			a.PolicyCommunity = uint16(7000 + rng.Intn(8))
		}
		// PoPs: tier1 in many cities, tier2 in a few, tier3 in 1-2.
		var nPoPs int
		switch tier {
		case 1:
			nPoPs = 6 + rng.Intn(5)
		case 2:
			nPoPs = 2 + rng.Intn(4)
		default:
			nPoPs = 1 + rng.Intn(2)
		}
		if nPoPs > cfg.NumCities {
			nPoPs = cfg.NumCities
		}
		cities := rng.Perm(cfg.NumCities)[:nPoPs]
		for _, c := range cities {
			pid := PoPID(len(t.PoPs))
			pop := PoP{ID: pid, AS: a.ASN, City: CityID(c)}
			// Transit PoPs run redundant border routers; stubs 1-2.
			nr := 1 + rng.Intn(2)
			if tier <= 2 {
				nr = 2 + rng.Intn(2)
			}
			for r := 0; r < nr; r++ {
				rid := t.newRouter(a, pid, rng)
				pop.Routers = append(pop.Routers, rid)
			}
			t.PoPs = append(t.PoPs, pop)
			a.PoPs = append(a.PoPs, pid)
		}
		// Originated prefixes: the /16 block; larger ASes sometimes
		// announce an extra more-specific /17.
		a.Prefixes = []trie.Prefix{a.Block}
		if tier <= 2 && rng.Float64() < 0.3 {
			a.Prefixes = append(a.Prefixes,
				trie.MakePrefix(a.Block.Addr|uint32(1)<<15, 17))
		}
		t.ASes[a.ASN] = a
		t.ASList = append(t.ASList, a.ASN)
	}
	sort.Slice(t.ASList, func(i, j int) bool { return t.ASList[i] < t.ASList[j] })

	// Intra-AS adjacency: connect PoPs in a ring plus chords, with
	// transit routers on multi-hop segments.
	for _, asn := range t.ASList {
		t.wireIntra(t.ASes[asn], cfg, rng)
	}

	// Inter-AS links.
	t.wireHierarchy(cfg, rng)

	// IXPs.
	t.wireIXPs(cfg, rng)

	// Build lookup tries.
	for _, asn := range t.ASList {
		for _, p := range t.ASes[asn].Prefixes {
			t.originTrie.Insert(p, asn)
		}
	}
	for i := 1; i < len(t.IXPs); i++ {
		t.ixpTrie.Insert(t.IXPs[i].LAN, t.IXPs[i].ID)
	}
	return t
}

// newRouter allocates a router with a loopback address in the AS block.
func (t *Topology) newRouter(a *AS, pop PoPID, rng *rand.Rand) RouterID {
	rid := RouterID(len(t.Routers))
	lo := t.allocIP(a)
	resp := 1.0
	if rng.Float64() < 0.12 {
		resp = 0.3 + rng.Float64()*0.5 // flaky responders
	}
	t.Routers = append(t.Routers, Router{
		ID: rid, AS: a.ASN, PoP: pop, Loopback: lo, ResponseProb: resp,
	})
	t.ipToRouter[lo] = rid
	return t.Routers[rid].ID
}

// allocIP hands out the next free address in the AS block (skipping .0).
// Infrastructure addresses grow upward from the block base; host addresses
// (see HostIP) live in the upper half, so they never collide.
func (t *Topology) allocIP(a *AS) uint32 {
	if t.nextIP == nil {
		t.nextIP = make(map[bgp.ASN]uint32)
	}
	off := t.nextIP[a.ASN] + 1
	t.nextIP[a.ASN] = off
	return a.Block.Addr + off
}

// addInterface assigns an interface IP on router r from AS block (or a
// specific IP, e.g. an IXP LAN address).
func (t *Topology) addInterface(r RouterID, ip uint32) {
	t.Routers[r].Interfaces = append(t.Routers[r].Interfaces, ip)
	t.ipToRouter[ip] = r
}

// wireIntra builds the intra-AS PoP adjacency with concrete router paths.
func (t *Topology) wireIntra(a *AS, cfg Config, rng *rand.Rand) {
	n := len(a.PoPs)
	if n <= 1 {
		return
	}
	lb := rng.Float64() < cfg.LoadBalancedFraction
	addPath := func(i, j int, parallel bool) {
		key := [2]int{i, j}
		if i > j {
			key = [2]int{j, i}
		}
		// Direct path (no intermediate routers) plus, for load-balanced
		// ASes, a parallel path through an extra transit router.
		paths := []intraPath{{}}
		if parallel {
			mid := t.newRouter(a, a.PoPs[key[0]], rng)
			paths = append(paths, intraPath{routers: []RouterID{mid}})
		}
		a.intra[key] = paths
	}
	// Ring.
	for i := 0; i < n; i++ {
		addPath(i, (i+1)%n, lb && i == 0)
	}
	// Chords for larger ASes.
	for i := 0; i < n/2; i++ {
		x, y := rng.Intn(n), rng.Intn(n)
		if x != y {
			addPath(x, y, false)
		}
	}
}

// latency returns an abstract distance between two cities.
func (t *Topology) latency(a, b CityID) float64 {
	ca, cb := t.Cities[a], t.Cities[b]
	dx, dy := ca.X-cb.X, ca.Y-cb.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// wireHierarchy creates provider/customer and private peering links.
func (t *Topology) wireHierarchy(cfg Config, rng *rand.Rand) {
	tier1 := t.ASList[:cfg.NumTier1]
	tier2 := t.ASList[cfg.NumTier1 : cfg.NumTier1+cfg.NumTier2]
	tier3 := t.ASList[cfg.NumTier1+cfg.NumTier2:]

	// Tier-1 clique (peers), often with multiple parallel links.
	for i, a := range tier1 {
		for _, b := range tier1[i+1:] {
			nLinks := 1 + rng.Intn(3)
			for k := 0; k < nLinks; k++ {
				t.addLink(a, b, RelPeer, 0, rng)
			}
		}
	}
	// Tier-2: 2-3 providers among tier1 (sometimes tier2), some private
	// peers among tier2.
	for _, a := range tier2 {
		nProv := 2 + rng.Intn(2)
		provs := rng.Perm(len(tier1))
		for k := 0; k < nProv && k < len(provs); k++ {
			nLinks := 1 + rng.Intn(2)
			for l := 0; l < nLinks; l++ {
				t.addLink(a, tier1[provs[k]], RelCustomer, 0, rng)
			}
		}
	}
	for i, a := range tier2 {
		for _, b := range tier2[i+1:] {
			if rng.Float64() < 0.08 {
				t.addLink(a, b, RelPeer, 0, rng)
			}
		}
	}
	// Tier-3: measurable edge networks are predominantly multi-homed, so
	// most get two providers (single link failures then cause AS-path
	// changes, not withdrawals).
	for _, a := range tier3 {
		nProv := 1
		if rng.Float64() < 0.8 {
			nProv = 2
		}
		provs := rng.Perm(len(tier2))
		for k := 0; k < nProv && k < len(provs); k++ {
			t.addLink(a, tier2[provs[k]], RelCustomer, 0, rng)
		}
	}
}

// addLink creates a link between a and b (rel from a's view), choosing
// border PoPs by geographic proximity.
func (t *Topology) addLink(a, b bgp.ASN, rel Relationship, ixp IXPID, rng *rand.Rand) LinkID {
	asA, asB := t.ASes[a], t.ASes[b]
	var popA, popB PoPID
	reused := false
	// Parallel links between the same pair usually terminate in the same
	// metro (redundant circuits between the same PoPs but on distinct
	// routers), which is what lets §4.2.2 observe router shifts between
	// fixed ⟨AS, city⟩ endpoints.
	if prev := asA.Neighbors[b]; len(prev) > 0 && rng.Float64() < 0.6 {
		l := t.Links[prev[0]]
		if l.AAS == a {
			popA, popB = t.Routers[l.ARouter].PoP, t.Routers[l.BRouter].PoP
		} else {
			popA, popB = t.Routers[l.BRouter].PoP, t.Routers[l.ARouter].PoP
		}
		reused = true
	}
	if !reused {
		// Pick the pair of PoPs minimizing distance, jittered so distinct
		// adjacencies spread geographically. A parallel link that is not
		// co-located deliberately lands at a *different* interconnection
		// city (the London→Frankfurt shifts of the paper's Fig 3), so
		// egress changes across it move geo communities.
		usedCities := make(map[[2]CityID]bool)
		for _, lid := range asA.Neighbors[b] {
			l := t.Links[lid]
			ca := t.CityOfRouter(l.ARouter)
			cb := t.CityOfRouter(l.BRouter)
			if l.AAS != a {
				ca, cb = cb, ca
			}
			usedCities[[2]CityID{ca, cb}] = true
		}
		bestScore := math.Inf(1)
		foundNew := false
		for _, pa := range asA.PoPs {
			for _, pb := range asB.PoPs {
				cp := [2]CityID{t.PoPs[pa].City, t.PoPs[pb].City}
				score := t.latency(cp[0], cp[1]) + rng.Float64()*6
				if len(usedCities) > 0 && usedCities[cp] {
					score += 100 // strongly prefer a new city pair
				}
				if score < bestScore {
					bestScore = score
					popA, popB = pa, pb
					foundNew = !usedCities[cp]
				}
			}
		}
		_ = foundNew
	}
	// Redundant circuits terminate on distinct routers when the PoPs have
	// them: prefer routers not already carrying a link to this neighbor.
	usedA := make(map[RouterID]bool)
	usedB := make(map[RouterID]bool)
	for _, lid := range asA.Neighbors[b] {
		l := t.Links[lid]
		if l.AAS == a {
			usedA[l.ARouter] = true
			usedB[l.BRouter] = true
		} else {
			usedA[l.BRouter] = true
			usedB[l.ARouter] = true
		}
	}
	pick := func(routers []RouterID, used map[RouterID]bool) RouterID {
		var free []RouterID
		for _, r := range routers {
			if !used[r] {
				free = append(free, r)
			}
		}
		if len(free) > 0 {
			return free[rng.Intn(len(free))]
		}
		return routers[rng.Intn(len(routers))]
	}
	ra := pick(t.PoPs[popA].Routers, usedA)
	rb := pick(t.PoPs[popB].Routers, usedB)
	lid := LinkID(len(t.Links))
	var aip, bip uint32
	if ixp != 0 {
		aip = t.ixpMemberIP(ixp, a, ra)
		bip = t.ixpMemberIP(ixp, b, rb)
	} else {
		aip = t.allocIP(asA)
		t.addInterface(ra, aip)
		bip = t.allocIP(asB)
		t.addInterface(rb, bip)
	}
	if ixp != 0 {
		// IXP LAN IPs are registered by ixpMemberIP.
	}
	t.Links = append(t.Links, Link{
		ID: lid, AAS: a, BAS: b, ARouter: ra, BRouter: rb,
		AIP: aip, BIP: bip, Rel: rel, IXP: ixp, Up: true,
	})
	asA.Neighbors[b] = append(asA.Neighbors[b], lid)
	asB.Neighbors[a] = append(asB.Neighbors[a], lid)
	asA.Rel[b] = rel
	asB.Rel[a] = rel.Invert()
	return lid
}

// ixpMemberIP returns (allocating if needed) the LAN address of member as on
// the exchange, bound to border router r.
func (t *Topology) ixpMemberIP(ixp IXPID, as bgp.ASN, r RouterID) uint32 {
	x := &t.IXPs[ixp]
	if ip, ok := x.MemberIPs[as]; ok {
		return ip
	}
	ip := x.LAN.Addr + uint32(len(x.MemberIPs)+1)
	x.MemberIPs[as] = ip
	t.ixpIPMember[ip] = as
	t.addInterface(r, ip)
	return ip
}

// wireIXPs creates exchanges and public peering among members.
func (t *Topology) wireIXPs(cfg Config, rng *rand.Rand) {
	for j := 0; j < cfg.NumIXPs; j++ {
		id := IXPID(len(t.IXPs))
		city := CityID(rng.Intn(cfg.NumCities))
		t.IXPs = append(t.IXPs, IXP{
			ID:        id,
			City:      city,
			LAN:       trie.MakePrefix(ixpLANBase+uint32(j)<<8, 24),
			MemberIPs: make(map[bgp.ASN]uint32),
		})
		// Members: ASes with a PoP in the city join with high probability;
		// others occasionally (remote peering).
		var members []bgp.ASN
		for _, asn := range t.ASList {
			a := t.ASes[asn]
			if a.Tier == 1 {
				continue // tier-1s rarely peer at IXPs
			}
			inCity := false
			for _, p := range a.PoPs {
				if t.PoPs[p].City == city {
					inCity = true
					break
				}
			}
			prob := 0.05
			if inCity {
				prob = 0.6
			}
			if rng.Float64() < prob {
				members = append(members, asn)
			}
		}
		// Peer pairs among members.
		for i, a := range members {
			for _, b := range members[i+1:] {
				if t.ASes[a].Rel[b] != 0 || len(t.ASes[a].Neighbors[b]) > 0 {
					continue // already related
				}
				if rng.Float64() < 0.25 {
					t.addLink(a, b, RelPeer, id, rng)
				}
			}
		}
	}
}

// OriginAS maps an address to the AS originating its covering prefix.
func (t *Topology) OriginAS(ip uint32) (bgp.ASN, bool) {
	return t.originTrie.Lookup(ip)
}

// IXPForIP reports whether ip is on an IXP peering LAN.
func (t *Topology) IXPForIP(ip uint32) (IXPID, bool) {
	return t.ixpTrie.Lookup(ip)
}

// IXPMemberForIP returns the member AS an IXP LAN address is assigned to.
func (t *Topology) IXPMemberForIP(ip uint32) (bgp.ASN, bool) {
	as, ok := t.ixpIPMember[ip]
	return as, ok
}

// RouterForIP resolves an interface or loopback address to its router.
func (t *Topology) RouterForIP(ip uint32) (RouterID, bool) {
	r, ok := t.ipToRouter[ip]
	return r, ok
}

// CityOfRouter returns the city a router sits in.
func (t *Topology) CityOfRouter(r RouterID) CityID {
	return t.PoPs[t.Routers[r].PoP].City
}

// LinksBetween returns the link IDs between two ASes (any direction); nil
// for unknown ASNs.
func (t *Topology) LinksBetween(a, b bgp.ASN) []LinkID {
	as, ok := t.ASes[a]
	if !ok {
		return nil
	}
	return as.Neighbors[b]
}

// RelBetween returns a's relationship toward b and whether they are
// neighbors; unknown ASNs are not neighbors of anything.
func (t *Topology) RelBetween(a, b bgp.ASN) (Relationship, bool) {
	as, ok := t.ASes[a]
	if !ok {
		return 0, false
	}
	r, ok := as.Rel[b]
	return r, ok
}
