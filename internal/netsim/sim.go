package netsim

import (
	"math"
	"math/rand"
	"sort"

	"rrr/internal/bgp"
	"rrr/internal/trie"
)

// VP is a BGP vantage point: a router in some AS peering with a collector.
type VP struct {
	AS bgp.ASN
	IP uint32
}

// Key returns the bgp.VPKey form.
func (v VP) Key() bgp.VPKey { return bgp.VPKey{PeerIP: v.IP, PeerAS: v.AS} }

// EventKind enumerates simulator events: the root causes of path change the
// paper's techniques must detect (or correctly ignore).
type EventKind int

// Event kinds.
const (
	// EvLinkDown fails an inter-AS link; parallel-link pairs shift border
	// routers with unchanged AS paths (duplicate updates, §4.1.4);
	// single-link pairs change AS paths or lose reachability (§4.1.2).
	EvLinkDown EventKind = iota
	// EvLinkUp repairs a failed link.
	EvLinkUp
	// EvEgressShift rotates the active border link between two ASes
	// (hot-potato/TE change): border-level change, geo-community change
	// (§4.1.3), duplicate updates downstream, no AS-path change.
	EvEgressShift
	// EvTiebreakFlip changes an AS's preference among equal-preference
	// neighbors: AS-path changes without topology change.
	EvTiebreakFlip
	// EvIntraReroute perturbs an AS's IGP weights: intra-domain IP-level
	// changes that are *not* border changes, plus duplicate updates.
	EvIntraReroute
	// EvPolicyNoise rotates an AS's routing-policy community: community
	// churn unrelated to paths, which calibration must learn to ignore
	// (§4.1.3, Appendix B).
	EvPolicyNoise
	// EvIXPJoin adds an AS to an IXP with new public peering links
	// (§4.2.3).
	EvIXPJoin
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvLinkDown:
		return "link-down"
	case EvLinkUp:
		return "link-up"
	case EvEgressShift:
		return "egress-shift"
	case EvTiebreakFlip:
		return "tiebreak-flip"
	case EvIntraReroute:
		return "intra-reroute"
	case EvPolicyNoise:
		return "policy-noise"
	case EvIXPJoin:
		return "ixp-join"
	}
	return "unknown"
}

// Event is one injected or sampled routing event.
type Event struct {
	Kind EventKind
	Time int64
	Link LinkID  // EvLinkDown / EvLinkUp
	A, B bgp.ASN // EvEgressShift pair
	AS   bgp.ASN // EvTiebreakFlip / EvIntraReroute / EvPolicyNoise / EvIXPJoin
	IXP  IXPID   // EvIXPJoin
}

// Sim is the deterministic Internet simulator.
type Sim struct {
	Cfg Config
	T   *Topology
	R   *Routing

	rng *rand.Rand
	now int64

	vps  []VP
	subs []func(bgp.Update)

	// intraMul holds per-AS IGP weight perturbations.
	intraMul map[bgp.ASN]map[[2]int]float64

	repairs []Event // scheduled EvLinkUp events

	// Events applied so far, for inspection by tests and experiments.
	Log []Event

	// attrCache snapshots (vp, dest) route attributes for diffing.
}

// New generates the topology and initializes routing.
func New(cfg Config) *Sim {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Sim{
		Cfg:      cfg,
		rng:      rng,
		intraMul: make(map[bgp.ASN]map[[2]int]float64),
	}
	s.T = generate(cfg, rng)
	s.R = newRouting(s.T)
	s.pickVPs()
	s.pickInterdomainLB()
	return s
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() int64 { return s.now }

// SetNow moves the clock without applying events (initialization only).
func (s *Sim) SetNow(t int64) { s.now = t }

// OnUpdate registers a BGP update subscriber.
func (s *Sim) OnUpdate(fn func(bgp.Update)) { s.subs = append(s.subs, fn) }

func (s *Sim) publish(u bgp.Update) {
	for _, fn := range s.subs {
		fn(u)
	}
}

// VPs returns the collector vantage points.
func (s *Sim) VPs() []VP {
	out := make([]VP, len(s.vps))
	copy(out, s.vps)
	return out
}

// pickVPs selects the fraction of ASes that peer with collectors, skewed
// toward transit networks as in RouteViews/RIS.
func (s *Sim) pickVPs() {
	for _, asn := range s.T.ASList {
		a := s.T.ASes[asn]
		prob := s.Cfg.VPFraction
		switch a.Tier {
		case 1:
			prob = 1.0
		case 2:
			prob = math.Min(1, s.Cfg.VPFraction*2.5)
		default:
			prob = s.Cfg.VPFraction * 0.6
		}
		if s.rng.Float64() < prob {
			ip := s.T.allocIP(a)
			s.vps = append(s.vps, VP{AS: asn, IP: ip})
		}
	}
}

// pickInterdomainLB marks a fraction of multi-link AS pairs as balancing
// flows across their parallel border links (diamonds that cross borders).
func (s *Sim) pickInterdomainLB() {
	var multi []pairKey
	seen := make(map[pairKey]bool)
	for _, asn := range s.T.ASList {
		for nb, links := range s.T.ASes[asn].Neighbors {
			pk := mkPair(asn, nb)
			if !seen[pk] && len(links) >= 2 {
				seen[pk] = true
				multi = append(multi, pk)
			}
		}
	}
	sort.Slice(multi, func(i, j int) bool {
		if multi[i].lo != multi[j].lo {
			return multi[i].lo < multi[j].lo
		}
		return multi[i].hi < multi[j].hi
	})
	for _, pk := range multi {
		if s.rng.Float64() < s.Cfg.InterdomainLBFraction {
			s.R.lbPairs[pk] = true
		}
	}
}

// InterdomainLBPairs exposes the ground-truth diamond pairs (§5.4).
func (s *Sim) InterdomainLBPairs() [][2]bgp.ASN {
	var out [][2]bgp.ASN
	for pk := range s.R.lbPairs {
		out = append(out, [2]bgp.ASN{pk.lo, pk.hi})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// InitialUpdates produces a full-table dump from every VP at time t,
// mirroring collector RIB dumps used to initialize monitoring (§4.1.1).
func (s *Sim) InitialUpdates(t int64) []bgp.Update {
	var out []bgp.Update
	for _, vp := range s.vps {
		for _, d := range s.T.ASList {
			out = append(out, s.announcements(vp, d, t)...)
		}
	}
	return out
}

// announcements builds announce updates from vp for all prefixes of dest AS
// d under current routing; nil when vp has no route.
func (s *Sim) announcements(vp VP, d bgp.ASN, t int64) []bgp.Update {
	path, comms, med, ok := s.R.RouteAttrs(vp.AS, d)
	if !ok {
		return nil
	}
	var out []bgp.Update
	for _, p := range s.T.ASes[d].Prefixes {
		out = append(out, bgp.Update{
			Time: t, PeerIP: vp.IP, PeerAS: vp.AS, Type: bgp.Announce,
			Prefix: p, ASPath: path.Clone(), Communities: comms.Clone(), MED: med,
		})
	}
	return out
}

func (s *Sim) withdrawals(vp VP, d bgp.ASN, t int64) []bgp.Update {
	var out []bgp.Update
	for _, p := range s.T.ASes[d].Prefixes {
		out = append(out, bgp.Update{
			Time: t, PeerIP: vp.IP, PeerAS: vp.AS, Type: bgp.Withdraw, Prefix: p,
		})
	}
	return out
}

// attrSnap is a snapshot of one VP's route to one destination.
type attrSnap struct {
	path  bgp.Path
	comms bgp.Communities
	ok    bool
}

func (s *Sim) snapshotAttrs() map[bgp.ASN]map[bgp.ASN]attrSnap {
	out := make(map[bgp.ASN]map[bgp.ASN]attrSnap, len(s.vps))
	for _, vp := range s.vps {
		m := make(map[bgp.ASN]attrSnap, len(s.T.ASList))
		for _, d := range s.T.ASList {
			path, comms, _, ok := s.R.RouteAttrs(vp.AS, d)
			m[d] = attrSnap{path: path, comms: comms, ok: ok}
		}
		out[vp.AS] = m
	}
	return out
}

// pathCrossesPair reports whether the AS path contains the pair as adjacent
// hops in either order.
func pathCrossesPair(p bgp.Path, pk pairKey) bool {
	for i := 1; i < len(p); i++ {
		if mkPair(p[i-1], p[i]) == pk {
			return true
		}
	}
	return false
}

// Inject applies one event at its stated time, emitting BGP updates.
func (s *Sim) Inject(ev Event) {
	if ev.Time < s.now {
		ev.Time = s.now
	}
	s.apply(ev)
	s.Log = append(s.Log, ev)
}

func (s *Sim) apply(ev Event) {
	switch ev.Kind {
	case EvLinkDown:
		s.applyLinkChange(ev, false)
	case EvLinkUp:
		s.applyLinkChange(ev, true)
	case EvEgressShift:
		s.applyEgressShift(ev)
	case EvTiebreakFlip:
		s.applyTiebreakFlip(ev)
	case EvIntraReroute:
		s.applyIntraReroute(ev)
	case EvPolicyNoise:
		s.applyPolicyNoise(ev)
	case EvIXPJoin:
		s.applyIXPJoin(ev)
	}
}

// applyLinkChange handles link failures and repairs with a full route
// recompute and attribute diffing. VPs whose attributes are unchanged but
// whose path crosses the affected pair emit duplicate updates (the parallel
// border link swap of §4.1.4).
func (s *Sim) applyLinkChange(ev Event, up bool) {
	l := &s.T.Links[ev.Link]
	if l.Up == up {
		return
	}
	pk := mkPair(l.AAS, l.BAS)
	before := s.snapshotAttrs()
	s.R.SetLinkUp(ev.Link, up)
	s.R.RecomputeAll()
	s.diffAndEmit(before, ev.Time, map[pairKey]bool{pk: true})
	if !up && s.Cfg.LinkRepairDelaySec > 0 {
		s.repairs = append(s.repairs, Event{
			Kind: EvLinkUp, Time: ev.Time + s.Cfg.LinkRepairDelaySec, Link: ev.Link,
		})
	}
}

func (s *Sim) applyEgressShift(ev Event) {
	if !s.R.RotateActiveLink(ev.A, ev.B) {
		return
	}
	pk := mkPair(ev.A, ev.B)
	// No AS-path change: emit updates only for routes crossing the pair.
	for _, vp := range s.vps {
		for _, d := range s.T.ASList {
			path := s.R.ASPath(vp.AS, d)
			if path == nil || !pathCrossesPair(path, pk) {
				continue
			}
			for _, u := range s.announcements(vp, d, ev.Time) {
				s.publish(u)
			}
		}
	}
}

func (s *Sim) applyTiebreakFlip(ev Event) {
	a := s.T.ASes[ev.AS]
	if a == nil {
		return
	}
	before := s.snapshotAttrs()
	// Rotate the override deterministically among neighbors.
	nbs := make([]bgp.ASN, 0, len(a.Neighbors))
	for nb := range a.Neighbors {
		nbs = append(nbs, nb)
	}
	sort.Slice(nbs, func(i, j int) bool { return nbs[i] < nbs[j] })
	if len(nbs) == 0 {
		return
	}
	cur, has := s.R.prefOverride[ev.AS]
	if !has {
		s.R.prefOverride[ev.AS] = nbs[len(nbs)-1]
	} else {
		for i, nb := range nbs {
			if nb == cur {
				s.R.prefOverride[ev.AS] = nbs[(i+1)%len(nbs)]
				break
			}
		}
	}
	s.R.RecomputeAll()
	s.diffAndEmit(before, ev.Time, nil)
}

func (s *Sim) applyIntraReroute(ev Event) {
	a := s.T.ASes[ev.AS]
	if a == nil || len(a.intra) == 0 {
		return
	}
	keys := make([][2]int, 0, len(a.intra))
	for k := range a.intra {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	k := keys[s.rng.Intn(len(keys))]
	if s.intraMul[ev.AS] == nil {
		s.intraMul[ev.AS] = make(map[[2]int]float64)
	}
	// Toggle the perturbation so repeated events move paths around.
	if _, ok := s.intraMul[ev.AS][k]; ok {
		delete(s.intraMul[ev.AS], k)
	} else {
		s.intraMul[ev.AS][k] = 8.0
	}
	// IGP cost changes leak as duplicate updates from VPs whose routes
	// traverse the AS (Park et al.; paper §4.1.4), with attenuation.
	for _, vp := range s.vps {
		for _, d := range s.T.ASList {
			path := s.R.ASPath(vp.AS, d)
			if path == nil || !path.Contains(ev.AS) {
				continue
			}
			if hashFloat(probeHash(s.Cfg.Seed, uint32(vp.AS), uint32(d), ev.Time, 0xd0b)) > 0.05 {
				continue
			}
			for _, u := range s.announcements(vp, d, ev.Time) {
				s.publish(u)
			}
		}
	}
}

func (s *Sim) applyPolicyNoise(ev Event) {
	a := s.T.ASes[ev.AS]
	if a == nil {
		return
	}
	// ASes cycle through a small set of policy values (real networks
	// define a handful of TE communities), so reputation learning can
	// converge (Appendix B).
	if a.PolicyCommunity == 0 {
		a.PolicyCommunity = uint16(7000 + s.rng.Intn(8))
	} else {
		a.PolicyCommunity = 7000 + (a.PolicyCommunity-7000+1)%8
	}
	for _, vp := range s.vps {
		for _, d := range s.T.ASList {
			path := s.R.ASPath(vp.AS, d)
			if path == nil || !path.Contains(ev.AS) {
				continue
			}
			for _, u := range s.announcements(vp, d, ev.Time) {
				s.publish(u)
			}
		}
	}
}

func (s *Sim) applyIXPJoin(ev Event) {
	if int(ev.IXP) <= 0 || int(ev.IXP) >= len(s.T.IXPs) {
		return
	}
	x := &s.T.IXPs[ev.IXP]
	a := s.T.ASes[ev.AS]
	if a == nil {
		return
	}
	if _, member := x.MemberIPs[ev.AS]; member {
		return
	}
	members := make([]bgp.ASN, 0, len(x.MemberIPs))
	for m := range x.MemberIPs {
		members = append(members, m)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	before := s.snapshotAttrs()
	added := make(map[pairKey]bool)
	n := 0
	for _, m := range members {
		if m == ev.AS || len(a.Neighbors[m]) > 0 {
			continue
		}
		if s.rng.Float64() < 0.5 {
			lid := s.T.addLink(ev.AS, m, RelPeer, ev.IXP, s.rng)
			s.R.NoteLinkAdded(lid)
			pk := mkPair(ev.AS, m)
			added[pk] = true
			s.R.selectActiveLink(pk)
			n++
			if n >= 5 {
				break
			}
		}
	}
	if n == 0 {
		// Ensure the join is visible: peer with the first eligible member.
		for _, m := range members {
			if m != ev.AS && len(a.Neighbors[m]) == 0 {
				lid := s.T.addLink(ev.AS, m, RelPeer, ev.IXP, s.rng)
				s.R.NoteLinkAdded(lid)
				pk := mkPair(ev.AS, m)
				added[pk] = true
				s.R.selectActiveLink(pk)
				break
			}
		}
	}
	if len(added) == 0 {
		// Join with a LAN presence only (no new sessions yet).
		r := s.T.primaryRouter(a.PoPs[0])
		s.T.ixpMemberIP(ev.IXP, ev.AS, r)
		return
	}
	s.R.RecomputeAll()
	s.diffAndEmit(before, ev.Time, added)
}

// diffAndEmit compares post-event attributes with a snapshot and publishes
// announcements, withdrawals, and duplicates.
func (s *Sim) diffAndEmit(before map[bgp.ASN]map[bgp.ASN]attrSnap, t int64, dupPairs map[pairKey]bool) {
	for _, vp := range s.vps {
		prev := before[vp.AS]
		for _, d := range s.T.ASList {
			old := prev[d]
			path, comms, _, ok := s.R.RouteAttrs(vp.AS, d)
			switch {
			case !ok && old.ok:
				for _, u := range s.withdrawals(vp, d, t) {
					s.publish(u)
				}
			case ok && (!old.ok || !path.Equal(old.path) || !comms.Equal(old.comms)):
				for _, u := range s.announcements(vp, d, t) {
					s.publish(u)
				}
			case ok && dupPairs != nil:
				crossed := false
				for pk := range dupPairs {
					if pathCrossesPair(path, pk) {
						crossed = true
						break
					}
				}
				if crossed {
					for _, u := range s.announcements(vp, d, t) {
						s.publish(u)
					}
				}
			}
		}
	}
}

// poisson samples a Poisson-distributed count with the given mean.
func (s *Sim) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// Step advances virtual time by dt seconds, applying scheduled repairs and
// sampled events.
func (s *Sim) Step(dt int64) {
	end := s.now + dt
	var evs []Event
	// Scheduled repairs due in this step.
	var rest []Event
	for _, r := range s.repairs {
		if r.Time < end {
			evs = append(evs, r)
		} else {
			rest = append(rest, r)
		}
	}
	s.repairs = rest

	frac := float64(dt) / 86400.0
	sample := func(rate float64, mk func() (Event, bool)) {
		for i, n := 0, s.poisson(rate*frac); i < n; i++ {
			if ev, ok := mk(); ok {
				ev.Time = s.now + s.rng.Int63n(dt)
				evs = append(evs, ev)
			}
		}
	}
	sample(s.Cfg.LinkFailuresPerDay, func() (Event, bool) {
		ups := s.upLinkIDs()
		if len(ups) == 0 {
			return Event{}, false
		}
		return Event{Kind: EvLinkDown, Link: ups[s.rng.Intn(len(ups))]}, true
	})
	sample(s.Cfg.EgressShiftsPerDay, func() (Event, bool) {
		pairs := s.multiLinkPairs()
		if len(pairs) == 0 {
			return Event{}, false
		}
		pk := pairs[s.rng.Intn(len(pairs))]
		return Event{Kind: EvEgressShift, A: pk.lo, B: pk.hi}, true
	})
	sample(s.Cfg.TiebreakFlipsPerDay, func() (Event, bool) {
		asn := s.T.ASList[s.rng.Intn(len(s.T.ASList))]
		return Event{Kind: EvTiebreakFlip, AS: asn}, true
	})
	sample(s.Cfg.IntraReroutesPerDay, func() (Event, bool) {
		asn := s.T.ASList[s.rng.Intn(len(s.T.ASList))]
		return Event{Kind: EvIntraReroute, AS: asn}, true
	})
	sample(s.Cfg.PolicyNoisePerDay, func() (Event, bool) {
		asn := s.T.ASList[s.rng.Intn(len(s.T.ASList))]
		return Event{Kind: EvPolicyNoise, AS: asn}, true
	})
	sample(s.Cfg.IXPJoinsPerDay, func() (Event, bool) {
		if len(s.T.IXPs) <= 1 {
			return Event{}, false
		}
		ixp := IXPID(1 + s.rng.Intn(len(s.T.IXPs)-1))
		// Transit networks join exchanges far more often than stubs (they
		// have traffic to offload), and their joins move customer-cone
		// traffic that measurement probes actually cross.
		var asn bgp.ASN
		if s.rng.Float64() < 0.7 {
			var tier2 []bgp.ASN
			for _, a := range s.T.ASList {
				if s.T.ASes[a].Tier == 2 {
					tier2 = append(tier2, a)
				}
			}
			if len(tier2) == 0 {
				return Event{}, false
			}
			asn = tier2[s.rng.Intn(len(tier2))]
		} else {
			asn = s.T.ASList[s.rng.Intn(len(s.T.ASList))]
			if s.T.ASes[asn].Tier == 1 {
				return Event{}, false
			}
		}
		return Event{Kind: EvIXPJoin, AS: asn, IXP: ixp}, true
	})

	sort.Slice(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	for _, ev := range evs {
		s.apply(ev)
		s.Log = append(s.Log, ev)
	}
	s.now = end
}

func (s *Sim) upLinkIDs() []LinkID {
	var out []LinkID
	for i := 1; i < len(s.T.Links); i++ {
		if s.T.Links[i].Up {
			out = append(out, LinkID(i))
		}
	}
	return out
}

func (s *Sim) multiLinkPairs() []pairKey {
	seen := make(map[pairKey]bool)
	var out []pairKey
	for i := 1; i < len(s.T.Links); i++ {
		l := s.T.Links[i]
		pk := mkPair(l.AAS, l.BAS)
		if seen[pk] {
			continue
		}
		seen[pk] = true
		if len(s.R.upLinks(pk)) >= 2 {
			out = append(out, pk)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].lo != out[j].lo {
			return out[i].lo < out[j].lo
		}
		return out[i].hi < out[j].hi
	})
	return out
}

// MembershipSnapshot returns a PeeringDB-like view of IXP membership,
// omitting each member with probability omitFrac to model incompleteness
// (§4.2.3 augments PeeringDB with traceroute-observed members).
func (s *Sim) MembershipSnapshot(omitFrac float64) map[IXPID][]bgp.ASN {
	out := make(map[IXPID][]bgp.ASN)
	for i := 1; i < len(s.T.IXPs); i++ {
		x := &s.T.IXPs[i]
		members := make([]bgp.ASN, 0, len(x.MemberIPs))
		for m := range x.MemberIPs {
			members = append(members, m)
		}
		sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
		var kept []bgp.ASN
		for _, m := range members {
			if hashFloat(probeHash(s.Cfg.Seed, uint32(m), uint32(i), 0, 0x9d6)) >= omitFrac {
				kept = append(kept, m)
			}
		}
		out[x.ID] = kept
	}
	return out
}

// StubASes returns tier-3 ASes, the natural homes for probes and anchors.
func (s *Sim) StubASes() []bgp.ASN {
	var out []bgp.ASN
	for _, asn := range s.T.ASList {
		if s.T.ASes[asn].Tier == 3 {
			out = append(out, asn)
		}
	}
	return out
}

// Mapper returns a traceroute.Mapper view of the topology (ground-truth
// IP-to-AS and IXP detection, standing in for LPM + RIR + traIXroute).
func (s *Sim) Mapper() SimMapper { return SimMapper{t: s.T} }

// SimMapper adapts Topology to traceroute.Mapper.
type SimMapper struct {
	t *Topology
}

// ASOf maps an address to its originating AS. IXP LAN addresses are not
// mapped to an AS (they are detected via IXPOf).
func (m SimMapper) ASOf(ip uint32) (bgp.ASN, bool) {
	if _, isIXP := m.t.IXPForIP(ip); isIXP {
		return 0, false
	}
	return m.t.OriginAS(ip)
}

// IXPOf reports whether the address is on an IXP peering LAN.
func (m SimMapper) IXPOf(ip uint32) (int, bool) {
	id, ok := m.t.IXPForIP(ip)
	return int(id), ok
}

// IXPMemberOf resolves an IXP LAN address to the member AS assigned to it
// (traIXroute-style), implementing bordermap.IXPMembershipResolver.
func (m SimMapper) IXPMemberOf(ip uint32) (bgp.ASN, bool) {
	return m.t.IXPMemberForIP(ip)
}

// PrefixFor returns the most specific originated prefix covering ip.
func (s *Sim) PrefixFor(ip uint32) (trie.Prefix, bgp.ASN, bool) {
	p, asn, ok := s.T.originTrie.LookupPrefix(ip)
	return p, asn, ok
}
