package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
)

// On-disk format. A segment file is the 8-byte segment magic followed by
// framed records:
//
//	length uint32  payload byte count (big endian; 0 is invalid)
//	crc    uint32  CRC32C (Castagnoli) over the payload
//	payload        kind uint8 + kind-specific body
//
// Kind 1 wraps one record of the internal/bgp framed binary codec; kind 2
// is the traceroute body defined by encodeTrace below. The checksum covers
// the payload only: a corrupt length field either fails the impossible-
// length check or misaligns the next frame, whose checksum then fails, so
// both cases surface as a corrupt record rather than silent garbage.
const (
	segMagic = "RRRWAL1\n"

	kindUpdate byte = 1
	kindTrace  byte = 2

	frameHeaderLen = 8

	// maxRecordBytes rejects impossible frame lengths before allocating:
	// real records are tens to hundreds of bytes, so anything past 16 MiB
	// is a corrupt length field.
	maxRecordBytes = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one logged feed record; exactly one of Update/Trace is set.
type Record struct {
	Update *bgp.Update
	Trace  *traceroute.Traceroute
}

// Time returns the record's feed timestamp.
func (r Record) Time() int64 {
	if r.Update != nil {
		return r.Update.Time
	}
	if r.Trace != nil {
		return r.Trace.Time
	}
	return 0
}

// encodeUpdate builds the kind-1 payload: the kind byte followed by one
// bgp binary-codec record.
func encodeUpdate(u bgp.Update) ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte(kindUpdate)
	bw := bgp.NewBinaryWriter(&b)
	if err := bw.Write(u); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// encodeTrace builds the kind-2 payload:
//
//	msmID   int64, probeID int64, time int64
//	src     uint32, dst uint32
//	reached uint8
//	nhops   uint16, then per hop: ip uint32, rtt float64 bits, ttl int32
//
// Big endian throughout, matching the bgp codec.
func encodeTrace(t *traceroute.Traceroute) ([]byte, error) {
	if t == nil {
		return nil, errors.New("wal: nil traceroute")
	}
	if len(t.Hops) > 0xffff {
		return nil, fmt.Errorf("wal: traceroute with %d hops exceeds codec limit", len(t.Hops))
	}
	b := make([]byte, 0, 36+16*len(t.Hops))
	b = append(b, kindTrace)
	b = binary.BigEndian.AppendUint64(b, uint64(t.MsmID))
	b = binary.BigEndian.AppendUint64(b, uint64(int64(t.ProbeID)))
	b = binary.BigEndian.AppendUint64(b, uint64(t.Time))
	b = binary.BigEndian.AppendUint32(b, t.Src)
	b = binary.BigEndian.AppendUint32(b, t.Dst)
	if t.Reached {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(t.Hops)))
	for _, h := range t.Hops {
		b = binary.BigEndian.AppendUint32(b, h.IP)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(h.RTT))
		b = binary.BigEndian.AppendUint32(b, uint32(int32(h.TTL)))
	}
	return b, nil
}

// appendFrame frames payload (header + payload) onto dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// decodePayload parses one checksum-verified payload. Any leftover bytes
// after the body are corruption (the checksum only proves the payload is
// what the writer framed, not that the writer framed a whole record), so
// exact consumption is enforced for both kinds.
func decodePayload(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, errors.New("wal: empty record payload")
	}
	switch p[0] {
	case kindUpdate:
		br := bgp.NewBinaryReader(bytes.NewReader(p[1:]))
		u, err := br.Read()
		if err != nil {
			return Record{}, fmt.Errorf("wal: decode update record: %w", err)
		}
		if _, err := br.Read(); err != io.EOF {
			return Record{}, errors.New("wal: trailing bytes after update record")
		}
		return Record{Update: &u}, nil
	case kindTrace:
		t, err := decodeTrace(p[1:])
		if err != nil {
			return Record{}, err
		}
		return Record{Trace: t}, nil
	default:
		return Record{}, fmt.Errorf("wal: unknown record kind %d", p[0])
	}
}

func decodeTrace(b []byte) (*traceroute.Traceroute, error) {
	const fixed = 35 // 3×int64 + 2×uint32 + reached + nhops
	if len(b) < fixed {
		return nil, errors.New("wal: short traceroute record")
	}
	t := &traceroute.Traceroute{
		MsmID:   int64(binary.BigEndian.Uint64(b[0:8])),
		ProbeID: int(int64(binary.BigEndian.Uint64(b[8:16]))),
		Time:    int64(binary.BigEndian.Uint64(b[16:24])),
		Src:     binary.BigEndian.Uint32(b[24:28]),
		Dst:     binary.BigEndian.Uint32(b[28:32]),
	}
	switch b[32] {
	case 0:
	case 1:
		t.Reached = true
	default:
		return nil, fmt.Errorf("wal: bad reached flag %d", b[32])
	}
	nhops := int(binary.BigEndian.Uint16(b[33:35]))
	if len(b) != fixed+16*nhops {
		return nil, fmt.Errorf("wal: traceroute record length %d does not match %d hops", len(b), nhops)
	}
	if nhops > 0 {
		t.Hops = make([]traceroute.Hop, nhops)
		for i := range t.Hops {
			off := fixed + 16*i
			t.Hops[i] = traceroute.Hop{
				IP:  binary.BigEndian.Uint32(b[off : off+4]),
				RTT: math.Float64frombits(binary.BigEndian.Uint64(b[off+4 : off+12])),
				TTL: int(int32(binary.BigEndian.Uint32(b[off+12 : off+16]))),
			}
		}
	}
	return t, nil
}

// --- exported payload codec ---
//
// The feed wire protocol (internal/feedwire) frames the same record
// payloads over TCP that the WAL frames on disk, so a daemon ingesting
// over the network and one replaying a log decode byte-identical records
// through one codec. These wrappers expose exactly the payload layer —
// kind byte + body — leaving each transport to own its framing.

// EncodeUpdatePayload builds the kind-1 record payload for one BGP update.
func EncodeUpdatePayload(u bgp.Update) ([]byte, error) { return encodeUpdate(u) }

// EncodeTracePayload builds the kind-2 record payload for one traceroute.
func EncodeTracePayload(t *traceroute.Traceroute) ([]byte, error) { return encodeTrace(t) }

// DecodeRecordPayload parses one checksum-verified record payload (kind
// byte + body), enforcing exact consumption.
func DecodeRecordPayload(p []byte) (Record, error) { return decodePayload(p) }

// AppendRecordFrame frames payload (length + CRC32C header, then the
// payload) onto dst — the WAL's on-disk frame, reused verbatim by the
// feed wire protocol.
func AppendRecordFrame(dst, payload []byte) []byte { return appendFrame(dst, payload) }

// IsRecordKind reports whether b is a record payload kind this codec
// decodes (feedwire reserves the remaining kind space for control frames).
func IsRecordKind(b byte) bool { return b == kindUpdate || b == kindTrace }

// segScan summarizes one segment pass.
type segScan struct {
	records uint64
	maxTime int64
	// goodLen is the byte offset just past the last intact record; a torn
	// tail is truncated back to it.
	goodLen int64
	torn    bool
	tornErr error
}

// scanSegment reads every intact record of one segment in order, invoking
// fn for each. allowTorn (the log's final segment) turns a torn or corrupt
// tail into a truncation point instead of an error: everything up to the
// first bad byte is kept, the rest is the unsynced remains of a crash.
// Mid-log segments get no such forgiveness — a bad record there means data
// the log claimed durable is gone, which must fail recovery loudly.
func scanSegment(r io.Reader, fn func(Record) error, allowTorn bool) (segScan, error) {
	sc := segScan{maxTime: math.MinInt64}
	torn := func(reason error) (segScan, error) {
		if allowTorn {
			sc.torn, sc.tornErr = true, reason
			return sc, nil
		}
		return sc, reason
	}
	br := bufio.NewReaderSize(r, 64<<10)
	magic := make([]byte, len(segMagic))
	if n, err := io.ReadFull(br, magic); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return torn(fmt.Errorf("wal: segment shorter than its magic (%d bytes)", n))
		}
		return sc, err
	}
	if string(magic) != segMagic {
		return sc, fmt.Errorf("wal: bad segment magic %q", magic)
	}
	sc.goodLen = int64(len(segMagic))

	var hdr [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return sc, nil // clean frame boundary
			}
			if err == io.ErrUnexpectedEOF {
				return torn(errors.New("wal: torn record header"))
			}
			return sc, err
		}
		plen := binary.BigEndian.Uint32(hdr[0:4])
		want := binary.BigEndian.Uint32(hdr[4:8])
		if plen == 0 || plen > maxRecordBytes {
			return torn(fmt.Errorf("wal: impossible record length %d", plen))
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return torn(errors.New("wal: torn record payload"))
			}
			return sc, err
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return torn(errors.New("wal: record checksum mismatch"))
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return torn(err)
		}
		sc.records++
		if t := rec.Time(); t > sc.maxTime {
			sc.maxTime = t
		}
		sc.goodLen += int64(frameHeaderLen) + int64(plen)
		if fn != nil {
			if err := fn(rec); err != nil {
				return sc, err
			}
		}
	}
}
