// Crash-torture harness: kill the daemon's write path at seeded points
// mid-ingest, recover from disk, and prove the recovered process is
// indistinguishable — byte-identical /v1/stats, identical signal stream,
// identical WAL contents — from one that never crashed. External test
// package: it drives the full rrr pipeline and the HTTP server against a
// real on-disk log, which an in-package test could not import without a
// cycle.
package wal_test

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"rrr"
	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/server"
	"rrr/internal/wal"
)

// octetMapper maps an address to the AS in its first octet; 240.x is IXP 1.
type octetMapper struct{}

func (octetMapper) ASOf(ip uint32) (bgp.ASN, bool) {
	f := ip >> 24
	if f == 240 || f == 0 {
		return 0, false
	}
	return bgp.ASN(f), true
}

func (octetMapper) IXPOf(ip uint32) (int, bool) { return 1, ip>>24 == 240 }

func mustIP(t *testing.T, s string) uint32 {
	t.Helper()
	v, err := rrr.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func tortureTrace(t *testing.T, when int64, src, dst string, hops ...string) *rrr.Traceroute {
	t.Helper()
	tr := &rrr.Traceroute{Src: mustIP(t, src), Dst: mustIP(t, dst), Time: when}
	for i, h := range hops {
		tr.Hops = append(tr.Hops, rrr.Hop{IP: mustIP(t, h), TTL: i + 1})
	}
	return tr
}

func tortureUpdate(t *testing.T, tm int64, vpIP string, as rrr.ASN, path []rrr.ASN) rrr.Update {
	t.Helper()
	p, err := rrr.ParsePrefix("4.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	return rrr.Update{Time: tm, PeerIP: mustIP(t, vpIP), PeerAS: as, Type: bgp.Announce,
		Prefix: p, ASPath: path}
}

// tortureMonitor rebuilds the deterministic pre-feed state the daemon
// would: mapper + aliases, two primed VP routes, one tracked pair. Every
// run (baseline, crashed, recovered) starts from an identical monitor, as
// rrrd's deterministic re-priming guarantees.
func tortureMonitor(t *testing.T) *rrr.Monitor {
	t.Helper()
	m, err := rrr.NewMonitor(rrr.Options{
		Mapper:  octetMapper{},
		Aliases: bordermap.OracleFunc(func(v uint32) (int, bool) { return int(v), true }),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveBGP(tortureUpdate(t, 0, "5.0.0.9", 5, []rrr.ASN{5, 2, 3, 4}))
	m.ObserveBGP(tortureUpdate(t, 0, "6.0.0.9", 6, []rrr.ASN{6, 3, 4}))
	if err := m.Track(tortureTrace(t, 0, "1.0.0.1", "4.0.0.9",
		"1.0.0.2", "2.0.0.1", "3.0.0.1", "4.0.0.9")); err != nil {
		t.Fatal(err)
	}
	return m
}

// tortureUpdates: two VPs announcing once per window for 50 windows, VP 5
// shifting its path inside the monitored suffix at window 45.
func tortureUpdates(t *testing.T) []rrr.Update {
	t.Helper()
	var out []rrr.Update
	for w := int64(1); w <= 50; w++ {
		out = append(out, tortureUpdate(t, w*900+3, "6.0.0.9", 6, []rrr.ASN{6, 3, 4}))
		path := []rrr.ASN{5, 2, 3, 4}
		if w >= 45 {
			path = []rrr.ASN{5, 2, 9, 4}
		}
		out = append(out, tortureUpdate(t, w*900+7, "5.0.0.9", 5, path))
	}
	return out
}

// tortureTraces: a public traceroute every fifth window, so the log
// carries both record kinds.
func tortureTraces(t *testing.T) []*rrr.Traceroute {
	t.Helper()
	var out []*rrr.Traceroute
	for w := int64(5); w <= 50; w += 5 {
		out = append(out, tortureTrace(t, w*900+5, "7.0.0.1", "8.0.0.9",
			"7.0.0.2", "3.0.0.5", "8.0.0.9"))
	}
	return out
}

type sliceTraces struct {
	traces []*rrr.Traceroute
	i      int
}

func (s *sliceTraces) Read() (*rrr.Traceroute, error) {
	if s.i >= len(s.traces) {
		return nil, io.EOF
	}
	tr := s.traces[s.i]
	s.i++
	return tr, nil
}

// statsBody renders /v1/stats for a monitor + WAL exactly as rrrd serves
// it, returning the raw response bytes.
func statsBody(t *testing.T, m *rrr.Monitor, w *wal.WAL) []byte {
	t.Helper()
	srv := server.New(m, server.Config{WALStatus: w.Status})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("/v1/stats -> %d: %s", rec.Code, rec.Body.String())
	}
	return rec.Body.Bytes()
}

// dirBytes concatenates a log dir's segment files in sequence order.
func dirBytes(t *testing.T, dir string) []byte {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	var all []byte
	for _, n := range names {
		b, err := os.ReadFile(n)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	return all
}

// tortureBaseline runs the pipeline uninterrupted with a WAL under the
// given options and returns the ground truth a recovered run must match.
type baseline struct {
	sigs  []rrr.Signal
	stale []rrr.Key
	stats []byte
	log   []byte
	recs  uint64
}

func walOptions(dir string, policy wal.FsyncPolicy) wal.Options {
	return wal.Options{
		Dir:          dir,
		SegmentBytes: 512, // tiny: every run crosses several rotations
		Fsync:        policy,
		// An hour-long interval makes FsyncInterval maximally lazy: the
		// crash loses everything since the last window close, the hardest
		// recovery case the policy allows.
		FsyncInterval: time.Hour,
	}
}

func tortureBaseline(t *testing.T, policy wal.FsyncPolicy) baseline {
	t.Helper()
	dir := t.TempDir()
	w, err := wal.Open(walOptions(dir, policy))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	m := tortureMonitor(t)
	var sigs []rrr.Signal
	err = rrr.RunPipeline(context.Background(), m, rrr.PipelineConfig{
		Updates: bgp.NewSliceSource(tortureUpdates(t)),
		Traces:  &sliceTraces{traces: tortureTraces(t)},
		Sink:    func(s rrr.Signal) { sigs = append(sigs, s) },
		WAL:     w,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) == 0 {
		t.Fatal("baseline produced no signals; the torture comparison would be vacuous")
	}
	b := baseline{
		sigs:  sigs,
		stale: m.StaleKeys(),
		stats: statsBody(t, m, w),
		recs:  w.Status().Records,
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b.log = dirBytes(t, dir)
	return b
}

// TestCrashTorture is the acceptance harness: for seeded crash points
// spread over the run (cycling all three fsync policies), a process that
// dies mid-append, recovers from the on-disk log, and resumes from the
// re-opened feeds ends byte-identical to one that never crashed — same
// signal stream, same stale set, same /v1/stats bytes, and the same log
// bytes on disk (nothing duplicated, nothing lost).
func TestCrashTorture(t *testing.T) {
	policies := []wal.FsyncPolicy{wal.FsyncEveryRecord, wal.FsyncOnWindowClose, wal.FsyncInterval}
	bases := make(map[wal.FsyncPolicy]baseline, len(policies))
	for _, p := range policies {
		bases[p] = tortureBaseline(t, p)
	}

	points := 21
	if testing.Short() {
		points = 6
	}
	rng := rand.New(rand.NewSource(41))
	total := int(bases[wal.FsyncEveryRecord].recs)
	for i := 0; i < points; i++ {
		policy := policies[i%len(policies)]
		crashAt := 1 + rng.Intn(total-1)
		partial := rng.Intn(48)
		t.Run(policy.String(), func(t *testing.T) {
			runTorturePoint(t, bases[policy], policy, uint64(crashAt), partial)
		})
	}
}

func runTorturePoint(t *testing.T, base baseline, policy wal.FsyncPolicy, crashAt uint64, partial int) {
	dir := t.TempDir()

	// Incarnation 1: ingest until the armed append kills the process.
	w1, err := wal.Open(walOptions(dir, policy))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w1.Replay(nil); err != nil {
		t.Fatal(err)
	}
	w1.SetCrashAfterAppends(crashAt, partial)
	m1 := tortureMonitor(t)
	err = rrr.RunPipeline(context.Background(), m1, rrr.PipelineConfig{
		Updates: bgp.NewSliceSource(tortureUpdates(t)),
		Traces:  &sliceTraces{traces: tortureTraces(t)},
		Sink:    func(rrr.Signal) {},
		WAL:     w1,
	})
	if !errors.Is(err, wal.ErrSimulatedCrash) {
		t.Fatalf("crash-armed pipeline err = %v, want the simulated crash", err)
	}
	w1.Close() // post-crash no-op, like the dead process's kernel cleanup

	// Incarnation 2: recover. Deterministic re-prime, replay the log
	// through the recovery path, then resume the pipeline from the
	// re-opened feeds — the open window's re-delivered records are skipped
	// positionally, everything the unsynced buffer lost is re-fetched.
	w2, err := wal.Open(walOptions(dir, policy))
	if err != nil {
		t.Fatal(err)
	}
	m2 := tortureMonitor(t)
	var sigs []rrr.Signal
	rec := rrr.NewRecovery(m2, func(s rrr.Signal) { sigs = append(sigs, s) })
	info, err := w2.Replay(func(r wal.Record) error {
		switch {
		case r.Update != nil:
			rec.ObserveUpdate(*r.Update)
		case r.Trace != nil:
			rec.ObserveTrace(r.Trace)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("recovery replay: %v", err)
	}
	if info.Records > crashAt {
		t.Fatalf("recovered %d records but only %d were ever appended", info.Records, crashAt)
	}
	if policy == wal.FsyncEveryRecord && info.Records != crashAt {
		t.Fatalf("per-record durability recovered %d of %d acknowledged records", info.Records, crashAt)
	}
	resume, _ := rec.Finish()

	updates := rrr.UpdateSource(bgp.NewSliceSource(tortureUpdates(t)))
	traces := rrr.TraceSource(&sliceTraces{traces: tortureTraces(t)})
	if resume.WindowStart != rrr.ResumeAll {
		updates = rrr.SkipUpdatesBefore(updates, resume.WindowStart)
		traces = rrr.SkipTracesBefore(traces, resume.WindowStart)
	}
	err = rrr.RunPipeline(context.Background(), m2, rrr.PipelineConfig{
		Updates: updates,
		Traces:  traces,
		Sink:    func(s rrr.Signal) { sigs = append(sigs, s) },
		WAL:     w2,
		Resume:  resume,
	})
	if err != nil {
		t.Fatalf("resumed pipeline: %v", err)
	}

	// The recovered incarnation must be indistinguishable from never
	// having crashed.
	if !reflect.DeepEqual(sigs, base.sigs) {
		t.Fatalf("crash at %d (partial %d): signal stream diverges:\n got  %v\n want %v",
			crashAt, partial, sigs, base.sigs)
	}
	if !reflect.DeepEqual(m2.StaleKeys(), base.stale) {
		t.Fatalf("crash at %d: stale set = %v, want %v", crashAt, m2.StaleKeys(), base.stale)
	}
	if got := statsBody(t, m2, w2); !reflect.DeepEqual(got, base.stats) {
		t.Fatalf("crash at %d: /v1/stats diverges:\n got  %s\n want %s", crashAt, got, base.stats)
	}
	if st := w2.Status(); st.Records != base.recs {
		t.Fatalf("crash at %d: log holds %d records, want %d (dup or loss)", crashAt, st.Records, base.recs)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := dirBytes(t, dir); !reflect.DeepEqual(got, base.log) {
		t.Fatalf("crash at %d: on-disk log bytes diverge from uninterrupted run (%d vs %d bytes)",
			crashAt, len(got), len(base.log))
	}
}
