// Cluster crash-torture: kill one worker of a K=3 partitioned cluster at
// seeded WAL append points mid-ingest, recover it from its own on-disk
// log, and prove the cluster lost nothing — the recovered worker's signal
// stream, stale set, and log bytes match its never-crashed twin, and the
// router-merged /v1/keys, full-corpus /v1/stale, and /v1/stats are
// byte-identical to a cluster that never lost the worker. Lives beside
// the single-node torture harness because the crash-injection hooks are
// test-only exports of package wal.
package wal_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"rrr"
	"rrr/internal/cluster"
	"rrr/internal/experiments"
	"rrr/internal/server"
	"rrr/internal/wal"
)

const clusterTortureWorkers = 3

// clusterTortureScale mirrors the cluster differential tests: one
// simulated day, small enough for CI, busy enough that every worker's
// slice emits signals.
func clusterTortureScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Days = 1
	sc.PublicPerWindow = 5
	return sc
}

// clusterWalOptions: segments stay tiny so every run crosses rotations,
// but not so tiny that a day-long simulated feed shatters into thousands
// of files. The hour-long interval keeps FsyncInterval maximally lazy —
// the crash loses everything since the last window close.
func clusterWalOptions(dir string, policy wal.FsyncPolicy) wal.Options {
	return wal.Options{
		Dir:           dir,
		SegmentBytes:  4096,
		Fsync:         policy,
		FsyncInterval: time.Hour,
	}
}

// clusterTortureWorker rebuilds worker w's deterministic pre-feed state: a
// fresh simulated environment and a monitor primed from the BGP dump,
// tracking only the corpus pairs w's ring slice owns. Every incarnation
// (baseline, crashed, recovered) starts from an identical monitor, exactly
// as rrrd's re-priming on restart guarantees.
func clusterTortureWorker(t *testing.T, sc experiments.Scale, ring *cluster.Ring, w int) (*rrr.Monitor, *experiments.DaemonEnv) {
	t.Helper()
	env := experiments.NewDaemonEnv(sc, 0)
	cfg := rrr.DefaultConfig()
	cfg.WindowSec = sc.WindowSec
	cfg.Shards = sc.Shards
	mon, err := rrr.NewMonitor(rrr.Options{
		Config:     cfg,
		Mapper:     env.Mapper,
		Aliases:    env.Aliases,
		Geo:        env.Geo,
		Rel:        env.Rel,
		IXPMembers: env.IXPMembers,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range env.Dump {
		mon.ObserveBGP(u)
	}
	tracked := 0
	for _, tr := range env.Corpus {
		if ring.Owner(tr.Key()) != w {
			continue
		}
		// AS-loop traces are rejected by design; skip them like the lab.
		if err := mon.Track(tr); err == nil {
			tracked++
		}
	}
	if tracked == 0 {
		t.Fatalf("worker %d tracks no pairs; killing it would prove nothing", w)
	}
	return mon, env
}

// runClusterWorker drives one worker's pipeline to feed EOF against its
// own write-ahead log. Workers ingest the full feeds (so the log carries
// every record) while the monitor reacts only to its tracked slice.
func runClusterWorker(mon *rrr.Monitor, env *experiments.DaemonEnv, w *wal.WAL, sink func(rrr.Signal)) error {
	return rrr.RunPipeline(context.Background(), mon, rrr.PipelineConfig{
		Updates: env.Updates,
		Traces:  env.Traces,
		Sink:    sink,
		WAL:     w,
	})
}

func clusterGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

func clusterPost(t *testing.T, url, body string) string {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	return string(data)
}

// mergedSurfaces serves the given worker monitors behind a fresh router
// and captures the merged comparison surfaces: the key list, a
// full-corpus batch verdict response, and merged stats.
func mergedSurfaces(t *testing.T, ring *cluster.Ring, mons []*rrr.Monitor) (keys, batch, stats string) {
	t.Helper()
	urls := make([]string, len(mons))
	workers := make([]*httptest.Server, len(mons))
	for i, m := range mons {
		srv := server.New(m, server.Config{Worker: &server.WorkerIdentity{
			ID:         i,
			Workers:    len(mons),
			Partitions: ring.OwnedPartitions(i),
		}})
		workers[i] = httptest.NewServer(srv.Handler())
		urls[i] = workers[i].URL
	}
	rt, err := cluster.NewRouter(cluster.Options{
		Workers:       urls,
		Timeout:       30 * time.Second,
		StreamBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer func() {
		// Order matters: the router's SSE clients hold long-lived
		// connections into the workers; drop them before the worker
		// servers wait out their conns.
		front.Close()
		rt.Close()
		for _, ts := range workers {
			ts.Close()
		}
	}()

	keys = clusterGet(t, front.URL+"/v1/keys")
	var kr struct {
		Keys []string `json:"keys"`
	}
	if err := json.Unmarshal([]byte(keys), &kr); err != nil {
		t.Fatalf("keys response: %v", err)
	}
	if len(kr.Keys) == 0 {
		t.Fatal("merged key list is empty; the torture comparison would be vacuous")
	}
	body, _ := json.Marshal(map[string]any{"keys": kr.Keys})
	batch = clusterPost(t, front.URL+"/v1/stale", string(body))
	stats = clusterGet(t, front.URL+"/v1/stats")
	return keys, batch, stats
}

// mustMatch fails at the first divergent line instead of dumping two full
// bodies.
func mustMatch(t *testing.T, what, want, got string) {
	t.Helper()
	if want == got {
		return
	}
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		wl, gl := "", ""
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			t.Fatalf("%s diverges at line %d:\n intact:    %q\n recovered: %q", what, i+1, wl, gl)
		}
	}
	t.Fatalf("%s differs only in trailing newlines", what)
}

// clusterWorkerBase is one worker's uninterrupted ground truth.
type clusterWorkerBase struct {
	mon  *rrr.Monitor
	sigs []rrr.Signal
	recs uint64
	log  []byte
}

// TestClusterCrashTorture is the cluster acceptance harness: for seeded
// crash points cycling all three fsync policies, a K=3 cluster whose
// middle worker dies mid-append and recovers from its own log ends
// byte-identical — per-worker and router-merged — to a cluster that never
// lost a process.
func TestClusterCrashTorture(t *testing.T) {
	sc := clusterTortureScale()
	ring, err := cluster.NewRing(clusterTortureWorkers, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted baseline: every worker runs its full feed against its
	// own log.
	bases := make([]*clusterWorkerBase, clusterTortureWorkers)
	mons := make([]*rrr.Monitor, clusterTortureWorkers)
	for w := range bases {
		dir := t.TempDir()
		wl, err := wal.Open(clusterWalOptions(dir, wal.FsyncEveryRecord))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wl.Replay(nil); err != nil {
			t.Fatal(err)
		}
		mon, env := clusterTortureWorker(t, sc, ring, w)
		wb := &clusterWorkerBase{mon: mon}
		if err := runClusterWorker(mon, env, wl, func(s rrr.Signal) { wb.sigs = append(wb.sigs, s) }); err != nil {
			t.Fatalf("baseline worker %d: %v", w, err)
		}
		if len(wb.sigs) == 0 {
			t.Fatalf("baseline worker %d emitted no signals; its slice is dead weight", w)
		}
		wb.recs = wl.Status().Records
		if err := wl.Close(); err != nil {
			t.Fatal(err)
		}
		wb.log = dirBytes(t, dir)
		bases[w] = wb
		mons[w] = mon
	}
	baseKeys, baseBatch, baseStats := mergedSurfaces(t, ring, mons)

	const victim = 1
	policies := []wal.FsyncPolicy{wal.FsyncEveryRecord, wal.FsyncOnWindowClose, wal.FsyncInterval}
	points := len(policies)
	if testing.Short() {
		points = 1
	}
	rng := rand.New(rand.NewSource(43))
	total := int(bases[victim].recs)
	if total < 2 {
		t.Fatalf("victim logged only %d records; no interior crash point exists", total)
	}
	for i := 0; i < points; i++ {
		policy := policies[i%len(policies)]
		crashAt := 1 + rng.Intn(total-1)
		partial := rng.Intn(48)
		t.Run(fmt.Sprintf("%s/crashAt=%d", policy, crashAt), func(t *testing.T) {
			runClusterTorturePoint(t, sc, ring, bases, victim, policy, uint64(crashAt), partial,
				baseKeys, baseBatch, baseStats)
		})
	}
}

func runClusterTorturePoint(t *testing.T, sc experiments.Scale, ring *cluster.Ring,
	bases []*clusterWorkerBase, victim int, policy wal.FsyncPolicy, crashAt uint64, partial int,
	baseKeys, baseBatch, baseStats string) {
	dir := t.TempDir()

	// Incarnation 1: the victim ingests until the armed append kills it.
	// The other workers are untouched — their baseline state stands in for
	// processes that simply kept running.
	w1, err := wal.Open(clusterWalOptions(dir, policy))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w1.Replay(nil); err != nil {
		t.Fatal(err)
	}
	w1.SetCrashAfterAppends(crashAt, partial)
	m1, env1 := clusterTortureWorker(t, sc, ring, victim)
	err = runClusterWorker(m1, env1, w1, func(rrr.Signal) {})
	if !errors.Is(err, wal.ErrSimulatedCrash) {
		t.Fatalf("crash-armed worker pipeline err = %v, want the simulated crash", err)
	}
	w1.Close() // post-crash no-op, like the dead process's kernel cleanup

	// Incarnation 2: recover — deterministic re-prime, replay the log
	// through the recovery path, resume from the re-opened feeds.
	w2, err := wal.Open(clusterWalOptions(dir, policy))
	if err != nil {
		t.Fatal(err)
	}
	m2, env2 := clusterTortureWorker(t, sc, ring, victim)
	var sigs []rrr.Signal
	rec := rrr.NewRecovery(m2, func(s rrr.Signal) { sigs = append(sigs, s) })
	info, err := w2.Replay(func(r wal.Record) error {
		switch {
		case r.Update != nil:
			rec.ObserveUpdate(*r.Update)
		case r.Trace != nil:
			rec.ObserveTrace(r.Trace)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("recovery replay: %v", err)
	}
	if info.Records > crashAt {
		t.Fatalf("recovered %d records but only %d were ever appended", info.Records, crashAt)
	}
	if policy == wal.FsyncEveryRecord && info.Records != crashAt {
		t.Fatalf("per-record durability recovered %d of %d acknowledged records", info.Records, crashAt)
	}
	resume, _ := rec.Finish()

	updates := rrr.UpdateSource(env2.Updates)
	traces := rrr.TraceSource(env2.Traces)
	if resume.WindowStart != rrr.ResumeAll {
		updates = rrr.SkipUpdatesBefore(updates, resume.WindowStart)
		traces = rrr.SkipTracesBefore(traces, resume.WindowStart)
	}
	err = rrr.RunPipeline(context.Background(), m2, rrr.PipelineConfig{
		Updates: updates,
		Traces:  traces,
		Sink:    func(s rrr.Signal) { sigs = append(sigs, s) },
		WAL:     w2,
		Resume:  resume,
	})
	if err != nil {
		t.Fatalf("resumed worker pipeline: %v", err)
	}

	// Worker-level: the recovered victim must be indistinguishable from
	// its never-crashed twin.
	base := bases[victim]
	if !reflect.DeepEqual(sigs, base.sigs) {
		t.Fatalf("crash at %d (partial %d): victim signal stream diverges (%d signals, want %d)",
			crashAt, partial, len(sigs), len(base.sigs))
	}
	if !reflect.DeepEqual(m2.StaleKeys(), base.mon.StaleKeys()) {
		t.Fatalf("crash at %d: victim stale set = %v, want %v", crashAt, m2.StaleKeys(), base.mon.StaleKeys())
	}
	if st := w2.Status(); st.Records != base.recs {
		t.Fatalf("crash at %d: victim log holds %d records, want %d (dup or loss)", crashAt, st.Records, base.recs)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := dirBytes(t, dir); !reflect.DeepEqual(got, base.log) {
		t.Fatalf("crash at %d: victim on-disk log diverges from uninterrupted run (%d vs %d bytes)",
			crashAt, len(got), len(base.log))
	}

	// Cluster-level: the router merging [intact, recovered, intact] must
	// be byte-identical to the never-killed cluster.
	mons := make([]*rrr.Monitor, len(bases))
	for w, wb := range bases {
		mons[w] = wb.mon
	}
	mons[victim] = m2
	keys, batch, stats := mergedSurfaces(t, ring, mons)
	mustMatch(t, "merged /v1/keys", baseKeys, keys)
	mustMatch(t, "merged /v1/stale batch", baseBatch, batch)
	mustMatch(t, "merged /v1/stats", baseStats, stats)
}
