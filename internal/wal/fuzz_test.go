package wal

import (
	"os"
	"path/filepath"
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/trie"
)

// fuzzSeedSegment builds a small valid segment image for the seed corpus.
func fuzzSeedSegment(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := w.Replay(nil); err != nil {
		f.Fatal(err)
	}
	p, err := trie.ParsePrefix("4.0.0.0/8")
	if err != nil {
		f.Fatal(err)
	}
	u := bgp.Update{Time: 900, PeerIP: 0x05000009, PeerAS: 5, Type: bgp.Announce,
		Prefix: p, ASPath: bgp.Path{5, 2, 3, 4}}
	if err := w.AppendUpdate(u); err != nil {
		f.Fatal(err)
	}
	if err := w.AppendTrace(testTrace(905)); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzWALReader feeds arbitrary bytes to the segment reader as a log's
// final segment. The reader must never panic, and recovery must be
// idempotent: whatever Replay accepted (possibly after truncating a torn
// tail), a second Open+Replay of the same directory must succeed cleanly —
// same record count, no further truncation. A reader that "recovers" into
// a state it cannot itself re-read would strand the daemon on its second
// restart.
func FuzzWALReader(f *testing.F) {
	valid := fuzzSeedSegment(f)
	f.Add(valid)                                     // intact segment
	f.Add(valid[:len(valid)-3])                      // torn tail
	f.Add(append([]byte(nil), valid[:8]...))         // bare magic
	f.Add([]byte(segMagic[:5]))                      // segment shorter than magic
	f.Add([]byte{})                                  // empty file
	f.Add([]byte("NOTAWAL!garbage"))                 // wrong magic
	f.Add(append(append([]byte(nil), valid...), make([]byte, frameHeaderLen)...)) // zero-length frame
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped) // checksum mismatch in the last record

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err) // a single well-named segment must always list
		}
		info, err := w.Replay(nil)
		if err != nil {
			return // hard rejection (bad magic etc.) is a valid outcome
		}
		w.Close()

		w2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("reopen after successful recovery: %v", err)
		}
		info2, err := w2.Replay(nil)
		if err != nil {
			t.Fatalf("second replay after successful recovery: %v", err)
		}
		w2.Close()
		if info2.Records != info.Records {
			t.Fatalf("second replay saw %d records, first saw %d", info2.Records, info.Records)
		}
		if info2.TruncatedTail {
			t.Fatal("second replay truncated again; recovery did not reach a fixed point")
		}
	})
}
