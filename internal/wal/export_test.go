package wal

// Test-only access to the crash-injection hooks, so the external torture
// tests (package wal_test, which must be external to import rrr and
// rrr/internal/server without an import cycle) can drive them.

// ErrSimulatedCrash is the sentinel a crashed log returns from Append.
var ErrSimulatedCrash = errSimulatedCrash

// SetCrashAfterAppends arms the simulated crash: the append that would be
// number n+1 abandons the file descriptor (optionally flushing a partial
// prefix of the pending buffer, as a kernel that lost power mid-page
// would) and fails with ErrSimulatedCrash.
func (w *WAL) SetCrashAfterAppends(n uint64, partialBytes int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.crashAfterAppends = n
	w.crashPartialBytes = partialBytes
}

// SetFailSync makes every subsequent sync attempt fail with err.
func (w *WAL) SetFailSync(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failSync = err
}
