package wal

import "rrr/internal/obs"

// Metric handles for the WAL layer, resolved once at package init so the
// append hot path touches only atomics. Counters are cumulative across
// all WAL instances in the process; the segments gauge describes the most
// recently active log (the daemon runs exactly one).
var (
	metAppends     = obs.Default.Counter("rrr_wal_appends_total")
	metAppendBytes = obs.Default.Counter("rrr_wal_append_bytes_total")
	metFsyncs      = obs.Default.Counter("rrr_wal_fsyncs_total")
	metSegments    = obs.Default.Gauge("rrr_wal_segments")
	metRotations   = obs.Default.Counter("rrr_wal_segment_rotations_total")
	metTruncations = obs.Default.Counter("rrr_wal_tail_truncations_total")
	metReplayed    = obs.Default.Counter("rrr_wal_records_replayed_total")
	metCompacted     = obs.Default.Counter("rrr_wal_compacted_segments_total")
	metReplaySeconds = obs.Default.Histogram("rrr_wal_replay_seconds", nil)
)

func init() {
	obs.Default.Help("rrr_wal_appends_total", "feed records appended to the write-ahead log")
	obs.Default.Help("rrr_wal_append_bytes_total", "framed bytes appended to the write-ahead log")
	obs.Default.Help("rrr_wal_fsyncs_total", "fsync calls issued by the write-ahead log")
	obs.Default.Help("rrr_wal_segments", "segment files currently in the write-ahead log")
	obs.Default.Help("rrr_wal_segment_rotations_total", "segment rotations (active segment sealed, next one opened)")
	obs.Default.Help("rrr_wal_tail_truncations_total", "torn or corrupt final-segment tails truncated during recovery")
	obs.Default.Help("rrr_wal_records_replayed_total", "records read back from the log during recovery replay")
	obs.Default.Help("rrr_wal_compacted_segments_total", "sealed segments deleted because a snapshot watermark covered them")
	obs.Default.Help("rrr_wal_replay_seconds", "wall time of recovery replay passes over the log")
}
