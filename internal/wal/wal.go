// Package wal is rrrd's write-ahead log: a segmented, length-prefixed,
// CRC32C-checksummed binary record of every feed record the pipeline
// ingests. Together with the periodic snapshot it makes the daemon
// crash-consistent — the snapshot restores the monitor's serving state,
// and replaying the WAL records past the snapshot's window watermark
// rebuilds everything ingested since, so a restart loses nothing that the
// configured fsync policy made durable.
//
// Lifecycle: Open lists the segment files, Replay streams every intact
// record through a callback (truncating a torn or corrupt tail of the
// final segment at the first bad record), and only then does the log
// accept Append calls. Compact deletes sealed segments wholly covered by
// a snapshot watermark. One WAL instance has one writer (the pipeline
// goroutine); Status may be called concurrently.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rrr/internal/bgp"
	"rrr/internal/obs"
	"rrr/internal/traceroute"
)

// FsyncPolicy says when appended records become durable.
type FsyncPolicy int

const (
	// FsyncOnWindowClose syncs when the pipeline closes a signal window:
	// a crash can lose at most the open window's records, which recovery
	// re-fetches from the feeds anyway (they are past the last completed
	// window). This is the zero value and the default: it aligns
	// durability with the unit the rest of the system already reasons in.
	FsyncOnWindowClose FsyncPolicy = iota
	// FsyncEveryRecord syncs after each append: nothing acknowledged is
	// ever lost, at one fsync per record.
	FsyncEveryRecord
	// FsyncInterval syncs at most once per configured interval (and still
	// on window close), bounding loss by time instead of windows.
	FsyncInterval
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncEveryRecord:
		return "record"
	case FsyncOnWindowClose:
		return "window"
	case FsyncInterval:
		return "interval"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses the -wal-fsync flag: "record", "window", or a
// Go duration ("5s") selecting FsyncInterval with that interval.
func ParseFsyncPolicy(s string) (FsyncPolicy, time.Duration, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "record", "always":
		return FsyncEveryRecord, 0, nil
	case "window", "":
		return FsyncOnWindowClose, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("wal: fsync policy %q: want record, window, or a positive duration", s)
	}
	return FsyncInterval, d, nil
}

// Options configures Open.
type Options struct {
	// Dir holds the segment files (created if absent).
	Dir string
	// SegmentBytes rotates to a new segment once the active one would
	// exceed this size (default 8 MiB). A single record always fits: the
	// segment grows past the limit rather than splitting a record.
	SegmentBytes int64
	// Fsync is the durability policy (default FsyncOnWindowClose).
	Fsync FsyncPolicy
	// FsyncInterval is FsyncInterval's period (default 1s).
	FsyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = time.Second
	}
	return o
}

const segSuffix = ".wal"

// segName renders segment file names so lexical order equals sequence
// order (16 zero-padded decimal digits).
func segName(seq uint64) string { return fmt.Sprintf("%016d%s", seq, segSuffix) }

// segMeta tracks one segment's bookkeeping. For sealed segments records
// and maxTime are exact (filled by replay or rotation); for the active
// segment they grow with each append.
type segMeta struct {
	seq     uint64
	path    string
	bytes   int64
	records uint64
	maxTime int64
}

// ReplayInfo summarizes one Replay pass.
type ReplayInfo struct {
	// Segments scanned (including the one reopened for appending).
	Segments int
	// Records delivered to the callback.
	Records uint64
	// TruncatedTail reports that the final segment ended in a torn or
	// corrupt record and was truncated back to its last intact one.
	TruncatedTail bool
}

// Status is the log's externally visible state, served in /v1/stats. It
// holds only log-deterministic values — the same record sequence always
// produces the same Status regardless of crash/recovery history — so a
// recovered daemon's stats stay byte-identical to an uninterrupted run's.
type Status struct {
	FsyncPolicy string `json:"fsyncPolicy"`
	Segments    int    `json:"segments"`
	Records     uint64 `json:"records"`
	Bytes       int64  `json:"bytes"`
}

// WAL is an open write-ahead log. Replay must run (once) before the first
// Append.
type WAL struct {
	mu   sync.Mutex
	opts Options

	f *os.File
	w *walBuffer

	segs     []segMeta // discovered by Open, consumed by Replay
	sealed   []segMeta
	cur      segMeta
	replayed bool
	closed   bool
	dirty    bool
	lastSync time.Time

	appends uint64
	// crashAfterAppends simulates a process crash for the torture tests:
	// when > 0, the append that would exceed it instead abandons the file
	// descriptor without flushing (losing whatever the OS never saw, as a
	// real crash would) and fails with errSimulatedCrash.
	crashAfterAppends uint64
	// crashPartialBytes, when > 0 at the simulated crash, writes that many
	// bytes of the pending buffer to the file before abandoning it —
	// modeling a kernel that flushed part of a page, which is exactly how
	// real torn tails happen (the buffer otherwise only ever flushes whole
	// frames, so every crash would land on a clean frame boundary).
	crashPartialBytes int
	crashed           bool
	// failSync, when set, makes the next sync attempt fail (disk-full /
	// write-error injection).
	failSync error
}

var errSimulatedCrash = fmt.Errorf("wal: simulated crash")

// Open lists dir's segments and prepares the log for Replay. No file is
// written yet; an empty or missing dir starts a fresh log at segment 1.
func Open(opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list dir: %w", err)
	}
	w := &WAL{opts: opts}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: foreign file %s in log dir", name)
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		w.segs = append(w.segs, segMeta{seq: seq, path: filepath.Join(opts.Dir, name), bytes: info.Size()})
	}
	sort.Slice(w.segs, func(i, j int) bool { return w.segs[i].seq < w.segs[j].seq })
	return w, nil
}

// Replay streams every intact record, oldest segment first, through fn
// (nil fn just validates and counts), then reopens the final segment for
// appending. A torn or corrupt tail on the final segment is truncated at
// the first bad record — counted in rrr_wal_tail_truncations_total — and
// recovery continues; the same damage mid-log is a hard error, because a
// record behind a later segment was claimed durable.
func (w *WAL) Replay(fn func(Record) error) (ReplayInfo, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var info ReplayInfo
	if w.replayed {
		return info, fmt.Errorf("wal: Replay already ran")
	}
	if w.closed {
		return info, fmt.Errorf("wal: log is closed")
	}
	timer := obs.NewTimer(metReplaySeconds)
	defer timer.Stop()
	for i := range w.segs {
		m := &w.segs[i]
		f, err := os.Open(m.path)
		if err != nil {
			return info, err
		}
		last := i == len(w.segs)-1
		sc, err := scanSegment(f, fn, last)
		f.Close()
		if err != nil {
			return info, fmt.Errorf("wal: segment %s: %w", filepath.Base(m.path), err)
		}
		m.records, m.maxTime = sc.records, sc.maxTime
		info.Records += sc.records
		metReplayed.Add(sc.records)
		if sc.torn {
			if err := truncateSegment(m.path, sc.goodLen); err != nil {
				return info, fmt.Errorf("wal: truncate torn tail of %s: %w", filepath.Base(m.path), err)
			}
			m.bytes = sc.goodLen
			info.TruncatedTail = true
			metTruncations.Inc()
		}
	}
	info.Segments = len(w.segs)
	if len(w.segs) == 0 {
		if err := w.createSegmentLocked(1); err != nil {
			return info, err
		}
		info.Segments = 1
	} else {
		w.sealed = w.segs[:len(w.segs)-1]
		if err := w.openActiveLocked(w.segs[len(w.segs)-1]); err != nil {
			return info, err
		}
	}
	w.segs = nil
	w.replayed = true
	w.lastSync = time.Now() // start the interval policy's clock at open
	metSegments.Set(int64(len(w.sealed) + 1))
	return info, nil
}

// truncateSegment cuts path back to n bytes and makes the cut durable, so
// a crash right after recovery cannot resurrect the discarded tail.
func truncateSegment(path string, n int64) error {
	if err := os.Truncate(path, n); err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// openActiveLocked reopens an existing segment for appending. A segment
// truncated all the way to (or before) its magic gets the magic
// rewritten: the file is empty of records either way.
func (w *WAL) openActiveLocked(m segMeta) error {
	f, err := os.OpenFile(m.path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if m.bytes < int64(len(segMagic)) {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
			f.Close()
			return err
		}
		m.bytes = int64(len(segMagic))
	}
	if _, err := f.Seek(m.bytes, 0); err != nil {
		f.Close()
		return err
	}
	w.f, w.w, w.cur = f, newWalBuffer(f), m
	return nil
}

func (w *WAL) createSegmentLocked(seq uint64) error {
	path := filepath.Join(w.opts.Dir, segName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w.f, w.w = f, newWalBuffer(f)
	w.cur = segMeta{seq: seq, path: path, maxTime: minInt64}
	if err := w.w.Write([]byte(segMagic)); err != nil {
		return err
	}
	w.cur.bytes = int64(len(segMagic))
	w.dirty = true
	return nil
}

const minInt64 = -1 << 63

// AppendUpdate logs one BGP update.
func (w *WAL) AppendUpdate(u bgp.Update) error {
	payload, err := encodeUpdate(u)
	if err != nil {
		return err
	}
	return w.append(payload, u.Time)
}

// AppendTrace logs one public traceroute.
func (w *WAL) AppendTrace(t *traceroute.Traceroute) error {
	payload, err := encodeTrace(t)
	if err != nil {
		return err
	}
	return w.append(payload, t.Time)
}

func (w *WAL) append(payload []byte, t int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case w.crashed:
		return errSimulatedCrash
	case w.closed:
		return fmt.Errorf("wal: append to closed log")
	case !w.replayed:
		return fmt.Errorf("wal: append before Replay")
	}
	if w.crashAfterAppends > 0 && w.appends >= w.crashAfterAppends {
		w.abandonLocked()
		return errSimulatedCrash
	}
	frame := appendFrame(nil, payload)
	if w.cur.bytes+int64(len(frame)) > w.opts.SegmentBytes && w.cur.records > 0 {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	if err := w.w.Write(frame); err != nil {
		return err
	}
	w.cur.bytes += int64(len(frame))
	w.cur.records++
	if t > w.cur.maxTime {
		w.cur.maxTime = t
	}
	w.appends++
	w.dirty = true
	metAppends.Inc()
	metAppendBytes.Add(uint64(len(frame)))
	switch w.opts.Fsync {
	case FsyncEveryRecord:
		return w.syncLocked()
	case FsyncInterval:
		if time.Since(w.lastSync) >= w.opts.FsyncInterval {
			return w.syncLocked()
		}
	}
	return nil
}

func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.sealed = append(w.sealed, w.cur)
	if err := w.createSegmentLocked(w.cur.seq + 1); err != nil {
		return err
	}
	metRotations.Inc()
	metSegments.Set(int64(len(w.sealed) + 1))
	return nil
}

// abandonLocked models the crash: the kernel never saw the buffered tail,
// so close the descriptor without flushing and refuse further writes.
func (w *WAL) abandonLocked() {
	w.crashed = true
	if w.f == nil {
		return
	}
	if n := w.crashPartialBytes; n > 0 && w.w != nil {
		if n > len(w.w.buf) {
			n = len(w.w.buf)
		}
		w.f.Write(w.w.buf[:n])
	}
	w.f.Close()
}

func (w *WAL) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.failSync != nil {
		return w.failSync
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	w.lastSync = time.Now()
	metFsyncs.Inc()
	return nil
}

// Sync forces buffered records to disk.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.crashed || w.closed {
		return nil
	}
	return w.syncLocked()
}

// WindowClosed tells the log the pipeline completed the window starting
// at ws: under FsyncOnWindowClose (and as FsyncInterval's backstop for
// quiet periods) this is the durability point.
func (w *WAL) WindowClosed(ws int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.crashed || w.closed || !w.replayed {
		return nil
	}
	switch w.opts.Fsync {
	case FsyncOnWindowClose:
		return w.syncLocked()
	case FsyncInterval:
		if time.Since(w.lastSync) >= w.opts.FsyncInterval {
			return w.syncLocked()
		}
	}
	return nil
}

// Compact deletes sealed segments every one of whose records predates
// watermark (a snapshot's open-window start: the snapshot already covers
// them). Deletion walks oldest-first and stops at the first segment with
// a record at or past the watermark, so the invariant — no surviving
// record is ever removed — holds even if metadata were somehow out of
// order. The active segment is never deleted.
func (w *WAL) Compact(watermark int64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.replayed {
		return 0, fmt.Errorf("wal: compact before Replay")
	}
	deleted := 0
	for len(w.sealed) > 0 {
		m := w.sealed[0]
		if m.records > 0 && m.maxTime >= watermark {
			break
		}
		if err := os.Remove(m.path); err != nil {
			return deleted, err
		}
		w.sealed = w.sealed[1:]
		deleted++
		metCompacted.Inc()
	}
	if deleted > 0 {
		metSegments.Set(int64(len(w.sealed) + 1))
	}
	return deleted, nil
}

// Status reports the log's current shape.
func (w *WAL) Status() Status {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Status{FsyncPolicy: w.opts.Fsync.String(), Segments: len(w.sealed)}
	for _, m := range w.sealed {
		st.Records += m.records
		st.Bytes += m.bytes
	}
	if w.replayed {
		st.Segments++
		st.Records += w.cur.records
		st.Bytes += w.cur.bytes
	}
	return st
}

// Close flushes, syncs, and closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.crashed || w.closed || !w.replayed {
		w.closed = true
		return nil
	}
	w.closed = true
	if err := w.syncLocked(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// walBuffer is a minimal buffered writer. It exists instead of
// bufio.Writer for one property the crash model needs: an abandoned
// buffer's bytes are provably lost (bufio would be equivalent, but the
// explicit type documents that the buffer IS the simulated page cache —
// whatever Flush never pushed to the file plays the part of data the
// kernel lost in the crash).
type walBuffer struct {
	f   *os.File
	buf []byte
}

const walBufferSize = 32 << 10

func newWalBuffer(f *os.File) *walBuffer {
	return &walBuffer{f: f, buf: make([]byte, 0, walBufferSize)}
}

func (b *walBuffer) Write(p []byte) error {
	if len(b.buf)+len(p) > cap(b.buf) {
		if err := b.Flush(); err != nil {
			return err
		}
	}
	if len(p) >= cap(b.buf) {
		_, err := b.f.Write(p)
		return err
	}
	b.buf = append(b.buf, p...)
	return nil
}

func (b *walBuffer) Flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.f.Write(b.buf)
	b.buf = b.buf[:0]
	return err
}
