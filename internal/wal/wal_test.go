package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

func testUpdate(t *testing.T, tm int64) bgp.Update {
	t.Helper()
	p, err := trie.ParsePrefix("4.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	return bgp.Update{
		Time:        tm,
		PeerIP:      0x05000009,
		PeerAS:      5,
		Type:        bgp.Announce,
		Prefix:      p,
		ASPath:      bgp.Path{5, 2, 3, 4},
		Communities: bgp.Communities{bgp.MakeCommunity(5, 100)},
		MED:         7,
	}
}

func testTrace(tm int64) *traceroute.Traceroute {
	return &traceroute.Traceroute{
		MsmID:   5051,
		ProbeID: 991,
		Time:    tm,
		Src:     0x01000001,
		Dst:     0x04000009,
		Reached: true,
		Hops: []traceroute.Hop{
			{IP: 0x01000002, RTT: 1.25, TTL: 1},
			{IP: 0x02000001, RTT: 9.5, TTL: 2},
			{IP: 0x04000009, RTT: 30.125, TTL: 3},
		},
	}
}

// openLog opens dir and runs Replay with a collecting callback.
func openLog(t *testing.T, opts Options) (*WAL, []Record, ReplayInfo) {
	t.Helper()
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	info, err := w.Replay(func(r Record) error { recs = append(recs, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	return w, recs, info
}

// segPath returns the n'th segment file of dir in sequence order.
func segPath(t *testing.T, dir string, n int) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if n >= len(names) {
		t.Fatalf("want segment %d of %s, have %d", n, dir, len(names))
	}
	return names[n]
}

// TestWALRoundTrip: appended records come back byte-identical through a
// close/reopen/replay cycle, interleaved kinds included.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, recs, info := openLog(t, Options{Dir: dir})
	if info.Segments != 1 || info.Records != 0 || len(recs) != 0 {
		t.Fatalf("fresh log replay = %+v, %d records; want 1 empty segment", info, len(recs))
	}
	var want []Record
	for i := int64(0); i < 20; i++ {
		u := testUpdate(t, 900+i)
		if err := w.AppendUpdate(u); err != nil {
			t.Fatal(err)
		}
		want = append(want, Record{Update: &u})
		if i%3 == 0 {
			tr := testTrace(900 + i)
			if err := w.AppendTrace(tr); err != nil {
				t.Fatal(err)
			}
			want = append(want, Record{Trace: tr})
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got, info := openLog(t, Options{Dir: dir})
	defer w2.Close()
	if info.TruncatedTail {
		t.Fatal("clean log replayed with a truncated tail")
	}
	if uint64(len(want)) != info.Records {
		t.Fatalf("ReplayInfo.Records = %d, want %d", info.Records, len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed records diverge:\n got  %+v\n want %+v", got, want)
	}
	st := w2.Status()
	if st.Records != uint64(len(want)) || st.Segments != 1 {
		t.Fatalf("Status = %+v, want %d records in 1 segment", st, len(want))
	}
}

// TestWALTornTailTruncated: a partial frame at the end of the final
// segment — the classic torn write — is truncated back to the last intact
// record, exactly, and the log keeps accepting appends there.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openLog(t, Options{Dir: dir})
	for i := int64(0); i < 5; i++ {
		if err := w.AppendUpdate(testUpdate(t, 900+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	seg := segPath(t, dir, 0)
	intact, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// A whole valid frame, then cut it short: header + half the payload.
	frame := appendFrame(nil, mustEncodeUpdate(t, testUpdate(t, 999)))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)-len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	truncBefore := metTruncations.Value()
	w2, recs, info := openLog(t, Options{Dir: dir})
	if !info.TruncatedTail {
		t.Fatal("torn tail not reported")
	}
	if len(recs) != 5 {
		t.Fatalf("replayed %d records past a torn tail, want 5 intact", len(recs))
	}
	if d := metTruncations.Value() - truncBefore; d != 1 {
		t.Fatalf("rrr_wal_tail_truncations_total delta = %d, want 1", d)
	}
	if fi, err := os.Stat(seg); err != nil || fi.Size() != intact.Size() {
		t.Fatalf("truncated segment is %d bytes, want exactly the intact %d", fi.Size(), intact.Size())
	}
	// The log must be appendable right where the truncation left it.
	if err := w2.AppendUpdate(testUpdate(t, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, recs, info := openLog(t, Options{Dir: dir})
	defer w3.Close()
	if info.TruncatedTail || len(recs) != 6 {
		t.Fatalf("post-truncation append replay = %d records (truncated=%v), want 6 clean", len(recs), info.TruncatedTail)
	}
}

// TestWALBadChecksumTruncated: a bit flip in the final record's payload
// fails its CRC and truncates it away; the records before it survive.
func TestWALBadChecksumTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openLog(t, Options{Dir: dir})
	for i := int64(0); i < 4; i++ {
		if err := w.AppendUpdate(testUpdate(t, 900+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segPath(t, dir, 0)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, recs, info := openLog(t, Options{Dir: dir})
	defer w2.Close()
	if !info.TruncatedTail || len(recs) != 3 {
		t.Fatalf("bit-flipped tail: %d records, truncated=%v; want 3 records, truncated", len(recs), info.TruncatedTail)
	}
}

// TestWALZeroLengthRecordTruncated: a zero length field is invalid framing
// (length 0 is reserved), so the tail is cut there.
func TestWALZeroLengthRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openLog(t, Options{Dir: dir})
	if err := w.AppendUpdate(testUpdate(t, 900)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segPath(t, dir, 0)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, frameHeaderLen)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	w2, recs, info := openLog(t, Options{Dir: dir})
	defer w2.Close()
	if !info.TruncatedTail || len(recs) != 1 {
		t.Fatalf("zero-length frame: %d records, truncated=%v; want 1 record, truncated", len(recs), info.TruncatedTail)
	}
}

// TestWALMidLogCorruptionFails: damage in a sealed (non-final) segment is
// lost durable data, which recovery must refuse to paper over.
func TestWALMidLogCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openLog(t, Options{Dir: dir, SegmentBytes: 64}) // every record rotates
	for i := int64(0); i < 6; i++ {
		if err := w.AppendUpdate(testUpdate(t, 900+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segPath(t, dir, 0)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Replay(nil); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("mid-log corruption replay err = %v; want a hard checksum error", err)
	}
}

// TestWALBadMagicFails: a segment that does not start with the magic is
// not a WAL segment at all; no truncation heuristics apply.
func TestWALBadMagicFails(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("NOTAWAL!"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(nil); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic replay err = %v; want a magic error", err)
	}
}

// TestWALShortMagicTruncatesToEmpty: a final segment shorter than its
// magic (crash during segment creation) is reset to an empty segment.
func TestWALShortMagicTruncatesToEmpty(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte(segMagic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs, info := openLog(t, Options{Dir: dir})
	if !info.TruncatedTail || len(recs) != 0 {
		t.Fatalf("short-magic segment: %d records, truncated=%v; want empty, truncated", len(recs), info.TruncatedTail)
	}
	if err := w.AppendUpdate(testUpdate(t, 900)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, recs, _ := openLog(t, Options{Dir: dir})
	defer w2.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records after rewriting a short-magic segment, want 1", len(recs))
	}
}

// TestWALForeignFileRejected: an unexpected .wal file name in the log dir
// aborts Open rather than being silently skipped or misordered.
func TestWALForeignFileRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "backup.wal"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil || !strings.Contains(err.Error(), "foreign") {
		t.Fatalf("Open with foreign file err = %v; want foreign-file error", err)
	}
}

// TestWALRotationAndCompaction: tiny segments force rotation; compaction
// removes exactly the sealed segments wholly behind the watermark and
// never touches the active one, so every record at or past the watermark
// survives a reopen.
func TestWALRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openLog(t, Options{Dir: dir, SegmentBytes: 64})
	for i := int64(0); i < 10; i++ {
		if err := w.AppendUpdate(testUpdate(t, 900*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Status()
	if st.Segments < 3 {
		t.Fatalf("rotation produced %d segments, want several", st.Segments)
	}

	// Watermark at t=4500: records 900..3600 (four of them) are covered.
	const watermark = 4500
	n, err := w.Compact(watermark)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("compaction deleted nothing despite covered segments")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, info := openLog(t, Options{Dir: dir})
	if info.TruncatedTail {
		t.Fatal("compaction left a torn tail")
	}
	var kept []int64
	for _, r := range recs {
		kept = append(kept, r.Time())
	}
	// The invariant: nothing at or past the watermark is gone.
	want := map[int64]bool{4500: false, 5400: false, 6300: false, 7200: false, 8100: false, 9000: false}
	for _, tm := range kept {
		if _, ok := want[tm]; ok {
			want[tm] = true
		}
	}
	for tm, seen := range want {
		if !seen {
			t.Fatalf("record at t=%d (>= watermark) lost by compaction; kept %v", tm, kept)
		}
	}

	// A watermark past everything still leaves the active segment alone.
	if _, err := w2.Compact(1 << 40); err != nil {
		t.Fatal(err)
	}
	if st := w2.Status(); st.Segments < 1 {
		t.Fatalf("compaction removed the active segment: %+v", st)
	}
	if err := w2.AppendUpdate(testUpdate(t, 10000)); err != nil {
		t.Fatalf("append after full compaction: %v", err)
	}
	w2.Close()
}

// TestWALFsyncPolicies pins each policy's sync cadence via the fsync
// counter: per-record syncs once per append, per-window once per window
// close (plus the final Close), and interval at most once per period.
func TestWALFsyncPolicies(t *testing.T) {
	t.Run("record", func(t *testing.T) {
		w, _, _ := openLog(t, Options{Dir: t.TempDir(), Fsync: FsyncEveryRecord})
		before := metFsyncs.Value()
		for i := int64(0); i < 5; i++ {
			if err := w.AppendUpdate(testUpdate(t, 900+i)); err != nil {
				t.Fatal(err)
			}
		}
		if d := metFsyncs.Value() - before; d != 5 {
			t.Fatalf("record policy fsyncs = %d for 5 appends, want 5", d)
		}
		w.Close()
	})
	t.Run("window", func(t *testing.T) {
		w, _, _ := openLog(t, Options{Dir: t.TempDir(), Fsync: FsyncOnWindowClose})
		before := metFsyncs.Value()
		for i := int64(0); i < 5; i++ {
			if err := w.AppendUpdate(testUpdate(t, 900+i)); err != nil {
				t.Fatal(err)
			}
		}
		if d := metFsyncs.Value() - before; d != 0 {
			t.Fatalf("window policy synced %d times before any window closed", d)
		}
		if err := w.WindowClosed(900); err != nil {
			t.Fatal(err)
		}
		if d := metFsyncs.Value() - before; d != 1 {
			t.Fatalf("window close fsyncs = %d, want 1", d)
		}
		// Nothing new appended: the next window close has nothing to sync.
		if err := w.WindowClosed(1800); err != nil {
			t.Fatal(err)
		}
		if d := metFsyncs.Value() - before; d != 1 {
			t.Fatalf("idle window close synced again (%d total)", d)
		}
		w.Close()
	})
	t.Run("interval", func(t *testing.T) {
		w, _, _ := openLog(t, Options{Dir: t.TempDir(), Fsync: FsyncInterval, FsyncInterval: time.Hour})
		before := metFsyncs.Value()
		for i := int64(0); i < 5; i++ {
			if err := w.AppendUpdate(testUpdate(t, 900+i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.WindowClosed(900); err != nil {
			t.Fatal(err)
		}
		if d := metFsyncs.Value() - before; d != 0 {
			t.Fatalf("hour-interval policy synced %d times within the hour", d)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if d := metFsyncs.Value() - before; d != 1 {
			t.Fatalf("explicit Sync fsyncs = %d, want 1", d)
		}
		w.Close()
	})
}

// TestWALLifecycleErrors: appends before Replay, double Replay, and
// appends after Close are all refused.
func TestWALLifecycleErrors(t *testing.T) {
	w, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendUpdate(testUpdate(t, 1)); err == nil {
		t.Fatal("append before Replay succeeded")
	}
	if _, err := w.Compact(0); err == nil {
		t.Fatal("compact before Replay succeeded")
	}
	if _, err := w.Replay(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Replay(nil); err == nil {
		t.Fatal("second Replay succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendUpdate(testUpdate(t, 1)); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatal("Close is not idempotent:", err)
	}
}

// TestWALSyncFailureSurfaces: a failing fsync (disk trouble) propagates
// out of a per-record append instead of being swallowed.
func TestWALSyncFailureSurfaces(t *testing.T) {
	w, _, _ := openLog(t, Options{Dir: t.TempDir(), Fsync: FsyncEveryRecord})
	defer w.Close()
	diskErr := errors.New("injected: no space left on device")
	w.SetFailSync(diskErr)
	if err := w.AppendUpdate(testUpdate(t, 900)); !errors.Is(err, diskErr) {
		t.Fatalf("append with failing sync err = %v, want the disk error", err)
	}
}

// TestWALSimulatedCrashLosesOnlyUnsynced: after a crash mid-buffer, replay
// recovers at least everything synced and never a record that was not
// appended; a partial page flush leaves a torn tail that truncates.
func TestWALSimulatedCrashLosesOnlyUnsynced(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openLog(t, Options{Dir: dir, Fsync: FsyncOnWindowClose})
	for i := int64(0); i < 4; i++ {
		if err := w.AppendUpdate(testUpdate(t, 900+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WindowClosed(900); err != nil { // records 0..3 now durable
		t.Fatal(err)
	}
	w.SetCrashAfterAppends(6, 13) // two more buffered, then die mid-page
	for i := int64(4); i < 6; i++ {
		if err := w.AppendUpdate(testUpdate(t, 900+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendUpdate(testUpdate(t, 907)); !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("armed append err = %v, want simulated crash", err)
	}
	// Post-crash calls are inert, as the drain path relies on.
	if err := w.WindowClosed(1800); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, info := openLog(t, Options{Dir: dir})
	defer w2.Close()
	if len(recs) < 4 || len(recs) > 6 {
		t.Fatalf("recovered %d records; want the 4 synced ones and at most the 2 buffered", len(recs))
	}
	if !info.TruncatedTail {
		t.Fatal("13-byte partial page did not leave a torn tail")
	}
}

// TestParseFsyncPolicy covers the flag grammar.
func TestParseFsyncPolicy(t *testing.T) {
	cases := []struct {
		in       string
		policy   FsyncPolicy
		interval time.Duration
		wantErr  bool
	}{
		{"record", FsyncEveryRecord, 0, false},
		{"always", FsyncEveryRecord, 0, false},
		{"window", FsyncOnWindowClose, 0, false},
		{"", FsyncOnWindowClose, 0, false},
		{"2s", FsyncInterval, 2 * time.Second, false},
		{"-1s", 0, 0, true},
		{"often", 0, 0, true},
	}
	for _, c := range cases {
		p, d, err := ParseFsyncPolicy(c.in)
		if c.wantErr {
			if err == nil {
				t.Fatalf("ParseFsyncPolicy(%q) accepted", c.in)
			}
			continue
		}
		if err != nil || p != c.policy || d != c.interval {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v, %v; want %v, %v", c.in, p, d, err, c.policy, c.interval)
		}
	}
}

func mustEncodeUpdate(t *testing.T, u bgp.Update) []byte {
	t.Helper()
	b, err := encodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
