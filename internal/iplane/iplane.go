// Package iplane reimplements the path-splicing core of iPlane (Madhyastha
// et al., OSDI 2006) at PoP granularity, as used in the paper's Appendix D:
// the predicted path from s to d is assembled from a measured traceroute
// (s, d') and a measured traceroute (s', d) that intersect at an
// intermediate PoP p. Staleness pruning removes corpus traceroutes flagged
// by staleness prediction signals and re-adds them on revocation.
package iplane

import (
	"sort"

	"rrr/internal/traceroute"
)

// PoP is an opaque point-of-presence identity (an ⟨AS, city⟩ tuple in the
// paper's processing; IPs that cannot be geolocated are their own PoP).
type PoP int64

// Entry is one corpus traceroute at PoP granularity.
type Entry struct {
	Key  traceroute.Key
	PoPs []PoP
}

// Splice is a predicted path: Left measured (src → p), Right measured
// (p → dst).
type Splice struct {
	Left  traceroute.Key
	Right traceroute.Key
	Via   PoP
}

// Service is the splicing index.
type Service struct {
	entries map[traceroute.Key]*Entry
	bySrc   map[uint32][]*Entry
	byPoP   map[PoP]map[uint32][]*Entry // PoP → dst → entries through it
	pruned  map[traceroute.Key]bool
}

// New returns an empty service.
func New() *Service {
	return &Service{
		entries: make(map[traceroute.Key]*Entry),
		bySrc:   make(map[uint32][]*Entry),
		byPoP:   make(map[PoP]map[uint32][]*Entry),
		pruned:  make(map[traceroute.Key]bool),
	}
}

// Len returns the number of stored traceroutes (pruned included).
func (s *Service) Len() int { return len(s.entries) }

// Add stores a PoP-level traceroute.
func (s *Service) Add(key traceroute.Key, pops []PoP) {
	if _, ok := s.entries[key]; ok {
		s.remove(key)
	}
	e := &Entry{Key: key, PoPs: pops}
	s.entries[key] = e
	s.bySrc[key.Src] = append(s.bySrc[key.Src], e)
	for _, p := range e.PoPs {
		m := s.byPoP[p]
		if m == nil {
			m = make(map[uint32][]*Entry)
			s.byPoP[p] = m
		}
		m[key.Dst] = append(m[key.Dst], e)
	}
}

func (s *Service) remove(key traceroute.Key) {
	e, ok := s.entries[key]
	if !ok {
		return
	}
	delete(s.entries, key)
	s.bySrc[key.Src] = filterEntries(s.bySrc[key.Src], key)
	for _, p := range e.PoPs {
		if m := s.byPoP[p]; m != nil {
			m[key.Dst] = filterEntries(m[key.Dst], key)
		}
	}
	delete(s.pruned, key)
}

func filterEntries(es []*Entry, key traceroute.Key) []*Entry {
	out := es[:0]
	for _, e := range es {
		if e.Key != key {
			out = append(out, e)
		}
	}
	return out
}

// Prune marks a traceroute stale: it no longer participates in splicing.
func (s *Service) Prune(key traceroute.Key) { s.pruned[key] = true }

// Unprune restores a traceroute whose staleness signals were revoked.
func (s *Service) Unprune(key traceroute.Key) { delete(s.pruned, key) }

// PrunedCount reports how many stored traceroutes are currently pruned.
func (s *Service) PrunedCount() int { return len(s.pruned) }

// Predict returns a splice for src → dst, or false if no pair of usable
// traceroutes intersects. Among candidates it prefers the intersection
// closest to the destination side of the left path (a deterministic stand-in
// for iPlane's latency-based ranking).
func (s *Service) Predict(src, dst uint32) (Splice, bool) {
	var best Splice
	bestRank := -1
	for _, left := range s.bySrc[src] {
		if s.pruned[left.Key] || left.Key.Dst == dst {
			continue
		}
		for li, p := range left.PoPs {
			m := s.byPoP[p]
			if m == nil {
				continue
			}
			for _, right := range m[dst] {
				if s.pruned[right.Key] || right.Key == left.Key {
					continue
				}
				if li > bestRank {
					bestRank = li
					best = Splice{Left: left.Key, Right: right.Key, Via: p}
				}
			}
		}
	}
	return best, bestRank >= 0
}

// Direct reports whether the service holds an unpruned direct measurement.
func (s *Service) Direct(src, dst uint32) bool {
	e, ok := s.entries[traceroute.Key{Src: src, Dst: dst}]
	return ok && !s.pruned[e.Key]
}

// Valid checks a splice against current ground-truth PoP paths: it holds
// when both underlying paths still traverse the splice PoP (the Appendix D
// validity criterion: the paths still intersect).
func (sp Splice) Valid(current map[traceroute.Key][]PoP) bool {
	return contains(current[sp.Left], sp.Via) && contains(current[sp.Right], sp.Via)
}

func contains(pops []PoP, p PoP) bool {
	for _, x := range pops {
		if x == p {
			return true
		}
	}
	return false
}

// Keys lists stored pairs deterministically.
func (s *Service) Keys() []traceroute.Key {
	out := make([]traceroute.Key, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}
