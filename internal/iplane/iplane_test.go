package iplane

import (
	"testing"

	"rrr/internal/traceroute"
)

func k(src, dst uint32) traceroute.Key { return traceroute.Key{Src: src, Dst: dst} }

func TestPredictBasicSplice(t *testing.T) {
	s := New()
	// src 1 → dst 100 via PoP 7 (left), src 2 → dst 200 via PoP 7 (right).
	s.Add(k(1, 100), []PoP{10, 7, 100})
	s.Add(k(2, 200), []PoP{20, 7, 200})
	sp, ok := s.Predict(1, 200)
	if !ok {
		t.Fatal("no splice found")
	}
	if sp.Left != k(1, 100) || sp.Right != k(2, 200) || sp.Via != 7 {
		t.Fatalf("splice = %+v", sp)
	}
}

func TestPredictNoIntersection(t *testing.T) {
	s := New()
	s.Add(k(1, 100), []PoP{10, 11, 100})
	s.Add(k(2, 200), []PoP{20, 21, 200})
	if _, ok := s.Predict(1, 200); ok {
		t.Fatal("splice without intersection")
	}
	if _, ok := s.Predict(9, 200); ok {
		t.Fatal("splice from unknown source")
	}
}

func TestPredictPrefersLaterIntersection(t *testing.T) {
	s := New()
	s.Add(k(1, 100), []PoP{10, 7, 8, 100})
	s.Add(k(2, 200), []PoP{7, 200})
	s.Add(k(3, 200), []PoP{8, 200})
	sp, ok := s.Predict(1, 200)
	if !ok || sp.Via != 8 {
		t.Fatalf("splice = %+v; want via PoP 8 (closest to destination)", sp)
	}
}

func TestPruneExcludesAndUnpruneRestores(t *testing.T) {
	s := New()
	s.Add(k(1, 100), []PoP{10, 7, 100})
	s.Add(k(2, 200), []PoP{20, 7, 200})
	s.Prune(k(1, 100))
	if _, ok := s.Predict(1, 200); ok {
		t.Fatal("pruned left path used in splice")
	}
	if s.PrunedCount() != 1 {
		t.Fatalf("pruned = %d", s.PrunedCount())
	}
	s.Unprune(k(1, 100))
	if _, ok := s.Predict(1, 200); !ok {
		t.Fatal("unpruned path not restored")
	}
}

func TestAddReplaces(t *testing.T) {
	s := New()
	s.Add(k(1, 100), []PoP{10, 7, 100})
	s.Add(k(1, 100), []PoP{10, 9, 100}) // rerouted: no longer via 7
	s.Add(k(2, 200), []PoP{20, 7, 200})
	if _, ok := s.Predict(1, 200); ok {
		t.Fatal("stale index entry used after replacement")
	}
	s.Add(k(3, 300), []PoP{9, 300})
	if sp, ok := s.Predict(1, 300); !ok || sp.Via != 9 {
		t.Fatalf("replacement path not indexed: %+v, %v", sp, ok)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSpliceValidAgainstCurrentPaths(t *testing.T) {
	sp := Splice{Left: k(1, 100), Right: k(2, 200), Via: 7}
	current := map[traceroute.Key][]PoP{
		k(1, 100): {10, 7, 100},
		k(2, 200): {20, 7, 200},
	}
	if !sp.Valid(current) {
		t.Fatal("intact splice reported invalid")
	}
	current[k(1, 100)] = []PoP{10, 9, 100} // left path moved off PoP 7
	if sp.Valid(current) {
		t.Fatal("broken splice reported valid")
	}
}

func TestDirect(t *testing.T) {
	s := New()
	s.Add(k(1, 100), []PoP{10, 100})
	if !s.Direct(1, 100) {
		t.Fatal("direct measurement not found")
	}
	s.Prune(k(1, 100))
	if s.Direct(1, 100) {
		t.Fatal("pruned direct measurement still usable")
	}
	if s.Direct(1, 999) {
		t.Fatal("phantom direct measurement")
	}
}

func TestKeysDeterministic(t *testing.T) {
	s := New()
	s.Add(k(2, 5), []PoP{1})
	s.Add(k(1, 9), []PoP{2})
	s.Add(k(1, 5), []PoP{3})
	keys := s.Keys()
	want := []traceroute.Key{k(1, 5), k(1, 9), k(2, 5)}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v", keys)
		}
	}
}

func TestRemoveCleansIndexes(t *testing.T) {
	s := New()
	s.Add(k(1, 100), []PoP{10, 7, 100})
	s.Add(k(2, 200), []PoP{20, 7, 200})
	s.Prune(k(1, 100))
	// Replacing via Add clears prune state and old index entries.
	s.Add(k(1, 100), []PoP{10, 8, 100})
	if s.PrunedCount() != 0 {
		t.Fatal("Add did not clear prune state")
	}
	if _, ok := s.Predict(1, 200); ok {
		t.Fatal("stale PoP index survived replacement")
	}
	s.Add(k(3, 300), []PoP{8, 300})
	if sp, ok := s.Predict(1, 300); !ok || sp.Via != 8 {
		t.Fatalf("replacement not predictable: %+v %v", sp, ok)
	}
}
