package geo

import (
	"testing"

	"rrr/internal/netsim"
)

func routerIPs(s *netsim.Sim, n int) []uint32 {
	var out []uint32
	for i := 1; i < len(s.T.Routers) && len(out) < n; i++ {
		out = append(out, s.T.Routers[i].Loopback)
	}
	return out
}

func TestBuildDBProfiles(t *testing.T) {
	s := netsim.New(netsim.TestConfig())
	ips := routerIPs(s, 200)
	db := BuildDB(s, ips, DBProfile{Name: "crowd", Coverage: 0.5, ExactFrac: 0.93, NearFrac: 0.04}, 7)
	if db.Len() == 0 {
		t.Fatal("empty database")
	}
	if db.Len() > len(ips) {
		t.Fatalf("coverage exceeded input: %d > %d", db.Len(), len(ips))
	}
	// Measure exactness against truth.
	exact, total := 0, 0
	for _, ip := range ips {
		c, ok := db.Lookup(ip)
		if !ok {
			continue
		}
		total++
		r, _ := s.T.RouterForIP(ip)
		if c == s.T.CityOfRouter(r) {
			exact++
		}
	}
	frac := float64(exact) / float64(total)
	if frac < 0.80 || frac > 1.0 {
		t.Fatalf("exact fraction = %.2f; want ≈0.93", frac)
	}
}

func TestLocatorDBFirst(t *testing.T) {
	s := netsim.New(netsim.TestConfig())
	ips := routerIPs(s, 50)
	db := BuildDB(s, ips, DBProfile{Name: "full", Coverage: 1, ExactFrac: 1}, 1)
	l := NewLocator(s, db)
	for _, ip := range ips[:10] {
		city, method, ok := l.Locate(ip, 100)
		if !ok || method != MethodDB {
			t.Fatalf("Locate = %v, %v, %v; want DB hit", city, method, ok)
		}
		r, _ := s.T.RouterForIP(ip)
		if city != s.T.CityOfRouter(r) {
			t.Fatalf("DB city %d != truth %d", city, s.T.CityOfRouter(r))
		}
	}
}

func TestLocatorShortestPingFallback(t *testing.T) {
	s := netsim.New(netsim.TestConfig())
	l := NewLocator(s, nil) // no DB: must measure
	located, correct := 0, 0
	for i := 1; i < len(s.T.Routers) && located < 60; i++ {
		r := s.T.Routers[i]
		city, method, ok := l.Locate(r.Loopback, 500)
		if !ok {
			continue
		}
		located++
		if method != MethodShortestPing && method != MethodCFS {
			t.Fatalf("method = %v", method)
		}
		if city == s.T.CityOfRouter(r.ID) {
			correct++
		}
	}
	if located == 0 {
		t.Fatal("nothing located without a DB")
	}
	// The paper's ping technique located 82% of border IPs; ours should be
	// in the same ballpark on responsive routers.
	if frac := float64(correct) / float64(located); frac < 0.6 {
		t.Fatalf("shortest-ping correctness = %.2f; want >= 0.6", frac)
	}
}

func TestLocatorCaches(t *testing.T) {
	s := netsim.New(netsim.TestConfig())
	ips := routerIPs(s, 5)
	db := BuildDB(s, ips, DBProfile{Name: "full", Coverage: 1, ExactFrac: 1}, 1)
	l := NewLocator(s, db)
	c1, m1, _ := l.Locate(ips[0], 100)
	c2, m2, _ := l.Locate(ips[0], 999999)
	if c1 != c2 || m1 != m2 {
		t.Fatal("cache should make Locate stable")
	}
}

func TestLocateUnknownIP(t *testing.T) {
	s := netsim.New(netsim.TestConfig())
	l := NewLocator(s, nil)
	if _, m, ok := l.Locate(0xdeadbeef, 1); ok || m != MethodNone {
		t.Fatalf("unknown IP located: %v %v", m, ok)
	}
}

func TestValidateAndCDF(t *testing.T) {
	s := netsim.New(netsim.TestConfig())
	ips := routerIPs(s, 150)
	truthDB := BuildDB(s, ips, DBProfile{Name: "truth", Coverage: 1, ExactFrac: 1}, 1)
	l := NewLocator(s, truthDB)

	crowd := BuildDB(s, ips, DBProfile{Name: "crowd", Coverage: 0.4, ExactFrac: 0.93, NearFrac: 0.04}, 2)
	general := BuildDB(s, ips, DBProfile{Name: "general", Coverage: 1, ExactFrac: 0.60, NearFrac: 0.22}, 3)

	resCrowd := Validate(l, crowd, ips, 100)
	resGen := Validate(l, general, ips, 100)
	if len(resCrowd) == 0 || len(resGen) == 0 {
		t.Fatal("no validation overlap")
	}
	exactCrowd, _ := CDF(resCrowd, []float64{100, 500})
	exactGen, underGen := CDF(resGen, []float64{100, 500})
	if exactCrowd <= exactGen {
		t.Fatalf("crowd DB should agree more than general: %.2f vs %.2f", exactCrowd, exactGen)
	}
	if underGen[0] > underGen[1] {
		t.Fatal("CDF must be monotone in thresholds")
	}
	if e, u := CDF(nil, []float64{100}); e != 0 || u[0] != 0 {
		t.Fatal("empty CDF should be zero")
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		MethodNone: "none", MethodDB: "ipmap-db",
		MethodShortestPing: "shortest-ping", MethodCFS: "cfs",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func TestLocateIXPMemberInterface(t *testing.T) {
	s := netsim.New(netsim.TestConfig())
	l := NewLocator(s, nil)
	located := false
	for i := 1; i < len(s.T.IXPs); i++ {
		for range s.T.IXPs[i].MemberIPs {
			located = true
		}
		for member, ip := range s.T.IXPs[i].MemberIPs {
			// IXP LAN addresses resolve through membership to the owning
			// AS and then locate like any of its interfaces.
			city, _, ok := l.Locate(ip, 50)
			if !ok {
				continue
			}
			valid := false
			for _, pop := range s.T.ASes[member].PoPs {
				if s.T.PoPs[pop].City == city {
					valid = true
				}
			}
			if !valid {
				t.Fatalf("IXP member %s located in city %d outside its footprint", member, city)
			}
		}
	}
	if !located {
		t.Skip("no IXP members generated")
	}
}

func TestCityDistanceSymmetricZero(t *testing.T) {
	s := netsim.New(netsim.TestConfig())
	for i := range s.T.Cities {
		for j := range s.T.Cities {
			a := CityDistance(s, s.T.Cities[i].ID, s.T.Cities[j].ID)
			b := CityDistance(s, s.T.Cities[j].ID, s.T.Cities[i].ID)
			if a != b {
				t.Fatalf("distance asymmetric: %f vs %f", a, b)
			}
			if i == j && a != 0 {
				t.Fatalf("self distance %f", a)
			}
		}
	}
}
