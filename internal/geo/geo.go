// Package geo implements the paper's three-stage IP geolocation pipeline
// (Appendix A): an IPMap-like database lookup, a shortest-ping measurement
// technique driven by PeeringDB-style facility candidates, and a CFS-style
// fallback. Locations are ⟨AS, city⟩ tuples; §4.2.2's inter-city border
// monitoring depends on them. The package also contains the validation
// harness behind the paper's Fig 12.
package geo

import (
	"math"
	"math/rand"
	"sort"

	"rrr/internal/bgp"
	"rrr/internal/netsim"
)

// Method records which technique produced a location.
type Method int

// Geolocation methods, in the order the pipeline tries them.
const (
	// MethodNone means the address could not be located; path segments
	// ending at it are excluded from PoP-level staleness signals.
	MethodNone Method = iota
	// MethodDB is an IPMap-like database hit.
	MethodDB
	// MethodShortestPing located the address by RTT proximity.
	MethodShortestPing
	// MethodCFS is the constrained-facility-search style fallback.
	MethodCFS
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodDB:
		return "ipmap-db"
	case MethodShortestPing:
		return "shortest-ping"
	case MethodCFS:
		return "cfs"
	default:
		return "none"
	}
}

// DB is a geolocation database: a partial, possibly erroneous mapping from
// interface addresses to cities.
type DB struct {
	name string
	loc  map[uint32]netsim.CityID
}

// Name returns the database's label.
func (db *DB) Name() string { return db.name }

// Lookup returns the database's city for ip.
func (db *DB) Lookup(ip uint32) (netsim.CityID, bool) {
	c, ok := db.loc[ip]
	return c, ok
}

// Len returns the number of covered addresses.
func (db *DB) Len() int { return len(db.loc) }

// DBProfile describes a synthetic database's coverage and accuracy,
// mirroring the three validation databases of Appendix A (crowd-sourced,
// router-specific commercial, general-purpose commercial).
type DBProfile struct {
	Name string
	// Coverage is the fraction of queried addresses present.
	Coverage float64
	// ExactFrac of covered addresses carry the true city; the rest are
	// assigned a city at a distance drawn from nearby (NearFrac within
	// small error) or uniformly (gross errors).
	ExactFrac float64
	NearFrac  float64
}

// BuildDB synthesizes a database against the simulator's ground truth.
func BuildDB(s *netsim.Sim, ips []uint32, p DBProfile, seed int64) *DB {
	rng := rand.New(rand.NewSource(seed))
	db := &DB{name: p.Name, loc: make(map[uint32]netsim.CityID)}
	nCities := len(s.T.Cities)
	for _, ip := range ips {
		r, ok := s.T.RouterForIP(ip)
		if !ok {
			continue
		}
		if rng.Float64() >= p.Coverage {
			continue
		}
		truth := s.T.CityOfRouter(r)
		switch v := rng.Float64(); {
		case v < p.ExactFrac:
			db.loc[ip] = truth
		case v < p.ExactFrac+p.NearFrac:
			// Neighboring city: pick the closest other city.
			db.loc[ip] = nearestOther(s, truth)
		default:
			db.loc[ip] = netsim.CityID(rng.Intn(nCities))
		}
	}
	return db
}

func nearestOther(s *netsim.Sim, c netsim.CityID) netsim.CityID {
	best := netsim.CityID(-1)
	bestD := math.Inf(1)
	for _, other := range s.T.Cities {
		if other.ID == c {
			continue
		}
		if d := CityDistance(s, c, other.ID); d < bestD {
			best, bestD = other.ID, d
		}
	}
	return best
}

// CityDistance returns the abstract plane distance between two cities,
// scaled to kilometers (1 unit ≈ 100 km) for reporting.
func CityDistance(s *netsim.Sim, a, b netsim.CityID) float64 {
	ca, cb := s.T.Cities[a], s.T.Cities[b]
	dx, dy := ca.X-cb.X, ca.Y-cb.Y
	return math.Sqrt(dx*dx+dy*dy) * 100
}

// Locator is the combined geolocation pipeline.
type Locator struct {
	sim *netsim.Sim
	db  *DB
	// PingThreshold is the maximum RTT (ms) to declare co-location; the
	// paper uses 1 ms ≈ 100 km of fiber.
	PingThreshold float64
	// cache avoids re-measuring stable locations (geolocation changes on
	// much slower timescales than routes, Appendix A).
	cache map[uint32]located
}

type located struct {
	city   netsim.CityID
	method Method
}

// NewLocator builds the pipeline over a simulator and an IPMap-like DB
// (which may be nil to exercise the measurement paths alone).
func NewLocator(s *netsim.Sim, db *DB) *Locator {
	return &Locator{sim: s, db: db, PingThreshold: 1.0, cache: make(map[uint32]located)}
}

// Locate returns the city for an interface address, the method used, and
// whether location succeeded.
func (l *Locator) Locate(ip uint32, when int64) (netsim.CityID, Method, bool) {
	if got, ok := l.cache[ip]; ok {
		return got.city, got.method, got.method != MethodNone
	}
	city, method := l.locate(ip, when)
	l.cache[ip] = located{city: city, method: method}
	return city, method, method != MethodNone
}

func (l *Locator) locate(ip uint32, when int64) (netsim.CityID, Method) {
	if l.db != nil {
		if c, ok := l.db.Lookup(ip); ok {
			return c, MethodDB
		}
	}
	if c, ok := l.shortestPing(ip, when); ok {
		return c, MethodShortestPing
	}
	if c, ok := l.cfsFallback(ip); ok {
		return c, MethodCFS
	}
	return 0, MethodNone
}

// shortestPing implements the paper's technique: derive candidate cities
// from the target AS's PeeringDB-style facility list (its PoP cities in the
// simulator), order vantage points by preference, and declare the first
// city whose ping is under the threshold. The preference ordering follows
// Appendix A: vantage points at facilities where the target AS has a larger
// presence first, then facilities hosting ASes with known relationships to
// the target's AS (customers of the target most preferred, its providers
// least, mirroring Local Preference), then city identity for determinism.
func (l *Locator) shortestPing(ip uint32, when int64) (netsim.CityID, bool) {
	as := l.ownerAS(ip)
	if as == 0 {
		return 0, false
	}
	a := l.sim.T.ASes[as]
	type cand struct {
		city     netsim.CityID
		presence int // routers of the target AS at this facility
		relScore int // best relationship class of co-located ASes
	}
	byCity := make(map[netsim.CityID]*cand)
	for _, pop := range a.PoPs {
		c := l.sim.T.PoPs[pop].City
		cd := byCity[c]
		if cd == nil {
			cd = &cand{city: c}
			byCity[c] = cd
		}
		cd.presence += len(l.sim.T.PoPs[pop].Routers)
	}
	// Relationship preference of co-located ASes: customer of target (3)
	// > peer (2) > provider (1) > unrelated (0).
	for _, other := range l.sim.T.ASList {
		if other == as {
			continue
		}
		rel, ok := l.sim.T.RelBetween(other, as)
		if !ok {
			continue
		}
		score := 0
		switch rel {
		case netsim.RelCustomer: // other is a customer of the target's AS
			score = 3
		case netsim.RelPeer:
			score = 2
		case netsim.RelProvider:
			score = 1
		}
		for _, pop := range l.sim.T.ASes[other].PoPs {
			if cd, here := byCity[l.sim.T.PoPs[pop].City]; here && score > cd.relScore {
				cd.relScore = score
			}
		}
	}
	cands := make([]*cand, 0, len(byCity))
	for _, cd := range byCity {
		cands = append(cands, cd)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].presence != cands[j].presence {
			return cands[i].presence > cands[j].presence
		}
		if cands[i].relScore != cands[j].relScore {
			return cands[i].relScore > cands[j].relScore
		}
		return cands[i].city < cands[j].city
	})
	// Ping from (a vantage point in) each candidate city, most preferred
	// first. Three pings per vantage point, keep the minimum.
	for _, cd := range cands {
		best := math.Inf(1)
		answered := false
		for k := int64(0); k < 3; k++ {
			if rtt, ok := l.sim.Ping(cd.city, ip, when+k); ok {
				answered = true
				if rtt < best {
					best = rtt
				}
			}
		}
		if answered && best <= l.PingThreshold {
			return cd.city, true
		}
	}
	return 0, false
}

// cfsFallback approximates constrained facility search: the AS's primary
// facility city.
func (l *Locator) cfsFallback(ip uint32) (netsim.CityID, bool) {
	as := l.ownerAS(ip)
	if as == 0 {
		return 0, false
	}
	a := l.sim.T.ASes[as]
	if len(a.PoPs) == 0 {
		return 0, false
	}
	return l.sim.T.PoPs[a.PoPs[0]].City, true
}

func (l *Locator) ownerAS(ip uint32) bgp.ASN {
	if r, ok := l.sim.T.RouterForIP(ip); ok {
		return l.sim.T.Routers[r].AS
	}
	if as, ok := l.sim.T.IXPMemberForIP(ip); ok {
		return as
	}
	return 0
}

// ValidationResult is one address's comparison between the pipeline and a
// reference database (Fig 12).
type ValidationResult struct {
	IP       uint32
	OurCity  netsim.CityID
	DBCity   netsim.CityID
	Distance float64 // km between the two answers
}

// Validate compares pipeline locations against a reference database over
// the given addresses, returning per-address distances for addresses both
// sides could locate.
func Validate(l *Locator, ref *DB, ips []uint32, when int64) []ValidationResult {
	var out []ValidationResult
	for _, ip := range ips {
		refCity, ok := ref.Lookup(ip)
		if !ok {
			continue
		}
		ours, _, ok := l.Locate(ip, when)
		if !ok {
			continue
		}
		out = append(out, ValidationResult{
			IP: ip, OurCity: ours, DBCity: refCity,
			Distance: CityDistance(l.sim, ours, refCity),
		})
	}
	return out
}

// CDF summarizes distances into (exact-match fraction, fraction < each
// threshold km).
func CDF(results []ValidationResult, thresholds []float64) (exact float64, under []float64) {
	under = make([]float64, len(thresholds))
	if len(results) == 0 {
		return 0, under
	}
	for _, r := range results {
		if r.Distance == 0 {
			exact++
		}
		for i, th := range thresholds {
			if r.Distance < th {
				under[i]++
			}
		}
	}
	n := float64(len(results))
	exact /= n
	for i := range under {
		under[i] /= n
	}
	return exact, under
}
