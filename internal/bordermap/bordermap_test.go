package bordermap

import (
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/netsim"
	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

func ip(t *testing.T, s string) uint32 {
	t.Helper()
	v, err := trie.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// octetMapper maps first octet to AS; 240.x is IXP 1; 99.x unmapped.
type octetMapper struct{}

func (octetMapper) ASOf(v uint32) (bgp.ASN, bool) {
	f := v >> 24
	if f == 240 || f == 99 || f == 0 {
		return 0, false
	}
	return bgp.ASN(f), true
}

func (octetMapper) IXPOf(v uint32) (int, bool) {
	if v>>24 == 240 {
		return 1, true
	}
	return 0, false
}

func mk(t *testing.T, hops ...string) *traceroute.Traceroute {
	t.Helper()
	tr := &traceroute.Traceroute{Src: ip(t, hops[0]), Dst: ip(t, hops[len(hops)-1])}
	for i, h := range hops {
		hop := traceroute.Hop{TTL: i + 1}
		if h != "*" {
			hop.IP = ip(t, h)
		}
		tr.Hops = append(tr.Hops, hop)
	}
	return tr
}

func TestBorderPathDirect(t *testing.T) {
	tr := mk(t, "1.0.0.1", "1.0.0.2", "2.0.0.1", "2.0.0.2", "3.0.0.1")
	bs := BorderPath(tr, octetMapper{}, nil)
	if len(bs) != 2 {
		t.Fatalf("borders = %d; want 2", len(bs))
	}
	if bs[0].FromAS != 1 || bs[0].ToAS != 2 || bs[0].FarIP != ip(t, "2.0.0.1") {
		t.Errorf("border 0 = %+v", bs[0])
	}
	if bs[1].FromAS != 2 || bs[1].ToAS != 3 || bs[1].NearIP != ip(t, "2.0.0.2") {
		t.Errorf("border 1 = %+v", bs[1])
	}
}

func TestBorderPathIXP(t *testing.T) {
	tr := mk(t, "1.0.0.1", "1.0.0.2", "240.0.0.9", "2.0.0.1")
	bs := BorderPath(tr, octetMapper{}, nil)
	if len(bs) != 1 {
		t.Fatalf("borders = %v; want 1", bs)
	}
	if bs[0].FromAS != 1 || bs[0].ToAS != 2 || bs[0].IXP != 1 || bs[0].FarIP != ip(t, "240.0.0.9") {
		t.Errorf("IXP border = %+v", bs[0])
	}
}

func TestBorderPathSkipsUnresponsiveAndUnmapped(t *testing.T) {
	tr := mk(t, "1.0.0.1", "*", "99.0.0.1", "2.0.0.1")
	bs := BorderPath(tr, octetMapper{}, nil)
	if len(bs) != 1 || bs[0].FromAS != 1 || bs[0].ToAS != 2 {
		t.Fatalf("borders = %+v", bs)
	}
}

func TestBorderPathNoBorderSameAS(t *testing.T) {
	tr := mk(t, "1.0.0.1", "1.0.0.2", "1.0.0.3")
	if bs := BorderPath(tr, octetMapper{}, nil); len(bs) != 0 {
		t.Fatalf("intra-AS trace has borders: %+v", bs)
	}
}

func TestBorderPathAliasResolution(t *testing.T) {
	oracle := OracleFunc(func(v uint32) (int, bool) {
		// 2.0.0.1 and 2.0.0.7 are the same router.
		if v == ip(t, "2.0.0.1") || v == ip(t, "2.0.0.7") {
			return 42, true
		}
		return 0, false
	})
	a := BorderPath(mk(t, "1.0.0.1", "1.0.0.2", "2.0.0.1"), octetMapper{}, oracle)
	b := BorderPath(mk(t, "1.0.0.9", "1.0.0.8", "2.0.0.7"), octetMapper{}, oracle)
	if !EqualBorders(a, b) {
		t.Fatalf("alias-equal borders should match: %v vs %v", BorderKeys(a), BorderKeys(b))
	}
	// Without the oracle they differ by interface.
	a = BorderPath(mk(t, "1.0.0.1", "1.0.0.2", "2.0.0.1"), octetMapper{}, nil)
	b = BorderPath(mk(t, "1.0.0.9", "1.0.0.8", "2.0.0.7"), octetMapper{}, nil)
	if EqualBorders(a, b) {
		t.Fatal("different interfaces without aliasing should differ")
	}
}

func TestClassify(t *testing.T) {
	asA := bgp.Path{1, 2, 3}
	asB := bgp.Path{1, 4, 3}
	bh1 := []BorderHop{{FromAS: 1, ToAS: 2, Router: 10}}
	bh2 := []BorderHop{{FromAS: 1, ToAS: 2, Router: 11}}
	if c := Classify(asA, asB, bh1, bh1); c != ASChange {
		t.Errorf("AS change = %v", c)
	}
	if c := Classify(asA, asA, bh1, bh2); c != BorderChange {
		t.Errorf("border change = %v", c)
	}
	if c := Classify(asA, asA, bh1, bh1); c != Unchanged {
		t.Errorf("unchanged = %v", c)
	}
}

func TestPassiveResolverMergesSameASOnly(t *testing.T) {
	r := NewPassiveResolver(octetMapper{})
	// 2.0.0.1 and 2.0.0.2 both appear between 1.0.0.1 and 3.0.0.1: merge.
	r.Observe(mk(t, "1.0.0.1", "2.0.0.1", "3.0.0.1"))
	r.Observe(mk(t, "1.0.0.1", "2.0.0.2", "3.0.0.1"))
	// 4.0.0.1 appears between the same pair but in another AS: no merge.
	r.Observe(mk(t, "1.0.0.1", "4.0.0.1", "3.0.0.1"))
	id1, ok1 := r.RouterOf(ip(t, "2.0.0.1"))
	id2, ok2 := r.RouterOf(ip(t, "2.0.0.2"))
	if !ok1 || !ok2 || id1 != id2 {
		t.Fatalf("aliases not merged: %d,%v %d,%v", id1, ok1, id2, ok2)
	}
	id4, ok4 := r.RouterOf(ip(t, "4.0.0.1"))
	if !ok4 || id4 == id1 {
		t.Fatalf("cross-AS merge happened: %d vs %d", id4, id1)
	}
	sets := r.Sets()
	if len(sets) != 1 || len(sets[0]) != 2 {
		t.Fatalf("sets = %v", sets)
	}
	if _, ok := r.RouterOf(ip(t, "9.9.9.9")); ok {
		t.Fatal("unknown IP resolved")
	}
}

func TestBorderPathOnSimulatedTraceroutes(t *testing.T) {
	s := netsim.New(netsim.TestConfig())
	stubs := s.StubASes()
	m := s.Mapper()
	oracle := OracleFunc(func(v uint32) (int, bool) {
		r, ok := s.T.RouterForIP(v)
		return int(r), ok
	})
	matched, exact := 0, 0
	for i := 0; i < 8; i++ {
		src := s.T.HostIP(stubs[i], 1)
		dst := s.T.HostIP(stubs[len(stubs)-1-i], 1)
		if src == dst {
			continue
		}
		tr := s.Traceroute(1, src, dst, int64(1000+i))
		bs := BorderPath(tr, m, oracle)
		truth := s.Borders(src, dst)
		if len(bs) == 0 {
			continue // unresponsive hops can hide borders
		}
		// Every inferred border must correspond to a ground-truth crossing
		// (same AS pair in order).
		ti := 0
		for _, b := range bs {
			for ti < len(truth) && (truth[ti].FromAS != b.FromAS || truth[ti].ToAS != b.ToAS) {
				ti++
			}
			if ti == len(truth) {
				t.Fatalf("inferred border %+v not in ground truth %+v", b, truth)
			}
			// The resolved far router must belong to the ToAS; when the
			// true ingress interface responded it is exactly the ingress
			// router, otherwise a deeper router in the same AS stands in
			// (the same substitution real border mapping makes under
			// unresponsive hops).
			if b.Router != 0 {
				if got := s.T.Routers[netsim.RouterID(b.Router)].AS; got != b.ToAS {
					t.Fatalf("far router %d in %s; want %s", b.Router, got, b.ToAS)
				}
				if b.Router == int(truth[ti].Ingress) {
					exact++
				}
			}
			ti++
		}
		matched++
	}
	if matched == 0 {
		t.Fatal("no simulated traces produced borders")
	}
	if exact == 0 {
		t.Fatal("no inferred border matched the exact ingress router")
	}
}

func TestBorderHopKeyFallsBackToInterface(t *testing.T) {
	withRouter := BorderHop{FromAS: 1, ToAS: 2, FarIP: 100, Router: 7}
	without := BorderHop{FromAS: 1, ToAS: 2, FarIP: 100}
	if withRouter.Key() == without.Key() {
		t.Fatal("router-resolved and unresolved keys should differ")
	}
	other := BorderHop{FromAS: 1, ToAS: 2, FarIP: 101}
	if without.Key() == other.Key() {
		t.Fatal("different interfaces should give different fallback keys")
	}
}

func TestChangeClassStrings(t *testing.T) {
	if Unchanged.String() != "unchanged" || BorderChange.String() != "border-change" ||
		ASChange.String() != "as-change" {
		t.Fatal("change class strings")
	}
}

func TestBorderLevelChangedWildcard(t *testing.T) {
	a := []BorderHop{{FromAS: 1, ToAS: 2, Router: 5}, {FromAS: 2, ToAS: 3, Router: 9}}
	// The 2→3 crossing is hidden in b: only 1→2 is comparable.
	b := []BorderHop{{FromAS: 1, ToAS: 2, Router: 5}}
	if BorderLevelChanged(a, b) {
		t.Fatal("hidden crossing must not count as change")
	}
	b2 := []BorderHop{{FromAS: 1, ToAS: 2, Router: 6}}
	if !BorderLevelChanged(a, b2) {
		t.Fatal("router change not detected")
	}
	// A crossing appearing twice (path loops through the pair) compares
	// positionally.
	c1 := []BorderHop{{FromAS: 1, ToAS: 2, Router: 5}, {FromAS: 1, ToAS: 2, Router: 6}}
	c2 := []BorderHop{{FromAS: 1, ToAS: 2, Router: 5}, {FromAS: 1, ToAS: 2, Router: 7}}
	if !BorderLevelChanged(c1, c2) {
		t.Fatal("second occurrence change missed")
	}
}
