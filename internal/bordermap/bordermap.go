// Package bordermap infers AS boundaries in traceroutes and resolves
// interface aliases to routers, standing in for bdrmapIT/MAP-IT and MIDAR
// (paper Appendix A). The border-router granularity it produces — each hop a
// border router with one or more interface aliases — is the abstraction the
// paper's change definitions are stated at (§3): a border-level change is a
// change in border routers while the AS path stays the same.
package bordermap

import (
	"fmt"
	"sort"

	"rrr/internal/bgp"
	"rrr/internal/traceroute"
)

// AliasOracle resolves an interface address to an opaque router identifier.
// The primary implementation is MIDAR-style alias resolution, which the
// paper consumes as an external service; the simulator provides ground
// truth. PassiveResolver offers a purely passive fallback.
type AliasOracle interface {
	RouterOf(ip uint32) (int, bool)
}

// OracleFunc adapts a function to AliasOracle.
type OracleFunc func(ip uint32) (int, bool)

// RouterOf implements AliasOracle.
func (f OracleFunc) RouterOf(ip uint32) (int, bool) { return f(ip) }

// BorderHop is one inter-AS crossing observed in a traceroute: the last
// responsive hop in FromAS and the first responsive hop mapped into ToAS
// (or an IXP interface, which we take as the border per Appendix A).
type BorderHop struct {
	FromAS bgp.ASN
	ToAS   bgp.ASN
	// NearIP is the egress-side interface (in FromAS).
	NearIP uint32
	// FarIP is the ingress-side interface: ToAS address space or an IXP
	// LAN address assigned to the ToAS member.
	FarIP uint32
	// Router is the alias-resolved identity of the far (ingress) border
	// router; 0 when unresolved.
	Router int
	// IXP is nonzero when the crossing traverses an exchange LAN.
	IXP int
	// NearIdx and FarIdx index the hops in the source traceroute.
	NearIdx, FarIdx int
}

// Key returns the identity used for border-level path comparison: the
// AS pair plus the border router (falling back to the interface when alias
// resolution failed).
func (b BorderHop) Key() string {
	id := b.Router
	if id == 0 {
		id = -int(b.FarIP)
	}
	return fmt.Sprintf("%d-%d@%d", b.FromAS, b.ToAS, id)
}

// IXPMembershipResolver assigns an IXP LAN interface to the member AS it
// belongs to, as traIXroute does from exchange membership data. Mappers
// that can resolve memberships should implement it; BorderPath detects it
// by type assertion.
type IXPMembershipResolver interface {
	IXPMemberOf(ip uint32) (bgp.ASN, bool)
}

// BorderPath extracts the ordered border crossings of a traceroute. It
// follows Appendix A: AS transitions between responsive mapped hops become
// borders; an IXP interface is the border itself, attributed to the member
// AS it is assigned to when membership data resolves it, otherwise to the
// next mapped AS after the LAN.
func BorderPath(t *traceroute.Traceroute, m traceroute.Mapper, aliases AliasOracle) []BorderHop {
	type mapped struct {
		idx int
		ip  uint32
		as  bgp.ASN
		ixp int
	}
	membership, _ := m.(IXPMembershipResolver)
	var hops []mapped
	for i, h := range t.Hops {
		if !h.Responsive() {
			continue
		}
		if ixp, ok := m.IXPOf(h.IP); ok {
			mh := mapped{idx: i, ip: h.IP, ixp: ixp}
			if membership != nil {
				if as, ok := membership.IXPMemberOf(h.IP); ok {
					mh.as = as
				}
			}
			hops = append(hops, mh)
			continue
		}
		if as, ok := m.ASOf(h.IP); ok {
			hops = append(hops, mapped{idx: i, ip: h.IP, as: as})
		}
	}
	resolve := func(ip uint32) int {
		if aliases == nil {
			return 0
		}
		r, ok := aliases.RouterOf(ip)
		if !ok {
			return 0
		}
		return r
	}
	var out []BorderHop
	for i := 1; i < len(hops); i++ {
		prev, cur := hops[i-1], hops[i]
		if prev.as == 0 {
			continue // unresolved IXP interface: crossing handled at entry
		}
		if cur.as != 0 {
			if cur.as != prev.as {
				out = append(out, BorderHop{
					FromAS: prev.as, ToAS: cur.as,
					NearIP: prev.ip, FarIP: cur.ip,
					Router: resolve(cur.ip), IXP: cur.ixp,
					NearIdx: prev.idx, FarIdx: cur.idx,
				})
			}
			continue
		}
		// cur is an IXP interface with unknown member: the border's far AS
		// is the next mapped AS after the LAN.
		toAS := bgp.ASN(0)
		for j := i + 1; j < len(hops); j++ {
			if hops[j].as != 0 {
				toAS = hops[j].as
				break
			}
		}
		if toAS == 0 || toAS == prev.as {
			continue
		}
		out = append(out, BorderHop{
			FromAS: prev.as, ToAS: toAS,
			NearIP: prev.ip, FarIP: cur.ip,
			Router: resolve(cur.ip), IXP: cur.ixp,
			NearIdx: prev.idx, FarIdx: cur.idx,
		})
	}
	return out
}

// BorderKeys renders a border path as comparable keys.
func BorderKeys(bs []BorderHop) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Key()
	}
	return out
}

// EqualBorders reports whether two border paths cross the same routers in
// the same order.
func EqualBorders(a, b []BorderHop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}

// BorderLevelChanged compares two border paths tolerantly: crossings are
// aligned by AS pair, and only AS pairs visible in *both* paths can
// indicate a change (crossings hidden by unresponsive hops act as
// wildcards, per Appendix A). It reports true when some shared AS pair
// crosses a different border router.
func BorderLevelChanged(a, b []BorderHop) bool {
	am := routersByPair(a)
	bm := routersByPair(b)
	for pair, ra := range am {
		rb, ok := bm[pair]
		if !ok {
			continue
		}
		n := len(ra)
		if len(rb) < n {
			n = len(rb)
		}
		for i := 0; i < n; i++ {
			if ra[i] != rb[i] {
				return true
			}
		}
	}
	return false
}

func routersByPair(bs []BorderHop) map[[2]bgp.ASN][]string {
	out := make(map[[2]bgp.ASN][]string, len(bs))
	for _, b := range bs {
		pair := [2]bgp.ASN{b.FromAS, b.ToAS}
		out[pair] = append(out[pair], b.Key())
	}
	return out
}

// ChangeClass classifies the difference between two versions of a path per
// §3 of the paper.
type ChangeClass int

// Change classes.
const (
	// Unchanged: same AS path and same border routers.
	Unchanged ChangeClass = iota
	// BorderChange: same AS path, different border router(s).
	BorderChange
	// ASChange: the AS path itself differs.
	ASChange
)

// String names the change class.
func (c ChangeClass) String() string {
	switch c {
	case Unchanged:
		return "unchanged"
	case BorderChange:
		return "border-change"
	default:
		return "as-change"
	}
}

// Classify compares two observations of the same (src, dst) path. AS paths
// are compared first; only if they match is the border level consulted
// (a border change is by definition not an AS change, §3). The border
// comparison is tolerant to crossings hidden by unresponsive hops.
func Classify(oldAS, newAS bgp.Path, oldB, newB []BorderHop) ChangeClass {
	if !oldAS.Equal(newAS) {
		return ASChange
	}
	if BorderLevelChanged(oldB, newB) {
		return BorderChange
	}
	return Unchanged
}

// PassiveResolver infers alias sets without probing: interfaces in the same
// AS that appear between the same pair of neighbor interfaces across
// different traceroutes are merged (they answer for the same position in
// the topology). This is deliberately conservative; MIDAR-style active
// resolution (the oracle) supersedes it when available.
type PassiveResolver struct {
	m       traceroute.Mapper
	parent  map[uint32]uint32
	between map[[2]uint32]uint32
	ids     map[uint32]int
	nextID  int
}

// NewPassiveResolver returns an empty resolver.
func NewPassiveResolver(m traceroute.Mapper) *PassiveResolver {
	return &PassiveResolver{
		m:       m,
		parent:  make(map[uint32]uint32),
		between: make(map[[2]uint32]uint32),
		ids:     make(map[uint32]int),
		nextID:  1,
	}
}

func (r *PassiveResolver) find(ip uint32) uint32 {
	p, ok := r.parent[ip]
	if !ok {
		r.parent[ip] = ip
		return ip
	}
	if p == ip {
		return ip
	}
	root := r.find(p)
	r.parent[ip] = root
	return root
}

func (r *PassiveResolver) union(a, b uint32) {
	ra, rb := r.find(a), r.find(b)
	if ra != rb {
		r.parent[rb] = ra
	}
}

// Observe ingests one traceroute's evidence.
func (r *PassiveResolver) Observe(t *traceroute.Traceroute) {
	for i := 1; i+1 < len(t.Hops); i++ {
		prev, mid, next := t.Hops[i-1], t.Hops[i], t.Hops[i+1]
		if !prev.Responsive() || !mid.Responsive() || !next.Responsive() {
			continue
		}
		key := [2]uint32{prev.IP, next.IP}
		if other, ok := r.between[key]; ok && other != mid.IP {
			// Same position between the same neighbors: only merge when
			// both interfaces map into the same AS.
			asA, okA := r.m.ASOf(other)
			asB, okB := r.m.ASOf(mid.IP)
			if okA && okB && asA == asB {
				r.union(other, mid.IP)
			}
		} else {
			r.between[key] = mid.IP
		}
		r.find(mid.IP)
	}
}

// RouterOf implements AliasOracle over the inferred sets.
func (r *PassiveResolver) RouterOf(ip uint32) (int, bool) {
	if _, ok := r.parent[ip]; !ok {
		return 0, false
	}
	root := r.find(ip)
	id, ok := r.ids[root]
	if !ok {
		id = r.nextID
		r.nextID++
		r.ids[root] = id
	}
	return id, true
}

// Sets returns the inferred alias sets with at least two members, sorted
// for deterministic inspection.
func (r *PassiveResolver) Sets() [][]uint32 {
	groups := make(map[uint32][]uint32)
	for ip := range r.parent {
		root := r.find(ip)
		groups[root] = append(groups[root], ip)
	}
	var out [][]uint32
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
