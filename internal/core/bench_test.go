package core

import (
	"fmt"
	"math/rand"
	"testing"

	"rrr/internal/bgp"
	"rrr/internal/corpus"
	"rrr/internal/traceroute"
	"rrr/internal/trie"
)

// benchEnv builds an engine with many synthetic corpus pairs sharing a
// destination block, the hot shape of the experiment runs.
func benchEnv(b *testing.B, pairs int) (*Engine, []traceroute.Key) {
	b.Helper()
	geo := mapGeo{}
	rel := mapRel{}
	cfg := DefaultConfig()
	cfg.IXPBootstrapSec = 0
	e := NewEngine(cfg, testMapper{}, identityAliases, geo, rel)
	corp := corpus.New(testMapper{}, identityAliases)

	pfx, err := trie.ParsePrefix("4.0.0.0/8")
	if err != nil {
		b.Fatal(err)
	}
	// 12 VPs with routes to 4.0.0.0/8.
	for v := 0; v < 12; v++ {
		e.ObserveBGP(bgp.Update{
			Time: 0, PeerIP: uint32(5+v)<<24 | 9, PeerAS: bgp.ASN(5 + v),
			Type: bgp.Announce, Prefix: pfx,
			ASPath: bgp.Path{bgp.ASN(5 + v), 2, 3, 4},
		})
	}
	var keys []traceroute.Key
	for i := 0; i < pairs; i++ {
		tr := &traceroute.Traceroute{
			Src: uint32(1)<<24 | uint32(i+1),
			Dst: uint32(4)<<24 | uint32(0xc000+i),
		}
		for h, ip := range []uint32{
			1<<24 | uint32(i+1000),
			2<<24 | 1, 3<<24 | 1, 4<<24 | 2,
			4<<24 | uint32(0xc000+i),
		} {
			tr.Hops = append(tr.Hops, traceroute.Hop{TTL: h + 1, IP: ip})
		}
		en, err := corp.Process(tr)
		if err != nil {
			b.Fatal(err)
		}
		e.AddCorpusEntry(en)
		keys = append(keys, en.Key)
	}
	return e, keys
}

// BenchmarkEngineQuietWindow measures per-window cost with no feed events
// (the overwhelmingly common case in long runs).
func BenchmarkEngineQuietWindow(b *testing.B) {
	e, _ := benchEnv(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.CloseWindow(int64(i) * 900)
	}
}

// BenchmarkEngineBusyWindow measures a window containing a VP path change
// affecting all monitored pairs.
func BenchmarkEngineBusyWindow(b *testing.B) {
	e, _ := benchEnv(b, 500)
	pfx, _ := trie.ParsePrefix("4.0.0.0/8")
	for i := 0; i < 30; i++ {
		e.CloseWindow(int64(i) * 900)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := bgp.Path{5, 2, 3, 4}
		if i%2 == 0 {
			path = bgp.Path{5, 2, 9, 4}
		}
		e.ObserveBGP(bgp.Update{
			Time: int64(30+i) * 900, PeerIP: 5<<24 | 9, PeerAS: 5,
			Type: bgp.Announce, Prefix: pfx, ASPath: path,
		})
		e.CloseWindow(int64(30+i) * 900)
	}
}

// BenchmarkEngineRegistration measures corpus on-boarding cost.
func BenchmarkEngineRegistration(b *testing.B) {
	e, _ := benchEnv(b, 1)
	corp := corpus.New(testMapper{}, identityAliases)
	tr := &traceroute.Traceroute{Src: 1<<24 | 0xffff, Dst: 4<<24 | 0xffff}
	for h, ip := range []uint32{1<<24 | 7, 2<<24 | 1, 3<<24 | 1, 4<<24 | 2, 4<<24 | 0xffff} {
		tr.Hops = append(tr.Hops, traceroute.Hop{TTL: h + 1, IP: ip})
	}
	en, err := corp.Process(tr)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reregister(en)
	}
}

// BenchmarkEnginePublicTrace measures public-feed intake.
func BenchmarkEnginePublicTrace(b *testing.B) {
	e, _ := benchEnv(b, 200)
	rng := rand.New(rand.NewSource(1))
	traces := make([]*traceroute.Traceroute, 64)
	for i := range traces {
		tr := &traceroute.Traceroute{
			Src:  9<<24 | uint32(rng.Intn(1000)+1),
			Dst:  4<<24 | uint32(rng.Intn(100)+0xd000),
			Time: int64(i) * 10,
		}
		for h, ip := range []uint32{9<<24 | 2, 2<<24 | 1, 3<<24 | 1, 4<<24 | 2} {
			tr.Hops = append(tr.Hops, traceroute.Hop{TTL: h + 1, IP: ip})
		}
		traces[i] = tr
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ObservePublicTrace(traces[i&63])
	}
}

// shardedBenchEnv mirrors benchEnv on the sharded engine.
func shardedBenchEnv(b *testing.B, shards, pairs int) *Sharded {
	b.Helper()
	cfg := DefaultConfig()
	cfg.IXPBootstrapSec = 0
	cfg.Shards = shards
	e := NewSharded(cfg, testMapper{}, identityAliases, mapGeo{}, mapRel{})
	corp := corpus.New(testMapper{}, identityAliases)

	pfx, err := trie.ParsePrefix("4.0.0.0/8")
	if err != nil {
		b.Fatal(err)
	}
	for v := 0; v < 12; v++ {
		e.ObserveBGP(bgp.Update{
			Time: 0, PeerIP: uint32(5+v)<<24 | 9, PeerAS: bgp.ASN(5 + v),
			Type: bgp.Announce, Prefix: pfx,
			ASPath: bgp.Path{bgp.ASN(5 + v), 2, 3, 4},
		})
	}
	for i := 0; i < pairs; i++ {
		tr := &traceroute.Traceroute{
			Src: uint32(1)<<24 | uint32(i+1),
			Dst: uint32(4)<<24 | uint32(0xc000+i),
		}
		for h, ip := range []uint32{
			1<<24 | uint32(i+1000),
			2<<24 | 1, 3<<24 | 1, 4<<24 | 2,
			4<<24 | uint32(0xc000+i),
		} {
			tr.Hops = append(tr.Hops, traceroute.Hop{TTL: h + 1, IP: ip})
		}
		en, err := corp.Process(tr)
		if err != nil {
			b.Fatal(err)
		}
		e.AddCorpusEntry(en)
	}
	return e
}

// BenchmarkShardedQuietWindow measures the CloseWindow fan-out with no
// feed events at several shard counts (2000 pairs). shards=1 is the exact
// serial path, the baseline for parallel speedup.
func BenchmarkShardedQuietWindow(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := shardedBenchEnv(b, shards, 2000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.CloseWindow(int64(i) * 900)
			}
		})
	}
}

// BenchmarkShardedBusyWindow measures a window containing a VP path change
// affecting all monitored pairs, at several shard counts.
func BenchmarkShardedBusyWindow(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := shardedBenchEnv(b, shards, 2000)
			pfx, _ := trie.ParsePrefix("4.0.0.0/8")
			for i := 0; i < 30; i++ {
				e.CloseWindow(int64(i) * 900)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				path := bgp.Path{5, 2, 3, 4}
				if i%2 == 0 {
					path = bgp.Path{5, 2, 9, 4}
				}
				e.ObserveBGP(bgp.Update{
					Time: int64(30+i) * 900, PeerIP: 5<<24 | 9, PeerAS: 5,
					Type: bgp.Announce, Prefix: pfx, ASPath: path,
				})
				e.CloseWindow(int64(30+i) * 900)
			}
		})
	}
}

// BenchmarkShardedPublicTrace measures public-feed intake through the
// dispatcher's prepare-once/broadcast path.
func BenchmarkShardedPublicTrace(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := shardedBenchEnv(b, shards, 500)
			rng := rand.New(rand.NewSource(1))
			traces := make([]*traceroute.Traceroute, 64)
			for i := range traces {
				tr := &traceroute.Traceroute{
					Src:  9<<24 | uint32(rng.Intn(1000)+1),
					Dst:  4<<24 | uint32(rng.Intn(100)+0xd000),
					Time: int64(i) * 10,
				}
				for h, ip := range []uint32{9<<24 | 2, 2<<24 | 1, 3<<24 | 1, 4<<24 | 2} {
					tr.Hops = append(tr.Hops, traceroute.Hop{TTL: h + 1, IP: ip})
				}
				traces[i] = tr
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ObservePublicTrace(traces[i&63])
			}
			b.StopTimer()
			e.CloseWindow(0)
		})
	}
}
