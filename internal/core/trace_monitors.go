package core

import (
	"fmt"
	"sort"
	"strings"

	"rrr/internal/anomaly"
	"rrr/internal/bgp"
	"rrr/internal/bordermap"
	"rrr/internal/corpus"
	"rrr/internal/traceroute"
)

// subpathMonitor implements §4.2.1 for one monitored IP-level subpath.
// Monitors are shared across corpus traceroutes that traverse the same
// subpath (the sharing that Appendix C's Fig 14 quantifies). Observations
// buffer until enough data exists to pick a window size from the ladder;
// then a modified z-score series activates.
type subpathMonitor struct {
	id   int
	ips  []uint32 // the anchor sequence ι_m..ι_n (hole-free, deduped)
	last uint32   // ips[len-1], the ι_n endpoint

	// watchers are the corpus pairs covering this subpath and the border
	// indices the subpath spans in each.
	watchers []subpathWatcher

	buf    []subObs
	series *anomaly.WindowedSeries
}

type subpathWatcher struct {
	key     traceroute.Key
	borders []int
}

type subObs struct {
	t     int64
	match bool
}

// borderGroupKey identifies an inter-city AS adjacency ⟨AS_m, c_m⟩→⟨AS_n,
// c_n⟩ (§4.2.2).
type borderGroupKey struct {
	FromAS bgp.ASN
	FromC  int
	ToAS   bgp.ASN
	ToC    int
}

// borderGroup tracks which border routers carry traffic between two
// ⟨AS, city⟩ points, with one ratio series per registered router.
type borderGroup struct {
	key     borderGroupKey
	routers map[int]*borderRouterSeries
}

type borderRouterSeries struct {
	id       int
	gk       borderGroupKey
	router   int
	watchers []subpathWatcher

	buf    []subObs
	series *anomaly.WindowedSeries
}

// AddCorpusEntry registers a processed corpus traceroute with every
// technique. The engine's RIB must already be primed.
func (e *Engine) AddCorpusEntry(en *corpus.Entry) {
	e.entries[en.Key] = en
	e.destToKeys[en.Key.Dst] = append(e.destToKeys[en.Key.Dst], en.Key)

	e.registerBGPMonitors(en)
	e.registerSubpathMonitors(en)
	e.registerBorderMonitors(en)
}

// registerSubpathMonitors creates (or joins) §4.2.1 monitors for each
// border-crossing subpath of the entry. Monitored subpaths are anchored at
// AS boundaries: interdomain segments give the reliable signals, while
// intradomain segments churn with traffic engineering (§4.2's first
// accuracy rule).
func (e *Engine) registerSubpathMonitors(en *corpus.Entry) {
	if e.cfg.disabled(TechTraceSubpath) {
		return
	}
	path := en.Trace.IPPath()
	register := func(raw []uint32, bi int) {
		// Dedupe consecutive identical anchors (the far hop of one
		// crossing is often the near hop of the next).
		ips := raw[:0:0]
		for i, ip := range raw {
			if i == 0 || ip != raw[i-1] {
				ips = append(ips, ip)
			}
		}
		if len(ips) < 2 {
			return
		}
		key := subpathKeyOf(ips)
		mon, ok := e.sh.subpaths[key]
		if !ok {
			// Monitors shared across entries are content-named like
			// everything else; the shared allocator only memoizes the
			// hash so joint watchers agree on one instance.
			mon = &subpathMonitor{id: e.ids.idFor("sub:" + key), ips: ips, last: ips[len(ips)-1]}
			e.sh.subpaths[key] = mon
			e.sh.subByStart[ips[0]] = append(e.sh.subByStart[ips[0]], mon)
			e.sh.subSorted = nil
		}
		mon.watchers = append(mon.watchers, subpathWatcher{key: en.Key, borders: []int{bi}})
		e.subByKey[en.Key] = append(e.subByKey[en.Key], mon)
		e.addReg(en.Key, Registration{MonitorID: mon.id, Technique: TechTraceSubpath, Borders: []int{bi}})
	}
	for bi, b := range en.Borders {
		// Short monitor: near hop, far hop, and one hop of context. It
		// catches far-side changes while the near anchor persists.
		ips := []uint32{path[b.NearIdx], path[b.FarIdx]}
		for k := b.FarIdx + 1; k < len(path); k++ {
			if path[k] != 0 {
				ips = append(ips, path[k])
				break
			}
		}
		register(ips, bi)

		// Sparse bracket monitor: anchored at the previous crossing's far
		// hop and the next crossing's near hop, where paths reconverge
		// after a border change inside the bracket. The anchors are border
		// interfaces only, so intra-domain churn between them is invisible.
		// This is the workhorse for egress shifts, which move both
		// interfaces of a crossing.
		var bracket []uint32
		if bi > 0 {
			bracket = append(bracket, path[en.Borders[bi-1].FarIdx])
		}
		bracket = append(bracket, path[b.NearIdx], path[b.FarIdx])
		if bi+1 < len(en.Borders) {
			bracket = append(bracket, path[en.Borders[bi+1].NearIdx])
		}
		if len(bracket) < 3 || hasZero(bracket) {
			continue
		}
		register(bracket, bi)
	}
}

func hasZero(xs []uint32) bool {
	for _, x := range xs {
		if x == 0 {
			return true
		}
	}
	return false
}

func subpathKeyOf(ips []uint32) string {
	var b strings.Builder
	for i, ip := range ips {
		if i > 0 {
			b.WriteByte('-')
		}
		fmt.Fprintf(&b, "%08x", ip)
	}
	return b.String()
}

// registerBorderMonitors creates (or joins) §4.2.2 monitors: one ratio
// series per (inter-city AS adjacency, border router) the entry uses.
// Crossings whose endpoints cannot be geolocated are skipped (Appendix A).
func (e *Engine) registerBorderMonitors(en *corpus.Entry) {
	if e.geo == nil || e.cfg.disabled(TechTraceBorder) {
		return
	}
	for bi, b := range en.Borders {
		gk, router, ok := e.sh.borderGroupOf(b, en.MeasuredAt)
		if !ok {
			continue
		}
		grp := e.sh.borders[gk]
		if grp == nil {
			grp = &borderGroup{key: gk, routers: make(map[int]*borderRouterSeries)}
			e.sh.borders[gk] = grp
		}
		rs := grp.routers[router]
		if rs == nil {
			name := fmt.Sprintf("brs:%d/%d-%d/%d@%d", gk.FromAS, gk.FromC, gk.ToAS, gk.ToC, router)
			rs = &borderRouterSeries{id: e.ids.idFor(name), gk: gk, router: router}
			grp.routers[router] = rs
			e.sh.borderSorted = nil
		}
		rs.watchers = append(rs.watchers, subpathWatcher{key: en.Key, borders: []int{bi}})
		e.brsByKey[en.Key] = append(e.brsByKey[en.Key], rs)
		e.addReg(en.Key, Registration{MonitorID: rs.id, Technique: TechTraceBorder, Borders: []int{bi}})
	}
}

// preparedTrace is a public traceroute after patching and border mapping:
// everything the per-shard observation step needs, computed once.
type preparedTrace struct {
	time    int64
	path    []uint32
	borders []bordermap.BorderHop
}

// prepareTrace feeds the unresponsive-hop patcher and resolves the
// patched IP path and border path. It owns all the mutable shared state a
// public traceroute touches, so a Sharded engine runs it once on the
// caller's goroutine and broadcasts the result to every shard.
func prepareTrace(p *traceroute.Patcher, m traceroute.Mapper, aliases bordermap.AliasOracle, t *traceroute.Traceroute) *preparedTrace {
	p.Observe(t)
	patched := t.Clone()
	p.Patch(patched)
	return &preparedTrace{
		time:    t.Time,
		path:    patched.IPPath(),
		borders: bordermap.BorderPath(patched, m, aliases),
	}
}

// ObservePublicTrace ingests one public traceroute, feeding the subpath,
// border, and IXP techniques plus the unresponsive-hop patcher. Signals it
// produces (IXP membership changes) are delivered by the next CloseWindow.
func (e *Engine) ObservePublicTrace(t *traceroute.Traceroute) {
	e.observePrepared(prepareTrace(e.patcher, e.mapper, e.aliases, t))
}

// observePrepared folds one prepared public traceroute into the shared
// series (once) and turns any detected IXP joins into per-pair signals by
// scanning this engine's own corpus slice.
func (e *Engine) observePrepared(pt *preparedTrace) {
	e.sh.observeTrace(pt, func(ixp int, member bgp.ASN, when int64) {
		e.pendingIXP = append(e.pendingIXP, e.ixpJoinSignals(ixp, member, when)...)
	})
}

// matchesSparse reports whether the anchors appear in order within path,
// starting at path[0] == anchors[0].
func matchesSparse(path []uint32, anchors []uint32) bool {
	if len(path) == 0 || len(anchors) == 0 || path[0] != anchors[0] {
		return false
	}
	ai := 1
	for _, ip := range path[1:] {
		if ai == len(anchors) {
			break
		}
		if ip == anchors[ai] {
			ai++
		}
	}
	return ai == len(anchors)
}

// spanHasHole reports whether any hop in path[0..end] is unresponsive.
func spanHasHole(path []uint32, end int) bool {
	if end >= len(path) {
		end = len(path) - 1
	}
	for k := 0; k <= end; k++ {
		if path[k] == 0 {
			return true
		}
	}
	return false
}

// activate instantiates the windowed series once enough observations exist
// to choose a window size per §4.2.1's ladder rule, then replays the
// buffer.
func (m *subpathMonitor) activate(ladder []int64, now int64) {
	if m.series != nil || len(m.buf) < 2*anomaly.MinObservations {
		return
	}
	times := make([]int64, len(m.buf))
	for i, o := range m.buf {
		times[i] = o.t
	}
	w, ok := anomaly.ChooseWindowMin(times, now, ladder, 2)
	if !ok {
		if len(m.buf) > 4096 {
			m.buf = m.buf[len(m.buf)-2048:]
		}
		return
	}
	m.series = &anomaly.WindowedSeries{WindowSec: w, Det: anomaly.NewZScore()}
	for _, o := range m.buf {
		m.series.Observe(o.t, boolVal(o.match))
	}
	m.buf = nil
}

func (rs *borderRouterSeries) activate(ladder []int64, now int64) {
	if rs.series != nil || len(rs.buf) < 2*anomaly.MinObservations {
		return
	}
	times := make([]int64, len(rs.buf))
	for i, o := range rs.buf {
		times[i] = o.t
	}
	w, ok := anomaly.ChooseWindowMin(times, now, ladder, 2)
	if !ok {
		if len(rs.buf) > 4096 {
			rs.buf = rs.buf[len(rs.buf)-2048:]
		}
		return
	}
	rs.series = &anomaly.WindowedSeries{WindowSec: w, Det: anomaly.NewZScore()}
	for _, o := range rs.buf {
		rs.series.Observe(o.t, boolVal(o.match))
	}
	rs.buf = nil
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ixpJoinSignals scans the corpus for traceroutes that include the new
// member AS_i and, later, another member AS_j, and generates signals
// according to the relationship between AS_i and its current next hop
// (§4.2.3's provider / public-peer / private-peer rules).
func (e *Engine) ixpJoinSignals(ixp int, asI bgp.ASN, when int64) []Signal {
	if e.rel == nil {
		return nil
	}
	members := e.sh.ixpMembers[ixp]
	var sigs []Signal
	keys := make([]traceroute.Key, 0, len(e.entries))
	for k := range e.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	for _, k := range keys {
		en := e.entries[k]
		idxI := en.ASPath.Index(asI)
		if idxI < 0 || idxI+1 >= len(en.ASPath) {
			continue
		}
		// A later hop that is already a member of the exchange.
		foundJ := -1
		for j := idxI + 1; j < len(en.ASPath); j++ {
			if members[en.ASPath[j]] || e.sh.ixpObserved[ixp][en.ASPath[j]] {
				foundJ = j
				break
			}
		}
		if foundJ < 0 || foundJ == idxI+1 {
			// Already adjacent (possibly already via this IXP): the new
			// membership cannot shorten the path.
			continue
		}
		asK := en.ASPath[idxI+1]
		emit := false
		switch e.rel.Rel(asI, asK) {
		case RelCustomerOf:
			// AS_k is a provider of AS_i: the new IXP peering is cheaper.
			emit = true
		case RelPeerPublic:
			// Equal relationship class: shortest AS path wins.
			emit = true
		case RelPeerPrivate:
			emit = e.sh.allowPriv[asI]
		}
		if !emit {
			continue
		}
		// The signal covers the border leaving AS_i.
		var bs []int
		for bi, b := range en.Borders {
			if b.FromAS == asI {
				bs = append(bs, bi)
			}
		}
		cm := e.ixpMonitorID(ixp, asI)
		sigs = append(sigs, Signal{
			Technique:   TechIXPMembership,
			Key:         k,
			MonitorID:   cm,
			WindowStart: (when / e.cfg.WindowSec) * e.cfg.WindowSec,
			Borders:     bs,
			Detail:      fmt.Sprintf("%s joined IXP %d", asI, ixp),
			VPCount:     1,
		})
	}
	return sigs
}

// ixpMonitorID computes a stable monitor identity per (IXP, member). IXP
// signals are generated during public-trace intake, which shards process
// concurrently, so the identity is derived rather than allocated: every
// shard computes the same ID without coordination. Negative values keep
// the space disjoint from allocator-issued IDs.
func (e *Engine) ixpMonitorID(ixp int, as bgp.ASN) int {
	return -(ixp<<32 | int(uint32(as)))
}

// DebugSubpath, when non-nil, is invoked on every subpath observation
// mismatch (test instrumentation).
var DebugSubpath func(monIPs []uint32, path []uint32, match bool)

// Stats summarizes monitor state for diagnostics and ablation reporting.
type Stats struct {
	SubpathMonitors  int
	SubpathActive    int
	SubpathBuffered  int
	BorderGroups     int
	BorderSeries     int
	BorderActive     int
	IXPObservedASes  int
	ASPathMonitors   int
	BurstMonitors    int
	ExtraSeries      int
	CommunityTargets int
}

// MonitorStats reports how many monitors exist and how many traceroute
// series have accumulated enough data to activate.
func (e *Engine) MonitorStats() Stats {
	st := Stats{
		SubpathMonitors:  len(e.sh.subpaths),
		BorderGroups:     len(e.sh.borders),
		ASPathMonitors:   len(e.asp) - e.deadASP,
		BurstMonitors:    len(e.bursts),
		ExtraSeries:      len(e.sh.extras),
		CommunityTargets: len(e.comms),
	}
	for _, m := range e.sh.subpaths {
		if m.series != nil {
			st.SubpathActive++
		}
		st.SubpathBuffered += len(m.buf)
	}
	for _, grp := range e.sh.borders {
		st.BorderSeries += len(grp.routers)
		for _, rs := range grp.routers {
			if rs.series != nil {
				st.BorderActive++
			}
		}
	}
	for _, m := range e.sh.ixpObserved {
		st.IXPObservedASes += len(m)
	}
	return st
}

// CloseWindow finishes the signal-generation window starting at ws: all
// BGP series are evaluated, traceroute series are advanced past the window
// end, revocation runs, and the window's signals are returned. Callers must
// invoke it once per WindowSec with monotonically increasing ws.
//
// It runs in two phases: closeShared evaluates the series shared across
// pairs exactly once, then closeOwned evaluates this engine's per-pair
// monitors. A Sharded engine drives the same two phases itself — shared
// once on the dispatcher, owned in parallel per shard — so the serial and
// sharded streams are byte-identical by construction.
func (e *Engine) CloseWindow(ws int64) []Signal {
	sc := e.sh.closeShared(ws, ws+e.cfg.WindowSec)
	sigs := e.closeOwned(ws, sc, sc.traceSigs)
	e.sh.resetWindow()
	return sigs
}

// closeOwned finishes the window for the monitors this engine owns:
// per-pair BGP series, the routed share of the window's subpath/border
// signals (traceSigs), pending IXP signals, active-signal tracking, and
// revocation. It only reads shared state; all shared mutation happened in
// closeShared, so shards can run closeOwned concurrently.
func (e *Engine) closeOwned(ws int64, sc *sharedClose, traceSigs []Signal) []Signal {
	sigs := e.closeBGPWindow(ws, sc)
	sigs = append(sigs, traceSigs...)

	// Drain pending IXP signals produced during the window.
	sigs = append(sigs, e.pendingIXP...)
	e.pendingIXP = nil

	// Track active signals and revoke reverted ones (§4.3.2).
	for i := range sigs {
		e.signalCount[sigs[i].Technique]++
		e.active[sigs[i].Key] = append(e.active[sigs[i].Key], sigs[i])
	}
	if e.cfg.RevokeSignals {
		e.revokeReverted()
	}

	e.window = ws + e.cfg.WindowSec
	e.windowsClosed++

	sortSignals(sigs)
	return sigs
}

func sortedSubpathKeys(m map[string]*subpathMonitor) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedGroupKeys(m map[borderGroupKey]*borderGroup) []borderGroupKey {
	keys := make([]borderGroupKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.FromAS != b.FromAS {
			return a.FromAS < b.FromAS
		}
		if a.ToAS != b.ToAS {
			return a.ToAS < b.ToAS
		}
		if a.FromC != b.FromC {
			return a.FromC < b.FromC
		}
		return a.ToC < b.ToC
	})
	return keys
}

func sortedRouterIDs(m map[int]*borderRouterSeries) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// revokeReverted drops all active signals of a corpus pair when every
// monitored series associated with it has returned to its baseline value
// (§4.3.2): the route reverted, so the traceroute is fresh again.
func (e *Engine) revokeReverted() {
	for k, sigs := range e.active {
		if len(sigs) == 0 {
			continue
		}
		if e.pairReverted(k) {
			e.revokedSignals += len(sigs)
			e.revokedPairs++
			delete(e.active, k)
		}
	}
}

// RevocationStats reports how many signals (and distinct pair-events) the
// §4.3.2 revocation machinery has discarded because routes reverted.
func (e *Engine) RevocationStats() (signals, pairEvents int) {
	return e.revokedSignals, e.revokedPairs
}

// pairReverted reports whether every monitored quantity of the pair is
// back at the value it had when the corpus traceroute was issued: AS-path
// ratios, community sets, and subpath/border-router ratios (§4.3.2).
func (e *Engine) pairReverted(k traceroute.Key) bool {
	any := false
	for _, m := range e.aspByKey[k] {
		any = true
		if !m.hasBase || !m.hasLast || m.lastRatio != m.baseline {
			return false
		}
	}
	if cm := e.comms[k]; cm != nil {
		any = true
		for _, st := range cm.overlap {
			rt, ok := e.rib.Route(st.pf.vp, st.pf.pf)
			if !ok {
				return false
			}
			if !rt.Communities.Equal(st.baseline) {
				return false
			}
		}
	}
	for _, mon := range e.subByKey[k] {
		if mon.series == nil {
			continue
		}
		any = true
		first, ok1 := mon.series.First()
		last, ok2 := mon.series.Last()
		if ok1 && ok2 && first != last {
			return false
		}
	}
	for _, rs := range e.brsByKey[k] {
		if rs.series == nil {
			continue
		}
		any = true
		first, ok1 := rs.series.First()
		last, ok2 := rs.series.Last()
		if ok1 && ok2 && first != last {
			return false
		}
	}
	return any
}
